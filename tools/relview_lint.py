#!/usr/bin/env python3
"""relview-lint: repository-local static checks for the relview tree.

Complements the compiler-side analyses (clang -Wthread-safety, clang-tidy,
[[nodiscard]]) with project-specific rules the compilers cannot express:

  failpoint-duplicate    every RELVIEW_FAILPOINT site name is unique across
                         the tree (a duplicate would make fault-injection
                         specs ambiguous)
  failpoint-undocumented every RELVIEW_FAILPOINT site name appears in the
                         operator catalog (docs/OPERATIONS.md)
  failpoint-commit-catalog
                         every commit-queue failpoint (`commit.*` — the
                         group-commit path is the one operators reach for
                         first when diagnosing fsync amortization) has a
                         row in the "Failpoint catalog:" table itself, not
                         merely a mention somewhere in the document
  failpoint-nonliteral   RELVIEW_FAILPOINT takes a string literal (specs
                         and the catalog are greppable only for literals)
  failpoint-direct-check code outside util/failpoint.* calls
                         Failpoints::Check directly instead of the macro
                         (which the rules above key on)
  naked-std-mutex        src/ uses std::mutex / std::shared_mutex instead
                         of the capability-annotated relview::Mutex /
                         SharedMutex (util/annotations.h), so clang's
                         thread-safety analysis would be blind to it
  unguarded-mutex-member a Mutex/SharedMutex *member* with no
                         RELVIEW_GUARDED_BY / RELVIEW_PT_GUARDED_BY user
                         in the same file (a lock that protects nothing is
                         either dead or missing its annotations)
  value-unchecked        .value() on a Result/optional with no visible
                         ok()/has_value() evidence earlier in the same
                         top-level chunk (use RELVIEW_ASSIGN_OR_RETURN, or
                         check first)
  raw-assert             assert() outside the RELVIEW_DCHECK definition
                         (asserts vanish under NDEBUG; the library's
                         invariants must hold in all build types)
  metric-table           every metric family name in src/ (a "relview_*"
                         string literal) has a row in the
                         "Metric families:" table of docs/OPERATIONS.md,
                         so /metrics and the operator docs cannot drift.
                         A name ending in `_` — in the source or in the
                         table — is a composed-name prefix: the literal
                         `"relview_net_"` is satisfied by any table row
                         it prefixes, and a table row `relview_engine_`
                         covers every family composed from it
  bench-doc              every BENCH_*.json artifact a CI job produces or
                         uploads (any mention in .github/workflows/ci.yml)
                         has a section heading naming it in
                         docs/PERFORMANCE.md, so the performance handbook
                         cannot silently lag the benchmark fleet; headings
                         in the handbook that name artifacts no CI job
                         produces are flagged too (stale section)
  layering               a src/ subdirectory includes a header from a
                         directory its library does not directly link: the
                         include DAG is derived from each
                         src/<dir>/CMakeLists.txt target_link_libraries
                         (direct deps only), so the build graph IS the
                         layering spec — and it must be acyclic

Findings print as `path:line: [rule] message`, one per line. Exit status:
0 = clean, 1 = findings, 2 = usage/setup error.

Suppressing one line: append `// relview-lint: allow(<rule>)` to it. Keep
suppressions rare and justified in an adjacent comment.
"""

import argparse
import os
import re
import sys

# The directory-level include DAG for src/ is *derived*, not hardcoded:
# src/<dir>/CMakeLists.txt's target_link_libraries(relview_<dir> ...) line
# names the directories whose headers <dir> may #include (direct deps
# only — include what you link). Growing an edge is still an intentional,
# reviewable act; it just happens in the CMakeLists that needs it instead
# of a parallel map here that could drift from the build. See
# load_layering_map().
CMAKE_LINK = re.compile(
    r"target_link_libraries\s*\(\s*relview_(\w+)([^)]*)\)", re.S)
CMAKE_LIB_DEP = re.compile(r"\brelview_(\w+)\b")


def strip_cmake_comments(text):
    return "\n".join(line.split("#", 1)[0] for line in text.splitlines())


def load_layering_map(root):
    """Builds {directory: set(directly linked directories)} from every
    src/<dir>/CMakeLists.txt. A directory without a CMakeLists.txt is
    absent (its files get an 'unknown directory' layering finding)."""
    allowed = {}
    src = os.path.join(root, "src")
    for entry in sorted(os.listdir(src)):
        cml = os.path.join(src, entry, "CMakeLists.txt")
        if not os.path.isfile(cml):
            continue
        with open(cml, encoding="utf-8") as f:
            text = strip_cmake_comments(f.read())
        deps = set()
        for m in CMAKE_LINK.finditer(text):
            if m.group(1) != entry:
                continue  # only the directory's own library defines edges
            deps.update(CMAKE_LIB_DEP.findall(m.group(2)))
        deps.discard(entry)
        allowed[entry] = deps
    return allowed


def check_layering_cycles(allowed, findings):
    """The link graph must be a DAG; a cycle would make the layering
    vacuous (and the static libraries unorderable)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {d: WHITE for d in allowed}

    def visit(d, stack):
        color[d] = GRAY
        stack.append(d)
        for dep in sorted(allowed.get(d, ())):
            if dep not in color:
                continue  # non-src library (Threads etc. never match)
            if color[dep] == GRAY:
                cycle = stack[stack.index(dep):] + [dep]
                findings.append(Finding(
                    f"src/{dep}/CMakeLists.txt", 1, "layering",
                    "target_link_libraries cycle: "
                    + " -> ".join(f"src/{c}/" for c in cycle)))
            elif color[dep] == WHITE:
                visit(dep, stack)
        stack.pop()
        color[d] = BLACK

    for d in sorted(allowed):
        if color[d] == WHITE:
            visit(d, [])

FAILPOINT_CALL = re.compile(r'RELVIEW_FAILPOINT\s*\(\s*"([^"]+)"\s*\)')
FAILPOINT_ANY = re.compile(r"RELVIEW_FAILPOINT\s*\(\s*([^)]*)\)")
DIRECT_CHECK = re.compile(r"Failpoints::Check\s*\(")
STD_MUTEX = re.compile(r"\bstd::(?:recursive_|shared_|timed_)?mutex\b")
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:relview::)?(?:Mutex|SharedMutex)\s+"
    r"(\w*_)\s*(?:RELVIEW_\w+\s*\([^)]*\)\s*)*;"
)
VALUE_CALL = re.compile(r"\.value\s*\(\s*\)")
RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
SUPPRESS = re.compile(r"relview-lint:\s*allow\(([\w,\- ]+)\)")

# Tokens accepted as evidence that a .value() call was preceded by a
# success check within the same top-level chunk.
OK_EVIDENCE = re.compile(
    r"\.ok\s*\(|has_value\s*\(|RELVIEW_DCHECK|RELVIEW_ASSIGN_OR_RETURN|"
    r"ASSERT_TRUE|ASSERT_OK|EXPECT_TRUE|CheckOk"
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(lines):
    """Blanks out // and /* */ comment text, preserving line structure and
    string literals outside comments (a naive scanner: a quote opened on
    one line is assumed closed on it, which holds for this codebase)."""
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        in_string = False
        while i < len(line):
            c = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_string:
                result.append(c)
                if c == "\\":
                    if nxt:
                        result.append(nxt)
                        i += 2
                        continue
                elif c == '"':
                    in_string = False
                i += 1
                continue
            if c == '"':
                in_string = True
                result.append(c)
                i += 1
                continue
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            result.append(c)
            i += 1
        out.append("".join(result))
    return out


def suppressed(raw_line, rule):
    m = SUPPRESS.search(raw_line)
    if not m:
        return False
    rules = {r.strip() for r in m.group(1).split(",")}
    return rule in rules or "all" in rules


def source_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


CATALOG_ROW_NAME = re.compile(r"^\|\s*`([\w.]+)`")
METRIC_LITERAL = re.compile(r'"(relview_[a-z0-9_]+)"')
TELEMETRY_ROW_NAME = re.compile(r"^\|\s*`(relview_[a-z0-9_]+)`")


def catalog_table_names(catalog):
    """Names with a row in the "Failpoint catalog:" table of
    docs/OPERATIONS.md — the region from that marker line through the
    last consecutive table/blank line. Prose mentions elsewhere in the
    document do not count for rules keyed on the table."""
    names = set()
    in_table = False
    for line in catalog.splitlines():
        if line.strip() == "Failpoint catalog:":
            in_table = True
            continue
        if not in_table:
            continue
        if line.strip() == "":
            continue
        if not line.lstrip().startswith("|"):
            break
        m = CATALOG_ROW_NAME.match(line.strip())
        if m:
            names.add(m.group(1))
    return names


def telemetry_table_names(doc):
    """Metric family names with a row in the "Metric families:" table of
    docs/OPERATIONS.md — the region from that marker line through the
    last consecutive table/blank line (same region rule as the failpoint
    catalog). A name ending in `_` is a documented composed-name prefix."""
    names = set()
    in_table = False
    for line in doc.splitlines():
        if line.strip() == "Metric families:":
            in_table = True
            continue
        if not in_table:
            continue
        if line.strip() == "":
            continue
        if not line.lstrip().startswith("|"):
            break
        m = TELEMETRY_ROW_NAME.match(line.strip())
        if m:
            names.add(m.group(1))
    return names


def check_metric_table(root, files, findings):
    """Every "relview_*" string literal in src/ (the convention for metric
    family names handed to the TelemetryRegistry) must be documented in
    the operator-facing telemetry table. Families composed at runtime
    (`std::string("relview_net_") + route + ...`, `"relview_engine_" #name`)
    leave a trailing-underscore literal behind; such a prefix is satisfied
    by any table row it prefixes, and a trailing-underscore *table* row
    blanket-documents everything composed from it."""
    doc = ""
    ops = os.path.join(root, "docs", "OPERATIONS.md")
    if os.path.exists(ops):
        with open(ops, encoding="utf-8") as f:
            doc = f.read()
    if not doc:
        return
    table = telemetry_table_names(doc)
    prefixes = sorted(n for n in table if n.endswith("_"))
    reported = set()
    for path in files:
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        code = strip_comments(raw)
        for ln, line in enumerate(code, 1):
            for m in METRIC_LITERAL.finditer(line):
                name = m.group(1)
                if name in table or name in reported:
                    continue
                if any(name.startswith(p) for p in prefixes):
                    continue
                if name.endswith("_") and any(
                        t.startswith(name) for t in table):
                    continue  # composition prefix; completions documented
                if suppressed(raw[ln - 1], "metric-table"):
                    continue
                reported.add(name)  # one finding per family, not per use
                findings.append(Finding(
                    rel, ln, "metric-table",
                    f"metric family `{name}` has no row in the "
                    "\"Metric families:\" table of docs/OPERATIONS.md; "
                    "every family exported on /metrics needs an "
                    "operator-facing row (a trailing-underscore name "
                    "documents a composed-name prefix)"))


BENCH_ARTIFACT = re.compile(r"\bBENCH_[A-Za-z0-9_]+\.json\b")


def performance_section_names(doc):
    """Artifact names with a section in docs/PERFORMANCE.md: a markdown
    heading line (any level) that names the BENCH_*.json file. Prose
    mentions elsewhere do not count — the handbook's contract is one
    findable section per artifact."""
    names = set()
    for line in doc.splitlines():
        if line.lstrip().startswith("#"):
            names.update(BENCH_ARTIFACT.findall(line))
    return names


def check_bench_docs(root, findings):
    """Every benchmark artifact CI produces must have a section in the
    performance handbook, and the handbook must not document artifacts CI
    no longer produces. Keyed on .github/workflows/ci.yml because the
    upload steps there are the complete list of what a reader can actually
    download and compare against the handbook."""
    ci = os.path.join(root, ".github", "workflows", "ci.yml")
    if not os.path.exists(ci):
        return
    with open(ci, encoding="utf-8") as f:
        ci_lines = f.read().splitlines()
    doc = ""
    perf = os.path.join(root, "docs", "PERFORMANCE.md")
    if os.path.exists(perf):
        with open(perf, encoding="utf-8") as f:
            doc = f.read()
    sections = performance_section_names(doc)
    produced = {}  # name -> first ci.yml line
    for ln, line in enumerate(ci_lines, 1):
        for name in BENCH_ARTIFACT.findall(line):
            if suppressed(line, "bench-doc"):
                continue
            produced.setdefault(name, ln)
    for name in sorted(produced):
        if name not in sections:
            findings.append(Finding(
                ".github/workflows/ci.yml", produced[name], "bench-doc",
                f"CI produces `{name}` but docs/PERFORMANCE.md has no "
                "section heading naming it; every uploaded benchmark "
                "artifact needs a handbook section (what it measures, "
                "workload, gate, repro, trajectory)"))
    for ln, line in enumerate(doc.splitlines(), 1):
        if not line.lstrip().startswith("#"):
            continue
        for name in BENCH_ARTIFACT.findall(line):
            if name not in produced and not suppressed(line, "bench-doc"):
                findings.append(Finding(
                    "docs/PERFORMANCE.md", ln, "bench-doc",
                    f"section documents `{name}` but no CI job in "
                    ".github/workflows/ci.yml produces it; delete the "
                    "stale section or restore the artifact"))


def check_failpoints(root, files, findings):
    """Site uniqueness, literal-ness, documentation, macro discipline."""
    catalog = ""
    ops = os.path.join(root, "docs", "OPERATIONS.md")
    if os.path.exists(ops):
        with open(ops, encoding="utf-8") as f:
            catalog = f.read()
    table_names = catalog_table_names(catalog)
    seen = {}
    for path in files:
        rel = relpath(root, path)
        defining = rel in ("src/util/failpoint.h", "src/util/failpoint.cc")
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        code = strip_comments(raw)
        for ln, line in enumerate(code, 1):
            if defining:
                continue
            if DIRECT_CHECK.search(line) and "RELVIEW_FAILPOINT" not in line:
                if not suppressed(raw[ln - 1], "failpoint-direct-check"):
                    findings.append(Finding(
                        rel, ln, "failpoint-direct-check",
                        "call RELVIEW_FAILPOINT(\"name\") instead of "
                        "Failpoints::Check so the site registers with the "
                        "failpoint catalog checks"))
            for m in FAILPOINT_ANY.finditer(line):
                arg = m.group(1).strip()
                lit = FAILPOINT_CALL.match(m.group(0))
                if not lit:
                    if not suppressed(raw[ln - 1], "failpoint-nonliteral"):
                        findings.append(Finding(
                            rel, ln, "failpoint-nonliteral",
                            f"RELVIEW_FAILPOINT argument `{arg}` is not a "
                            "string literal; specs and the operator catalog "
                            "can only reference literal site names"))
                    continue
                name = lit.group(1)
                if name in seen:
                    if not suppressed(raw[ln - 1], "failpoint-duplicate"):
                        first = seen[name]
                        findings.append(Finding(
                            rel, ln, "failpoint-duplicate",
                            f"failpoint site `{name}` already defined at "
                            f"{first[0]}:{first[1]}; site names must be "
                            "unique across the tree"))
                else:
                    seen[name] = (rel, ln)
                    if catalog and name not in catalog:
                        if not suppressed(raw[ln - 1],
                                          "failpoint-undocumented"):
                            findings.append(Finding(
                                rel, ln, "failpoint-undocumented",
                                f"failpoint site `{name}` is not documented "
                                "in docs/OPERATIONS.md (operator catalog)"))
                    if (catalog and name.startswith("commit.")
                            and name not in table_names):
                        if not suppressed(raw[ln - 1],
                                          "failpoint-commit-catalog"):
                            findings.append(Finding(
                                rel, ln, "failpoint-commit-catalog",
                                f"commit-queue failpoint `{name}` needs a "
                                "row in the \"Failpoint catalog:\" table of "
                                "docs/OPERATIONS.md — group-commit sites "
                                "are the first thing operators arm when "
                                "diagnosing fsync amortization, so a prose "
                                "mention is not enough"))


def check_mutexes(root, files, findings):
    for path in files:
        rel = relpath(root, path)
        if rel == "src/util/annotations.h":
            continue  # the wrapper itself owns the raw std::mutex
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        code = strip_comments(raw)
        members = []  # (name, line)
        guarded_users = set()
        for ln, line in enumerate(code, 1):
            if rel.startswith("src/") and STD_MUTEX.search(line):
                if not suppressed(raw[ln - 1], "naked-std-mutex"):
                    findings.append(Finding(
                        rel, ln, "naked-std-mutex",
                        "use relview::Mutex / SharedMutex "
                        "(util/annotations.h) so clang's thread-safety "
                        "analysis sees the capability"))
            m = MUTEX_MEMBER.match(line)
            if m and not suppressed(raw[ln - 1], "unguarded-mutex-member"):
                members.append((m.group(1), ln))
            for g in re.finditer(
                    r"RELVIEW_(?:PT_)?GUARDED_BY\s*\(\s*(\w+)\s*\)", line):
                guarded_users.add(g.group(1))
        for name, ln in members:
            if name not in guarded_users:
                findings.append(Finding(
                    rel, ln, "unguarded-mutex-member",
                    f"mutex member `{name}` has no RELVIEW_GUARDED_BY / "
                    "RELVIEW_PT_GUARDED_BY user in this file; annotate "
                    "what it protects (or delete it)"))


def check_value_discipline(root, files, findings):
    """Flags .value() with no ok()/has_value() evidence earlier in the same
    top-level chunk. Chunks are delimited by column-0 closing braces — a
    deliberately coarse scope (a whole class body is one chunk) that keeps
    the heuristic quiet on correct code while still catching the common
    mistake: unwrapping a fresh Result with no check anywhere near it."""
    for path in files:
        rel = relpath(root, path)
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        code = strip_comments(raw)
        chunk_start = 0
        evidence_at = -1  # last line with ok-evidence in current chunk
        for ln, line in enumerate(code, 1):
            if line.startswith("}"):
                chunk_start = ln
                evidence_at = -1
                continue
            if OK_EVIDENCE.search(line):
                evidence_at = ln
            if VALUE_CALL.search(line):
                if evidence_at < 0 or evidence_at < chunk_start:
                    if not suppressed(raw[ln - 1], "value-unchecked"):
                        findings.append(Finding(
                            rel, ln, "value-unchecked",
                            ".value() with no preceding ok()/has_value() "
                            "check in this scope; check first or use "
                            "RELVIEW_ASSIGN_OR_RETURN"))
                    else:
                        evidence_at = ln  # a vetted unwrap vouches for
                        # later ones in the same chunk


def check_asserts(root, files, findings):
    for path in files:
        rel = relpath(root, path)
        if rel == "src/util/status.h":
            continue  # defines RELVIEW_DCHECK
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        code = strip_comments(raw)
        for ln, line in enumerate(code, 1):
            if "static_assert" in line:
                continue
            if RAW_ASSERT.search(line):
                if not suppressed(raw[ln - 1], "raw-assert"):
                    findings.append(Finding(
                        rel, ln, "raw-assert",
                        "use RELVIEW_DCHECK (always compiled) instead of "
                        "assert (vanishes under NDEBUG)"))


def check_layering(root, files, findings):
    allowed_map = load_layering_map(root)
    check_layering_cycles(allowed_map, findings)
    for path in files:
        rel = relpath(root, path)
        if not rel.startswith("src/"):
            continue
        parts = rel.split("/")
        if len(parts) < 3:
            continue  # src/CMakeLists.txt etc.
        here = parts[1]
        allowed = allowed_map.get(here)
        if allowed is None:
            findings.append(Finding(
                rel, 1, "layering",
                f"directory src/{here}/ has no CMakeLists.txt defining "
                f"relview_{here}; the include-layering DAG is derived from "
                "target_link_libraries (see tools/relview_lint.py)"))
            continue
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        code = strip_comments(raw)
        for ln, line in enumerate(code, 1):
            m = INCLUDE.match(line)
            if not m:
                continue
            target = m.group(1).split("/")[0]
            if "/" not in m.group(1):
                continue  # same-directory or generated include
            if target == here or target in allowed:
                continue
            if target not in allowed_map:
                continue  # not a src/ subdirectory include
            if not suppressed(raw[ln - 1], "layering"):
                findings.append(Finding(
                    rel, ln, "layering",
                    f"src/{here}/ must not include \"{m.group(1)}\" — "
                    f"relview_{here} does not link relview_{target} in "
                    f"src/{here}/CMakeLists.txt (include what you link)"))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="relview repository lint (see module docstring)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"relview-lint: no src/ under root {root}", file=sys.stderr)
        return 2

    findings = []
    src_only = list(source_files(root, ["src"]))
    everything = list(source_files(
        root, ["src", "tests", "bench", "examples"]))

    check_failpoints(root, everything, findings)
    check_metric_table(root, src_only, findings)
    check_bench_docs(root, findings)
    check_mutexes(root, everything, findings)
    check_value_discipline(root, src_only, findings)
    check_asserts(root, src_only, findings)
    check_layering(root, src_only, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"relview-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
