// relview_serve: the network front-end binary (DESIGN.md §12).
//
// Boots a multi-tenant set of UpdateServices over the canonical
// Emp/Dept/Mgr chain (src/net/workload.h) and serves them over HTTP/1.1
// with admission control and graceful drain (src/net/server.h). Every
// tenant's service metrics plus the front-end's own counters are exported
// on GET /metrics through one TelemetryRegistry.
//
// Usage:
//   relview_serve [--host=127.0.0.1] [--port=0] [--tenants=4] [--emps=64]
//                 [--depts=8] [--store=DIR] [--checkpoint-every=N]
//                 [--shards=1] [--group-commit=0|1] [--group-window-us=N]
//                 [--commit-stall-ms=N] [--max-connections=64]
//                 [--max-write-queue=8] [--deadline-ms=5000]
//                 [--idle-timeout-ms=5000] [--drain-timeout-ms=5000]
//                 [--workers=0] [--trace-sample=N] [--wide-events=N]
//                 [--wide-event-log=PATH]
//
// --shards=N partitions each tenant's write path into N shard-local
// services behind the deterministic t[X∩Y]-hash router (src/shard/).
// --group-commit defaults to on when --shards > 1 and a --store is set:
// concurrent writers on one shard then share a single fsync per commit
// cohort. --group-window-us adds a leader gathering window (0 = ack as
// soon as the leader's fsync covers the cohort).
//
// Prints "listening on HOST:PORT" once ready (port resolved if 0) and
// serves until SIGTERM/SIGINT, which starts a graceful drain: in-flight
// requests finish, new ones get 503, and the process exits 0 once
// everything is joined. With --store, acked batches are journaled and
// fsync'd before the 200 goes out, so a kill -9 at any instant loses
// nothing that was acknowledged — restart with the same --store and the
// tenants recover.
//
// Observability (DESIGN.md §14): --trace-sample=N enables the span tracer
// at 1-in-N head sampling (0, the default, leaves it off) — traces export
// via GET /v1/trace as Chrome trace_event JSON, and every request echoes
// its resolved trace id in an `x-relview-trace` response header.
// --wide-events=N emits one structured JSON log line per sampled request
// (1 in N; failures and commit stalls are forced through the sampler) to
// stderr, or to PATH with --wide-event-log. --commit-stall-ms=N arms the
// group-commit stall watchdog on every shard.
//
// Fault injection: RELVIEW_FAILPOINTS is honoured (util/failpoint.h),
// e.g. RELVIEW_FAILPOINTS="journal.fsync=error" turns every write into a
// 503 durability refusal without taking the process down.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/server.h"
#include "net/workload.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/wide_event.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace {

relview::net::HttpServer* g_server = nullptr;

// Async-signal-safe by design: BeginDrain is an atomic store plus
// shutdown(2) of the listening socket.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->BeginDrain();
}

// --name=value (or --name value); empty string when absent.
std::string Flag(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  const std::string bare = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == bare && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

int IntFlag(int argc, char** argv, const char* name, int def) {
  const std::string v = Flag(argc, argv, name);
  return v.empty() ? def : std::atoi(v.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using relview::Failpoints;
  using relview::Status;

  Status fp = Failpoints::InstallFromEnv();
  if (!fp.ok()) {
    std::fprintf(stderr, "relview_serve: RELVIEW_FAILPOINTS: %s\n",
                 fp.ToString().c_str());
    return 2;
  }

  relview::net::TenantSpec spec;
  spec.tenants = IntFlag(argc, argv, "tenants", 4);
  spec.emps = static_cast<uint32_t>(IntFlag(argc, argv, "emps", 64));
  spec.depts = static_cast<uint32_t>(IntFlag(argc, argv, "depts", 8));
  spec.store_root = Flag(argc, argv, "store");
  spec.checkpoint_every =
      static_cast<uint64_t>(IntFlag(argc, argv, "checkpoint-every", 0));
  spec.shards = IntFlag(argc, argv, "shards", 1);
  spec.group_commit =
      IntFlag(argc, argv, "group-commit",
              spec.shards > 1 && !spec.store_root.empty() ? 1 : 0) != 0;
  spec.group_window_us =
      static_cast<uint32_t>(IntFlag(argc, argv, "group-window-us", 0));
  spec.commit_stall_ms =
      static_cast<uint32_t>(IntFlag(argc, argv, "commit-stall-ms", 0));

  const int trace_sample = IntFlag(argc, argv, "trace-sample", 0);
  if (trace_sample > 0) {
    relview::GlobalTracer().Enable(static_cast<uint32_t>(trace_sample));
  }
  const int wide_every = IntFlag(argc, argv, "wide-events", 0);
  if (wide_every > 0) {
    const std::string wide_path = Flag(argc, argv, "wide-event-log");
    if (wide_path.empty()) {
      relview::GlobalWideEvents().Configure(
          stderr, static_cast<uint32_t>(wide_every));
    } else {
      Status ws = relview::GlobalWideEvents().OpenFile(
          wide_path, static_cast<uint32_t>(wide_every));
      if (!ws.ok()) {
        std::fprintf(stderr, "relview_serve: wide-event-log: %s\n",
                     ws.ToString().c_str());
        return 2;
      }
    }
  }

  auto tenants = relview::net::MakeTenants(spec);
  if (!tenants.ok()) {
    std::fprintf(stderr, "relview_serve: tenants: %s\n",
                 tenants.status().ToString().c_str());
    return 2;
  }

  relview::TelemetryRegistry registry;
  for (int i = 0; i < tenants->size(); ++i) {
    tenants->services[static_cast<size_t>(i)]->RegisterTelemetry(
        &registry, "tenant_" + tenants->names[static_cast<size_t>(i)]);
  }

  relview::net::ServerOptions options;
  const std::string host = Flag(argc, argv, "host");
  if (!host.empty()) options.host = host;
  options.port = IntFlag(argc, argv, "port", 0);
  options.worker_threads = IntFlag(argc, argv, "workers", 0);
  options.max_connections = IntFlag(argc, argv, "max-connections", 64);
  options.max_write_queue = IntFlag(argc, argv, "max-write-queue", 8);
  options.request_deadline_ms = IntFlag(argc, argv, "deadline-ms", 5000);
  options.idle_timeout_ms = IntFlag(argc, argv, "idle-timeout-ms", 5000);
  options.drain_timeout_ms = IntFlag(argc, argv, "drain-timeout-ms", 5000);

  auto server =
      relview::net::HttpServer::Start(&*tenants, &registry, options);
  if (!server.ok()) {
    std::fprintf(stderr, "relview_serve: start: %s\n",
                 server.status().ToString().c_str());
    return 2;
  }
  g_server = server->get();

  struct sigaction sa {};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::printf(
      "listening on %s:%d (%d tenants, %u emps x %u depts, %d shard%s%s%s%s)"
      "\n",
      options.host.c_str(), (*server)->port(), spec.tenants, spec.emps,
      spec.depts, spec.shards, spec.shards == 1 ? "" : "s",
      spec.group_commit ? ", group-commit" : "",
      spec.store_root.empty() ? ", in-memory" : ", store=",
      spec.store_root.c_str());
  std::fflush(stdout);

  (*server)->Wait();
  std::printf("drained, exiting\n");
  return 0;
}
