#!/usr/bin/env python3
"""Unit tests for tools/relview_lint.py — each rule gets a firing fixture
and a clean fixture, plus coverage for suppression comments and the
comment stripper. Run directly or through ctest (relview_lint_selftest).
"""

import contextlib
import io
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import relview_lint  # noqa: E402


class LintFixture(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="relview_lint_test_")
        self.addCleanup(shutil.rmtree, self.root)
        os.makedirs(os.path.join(self.root, "src"), exist_ok=True)
        self.write("docs/OPERATIONS.md", "Catalog: `known.site`\n")
        # The layering DAG is derived from each src/<dir>/CMakeLists.txt,
        # so every directory a fixture writes into needs one. Mirror a
        # slice of the real tree's edges.
        self.link("util")
        self.link("relational", "util")
        self.link("view", "relational", "util")
        self.link("service", "view", "relational", "util")

    def link(self, dirname, *deps):
        """Writes the minimal CMakeLists.txt that gives src/<dirname>/ the
        given direct link deps (= allowed include targets)."""
        libs = " ".join(f"relview_{d}" for d in deps)
        self.write(
            f"src/{dirname}/CMakeLists.txt",
            f"add_library(relview_{dirname} a.cc)\n"
            + (f"target_link_libraries(relview_{dirname} PUBLIC {libs} "
               "Threads::Threads)\n" if deps else ""))

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def run_lint(self):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = relview_lint.main(["--root", self.root])
        return code, out.getvalue()

    def assert_rules(self, output, *rules):
        for rule in rules:
            self.assertIn(f"[{rule}]", output, output)

    def assert_clean(self):
        code, out = self.run_lint()
        self.assertEqual(code, 0, out)
        self.assertEqual(out, "")


class FailpointRules(LintFixture):
    def test_clean_documented_site(self):
        self.write("src/service/a.cc", 'RELVIEW_FAILPOINT("known.site");\n')
        self.assert_clean()

    def test_duplicate_site(self):
        self.write("src/service/a.cc", 'RELVIEW_FAILPOINT("known.site");\n')
        self.write("src/service/b.cc", 'RELVIEW_FAILPOINT("known.site");\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "failpoint-duplicate")

    def test_undocumented_site(self):
        self.write("src/service/a.cc", 'RELVIEW_FAILPOINT("new.site");\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "failpoint-undocumented")

    def test_nonliteral_argument(self):
        self.write("src/service/a.cc", "RELVIEW_FAILPOINT(kSiteName);\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "failpoint-nonliteral")

    def test_direct_check_call(self):
        self.write("src/service/a.cc", 'Failpoints::Check("known.site");\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "failpoint-direct-check")

    def test_defining_files_exempt(self):
        self.write("src/util/failpoint.h",
                   "#define RELVIEW_FAILPOINT(name) "
                   "::relview::Failpoints::Check(name)\n")
        self.write("src/util/failpoint.cc",
                   "FailpointHit Failpoints::Check(const char* name) {\n"
                   "  return Lookup(name);\n}\n")
        self.assert_clean()

    def test_commented_site_ignored(self):
        self.write("src/service/a.cc",
                   '// RELVIEW_FAILPOINT("commented.out")\n')
        self.assert_clean()

    def test_commit_site_prose_mention_is_not_enough(self):
        # `commit.*` (group-commit queue) sites must have a row in the
        # catalog *table*; a prose mention elsewhere satisfies only the
        # generic failpoint-undocumented rule.
        self.write("docs/OPERATIONS.md",
                   "The group-commit leader hits `commit.fsync` once per "
                   "cohort.\n")
        self.write("src/service/a.cc",
                   'RELVIEW_FAILPOINT("commit.fsync");\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "failpoint-commit-catalog")
        self.assertNotIn("[failpoint-undocumented]", out, out)

    def test_commit_site_with_catalog_row_clean(self):
        self.write("docs/OPERATIONS.md",
                   "Failpoint catalog:\n"
                   "\n"
                   "| Name | Site | Sensible actions |\n"
                   "|---|---|---|\n"
                   "| `commit.fsync` | before the cohort fsync | `error` |\n")
        self.write("src/service/a.cc",
                   'RELVIEW_FAILPOINT("commit.fsync");\n')
        self.assert_clean()

    def test_commit_rule_ignores_rows_after_table_ends(self):
        # The catalog region stops at the first non-table line; a stray
        # table further down the document does not count.
        self.write("docs/OPERATIONS.md",
                   "Failpoint catalog:\n"
                   "\n"
                   "| `journal.fsync` | before fsync | `error` |\n"
                   "\n"
                   "Unrelated prose ends the catalog region.\n"
                   "\n"
                   "| `commit.fsync` | some other table | n/a |\n")
        self.write("src/service/a.cc",
                   'RELVIEW_FAILPOINT("commit.fsync");\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "failpoint-commit-catalog")

    def test_non_commit_site_not_held_to_table_rule(self):
        # known.site is documented (prose is fine for non-commit sites).
        self.write("src/service/a.cc", 'RELVIEW_FAILPOINT("known.site");\n')
        self.assert_clean()


class MetricTableRule(LintFixture):
    def ops_with_table(self, *rows):
        table = "".join(f"| `{name}` | {kind} | doc |\n"
                        for name, kind in rows)
        self.write("docs/OPERATIONS.md",
                   "Catalog: `known.site`\n"
                   "\n"
                   "Metric families:\n"
                   "\n"
                   "| Series | Kind | Meaning |\n"
                   "|---|---|---|\n"
                   + table)

    def test_undocumented_family(self):
        # Default fixture OPERATIONS.md has no "Metric families:" table at
        # all, so any family literal fires.
        self.write("src/service/a.cc",
                   'GaugeFamily("relview_foo_total", "doc", 1);\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "metric-table")

    def test_documented_family_clean(self):
        self.ops_with_table(("relview_foo_total", "counter"))
        self.write("src/service/a.cc",
                   'GaugeFamily("relview_foo_total", "doc", 1);\n')
        self.assert_clean()

    def test_one_finding_per_family_not_per_use(self):
        self.write("src/service/a.cc",
                   'Add("relview_foo_total");\nAdd("relview_foo_total");\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[metric-table]"), 1, out)

    def test_source_prefix_satisfied_by_prefixed_rows(self):
        # std::string("relview_net_") + RouteName(route) + "_latency..."
        # leaves the literal "relview_net_"; any table row starting with
        # that prefix documents the composition.
        self.ops_with_table(("relview_net_batch_latency_seconds", "summary"))
        self.write("src/service/a.cc",
                   'auto n = std::string("relview_net_") + route;\n')
        self.assert_clean()

    def test_table_prefix_row_covers_composed_families(self):
        # A trailing-underscore table row ("relview_engine_") blanket-
        # documents the X-macro families composed from it.
        self.ops_with_table(("relview_engine_", "gauges"))
        self.write("src/service/a.cc",
                   'Add("relview_engine_closure_hits");\n')
        self.assert_clean()

    def test_table_region_ends_at_prose(self):
        self.write("docs/OPERATIONS.md",
                   "Catalog: `known.site`\n"
                   "\n"
                   "Metric families:\n"
                   "\n"
                   "| `relview_a_total` | counter | doc |\n"
                   "\n"
                   "Prose ends the table region.\n"
                   "\n"
                   "| `relview_b_total` | some other table | n/a |\n")
        self.write("src/service/a.cc", 'Add("relview_b_total");\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "metric-table")

    def test_literal_in_comment_ignored(self):
        self.write("src/service/a.cc",
                   '// exported as "relview_ghost_total"\n')
        self.assert_clean()

    def test_tests_and_bench_not_in_scope(self):
        # The rule covers src/ (where families are registered); tests and
        # benches may scrape family names freely.
        self.write("tests/a_test.cc", 'Expect("relview_foo_total");\n')
        self.write("bench/b.cc", 'Scrape("relview_bar_total");\n')
        self.assert_clean()

    def test_suppression(self):
        self.write("src/service/a.cc",
                   'Add("relview_foo_total");'
                   '  // relview-lint: allow(metric-table)\n')
        self.assert_clean()


class BenchDocRule(LintFixture):
    CI = (".github/workflows/ci.yml")

    def test_no_ci_file_no_findings(self):
        # Fixture roots have no workflow; the rule must stay silent.
        self.assert_clean()

    def test_produced_artifact_without_section(self):
        self.write(self.CI,
                   "      - run: ./bench --json=BENCH_foo.json\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "bench-doc")

    def test_section_heading_satisfies_rule(self):
        self.write(self.CI,
                   "      - run: ./bench --json=BENCH_foo.json\n")
        self.write("docs/PERFORMANCE.md",
                   "## `BENCH_foo.json` — the foo benchmark\n\n"
                   "What it measures.\n")
        self.assert_clean()

    def test_prose_mention_is_not_a_section(self):
        self.write(self.CI,
                   "      - run: ./bench --json=BENCH_foo.json\n")
        self.write("docs/PERFORMANCE.md",
                   "## Overview\n\nCI uploads BENCH_foo.json nightly.\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "bench-doc")

    def test_upload_path_lines_count_as_produced(self):
        self.write(self.CI,
                   "          path: |\n"
                   "            BENCH_bar.json\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "bench-doc")

    def test_stale_section_flagged(self):
        self.write(self.CI,
                   "      - run: ./bench --json=BENCH_foo.json\n")
        self.write("docs/PERFORMANCE.md",
                   "## `BENCH_foo.json`\n\ndoc\n\n"
                   "## `BENCH_gone.json`\n\nCI stopped making this.\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "bench-doc")
        self.assertIn("BENCH_gone.json", out)

    def test_one_finding_per_artifact(self):
        self.write(self.CI,
                   "      - run: ./bench --json=BENCH_foo.json\n"
                   "      - run: test -s BENCH_foo.json\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[bench-doc]"), 1, out)

    def test_glob_upload_pattern_ignored(self):
        # `path: BENCH_*.json` is a glob, not an artifact name.
        self.write(self.CI,
                   "          path: BENCH_*.json\n")
        self.assert_clean()

    def test_suppression_on_ci_line(self):
        self.write(self.CI,
                   "      - run: ./bench --json=BENCH_tmp.json"
                   "  # relview-lint: allow(bench-doc)\n")
        self.assert_clean()


class MutexRules(LintFixture):
    def test_naked_std_mutex(self):
        self.write("src/view/a.h", "#include <mutex>\nstd::mutex mu_;\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "naked-std-mutex")

    def test_shared_and_recursive_variants_flagged(self):
        self.write("src/view/a.h",
                   "std::shared_mutex a_;\nstd::recursive_mutex b_;\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[naked-std-mutex]"), 2, out)

    def test_unguarded_member(self):
        self.write("src/view/a.h", "class C {\n  Mutex mu_;\n};\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "unguarded-mutex-member")

    def test_guarded_member_clean(self):
        self.write("src/view/a.h",
                   "class C {\n"
                   "  mutable Mutex mu_;\n"
                   "  int x_ RELVIEW_GUARDED_BY(mu_);\n"
                   "};\n")
        self.assert_clean()

    def test_pt_guarded_counts_as_user(self):
        self.write("src/view/a.h",
                   "class C {\n"
                   "  Mutex mu_;\n"
                   "  std::unique_ptr<T> p_ RELVIEW_PT_GUARDED_BY(mu_);\n"
                   "};\n")
        self.assert_clean()

    def test_member_with_trailing_annotation(self):
        self.write("src/view/a.h",
                   "class C {\n"
                   "  SharedMutex snap_mu_ RELVIEW_ACQUIRED_AFTER(w_mu_);\n"
                   "};\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "unguarded-mutex-member")

    def test_local_mutex_not_a_member(self):
        # No trailing underscore -> local variable, not checked for users.
        self.write("src/view/a.cc", "void f() {\n  Mutex acc_mu;\n}\n")
        self.assert_clean()

    def test_annotations_header_exempt(self):
        self.write("src/util/annotations.h",
                   "class Mutex {\n  std::mutex mu_;\n};\n")
        self.assert_clean()


class ValueRule(LintFixture):
    def test_unchecked_value(self):
        self.write("src/view/a.cc",
                   "void f() {\n  auto v = r.value();\n}\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "value-unchecked")

    def test_checked_value_clean(self):
        self.write("src/view/a.cc",
                   "void f() {\n"
                   "  if (!r.ok()) return;\n"
                   "  auto v = r.value();\n"
                   "}\n")
        self.assert_clean()

    def test_dcheck_counts_as_evidence(self):
        self.write("src/view/a.cc",
                   "void f() {\n"
                   '  RELVIEW_DCHECK(r.has_value(), "must hold");\n'
                   "  auto v = r.value();\n"
                   "}\n")
        self.assert_clean()

    def test_evidence_does_not_leak_across_chunks(self):
        self.write("src/view/a.cc",
                   "void f() {\n"
                   "  if (!r.ok()) return;\n"
                   "}\n"
                   "void g() {\n"
                   "  auto v = r.value();\n"
                   "}\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "value-unchecked")

    def test_value_or_not_flagged(self):
        self.write("src/view/a.cc",
                   "void f() {\n  auto v = r.value_or(0);\n}\n")
        self.assert_clean()

    def test_tests_directory_not_in_scope(self):
        self.write("tests/a_test.cc",
                   "void f() {\n  auto v = r.value();\n}\n")
        self.assert_clean()


class AssertRule(LintFixture):
    def test_raw_assert(self):
        self.write("src/view/a.cc", "void f() {\n  assert(x > 0);\n}\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "raw-assert")

    def test_static_assert_clean(self):
        self.write("src/view/a.cc", "static_assert(sizeof(int) == 4);\n")
        self.assert_clean()

    def test_status_header_exempt(self):
        self.write("src/util/status.h",
                   "#define RELVIEW_DCHECK(cond, msg) assert(cond)\n")
        self.assert_clean()

    def test_assert_in_comment_clean(self):
        self.write("src/view/a.cc", "// callers assert(ok) beforehand\n")
        self.assert_clean()


class LayeringRule(LintFixture):
    def test_upward_include_flagged(self):
        self.write("src/relational/a.h",
                   '#include "service/update_service.h"\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "layering")

    def test_downward_include_clean(self):
        self.write("src/service/a.h", '#include "view/translator.h"\n')
        self.assert_clean()

    def test_sibling_include_needs_a_link_edge(self):
        # view does not link service in the fixture DAG...
        self.write("src/view/a.h", '#include "service/update.h"\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "layering")

    def test_cmake_edge_grants_the_include(self):
        # ...but adding the target_link_libraries edge makes the same
        # include clean: the build graph IS the layering spec.
        self.link("net", "service", "view", "relational", "util")
        self.write("src/net/a.h", '#include "service/update.h"\n')
        self.assert_clean()

    def test_multiline_link_command_parsed(self):
        self.write("src/net/CMakeLists.txt",
                   "add_library(relview_net a.cc)\n"
                   "target_link_libraries(relview_net\n"
                   "  PUBLIC relview_service  # front-door over the service\n"
                   "         relview_util Threads::Threads)\n")
        self.write("src/net/a.h", '#include "service/update.h"\n')
        self.assert_clean()

    def test_same_directory_clean(self):
        self.write("src/view/a.h", '#include "view/b.h"\n')
        self.assert_clean()

    def test_system_and_foreign_includes_ignored(self):
        self.write("src/view/a.h",
                   "#include <vector>\n"
                   '#include "gtest/gtest.h"\n')
        self.assert_clean()

    def test_unknown_directory_flagged(self):
        # No CMakeLists.txt -> the directory has no place in the DAG.
        self.write("src/newdir/a.h", "int x;\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "layering")

    def test_shard_layer_sits_above_service(self):
        # Mirror of the real tree's src/shard/ edges: shard links service
        # (and below), so shard -> service includes are clean while
        # service -> shard includes are flagged — the router composition
        # layer may see the per-shard services, never the reverse.
        self.link("shard", "service", "view", "relational", "util")
        self.write("src/shard/a.h", '#include "service/update_service.h"\n')
        self.assert_clean()
        self.write("src/service/b.h", '#include "shard/router.h"\n')
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "layering")

    def test_link_cycle_flagged(self):
        self.link("aaa", "bbb")
        self.link("bbb", "aaa")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assertIn("cycle", out)
        self.assert_rules(out, "layering")


class Suppression(LintFixture):
    def test_allow_comment_suppresses(self):
        self.write("src/view/a.cc",
                   "void f() {\n"
                   "  assert(x);  // relview-lint: allow(raw-assert)\n"
                   "}\n")
        self.assert_clean()

    def test_allow_wrong_rule_does_not_suppress(self):
        self.write("src/view/a.cc",
                   "void f() {\n"
                   "  assert(x);  // relview-lint: allow(layering)\n"
                   "}\n")
        code, out = self.run_lint()
        self.assertEqual(code, 1)
        self.assert_rules(out, "raw-assert")


class RealTree(unittest.TestCase):
    def test_repository_is_clean(self):
        repo = os.path.dirname(
            os.path.dirname(os.path.abspath(relview_lint.__file__)))
        if not os.path.isdir(os.path.join(repo, "src")):
            self.skipTest("not running inside the repository")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = relview_lint.main(["--root", repo])
        self.assertEqual(code, 0, out.getvalue())


if __name__ == "__main__":
    unittest.main()
