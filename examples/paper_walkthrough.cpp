// Paper walkthrough: every inline example and remark in Cosmadakis &
// Papadimitriou (1983/84), executed live against the library.
//
//   §2   the Employee-Department-Manager schema; ED/EM complementary
//        (though not independent in Rissanen's sense — the decomposition
//        is not dependency preserving);
//   §2   the identity view is a complement of every view;
//   Thm2 a tiny 3-SAT instance pushed through the minimum-complement
//        reduction, with the decoded satisfying assignment;
//   §3   conditions (a)-(c) of Theorem 3 on concrete insertions, with the
//        chase witness of an untranslatable one;
//   §5   the EFD examples "Cost-Profitrate ->e Price" and
//        "Course-Student-Grade ->e Average-Grade" with actual witness
//        functions, and Proposition 1's implication behaviour.
//
// Build & run:  ./build/examples/paper_walkthrough

#include <cstdio>

#include "deps/armstrong.h"
#include "deps/keys.h"
#include "deps/satisfies.h"
#include "reductions/reductions.h"
#include "solvers/dpll.h"
#include "view/complement.h"
#include "view/insertion.h"

using namespace relview;

namespace {

Tuple Row(std::initializer_list<const char*> names, ValuePool* pool) {
  std::vector<Value> vals;
  for (const char* n : names) vals.push_back(pool->Intern(n));
  return Tuple(std::move(vals));
}

void Heading(const char* text) { std::printf("\n== %s ==\n", text); }

}  // namespace

int main() {
  ValuePool pool;

  // ---------------- Section 2 ----------------
  Heading("S2: the Employee-Department-Manager schema");
  Universe u = Universe::Parse("E D M").value();
  DependencySet sigma;
  sigma.fds = FDSet::Parse(u, "E -> D; D -> M").value();
  std::printf("Sigma: %s\n", sigma.fds.ToString(&u).c_str());
  std::printf("X = ED, Y = EM complementary (the paper's example): %s\n",
              AreComplementary(u.All(), sigma, u.SetOf("E D"),
                               u.SetOf("E M"))
                  ? "yes"
                  : "no");
  // Not independent in Rissanen's sense: D -> M is not enforceable within
  // either projection (the decomposition is not dependency preserving),
  // demonstrated by the projected covers.
  FDSet ed_fds = sigma.fds.ProjectExact(u.SetOf("E D"));
  FDSet em_fds = sigma.fds.ProjectExact(u.SetOf("E M"));
  FDSet both = ed_fds;
  for (const FD& fd : em_fds.fds()) both.Add(fd);
  std::printf("...but not independent: projections enforce D -> M? %s\n",
              both.Implies(u.SetOf("D"), u.SetOf("M")) ? "yes" : "no");
  std::printf("identity view U is a complement of ED: %s\n",
              AreComplementary(u.All(), sigma, u.SetOf("E D"), u.All())
                  ? "yes"
                  : "no");

  // ---------------- Theorem 2 ----------------
  Heading("Thm 2: minimum complement via 3-SAT");
  CNF3 phi;
  phi.num_vars = 3;
  phi.clauses.push_back(
      {Lit(0, true), Lit(1, true), Lit(2, true)});
  phi.clauses.push_back(
      {Lit(0, false), Lit(1, true), Lit(2, false)});
  std::printf("phi = %s\n", phi.ToString().c_str());
  MinComplementReduction red = ReduceSatToMinComplement(phi);
  DependencySet rs;
  rs.fds = red.fds;
  auto min = MinimumComplement(red.universe.All(), rs, red.x);
  if (min.ok()) {
    std::printf("minimum complement of X has %d attributes "
                "(target 1 + n = %d): %s\n",
                min->complement.Count(), red.target_size,
                red.universe.Format(min->complement).c_str());
    const std::vector<bool> h = red.DecodeAssignment(min->complement);
    std::printf("decoded assignment satisfies phi: %s (DPLL agrees: %s)\n",
                phi.Eval(h) ? "yes" : "no",
                SolveSat(phi).satisfiable ? "SAT" : "UNSAT");
  }

  // ---------------- Theorem 3 ----------------
  Heading("Thm 3: conditions (a)-(c) on concrete insertions");
  Relation v(u.SetOf("E D"));
  v.AddRow(Row({"ann", "sales"}, &pool));
  v.AddRow(Row({"bob", "sales"}, &pool));
  v.AddRow(Row({"cat", "dev"}, &pool));
  const AttrSet x = u.SetOf("E D");
  const AttrSet y = u.SetOf("D M");
  struct Probe {
    const char* label;
    Tuple t;
  };
  std::vector<Probe> probes = {
      {"(dan, sales)  — new employee, known dept", Row({"dan", "sales"}, &pool)},
      {"(dan, hr)     — unknown dept (condition a)", Row({"dan", "hr"}, &pool)},
      {"(ann, dev)    — employee moves (condition c)", Row({"ann", "dev"}, &pool)},
  };
  for (const Probe& p : probes) {
    auto rep = CheckInsertion(u.All(), sigma.fds, x, y, v, p.t);
    std::printf("insert %-44s -> %s\n", p.label,
                rep.ok() ? rep->ToString().c_str()
                         : rep.status().ToString().c_str());
  }

  // ---------------- Section 5 ----------------
  Heading("S5: explicit functional dependencies");
  // Cost-Profitrate ->e Price with a real witness: Price = Cost + Rate.
  Universe u5 = Universe::Parse("Cost Rate Price").value();
  auto price_witness = [&u5](const Relation& in) {
    Relation out(u5.SetOf("Cost Rate Price"));
    const Schema& os = out.schema();
    const Schema& is = in.schema();
    for (const Tuple& t : in.rows()) {
      Tuple row(os.arity());
      row.Set(os, u5["Cost"], t.At(is, u5["Cost"]));
      row.Set(os, u5["Rate"], t.At(is, u5["Rate"]));
      row.Set(os, u5["Price"],
              Value::Const(t.At(is, u5["Cost"]).index() +
                           t.At(is, u5["Rate"]).index()));
      out.AddRow(row);
    }
    out.Normalize();
    return out;
  };
  EFD price_efd(u5.SetOf("Cost Rate"), u5.SetOf("Price"), price_witness);
  Relation priced(u5.All());
  priced.AddRow(Tuple({Value::Const(10), Value::Const(2), Value::Const(12)}));
  priced.AddRow(Tuple({Value::Const(7), Value::Const(3), Value::Const(10)}));
  std::printf("Cost-Profitrate ->e Price holds of the instance: %s\n",
              SatisfiesEFD(priced, price_efd) ? "yes" : "no");
  Relation mispriced(u5.All());
  mispriced.AddRow(Tuple({Value::Const(10), Value::Const(2),
                          Value::Const(99)}));
  std::printf("...and detects a mispriced row: %s\n",
              SatisfiesEFD(mispriced, price_efd) ? "MISSED" : "violation");

  // Proposition 1 via Armstrong derivations on EFDs.
  EFDSet efds;
  efds.Add(EFD(u5.SetOf("Cost Rate"), u5.SetOf("Price")));
  auto derivation = DeriveEFD(efds, u5.SetOf("Cost Rate"),
                              u5.SetOf("Price"));
  if (derivation.ok()) {
    std::printf("\nderivation of Cost Rate ->e Price:\n%s",
                (*derivation)->ToString(&u5).c_str());
  }
  // Theorem 10: with the EFD, {Cost, Rate} alone complements the full
  // view — Price is computed, not stored.
  DependencySet s5;
  s5.efds = efds;
  std::printf("{Cost,Rate} complements {Cost,Rate,Price} under the EFD: "
              "%s\n",
              AreComplementary(u5.All(), s5, u5.SetOf("Cost Rate Price"),
                               u5.SetOf("Cost Rate"))
                  ? "yes (Theorem 10)"
                  : "no");
  return 0;
}
