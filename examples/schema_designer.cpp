// Schema designer: the full pipeline from a universal schema to updatable
// multirelation views —
//   1. analyze a universal-relation schema (candidate keys, normal forms);
//   2. decompose it into lossless BCNF components (DecomposeBCNF);
//   3. register the components as a MultiSchema (losslessness re-verified
//      by the tableau chase);
//   4. update a projection-of-join view under a constant complement, with
//      the translation decomposed back into the base tables.
//
// This exercises the paper's Section 6(3) direction end to end on an
// inventory domain.
//
// Build & run:  ./build/examples/schema_designer

#include <cstdio>

#include "deps/keys.h"
#include "multirel/multirel.h"

using namespace relview;

namespace {

Tuple Row(std::initializer_list<const char*> names, ValuePool* pool) {
  std::vector<Value> vals;
  for (const char* n : names) vals.push_back(pool->Intern(n));
  return Tuple(std::move(vals));
}

}  // namespace

int main() {
  // Inventory universe: an order line knows its product; products have a
  // supplier; suppliers have a city.
  Universe u = Universe::Parse("Order Product Supplier City").value();
  DependencySet sigma;
  sigma.fds = FDSet::Parse(
                  u, "Order -> Product; Product -> Supplier; "
                     "Supplier -> City")
                  .value();

  std::printf("universal schema U = %s\nSigma: %s\n\n",
              u.Format(u.All()).c_str(), sigma.fds.ToString(&u).c_str());

  auto keys = CandidateKeys(u.All(), sigma.fds);
  if (keys.ok()) {
    std::printf("candidate keys:");
    for (const AttrSet& k : *keys) std::printf(" %s", u.Format(k).c_str());
    std::printf("\n");
  }
  std::printf("BCNF: %s;  3NF: %s\n", IsBCNF(u.All(), sigma.fds) ? "yes" : "no",
              Is3NF(u.All(), sigma.fds).value_or(false) ? "yes" : "no");

  // 2. Decompose.
  std::vector<AttrSet> parts = DecomposeBCNF(u.All(), sigma.fds);
  std::printf("\nlossless BCNF decomposition:\n");
  std::vector<std::string> names;
  for (size_t i = 0; i < parts.size(); ++i) {
    names.push_back("R" + std::to_string(i));
    std::printf("  %s = %s (BCNF: %s)\n", names.back().c_str(),
                u.Format(parts[i]).c_str(),
                IsBCNF(parts[i], sigma.fds) ? "yes" : "no");
  }

  // 3. Register as a multirelation schema.
  auto schema = MultiSchema::Create(u, sigma, names, parts);
  if (!schema.ok()) {
    std::printf("schema rejected: %s\n", schema.status().ToString().c_str());
    return 1;
  }

  ValuePool pool;
  MultiDatabase db(&*schema);
  // Populate via one universal relation and decompose — guaranteed
  // globally consistent.
  Relation universal(u.All());
  universal.AddRow(Row({"o1", "cog", "acme", "berlin"}, &pool));
  universal.AddRow(Row({"o2", "cog", "acme", "berlin"}, &pool));
  universal.AddRow(Row({"o3", "pin", "zeta", "paris"}, &pool));
  db.DecomposeFrom(universal);
  for (int i = 0; i < schema->size(); ++i) {
    std::printf("\nbase table %s:\n%s", schema->name(i).c_str(),
                db.instance(i).ToString(&u, &pool).c_str());
  }

  // 4. Update through the order view (Order, Product) holding the
  // product catalog (Product, Supplier, City) constant.
  auto vt = MultiRelViewTranslator::Create(&*schema, u.SetOf("Order Product"),
                                           u.SetOf("Product Supplier City"));
  if (!vt.ok()) {
    std::printf("translator rejected: %s\n", vt.status().ToString().c_str());
    return 1;
  }
  if (Status st = vt->Bind(std::move(db)); !st.ok()) {
    std::printf("bind failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto report = [&](const char* what, const Status& st) {
    std::printf("  %-40s %s\n", what, st.ToString().c_str());
  };
  std::printf("\nview updates on (Order, Product):\n");
  report("insert order o4 for cog", vt->Insert(Row({"o4", "cog"}, &pool)));
  report("insert order o5 for bolt (unknown product)",
         vt->Insert(Row({"o5", "bolt"}, &pool)));
  report("delete order o2", vt->Delete(Row({"o2", "cog"}, &pool)));
  report("delete order o3 (pin's last order)",
         vt->Delete(Row({"o3", "pin"}, &pool)));

  std::printf("\nbase tables after translation:\n");
  for (int i = 0; i < schema->size(); ++i) {
    std::printf("%s:\n%s", schema->name(i).c_str(),
                vt->database().instance(i).ToString(&u, &pool).c_str());
  }
  std::printf("\n(the product catalog never changed: it was the constant "
              "complement)\n");
  return 0;
}
