// Complement advisor: the "guidance toward the definition of a complement"
// the paper envisions a database system providing (Section 2 and 3.3).
//
// Given a schema and a view, the advisor
//   * lists which candidate complements are valid (Theorem 1),
//   * computes minimal complements under different removal orders
//     (Corollary 2) and the exact minimum complement (Theorem 2's
//     optimization problem),
//   * for a concrete pending insertion, searches for a complement that
//     renders it translatable (Theorem 6).
//
// Build & run:  ./build/examples/complement_advisor

#include <cstdio>

#include "view/complement.h"
#include "view/find_complement.h"
#include "view/test2.h"

using namespace relview;

namespace {

Tuple Row(std::initializer_list<const char*> names, ValuePool* pool) {
  std::vector<Value> vals;
  for (const char* n : names) vals.push_back(pool->Intern(n));
  return Tuple(std::move(vals));
}

}  // namespace

int main() {
  // A supplier schema: Part -> Supplier, Supplier -> City,
  // Part Warehouse -> Qty.
  Universe u = Universe::Parse("Part Warehouse Supplier City Qty").value();
  DependencySet sigma;
  sigma.fds = FDSet::Parse(u,
                           "Part -> Supplier; Supplier -> City; "
                           "Part Warehouse -> Qty")
                  .value();
  const AttrSet x = u.SetOf("Part Warehouse Supplier");
  std::printf("schema Sigma: %s\n", sigma.fds.ToString(&u).c_str());
  std::printf("user view X = %s\n\n", u.Format(x).c_str());

  // Which two-attribute-ish complements work?
  std::printf("candidate complements (Theorem 1 check):\n");
  for (const char* spec :
       {"City Qty", "Supplier City Qty", "Part City Qty",
        "Part Warehouse City Qty", "Warehouse City Qty"}) {
    const AttrSet y = u.SetOf(spec);
    const bool ok = AreComplementary(u.All(), sigma, x, y);
    const bool good =
        ok && CheckGoodComplement(u.All(), sigma.fds, x, y).good;
    std::printf("  Y = %-28s %s%s\n", u.Format(y).c_str(),
                ok ? "complementary" : "NOT complementary",
                good ? " (good: Test 2 exact)" : "");
  }

  // Minimal complements depend on the removal order (Corollary 2).
  std::printf("\nminimal complements under different removal orders:\n");
  {
    const AttrSet m1 = MinimalComplement(u.All(), sigma, x);
    std::printf("  ascending order:  %s\n", u.Format(m1).c_str());
    std::vector<AttrId> reversed = x.ToVector();
    std::reverse(reversed.begin(), reversed.end());
    const AttrSet m2 = MinimalComplement(u.All(), sigma, x, &reversed);
    std::printf("  descending order: %s\n", u.Format(m2).c_str());
  }

  // The exact minimum (NP-complete in general, Theorem 2).
  auto min = MinimumComplement(u.All(), sigma, x);
  if (min.ok()) {
    std::printf("\nminimum complement: %s (%d attributes, %lld "
                "complementarity tests)\n",
                u.Format(min->complement).c_str(), min->complement.Count(),
                static_cast<long long>(min->tests));
  }

  // A pending insertion: which complement makes it translatable?
  // Note the Qty lesson first: under THIS schema, Part Warehouse -> Qty
  // means any new (part, warehouse) pair would have to invent a quantity
  // in the constant complement — nothing can help (Theorem 6 returns
  // empty).
  ValuePool pool;
  {
    Relation v(x);
    v.AddRow(Row({"bolt", "east", "acme"}, &pool));
    v.AddRow(Row({"nut", "east", "acme"}, &pool));
    v.AddRow(Row({"cog", "west", "zeta"}, &pool));
    const Tuple t = Row({"pin", "east", "acme"}, &pool);
    std::printf("\npending insertion (pin, east, acme) with Qty in U:\n");
    auto found = FindTranslatingComplement(u.All(), sigma.fds, x, v, t);
    std::printf("  %s\n",
                (found.ok() && found->found)
                    ? ("translatable under " +
                       u.Format(found->complement))
                          .c_str()
                    : "no complement works: the hidden Qty of a new "
                      "(part, warehouse) pair cannot be held constant");
  }

  // Without the stored quantity the search succeeds.
  Universe u2 = Universe::Parse("Part Warehouse Supplier City").value();
  FDSet fds2 = FDSet::Parse(u2, "Part -> Supplier; Supplier -> City").value();
  const AttrSet x2 = u2.SetOf("Part Warehouse Supplier");
  Relation v2(x2);
  v2.AddRow(Row({"bolt", "east", "acme"}, &pool));
  v2.AddRow(Row({"nut", "east", "acme"}, &pool));
  v2.AddRow(Row({"cog", "west", "zeta"}, &pool));
  std::printf("\nsame view without Qty (U = Part Warehouse Supplier "
              "City):\n");
  const Tuple t2 = Row({"pin", "east", "acme"}, &pool);
  auto found2 = FindTranslatingComplement(u2.All(), fds2, x2, v2, t2);
  if (found2.ok() && found2->found) {
    std::printf("  insertion (pin, east, acme) translatable under constant "
                "Y = %s (%d candidate W_r sets, %d tests)\n",
                u2.Format(found2->complement).c_str(), found2->candidates,
                found2->tests_run);
  }

  // And one no complement can fix: a part moving to a new supplier
  // contradicts Part -> Supplier at the view level.
  const Tuple bad = Row({"bolt", "west", "zeta"}, &pool);
  std::printf("  insertion (bolt, west, zeta): ");
  auto none = FindTranslatingComplement(u2.All(), fds2, x2, v2, bad);
  if (none.ok() && !none->found) {
    std::printf("correctly rejected under every candidate complement "
                "(Part -> Supplier violated by V ∪ t)\n");
  } else {
    std::printf("unexpectedly accepted!\n");
  }
  return 0;
}
