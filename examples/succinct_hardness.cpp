// Succinct views and the paper's hardness constructions (Section 3.2,
// Theorems 4, 5, 7): builds the reductions from concrete formulas, shows
// the exponential gap between description size and expansion size, and
// cross-checks the library's algorithms against SAT/QBF oracles.
//
// Build & run:  ./build/examples/succinct_hardness

#include <cstdio>

#include "reductions/reductions.h"
#include "solvers/dpll.h"
#include "util/small_util.h"
#include "view/find_complement.h"
#include "view/insertion.h"
#include "view/test1.h"

using namespace relview;

int main() {
  Rng rng(2026);

  std::printf("=== Theorem 5: Test-1 acceptance == UNSAT (co-NP) ===\n");
  for (int trial = 0; trial < 4; ++trial) {
    const CNF3 phi = CNF3::Random(4, 6 + 6 * trial, &rng);
    SuccinctInsertionReduction red = ReduceUnsatToTest1(phi);
    const Relation v = red.view.Expand();
    Timer timer;
    auto rep = RunTest1(red.universe.All(), red.fds, red.view_x, red.comp_y,
                        v, red.t, {Test1Backend::kClosure});
    const double secs = timer.ElapsedSeconds();
    const bool unsat = !SolveSat(phi).satisfiable;
    std::printf(
        "  m=%2d  description=%3lld cells  expansion=%4d rows  "
        "Test1=%-8s DPLL=%s  agree=%s  (%.3f ms)\n",
        static_cast<int>(phi.clauses.size()),
        static_cast<long long>(red.view.DescriptionSize()),
        v.size(), rep->accepted() ? "accept" : "reject",
        unsat ? "UNSAT" : "SAT",
        rep->accepted() == unsat ? "yes" : "NO", secs * 1e3);
  }

  std::printf("\n=== Theorem 7: complement existence == SAT (NP) ===\n");
  for (int trial = 0; trial < 4; ++trial) {
    const CNF3 phi = CNF3::Random(4, 4 + 5 * trial, &rng);
    ComplementExistenceReduction red = ReduceSatToComplementExistence(phi);
    const Relation v = red.view.Expand();
    Timer timer;
    auto res = FindTranslatingComplement(red.universe.All(), red.fds,
                                         red.view_x, v, red.t);
    const double secs = timer.ElapsedSeconds();
    const bool sat = SolveSat(phi).satisfiable;
    std::printf("  m=%2d  expansion=%4d rows  found=%-3s SAT=%-3s "
                "agree=%s  (%.3f ms)\n",
                static_cast<int>(phi.clauses.size()), v.size(),
                res->found ? "yes" : "no", sat ? "yes" : "no",
                res->found == sat ? "yes" : "NO", secs * 1e3);
    if (res->found) {
      std::vector<bool> h = red.DecodeAssignment(res->complement);
      std::printf("    decoded assignment:");
      for (size_t i = 0; i < h.size(); ++i) {
        std::printf(" x%zu=%d", i, h[i] ? 1 : 0);
      }
      std::printf("  satisfies phi: %s\n", phi.Eval(h) ? "yes" : "NO");
    }
  }

  std::printf("\n=== Theorem 4: the exponential wall ===\n");
  std::printf("  (description grows linearly, the decision procedure must "
              "expand 2^n rows)\n");
  for (int n = 4; n <= 7; ++n) {
    const CNF3 phi = CNF3::Random(n, 2 * n, &rng);
    SuccinctInsertionReduction red = ReduceForallExistsToInsertion(phi, 2);
    Timer timer;
    const Relation v = red.view.Expand();
    auto rep = CheckInsertion(red.universe.All(), red.fds, red.view_x,
                              red.comp_y, v, red.t);
    const double secs = timer.ElapsedSeconds();
    std::printf("  n=%2d  description=%4lld cells  expansion=%5d rows  "
                "decision time %8.2f ms  verdict=%s\n",
                n, static_cast<long long>(red.view.DescriptionSize()),
                v.size(), secs * 1e3,
                rep->translatable() ? "translatable" : "untranslatable");
  }
  std::printf("\n(See DESIGN.md: the forward direction of Theorem 4's "
              "reduction is validated;\n the literal backward direction has "
              "a documented erratum.)\n");
  return 0;
}
