// University registrar: a domain walkthrough of what constant-complement
// semantics lets a view user do — and what it forbids.
//
// Part 1 — the enrollment view. U = {Course, Student, Room, Building},
//   Sigma = {Course -> Room, Room -> Building}. The registrar's view is
//   X = {Student, Course}; the complement Y = {Course, Room, Building}
//   (the schedule) stays constant. Enrollments into existing courses
//   translate; new courses and last-student drops are rejected.
//
// Part 2 — stored grades poison translatability. Adding Grade with
//   Course Student -> Grade makes every new (course, student) pair
//   untranslatable: its hidden grade would have to be invented in the
//   constant complement. This reproduces the paper's point that the
//   complement pins down exactly the information a view update may not
//   touch.
//
// Part 3 — explicit FDs to the rescue (Section 5, Theorem 10): if grade
//   POINTS are merely *computed* from grades (an EFD), they need not be in
//   any complement at all.
//
// Part 4 — Test 2 at scale: on a 5000-row generated view the good-
//   complement fast path matches the exact test verdict-for-verdict.
//
// Build & run:  ./build/examples/university_registrar

#include <cstdio>

#include "deps/instance_generator.h"
#include "util/small_util.h"
#include "view/complement.h"
#include "view/insertion.h"
#include "view/test2.h"
#include "view/translator.h"

using namespace relview;

namespace {

Tuple Row(std::initializer_list<const char*> names, ValuePool* pool) {
  std::vector<Value> vals;
  for (const char* n : names) vals.push_back(pool->Intern(n));
  return Tuple(std::move(vals));
}

void Report(const char* what, const Status& st) {
  std::printf("  %-44s %s\n", what, st.ToString().c_str());
}

}  // namespace

int main() {
  // ---------- Part 1: the enrollment view ----------
  Universe u = Universe::Parse("Course Student Room Building").value();
  DependencySet sigma;
  sigma.fds = FDSet::Parse(u, "Course -> Room; Room -> Building").value();
  const AttrSet x = u.SetOf("Student Course");
  const AttrSet y = u.SetOf("Course Room Building");
  auto vt_or = ViewTranslator::Create(u, sigma, x, y);
  if (!vt_or.ok()) {
    std::printf("create failed: %s\n", vt_or.status().ToString().c_str());
    return 1;
  }
  ViewTranslator vt = std::move(*vt_or);
  std::printf("enrollment view X = %s, schedule complement Y = %s\n",
              u.Format(x).c_str(), u.Format(y).c_str());
  std::printf("good complement (Test 2 exact): %s\n\n",
              vt.complement_is_good() ? "yes" : "no");

  ValuePool pool;
  Relation db(u.All());
  db.AddRow(Row({"db101", "ann", "r1", "b1"}, &pool));
  db.AddRow(Row({"db101", "bob", "r1", "b1"}, &pool));
  db.AddRow(Row({"os201", "ann", "r2", "b1"}, &pool));
  db.AddRow(Row({"os201", "bob", "r2", "b1"}, &pool));
  db.AddRow(Row({"pl301", "cat", "r3", "b2"}, &pool));
  if (Status st = vt.Bind(std::move(db)); !st.ok()) {
    std::printf("bind failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Tuples are written in ascending attribute order: (Course, Student).
  std::printf("registrar operations:\n");
  Report("enroll cat in db101",
         vt.Insert(Row({"db101", "cat"}, &pool)));
  Report("enroll dan in ml401 (unknown course)",
         vt.Insert(Row({"ml401", "dan"}, &pool)));
  Report("move ann from os201 to pl301",
         vt.Replace(Row({"os201", "ann"}, &pool),
                    Row({"pl301", "ann"}, &pool)));
  Report("drop bob from db101",
         vt.Delete(Row({"db101", "bob"}, &pool)));
  Report("drop cat from pl301",
         vt.Delete(Row({"pl301", "cat"}, &pool)));
  Report("drop ann from pl301 (last student)",
         vt.Delete(Row({"pl301", "ann"}, &pool)));
  std::printf("\ndatabase after the translatable updates (schedule rows "
              "unchanged):\n%s\n",
              vt.database().ToString(&vt.universe(), &pool).c_str());

  // ---------- Part 2: stored grades ----------
  Universe u2 =
      Universe::Parse("Course Student Room Building Grade").value();
  FDSet fds2 = FDSet::Parse(u2,
                            "Course -> Room; Room -> Building; "
                            "Course Student -> Grade")
                   .value();
  const AttrSet x2 = u2.SetOf("Student Course");
  // Any complement must retain Grade (it is stored information the view
  // lacks), and Course Student -> Grade then blocks every new pair:
  DependencySet sigma2;
  sigma2.fds = fds2;
  const AttrSet y2 = MinimalComplement(u2.All(), sigma2, x2);
  std::printf("with stored grades, minimal complement becomes %s\n",
              u2.Format(y2).c_str());
  Relation v2(x2);
  v2.AddRow(Row({"db101", "ann"}, &pool));
  v2.AddRow(Row({"db101", "bob"}, &pool));
  auto rep = CheckInsertion(u2.All(), fds2, x2, y2, v2,
                            Row({"db101", "cat"}, &pool));
  std::printf("  enroll cat in db101 now: %s\n",
              rep.ok() ? rep->ToString().c_str()
                       : rep.status().ToString().c_str());
  std::printf("  (cat's grade is complement information that the view "
              "update may not invent)\n\n");

  // ---------- Part 3: computed grade points (EFDs, Theorem 10) ----------
  Universe u3 = Universe::Parse("Course Student Grade GradePoint").value();
  DependencySet sigma3;
  sigma3.fds = FDSet::Parse(u3, "Course Student -> Grade").value();
  sigma3.efds.Add(
      EFD(u3.SetOf("Course Student Grade"), u3.SetOf("GradePoint")));
  const AttrSet view3 = u3.SetOf("Course Student Grade");
  std::printf("with EFD Course Student Grade ->e GradePoint:\n");
  std::printf("  %s complements %s: %s\n",
              u3.Format(u3.SetOf("Course Student")).c_str(),
              u3.Format(view3).c_str(),
              AreComplementary(u3.All(), sigma3, view3,
                               u3.SetOf("Course Student"))
                  ? "yes (grade points are computable, not stored)"
                  : "no");
  DependencySet no_efd = sigma3;
  no_efd.efds = EFDSet();
  std::printf("  same pair without the EFD: %s\n\n",
              AreComplementary(u3.All(), no_efd, view3,
                               u3.SetOf("Course Student"))
                  ? "yes"
                  : "no (GradePoint would be lost)");

  // ---------- Part 4: Test 2 at scale ----------
  std::printf("Test 2 on a generated 5000-row view:\n");
  Universe u4 = Universe::Parse("E D M").value();
  FDSet fds4 = FDSet::Parse(u4, "E -> D; D -> M").value();
  GeneratorOptions gen;
  gen.rows = 5000;
  gen.domain = 400;
  gen.seed = 7;
  Relation big = GenerateLegalInstance(u4.All(), fds4, gen);
  Relation bigv = big.Project(u4.SetOf("E D"));
  const AttrSet x4 = u4.SetOf("E D");
  const AttrSet y4 = u4.SetOf("D M");
  int agreements = 0, total = 0;
  Timer timer;
  for (uint32_t e = 900; e < 910; ++e) {
    for (uint32_t d = 0; d < 3; ++d) {
      Tuple t4(std::vector<Value>{Value::Const(e),
                                  Value::Const(407 + d)});
      auto fast = RunTest2(u4.All(), fds4, x4, y4, bigv, t4);
      auto exact = CheckInsertion(u4.All(), fds4, x4, y4, bigv, t4);
      ++total;
      if (fast.ok() && exact.ok() &&
          fast->accepted() == exact->translatable()) {
        ++agreements;
      }
    }
  }
  std::printf("  %d/%d verdicts agree across Test 2 and the exact test "
              "(%.1f ms total)\n",
              agreements, total, timer.ElapsedSeconds() * 1e3);
  return 0;
}
