// view_shell: an interactive (or scripted) shell around the relview
// library. Declare a schema, a view and a complement; load rows; issue
// view updates and watch the constant-complement translation work (or
// refuse, with the failing condition of Theorem 3/8/9).
//
// Commands (one per line; '#' starts a comment):
//   schema <Attr> <Attr> ...          declare the universe
//   fd <A> <B> ... -> <C> ...         add FDs
//   view <Attr> ...                   declare the view X
//   complement <Attr> ...             declare the complement Y (validated)
//   complement auto                   use a minimal complement (Cor. 2)
//   row <val> <val> ...               add a database row (over U)
//   load <file>                       load rows from a delimited file
//                                     (header must name the attributes)
//   bind                              validate Sigma and start translating
//   insert <val> ...                  insert a view tuple (over X)
//   delete <val> ...                  delete a view tuple
//   replace <val> ... -> <val> ...    replace a view tuple
//   show db | view | hidden           print the database / view
//   advise <val> ...                  find a complement making the
//                                     insertion translatable (Thm. 6)
//   quit
//
// Run the demo script:  ./build/examples/view_shell < examples/demo.rvsh
// Or interactively:     ./build/examples/view_shell

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "relational/csv.h"
#include "view/find_complement.h"
#include "view/translator.h"

using namespace relview;

namespace {

class Shell {
 public:
  int Run(std::istream& in) {
    std::string line;
    const bool interactive = &in == &std::cin && isatty(0);
    while (true) {
      if (interactive) std::printf("relview> ");
      if (!std::getline(in, line)) break;
      const std::string trimmed = Strip(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed == "quit" || trimmed == "exit") break;
      Status st = Dispatch(trimmed);
      if (!st.ok()) std::printf("  ! %s\n", st.ToString().c_str());
    }
    return 0;
  }

 private:
  static std::string Strip(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  static std::vector<std::string> Tokens(const std::string& s) {
    std::istringstream in(s);
    std::vector<std::string> out;
    std::string tok;
    while (in >> tok) out.push_back(tok);
    return out;
  }

  Status Dispatch(const std::string& line) {
    std::vector<std::string> tok = Tokens(line);
    const std::string& cmd = tok[0];
    const std::string rest = Strip(line.substr(cmd.size()));
    if (cmd == "schema") return CmdSchema(rest);
    if (cmd == "fd") return CmdFd(rest);
    if (cmd == "view") return CmdView(rest);
    if (cmd == "complement") return CmdComplement(rest);
    if (cmd == "row") return CmdRow(tok);
    if (cmd == "load") return CmdLoad(rest);
    if (cmd == "bind") return CmdBind();
    if (cmd == "insert") return CmdInsert(tok);
    if (cmd == "delete") return CmdDelete(tok);
    if (cmd == "replace") return CmdReplace(tok);
    if (cmd == "show") return CmdShow(rest);
    if (cmd == "advise") return CmdAdvise(tok);
    return Status::InvalidArgument("unknown command: " + cmd);
  }

  Status CmdSchema(const std::string& names) {
    RELVIEW_ASSIGN_OR_RETURN(universe_, Universe::Parse(names));
    sigma_ = DependencySet();
    rows_.clear();
    translator_.reset();
    std::printf("  universe U = %s (%d attributes)\n",
                universe_.Format(universe_.All()).c_str(),
                universe_.size());
    return Status::OK();
  }

  Status CmdFd(const std::string& text) {
    RELVIEW_ASSIGN_OR_RETURN(std::vector<FD> fds, ParseFDs(universe_, text));
    for (const FD& fd : fds) sigma_.fds.Add(fd);
    std::printf("  Sigma = %s\n", sigma_.fds.ToString(&universe_).c_str());
    return Status::OK();
  }

  Status CmdView(const std::string& names) {
    RELVIEW_ASSIGN_OR_RETURN(x_, universe_.Set(names));
    std::printf("  view X = %s\n", universe_.Format(x_).c_str());
    return Status::OK();
  }

  Status CmdComplement(const std::string& names) {
    if (names == "auto") {
      y_ = MinimalComplement(universe_.All(), sigma_, x_);
      std::printf("  minimal complement Y = %s\n",
                  universe_.Format(y_).c_str());
      return Status::OK();
    }
    RELVIEW_ASSIGN_OR_RETURN(AttrSet y, universe_.Set(names));
    if (!AreComplementary(universe_.All(), sigma_, x_, y)) {
      return Status::FailedPrecondition(
          "not a complement of the view (Theorem 1)");
    }
    y_ = y;
    std::printf("  complement Y = %s\n", universe_.Format(y_).c_str());
    return Status::OK();
  }

  Result<Tuple> ParseTuple(const std::vector<std::string>& tok, size_t from,
                           size_t count) {
    if (tok.size() - from < count) {
      return Status::InvalidArgument("expected " + std::to_string(count) +
                                     " values");
    }
    std::vector<Value> vals;
    for (size_t i = from; i < from + count; ++i) {
      vals.push_back(pool_.Intern(tok[i]));
    }
    return Tuple(std::move(vals));
  }

  Status CmdRow(const std::vector<std::string>& tok) {
    RELVIEW_ASSIGN_OR_RETURN(
        Tuple t, ParseTuple(tok, 1, static_cast<size_t>(universe_.size())));
    rows_.push_back(std::move(t));
    std::printf("  %zu row(s) staged\n", rows_.size());
    return Status::OK();
  }

  Status CmdLoad(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open " + path);
    RELVIEW_ASSIGN_OR_RETURN(CsvResult table,
                             ReadTable(in, &pool_, &universe_));
    if (table.relation.attrs() != universe_.All()) {
      return Status::InvalidArgument(
          "file header must name every attribute of U");
    }
    for (const Tuple& r : table.relation.rows()) rows_.push_back(r);
    std::printf("  loaded %d rows (%zu staged)\n", table.relation.size(),
                rows_.size());
    return Status::OK();
  }

  Status CmdBind() {
    RELVIEW_ASSIGN_OR_RETURN(
        ViewTranslator vt,
        ViewTranslator::Create(universe_, sigma_, x_, y_));
    Relation db(universe_.All());
    for (const Tuple& r : rows_) db.AddRow(r);
    RELVIEW_RETURN_IF_ERROR(vt.Bind(std::move(db)));
    translator_ = std::make_unique<ViewTranslator>(std::move(vt));
    std::printf("  bound %zu rows; complement is %s\n", rows_.size(),
                translator_->complement_is_good()
                    ? "good (Test 2 exact)"
                    : "not good (exact test in use)");
    return Status::OK();
  }

  Status NeedTranslator() const {
    if (!translator_) {
      return Status::FailedPrecondition("run 'bind' first");
    }
    return Status::OK();
  }

  Status CmdInsert(const std::vector<std::string>& tok) {
    RELVIEW_RETURN_IF_ERROR(NeedTranslator());
    RELVIEW_ASSIGN_OR_RETURN(
        Tuple t, ParseTuple(tok, 1, static_cast<size_t>(x_.Count())));
    Status st = translator_->Insert(t);
    std::printf("  insert: %s\n", st.ok() ? "ok" : st.ToString().c_str());
    return Status::OK();
  }

  Status CmdDelete(const std::vector<std::string>& tok) {
    RELVIEW_RETURN_IF_ERROR(NeedTranslator());
    RELVIEW_ASSIGN_OR_RETURN(
        Tuple t, ParseTuple(tok, 1, static_cast<size_t>(x_.Count())));
    Status st = translator_->Delete(t);
    std::printf("  delete: %s\n", st.ok() ? "ok" : st.ToString().c_str());
    return Status::OK();
  }

  Status CmdReplace(const std::vector<std::string>& tok) {
    RELVIEW_RETURN_IF_ERROR(NeedTranslator());
    const size_t k = static_cast<size_t>(x_.Count());
    // replace v1.. -> v2..
    size_t arrow = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
      if (tok[i] == "->") arrow = i;
    }
    if (arrow != 1 + k || tok.size() != 2 + 2 * k) {
      return Status::InvalidArgument("usage: replace <t1...> -> <t2...>");
    }
    RELVIEW_ASSIGN_OR_RETURN(Tuple t1, ParseTuple(tok, 1, k));
    RELVIEW_ASSIGN_OR_RETURN(Tuple t2, ParseTuple(tok, arrow + 1, k));
    Status st = translator_->Replace(t1, t2);
    std::printf("  replace: %s\n", st.ok() ? "ok" : st.ToString().c_str());
    return Status::OK();
  }

  Status CmdShow(const std::string& what) {
    RELVIEW_RETURN_IF_ERROR(NeedTranslator());
    if (what == "db") {
      std::printf("%s",
                  translator_->database()
                      .ToString(&universe_, &pool_)
                      .c_str());
      return Status::OK();
    }
    if (what == "view") {
      RELVIEW_ASSIGN_OR_RETURN(Relation v, translator_->ViewInstance());
      std::printf("%s", v.ToString(&universe_, &pool_).c_str());
      return Status::OK();
    }
    if (what == "hidden") {
      std::printf("%s", translator_->database()
                            .Project(y_)
                            .ToString(&universe_, &pool_)
                            .c_str());
      return Status::OK();
    }
    return Status::InvalidArgument("show db | view | hidden");
  }

  Status CmdAdvise(const std::vector<std::string>& tok) {
    RELVIEW_RETURN_IF_ERROR(NeedTranslator());
    RELVIEW_ASSIGN_OR_RETURN(
        Tuple t, ParseTuple(tok, 1, static_cast<size_t>(x_.Count())));
    RELVIEW_ASSIGN_OR_RETURN(Relation v, translator_->ViewInstance());
    RELVIEW_ASSIGN_OR_RETURN(
        FindComplementResult res,
        FindTranslatingComplement(universe_.All(), sigma_.fds, x_, v, t));
    if (res.found) {
      std::printf("  translatable under constant Y = %s\n",
                  universe_.Format(res.complement).c_str());
    } else {
      std::printf("  no complement of the form W ∪ (U − X) works "
                  "(%d candidates tried)\n",
                  res.candidates);
    }
    return Status::OK();
  }

  Universe universe_;
  DependencySet sigma_;
  AttrSet x_, y_;
  ValuePool pool_;
  std::vector<Tuple> rows_;
  std::unique_ptr<ViewTranslator> translator_;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run(std::cin);
}
