// view_shell: an interactive (or scripted) shell around the relview
// library. Declare a schema, a view and a complement; load rows; issue
// view updates and watch the constant-complement translation work (or
// refuse, with the failing condition of Theorem 3/8/9). Updates are served
// through the UpdateService layer, so the shell also demonstrates
// journaling (write-ahead log + replay on bind), atomic batches, and the
// service metrics.
//
// Commands (one per line; '#' starts a comment):
//   schema <Attr> <Attr> ...          declare the universe
//   fd <A> <B> ... -> <C> ...         add FDs
//   view <Attr> ...                   declare the view X
//   complement <Attr> ...             declare the complement Y (validated)
//   complement auto                   use a minimal complement (Cor. 2)
//   row <val> <val> ...               add a database row (over U)
//   load <file>                       load rows from a delimited file
//                                     (header must name the attributes)
//   journal <file>                    write-ahead journal accepted updates
//                                     to <file>; existing records replay
//                                     on 'bind' (set before 'bind')
//   datadir <dir> [every [rotate]]    crash-safe store instead of a single
//                                     journal file: rotated segments +
//                                     checkpoints under <dir>; auto-
//                                     checkpoint every <every> records
//                                     (default 1024), rotate segments at
//                                     <rotate> records (default 4096).
//                                     Set before 'bind'; 'bind' recovers
//   checkpoint                        force a checkpoint of the committed
//                                     state now (then compact segments)
//   recover                           rebuild the service from the durable
//                                     state under datadir (checkpoint +
//                                     journal suffix) and report what the
//                                     recovery path did
//   failpoint <name> <spec>           arm a fault-injection point (see
//                                     docs/OPERATIONS.md), e.g.
//                                     'failpoint journal.fsync error@2';
//                                     'failpoint list' / 'failpoint clear'
//   bind                              validate Sigma and start translating
//   insert <val> ...                  insert a view tuple (over X)
//   delete <val> ...                  delete a view tuple
//   replace <val> ... -> <val> ...    replace a view tuple
//   batch begin | commit | abort      stage updates; commit applies them
//                                     all-or-nothing as one version
//   metrics                           dump service metrics as JSON
//   trace on [N]                      trace spans, sampling 1 in N roots
//   trace off                         stop tracing
//   trace dump [file]                 without a file: flat text to stdout;
//                                     with one: Chrome trace_event JSON
//                                     (chrome://tracing / Perfetto)
//   telemetry [json]                  Prometheus text exposition (or the
//                                     combined JSON document) of service,
//                                     engine, journal and tracer metrics
//   explain [last]                    provenance of the last rejected (or
//                                     last, with 'last') update decision:
//                                     failing condition, FD, violator row
//   show db | view | hidden           print the database / view
//   advise <val> ...                  find a complement making the
//                                     insertion translatable (Thm. 6)
//   quit
//
// Run the demo script:  ./build/examples/view_shell < examples/demo.rvsh
// Or interactively:     ./build/examples/view_shell

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <fstream>

#include "obs/telemetry.h"
#include "relational/csv.h"
#include "service/update_service.h"
#include "util/failpoint.h"
#include "view/find_complement.h"
#include "view/translator.h"

using namespace relview;

namespace {

class Shell {
 public:
  int Run(std::istream& in) {
    std::string line;
    const bool interactive = &in == &std::cin && isatty(0);
    while (true) {
      if (interactive) std::printf(batch_ ? "relview(batch)> " : "relview> ");
      if (!std::getline(in, line)) break;
      const std::string trimmed = Strip(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed == "quit" || trimmed == "exit") break;
      Status st = Dispatch(trimmed);
      if (!st.ok()) std::printf("  ! %s\n", st.ToString().c_str());
    }
    return 0;
  }

 private:
  static std::string Strip(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  static std::vector<std::string> Tokens(const std::string& s) {
    std::istringstream in(s);
    std::vector<std::string> out;
    std::string tok;
    while (in >> tok) out.push_back(tok);
    return out;
  }

  Status Dispatch(const std::string& line) {
    std::vector<std::string> tok = Tokens(line);
    const std::string& cmd = tok[0];
    const std::string rest = Strip(line.substr(cmd.size()));
    if (cmd == "schema") return CmdSchema(rest);
    if (cmd == "fd") return CmdFd(rest);
    if (cmd == "view") return CmdView(rest);
    if (cmd == "complement") return CmdComplement(rest);
    if (cmd == "row") return CmdRow(tok);
    if (cmd == "load") return CmdLoad(rest);
    if (cmd == "journal") return CmdJournal(rest);
    if (cmd == "datadir") return CmdDataDir(tok);
    if (cmd == "checkpoint") return CmdCheckpoint();
    if (cmd == "recover") return CmdRecover();
    if (cmd == "failpoint") return CmdFailpoint(tok);
    if (cmd == "bind") return CmdBind();
    if (cmd == "insert") return CmdInsert(tok);
    if (cmd == "delete") return CmdDelete(tok);
    if (cmd == "replace") return CmdReplace(tok);
    if (cmd == "batch") return CmdBatch(rest);
    if (cmd == "metrics") return CmdMetrics();
    if (cmd == "trace") return CmdTrace(tok);
    if (cmd == "telemetry") return CmdTelemetry(rest);
    if (cmd == "explain") return CmdExplain(rest);
    if (cmd == "show") return CmdShow(rest);
    if (cmd == "advise") return CmdAdvise(tok);
    return Status::InvalidArgument("unknown command: " + cmd);
  }

  Status CmdSchema(const std::string& names) {
    RELVIEW_ASSIGN_OR_RETURN(universe_, Universe::Parse(names));
    sigma_ = DependencySet();
    rows_.clear();
    service_.reset();
    batch_.reset();
    std::printf("  universe U = %s (%d attributes)\n",
                universe_.Format(universe_.All()).c_str(),
                universe_.size());
    return Status::OK();
  }

  Status CmdFd(const std::string& text) {
    RELVIEW_ASSIGN_OR_RETURN(std::vector<FD> fds, ParseFDs(universe_, text));
    for (const FD& fd : fds) sigma_.fds.Add(fd);
    std::printf("  Sigma = %s\n", sigma_.fds.ToString(&universe_).c_str());
    return Status::OK();
  }

  Status CmdView(const std::string& names) {
    RELVIEW_ASSIGN_OR_RETURN(x_, universe_.Set(names));
    std::printf("  view X = %s\n", universe_.Format(x_).c_str());
    return Status::OK();
  }

  Status CmdComplement(const std::string& names) {
    if (names == "auto") {
      y_ = MinimalComplement(universe_.All(), sigma_, x_);
      std::printf("  minimal complement Y = %s\n",
                  universe_.Format(y_).c_str());
      return Status::OK();
    }
    RELVIEW_ASSIGN_OR_RETURN(AttrSet y, universe_.Set(names));
    if (!AreComplementary(universe_.All(), sigma_, x_, y)) {
      return Status::FailedPrecondition(
          "not a complement of the view (Theorem 1)");
    }
    y_ = y;
    std::printf("  complement Y = %s\n", universe_.Format(y_).c_str());
    return Status::OK();
  }

  Result<Tuple> ParseTuple(const std::vector<std::string>& tok, size_t from,
                           size_t count) {
    if (tok.size() - from < count) {
      return Status::InvalidArgument("expected " + std::to_string(count) +
                                     " values");
    }
    std::vector<Value> vals;
    for (size_t i = from; i < from + count; ++i) {
      vals.push_back(pool_.Intern(tok[i]));
    }
    return Tuple(std::move(vals));
  }

  Status CmdRow(const std::vector<std::string>& tok) {
    RELVIEW_ASSIGN_OR_RETURN(
        Tuple t, ParseTuple(tok, 1, static_cast<size_t>(universe_.size())));
    rows_.push_back(std::move(t));
    std::printf("  %zu row(s) staged\n", rows_.size());
    return Status::OK();
  }

  Status CmdLoad(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot open " + path);
    RELVIEW_ASSIGN_OR_RETURN(CsvResult table,
                             ReadTable(in, &pool_, &universe_));
    if (table.relation.attrs() != universe_.All()) {
      return Status::InvalidArgument(
          "file header must name every attribute of U");
    }
    for (const Tuple& r : table.relation.rows()) rows_.push_back(r);
    std::printf("  loaded %d rows (%zu staged)\n", table.relation.size(),
                rows_.size());
    return Status::OK();
  }

  Status CmdJournal(const std::string& path) {
    if (path.empty()) return Status::InvalidArgument("usage: journal <file>");
    if (service_) {
      return Status::FailedPrecondition(
          "set the journal before 'bind' (it replays onto the seed rows)");
    }
    journal_path_ = path;
    std::printf("  journaling accepted updates to %s (replayed on bind)\n",
                path.c_str());
    return Status::OK();
  }

  Status CmdDataDir(const std::vector<std::string>& tok) {
    if (tok.size() < 2 || tok.size() > 4) {
      return Status::InvalidArgument("usage: datadir <dir> [every [rotate]]");
    }
    if (service_) {
      return Status::FailedPrecondition(
          "set the datadir before 'bind' (it recovers onto the seed rows)");
    }
    store_opts_.dir = tok[1];
    store_opts_.checkpoint_every = 1024;
    if (tok.size() > 2) {
      store_opts_.checkpoint_every =
          static_cast<uint64_t>(std::atoll(tok[2].c_str()));
    }
    if (tok.size() > 3) {
      const long long n = std::atoll(tok[3].c_str());
      if (n < 1) return Status::InvalidArgument("rotate must be >= 1");
      store_opts_.rotate_records = static_cast<uint64_t>(n);
    }
    std::printf(
        "  durable store at %s (checkpoint every %llu, rotate at %llu); "
        "'bind' recovers\n",
        store_opts_.dir.c_str(),
        static_cast<unsigned long long>(store_opts_.checkpoint_every),
        static_cast<unsigned long long>(store_opts_.rotate_records));
    return Status::OK();
  }

  Status CmdCheckpoint() {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    RELVIEW_ASSIGN_OR_RETURN(uint64_t seq, service_->Checkpoint());
    const DurableStore* store = service_->store();
    std::printf("  checkpoint covers seq %llu (%d live segment(s), "
                "compaction lag %llu)\n",
                static_cast<unsigned long long>(seq), store->segment_count(),
                static_cast<unsigned long long>(store->compaction_lag()));
    return Status::OK();
  }

  Status CmdRecover() {
    if (store_opts_.dir.empty()) {
      return Status::FailedPrecondition("set 'datadir <dir>' first");
    }
    service_.reset();
    RELVIEW_RETURN_IF_ERROR(CmdBind());
    const RecoveryInfo& info = service_->store()->recovery();
    std::printf("  recovery: %s, replayed %llu record(s), now at seq %llu "
                "(%d segment(s))\n",
                info.used_checkpoint
                    ? ("from checkpoint seq " +
                       std::to_string(info.checkpoint_seq))
                          .c_str()
                    : "full replay from seed",
                static_cast<unsigned long long>(info.replayed),
                static_cast<unsigned long long>(info.recovered_seq),
                info.segments);
    for (const std::string& w : info.warnings) {
      std::printf("  recovery warning: %s\n", w.c_str());
    }
    return Status::OK();
  }

  Status CmdFailpoint(const std::vector<std::string>& tok) {
    if (tok.size() == 2 && tok[1] == "list") {
      const std::vector<std::string> armed = Failpoints::Armed();
      for (const std::string& name : armed) {
        std::printf("  %s: %llu hit(s)\n", name.c_str(),
                    static_cast<unsigned long long>(Failpoints::Hits(name)));
      }
      if (armed.empty()) std::printf("  no failpoints armed\n");
      return Status::OK();
    }
    if (tok.size() >= 2 && tok[1] == "clear") {
      if (tok.size() == 3) {
        Failpoints::Clear(tok[2]);
      } else {
        Failpoints::ClearAll();
      }
      std::printf("  failpoint(s) cleared\n");
      return Status::OK();
    }
    if (tok.size() != 3) {
      return Status::InvalidArgument(
          "usage: failpoint <name> <spec> | failpoint clear [<name>] | "
          "failpoint list");
    }
    RELVIEW_RETURN_IF_ERROR(Failpoints::Set(tok[1], tok[2]));
    std::printf("  failpoint %s armed: %s\n", tok[1].c_str(), tok[2].c_str());
    return Status::OK();
  }

  Status CmdBind() {
    RELVIEW_ASSIGN_OR_RETURN(
        ViewTranslator vt,
        ViewTranslator::Create(universe_, sigma_, x_, y_));
    Relation db(universe_.All());
    for (const Tuple& r : rows_) db.AddRow(r);
    RELVIEW_RETURN_IF_ERROR(vt.Bind(std::move(db)));
    const bool good = vt.complement_is_good();
    ServiceOptions options;
    options.journal_path = journal_path_;
    options.store = store_opts_;
    RELVIEW_ASSIGN_OR_RETURN(service_,
                             UpdateService::Create(std::move(vt), options));
    // Re-registering on rebind replaces the previous service's collectors.
    service_->RegisterTelemetry(&GlobalTelemetry());
    GlobalTelemetry().Register(
        "tracer", [] { return CollectTracerStats(GlobalTracer()); });
    GlobalTelemetry().RegisterJson(
        "tracer", [] { return TracerStatsJson(GlobalTracer()); });
    std::printf("  bound %zu rows; complement is %s\n", rows_.size(),
                good ? "good (Test 2 exact)" : "not good (exact test in use)");
    if (service_->replayed_updates() > 0) {
      // Replayed records carry raw value ids this process never interned;
      // advance the pool past them (as "c<id>", matching the fallback
      // display name) so newly typed symbols can't collide with them.
      uint32_t max_id = 0;
      bool any = false;
      for (const Tuple& r : service_->Snapshot().database->rows()) {
        for (const Value& v : r.values()) {
          if (v.is_const() && v.index() >= max_id) {
            max_id = v.index();
            any = true;
          }
        }
      }
      while (any && pool_.size() <= static_cast<int>(max_id)) {
        pool_.Intern("c" + std::to_string(pool_.size()));
      }
      std::printf("  journal replayed %llu update(s); view now has %d rows\n",
                  static_cast<unsigned long long>(
                      service_->replayed_updates()),
                  service_->Snapshot().view->size());
    }
    return Status::OK();
  }

  Status NeedService() const {
    if (!service_) {
      return Status::FailedPrecondition("run 'bind' first");
    }
    return Status::OK();
  }

  /// Applies immediately, or stages when a batch is open.
  Status Submit(ViewUpdate u) {
    const char* name = UpdateKindName(u.kind);
    if (batch_) {
      batch_->push_back(std::move(u));
      std::printf("  %s staged (batch of %zu; 'batch commit' to apply)\n",
                  name, batch_->size());
      return Status::OK();
    }
    Status st = service_->Apply(u);
    std::printf("  %s: %s\n", name, st.ok() ? "ok" : st.ToString().c_str());
    return Status::OK();
  }

  Status CmdInsert(const std::vector<std::string>& tok) {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    RELVIEW_ASSIGN_OR_RETURN(
        Tuple t, ParseTuple(tok, 1, static_cast<size_t>(x_.Count())));
    return Submit(ViewUpdate::Insert(std::move(t)));
  }

  Status CmdDelete(const std::vector<std::string>& tok) {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    RELVIEW_ASSIGN_OR_RETURN(
        Tuple t, ParseTuple(tok, 1, static_cast<size_t>(x_.Count())));
    return Submit(ViewUpdate::Delete(std::move(t)));
  }

  Status CmdReplace(const std::vector<std::string>& tok) {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    const size_t k = static_cast<size_t>(x_.Count());
    // replace v1.. -> v2..
    size_t arrow = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
      if (tok[i] == "->") arrow = i;
    }
    if (arrow != 1 + k || tok.size() != 2 + 2 * k) {
      return Status::InvalidArgument("usage: replace <t1...> -> <t2...>");
    }
    RELVIEW_ASSIGN_OR_RETURN(Tuple t1, ParseTuple(tok, 1, k));
    RELVIEW_ASSIGN_OR_RETURN(Tuple t2, ParseTuple(tok, arrow + 1, k));
    return Submit(ViewUpdate::Replace(std::move(t1), std::move(t2)));
  }

  Status CmdBatch(const std::string& what) {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    if (what == "begin") {
      if (batch_) return Status::FailedPrecondition("batch already open");
      batch_.emplace();
      std::printf("  batch open; updates stage until 'batch commit'\n");
      return Status::OK();
    }
    if (what == "abort") {
      if (!batch_) return Status::FailedPrecondition("no open batch");
      std::printf("  batch aborted (%zu staged update(s) dropped)\n",
                  batch_->size());
      batch_.reset();
      return Status::OK();
    }
    if (what == "commit") {
      if (!batch_) return Status::FailedPrecondition("no open batch");
      std::vector<ViewUpdate> updates = std::move(*batch_);
      batch_.reset();
      BatchResult r = service_->ApplyBatch(updates);
      if (r.ok()) {
        std::printf("  batch of %zu committed as version %llu\n",
                    updates.size(),
                    static_cast<unsigned long long>(service_->version()));
      } else {
        std::printf(
            "  batch rolled back: update %d (%s) rejected: %s\n",
            r.failed_index,
            r.failed_index >= 0
                ? updates[static_cast<size_t>(r.failed_index)].ToString()
                      .c_str()
                : "?",
            r.detail.empty() ? r.status.ToString().c_str()
                             : r.detail.c_str());
      }
      return Status::OK();
    }
    return Status::InvalidArgument("usage: batch begin | commit | abort");
  }

  Status CmdMetrics() {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    std::printf("%s\n", service_->metrics().ToJson().c_str());
    return Status::OK();
  }

  Status CmdTrace(const std::vector<std::string>& tok) {
    const std::string what = tok.size() > 1 ? tok[1] : "";
    Tracer& tracer = GlobalTracer();
    if (what == "on") {
      uint32_t every = 1;
      if (tok.size() > 2) {
        const long n = std::atol(tok[2].c_str());
        if (n < 1) return Status::InvalidArgument("usage: trace on [N>=1]");
        every = static_cast<uint32_t>(n);
      }
      tracer.Enable(every);
      std::printf("  tracing on (sampling 1 in %u root spans)\n", every);
      return Status::OK();
    }
    if (what == "off") {
      tracer.Disable();
      const TracerStats s = tracer.stats();
      std::printf("  tracing off (%llu span(s) recorded, %llu buffered)\n",
                  static_cast<unsigned long long>(s.spans_recorded),
                  static_cast<unsigned long long>(s.records_buffered));
      return Status::OK();
    }
    if (what == "dump") {
      if (tok.size() > 2) {
        std::ofstream out(tok[2]);
        if (!out) return Status::InvalidArgument("cannot write " + tok[2]);
        out << tracer.ExportChromeTrace();
        std::printf("  wrote Chrome trace to %s (load in chrome://tracing)\n",
                    tok[2].c_str());
      } else {
        std::printf("%s", tracer.ExportText().c_str());
      }
      return Status::OK();
    }
    return Status::InvalidArgument("usage: trace on [N] | off | dump [file]");
  }

  Status CmdTelemetry(const std::string& what) {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    if (what == "json") {
      std::printf("%s\n", GlobalTelemetry().RenderJson().c_str());
      return Status::OK();
    }
    if (!what.empty()) {
      return Status::InvalidArgument("usage: telemetry [json]");
    }
    std::printf("%s", GlobalTelemetry().RenderPrometheus().c_str());
    return Status::OK();
  }

  Status CmdExplain(const std::string& what) {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    std::optional<DecisionTrace> trace;
    if (what == "last") {
      trace = service_->decisions().Last();
      if (!trace) return Status::NotFound("no decisions recorded yet");
    } else if (what.empty()) {
      trace = service_->decisions().LastRejected();
      if (!trace) {
        return Status::NotFound(
            "no rejected decision retained ('explain last' for the most "
            "recent decision of any outcome)");
      }
    } else {
      return Status::InvalidArgument("usage: explain [last]");
    }
    std::printf("%s", trace->ToString(&universe_).c_str());
    return Status::OK();
  }

  Status CmdShow(const std::string& what) {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    const ViewSnapshot snap = service_->Snapshot();
    if (what == "db") {
      std::printf("%s", snap.database->ToString(&universe_, &pool_).c_str());
      return Status::OK();
    }
    if (what == "view") {
      std::printf("%s", snap.view->ToString(&universe_, &pool_).c_str());
      return Status::OK();
    }
    if (what == "hidden") {
      std::printf("%s", snap.database->Project(y_)
                            .ToString(&universe_, &pool_)
                            .c_str());
      return Status::OK();
    }
    return Status::InvalidArgument("show db | view | hidden");
  }

  Status CmdAdvise(const std::vector<std::string>& tok) {
    RELVIEW_RETURN_IF_ERROR(NeedService());
    RELVIEW_ASSIGN_OR_RETURN(
        Tuple t, ParseTuple(tok, 1, static_cast<size_t>(x_.Count())));
    const ViewSnapshot snap = service_->Snapshot();
    RELVIEW_ASSIGN_OR_RETURN(
        FindComplementResult res,
        FindTranslatingComplement(universe_.All(), sigma_.fds, x_,
                                  *snap.view, t));
    if (res.found) {
      std::printf("  translatable under constant Y = %s\n",
                  universe_.Format(res.complement).c_str());
    } else {
      std::printf("  no complement of the form W ∪ (U − X) works "
                  "(%d candidates tried)\n",
                  res.candidates);
    }
    return Status::OK();
  }

  Universe universe_;
  DependencySet sigma_;
  AttrSet x_, y_;
  ValuePool pool_;
  std::vector<Tuple> rows_;
  std::string journal_path_;
  StoreOptions store_opts_;
  std::unique_ptr<UpdateService> service_;
  std::optional<std::vector<ViewUpdate>> batch_;
};

}  // namespace

int main() {
  // Operators can pre-arm fault injection, e.g.
  //   RELVIEW_FAILPOINTS="journal.fsync=error@2" ./view_shell
  Status fp = Failpoints::InstallFromEnv();
  if (!fp.ok()) {
    std::fprintf(stderr, "RELVIEW_FAILPOINTS: %s\n", fp.ToString().c_str());
    return 2;
  }
  Shell shell;
  return shell.Run(std::cin);
}
