// Quickstart: the paper's running scenario end to end.
//
//   1. Declare a single-relation schema (U, Sigma).
//   2. Declare a projective view X and a complement Y (validated by
//      Theorem 1's criterion).
//   3. Bind a database instance and issue view updates; translatable ones
//      are applied as the unique constant-complement translation,
//      untranslatable ones are rejected with the failing condition.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "view/translator.h"

using namespace relview;

namespace {

Tuple Row(std::initializer_list<const char*> names, ValuePool* pool) {
  std::vector<Value> vals;
  for (const char* n : names) vals.push_back(pool->Intern(n));
  return Tuple(std::move(vals));
}

void Report(const char* what, const Status& st) {
  std::printf("%-46s %s\n", what, st.ToString().c_str());
}

}  // namespace

int main() {
  // Schema: Employee determines Department, Department determines Manager.
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr").value();

  // View: who works where. Complement: who manages what (held constant).
  auto translator = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                           u.SetOf("Dept Mgr"));
  if (!translator.ok()) {
    std::printf("create failed: %s\n", translator.status().ToString().c_str());
    return 1;
  }
  ViewTranslator vt = std::move(*translator);
  std::printf("view X = %s, complement Y = %s, good complement: %s\n\n",
              vt.universe().Format(vt.view()).c_str(),
              vt.universe().Format(vt.complement()).c_str(),
              vt.complement_is_good() ? "yes (Test 2 is exact)" : "no");

  ValuePool pool;
  Relation db(u.All());
  db.AddRow(Row({"ann", "sales", "mia"}, &pool));
  db.AddRow(Row({"bob", "sales", "mia"}, &pool));
  db.AddRow(Row({"cat", "dev", "joe"}, &pool));
  if (Status st = vt.Bind(std::move(db)); !st.ok()) {
    std::printf("bind failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("initial database:\n%s\n",
              vt.database().ToString(&vt.universe(), &pool).c_str());

  // 1. Insert (dan, sales): sales has a manager in the complement — OK.
  Report("insert (dan, sales)",
         vt.Insert(Row({"dan", "sales"}, &pool)));
  // 2. Insert (eve, hr): hr is unknown to the complement; inserting would
  //    have to invent a manager (condition (a)) — rejected.
  Report("insert (eve, hr)", vt.Insert(Row({"eve", "hr"}, &pool)));
  // 3. Move ann to dev via replacement — both departments survive.
  Report("replace (ann, sales) -> (ann, dev)",
         vt.Replace(Row({"ann", "sales"}, &pool), Row({"ann", "dev"}, &pool)));
  // 4. Delete (cat, dev): dev still has ann — OK.
  Report("delete (cat, dev)", vt.Delete(Row({"cat", "dev"}, &pool)));
  // 5. Delete (ann, dev): dev's last employee; the complement row
  //    (dev, joe) would vanish — rejected.
  Report("delete (ann, dev)", vt.Delete(Row({"ann", "dev"}, &pool)));

  std::printf("\nfinal database (complement rows never changed):\n%s",
              vt.database().ToString(&vt.universe(), &pool).c_str());
  std::printf("\nview the user sees:\n%s",
              vt.ViewInstance()->ToString(&vt.universe(), &pool).c_str());
  return 0;
}
