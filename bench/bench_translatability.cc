// bench_translatability: the incremental translatability engine vs the
// from-scratch free functions, plus parallel-probe scaling.
//
// Experiment 1 — incremental vs scratch. A sustained mixed update stream
// (insert fresh / rejected insert / case-2 replace / delete) over the
// chain workload. The scratch path re-projects the view and rebuilds the
// base-chase fixpoint for every check; the engine maintains both across
// the stream (hash indexes updated per accepted write, base fixpoint
// extended in place after inserts). Gate: >= 3x single-thread speedup at
// the full size (1k updates over a 10k-row view).
//
// Experiment 2 — parallel probe scaling. The probe-heavy workload (C -> B
// has an empty lhs∩X, so every view row is a probe candidate for every
// checked insertion) at 1/2/4/8 probe threads. The pair screen is OFF
// here: on this schema the screen's closure criterion decides every probe
// without chasing, which is exactly the point of the screen but leaves
// nothing for the thread pool to do — its win is reported separately.
// Verdicts and witnesses are thread-count-invariant by construction
// (tests/incremental_test.cc asserts it); this experiment measures only
// wall clock.
//
// Experiment 3 — tracing overhead. The experiment-1 mixed stream with the
// global span tracer off vs enabled at 1/64 head-based sampling (the
// recommended production setting), best-of-N to shed scheduler noise.
// Gate: <= 5% slowdown, with a small absolute-time floor so a sub-noise
// delta on a fast machine cannot flake the gate.
//
// Usage: bench_translatability [--smoke] [--json=PATH] [--store=row|columnar]
//
// --store selects the engine's storage layout (default row): `columnar`
// runs every engine-side stream on the dictionary-encoded column store
// with the vectorized probe path, so the same JSON schema doubles as the
// row-vs-columnar comparison axis (bench_columnar gates the ratio; this
// flag lets either layout be profiled under the full mixed stream).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/trace.h"
#include "util/small_util.h"
#include "view/translator.h"

namespace relview {
namespace {

ViewTranslator MakeTranslator(const Universe& universe, const FDSet& fds,
                              const AttrSet& x, const AttrSet& y,
                              const Relation& database,
                              TranslatorOptions options) {
  DependencySet sigma;
  sigma.fds = fds;
  auto vt = ViewTranslator::Create(universe, sigma, x, y, options);
  if (!vt.ok()) {
    std::fprintf(stderr, "translator: %s\n", vt.status().ToString().c_str());
    std::exit(1);
  }
  Status st = vt->Bind(database);
  if (!st.ok()) {
    std::fprintf(stderr, "bind: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return std::move(*vt);
}

struct StreamResult {
  double seconds = 0;
  double updates_per_sec = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
};

void Count(StreamResult* r, bool translatable) {
  if (translatable) {
    ++r->accepted;
  } else {
    ++r->rejected;
  }
}

/// Runs `rounds` rounds of the mixed stream against `vt`. Each round is 4
/// updates: insert a fresh tuple into an existing tail group, attempt the
/// canonical condition-(c) rejection, replace the fresh tuple within its
/// common-part group (Theorem 9 case 2), delete it — the state returns to
/// the seed, so rounds are independent and the stream can be any length.
StreamResult RunChainStream(ViewTranslator* vt, const bench::ChainWorkload& w,
                            int rounds) {
  const Schema vs(w.x);
  Tuple reject = w.insert_bad;
  StreamResult r;
  Timer timer;
  for (int i = 0; i < rounds; ++i) {
    Tuple fresh = w.view.row(0);
    fresh.Set(vs, 0,
              Value::Const(0x00F00000u + static_cast<uint32_t>(i & 0xFFFF)));
    Tuple moved = fresh;
    moved.Set(vs, 1,
              Value::Const(0x00E00000u + static_cast<uint32_t>(i & 0xFF)));
    auto ins = vt->InsertWithReport(fresh);
    if (!ins.ok()) {
      std::fprintf(stderr, "insert: %s\n", ins.status().ToString().c_str());
      std::exit(1);
    }
    Count(&r, ins->translatable());
    auto bad = vt->InsertWithReport(reject);
    if (!bad.ok()) {
      std::fprintf(stderr, "reject: %s\n", bad.status().ToString().c_str());
      std::exit(1);
    }
    Count(&r, bad->translatable());
    auto rep = vt->ReplaceWithReport(fresh, moved);
    if (!rep.ok()) {
      std::fprintf(stderr, "replace: %s\n", rep.status().ToString().c_str());
      std::exit(1);
    }
    Count(&r, rep->translatable());
    auto del = vt->DeleteWithReport(moved);
    if (!del.ok()) {
      std::fprintf(stderr, "delete: %s\n", del.status().ToString().c_str());
      std::exit(1);
    }
    Count(&r, del->translatable());
  }
  r.seconds = timer.ElapsedSeconds();
  r.updates_per_sec = r.seconds > 0 ? 4.0 * rounds / r.seconds : 0;
  return r;
}

/// Insert/delete rounds with fresh A-values on the probe-heavy workload;
/// every check fans |V|-ish probes through RunConditionC.
StreamResult RunProbeStream(ViewTranslator* vt,
                            const bench::ProbeHeavyWorkload& w, int rounds) {
  const Schema vs(w.x);
  StreamResult r;
  Timer timer;
  for (int i = 0; i < rounds; ++i) {
    Tuple fresh = w.view.row(0);
    fresh.Set(vs, 0,
              Value::Const(0x00F00000u + static_cast<uint32_t>(i & 0xFFFF)));
    auto ins = vt->InsertWithReport(fresh);
    if (!ins.ok()) {
      std::fprintf(stderr, "insert: %s\n", ins.status().ToString().c_str());
      std::exit(1);
    }
    Count(&r, ins->translatable());
    auto del = vt->DeleteWithReport(fresh);
    if (!del.ok()) {
      std::fprintf(stderr, "delete: %s\n", del.status().ToString().c_str());
      std::exit(1);
    }
    Count(&r, del->translatable());
  }
  r.seconds = timer.ElapsedSeconds();
  r.updates_per_sec = r.seconds > 0 ? 2.0 * rounds / r.seconds : 0;
  return r;
}

}  // namespace
}  // namespace relview

int main(int argc, char** argv) {
  using namespace relview;
  const bool smoke = bench::HasFlag(argc, argv, "smoke");
  const std::string json_path = bench::FlagValue(argc, argv, "json");
  const std::string store_flag = bench::FlagValue(argc, argv, "store");
  if (!store_flag.empty() && store_flag != "row" && store_flag != "columnar") {
    std::fprintf(stderr, "unknown --store=%s (want row|columnar)\n",
                 store_flag.c_str());
    return 1;
  }
  const StoreKind store =
      store_flag == "columnar" ? StoreKind::kColumnar : StoreKind::kRowHash;
  const unsigned cores = std::thread::hardware_concurrency();

  // Full mode is the acceptance configuration: a 1k-update stream over a
  // 10k-row view. Smoke keeps CI wall time in seconds.
  const int chain_rows = smoke ? 512 : 10000;
  const int chain_rounds = smoke ? 10 : 250;  // 4 updates per round
  const int probe_rows = smoke ? 256 : 2048;
  const int probe_groups = smoke ? 16 : 64;
  const int probe_rounds = smoke ? 5 : 30;  // 2 updates per round

  std::printf("bench_translatability%s: %u cores\n\n", smoke ? " (smoke)" : "",
              cores);
  bench::JsonWriter json;
  json.Add("smoke", smoke)
      .Add("cores", static_cast<int>(cores))
      .Add("store", store == StoreKind::kColumnar
                        ? std::string("columnar")
                        : std::string("row"));

  // --- 1. Incremental engine vs from-scratch ---------------------------
  bench::ChainWorkload chain =
      bench::MakeChainWorkload(/*width=*/4, chain_rows, /*fanin=*/4,
                               /*seed=*/1);
  std::printf("experiment 1: mixed stream, |view| = %d rows, %d updates\n",
              chain_rows, 4 * chain_rounds);
  std::printf("%-26s %12s %14s %10s\n", "path", "seconds", "updates/s",
              "speedup");

  TranslatorOptions scratch_opts;
  scratch_opts.incremental = false;
  ViewTranslator scratch = MakeTranslator(chain.universe, chain.fds, chain.x,
                                          chain.y, chain.database,
                                          scratch_opts);
  const StreamResult base = RunChainStream(&scratch, chain, chain_rounds);
  std::printf("%-26s %12.3f %14.0f %9.2fx\n", "from-scratch", base.seconds,
              base.updates_per_sec, 1.0);

  TranslatorOptions engine_opts;  // incremental, 1 thread, screen on
  engine_opts.store = store;
  ViewTranslator engine = MakeTranslator(chain.universe, chain.fds, chain.x,
                                         chain.y, chain.database,
                                         engine_opts);
  const StreamResult incr = RunChainStream(&engine, chain, chain_rounds);
  const double speedup =
      incr.seconds > 0 ? base.seconds / incr.seconds : 0;
  std::printf("%-26s %12.3f %14.0f %9.2fx\n", "incremental engine",
              incr.seconds, incr.updates_per_sec, speedup);

  if (base.accepted != incr.accepted || base.rejected != incr.rejected) {
    std::fprintf(stderr,
                 "FAIL: verdict mismatch (scratch %llu/%llu, engine "
                 "%llu/%llu accepted/rejected)\n",
                 static_cast<unsigned long long>(base.accepted),
                 static_cast<unsigned long long>(base.rejected),
                 static_cast<unsigned long long>(incr.accepted),
                 static_cast<unsigned long long>(incr.rejected));
    return 1;
  }

  const EngineStats es = engine.engine_stats();
  std::printf(
      "engine: index %llu reuses / %llu rebuilds, base %llu reuses / %llu "
      "rebuilds / %llu extends / %llu shrinks, closure cache %.1f%% hits, "
      "%llu/%llu probes screened\n",
      static_cast<unsigned long long>(es.index_reuses),
      static_cast<unsigned long long>(es.index_rebuilds),
      static_cast<unsigned long long>(es.base_reuses),
      static_cast<unsigned long long>(es.base_rebuilds),
      static_cast<unsigned long long>(es.base_extends),
      static_cast<unsigned long long>(es.base_shrinks),
      100.0 * es.closure_hit_rate,
      static_cast<unsigned long long>(es.probes_screened),
      static_cast<unsigned long long>(es.probes_run));

  json.Add("chain_rows", chain_rows)
      .Add("chain_updates", 4 * chain_rounds)
      .Add("scratch_seconds", base.seconds)
      .Add("scratch_updates_per_sec", base.updates_per_sec)
      .Add("engine_seconds", incr.seconds)
      .Add("engine_updates_per_sec", incr.updates_per_sec)
      .Add("engine_speedup", speedup)
      .Add("closure_cache_hit_rate", es.closure_hit_rate)
      .Add("view_index_reuses", es.index_reuses)
      .Add("base_chase_extends", es.base_extends)
      .Add("base_chase_shrinks", es.base_shrinks)
      .Add("probes_screened", es.probes_screened);

  // --- 2. Parallel probe scaling ---------------------------------------
  bench::ProbeHeavyWorkload probe =
      bench::MakeProbeHeavyWorkload(probe_rows, probe_groups);
  std::printf(
      "\nexperiment 2: probe-heavy stream, |view| = %d rows, %d updates, "
      "~%d probes per check\n",
      probe_rows, 2 * probe_rounds, probe_rows - probe_rows / probe_groups);
  std::printf("%-26s %12s %14s %10s\n", "probe threads", "seconds",
              "updates/s", "scaling");
  double one_thread = 0;
  double scale4 = 0;
  for (int threads : {1, 2, 4, 8}) {
    TranslatorOptions opts;
    opts.store = store;
    opts.probe_threads = threads;
    opts.pair_screen = false;  // leave real chase work for the pool
    ViewTranslator vt = MakeTranslator(probe.universe, probe.fds, probe.x,
                                       probe.y, probe.database, opts);
    const StreamResult r = RunProbeStream(&vt, probe, probe_rounds);
    const double scaling = r.seconds > 0 ? one_thread / r.seconds : 0;
    if (threads == 1) one_thread = r.seconds;
    if (threads == 4) scale4 = scaling;
    std::printf("%-26d %12.3f %14.0f %9.2fx\n", threads, r.seconds,
                r.updates_per_sec, threads == 1 ? 1.0 : scaling);
    json.Add("probe_seconds_t" + std::to_string(threads), r.seconds);
  }

  // The screen's own win on the same stream, for contrast: its closure
  // criterion settles these probes without chasing at all.
  {
    TranslatorOptions opts;  // screen on, 1 thread
    opts.store = store;
    ViewTranslator vt = MakeTranslator(probe.universe, probe.fds, probe.x,
                                       probe.y, probe.database, opts);
    const StreamResult r = RunProbeStream(&vt, probe, probe_rounds);
    std::printf("%-26s %12.3f %14.0f %9.2fx\n", "1 + pair screen", r.seconds,
                r.updates_per_sec, r.seconds > 0 ? one_thread / r.seconds : 0);
    json.Add("probe_seconds_screened", r.seconds);
  }
  json.Add("probe_scaling_t4", scale4);

  // --- 3. Tracing overhead ---------------------------------------------
  const int trace_reps = 3;
  const int trace_rounds = smoke ? chain_rounds : chain_rounds / 2;
  std::printf(
      "\nexperiment 3: tracing overhead, mixed stream of %d updates, "
      "sampling 1/64, best of %d\n",
      4 * trace_rounds, trace_reps);
  std::printf("%-26s %12s %14s %10s\n", "tracer", "seconds", "updates/s",
              "overhead");
  auto best_chain_seconds = [&] {
    double best = 0;
    for (int rep = 0; rep < trace_reps; ++rep) {
      TranslatorOptions topts;
      topts.store = store;
      ViewTranslator vt = MakeTranslator(chain.universe, chain.fds, chain.x,
                                         chain.y, chain.database, topts);
      const StreamResult r = RunChainStream(&vt, chain, trace_rounds);
      if (rep == 0 || r.seconds < best) best = r.seconds;
    }
    return best;
  };
  GlobalTracer().Disable();
  const double untraced = best_chain_seconds();
  std::printf("%-26s %12.3f %14.0f %10s\n", "off", untraced,
              untraced > 0 ? 4.0 * trace_rounds / untraced : 0, "-");
  GlobalTracer().Enable(/*sample_every=*/64);
  const double traced = best_chain_seconds();
  GlobalTracer().Disable();
  const TracerStats ts = GlobalTracer().stats();
  const double overhead =
      untraced > 0 ? traced / untraced - 1.0 : 0.0;
  std::printf("%-26s %12.3f %14.0f %9.1f%%\n", "on (1/64)", traced,
              traced > 0 ? 4.0 * trace_rounds / traced : 0, 100.0 * overhead);
  std::printf(
      "tracer: %llu spans started, %llu recorded, %llu sampled out\n",
      static_cast<unsigned long long>(ts.spans_started),
      static_cast<unsigned long long>(ts.spans_recorded),
      static_cast<unsigned long long>(ts.spans_sampled_out));
  json.Add("untraced_seconds", untraced)
      .Add("traced_seconds", traced)
      .Add("tracing_overhead_pct", 100.0 * overhead)
      .Add("tracing_spans_recorded", ts.spans_recorded);

  // --- Gates -----------------------------------------------------------
  // Smoke mode checks plumbing, not performance: tiny sizes leave the
  // fixed per-check work dominant and thread setup un-amortized.
  bool pass = true;
  std::printf("\nsingle-thread speedup: %.2fx (required: >= 3x at full "
              "size)\n", speedup);
  if (!smoke && speedup < 3.0) pass = false;
  std::printf("probe scaling at 4 threads: %.2fx", scale4);
  if (cores >= 4) {
    std::printf(" (required: > 1.2x at full size)\n");
    if (!smoke && scale4 <= 1.2) pass = false;
  } else {
    std::printf(" (informational: %u core(s) cannot scale)\n", cores);
  }
  // Tracing gate: relative bound with an absolute floor — when both runs
  // are within 30ms the delta is scheduler noise, not span cost.
  const double overhead_floor_s = 0.030;
  std::printf("tracing overhead at 1/64 sampling: %.1f%% (required: <= 5%% "
              "at full size, noise floor %.0fms)\n",
              100.0 * overhead, 1000.0 * overhead_floor_s);
  if (!smoke && overhead > 0.05 && traced - untraced > overhead_floor_s) {
    pass = false;
  }
  json.Add("pass", pass);
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "json: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}
