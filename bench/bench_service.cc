// bench_service: end-to-end throughput of the UpdateService under a mixed
// insert/delete/replace write workload with concurrent snapshot readers.
//
// Each "read" is a serving-shaped operation: take a snapshot and run a
// point membership query against its view. Two experiments:
//
//  1. Read scaling — aggregate read throughput at 1/2/4/8 reader threads
//     with a saturating mixed writer. On a machine with >= 4 cores the
//     versioned immutable snapshots must give >= 2x aggregate throughput
//     at 4 readers vs 1 (readers share nothing hot with the writer; the
//     fast path is one atomic load plus a thread-local hit). With fewer
//     cores the ratio is capped by time-slicing, not by the design: N
//     CPU-bound readers plus a saturating writer fair-share one core, so
//     the aggregate is bounded by (N/(N+1)) / (1/2) — 1.60x at N=4 — no
//     matter how good the read path is. The bench therefore gates the 2x
//     requirement on hardware_concurrency() >= 4 and otherwise reports
//     measured/cap (a contention-free read path sits near 1.0).
//
//  2. Lock-coupled baseline (informational) — the same workload against a
//     naive facade whose readers must take the writer's mutex, so every
//     read can wait out an in-flight Theorem 3/8/9 check. With real cores
//     the snapshot design wins by construction; on one core the scheduler
//     time-slices both designs identically (a blocked reader and a
//     descheduled reader cost the same), so the numbers converge and only
//     the writer-starvation column distinguishes them.
//
// Also reports write-path throughput: single updates, batched updates,
// and journaled (fsync-bound) updates.
//
// Usage: bench_service [rows] [seconds-per-point] [--json=PATH]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "util/annotations.h"
#include "service/update_service.h"
#include "util/small_util.h"
#include "util/thread_pool.h"

namespace relview {
namespace {

ViewTranslator MakeBoundTranslator(int rows) {
  bench::ChainWorkload w = bench::MakeChainWorkload(/*width=*/4, rows,
                                                    /*fanin=*/4, /*seed=*/1);
  DependencySet sigma;
  sigma.fds = w.fds;
  auto vt = ViewTranslator::Create(w.universe, sigma, w.x, w.y);
  if (!vt.ok()) {
    std::fprintf(stderr, "translator: %s\n", vt.status().ToString().c_str());
    std::exit(1);
  }
  Status st = vt->Bind(w.database);
  if (!st.ok()) {
    std::fprintf(stderr, "bind: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return std::move(*vt);
}

std::unique_ptr<UpdateService> MakeService(int rows,
                                           const std::string& journal) {
  ServiceOptions options;
  options.journal_path = journal;
  auto service = UpdateService::Create(MakeBoundTranslator(rows), options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*service);
}

/// The mixed write workload, expressed against any apply callback: insert
/// a fresh view tuple into an existing tail group, attempt a canonical
/// rejection, replace the fresh tuple within its group, delete it — state
/// returns to the seed every round, so the loop runs indefinitely.
class MixedWorkload {
 public:
  MixedWorkload(const Relation& seed_view, const AttrSet& x) : schema_(x) {
    template_ = seed_view.row(0);
    reject_ = seed_view.row(0);
    reject_.Set(schema_, static_cast<AttrId>(1),
                Value::Const(
                    reject_.At(schema_, static_cast<AttrId>(1)).index() ^
                    1u));
  }

  /// One round = 4 update attempts (3 accepted + 1 rejected).
  template <typename ApplyFn>
  void Round(uint64_t i, const ApplyFn& apply) {
    Tuple fresh = template_;
    fresh.Set(schema_, static_cast<AttrId>(0),
              Value::Const(0x00F00000u + static_cast<uint32_t>(i & 0xFFFF)));
    Tuple moved = fresh;
    moved.Set(schema_, static_cast<AttrId>(1),
              Value::Const(0x00E00000u + static_cast<uint32_t>(i & 0xFF)));
    apply(ViewUpdate::Insert(fresh));
    apply(ViewUpdate::Insert(reject_));
    apply(ViewUpdate::Replace(fresh, moved));
    apply(ViewUpdate::Delete(moved));
  }

 private:
  Schema schema_;
  Tuple template_;
  Tuple reject_;
};

/// The design the service replaces: one translator, one mutex, readers
/// and the writer all serialized through it. Readers wait out whatever
/// translatability check is in flight.
class SerializedFacade {
 public:
  explicit SerializedFacade(ViewTranslator vt) : vt_(std::move(vt)) {
    view_ = *vt_.ViewInstance();
  }

  // Setup-phase accessors; called before the worker threads exist, but the
  // lock is uncontended then, so take it and keep the analysis clean.
  Relation seed_view() {
    MutexLock lock(mu_);
    return view_;
  }
  AttrSet view_attrs() {
    MutexLock lock(mu_);
    return vt_.view();
  }

  bool Contains(const Tuple& t) {
    MutexLock lock(mu_);
    return view_.ContainsRow(t);
  }

  void Apply(const ViewUpdate& u) {
    MutexLock lock(mu_);
    Status st;
    switch (u.kind) {
      case UpdateKind::kInsert:
        st = vt_.Insert(u.t1);
        break;
      case UpdateKind::kDelete:
        st = vt_.Delete(u.t1);
        break;
      case UpdateKind::kReplace:
        st = vt_.Replace(u.t1, u.t2);
        break;
      case UpdateKind::kNumUpdateKinds:
        break;  // sentinel, not a real kind
    }
    if (st.ok()) view_ = *vt_.ViewInstance();
  }

 private:
  Mutex mu_;
  ViewTranslator vt_ RELVIEW_GUARDED_BY(mu_);
  Relation view_ RELVIEW_GUARDED_BY(mu_);
};

struct Point {
  double reads_per_sec = 0;
  double writes_per_sec = 0;
};

/// Runs `readers` reader threads (each: snapshot + point query) against a
/// saturating mixed writer for `seconds`.
Point RunSnapshotPoint(UpdateService* service, int readers, double seconds) {
  StartGate gate;
  std::atomic<bool> done{false};
  std::vector<uint64_t> read_counts(static_cast<size_t>(readers), 0);
  const ViewSnapshot seed = service->Snapshot();
  const int seed_rows = seed.view->size();
  std::vector<std::thread> threads;
  for (int i = 0; i < readers; ++i) {
    threads.emplace_back([&, i] {
      gate.Wait();
      uint64_t n = 0;
      uint64_t sink = 0;
      uint64_t lcg = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(i + 1);
      while (!done.load(std::memory_order_acquire)) {
        ViewSnapshot snap = service->Snapshot();
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const int idx = static_cast<int>((lcg >> 33) %
                                         static_cast<uint64_t>(seed_rows));
        sink += snap.view->ContainsRow(seed.view->row(idx)) ? 1 : 0;
        ++n;
      }
      read_counts[static_cast<size_t>(i)] = n + (sink & 1);
    });
  }
  std::atomic<uint64_t> writes{0};
  std::thread writer([&] {
    MixedWorkload w(*seed.view, service->view_attrs());
    gate.Wait();
    uint64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      w.Round(i++, [&](const ViewUpdate& u) { (void)service->Apply(u); });
      writes.fetch_add(4, std::memory_order_relaxed);
    }
  });

  Timer timer;
  gate.Open();
  while (timer.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true, std::memory_order_release);
  const double elapsed = timer.ElapsedSeconds();
  for (std::thread& t : threads) t.join();
  writer.join();

  Point p;
  uint64_t reads = 0;
  for (uint64_t n : read_counts) reads += n;
  p.reads_per_sec = static_cast<double>(reads) / elapsed;
  p.writes_per_sec = static_cast<double>(writes.load()) / elapsed;
  return p;
}

/// Same workload against the lock-coupled facade.
Point RunSerializedPoint(SerializedFacade* facade, int readers,
                         double seconds) {
  StartGate gate;
  std::atomic<bool> done{false};
  std::vector<uint64_t> read_counts(static_cast<size_t>(readers), 0);
  const Relation seed_view = facade->seed_view();
  const int seed_rows = seed_view.size();
  std::vector<std::thread> threads;
  for (int i = 0; i < readers; ++i) {
    threads.emplace_back([&, i] {
      gate.Wait();
      uint64_t n = 0;
      uint64_t sink = 0;
      uint64_t lcg = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(i + 1);
      while (!done.load(std::memory_order_acquire)) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const int idx = static_cast<int>((lcg >> 33) %
                                         static_cast<uint64_t>(seed_rows));
        sink += facade->Contains(seed_view.row(idx)) ? 1 : 0;
        ++n;
      }
      read_counts[static_cast<size_t>(i)] = n + (sink & 1);
    });
  }
  std::atomic<uint64_t> writes{0};
  std::thread writer([&] {
    MixedWorkload w(seed_view, facade->view_attrs());
    gate.Wait();
    uint64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      w.Round(i++, [&](const ViewUpdate& u) { facade->Apply(u); });
      writes.fetch_add(4, std::memory_order_relaxed);
    }
  });

  Timer timer;
  gate.Open();
  while (timer.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true, std::memory_order_release);
  const double elapsed = timer.ElapsedSeconds();
  for (std::thread& t : threads) t.join();
  writer.join();

  Point p;
  uint64_t reads = 0;
  for (uint64_t n : read_counts) reads += n;
  p.reads_per_sec = static_cast<double>(reads) / elapsed;
  p.writes_per_sec = static_cast<double>(writes.load()) / elapsed;
  return p;
}

double WriteOnlyThroughput(UpdateService* service, double seconds,
                           int batch_size) {
  const ViewSnapshot snap = service->Snapshot();
  const Schema vs(service->view_attrs());
  Timer timer;
  uint64_t updates = 0;
  uint64_t i = 0;
  while (timer.ElapsedSeconds() < seconds) {
    std::vector<ViewUpdate> batch;
    std::vector<ViewUpdate> inverse;
    for (int k = 0; k < batch_size; ++k) {
      Tuple fresh = snap.view->row(0);
      fresh.Set(vs, static_cast<AttrId>(0),
                Value::Const(0x00D00000u +
                             static_cast<uint32_t>((i + k) & 0xFFFFF)));
      batch.push_back(ViewUpdate::Insert(fresh));
      inverse.push_back(ViewUpdate::Delete(fresh));
    }
    BatchResult in = service->ApplyBatch(batch);
    BatchResult out = service->ApplyBatch(inverse);
    if (!in.ok() || !out.ok()) {
      std::fprintf(stderr, "bench batch rejected: %s\n",
                   (in.ok() ? out : in).status.ToString().c_str());
      std::exit(1);
    }
    updates += static_cast<uint64_t>(2 * batch_size);
    i += static_cast<uint64_t>(batch_size);
  }
  return static_cast<double>(updates) / timer.ElapsedSeconds();
}

}  // namespace
}  // namespace relview

int main(int argc, char** argv) {
  using namespace relview;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) != 0) positional.push_back(argv[i]);
  }
  const int rows = positional.size() > 0 ? std::atoi(positional[0]) : 512;
  const double secs = positional.size() > 1 ? std::atof(positional[1]) : 1.0;
  const std::string json_path = bench::FlagValue(argc, argv, "json");
  const unsigned cores = std::thread::hardware_concurrency();
  bench::JsonWriter json;
  json.Add("rows", rows).Add("cores", static_cast<int>(cores));

  std::printf("bench_service: |view| = %d rows, %.1fs per point, %u cores\n\n",
              rows, secs, cores);

  // --- 1. Read scaling under a live mixed writer ----------------------
  auto service = MakeService(rows, /*journal=*/"");
  std::printf("snapshot reads (read = snapshot + point query):\n");
  std::printf("%-8s %16s %16s %10s\n", "readers", "reads/s", "writes/s",
              "scaling");
  double base = 0;
  double scale4 = 0;
  for (int readers : {1, 2, 4, 8}) {
    Point p = RunSnapshotPoint(service.get(), readers, secs);
    if (readers == 1) base = p.reads_per_sec;
    const double scaling = base > 0 ? p.reads_per_sec / base : 0;
    if (readers == 4) scale4 = scaling;
    std::printf("%-8d %16.0f %16.0f %9.2fx\n", readers, p.reads_per_sec,
                p.writes_per_sec, scaling);
    json.Add("reads_per_sec_r" + std::to_string(readers), p.reads_per_sec);
  }
  json.Add("read_scaling_r4", scale4);

  // --- 2. Lock-coupled baseline (informational) -----------------------
  const Point snap4 = RunSnapshotPoint(service.get(), 4, secs);
  SerializedFacade facade(MakeBoundTranslator(rows));
  const Point ser4 = RunSerializedPoint(&facade, 4, secs);
  std::printf("\nlock-coupled baseline (4 readers + saturating writer):\n");
  std::printf("%-28s %16s %16s\n", "", "reads/s", "writes/s");
  std::printf("%-28s %16.0f %16.0f\n", "mutex-serialized facade",
              ser4.reads_per_sec, ser4.writes_per_sec);
  std::printf("%-28s %16.0f %16.0f\n", "snapshot service",
              snap4.reads_per_sec, snap4.writes_per_sec);

  // The architectural requirement: readers must not serialize behind the
  // writer's translation checks. With >= 4 cores that must show up as
  // >= 2x aggregate scaling at 4 readers. With fewer cores no read path,
  // however good, can beat the fair-share time-slicing cap, so the gate
  // is how close the measured scaling sits to that cap.
  const double cap4 = (4.0 / 5.0) / (1.0 / 2.0);  // 1.60x on one core
  std::printf("\nread scaling at 4 readers: %.2fx", scale4);
  bool pass;
  if (cores >= 4) {
    pass = scale4 >= 2.0;
    std::printf(" (required: >= 2x)\n");
  } else {
    pass = scale4 >= 0.9 * cap4;
    std::printf(
        " — %u core(s): 4 CPU-bound readers time-slice, fair-share cap "
        "is %.2fx; measured/cap = %.2f (>= 0.90 required; the 2x gate "
        "needs >= 4 cores)\n",
        cores, cap4, scale4 / cap4);
  }
  std::printf("%s\n",
              pass ? "PASS: readers scale to the hardware limit without "
                     "serializing behind the writer"
                   : "FAIL: reader scaling below the hardware limit");

  // --- 3. Write-path throughput ---------------------------------------
  std::printf("\n%-28s %16s\n", "write path", "updates/s");
  {
    auto s = MakeService(rows, "");
    const double ups = WriteOnlyThroughput(s.get(), secs, 1);
    std::printf("%-28s %16.0f\n", "single updates (batch=1)", ups);
    json.Add("writes_per_sec_batch1", ups);
  }
  {
    auto s = MakeService(rows, "");
    const double ups = WriteOnlyThroughput(s.get(), secs, 16);
    std::printf("%-28s %16.0f\n", "batched (batch=16)", ups);
    json.Add("writes_per_sec_batch16", ups);
  }
  {
    const std::string journal = "/tmp/relview_bench_service.journal";
    std::remove(journal.c_str());
    auto s = MakeService(rows, journal);
    const double ups = WriteOnlyThroughput(s.get(), secs, 16);
    std::printf("%-28s %16.0f\n", "journaled+fsync (batch=16)", ups);
    json.Add("writes_per_sec_journaled16", ups);
    std::remove(journal.c_str());
  }

  std::printf("\nmixed-workload metrics: %s\n",
              service->metrics().ToJson().c_str());
  json.Add("pass", pass);
  json.Raw("mixed_workload_metrics", service->metrics().ToJson());
  if (!json_path.empty()) {
    Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "json: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}
