// E12 — the chase substrate itself: instance-chase backends (hash vs the
// paper's sort-based algorithm) on null-filled views, and the tableau
// chase used for dependency implication.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/implication.h"
#include "chase/instance_chase.h"
#include "view/generic_instance.h"

namespace relview {
namespace {

void RunChaseBench(benchmark::State& state, ChaseBackend backend) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 11);
  const GenericInstance g =
      GenericInstance::Build(w.universe.All(), w.x, w.view);
  int64_t merges = 0;
  for (auto _ : state) {
    ChaseOutcome out = ChaseInstance(g.relation(), w.fds, backend);
    benchmark::DoNotOptimize(out);
    merges = out.stats.merges;
  }
  state.counters["rows"] = g.relation().size();
  state.counters["merges"] = static_cast<double>(merges);
}

void BM_InstanceChase_Hash(benchmark::State& state) {
  RunChaseBench(state, ChaseBackend::kHash);
}
BENCHMARK(BM_InstanceChase_Hash)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Unit(benchmark::kMillisecond);

void BM_InstanceChase_Sort(benchmark::State& state) {
  RunChaseBench(state, ChaseBackend::kSort);
  state.SetLabel("paper's O(|V|^2 log|V|) sort-merge loop");
}
BENCHMARK(BM_InstanceChase_Sort)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_TableauMVDInference(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  FDSet fds;
  for (int i = 0; i + 1 < width; ++i) {
    fds.Add(AttrSet::Single(static_cast<AttrId>(i)),
            static_cast<AttrId>(i + 1));
  }
  const AttrSet universe = AttrSet::FirstN(width);
  AttrSet x = universe;
  x.Remove(static_cast<AttrId>(width - 1));
  AttrSet y{static_cast<AttrId>(width - 2), static_cast<AttrId>(width - 1)};
  std::vector<JD> jds = {JD::MVD(x, y)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ImpliesMVD(universe, fds, jds, x, y));
  }
  state.SetLabel("U=" + std::to_string(width));
}
BENCHMARK(BM_TableauMVDInference)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
