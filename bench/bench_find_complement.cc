// E9 — Theorem 6: finding a translating complement costs at most
// min(|V|, 2^|X|) translatability tests and is polynomial in |V|. The
// sweep reports both the time and the actual number of distinct W_r
// candidates (typically far below the bound).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "view/find_complement.h"

namespace relview {
namespace {

void BM_FindComplement(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 202);
  int candidates = 0, tests = 0;
  for (auto _ : state) {
    auto res = FindTranslatingComplement(w.universe.All(), w.fds, w.x,
                                         w.view, w.insert_ok);
    benchmark::DoNotOptimize(res);
    if (res.ok()) {
      candidates = res->candidates;
      tests = res->tests_run;
    }
  }
  state.counters["view_rows"] = w.view.size();
  state.counters["candidates"] = candidates;
  state.counters["tests_run"] = tests;
}
BENCHMARK(BM_FindComplement)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_FindComplement_Test1Driver(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 202);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindTranslatingComplement(
        w.universe.All(), w.fds, w.x, w.view, w.insert_ok,
        FindComplementTest::kTest1));
  }
  state.counters["view_rows"] = w.view.size();
  state.SetLabel("driven by Test 1 instead of the exact test");
}
BENCHMARK(BM_FindComplement_Test1Driver)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
