// Deterministic multi-tenant traffic for the network front-end's load
// harness (bench/loadgen.cc) and its tests.
//
// The generator emits POST /v1/batch bodies against the tenant layout of
// src/net/workload.h: every tenant serves the Emp/Dept/Mgr chain seeded
// with employees 1..emps dealt round-robin over `depts` departments. The
// stream is a pure function of TrafficOptions (notably the seed): two
// generators with equal options produce byte-identical request sequences,
// independent of what the server accepted — that is what makes the
// harness open-loop (arrivals never adapt to service time) and replayable
// (a failing run can be regenerated exactly).
//
// Skew: the department a batch touches is drawn from a Zipf(theta)
// distribution over the tenant's departments, so a realistic hot-key
// pattern concentrates translation work (and FD-conflict rejections) on a
// few departments while the tail stays cold.
//
// Op mix per update (weights in TrafficOptions):
//   * insert_fresh  — a brand-new employee into the sampled department
//                     (translatable: extends the view, FDs respected)
//   * delete        — an existing employee of the sampled department
//                     (usually translatable; already-deleted ids reject)
//   * replace       — move an employee to the next department (exercises
//                     Theorem 9's replacement path; mixed verdicts)
//   * insert_conflict — an existing employee with a *different*
//                     department: always untranslatable (FD Emp -> Dept),
//                     keeping a steady rejected fraction in the stream.

#ifndef RELVIEW_BENCH_LOADGEN_TRAFFIC_H_
#define RELVIEW_BENCH_LOADGEN_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/workload.h"
#include "util/rng.h"

namespace relview {
namespace bench {

/// Zipf(theta) sampler over {0, ..., n-1} via the precomputed CDF:
/// P(k) proportional to 1 / (k+1)^theta. theta = 0 is uniform; theta
/// around 1 gives the classic hot-key skew.
class ZipfSampler {
 public:
  ZipfSampler(int n, double theta) : cdf_(static_cast<size_t>(n)) {
    double sum = 0;
    for (int k = 0; k < n; ++k) {
      sum += 1.0 / Pow(static_cast<double>(k + 1), theta);
      cdf_[static_cast<size_t>(k)] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  /// Draws one index in [0, n).
  int Sample(Rng& rng) const {
    const double u =
        static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;  // [0, 1)
    // Binary search the CDF.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo);
  }

 private:
  // std::pow is not constexpr-friendly everywhere and the dependency is
  // trivial to avoid: exp(theta * -log(k)) via a small series is overkill,
  // so use repeated multiplication for integer-ish thetas and fall back to
  // the identity x^t = exp(t ln x) through long double otherwise.
  static double Pow(double x, double t);

  std::vector<double> cdf_;
};

/// Everything that defines the traffic stream. Must match the server's
/// TenantSpec (tenants/emps/depts) for the translatability mix to behave
/// as documented; the stream is well-formed regardless.
struct TrafficOptions {
  int tenants = 4;
  uint32_t emps = 64;
  uint32_t depts = 8;
  /// Zipf exponent over departments (0 = uniform).
  double zipf_theta = 0.99;
  /// View updates per batch.
  int batch_size = 4;
  /// Op-mix weights (need not sum to anything particular).
  int weight_insert = 5;
  int weight_delete = 2;
  int weight_replace = 2;
  int weight_conflict = 1;
  uint64_t seed = 42;
  /// Shard-local insert mode (ignores the weights): each batch inserts
  /// `batch_size` brand-new employees into ONE department, departments
  /// rotating round-robin across batches. Every insert is fresh and
  /// FD-consistent, so every batch is translatable on sharded and
  /// unsharded services alike (no acceptance-mix noise), and because a
  /// batch shares one join key it lands on exactly one shard — the
  /// layout the t[X∩Y] router exists to serve. This is the stream the
  /// shard sweep drives to compare write throughput across shard counts.
  bool shard_local_inserts = false;
};

/// One generated request.
struct GeneratedBatch {
  std::string tenant;  ///< "t0", ...
  std::string body;    ///< Complete JSON body for POST /v1/batch.
  int updates = 0;     ///< Batch size (for throughput accounting).
};

/// The deterministic request stream; Next() is NOT thread-safe (the
/// dispatcher owns the generator, workers only execute).
class TrafficGen {
 public:
  explicit TrafficGen(const TrafficOptions& options);

  /// The next batch in the stream. Tenants rotate round-robin; content is
  /// a pure function of (options, call index).
  GeneratedBatch Next();

  /// Batches generated so far.
  uint64_t generated() const { return generated_; }

 private:
  /// Employee id k-th of department d (ids are dealt round-robin, so the
  /// k-th employee of department index d is d + 1 + k*depts, shifted into
  /// [1, emps] range semantics).
  uint32_t EmpOfDept(int dept_index, uint32_t k) const;

  TrafficOptions options_;
  Rng rng_;
  ZipfSampler dept_sampler_;
  int next_tenant_ = 0;
  /// Next fresh employee id per tenant (fresh inserts grow past emps).
  std::vector<uint32_t> next_fresh_;
  /// Round-robin department cursor per tenant for shard_local_inserts.
  std::vector<uint32_t> next_dept_;
  uint64_t generated_ = 0;
};

}  // namespace bench
}  // namespace relview

#endif  // RELVIEW_BENCH_LOADGEN_TRAFFIC_H_
