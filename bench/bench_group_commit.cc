// bench_group_commit: the cross-batch group-commit microbench.
//
// N writer threads hammer ONE UpdateService (one shard's write path) with
// single-insert translatable batches, once with the classic
// fsync-per-batch journal and once with group commit, and the report
// shows the two claims the feature makes:
//
//   * batches/s rises with writer concurrency instead of flat-lining on
//     the fsync path, because a commit leader's single fsync covers every
//     batch appended while it was in flight;
//   * fsyncs per committed batch drops below 1 (well below with >= 8
//     writers), measured from the store's own fsync counter — not
//     inferred from timing.
//
// Custom main (like bench_service): Google Benchmark's auto-iteration
// would keep re-measuring a store whose journal grows across iterations,
// so each configuration gets one fresh store directory and a fixed batch
// budget instead.
//
// Usage:
//   bench_group_commit [--threads=1,2,4,8,16] [--batches=2000]
//                      [--emps=512] [--depts=16] [--group-window-us=200]
//                      [--store=DIR] [--json=BENCH_group_commit.json]

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "deps/dep_set.h"
#include "relational/relation.h"
#include "relational/universe.h"
#include "relational/value.h"
#include "service/update_service.h"
#include "view/translator.h"

namespace relview {
namespace bench {
namespace {

constexpr uint32_t kDeptBase = 1'000'000;
constexpr uint32_t kMgrBase = 2'000'000;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Config {
  uint32_t emps = 512;
  uint32_t depts = 16;
  uint64_t batches = 2000;  // total across all threads
  uint32_t group_window_us = 200;
  std::string store_root;
};

struct RunResult {
  int threads = 0;
  bool group_commit = false;
  uint64_t committed = 0;
  uint64_t fsyncs = 0;
  double batches_per_sec = 0;
  double fsyncs_per_batch = 0;
};

/// One measurement: a fresh store, `threads` writers splitting the batch
/// budget, each inserting distinct fresh employees (all translatable, so
/// every batch commits and the fsync arithmetic is exact).
RunResult RunOne(const Config& cfg, int threads, bool group_commit) {
  RunResult out;
  out.threads = threads;
  out.group_commit = group_commit;

  auto u = Universe::Parse("Emp Dept Mgr");
  if (!u.ok()) return out;
  DependencySet sigma;
  auto fds = FDSet::Parse(*u, "Emp -> Dept; Dept -> Mgr");
  if (!fds.ok()) return out;
  sigma.fds = *fds;
  auto vt = ViewTranslator::Create(*u, sigma, u->SetOf("Emp Dept"),
                                   u->SetOf("Dept Mgr"));
  if (!vt.ok()) return out;
  Relation db(u->All());
  for (uint32_t e = 1; e <= cfg.emps; ++e) {
    const uint32_t dept = kDeptBase + e % cfg.depts;
    db.AddRow(Tuple({Value::Const(e), Value::Const(dept),
                     Value::Const(kMgrBase + e % cfg.depts)}));
  }
  if (!vt->Bind(std::move(db)).ok()) return out;

  ServiceOptions options;
  options.store.dir = cfg.store_root + "/t" + std::to_string(threads) +
                      (group_commit ? "_group" : "_plain");
  options.group_commit = group_commit;
  options.group_window_us = group_commit ? cfg.group_window_us : 0;
  auto svc = UpdateService::Create(std::move(*vt), std::move(options));
  if (!svc.ok()) {
    std::fprintf(stderr, "bench_group_commit: %s\n",
                 svc.status().ToString().c_str());
    return out;
  }

  const uint64_t per_thread = cfg.batches / static_cast<uint64_t>(threads);
  std::atomic<uint64_t> committed{0};
  const int64_t start = NowNanos();
  std::vector<std::thread> writers;
  writers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      // Disjoint fresh-id ranges per thread; DeptOfEmp keeps each insert
      // FD-consistent so every batch is translatable.
      uint32_t next = cfg.emps + 1 +
                      static_cast<uint32_t>(t) * static_cast<uint32_t>(
                                                     per_thread);
      for (uint64_t i = 0; i < per_thread; ++i) {
        const uint32_t e = next++;
        const uint32_t dept = kDeptBase + e % cfg.depts;
        std::vector<ViewUpdate> batch;
        batch.push_back(ViewUpdate::Insert(
            Tuple({Value::Const(e), Value::Const(dept)})));
        if ((*svc)->ApplyBatch(batch).ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const double wall_s = static_cast<double>(NowNanos() - start) / 1e9;

  out.committed = committed.load();
  out.fsyncs = (*svc)->store() != nullptr ? (*svc)->store()->fsyncs() : 0;
  out.batches_per_sec = static_cast<double>(out.committed) / wall_s;
  out.fsyncs_per_batch =
      out.committed == 0 ? 0.0
                         : static_cast<double>(out.fsyncs) /
                               static_cast<double>(out.committed);
  return out;
}

int Run(int argc, char** argv) {
  Config cfg;
  auto int_flag = [&](const char* name, int def) {
    const std::string v = FlagValue(argc, argv, name);
    return v.empty() ? def : std::atoi(v.c_str());
  };
  cfg.emps = static_cast<uint32_t>(int_flag("emps", 512));
  cfg.depts = static_cast<uint32_t>(int_flag("depts", 16));
  cfg.batches = static_cast<uint64_t>(int_flag("batches", 2000));
  cfg.group_window_us =
      static_cast<uint32_t>(int_flag("group-window-us", 200));
  cfg.store_root = FlagValue(argc, argv, "store");
  if (cfg.store_root.empty()) {
    cfg.store_root = "/tmp/relview_group_commit." +
                     std::to_string(static_cast<long>(::getpid()));
  }
  std::string threads_flag = FlagValue(argc, argv, "threads");
  if (threads_flag.empty()) threads_flag = "1,2,4,8,16";
  const std::string json_path = FlagValue(argc, argv, "json");

  std::vector<int> thread_counts;
  size_t pos = 0;
  while (pos < threads_flag.size()) {
    const size_t comma = threads_flag.find(',', pos);
    thread_counts.push_back(std::atoi(threads_flag.c_str() + pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::printf("%8s  %-6s  %12s  %8s  %14s\n", "threads", "mode",
              "batches/s", "fsyncs", "fsyncs/batch");
  std::vector<RunResult> results;
  for (const int threads : thread_counts) {
    for (const bool group : {false, true}) {
      const RunResult r = RunOne(cfg, threads, group);
      results.push_back(r);
      std::printf("%8d  %-6s  %12.1f  %8llu  %14.3f\n", r.threads,
                  group ? "group" : "plain", r.batches_per_sec,
                  static_cast<unsigned long long>(r.fsyncs),
                  r.fsyncs_per_batch);
    }
  }

  if (!json_path.empty()) {
    std::string pts = "[";
    for (size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      if (i > 0) pts += ",";
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "{\"threads\":%d,\"group\":%s,\"committed\":%llu,"
                    "\"fsyncs\":%llu,\"batches_per_sec\":%.2f,"
                    "\"fsyncs_per_batch\":%.4f}",
                    r.threads, r.group_commit ? "true" : "false",
                    static_cast<unsigned long long>(r.committed),
                    static_cast<unsigned long long>(r.fsyncs),
                    r.batches_per_sec, r.fsyncs_per_batch);
      pts += buf;
    }
    pts += "]";
    JsonWriter json;
    json.Add("emps", static_cast<uint64_t>(cfg.emps))
        .Add("depts", static_cast<uint64_t>(cfg.depts))
        .Add("batches", cfg.batches)
        .Add("group_window_us", static_cast<uint64_t>(cfg.group_window_us));
    json.Raw("results", pts);
    Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_group_commit: json: %s\n",
                   st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace relview

int main(int argc, char** argv) {
  return relview::bench::Run(argc, argv);
}
