// E13/E14 — the Bancilhon–Spyratos layer and explicit FDs.
//
// E13: constant-complement translation over enumerated state spaces —
// cost is linear in the number of states (building the (v × v') inverse).
// E14: EFD implication reduces to FD closure (Proposition 1); Theorem 10
// complementarity with EFDs runs the embedded-MVD tableau chase.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "deps/efd.h"
#include "framework/bs_framework.h"
#include "view/complement.h"

namespace relview {
namespace {

void BM_ConstantComplementTranslation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));  // states = n^2 pairs
  std::vector<int> vimg, cimg;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      vimg.push_back(a);
      cimg.push_back(b);
    }
  }
  FiniteMapping v(vimg, n), vc(cimg, n);
  std::vector<int> uimg(n);
  for (int i = 0; i < n; ++i) uimg[i] = (i + 1) % n;
  FiniteMapping u(uimg, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TranslateUnderConstantComplement(v, vc, u));
  }
  state.counters["states"] = n * n;
}
BENCHMARK(BM_ConstantComplementTranslation)
    ->RangeMultiplier(2)
    ->Range(8, 256);

void BM_EFDImplication(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  EFDSet efds;
  for (int i = 0; i + 1 < width; ++i) {
    efds.Add(EFD(AttrSet::Single(static_cast<AttrId>(i)),
                 AttrSet::Single(static_cast<AttrId>(i + 1))));
  }
  const AttrSet lhs = AttrSet::Single(0);
  const AttrSet rhs = AttrSet::Single(static_cast<AttrId>(width - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(efds.Implies(lhs, rhs));
  }
  state.SetLabel("chain of " + std::to_string(width - 1) + " EFDs");
}
BENCHMARK(BM_EFDImplication)->Arg(8)->Arg(32)->Arg(128);

void BM_Theorem10Complementarity(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  DependencySet sigma;
  sigma.fds = bench::MakeRandomFds(width, width, 3);
  // One EFD making the last attribute computable from the rest.
  AttrSet rest = AttrSet::FirstN(width - 1);
  sigma.efds.Add(EFD(rest, AttrSet::Single(static_cast<AttrId>(width - 1))));
  AttrSet x = AttrSet::FirstN(width - 1);
  AttrSet y = AttrSet::FirstN(width / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AreComplementary(AttrSet::FirstN(width), sigma, x, y));
  }
  state.SetLabel("U=" + std::to_string(width) + " with EFD");
}
BENCHMARK(BM_Theorem10Complementarity)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
