// Shared workload builders for the relview benchmarks. Each experiment in
// DESIGN.md §4 uses these to generate schemas and view instances of
// controlled size.

#ifndef RELVIEW_BENCH_BENCH_UTIL_H_
#define RELVIEW_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>

#include "deps/fd_set.h"
#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "relational/relation.h"
#include "util/rng.h"
#include "util/status.h"

namespace relview {
namespace bench {

/// The Employee–Dept–Mgr shape scaled up: a chain schema
/// A0 -> A1 -> ... -> A{w-1} with view X = A0..A{w-2} and complement
/// Y = A{w-2} A{w-1}. This is the paper's canonical translatable setting.
struct ChainWorkload {
  Universe universe;
  FDSet fds;
  AttrSet x, y;
  Relation database{AttrSet()};
  Relation view{AttrSet()};
  Tuple insert_ok;    // translatable insertion
  Tuple insert_bad;   // condition (c) rejection
  Tuple delete_ok;    // translatable deletion
};

inline ChainWorkload MakeChainWorkload(int width, int rows, int fanin,
                                       uint64_t seed) {
  ChainWorkload w;
  w.universe = Universe::Anonymous(width);
  for (int i = 0; i + 1 < width; ++i) {
    w.fds.Add(AttrSet::Single(static_cast<AttrId>(i)),
              static_cast<AttrId>(i + 1));
  }
  const AttrSet all = w.universe.All();
  w.x = all;
  w.x.Remove(static_cast<AttrId>(width - 1));
  w.y = AttrSet{static_cast<AttrId>(width - 2),
                static_cast<AttrId>(width - 1)};

  // Build the instance directly so |view| == rows exactly: column 0 is a
  // key (one row per id); each later column is a deterministic function
  // of the previous one with domain shrinking by `fanin` per level (the
  // Emp -> Dept -> Mgr shape: `fanin` employees per department, ...).
  Relation db(all);
  const Schema& s = db.schema();
  (void)seed;
  for (int i = 0; i < rows; ++i) {
    Tuple t(width);
    uint32_t v = static_cast<uint32_t>(i);
    int level_domain = rows;
    for (int c = 0; c < width; ++c) {
      t[s.PosOf(static_cast<AttrId>(c))] =
          Value::Const(static_cast<uint32_t>(c) * 0x01000000u + v);
      level_domain = std::max(2, level_domain / std::max(2, fanin));
      // Deterministic function of v: keeps every FD satisfied.
      v = (v * 2654435761u + static_cast<uint32_t>(c)) %
          static_cast<uint32_t>(level_domain);
    }
    db.AddRow(std::move(t));
  }
  RELVIEW_DCHECK(SatisfiesAll(db, w.fds), "chain workload illegal");
  w.view = db.Project(w.x);
  w.database = std::move(db);
  RELVIEW_DCHECK(w.view.size() == rows, "chain view collapsed");

  // Translatable insert: copy a row's tail (the common part), fresh head.
  const Schema vs(w.x);
  RELVIEW_DCHECK(w.view.size() > 0, "empty bench view");
  Tuple ok = w.view.row(0);
  ok.Set(vs, 0, Value::Const(0x0FFFFFF0u));
  w.insert_ok = ok;
  // Rejected insert: reuse a row's head (A0 determines A1) with a changed
  // second column.
  Tuple bad = w.view.row(0);
  if (width >= 3) {
    const Value old = bad.At(vs, 1);
    bad.Set(vs, 1, Value::Const(old.index() ^ 1u));
  }
  w.insert_bad = bad;
  w.delete_ok = w.view.row(0);
  return w;
}

/// A probe-heavy workload for the condition-(c) chase test: U = {A,B,C},
/// X = AB, Y = BC, Sigma = {B -> C, C -> B}. C -> B has an empty lhs∩X, so
/// every view row is a chase-probe candidate for every checked insertion —
/// per-update cost is dominated by |V| independent probes, the regime the
/// parallel probe executor targets. `groups` controls how many B-values
/// the rows spread over (condition (a) needs the inserted tuple to reuse
/// one).
struct ProbeHeavyWorkload {
  Universe universe;
  FDSet fds;
  AttrSet x, y;
  Relation database{AttrSet()};
  Relation view{AttrSet()};
};

inline ProbeHeavyWorkload MakeProbeHeavyWorkload(int rows, int groups) {
  ProbeHeavyWorkload w;
  w.universe = Universe::Anonymous(3);
  w.fds.Add(AttrSet::Single(1), 2);  // B -> C
  w.fds.Add(AttrSet::Single(2), 1);  // C -> B
  w.x = AttrSet{0, 1};
  w.y = AttrSet{1, 2};
  Relation db(w.universe.All());
  const Schema& s = db.schema();
  for (int i = 0; i < rows; ++i) {
    const uint32_t g = static_cast<uint32_t>(i % std::max(1, groups));
    Tuple t(3);
    t[s.PosOf(0)] = Value::Const(static_cast<uint32_t>(i));
    t[s.PosOf(1)] = Value::Const(0x01000000u + g);
    t[s.PosOf(2)] = Value::Const(0x02000000u + g);
    db.AddRow(std::move(t));
  }
  RELVIEW_DCHECK(SatisfiesAll(db, w.fds), "probe-heavy workload illegal");
  w.view = db.Project(w.x);
  w.database = std::move(db);
  RELVIEW_DCHECK(w.view.size() == rows, "probe-heavy view collapsed");
  return w;
}

/// Minimal ordered single-line JSON object builder for the benchmarks'
/// --json mode. Keys are emitted in insertion order; Raw() splices
/// pre-rendered JSON (numbers, nested objects).
class JsonWriter {
 public:
  JsonWriter& Add(const std::string& key, uint64_t v) {
    return Raw(key, std::to_string(v));
  }
  JsonWriter& Add(const std::string& key, int64_t v) {
    return Raw(key, std::to_string(v));
  }
  JsonWriter& Add(const std::string& key, int v) {
    return Raw(key, std::to_string(v));
  }
  JsonWriter& Add(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return Raw(key, buf);
  }
  JsonWriter& Add(const std::string& key, bool v) {
    return Raw(key, v ? "true" : "false");
  }
  JsonWriter& Add(const std::string& key, const std::string& v) {
    return Raw(key, "\"" + v + "\"");  // callers pass escape-free strings
  }
  JsonWriter& Raw(const std::string& key, const std::string& json) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + key + "\":" + json;
    return *this;
  }

  std::string ToString() const { return "{" + body_ + "}"; }

  Status WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return Status::Internal("cannot open " + path);
    const std::string out = ToString() + "\n";
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (!ok) return Status::Internal("short write to " + path);
    return Status::OK();
  }

 private:
  std::string body_;
};

/// Parses `--name=value` from argv; returns empty when absent.
inline std::string FlagValue(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

inline bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// A random FD schema over `width` attributes with `nfds` dependencies;
/// used for the schema-level benchmarks (complement checks, Test 2
/// precomputation).
inline FDSet MakeRandomFds(int width, int nfds, uint64_t seed) {
  Rng rng(seed);
  FDSet fds;
  for (int i = 0; i < nfds; ++i) {
    AttrSet lhs;
    const int lhs_size = 1 + static_cast<int>(rng.Below(3));
    for (int k = 0; k < lhs_size; ++k) {
      lhs.Add(static_cast<AttrId>(rng.Below(width)));
    }
    fds.Add(lhs, static_cast<AttrId>(rng.Below(width)));
  }
  return fds;
}

}  // namespace bench
}  // namespace relview

#endif  // RELVIEW_BENCH_BENCH_UTIL_H_
