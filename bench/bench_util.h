// Shared workload builders for the relview benchmarks. Each experiment in
// DESIGN.md §4 uses these to generate schemas and view instances of
// controlled size.

#ifndef RELVIEW_BENCH_BENCH_UTIL_H_
#define RELVIEW_BENCH_BENCH_UTIL_H_

#include <algorithm>

#include "deps/fd_set.h"
#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace relview {
namespace bench {

/// The Employee–Dept–Mgr shape scaled up: a chain schema
/// A0 -> A1 -> ... -> A{w-1} with view X = A0..A{w-2} and complement
/// Y = A{w-2} A{w-1}. This is the paper's canonical translatable setting.
struct ChainWorkload {
  Universe universe;
  FDSet fds;
  AttrSet x, y;
  Relation database{AttrSet()};
  Relation view{AttrSet()};
  Tuple insert_ok;    // translatable insertion
  Tuple insert_bad;   // condition (c) rejection
  Tuple delete_ok;    // translatable deletion
};

inline ChainWorkload MakeChainWorkload(int width, int rows, int fanin,
                                       uint64_t seed) {
  ChainWorkload w;
  w.universe = Universe::Anonymous(width);
  for (int i = 0; i + 1 < width; ++i) {
    w.fds.Add(AttrSet::Single(static_cast<AttrId>(i)),
              static_cast<AttrId>(i + 1));
  }
  const AttrSet all = w.universe.All();
  w.x = all;
  w.x.Remove(static_cast<AttrId>(width - 1));
  w.y = AttrSet{static_cast<AttrId>(width - 2),
                static_cast<AttrId>(width - 1)};

  // Build the instance directly so |view| == rows exactly: column 0 is a
  // key (one row per id); each later column is a deterministic function
  // of the previous one with domain shrinking by `fanin` per level (the
  // Emp -> Dept -> Mgr shape: `fanin` employees per department, ...).
  Relation db(all);
  const Schema& s = db.schema();
  (void)seed;
  for (int i = 0; i < rows; ++i) {
    Tuple t(width);
    uint32_t v = static_cast<uint32_t>(i);
    int level_domain = rows;
    for (int c = 0; c < width; ++c) {
      t[s.PosOf(static_cast<AttrId>(c))] =
          Value::Const(static_cast<uint32_t>(c) * 0x01000000u + v);
      level_domain = std::max(2, level_domain / std::max(2, fanin));
      // Deterministic function of v: keeps every FD satisfied.
      v = (v * 2654435761u + static_cast<uint32_t>(c)) %
          static_cast<uint32_t>(level_domain);
    }
    db.AddRow(std::move(t));
  }
  RELVIEW_DCHECK(SatisfiesAll(db, w.fds), "chain workload illegal");
  w.view = db.Project(w.x);
  w.database = std::move(db);
  RELVIEW_DCHECK(w.view.size() == rows, "chain view collapsed");

  // Translatable insert: copy a row's tail (the common part), fresh head.
  const Schema vs(w.x);
  RELVIEW_DCHECK(w.view.size() > 0, "empty bench view");
  Tuple ok = w.view.row(0);
  ok.Set(vs, 0, Value::Const(0x0FFFFFF0u));
  w.insert_ok = ok;
  // Rejected insert: reuse a row's head (A0 determines A1) with a changed
  // second column.
  Tuple bad = w.view.row(0);
  if (width >= 3) {
    const Value old = bad.At(vs, 1);
    bad.Set(vs, 1, Value::Const(old.index() ^ 1u));
  }
  w.insert_bad = bad;
  w.delete_ok = w.view.row(0);
  return w;
}

/// A random FD schema over `width` attributes with `nfds` dependencies;
/// used for the schema-level benchmarks (complement checks, Test 2
/// precomputation).
inline FDSet MakeRandomFds(int width, int nfds, uint64_t seed) {
  Rng rng(seed);
  FDSet fds;
  for (int i = 0; i < nfds; ++i) {
    AttrSet lhs;
    const int lhs_size = 1 + static_cast<int>(rng.Below(3));
    for (int k = 0; k < lhs_size; ++k) {
      lhs.Add(static_cast<AttrId>(rng.Below(width)));
    }
    fds.Add(lhs, static_cast<AttrId>(rng.Below(width)));
  }
  return fds;
}

}  // namespace bench
}  // namespace relview

#endif  // RELVIEW_BENCH_BENCH_UTIL_H_
