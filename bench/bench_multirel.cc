// E15 — the multirelation extension (Section 6(3)): cost of translating
// view updates through the universal-relation bridge — join, translate,
// decompose, re-verify global consistency — as the base tables grow.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "deps/keys.h"
#include "multirel/multirel.h"

namespace relview {
namespace {

struct MultiWorkload {
  std::unique_ptr<MultiSchema> schema;
  std::unique_ptr<MultiRelViewTranslator> translator;
  Tuple insert_ok;
};

MultiWorkload MakeMultiWorkload(int orders) {
  MultiWorkload w;
  Universe u = Universe::Parse("Order Product Supplier").value();
  DependencySet sigma;
  sigma.fds =
      FDSet::Parse(u, "Order -> Product; Product -> Supplier").value();
  std::vector<AttrSet> parts = DecomposeBCNF(u.All(), sigma.fds);
  std::vector<std::string> names;
  for (size_t i = 0; i < parts.size(); ++i) {
    names.push_back("R" + std::to_string(i));
  }
  auto schema = MultiSchema::Create(u, sigma, names, parts);
  RELVIEW_DCHECK(schema.ok(), "bench schema rejected");
  w.schema = std::make_unique<MultiSchema>(std::move(*schema));

  Relation universal(u.All());
  const Schema& s = universal.schema();
  const int products = std::max(2, orders / 8);
  for (int i = 0; i < orders; ++i) {
    Tuple t(3);
    const uint32_t product = 1000000u + static_cast<uint32_t>(i % products);
    t.Set(s, u["Order"], Value::Const(static_cast<uint32_t>(i)));
    t.Set(s, u["Product"], Value::Const(product));
    t.Set(s, u["Supplier"],
          Value::Const(2000000u + product % 97));
    universal.AddRow(std::move(t));
  }
  MultiDatabase db(w.schema.get());
  db.DecomposeFrom(universal);

  auto vt = MultiRelViewTranslator::Create(
      w.schema.get(), u.SetOf("Order Product"),
      u.SetOf("Product Supplier"));
  RELVIEW_DCHECK(vt.ok(), "bench translator rejected");
  w.translator =
      std::make_unique<MultiRelViewTranslator>(std::move(*vt));
  RELVIEW_DCHECK(w.translator->Bind(std::move(db)).ok(), "bind failed");

  Tuple t(2);
  t[0] = Value::Const(0x0FFFFFF0u);
  t[1] = Value::Const(1000000u);
  w.insert_ok = std::move(t);
  return w;
}

void BM_MultiRelInsertDelete(benchmark::State& state) {
  const int orders = static_cast<int>(state.range(0));
  MultiWorkload w = MakeMultiWorkload(orders);
  for (auto _ : state) {
    Status ins = w.translator->Insert(w.insert_ok);
    benchmark::DoNotOptimize(ins);
    Status del = w.translator->Delete(w.insert_ok);
    benchmark::DoNotOptimize(del);
    if (!ins.ok() || !del.ok()) {
      state.SkipWithError("round-trip failed");
      return;
    }
  }
  state.counters["orders"] = orders;
}
BENCHMARK(BM_MultiRelInsertDelete)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
