// E10/E11 — Theorems 4, 5, 7: under the succinct view encoding (union of
// Cartesian products, description O(|U|)) the decision procedures must
// expand exponentially many rows. The sweeps below hold the description
// growth linear in n while the measured time grows like 2^n — the
// "exponential wall" the hardness results predict. The co-NP (Test 1) and
// NP (complement-existence) pipelines are included, as is the QBF oracle
// for scale comparison.

#include <benchmark/benchmark.h>

#include "reductions/reductions.h"
#include "solvers/dpll.h"
#include "view/find_complement.h"
#include "view/insertion.h"
#include "view/test1.h"

namespace relview {
namespace {

CNF3 Formula(int n, uint64_t seed) {
  Rng rng(seed);
  return CNF3::Random(n, 2 * n, &rng);
}

void BM_Theorem4_ExpandAndDecide(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CNF3 phi = Formula(n, 4000 + n);
  SuccinctInsertionReduction red = ReduceForallExistsToInsertion(phi, 2);
  for (auto _ : state) {
    const Relation v = red.view.Expand();
    benchmark::DoNotOptimize(CheckInsertion(red.universe.All(), red.fds,
                                            red.view_x, red.comp_y, v,
                                            red.t));
  }
  state.counters["description_cells"] =
      static_cast<double>(red.view.DescriptionSize());
  state.counters["expanded_rows"] =
      static_cast<double>(red.view.ExpandedSizeBound());
}
BENCHMARK(BM_Theorem4_ExpandAndDecide)
    ->DenseRange(4, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Theorem5_Test1Succinct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CNF3 phi = Formula(n, 5000 + n);
  SuccinctInsertionReduction red = ReduceUnsatToTest1(phi);
  for (auto _ : state) {
    const Relation v = red.view.Expand();
    benchmark::DoNotOptimize(RunTest1(red.universe.All(), red.fds,
                                      red.view_x, red.comp_y, v, red.t,
                                      {Test1Backend::kClosure}));
  }
  state.counters["expanded_rows"] =
      static_cast<double>(red.view.ExpandedSizeBound());
}
BENCHMARK(BM_Theorem5_Test1Succinct)
    ->DenseRange(4, 13, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Theorem7_FindComplementSuccinct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CNF3 phi = Formula(n, 6000 + n);
  ComplementExistenceReduction red = ReduceSatToComplementExistence(phi);
  for (auto _ : state) {
    const Relation v = red.view.Expand();
    benchmark::DoNotOptimize(FindTranslatingComplement(
        red.universe.All(), red.fds, red.view_x, v, red.t));
  }
  state.counters["expanded_rows"] =
      static_cast<double>(red.view.ExpandedSizeBound());
}
BENCHMARK(BM_Theorem7_FindComplementSuccinct)
    ->DenseRange(4, 11, 1)
    ->Unit(benchmark::kMillisecond);

void BM_QbfOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CNF3 phi = Formula(n, 4000 + n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ForallExistsSat(phi, 2));
  }
}
BENCHMARK(BM_QbfOracle)->DenseRange(4, 10, 1);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
