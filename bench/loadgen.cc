// Open-loop multi-tenant load harness for relview_serve (DESIGN.md §12).
//
// Open-loop means arrivals come from a clock, not from completions: a
// dispatcher thread draws exponential inter-arrival gaps at the target
// rate and timestamps every batch with its *scheduled* arrival; workers
// (each owning one persistent HTTP connection) execute whatever is
// queued. Latency is measured from the scheduled arrival to the response
// — queueing delay included — so when offered load exceeds what the
// server's fsync path can absorb, the numbers show it honestly instead of
// the harness quietly slowing its own arrivals (the classic
// closed-loop coordinated-omission trap).
//
// The server is expected to *shed* (429) rather than queue without bound
// past the knee: offered vs accepted throughput plus the 429/503 split is
// exactly the admission-control story the front-end claims, and the
// bounded p99 on *accepted* requests is the gate CI enforces.
//
// Usage:
//   loadgen --port=NNNN [--host=127.0.0.1] [--rate=200] [--duration=5]
//           [--connections=8] [--tenants=4] [--emps=64] [--depts=8]
//           [--batch=4] [--theta=0.99] [--seed=42]
//           [--json=BENCH_net.json] [--gate] [--p99-limit-ms=500]
//
// With --gate the exit code is nonzero when nothing was accepted or the
// accepted-request p99 exceeds the limit.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_util.h"
#include "loadgen_traffic.h"
#include "net/http.h"
#include "obs/histogram.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace relview {
namespace bench {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Job {
  int64_t scheduled_nanos = 0;
  std::string body;
};

/// Dispatcher-to-worker queue. Unbounded by design: the backlog IS the
/// open-loop signal (it turns into latency, never into dropped offers).
class JobQueue {
 public:
  void Push(Job job) RELVIEW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      jobs_.push_back(std::move(job));
    }
    cv_.NotifyOne();
  }

  void Close() RELVIEW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  /// False = queue closed and drained.
  bool Pop(Job* out) RELVIEW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (jobs_.empty() && !closed_) cv_.Wait(mu_);
    if (jobs_.empty()) return false;
    *out = std::move(jobs_.front());
    jobs_.pop_front();
    return true;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::deque<Job> jobs_ RELVIEW_GUARDED_BY(mu_);
  bool closed_ RELVIEW_GUARDED_BY(mu_) = false;
};

/// Shared tallies (relaxed atomics; summed after the run).
struct Tally {
  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};   // 409 semantic verdicts
  std::atomic<uint64_t> shed{0};       // 429
  std::atomic<uint64_t> unavailable{0};  // 503 (deadline/drain/durability)
  std::atomic<uint64_t> other_status{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> updates_applied{0};
  LatencyHistogram accepted_latency;
  LatencyHistogram all_latency;
};

/// One worker's persistent connection.
class Connection {
 public:
  Connection(std::string host, int port)
      : host_(std::move(host)), port_(port) {}
  ~Connection() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool EnsureOpen() {
    if (fd_ >= 0) return true;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0) {
      Close();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  /// Sends `request` and parses one response; -1 on transport error.
  /// Closes the connection when the server asked to.
  int Roundtrip(const std::string& request, std::string* body) {
    if (!EnsureOpen()) return -1;
    size_t off = 0;
    while (off < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + off,
                               request.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      Close();
      return -1;
    }
    net::ResponseParser parser;
    char buf[16 * 1024];
    while (!parser.complete() && !parser.error()) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        parser.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      Close();
      return -1;
    }
    if (parser.error()) {
      Close();
      return -1;
    }
    *body = parser.body();
    std::string connection = parser.Header("connection");
    for (char& c : connection) c = static_cast<char>(std::tolower(c));
    if (connection == "close") Close();
    return parser.status();
  }

 private:
  std::string host_;
  int port_;
  int fd_ = -1;
};

void WorkerLoop(const std::string& host, int port, JobQueue* queue,
                Tally* tally) {
  Connection conn(host, port);
  Job job;
  while (queue->Pop(&job)) {
    std::string body;
    int status = conn.Roundtrip(job.body, &body);
    if (status < 0) {
      // One reconnect retry: the server may have closed an idle
      // keep-alive socket between requests.
      status = conn.Roundtrip(job.body, &body);
    }
    const int64_t latency = NowNanos() - job.scheduled_nanos;
    tally->all_latency.Record(latency);
    if (status < 0) {
      tally->transport_errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    switch (status) {
      case 200: {
        tally->accepted.fetch_add(1, std::memory_order_relaxed);
        tally->accepted_latency.Record(latency);
        const size_t pos = body.find("\"applied\":");
        if (pos != std::string::npos) {
          tally->updates_applied.fetch_add(
              std::strtoull(body.c_str() + pos + 10, nullptr, 10),
              std::memory_order_relaxed);
        }
        break;
      }
      case 409:
        tally->rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      case 429:
        tally->shed.fetch_add(1, std::memory_order_relaxed);
        break;
      case 503:
        tally->unavailable.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        tally->other_status.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

int Run(int argc, char** argv) {
  const std::string host_flag = FlagValue(argc, argv, "host");
  const std::string host = host_flag.empty() ? "127.0.0.1" : host_flag;
  const int port = std::atoi(FlagValue(argc, argv, "port").c_str());
  if (port <= 0) {
    std::fprintf(stderr, "loadgen: --port=NNNN is required\n");
    return 2;
  }
  auto int_flag = [&](const char* name, int def) {
    const std::string v = FlagValue(argc, argv, name);
    return v.empty() ? def : std::atoi(v.c_str());
  };
  auto double_flag = [&](const char* name, double def) {
    const std::string v = FlagValue(argc, argv, name);
    return v.empty() ? def : std::atof(v.c_str());
  };
  const double rate = double_flag("rate", 200.0);
  const double duration = double_flag("duration", 5.0);
  const int connections = int_flag("connections", 8);
  TrafficOptions traffic;
  traffic.tenants = int_flag("tenants", 4);
  traffic.emps = static_cast<uint32_t>(int_flag("emps", 64));
  traffic.depts = static_cast<uint32_t>(int_flag("depts", 8));
  traffic.batch_size = int_flag("batch", 4);
  traffic.zipf_theta = double_flag("theta", 0.99);
  traffic.seed = static_cast<uint64_t>(int_flag("seed", 42));
  const std::string json_path = FlagValue(argc, argv, "json");
  const bool gate = HasFlag(argc, argv, "gate");
  const double p99_limit_ms = double_flag("p99-limit-ms", 500.0);

  Tally tally;
  JobQueue queue;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  for (int i = 0; i < connections; ++i) {
    workers.emplace_back(
        [&host, port, &queue, &tally] {
          WorkerLoop(host, port, &queue, &tally);
        });
  }

  // The dispatcher: exponential inter-arrival gaps at `rate` per second,
  // scheduled on an absolute clock so a slow Next() call never drags the
  // offered rate down (gaps accumulate from the previous *scheduled*
  // instant, not from "now").
  TrafficGen gen(traffic);
  Rng arrivals(traffic.seed ^ 0x9E3779B97F4A7C15ULL);
  const int64_t start = NowNanos();
  const int64_t end = start + static_cast<int64_t>(duration * 1e9);
  int64_t next_arrival = start;
  while (next_arrival < end) {
    const int64_t now = NowNanos();
    if (next_arrival > now) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(next_arrival - now));
    }
    GeneratedBatch batch = gen.Next();
    Job job;
    job.scheduled_nanos = next_arrival;
    job.body = net::BuildRequest("POST", "/v1/batch", host, batch.body);
    queue.Push(std::move(job));
    tally.offered.fetch_add(1, std::memory_order_relaxed);
    // Exponential gap: -ln(U)/rate, capped to keep one stuck draw from
    // stalling the stream.
    const double u = static_cast<double>(arrivals.Next() >> 11) * 0x1.0p-53;
    const double gap_s = -std::log(1.0 - u) / rate;
    next_arrival +=
        static_cast<int64_t>(std::min(gap_s, 1.0) * 1e9);
  }
  queue.Close();
  for (std::thread& t : workers) t.join();
  const double wall_s =
      static_cast<double>(NowNanos() - start) / 1e9;

  const uint64_t offered = tally.offered.load();
  const uint64_t accepted = tally.accepted.load();
  const double offered_rate = static_cast<double>(offered) / wall_s;
  const double accepted_rate = static_cast<double>(accepted) / wall_s;
  const double p50_ms =
      static_cast<double>(tally.accepted_latency.QuantileNanos(0.50)) / 1e6;
  const double p99_ms =
      static_cast<double>(tally.accepted_latency.QuantileNanos(0.99)) / 1e6;
  const double p999_ms =
      static_cast<double>(tally.accepted_latency.QuantileNanos(0.999)) / 1e6;

  std::printf("loadgen: %.1fs against %s:%d, %d connections\n", wall_s,
              host.c_str(), port, connections);
  std::printf("  offered   %8llu batches (%.1f/s target %.1f/s)\n",
              static_cast<unsigned long long>(offered), offered_rate, rate);
  std::printf("  accepted  %8llu (%.1f/s), %llu updates applied\n",
              static_cast<unsigned long long>(accepted), accepted_rate,
              static_cast<unsigned long long>(tally.updates_applied.load()));
  std::printf("  rejected  %8llu (409)  shed %llu (429)  unavailable %llu "
              "(503)  other %llu  transport %llu\n",
              static_cast<unsigned long long>(tally.rejected.load()),
              static_cast<unsigned long long>(tally.shed.load()),
              static_cast<unsigned long long>(tally.unavailable.load()),
              static_cast<unsigned long long>(tally.other_status.load()),
              static_cast<unsigned long long>(tally.transport_errors.load()));
  std::printf("  accepted latency p50 %.2fms  p99 %.2fms  p99.9 %.2fms "
              "(open-loop: includes queue wait)\n",
              p50_ms, p99_ms, p999_ms);

  JsonWriter json;
  json.Add("host", host)
      .Add("port", port)
      .Add("rate_target", rate)
      .Add("duration_s", wall_s)
      .Add("connections", connections)
      .Add("tenants", traffic.tenants)
      .Add("batch_size", traffic.batch_size)
      .Add("zipf_theta", traffic.zipf_theta)
      .Add("offered", offered)
      .Add("offered_per_sec", offered_rate)
      .Add("accepted", accepted)
      .Add("accepted_per_sec", accepted_rate)
      .Add("updates_applied", tally.updates_applied.load())
      .Add("rejected_409", tally.rejected.load())
      .Add("shed_429", tally.shed.load())
      .Add("unavailable_503", tally.unavailable.load())
      .Add("other_status", tally.other_status.load())
      .Add("transport_errors", tally.transport_errors.load())
      .Add("accepted_p50_ms", p50_ms)
      .Add("accepted_p99_ms", p99_ms)
      .Add("accepted_p999_ms", p999_ms);
  json.Raw("accepted_latency", tally.accepted_latency.ToJson());
  json.Raw("all_latency", tally.all_latency.ToJson());

  bool pass = true;
  if (gate) {
    if (accepted == 0) {
      std::fprintf(stderr, "loadgen: GATE FAIL: no batch was accepted\n");
      pass = false;
    }
    if (p99_ms > p99_limit_ms) {
      std::fprintf(stderr,
                   "loadgen: GATE FAIL: accepted p99 %.2fms > limit %.2fms\n",
                   p99_ms, p99_limit_ms);
      pass = false;
    }
  }
  json.Add("pass", pass);
  if (!json_path.empty()) {
    Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "loadgen: json: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relview

int main(int argc, char** argv) {
  return relview::bench::Run(argc, argv);
}
