// Open-loop multi-tenant load harness for relview_serve (DESIGN.md §12).
//
// Open-loop means arrivals come from a clock, not from completions: a
// dispatcher thread draws exponential inter-arrival gaps at the target
// rate and timestamps every batch with its *scheduled* arrival; workers
// (each owning one persistent HTTP connection) execute whatever is
// queued. Latency is measured from the scheduled arrival to the response
// — queueing delay included — so when offered load exceeds what the
// server's fsync path can absorb, the numbers show it honestly instead of
// the harness quietly slowing its own arrivals (the classic
// closed-loop coordinated-omission trap).
//
// The server is expected to *shed* (429) rather than queue without bound
// past the knee: offered vs accepted throughput plus the 429/503 split is
// exactly the admission-control story the front-end claims, and the
// bounded p99 on *accepted* requests is the gate CI enforces.
//
// Usage:
//   loadgen --port=NNNN [--host=127.0.0.1] [--rate=200] [--duration=5]
//           [--connections=8] [--tenants=4] [--emps=64] [--depts=8]
//           [--batch=4] [--theta=0.99] [--seed=42]
//           [--max-retries=3] [--retry-cap-ms=1000]
//           [--json=BENCH_net.json] [--gate] [--p99-limit-ms=500]
//
// With --gate the exit code is nonzero when nothing was accepted or the
// accepted-request p99 exceeds the limit.
//
// Shed handling: a 429 response is honoured, not dropped — the batch is
// rescheduled after the server's Retry-After (capped at --retry-cap-ms,
// at most --max-retries attempts), and its latency keeps accruing from
// the ORIGINAL scheduled arrival, so backoff shows up as tail latency
// rather than vanishing from the books. The arrival stream itself never
// adapts (still open-loop); only already-offered batches are retried.
//
// Shard-sweep mode (in-process, no --port):
//   loadgen --sweep-shards=1,2,4 [--rate=200] [--duration=2]
//           [--connections=32] [--emps=16384] [--depts=1024] [--batch=8]
//           [--theta=0] [--group-window-us=100000] [--sweep-store=DIR]
//           [--json=BENCH_net_shards.json] [--gate] [--min-scaling=2.5]
//           [--max-fsyncs-per-batch=0.5]
//
// boots one single-tenant server per listed shard count (each running
// the production default for that count: fsync-per-batch at 1 shard,
// group commit above, DurableStore under --sweep-store), drives the
// same saturating open-loop stream at each point, and emits
// throughput-vs-shard-count plus fsyncs-per-committed-batch. With
// --gate the run fails unless last/first throughput >= --min-scaling
// and the largest point's fsyncs/batch < --max-fsyncs-per-batch (the
// group-commit claim).
//
// The sweep stream is department-clustered fresh inserts (see
// TrafficOptions::shard_local_inserts): acceptance-symmetric across
// shard counts and shard-local per batch, so the ratio isolates the
// write path. The defaults are sized so the per-update FD check — whose
// cost tracks rows-per-department, which dept-hash sharding leaves
// intact — stays small against the per-batch stage/snapshot work that
// sharding does split; shrinking --depts below ~emps/16 re-biases the
// measurement toward the unsplittable check and understates scaling.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_util.h"
#include "loadgen_traffic.h"
#include "net/http.h"
#include "net/server.h"
#include "net/workload.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "obs/trace_context.h"
#include "util/annotations.h"
#include "util/rng.h"

namespace relview {
namespace bench {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Job {
  int64_t scheduled_nanos = 0;  ///< Original arrival; latency base, always.
  int64_t not_before_nanos = 0;  ///< Earliest execution (Retry-After).
  int attempts = 0;              ///< 429 retries consumed so far.
  int tenant = 0;                ///< Tenant index, for per-tenant tallies.
  uint64_t trace_id = 0;         ///< Injected x-relview-trace id.
  std::string body;
};

/// Mutex-guarded top-K slowest *accepted* requests with the trace ids the
/// harness injected: the client-side handle into the server's spans and
/// wide events. Paste a listed id into a grep over the wide-event log, or
/// match it against GET /v1/trace output, to see exactly where that tail
/// request spent its time (docs/OPERATIONS.md "Debugging a slow batch").
class SlowestTracker {
 public:
  struct Entry {
    int64_t latency_nanos = 0;
    uint64_t trace_id = 0;
  };
  static constexpr size_t kKeep = 5;

  void Record(int64_t latency_nanos, uint64_t trace_id)
      RELVIEW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (entries_.size() >= kKeep &&
        latency_nanos <= entries_.back().latency_nanos) {
      return;
    }
    auto it = entries_.begin();
    while (it != entries_.end() && it->latency_nanos >= latency_nanos) ++it;
    entries_.insert(it, Entry{latency_nanos, trace_id});
    if (entries_.size() > kKeep) entries_.pop_back();
  }

  std::vector<Entry> Snapshot() const RELVIEW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return entries_;
  }

 private:
  mutable Mutex mu_;
  std::vector<Entry> entries_ RELVIEW_GUARDED_BY(mu_);
};

/// Dispatcher-to-worker queue. Unbounded by design: the backlog IS the
/// open-loop signal (it turns into latency, never into dropped offers).
/// Ordered by earliest `not_before_nanos`, so a rescheduled 429 waits out
/// its Retry-After without blocking a worker on fresher jobs.
class JobQueue {
 public:
  void Push(Job job) RELVIEW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      jobs_.emplace(job.not_before_nanos, std::move(job));
    }
    cv_.NotifyOne();
  }

  void Close() RELVIEW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  /// False = queue closed and drained.
  bool Pop(Job* out) RELVIEW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (true) {
      if (jobs_.empty()) {
        if (closed_) return false;
        cv_.Wait(mu_);
        continue;
      }
      const auto it = jobs_.begin();
      const int64_t now = NowNanos();
      if (it->first <= now) {
        *out = std::move(it->second);
        jobs_.erase(it);
        return true;
      }
      cv_.WaitFor(mu_, std::chrono::nanoseconds(it->first - now));
    }
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::multimap<int64_t, Job> jobs_ RELVIEW_GUARDED_BY(mu_);
  bool closed_ RELVIEW_GUARDED_BY(mu_) = false;
};

/// Shared tallies (relaxed atomics; summed after the run).
struct Tally {
  explicit Tally(int tenants)
      : tenant_offered(static_cast<size_t>(tenants)),
        tenant_shed(static_cast<size_t>(tenants)) {}

  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};   // 409 semantic verdicts
  std::atomic<uint64_t> shed{0};       // 429 responses (incl. retried)
  std::atomic<uint64_t> retries{0};    // 429s rescheduled per Retry-After
  std::atomic<uint64_t> shed_final{0};  // 429 after the retry budget
  std::atomic<uint64_t> unavailable{0};  // 503 (deadline/drain/durability)
  std::atomic<uint64_t> other_status{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> updates_applied{0};
  /// In-flight jobs: offered or rescheduled, not yet terminally resolved.
  std::atomic<uint64_t> pending{0};
  /// Per-tenant offered batches / terminally-shed batches.
  std::vector<std::atomic<uint64_t>> tenant_offered;
  std::vector<std::atomic<uint64_t>> tenant_shed;
  LatencyHistogram accepted_latency;
  LatencyHistogram all_latency;
  SlowestTracker slowest;
};

/// One worker's persistent connection.
class Connection {
 public:
  Connection(std::string host, int port)
      : host_(std::move(host)), port_(port) {}
  ~Connection() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool EnsureOpen() {
    if (fd_ >= 0) return true;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0) {
      Close();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  /// Sends `request` and parses one response; -1 on transport error.
  /// Closes the connection when the server asked to. `retry_after_s` (may
  /// be null) receives the parsed Retry-After header seconds, or -1.
  int Roundtrip(const std::string& request, std::string* body,
                int* retry_after_s = nullptr) {
    if (retry_after_s != nullptr) *retry_after_s = -1;
    if (!EnsureOpen()) return -1;
    size_t off = 0;
    while (off < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + off,
                               request.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      Close();
      return -1;
    }
    net::ResponseParser parser;
    char buf[16 * 1024];
    while (!parser.complete() && !parser.error()) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        parser.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      Close();
      return -1;
    }
    if (parser.error()) {
      Close();
      return -1;
    }
    *body = parser.body();
    if (retry_after_s != nullptr) {
      const std::string ra = parser.Header("retry-after");
      if (!ra.empty()) *retry_after_s = std::atoi(ra.c_str());
    }
    std::string connection = parser.Header("connection");
    for (char& c : connection) c = static_cast<char>(std::tolower(c));
    if (connection == "close") Close();
    return parser.status();
  }

 private:
  std::string host_;
  int port_;
  int fd_ = -1;
};

/// Retry budget for 429 responses (see the file comment).
struct RetryPolicy {
  int max_retries = 3;
  int64_t cap_nanos = 1'000'000'000;  // Retry-After cap
};

void WorkerLoop(const std::string& host, int port, JobQueue* queue,
                const RetryPolicy& retry, Tally* tally) {
  Connection conn(host, port);
  Job job;
  while (queue->Pop(&job)) {
    std::string body;
    int retry_after_s = -1;
    int status = conn.Roundtrip(job.body, &body, &retry_after_s);
    if (status < 0) {
      // One reconnect retry: the server may have closed an idle
      // keep-alive socket between requests.
      status = conn.Roundtrip(job.body, &body, &retry_after_s);
    }
    if (status == 429) {
      tally->shed.fetch_add(1, std::memory_order_relaxed);
      if (job.attempts < retry.max_retries) {
        // Honour Retry-After (capped): reschedule the same batch, keeping
        // its original scheduled arrival so the backoff is *charged* to
        // latency instead of dropped from the offered stream.
        const int64_t wait = std::min<int64_t>(
            retry_after_s > 0
                ? static_cast<int64_t>(retry_after_s) * 1'000'000'000
                : retry.cap_nanos,
            retry.cap_nanos);
        ++job.attempts;
        job.not_before_nanos = NowNanos() + wait;
        tally->retries.fetch_add(1, std::memory_order_relaxed);
        queue->Push(std::move(job));
        continue;  // still pending; not a terminal outcome
      }
    }
    // Terminal outcome: record latency from the ORIGINAL arrival.
    const int64_t latency = NowNanos() - job.scheduled_nanos;
    tally->all_latency.Record(latency);
    if (status < 0) {
      tally->transport_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      switch (status) {
        case 200: {
          tally->accepted.fetch_add(1, std::memory_order_relaxed);
          tally->accepted_latency.Record(latency);
          tally->slowest.Record(latency, job.trace_id);
          const size_t pos = body.find("\"applied\":");
          if (pos != std::string::npos) {
            tally->updates_applied.fetch_add(
                std::strtoull(body.c_str() + pos + 10, nullptr, 10),
                std::memory_order_relaxed);
          }
          break;
        }
        case 409:
          tally->rejected.fetch_add(1, std::memory_order_relaxed);
          break;
        case 429:
          tally->shed_final.fetch_add(1, std::memory_order_relaxed);
          tally->tenant_shed[static_cast<size_t>(job.tenant)].fetch_add(
              1, std::memory_order_relaxed);
          break;
        case 503:
          tally->unavailable.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          tally->other_status.fetch_add(1, std::memory_order_relaxed);
      }
    }
    tally->pending.fetch_sub(1, std::memory_order_release);
  }
}

/// Everything one measurement run needs; shared by the plain client mode
/// and the in-process shard sweep.
struct DriveOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  double rate = 200.0;
  double duration = 5.0;
  int connections = 8;
  TrafficOptions traffic;
  RetryPolicy retry;
};

/// Runs one open-loop measurement: spawns workers, dispatches the
/// exponential arrival stream for `duration`, then drains every offered
/// (and rescheduled) batch before returning the wall-clock seconds.
double Drive(const DriveOptions& opt, Tally* tally) {
  JobQueue queue;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(opt.connections));
  for (int i = 0; i < opt.connections; ++i) {
    workers.emplace_back([&opt, &queue, tally] {
      WorkerLoop(opt.host, opt.port, &queue, opt.retry, tally);
    });
  }

  // The dispatcher: exponential inter-arrival gaps at `rate` per second,
  // scheduled on an absolute clock so a slow Next() call never drags the
  // offered rate down (gaps accumulate from the previous *scheduled*
  // instant, not from "now").
  TrafficGen gen(opt.traffic);
  Rng arrivals(opt.traffic.seed ^ 0x9E3779B97F4A7C15ULL);
  const int64_t start = NowNanos();
  const int64_t end = start + static_cast<int64_t>(opt.duration * 1e9);
  int64_t next_arrival = start;
  while (next_arrival < end) {
    const int64_t now = NowNanos();
    if (next_arrival > now) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(next_arrival - now));
    }
    GeneratedBatch batch = gen.Next();
    Job job;
    job.scheduled_nanos = next_arrival;
    job.not_before_nanos = next_arrival;
    job.tenant = std::atoi(batch.tenant.c_str() + 1);  // "tN" -> N
    // Mint and inject a trace id per batch so any server-side span tree or
    // wide event is joinable back to this client-side latency sample. A
    // retried 429 reuses the id: the attempts share one logical request.
    job.trace_id = NewTraceId();
    job.body = net::BuildRequest(
        "POST", "/v1/batch", opt.host, batch.body,
        {"x-relview-trace: " + TraceIdHex(job.trace_id)});
    tally->pending.fetch_add(1, std::memory_order_relaxed);
    tally->tenant_offered[static_cast<size_t>(job.tenant)].fetch_add(
        1, std::memory_order_relaxed);
    queue.Push(std::move(job));
    tally->offered.fetch_add(1, std::memory_order_relaxed);
    // Exponential gap: -ln(U)/rate, capped to keep one stuck draw from
    // stalling the stream.
    const double u = static_cast<double>(arrivals.Next() >> 11) * 0x1.0p-53;
    const double gap_s = -std::log(1.0 - u) / opt.rate;
    next_arrival += static_cast<int64_t>(std::min(gap_s, 1.0) * 1e9);
  }
  // Drain: rescheduled 429s re-enter the queue from workers, so close it
  // only once every offered batch has reached a terminal outcome.
  while (tally->pending.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.Close();
  for (std::thread& t : workers) t.join();
  return static_cast<double>(NowNanos() - start) / 1e9;
}

int IntFlag(int argc, char** argv, const char* name, int def) {
  const std::string v = FlagValue(argc, argv, name);
  return v.empty() ? def : std::atoi(v.c_str());
}

double DoubleFlag(int argc, char** argv, const char* name, double def) {
  const std::string v = FlagValue(argc, argv, name);
  return v.empty() ? def : std::atof(v.c_str());
}

/// "1,2,4" -> {1, 2, 4}.
std::vector<int> ParseIntList(const std::string& s) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t comma = s.find(',', pos);
    const std::string item =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(std::atoi(item.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// JSON array of the top-K slowest accepted requests with their injected
/// trace ids ([{"latency_ms":..,"trace_id":"<16 hex>"}, ...]).
std::string SlowestJson(const Tally& tally) {
  std::string out = "[";
  bool first = true;
  for (const SlowestTracker::Entry& e : tally.slowest.Snapshot()) {
    if (!first) out += ",";
    first = false;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"latency_ms\":%.3f,\"trace_id\":\"%s\"}",
                  static_cast<double>(e.latency_nanos) / 1e6,
                  TraceIdHex(e.trace_id).c_str());
    out += buf;
  }
  out += "]";
  return out;
}

/// JSON array of per-tenant shed ratios (terminally-shed / offered).
std::string TenantShedRatiosJson(const Tally& tally) {
  std::string out = "[";
  for (size_t i = 0; i < tally.tenant_offered.size(); ++i) {
    if (i > 0) out += ",";
    const uint64_t offered = tally.tenant_offered[i].load();
    const uint64_t shed = tally.tenant_shed[i].load();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f",
                  offered == 0
                      ? 0.0
                      : static_cast<double>(shed) /
                            static_cast<double>(offered));
    out += buf;
  }
  out += "]";
  return out;
}

int Run(int argc, char** argv) {
  const std::string host_flag = FlagValue(argc, argv, "host");
  const std::string host = host_flag.empty() ? "127.0.0.1" : host_flag;
  const int port = std::atoi(FlagValue(argc, argv, "port").c_str());
  if (port <= 0) {
    std::fprintf(stderr, "loadgen: --port=NNNN is required\n");
    return 2;
  }
  DriveOptions opt;
  opt.host = host;
  opt.port = port;
  opt.rate = DoubleFlag(argc, argv, "rate", 200.0);
  opt.duration = DoubleFlag(argc, argv, "duration", 5.0);
  opt.connections = IntFlag(argc, argv, "connections", 8);
  opt.traffic.tenants = IntFlag(argc, argv, "tenants", 4);
  opt.traffic.emps = static_cast<uint32_t>(IntFlag(argc, argv, "emps", 64));
  opt.traffic.depts = static_cast<uint32_t>(IntFlag(argc, argv, "depts", 8));
  opt.traffic.batch_size = IntFlag(argc, argv, "batch", 4);
  opt.traffic.zipf_theta = DoubleFlag(argc, argv, "theta", 0.99);
  opt.traffic.seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 42));
  opt.retry.max_retries = IntFlag(argc, argv, "max-retries", 3);
  opt.retry.cap_nanos =
      static_cast<int64_t>(IntFlag(argc, argv, "retry-cap-ms", 1000)) *
      1'000'000;
  const std::string json_path = FlagValue(argc, argv, "json");
  const bool gate = HasFlag(argc, argv, "gate");
  const double p99_limit_ms = DoubleFlag(argc, argv, "p99-limit-ms", 500.0);

  Tally tally(opt.traffic.tenants);
  const double wall_s = Drive(opt, &tally);

  const double rate = opt.rate;
  const int connections = opt.connections;
  const TrafficOptions& traffic = opt.traffic;
  const uint64_t offered = tally.offered.load();
  const uint64_t accepted = tally.accepted.load();
  const double offered_rate = static_cast<double>(offered) / wall_s;
  const double accepted_rate = static_cast<double>(accepted) / wall_s;
  const double p50_ms =
      static_cast<double>(tally.accepted_latency.QuantileNanos(0.50)) / 1e6;
  const double p99_ms =
      static_cast<double>(tally.accepted_latency.QuantileNanos(0.99)) / 1e6;
  const double p999_ms =
      static_cast<double>(tally.accepted_latency.QuantileNanos(0.999)) / 1e6;

  std::printf("loadgen: %.1fs against %s:%d, %d connections\n", wall_s,
              host.c_str(), port, connections);
  std::printf("  offered   %8llu batches (%.1f/s target %.1f/s)\n",
              static_cast<unsigned long long>(offered), offered_rate, rate);
  std::printf("  accepted  %8llu (%.1f/s), %llu updates applied\n",
              static_cast<unsigned long long>(accepted), accepted_rate,
              static_cast<unsigned long long>(tally.updates_applied.load()));
  std::printf("  rejected  %8llu (409)  shed %llu (429, %llu retried, %llu "
              "final)  unavailable %llu (503)  other %llu  transport %llu\n",
              static_cast<unsigned long long>(tally.rejected.load()),
              static_cast<unsigned long long>(tally.shed.load()),
              static_cast<unsigned long long>(tally.retries.load()),
              static_cast<unsigned long long>(tally.shed_final.load()),
              static_cast<unsigned long long>(tally.unavailable.load()),
              static_cast<unsigned long long>(tally.other_status.load()),
              static_cast<unsigned long long>(tally.transport_errors.load()));
  std::printf("  accepted latency p50 %.2fms  p99 %.2fms  p99.9 %.2fms "
              "(open-loop: includes queue wait)\n",
              p50_ms, p99_ms, p999_ms);
  const std::vector<SlowestTracker::Entry> slowest = tally.slowest.Snapshot();
  if (!slowest.empty()) {
    std::printf("  slowest accepted (x-relview-trace ids; join against "
                "GET /v1/trace or the wide-event log):\n");
    for (const SlowestTracker::Entry& e : slowest) {
      std::printf("    %10.2fms  trace %s\n",
                  static_cast<double>(e.latency_nanos) / 1e6,
                  TraceIdHex(e.trace_id).c_str());
    }
  }

  JsonWriter json;
  json.Add("host", host)
      .Add("port", port)
      .Add("rate_target", rate)
      .Add("duration_s", wall_s)
      .Add("connections", connections)
      .Add("tenants", traffic.tenants)
      .Add("batch_size", traffic.batch_size)
      .Add("zipf_theta", traffic.zipf_theta)
      .Add("offered", offered)
      .Add("offered_per_sec", offered_rate)
      .Add("accepted", accepted)
      .Add("accepted_per_sec", accepted_rate)
      .Add("updates_applied", tally.updates_applied.load())
      .Add("rejected_409", tally.rejected.load())
      .Add("shed_429", tally.shed.load())
      .Add("retries", tally.retries.load())
      .Add("shed_final", tally.shed_final.load())
      .Add("unavailable_503", tally.unavailable.load())
      .Add("other_status", tally.other_status.load())
      .Add("transport_errors", tally.transport_errors.load())
      .Add("accepted_p50_ms", p50_ms)
      .Add("accepted_p99_ms", p99_ms)
      .Add("accepted_p999_ms", p999_ms);
  json.Raw("tenant_shed_ratio", TenantShedRatiosJson(tally));
  json.Raw("slowest", SlowestJson(tally));
  json.Raw("accepted_latency", tally.accepted_latency.ToJson());
  json.Raw("all_latency", tally.all_latency.ToJson());

  bool pass = true;
  if (gate) {
    if (accepted == 0) {
      std::fprintf(stderr, "loadgen: GATE FAIL: no batch was accepted\n");
      pass = false;
    }
    if (p99_ms > p99_limit_ms) {
      std::fprintf(stderr,
                   "loadgen: GATE FAIL: accepted p99 %.2fms > limit %.2fms\n",
                   p99_ms, p99_limit_ms);
      pass = false;
    }
  }
  json.Add("pass", pass);
  if (!json_path.empty()) {
    Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "loadgen: json: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}

/// One measured point of the shard sweep.
struct SweepPoint {
  int shards = 0;
  double accepted_per_sec = 0;
  uint64_t accepted = 0;
  uint64_t fsyncs = 0;
  uint64_t batches_committed = 0;  // per-shard sub-batches
  double fsyncs_per_batch = 0;
  double p99_ms = 0;
};

/// Shard-sweep mode: boots one in-process single-tenant server per shard
/// count (production defaults per count: fsync-per-batch at 1 shard,
/// group commit above; DurableStore under --sweep-store), drives the
/// identical saturating open-loop stream at each point, and gates the
/// throughput scaling plus the fsyncs-per-committed-batch amortization.
int RunShardSweep(int argc, char** argv) {
  const std::vector<int> sweep =
      ParseIntList(FlagValue(argc, argv, "sweep-shards"));
  if (sweep.empty()) {
    std::fprintf(stderr, "loadgen: bad --sweep-shards list\n");
    return 2;
  }
  std::string store_base = FlagValue(argc, argv, "sweep-store");
  if (store_base.empty()) {
    store_base = "/tmp/relview_shard_sweep." +
                 std::to_string(static_cast<long>(::getpid()));
  }

  DriveOptions opt;
  opt.rate = DoubleFlag(argc, argv, "rate", 200.0);
  opt.duration = DoubleFlag(argc, argv, "duration", 2.0);
  opt.connections = IntFlag(argc, argv, "connections", 32);
  opt.traffic.tenants = 1;  // one tenant: the sweep isolates shard scaling
  opt.traffic.emps =
      static_cast<uint32_t>(IntFlag(argc, argv, "emps", 16384));
  opt.traffic.depts =
      static_cast<uint32_t>(IntFlag(argc, argv, "depts", 1024));
  opt.traffic.batch_size = IntFlag(argc, argv, "batch", 8);
  // Uniform departments: the router spreads the join key evenly, so the
  // sweep measures shard parallelism, not hot-key skew.
  opt.traffic.zipf_theta = DoubleFlag(argc, argv, "theta", 0.0);
  // Department-clustered fresh inserts: every batch is translatable on
  // sharded and unsharded services alike, so all points accept identical
  // work and the ratio isolates the write path. (The default mix would
  // skew it: a conflict insert rejects the whole batch on 1 shard but —
  // by the documented X∩Y FD relaxation — can be accepted across shards,
  // and random replaces go stale asymmetrically.) Clustering each batch
  // on one department also keeps it on one shard — the partitioning's
  // best case, and the layout a join-key router exists to serve.
  opt.traffic.shard_local_inserts = true;
  opt.traffic.seed = static_cast<uint64_t>(IntFlag(argc, argv, "seed", 42));
  opt.retry.max_retries = IntFlag(argc, argv, "max-retries", 3);
  opt.retry.cap_nanos =
      static_cast<int64_t>(IntFlag(argc, argv, "retry-cap-ms", 1000)) *
      1'000'000;
  const uint32_t group_window_us =
      static_cast<uint32_t>(IntFlag(argc, argv, "group-window-us", 100000));
  const std::string json_path = FlagValue(argc, argv, "json");
  const bool gate = HasFlag(argc, argv, "gate");
  const double min_scaling = DoubleFlag(argc, argv, "min-scaling", 2.5);
  const double max_fsyncs_per_batch =
      DoubleFlag(argc, argv, "max-fsyncs-per-batch", 0.5);

  std::vector<SweepPoint> points;
  for (const int shards : sweep) {
    net::TenantSpec spec;
    spec.tenants = 1;
    spec.emps = opt.traffic.emps;
    spec.depts = opt.traffic.depts;
    spec.store_root = store_base + "/s" + std::to_string(shards);
    spec.shards = shards;
    // Each point runs the production default for its shard count (the
    // same rule relview_serve applies): the 1-shard baseline is the
    // status-quo fsync-per-batch write path, multi-shard points get the
    // cross-batch group commit that ships with sharding. The sweep
    // therefore measures the feature's before/after, not group commit
    // in isolation.
    spec.group_commit = shards > 1;
    spec.group_window_us = shards > 1 ? group_window_us : 0;
    auto tenants = net::MakeTenants(spec);
    if (!tenants.ok()) {
      std::fprintf(stderr, "loadgen: sweep tenants: %s\n",
                   tenants.status().ToString().c_str());
      return 2;
    }
    net::ServerOptions server_options;
    server_options.port = 0;
    // The sweep saturates on purpose; admission shedding would just put
    // retry noise in the way of the capacity measurement.
    server_options.max_write_queue = opt.connections;
    server_options.max_connections = opt.connections + 8;
    auto server =
        net::HttpServer::Start(&*tenants, nullptr, server_options);
    if (!server.ok()) {
      std::fprintf(stderr, "loadgen: sweep server: %s\n",
                   server.status().ToString().c_str());
      return 2;
    }
    opt.port = (*server)->port();

    Tally tally(1);
    const double wall_s = Drive(opt, &tally);
    (*server)->Stop();

    SweepPoint p;
    p.shards = shards;
    p.accepted = tally.accepted.load();
    p.accepted_per_sec = static_cast<double>(p.accepted) / wall_s;
    const ShardedService& svc = *tenants->services[0];
    for (int i = 0; i < svc.shard_count(); ++i) {
      const DurableStore* store = svc.shard(i)->store();
      if (store != nullptr) p.fsyncs += store->fsyncs();
      p.batches_committed += svc.shard(i)->metrics().batches_committed();
    }
    p.fsyncs_per_batch =
        p.batches_committed == 0
            ? 0.0
            : static_cast<double>(p.fsyncs) /
                  static_cast<double>(p.batches_committed);
    p.p99_ms =
        static_cast<double>(tally.accepted_latency.QuantileNanos(0.99)) /
        1e6;
    points.push_back(p);
    std::printf(
        "sweep: %d shard%s  accepted %.1f/s (%llu batches)  fsyncs %llu / "
        "%llu sub-batches = %.3f per batch  p99 %.2fms\n",
        shards, shards == 1 ? " " : "s", p.accepted_per_sec,
        static_cast<unsigned long long>(p.accepted),
        static_cast<unsigned long long>(p.fsyncs),
        static_cast<unsigned long long>(p.batches_committed),
        p.fsyncs_per_batch, p.p99_ms);
  }

  const double scaling =
      points.front().accepted_per_sec > 0
          ? points.back().accepted_per_sec / points.front().accepted_per_sec
          : 0.0;
  std::printf("sweep: throughput scaling %d -> %d shards: %.2fx\n",
              points.front().shards, points.back().shards, scaling);

  bool pass = true;
  if (gate) {
    if (points.size() >= 2 && scaling < min_scaling) {
      std::fprintf(stderr,
                   "loadgen: GATE FAIL: scaling %.2fx < required %.2fx\n",
                   scaling, min_scaling);
      pass = false;
    }
    const SweepPoint& last = points.back();
    if (opt.connections >= 8 && last.shards > 1 &&
        last.fsyncs_per_batch >= max_fsyncs_per_batch) {
      std::fprintf(stderr,
                   "loadgen: GATE FAIL: %.3f fsyncs/batch >= limit %.3f on "
                   "the %d-shard point\n",
                   last.fsyncs_per_batch, max_fsyncs_per_batch, last.shards);
      pass = false;
    }
    if (last.accepted == 0) {
      std::fprintf(stderr, "loadgen: GATE FAIL: nothing accepted\n");
      pass = false;
    }
  }

  if (!json_path.empty()) {
    std::string pts = "[";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      if (i > 0) pts += ",";
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"shards\":%d,\"accepted\":%llu,"
                    "\"accepted_per_sec\":%.2f,\"fsyncs\":%llu,"
                    "\"batches_committed\":%llu,\"fsyncs_per_batch\":%.4f,"
                    "\"p99_ms\":%.3f}",
                    p.shards, static_cast<unsigned long long>(p.accepted),
                    p.accepted_per_sec,
                    static_cast<unsigned long long>(p.fsyncs),
                    static_cast<unsigned long long>(p.batches_committed),
                    p.fsyncs_per_batch, p.p99_ms);
      pts += buf;
    }
    pts += "]";
    JsonWriter json;
    json.Add("rate_target", opt.rate)
        .Add("duration_s", opt.duration)
        .Add("connections", opt.connections)
        .Add("emps", static_cast<uint64_t>(opt.traffic.emps))
        .Add("depts", static_cast<uint64_t>(opt.traffic.depts))
        .Add("batch_size", opt.traffic.batch_size)
        .Add("group_window_us", static_cast<uint64_t>(group_window_us))
        .Add("scaling", scaling)
        .Add("min_scaling", min_scaling)
        .Add("max_fsyncs_per_batch", max_fsyncs_per_batch);
    json.Raw("points", pts);
    json.Add("pass", pass);
    Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "loadgen: json: %s\n", st.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace relview

int main(int argc, char** argv) {
  if (!relview::bench::FlagValue(argc, argv, "sweep-shards").empty()) {
    return relview::bench::RunShardSweep(argc, argv);
  }
  return relview::bench::Run(argc, argv);
}
