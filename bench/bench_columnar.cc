// bench_columnar: the columnar, dictionary-encoded store vs the row-hash
// reference layout on the Theorem 3 translatability check.
//
// Experiment 1 — the condition-(c) probe kernel (GATED). A stream of
// non-mutating CanInsert checks over the probe-heavy workload (C -> B has
// an empty lhs∩X, so every view row outside the candidate's B-group is a
// probe, and every such probe carries a non-trivial hypothesis rename).
// The pair screen is OFF for both stores so the probe kernel itself is
// what's measured. The row path re-materializes the base fixpoint and
// re-chases it per probe (Relation copy + full ChaseInstance); the
// columnar path freezes the fixpoint into a CodeProbeIndex once per base
// version and delta-chases only the rows whose value resolutions each
// hypothesis actually changes. Gate: >= 5x columnar speedup at the full
// size (10k-row view), with verdict parity between the two engines.
//
// Experiment 2 — mixed mutating stream (informational). The chain
// workload's insert / rejected-insert / delete rounds on both stores;
// mutations invalidate the probe index, so this bounds the layout's win
// on a write-heavy stream rather than showcasing it.
//
// Both experiments report bytes/row for the two InstanceStore layouts
// built from the same view (dictionary pages + u32 code vectors vs
// row-major tuples + hash index).
//
// Usage: bench_columnar [--smoke] [--json=PATH]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "relational/store.h"
#include "view/translator.h"

namespace relview {
namespace {

ViewTranslator MakeTranslator(const Universe& universe, const FDSet& fds,
                              const AttrSet& x, const AttrSet& y,
                              const Relation& database,
                              TranslatorOptions options) {
  DependencySet sigma;
  sigma.fds = fds;
  auto vt = ViewTranslator::Create(universe, sigma, x, y, options);
  if (!vt.ok()) {
    std::fprintf(stderr, "translator: %s\n", vt.status().ToString().c_str());
    std::exit(1);
  }
  Status st = vt->Bind(database);
  if (!st.ok()) {
    std::fprintf(stderr, "bind: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return std::move(*vt);
}

struct StreamResult {
  double seconds = 0;
  double checks_per_sec = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
};

/// `checks` CanInsert calls with fresh A-values into existing B-groups:
/// condition (a) passes, condition (c) fans |V|-ish chasing probes, and
/// nothing mutates, so the base fixpoint version is stable across the
/// whole stream (the columnar engine builds its probe index once).
StreamResult RunProbeChecks(const ViewTranslator& vt,
                            const bench::ProbeHeavyWorkload& w, int checks) {
  const Schema vs(w.x);
  StreamResult r;
  Timer timer;
  for (int i = 0; i < checks; ++i) {
    Tuple fresh = w.view.row(static_cast<size_t>(i) % w.view.size());
    fresh.Set(vs, 0,
              Value::Const(0x00F00000u + static_cast<uint32_t>(i & 0xFFFF)));
    auto rep = vt.CanInsert(fresh);
    if (!rep.ok()) {
      std::fprintf(stderr, "check: %s\n", rep.status().ToString().c_str());
      std::exit(1);
    }
    if (rep->translatable()) {
      ++r.accepted;
    } else {
      ++r.rejected;
    }
  }
  r.seconds = timer.ElapsedSeconds();
  r.checks_per_sec = r.seconds > 0 ? checks / r.seconds : 0;
  return r;
}

/// Mutating rounds on the chain workload: insert a fresh tuple, attempt
/// the canonical condition-(c) rejection, delete the fresh tuple. State
/// returns to the seed each round.
StreamResult RunChainRounds(ViewTranslator* vt, const bench::ChainWorkload& w,
                            int rounds) {
  const Schema vs(w.x);
  StreamResult r;
  Timer timer;
  for (int i = 0; i < rounds; ++i) {
    Tuple fresh = w.view.row(0);
    fresh.Set(vs, 0,
              Value::Const(0x00F00000u + static_cast<uint32_t>(i & 0xFFFF)));
    auto ins = vt->InsertWithReport(fresh);
    if (!ins.ok()) {
      std::fprintf(stderr, "insert: %s\n", ins.status().ToString().c_str());
      std::exit(1);
    }
    if (ins->translatable()) ++r.accepted; else ++r.rejected;
    auto bad = vt->InsertWithReport(w.insert_bad);
    if (!bad.ok()) {
      std::fprintf(stderr, "reject: %s\n", bad.status().ToString().c_str());
      std::exit(1);
    }
    if (bad->translatable()) ++r.accepted; else ++r.rejected;
    auto del = vt->DeleteWithReport(fresh);
    if (!del.ok()) {
      std::fprintf(stderr, "delete: %s\n", del.status().ToString().c_str());
      std::exit(1);
    }
    if (del->translatable()) ++r.accepted; else ++r.rejected;
  }
  r.seconds = timer.ElapsedSeconds();
  r.checks_per_sec = r.seconds > 0 ? 3.0 * rounds / r.seconds : 0;
  return r;
}

bool VerdictsMatch(const StreamResult& a, const StreamResult& b,
                   const char* what) {
  if (a.accepted == b.accepted && a.rejected == b.rejected) return true;
  std::fprintf(stderr,
               "FAIL: %s verdict mismatch (row %llu/%llu, columnar "
               "%llu/%llu accepted/rejected)\n",
               what, static_cast<unsigned long long>(a.accepted),
               static_cast<unsigned long long>(a.rejected),
               static_cast<unsigned long long>(b.accepted),
               static_cast<unsigned long long>(b.rejected));
  return false;
}

}  // namespace
}  // namespace relview

int main(int argc, char** argv) {
  using namespace relview;
  const bool smoke = bench::HasFlag(argc, argv, "smoke");
  const std::string json_path = bench::FlagValue(argc, argv, "json");
  const unsigned cores = std::thread::hardware_concurrency();

  // Full mode is the acceptance configuration from the issue: the probe
  // kernel over a 10k-row view. Smoke keeps CI wall time in seconds.
  const int probe_rows = smoke ? 256 : 10000;
  const int probe_groups = smoke ? 16 : 64;
  const int probe_checks = 2;
  const int chain_rows = smoke ? 512 : 10000;
  const int chain_rounds = smoke ? 5 : 40;

  std::printf("bench_columnar%s: %u cores\n\n", smoke ? " (smoke)" : "",
              cores);
  bench::JsonWriter json;
  json.Add("smoke", smoke).Add("cores", static_cast<int>(cores));

  // --- 1. Condition-(c) probe kernel (gated) ---------------------------
  bench::ProbeHeavyWorkload probe =
      bench::MakeProbeHeavyWorkload(probe_rows, probe_groups);
  const int probes_per_check = probe_rows - probe_rows / probe_groups;
  std::printf(
      "experiment 1: probe kernel, |view| = %d rows, %d checks, ~%d "
      "chasing probes per check, screen off\n",
      probe_rows, probe_checks, probes_per_check);
  std::printf("%-26s %12s %14s %10s\n", "store", "seconds", "checks/s",
              "speedup");

  TranslatorOptions row_opts;
  row_opts.pair_screen = false;
  ViewTranslator row_vt = MakeTranslator(probe.universe, probe.fds, probe.x,
                                         probe.y, probe.database, row_opts);
  const StreamResult row_r = RunProbeChecks(row_vt, probe, probe_checks);
  std::printf("%-26s %12.3f %14.2f %9.2fx\n", "row-hash", row_r.seconds,
              row_r.checks_per_sec, 1.0);

  TranslatorOptions col_opts;
  col_opts.pair_screen = false;
  col_opts.store = StoreKind::kColumnar;
  ViewTranslator col_vt = MakeTranslator(probe.universe, probe.fds, probe.x,
                                         probe.y, probe.database, col_opts);
  const StreamResult col_r = RunProbeChecks(col_vt, probe, probe_checks);
  const double speedup =
      col_r.seconds > 0 ? row_r.seconds / col_r.seconds : 0;
  std::printf("%-26s %12.3f %14.2f %9.2fx\n", "columnar", col_r.seconds,
              col_r.checks_per_sec, speedup);

  bool pass = VerdictsMatch(row_r, col_r, "probe kernel");

  const EngineStats es = col_vt.engine_stats();
  std::printf(
      "columnar engine: %llu probe-index builds, %llu reuses, %llu/%llu "
      "probes screened\n",
      static_cast<unsigned long long>(es.probe_index_builds),
      static_cast<unsigned long long>(es.probe_index_reuses),
      static_cast<unsigned long long>(es.probes_screened),
      static_cast<unsigned long long>(es.probes_run));

  json.Add("probe_rows", probe_rows)
      .Add("probe_checks", probe_checks)
      .Add("probes_per_check", probes_per_check)
      .Add("row_seconds", row_r.seconds)
      .Add("row_checks_per_sec", row_r.checks_per_sec)
      .Add("columnar_seconds", col_r.seconds)
      .Add("columnar_checks_per_sec", col_r.checks_per_sec)
      .Add("columnar_speedup", speedup)
      .Add("probe_index_builds", es.probe_index_builds)
      .Add("probe_index_reuses", es.probe_index_reuses);

  // --- 2. Mixed mutating stream (informational) ------------------------
  bench::ChainWorkload chain =
      bench::MakeChainWorkload(/*width=*/4, chain_rows, /*fanin=*/4,
                               /*seed=*/1);
  std::printf(
      "\nexperiment 2: mixed mutating stream, |view| = %d rows, %d "
      "updates (informational)\n",
      chain_rows, 3 * chain_rounds);
  std::printf("%-26s %12s %14s %10s\n", "store", "seconds", "updates/s",
              "ratio");

  TranslatorOptions chain_row_opts;  // incremental defaults, screen on
  ViewTranslator chain_row = MakeTranslator(chain.universe, chain.fds,
                                            chain.x, chain.y, chain.database,
                                            chain_row_opts);
  const StreamResult mrow = RunChainRounds(&chain_row, chain, chain_rounds);
  std::printf("%-26s %12.3f %14.0f %9.2fx\n", "row-hash", mrow.seconds,
              mrow.checks_per_sec, 1.0);

  TranslatorOptions chain_col_opts;
  chain_col_opts.store = StoreKind::kColumnar;
  ViewTranslator chain_col = MakeTranslator(chain.universe, chain.fds,
                                            chain.x, chain.y, chain.database,
                                            chain_col_opts);
  const StreamResult mcol = RunChainRounds(&chain_col, chain, chain_rounds);
  const double mixed_ratio =
      mcol.seconds > 0 ? mrow.seconds / mcol.seconds : 0;
  std::printf("%-26s %12.3f %14.0f %9.2fx\n", "columnar", mcol.seconds,
              mcol.checks_per_sec, mixed_ratio);
  pass = VerdictsMatch(mrow, mcol, "mixed stream") && pass;

  json.Add("mixed_rows", chain_rows)
      .Add("mixed_updates", 3 * chain_rounds)
      .Add("mixed_row_seconds", mrow.seconds)
      .Add("mixed_columnar_seconds", mcol.seconds)
      .Add("mixed_columnar_ratio", mixed_ratio);

  // --- 3. Memory per row -----------------------------------------------
  // Both layouts built from the identical view relation; the columnar
  // number includes dictionary pages, code vectors, and the per-code
  // first-occurrence index.
  const auto row_store = MakeInstanceStore(StoreKind::kRowHash, probe.view);
  const auto col_store = MakeInstanceStore(StoreKind::kColumnar, probe.view);
  const double rows_d = probe.view.size() > 0
                            ? static_cast<double>(probe.view.size())
                            : 1.0;
  const double row_bpr = static_cast<double>(row_store->MemoryBytes()) / rows_d;
  const double col_bpr = static_cast<double>(col_store->MemoryBytes()) / rows_d;
  std::printf(
      "\nmemory, %d-row %d-attr view: row-hash %.1f B/row, columnar %.1f "
      "B/row (%.2fx)\n",
      probe_rows, probe.view.schema().arity(), row_bpr, col_bpr,
      col_bpr > 0 ? row_bpr / col_bpr : 0);
  json.Add("row_bytes_per_row", row_bpr)
      .Add("columnar_bytes_per_row", col_bpr);

  // Dictionary footprint tracks per-attribute cardinality, not just
  // width, so report both shapes: the probe view (one 64-group column)
  // and the chain view (every column near-unique — the layout's worst
  // case, since dictionaries then duplicate the data).
  const auto row_store3 = MakeInstanceStore(StoreKind::kRowHash, chain.view);
  const auto col_store3 = MakeInstanceStore(StoreKind::kColumnar, chain.view);
  const double rows3_d = chain.view.size() > 0
                             ? static_cast<double>(chain.view.size())
                             : 1.0;
  const double row3_bpr =
      static_cast<double>(row_store3->MemoryBytes()) / rows3_d;
  const double col3_bpr =
      static_cast<double>(col_store3->MemoryBytes()) / rows3_d;
  std::printf(
      "memory, %d-row %d-attr view: row-hash %.1f B/row, columnar %.1f "
      "B/row (%.2fx)\n",
      chain_rows, chain.view.schema().arity(), row3_bpr, col3_bpr,
      col3_bpr > 0 ? row3_bpr / col3_bpr : 0);
  json.Add("row_bytes_per_row_3attr", row3_bpr)
      .Add("columnar_bytes_per_row_3attr", col3_bpr);

  // --- Gates -----------------------------------------------------------
  // Smoke mode checks plumbing, not performance: at tiny sizes the fixed
  // per-check work (conditions (a)/(b), index maintenance) dominates the
  // probe kernel the gate is about.
  std::printf("\ncolumnar speedup on the probe kernel: %.2fx (required: >= "
              "5x at full size)\n", speedup);
  if (!smoke && speedup < 5.0) pass = false;
  json.Add("pass", pass);
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    Status st = json.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "json: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}
