#include "loadgen_traffic.h"

#include <cmath>

namespace relview {
namespace bench {

double ZipfSampler::Pow(double x, double t) { return std::pow(x, t); }

TrafficGen::TrafficGen(const TrafficOptions& options)
    : options_(options),
      rng_(options.seed),
      dept_sampler_(static_cast<int>(options.depts), options.zipf_theta),
      next_fresh_(static_cast<size_t>(options.tenants)),
      next_dept_(static_cast<size_t>(options.tenants), 0) {
  // Fresh employee ids start past the seeded range, per tenant. They keep
  // the round-robin department convention so DeptOfEmp stays the right
  // department for them too.
  for (auto& n : next_fresh_) n = options_.emps + 1;
}

uint32_t TrafficGen::EmpOfDept(int dept_index, uint32_t k) const {
  // Employees are dealt round-robin: e % depts == dept_index selects the
  // seeded members of that department. The smallest positive such e:
  const uint32_t base =
      dept_index == 0 ? options_.depts : static_cast<uint32_t>(dept_index);
  return base + k * options_.depts;
}

GeneratedBatch TrafficGen::Next() {
  GeneratedBatch out;
  const int tenant = next_tenant_;
  next_tenant_ = (next_tenant_ + 1) % options_.tenants;
  out.tenant = "t" + std::to_string(tenant);

  const int total_weight = options_.weight_insert + options_.weight_delete +
                           options_.weight_replace + options_.weight_conflict;
  std::string updates;
  if (options_.shard_local_inserts) {
    // One department per batch, rotating: fresh FD-consistent inserts are
    // translatable everywhere, and sharing the join key keeps the batch
    // on one shard (see TrafficOptions::shard_local_inserts).
    uint32_t& next = next_dept_[static_cast<size_t>(tenant)];
    const uint32_t d = next % options_.depts;  // this batch's department
    ++next;
    const uint32_t dept = net::kDeptBase + d;
    for (int i = 0; i < options_.batch_size; ++i) {
      uint32_t e = next_fresh_[static_cast<size_t>(tenant)]++;
      while (e % options_.depts != d) {
        e = next_fresh_[static_cast<size_t>(tenant)]++;
      }
      if (!updates.empty()) updates += ",";
      updates += "{\"op\":\"insert\",\"row\":[" + std::to_string(e) + "," +
                 std::to_string(dept) + "]}";
      ++out.updates;
    }
    out.body = "{\"tenant\":\"" + out.tenant + "\",\"updates\":[" + updates +
               "]}";
    ++generated_;
    return out;
  }
  for (int i = 0; i < options_.batch_size; ++i) {
    const int dept_index = dept_sampler_.Sample(rng_);
    const uint32_t dept =
        net::kDeptBase + static_cast<uint32_t>(dept_index) % options_.depts;
    const int roll =
        static_cast<int>(rng_.Below(static_cast<uint64_t>(total_weight)));
    std::string u;
    if (roll < options_.weight_insert) {
      // Fresh employee into the hot department: choose the next fresh id
      // congruent to dept_index so DeptOfEmp(e) == dept.
      uint32_t e = next_fresh_[static_cast<size_t>(tenant)]++;
      while (e % options_.depts != static_cast<uint32_t>(dept_index)) {
        e = next_fresh_[static_cast<size_t>(tenant)]++;
      }
      u = "{\"op\":\"insert\",\"row\":[" + std::to_string(e) + "," +
          std::to_string(dept) + "]}";
    } else if (roll < options_.weight_insert + options_.weight_delete) {
      // A seeded employee of the department (may already be deleted —
      // that rejection is part of the mix).
      const uint32_t members =
          options_.emps / options_.depts;  // >= 1 (depts <= emps)
      const uint32_t e = EmpOfDept(
          dept_index, static_cast<uint32_t>(rng_.Below(members)));
      u = "{\"op\":\"delete\",\"row\":[" + std::to_string(e) + "," +
          std::to_string(dept) + "]}";
    } else if (roll < options_.weight_insert + options_.weight_delete +
                          options_.weight_replace) {
      // Move an employee to the neighbouring department.
      const uint32_t members = options_.emps / options_.depts;
      const uint32_t e = EmpOfDept(
          dept_index, static_cast<uint32_t>(rng_.Below(members)));
      const uint32_t to_dept =
          net::kDeptBase +
          (static_cast<uint32_t>(dept_index) + 1) % options_.depts;
      u = "{\"op\":\"replace\",\"from\":[" + std::to_string(e) + "," +
          std::to_string(dept) + "],\"to\":[" + std::to_string(e) + "," +
          std::to_string(to_dept) + "]}";
    } else {
      // FD conflict: a seeded employee claimed by the wrong department —
      // Emp -> Dept makes this untranslatable, always.
      const uint32_t members = options_.emps / options_.depts;
      const uint32_t e = EmpOfDept(
          dept_index, static_cast<uint32_t>(rng_.Below(members)));
      const uint32_t wrong_dept =
          net::kDeptBase +
          (static_cast<uint32_t>(dept_index) + 1) % options_.depts;
      u = "{\"op\":\"insert\",\"row\":[" + std::to_string(e) + "," +
          std::to_string(wrong_dept) + "]}";
    }
    if (!updates.empty()) updates += ",";
    updates += u;
    ++out.updates;
  }
  out.body = "{\"tenant\":\"" + out.tenant + "\",\"updates\":[" + updates +
             "]}";
  ++generated_;
  return out;
}

}  // namespace bench
}  // namespace relview
