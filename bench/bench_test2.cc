// E6 — Test 2: the O(|Sigma|^2 |U|) schema-level good-complement check
// (amortized once per complement declaration) and the per-insertion fast
// path (one chase of the null-filled view plus an O(|V| |Sigma|) scan),
// compared with the exact test on the same insertions.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "view/insertion.h"
#include "view/test2.h"

namespace relview {
namespace {

void BM_GoodComplementCheck(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int nfds = static_cast<int>(state.range(1));
  FDSet fds = bench::MakeRandomFds(width, nfds, 5);
  const AttrSet universe = AttrSet::FirstN(width);
  AttrSet x = AttrSet::FirstN(width - 1);
  AttrSet y = universe - AttrSet::FirstN(width / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckGoodComplement(universe, fds, x, y));
  }
  state.SetLabel("U=" + std::to_string(width) +
                 " |Sigma|=" + std::to_string(nfds));
}
BENCHMARK(BM_GoodComplementCheck)
    ->Args({8, 8})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({64, 64})
    ->Args({64, 256});

void BM_Test2_PerInsert(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 321);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunTest2(w.universe.All(), w.fds, w.x, w.y, w.view, w.insert_ok));
  }
  state.counters["view_rows"] = w.view.size();
  state.SetLabel("one chase + linear scan");
}
BENCHMARK(BM_Test2_PerInsert)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_ExactForComparison(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 321);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckInsertion(w.universe.All(), w.fds, w.x,
                                            w.y, w.view, w.insert_ok));
  }
  state.counters["view_rows"] = w.view.size();
  state.SetLabel("exact test on the same insertions");
}
BENCHMARK(BM_ExactForComparison)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
