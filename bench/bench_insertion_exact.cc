// E4 — Theorem 3's Corollary: the exact translatability test. Sweeps |V|
// with the paper's literal sort-based chase (bounded O(|V|^3 log |V|) from
// scratch), the same algorithm with the hash-chase backend, and the
// paper's "shortcut" (one base chase reused across (r, f) pairs). The
// shapes to observe: from-scratch sort-chase grows superquadratically in
// |V|; the shortcut turns accepted insertions into near-linear work.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "view/insertion.h"

namespace relview {
namespace {

constexpr int kWidth = 4;   // |U|: E -> D -> M -> ... chain
constexpr int kDomainDiv = 8;

void RunInsertBench(benchmark::State& state, ChaseBackend backend,
                    bool reuse, bool translatable_case) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(kWidth, rows, /*fanin=*/8, 99);
  InsertionOptions opts;
  opts.backend = backend;
  opts.reuse_base_chase = reuse;
  const Tuple& t = translatable_case ? w.insert_ok : w.insert_bad;
  int64_t chases = 0;
  for (auto _ : state) {
    auto rep = CheckInsertion(w.universe.All(), w.fds, w.x, w.y, w.view, t,
                              opts);
    benchmark::DoNotOptimize(rep);
    if (rep.ok()) chases = rep->chases_run;
  }
  state.counters["view_rows"] = w.view.size();
  state.counters["chases"] = static_cast<double>(chases);
}

void BM_ExactInsert_SortScratch(benchmark::State& state) {
  RunInsertBench(state, ChaseBackend::kSort, /*reuse=*/false,
                 /*translatable_case=*/true);
  state.SetLabel("paper's sort chase, from scratch per (r,f)");
}
BENCHMARK(BM_ExactInsert_SortScratch)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Unit(benchmark::kMillisecond);

void BM_ExactInsert_HashScratch(benchmark::State& state) {
  RunInsertBench(state, ChaseBackend::kHash, /*reuse=*/false,
                 /*translatable_case=*/true);
  state.SetLabel("hash chase, from scratch per (r,f)");
}
BENCHMARK(BM_ExactInsert_HashScratch)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Unit(benchmark::kMillisecond);

void BM_ExactInsert_Shortcut(benchmark::State& state) {
  RunInsertBench(state, ChaseBackend::kHash, /*reuse=*/true,
                 /*translatable_case=*/true);
  state.SetLabel("shortcut: one base chase + per-pair deltas");
}
BENCHMARK(BM_ExactInsert_Shortcut)
    ->RangeMultiplier(2)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_ExactInsert_Shortcut_Reject(benchmark::State& state) {
  RunInsertBench(state, ChaseBackend::kHash, /*reuse=*/true,
                 /*translatable_case=*/false);
  state.SetLabel("shortcut, rejected insertion (early exit)");
}
BENCHMARK(BM_ExactInsert_Shortcut_Reject)
    ->RangeMultiplier(2)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
