// bench_recovery: recovery-time vs journal-length curve (DESIGN.md §10).
//
// For each journal length n the harness builds two on-disk stores fed the
// identical accepted-update stream — one with no checkpoint (recovery =
// full replay of n records) and one checkpointed at 90% of the stream
// (recovery = load checkpoint + replay the 10% suffix) — then measures a
// cold DurableStore::Open against each. The claim under test is the
// tentpole's acceptance bar: checkpointed recovery is >= 5x faster than
// full replay once the journal is long (100k records), because replay
// cost is linear in n while checkpoint load is linear in |database|,
// which the workload holds bounded.
//
// Usage:
//   bench_recovery [--smoke] [--json=FILE] [--gate] [--max=N]
//     --smoke   small n's only (CI build-and-test job)
//     --json    write the result document to FILE
//     --gate    exit 1 when speedup at the largest n is < 5x
//     --max     override the largest n
//
// Custom main (not benchmark_main): each measurement is one cold start
// against a directory prepared ahead of time, so Google Benchmark's
// auto-iteration would re-measure a warmed page cache instead of the
// recovery path.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/recovery.h"
#include "util/small_util.h"
#include "view/translator.h"

namespace relview {
namespace bench {
namespace {

Tuple Row2(uint32_t a, uint32_t b) {
  return Tuple(std::vector<Value>{Value::Const(a), Value::Const(b)});
}

/// Emp-Dept-Mgr translator over a 10-department seed; every generated
/// update below is accepted, so n updates = n journal records.
ViewTranslator MakeTranslator() {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                   u.SetOf("Dept Mgr"));
  if (!vt.ok()) {
    std::fprintf(stderr, "translator: %s\n", vt.status().ToString().c_str());
    std::exit(1);
  }
  Relation db(vt->universe().All());
  for (uint32_t d = 0; d < 10; ++d) {
    db.AddRow(Tuple(std::vector<Value>{Value::Const(d), Value::Const(100 + d),
                                       Value::Const(200 + d)}));
  }
  if (!vt->Bind(std::move(db)).ok()) std::exit(1);
  return std::move(*vt);
}

/// The accepted-update stream: round-robin inserts of fresh employees,
/// with a trailing-window delete once the database passes `cap` rows, so
/// |database| stays bounded (~cap) however long the journal grows. Every
/// update is translatable: inserts join an existing department, deletes
/// always leave an older sibling behind.
class Workload {
 public:
  explicit Workload(uint64_t cap) : cap_(cap) {}

  ViewUpdate Next() {
    if (live_ > cap_ && (step_++ % 2) == 0) {
      const uint32_t emp = oldest_++;
      --live_;
      return ViewUpdate::Delete(Row2(emp, 100 + emp % 10));
    }
    const uint32_t emp = next_++;
    ++live_;
    return ViewUpdate::Insert(Row2(emp, 100 + emp % 10));
  }

 private:
  uint64_t cap_;
  uint64_t live_ = 10;  // the seed rows
  uint64_t step_ = 0;
  uint32_t next_ = 1000;
  uint32_t oldest_ = 1000;
};

/// Builds a store under `dir` holding exactly `n` accepted records,
/// applying and journaling in batches of `batch` (one fsync per batch —
/// how a group-committing service writes). A checkpoint is written when
/// the sequence number crosses `checkpoint_at` (0 = never).
void BuildStore(const std::string& dir, uint64_t n, uint64_t checkpoint_at,
                uint64_t batch) {
  std::filesystem::remove_all(dir);
  ViewTranslator vt = MakeTranslator();
  StoreOptions opts;
  opts.dir = dir;
  opts.rotate_records = 4096;
  auto store = DurableStore::Open(opts, &vt);
  if (!store.ok()) {
    std::fprintf(stderr, "build: %s\n", store.status().ToString().c_str());
    std::exit(1);
  }
  Workload gen(2000);
  std::vector<ViewUpdate> pending;
  pending.reserve(batch);
  auto flush = [&] {
    if (pending.empty()) return;
    Status st = (*store)->Append(pending);
    if (!st.ok()) {
      std::fprintf(stderr, "append: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    pending.clear();
  };
  for (uint64_t i = 0; i < n; ++i) {
    ViewUpdate u = gen.Next();
    Status st = u.kind == UpdateKind::kInsert ? vt.Insert(u.t1)
                                              : vt.Delete(u.t1);
    if (!st.ok()) {
      std::fprintf(stderr, "workload update %" PRIu64 " rejected: %s\n", i,
                   st.ToString().c_str());
      std::exit(1);
    }
    pending.push_back(std::move(u));
    if (pending.size() >= batch) flush();
    if (checkpoint_at != 0 && i + 1 == checkpoint_at) {
      flush();
      auto seq = (*store)->WriteCheckpoint(vt.database());
      if (!seq.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n",
                     seq.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  flush();
}

/// One cold recovery against `dir`; returns milliseconds and reports what
/// the recovery path did through *info.
double MeasureRecovery(const std::string& dir, RecoveryInfo* info) {
  ViewTranslator vt = MakeTranslator();
  StoreOptions opts;
  opts.dir = dir;
  opts.rotate_records = 4096;
  Timer timer;
  auto store = DurableStore::Open(opts, &vt);
  const double ms = static_cast<double>(timer.ElapsedNanos()) / 1e6;
  if (!store.ok()) {
    std::fprintf(stderr, "recovery: %s\n", store.status().ToString().c_str());
    std::exit(1);
  }
  *info = (*store)->recovery();
  return ms;
}

struct Point {
  uint64_t n = 0;
  double full_ms = 0;
  double ckpt_ms = 0;
  uint64_t ckpt_replayed = 0;
  double speedup = 0;
};

int Main(int argc, char** argv) {
  const bool smoke = HasFlag(argc, argv, "smoke");
  const bool gate = HasFlag(argc, argv, "gate");
  const std::string json_path = FlagValue(argc, argv, "json");
  std::vector<uint64_t> curve =
      smoke ? std::vector<uint64_t>{200, 1000}
            : std::vector<uint64_t>{1000, 10000, 100000};
  const std::string max_flag = FlagValue(argc, argv, "max");
  if (!max_flag.empty()) {
    curve.back() = static_cast<uint64_t>(std::atoll(max_flag.c_str()));
  }

  const std::string base =
      std::filesystem::temp_directory_path().string() + "/relview_bench_rec";
  std::vector<Point> points;
  std::printf("%10s %14s %14s %10s %10s\n", "n", "full_replay_ms",
              "checkpoint_ms", "replayed", "speedup");
  for (uint64_t n : curve) {
    Point p;
    p.n = n;
    // One store per mode, identical streams; the checkpointed store's
    // checkpoint lands at 90% so its recovery still replays a suffix.
    BuildStore(base + "_full", n, /*checkpoint_at=*/0, /*batch=*/1000);
    BuildStore(base + "_ckpt", n, /*checkpoint_at=*/n - n / 10,
               /*batch=*/1000);
    RecoveryInfo full_info, ckpt_info;
    p.full_ms = MeasureRecovery(base + "_full", &full_info);
    p.ckpt_ms = MeasureRecovery(base + "_ckpt", &ckpt_info);
    if (full_info.replayed != n || ckpt_info.replayed != n / 10 ||
        !ckpt_info.used_checkpoint) {
      std::fprintf(stderr,
                   "unexpected recovery shape at n=%" PRIu64
                   " (full replayed %" PRIu64 ", ckpt replayed %" PRIu64
                   ")\n",
                   n, full_info.replayed, ckpt_info.replayed);
      return 1;
    }
    p.ckpt_replayed = ckpt_info.replayed;
    p.speedup = p.ckpt_ms > 0 ? p.full_ms / p.ckpt_ms : 0;
    points.push_back(p);
    std::printf("%10" PRIu64 " %14.2f %14.2f %10" PRIu64 " %9.2fx\n", p.n,
                p.full_ms, p.ckpt_ms, p.ckpt_replayed, p.speedup);
  }
  std::filesystem::remove_all(base + "_full");
  std::filesystem::remove_all(base + "_ckpt");

  if (!json_path.empty()) {
    std::string arr = "[";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i) arr += ",";
      arr += JsonWriter()
                 .Add("n", points[i].n)
                 .Add("full_replay_ms", points[i].full_ms)
                 .Add("checkpoint_ms", points[i].ckpt_ms)
                 .Add("ckpt_replayed", points[i].ckpt_replayed)
                 .Add("speedup", points[i].speedup)
                 .ToString();
    }
    arr += "]";
    JsonWriter doc;
    doc.Add("bench", std::string("recovery"))
        .Add("smoke", smoke)
        .Add("max_n", points.back().n)
        .Add("speedup_at_max", points.back().speedup)
        .Raw("points", arr);
    Status st = doc.WriteFile(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (gate && points.back().speedup < 5.0) {
    std::fprintf(stderr,
                 "GATE FAILED: checkpointed recovery speedup %.2fx < 5x at "
                 "n=%" PRIu64 "\n",
                 points.back().speedup, points.back().n);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace relview

int main(int argc, char** argv) {
  return relview::bench::Main(argc, argv);
}
