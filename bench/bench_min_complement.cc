// E3 — Theorem 2: the minimum complement is NP-complete. The exact solver
// on the paper's 3-SAT reduction instances grows exponentially with the
// number of variables (the per-n time roughly multiplies), while the
// greedy minimal complement (Corollary 2) stays polynomial on the same
// schemas — reproducing the hardness/easiness contrast.

#include <benchmark/benchmark.h>

#include "reductions/reductions.h"
#include "solvers/cnf.h"
#include "util/rng.h"
#include "view/complement.h"

namespace relview {
namespace {

MinComplementReduction Instance(int n, int m, uint64_t seed) {
  Rng rng(seed);
  // Bias toward unsatisfiable-ish dense formulas so the solver has to
  // exhaust a cardinality level (the hard case).
  const CNF3 phi = CNF3::Random(n, m, &rng);
  return ReduceSatToMinComplement(phi);
}

void BM_ExactMinimumComplement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // |X| = 2n + m; keep m = 2n so the exact solver's 24-attribute view
  // limit admits n <= 6 (the exponential shape is visible well before).
  MinComplementReduction red = Instance(n, 2 * n, 1234);
  DependencySet sigma;
  sigma.fds = red.fds;
  int64_t tests = 0;
  for (auto _ : state) {
    auto res = MinimumComplement(red.universe.All(), sigma, red.x);
    benchmark::DoNotOptimize(res);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    tests = res->tests;
  }
  state.counters["complementarity_tests"] =
      static_cast<double>(tests);
  state.SetLabel("n=" + std::to_string(n) +
                 " vars (|X|=" + std::to_string(red.x.Count()) + ")");
}
BENCHMARK(BM_ExactMinimumComplement)->DenseRange(3, 6, 1)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyMinimalComplement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MinComplementReduction red = Instance(n, 2 * n, 1234);
  DependencySet sigma;
  sigma.fds = red.fds;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MinimalComplement(red.universe.All(), sigma, red.x));
  }
  state.SetLabel("n=" + std::to_string(n) + " vars (same schemas)");
}
BENCHMARK(BM_GreedyMinimalComplement)->DenseRange(3, 9, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
