// E1/E2 — Corollaries 1 and 2: complementarity testing and minimal
// complement construction are polynomial in the schema size. Sweeps |U|
// and |Sigma|; the reported times should grow polynomially (roughly
// linearly in |Sigma| for the FD path, and with a |U|-sized extra factor
// for the greedy minimal-complement loop).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "view/complement.h"

namespace relview {
namespace {

void BM_AreComplementaryFDOnly(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int nfds = static_cast<int>(state.range(1));
  FDSet fds = bench::MakeRandomFds(width, nfds, 42);
  DependencySet sigma;
  sigma.fds = fds;
  AttrSet x = AttrSet::FirstN(width - 1);
  AttrSet y = AttrSet::FirstN(width) - AttrSet::FirstN(width / 2);
  const AttrSet universe = AttrSet::FirstN(width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AreComplementary(universe, sigma, x, y));
  }
  state.SetLabel("U=" + std::to_string(width) +
                 " |Sigma|=" + std::to_string(nfds));
}
BENCHMARK(BM_AreComplementaryFDOnly)
    ->Args({8, 8})
    ->Args({16, 16})
    ->Args({32, 32})
    ->Args({64, 64})
    ->Args({64, 128})
    ->Args({128, 128});

void BM_AreComplementaryWithJDs(benchmark::State& state) {
  // Force the chase path with a JD, sweeping the universe.
  const int width = static_cast<int>(state.range(0));
  FDSet fds = bench::MakeRandomFds(width, width, 7);
  DependencySet sigma;
  sigma.fds = fds;
  const AttrSet universe = AttrSet::FirstN(width);
  AttrSet x = AttrSet::FirstN(width - 1);
  AttrSet y = universe - AttrSet::FirstN(width / 2);
  sigma.jds.push_back(JD::MVD(x, y | (x & y)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AreComplementary(universe, sigma, x, y));
  }
  state.SetLabel("U=" + std::to_string(width) + " (tableau chase path)");
}
BENCHMARK(BM_AreComplementaryWithJDs)->Arg(8)->Arg(16)->Arg(32);

void BM_MinimalComplement(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  FDSet fds;
  // Chain FDs: minimal complement shrinks substantially.
  for (int i = 0; i + 1 < width; ++i) {
    fds.Add(AttrSet::Single(static_cast<AttrId>(i)),
            static_cast<AttrId>(i + 1));
  }
  DependencySet sigma;
  sigma.fds = fds;
  const AttrSet universe = AttrSet::FirstN(width);
  AttrSet x = universe;
  x.Remove(static_cast<AttrId>(width - 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimalComplement(universe, sigma, x));
  }
  state.SetLabel("U=" + std::to_string(width) + " chain schema");
}
BENCHMARK(BM_MinimalComplement)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
