// E8 — Theorem 9: replacements. Case 1 (different common parts) costs
// like an insertion (chase test over (r, f) pairs); case 2 (same common
// part) additionally quantifies over the mu rows. Both sweeps report the
// |V| scaling.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "view/replacement.h"

namespace relview {
namespace {

void BM_ReplacementCase1(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 77);
  const Schema vs(w.x);
  // t1 = some row; t2 = same head moved to another existing common part.
  Tuple t1 = w.view.row(0);
  Tuple t2 = t1;
  for (int i = 1; i < w.view.size(); ++i) {
    const AttrId common_attr = static_cast<AttrId>(w.x.Count() - 1);
    if (w.view.row(i).At(vs, common_attr) != t1.At(vs, common_attr)) {
      // Move t1's row to row i's department, keeping the head.
      t2 = t1;
      for (AttrId a : vs.cols()) {
        if (a != 0) t2.Set(vs, a, w.view.row(i).At(vs, a));
      }
      break;
    }
  }
  if (t2 == t1 || w.view.ContainsRow(t2)) {
    state.SkipWithError("workload lacks a case-1 target");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckReplacement(w.universe.All(), w.fds, w.x,
                                              w.y, w.view, t1, t2));
  }
  state.counters["view_rows"] = w.view.size();
}
BENCHMARK(BM_ReplacementCase1)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_ReplacementCase2(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 78);
  const Schema vs(w.x);
  // t2 = t1 with a fresh head: same common part (case 2).
  Tuple t1 = w.view.row(0);
  Tuple t2 = t1;
  t2.Set(vs, 0, Value::Const(0x0FFFFFF1u));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckReplacement(w.universe.All(), w.fds, w.x,
                                              w.y, w.view, t1, t2));
  }
  state.counters["view_rows"] = w.view.size();
}
BENCHMARK(BM_ReplacementCase2)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
