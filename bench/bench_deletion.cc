// E7 — Theorem 8: deletion translatability is testable in O(|V| + |Sigma|).
// The sweep should show linear growth in |V| (the fitted exponent is
// reported via benchmark's complexity machinery).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "view/deletion.h"

namespace relview {
namespace {

void BM_DeletionCheck(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckDeletion(w.universe.All(), w.fds, w.x,
                                           w.y, w.view, w.delete_ok));
  }
  state.SetComplexityN(w.view.size());
}
BENCHMARK(BM_DeletionCheck)
    ->RangeMultiplier(2)
    ->Range(64, 65536)
    ->Complexity(benchmark::oN);

void BM_DeletionApply(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 56);
  const Tuple victim = w.delete_ok;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApplyDeletion(w.universe.All(), w.x, w.y, w.database, victim));
  }
  state.SetComplexityN(w.database.size());
}
BENCHMARK(BM_DeletionApply)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
