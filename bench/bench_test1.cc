// E5 — Test 1's backends: the naive O(|V|^2 |Sigma|) pairwise form (two-
// tuple chase / closure) versus the indexed form the paper bounds by
// O(|V| log|V| 2^|U| |Sigma|). The paper predicts the indexed variant wins
// once |V|/log|V| > 2^|U| — with |U| small and |V| in the thousands the
// crossover is visible in the sweep below.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "view/test1.h"

namespace relview {
namespace {

void RunTest1Bench(benchmark::State& state, Test1Backend backend) {
  const int rows = static_cast<int>(state.range(0));
  bench::ChainWorkload w =
      bench::MakeChainWorkload(4, rows, /*fanin=*/8, 1001);
  Test1Options opts{backend};
  int64_t probes = 0;
  for (auto _ : state) {
    auto rep =
        RunTest1(w.universe.All(), w.fds, w.x, w.y, w.view, w.insert_ok,
                 opts);
    benchmark::DoNotOptimize(rep);
    if (rep.ok()) probes = rep->probes;
  }
  state.counters["view_rows"] = w.view.size();
  state.counters["probes"] = static_cast<double>(probes);
}

void BM_Test1_TwoTupleChase(benchmark::State& state) {
  RunTest1Bench(state, Test1Backend::kTwoTupleChase);
  state.SetLabel("naive: materialized two-tuple chases");
}
BENCHMARK(BM_Test1_TwoTupleChase)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_Test1_Closure(benchmark::State& state) {
  RunTest1Bench(state, Test1Backend::kClosure);
  state.SetLabel("pairwise closures (same mathematics)");
}
BENCHMARK(BM_Test1_Closure)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_Test1_Indexed(benchmark::State& state) {
  RunTest1Bench(state, Test1Backend::kIndexed);
  state.SetLabel("paper's indexed variant (per-subset tables)");
}
BENCHMARK(BM_Test1_Indexed)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

// Adversarial workload exhibiting the paper's worst case: Sigma =
// {A -> C, B -> C}, X = AB, Y = BC, V = half rows (a*, b_i) and half
// (a_k, b*), insert (a*, b*). Every (a*, b_i) row is a candidate violator
// of A -> C and every (a_k, b*) row is a mu, and no pair succeeds: the
// pairwise backends scan all |V|/2 mus of the first failing candidate
// before rejecting (and would scan |V|^2/4 pairs if rejection did not
// early-exit), while the indexed backend needs a single exact-pattern
// probe.
struct AdversarialWorkload {
  Universe u;
  FDSet fds;
  AttrSet x, y;
  Relation view{AttrSet()};
  Tuple t;
};

AdversarialWorkload MakeAdversarial(int rows) {
  AdversarialWorkload w;
  w.u = Universe::Parse("A B C").value();
  w.fds = FDSet::Parse(w.u, "A -> C; B -> C").value();
  w.x = w.u.SetOf("A B");
  w.y = w.u.SetOf("B C");
  w.view = Relation(w.x);
  const uint32_t star_a = 0, star_b = 1000000;
  for (int i = 0; i < rows / 2; ++i) {
    Tuple r1(2);
    r1[0] = Value::Const(star_a);
    r1[1] = Value::Const(1000001u + static_cast<uint32_t>(i));
    w.view.AddRow(std::move(r1));
    Tuple r2(2);
    r2[0] = Value::Const(1u + static_cast<uint32_t>(i));
    r2[1] = Value::Const(star_b);
    w.view.AddRow(std::move(r2));
  }
  Tuple t(2);
  t[0] = Value::Const(star_a);
  t[1] = Value::Const(star_b);
  w.t = std::move(t);
  return w;
}

void RunAdversarial(benchmark::State& state, Test1Backend backend) {
  const int rows = static_cast<int>(state.range(0));
  AdversarialWorkload w = MakeAdversarial(rows);
  Test1Options opts{backend};
  int64_t probes = 0;
  for (auto _ : state) {
    auto rep =
        RunTest1(w.u.All(), w.fds, w.x, w.y, w.view, w.t, opts);
    benchmark::DoNotOptimize(rep);
    if (rep.ok()) probes = rep->probes;
  }
  state.counters["view_rows"] = w.view.size();
  state.counters["probes"] = static_cast<double>(probes);
}

void BM_Test1Adversarial_Closure(benchmark::State& state) {
  RunAdversarial(state, Test1Backend::kClosure);
  state.SetLabel("pairwise: all mus probed before rejecting");
}
BENCHMARK(BM_Test1Adversarial_Closure)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_Test1Adversarial_Indexed(benchmark::State& state) {
  RunAdversarial(state, Test1Backend::kIndexed);
  state.SetLabel("indexed: O(1) exact patterns per candidate");
}
BENCHMARK(BM_Test1Adversarial_Indexed)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace relview

BENCHMARK_MAIN();
