// Tests for the sharded write path: the deterministic t[X∩Y] router, the
// ShardedService routing/decomposition contract, cross-shard snapshot
// composition (composite-version monotonicity, read-your-writes), the
// documented FD-relaxation pin, recovery of the composed state from the
// per-shard stores, and — under TSan in CI — concurrent multi-shard
// writers racing snapshot readers.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "deps/dep_set.h"
#include "relational/relation.h"
#include "relational/universe.h"
#include "relational/value.h"
#include "shard/router.h"
#include "shard/sharded_service.h"

namespace relview {
namespace {

constexpr uint32_t kDeptBase = 1'000'000;
constexpr uint32_t kMgrBase = 2'000'000;
constexpr uint32_t kEmps = 64;
constexpr uint32_t kDepts = 8;

uint32_t DeptOf(uint32_t emp) { return kDeptBase + emp % kDepts; }
uint32_t MgrOf(uint32_t emp) { return kMgrBase + emp % kDepts; }

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

/// The canonical Emp/Dept/Mgr fixture: schema pieces plus the seeded
/// instance (employees 1..kEmps dealt round-robin over kDepts
/// departments, one manager per department).
struct Fixture {
  Universe u;
  DependencySet sigma;
  AttrSet x;
  AttrSet y;
  Relation seed;

  Fixture()
      : u(Universe::Parse("Emp Dept Mgr").value()),
        x(u.SetOf("Emp Dept")),
        y(u.SetOf("Dept Mgr")),
        seed(u.All()) {
    sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
    for (uint32_t e = 1; e <= kEmps; ++e) {
      seed.AddRow(Row({e, DeptOf(e), MgrOf(e)}));
    }
  }

  std::unique_ptr<ShardedService> Make(ShardedServiceOptions options) {
    auto svc = ShardedService::Create(u, sigma, x, y, seed, options);
    EXPECT_TRUE(svc.ok()) << svc.status().ToString();
    return svc.ok() ? std::move(svc).value() : nullptr;
  }
};

TEST(ShardRouterTest, DeterministicAndKeyedOnJoinProjectionOnly) {
  Fixture f;
  ShardRouter router(f.u, f.x, f.y, 5);
  EXPECT_EQ(router.shards(), 5);
  EXPECT_EQ(router.join_key().ToVector(), f.u.SetOf("Dept").ToVector());

  for (uint32_t e = 1; e <= kEmps; ++e) {
    const int via_view = router.ShardOfView(Row({e, DeptOf(e)}));
    const int via_base = router.ShardOfBase(Row({e, DeptOf(e), MgrOf(e)}));
    // View and base layouts agree, and only the join key matters: a
    // different employee of the same department routes identically.
    EXPECT_EQ(via_view, via_base);
    EXPECT_EQ(via_view, router.ShardOfView(Row({e + 7777, DeptOf(e)})));
    EXPECT_GE(via_view, 0);
    EXPECT_LT(via_view, 5);
    // A freshly built router (new incarnation) routes the same.
    ShardRouter rebuilt(f.u, f.x, f.y, 5);
    EXPECT_EQ(rebuilt.ShardOfView(Row({e, DeptOf(e)})), via_view);
  }
}

TEST(ShardedServiceTest, SeedPartitionComposesBackToTheWhole) {
  Fixture f;
  ShardedServiceOptions options;
  options.shards = 4;
  auto svc = f.Make(options);
  ASSERT_NE(svc, nullptr);

  const ShardedSnapshot snap = svc->Snapshot();
  ASSERT_EQ(static_cast<int>(snap.shards.size()), 4);
  EXPECT_EQ(snap.version, 0u);
  EXPECT_EQ(snap.database_size(), static_cast<uint64_t>(kEmps));
  EXPECT_EQ(snap.view_size(), static_cast<uint64_t>(kEmps));
  for (uint32_t e = 1; e <= kEmps; ++e) {
    EXPECT_TRUE(snap.ViewContains(Row({e, DeptOf(e)}))) << "emp " << e;
  }
  // The partition is the router's: each shard holds exactly its rows.
  for (int s = 0; s < svc->shard_count(); ++s) {
    for (const Tuple& row : svc->shard(s)->Snapshot().database->rows()) {
      EXPECT_EQ(svc->router().ShardOfBase(row), s);
    }
  }
}

TEST(ShardedServiceTest, ReadYourWritesAndCompositeVersionAfterAck) {
  Fixture f;
  ShardedServiceOptions options;
  options.shards = 3;
  auto svc = f.Make(options);
  ASSERT_NE(svc, nullptr);

  uint64_t expected_version = 0;
  for (uint32_t i = 0; i < 12; ++i) {
    const uint32_t e = kEmps + 1 + i;
    std::vector<ViewUpdate> batch;
    batch.push_back(ViewUpdate::Insert(Row({e, DeptOf(e)})));
    ASSERT_TRUE(svc->ApplyBatch(batch).ok());
    ++expected_version;
    // Read-your-writes: the snapshot taken after the ack reflects the
    // batch, and the composite version counts every commit exactly once.
    const ShardedSnapshot snap = svc->Snapshot();
    EXPECT_EQ(snap.version, expected_version);
    EXPECT_TRUE(snap.ViewContains(Row({e, DeptOf(e)})));
  }
}

TEST(ShardedServiceTest, CrossShardReplaceDecomposesIntoDeleteAndInsert) {
  Fixture f;
  ShardedServiceOptions options;
  options.shards = 4;
  auto svc = f.Make(options);
  ASSERT_NE(svc, nullptr);

  // Find a department pair on different shards; move employee 1 there.
  const uint32_t from_dept = DeptOf(1);
  uint32_t to_dept = 0;
  for (uint32_t d = 0; d < kDepts; ++d) {
    const uint32_t cand = kDeptBase + d;
    if (svc->router().ShardOfView(Row({1, cand})) !=
        svc->router().ShardOfView(Row({1, from_dept}))) {
      to_dept = cand;
      break;
    }
  }
  ASSERT_NE(to_dept, 0u) << "all departments hash to one shard?";

  std::vector<ViewUpdate> batch;
  batch.push_back(
      ViewUpdate::Replace(Row({1, from_dept}), Row({1, to_dept})));
  const BatchResult r = svc->ApplyBatch(batch);
  ASSERT_TRUE(r.ok()) << r.status.ToString() << " " << r.detail;

  const ShardedSnapshot snap = svc->Snapshot();
  EXPECT_FALSE(snap.ViewContains(Row({1, from_dept})));
  EXPECT_TRUE(snap.ViewContains(Row({1, to_dept})));
  // The decomposition commits one sub-batch on each side: two commits,
  // so the composite version advanced by two for one logical replace.
  EXPECT_EQ(snap.version, 2u);
}

TEST(ShardedServiceTest, RejectionMapsFailedIndexToOriginalBatchPosition) {
  Fixture f;
  ShardedServiceOptions options;
  options.shards = 4;
  auto svc = f.Make(options);
  ASSERT_NE(svc, nullptr);

  // updates[0] is fine; updates[1] claims a seeded employee for a wrong
  // department that routes to the employee's OWN shard, so the Emp ->
  // Dept conflict is visible shard-locally and rejects there. The
  // reported index must be the caller's (1), not the index inside that
  // shard's sub-batch (0 whenever the two updates routed apart).
  uint32_t emp = 0;
  uint32_t wrong_dept = 0;
  for (uint32_t e = 1; e <= kEmps && emp == 0; ++e) {
    for (uint32_t d = 0; d < kDepts; ++d) {
      const uint32_t cand = kDeptBase + d;
      if (cand != DeptOf(e) &&
          svc->router().ShardOfView(Row({e, cand})) ==
              svc->router().ShardOfView(Row({e, DeptOf(e)}))) {
        emp = e;
        wrong_dept = cand;
        break;
      }
    }
  }
  ASSERT_NE(emp, 0u) << "no same-shard department pair at 4 shards?";

  std::vector<ViewUpdate> batch;
  batch.push_back(ViewUpdate::Insert(Row({kEmps + 100, DeptOf(kEmps + 100)})));
  batch.push_back(ViewUpdate::Insert(Row({emp, wrong_dept})));
  const BatchResult r = svc->ApplyBatch(batch);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failed_index, 1) << r.detail;
}

// The documented relaxation (see shard/router.h): an FD whose left side
// lies outside X∩Y — Emp → Dept here — is enforced only within a shard.
// This pin keeps the behavior deliberate: if routing or enforcement
// changes, this test must be revisited along with the docs.
TEST(ShardedServiceTest, FdRelaxationAcrossShardsIsTheDocumentedContract) {
  Fixture f;

  // Employee kEmps+1 into two different departments on different shards.
  const uint32_t e = kEmps + 1;
  const uint32_t d1 = DeptOf(e);
  ShardedServiceOptions options;
  options.shards = 4;
  auto sharded = f.Make(options);
  ASSERT_NE(sharded, nullptr);
  uint32_t d2 = 0;
  for (uint32_t d = 0; d < kDepts; ++d) {
    const uint32_t cand = kDeptBase + d;
    if (cand != d1 && sharded->router().ShardOfView(Row({e, cand})) !=
                          sharded->router().ShardOfView(Row({e, d1}))) {
      d2 = cand;
      break;
    }
  }
  ASSERT_NE(d2, 0u);

  std::vector<ViewUpdate> first{ViewUpdate::Insert(Row({e, d1}))};
  std::vector<ViewUpdate> second{ViewUpdate::Insert(Row({e, d2}))};
  ASSERT_TRUE(sharded->ApplyBatch(first).ok());
  EXPECT_TRUE(sharded->ApplyBatch(second).ok())
      << "cross-shard Emp -> Dept enforcement appeared; update the "
         "documented contract before changing this";

  // The unsharded service rejects exactly that second insert.
  ShardedServiceOptions one;
  one.shards = 1;
  auto unsharded = f.Make(one);
  ASSERT_NE(unsharded, nullptr);
  ASSERT_TRUE(unsharded->ApplyBatch(first).ok());
  EXPECT_FALSE(unsharded->ApplyBatch(second).ok());
}

TEST(ShardedServiceTest, RecoveryRecomposesAcrossPerShardStores) {
  Fixture f;
  const std::string root =
      ::testing::TempDir() + "sharded_service_recovery";
  std::filesystem::remove_all(root);

  ShardedServiceOptions options;
  options.shards = 3;
  options.store_root = root;
  options.group_commit = true;
  options.group_window_us = 200;

  std::vector<uint32_t> acked;
  {
    auto svc = f.Make(options);
    ASSERT_NE(svc, nullptr);
    for (uint32_t i = 0; i < 15; ++i) {
      const uint32_t e = kEmps + 1 + i;
      std::vector<ViewUpdate> batch{ViewUpdate::Insert(Row({e, DeptOf(e)}))};
      ASSERT_TRUE(svc->ApplyBatch(batch).ok());
      acked.push_back(e);
    }
  }  // destroys the service; the journals remain

  auto recovered = f.Make(options);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->replayed_updates(), acked.size());
  const ShardedSnapshot snap = recovered->Snapshot();
  EXPECT_EQ(snap.database_size(),
            static_cast<uint64_t>(kEmps) + acked.size());
  for (const uint32_t e : acked) {
    EXPECT_TRUE(snap.ViewContains(Row({e, DeptOf(e)})))
        << "acked insert of emp " << e << " lost across recovery";
  }
  std::filesystem::remove_all(root);
}

TEST(ShardedServiceTest, GroupCommitAmortizesFsyncsUnderConcurrency) {
  Fixture f;
  const std::string root =
      ::testing::TempDir() + "sharded_service_group_fsync";
  std::filesystem::remove_all(root);
  ShardedServiceOptions options;
  options.shards = 2;
  options.store_root = root;
  options.group_commit = true;
  options.group_window_us = 2000;
  auto svc = f.Make(options);
  ASSERT_NE(svc, nullptr);

  constexpr int kWriters = 8;
  constexpr int kPerWriter = 25;
  std::vector<std::thread> writers;
  std::atomic<int> committed{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const uint32_t e = kEmps + 1 +
                           static_cast<uint32_t>(w * kPerWriter + i);
        std::vector<ViewUpdate> batch{
            ViewUpdate::Insert(Row({e, DeptOf(e)}))};
        if (svc->ApplyBatch(batch).ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  ASSERT_EQ(committed.load(), kWriters * kPerWriter);

  uint64_t fsyncs = 0;
  uint64_t batches = 0;
  for (int s = 0; s < svc->shard_count(); ++s) {
    ASSERT_NE(svc->shard(s)->store(), nullptr);
    fsyncs += svc->shard(s)->store()->fsyncs();
    batches += svc->shard(s)->metrics().batches_committed();
  }
  EXPECT_EQ(batches, static_cast<uint64_t>(kWriters * kPerWriter));
  // The point of group commit: strictly fewer fsyncs than batches. The
  // exact ratio is timing-dependent; the sweep gate in bench/loadgen.cc
  // enforces the quantitative claim (< 0.5 under >= 8 writers).
  EXPECT_LT(fsyncs, batches)
      << "no cohort ever formed under " << kWriters << " writers";
  std::filesystem::remove_all(root);
}

// Concurrent multi-shard writers against snapshot readers: the composite
// version each reader observes must be monotone, and every snapshot must
// be internally consistent (a version-v snapshot composed of per-shard
// pins, never a torn read). Run under TSan in CI, this is also the data-
// race check for the sharded write path.
TEST(ShardedServiceTest, ConcurrentWritersAndReadersSeeMonotoneComposition) {
  Fixture f;
  ShardedServiceOptions options;
  options.shards = 4;
  auto svc = f.Make(options);
  ASSERT_NE(svc, nullptr);

  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kPerWriter = 40;
  std::atomic<bool> stop{false};
  std::atomic<int> committed{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const uint32_t e = kEmps + 1 +
                           static_cast<uint32_t>(w * kPerWriter + i);
        std::vector<ViewUpdate> batch{
            ViewUpdate::Insert(Row({e, DeptOf(e)}))};
        if (svc->ApplyBatch(batch).ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      uint64_t prev = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const ShardedSnapshot snap = svc->Snapshot();
        // Monotone composite version per reader.
        EXPECT_GE(snap.version, prev);
        prev = snap.version;
        // Internal consistency: the composition never loses the seed.
        EXPECT_GE(snap.view_size(), static_cast<uint64_t>(kEmps));
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  ASSERT_EQ(committed.load(), kWriters * kPerWriter);
  const ShardedSnapshot final_snap = svc->Snapshot();
  EXPECT_EQ(final_snap.version,
            static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(final_snap.view_size(),
            static_cast<uint64_t>(kEmps + kWriters * kPerWriter));
}

}  // namespace
}  // namespace relview
