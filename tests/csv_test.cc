// Tests for the delimited-table loader/writer.

#include "relational/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace relview {
namespace {

TEST(CsvTest, ReadsHeaderAndRows) {
  ValuePool pool;
  auto res = ReadTableFromString(
      "Emp,Dept,Mgr\n"
      "ann,sales,mia\n"
      "bob,dev,joe\n",
      &pool);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->universe.size(), 3);
  EXPECT_EQ(res->relation.size(), 2);
  EXPECT_EQ(pool.NameOf(res->relation.row(0)[0]), "ann");
}

TEST(CsvTest, MixedDelimitersAndComments) {
  ValuePool pool;
  auto res = ReadTableFromString(
      "# a comment first\n"
      "A B\tC\n"
      "1; 2\t3\n"
      "# another comment\n"
      "4 5 6\n",
      &pool);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->relation.size(), 2);
  EXPECT_EQ(res->relation.arity(), 3);
}

TEST(CsvTest, RejectsRaggedRows) {
  ValuePool pool;
  auto res = ReadTableFromString("A B\n1 2 3\n", &pool);
  EXPECT_FALSE(res.ok());
}

TEST(CsvTest, RejectsDuplicateHeader) {
  ValuePool pool;
  auto res = ReadTableFromString("A A\n1 2\n", &pool);
  EXPECT_FALSE(res.ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  ValuePool pool;
  auto res = ReadTableFromString("", &pool);
  EXPECT_FALSE(res.ok());
}

TEST(CsvTest, MatchesExistingUniverse) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  ValuePool pool;
  auto res = ReadTableFromString("Dept Mgr\nsales mia\n", &pool, &u);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->relation.attrs(), u.SetOf("Dept Mgr"));
  // Unknown attribute is rejected.
  auto bad = ReadTableFromString("Dept Oops\nx y\n", &pool, &u);
  EXPECT_FALSE(bad.ok());
}

TEST(CsvTest, DeduplicatesRows) {
  ValuePool pool;
  auto res = ReadTableFromString("A\n1\n1\n2\n", &pool);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->relation.size(), 2);
}

TEST(CsvTest, RoundTripsThroughWriteTable) {
  ValuePool pool;
  auto res = ReadTableFromString("Emp Dept\nann sales\nbob dev\n", &pool);
  ASSERT_TRUE(res.ok());
  std::ostringstream out;
  WriteTable(out, res->relation, res->universe, pool);
  auto back = ReadTableFromString(out.str(), &pool, &res->universe);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->relation.SameAs(res->relation));
}

}  // namespace
}  // namespace relview
