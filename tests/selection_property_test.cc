// Randomized property suite for selection views (§6(2) extension): under
// any accepted update sequence, BOTH complement components — the hidden
// sigma_{¬P} rows and the pi_Y projection — stay constant, and the view
// evolves exactly as requested.

#include <gtest/gtest.h>

#include "deps/satisfies.h"
#include "util/rng.h"
#include "view/selection_view.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

class SelectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectionPropertyTest, ComplementPairConstantUnderRandomOps) {
  Rng rng(8800 + GetParam());
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  // Predicate: Dept == 0 (the "visible department").
  TuplePredicate p;
  p.AddEquals(u["Dept"], Value::Const(0));
  auto vt_or = SelectionViewTranslator::Create(
      u, sigma, u.SetOf("Emp Dept"), u.SetOf("Dept Mgr"), p);
  ASSERT_TRUE(vt_or.ok());
  SelectionViewTranslator vt = std::move(*vt_or);

  // Random legal database: dept d -> manager 100+d.
  Relation db(u.All());
  const int emps = 4 + static_cast<int>(rng.Below(6));
  for (int e = 0; e < emps; ++e) {
    const uint32_t dept = static_cast<uint32_t>(rng.Below(3));
    db.AddRow(Row({static_cast<uint32_t>(e), dept, 100 + dept}));
  }
  ASSERT_TRUE(vt.Bind(std::move(db)).ok());

  const Relation hidden0 = *vt.HiddenRows();
  const Relation py0 = vt.database().Project(u.SetOf("Dept Mgr"));

  int applied = 0;
  for (int op = 0; op < 30; ++op) {
    const uint32_t e = static_cast<uint32_t>(rng.Below(emps + 4));
    const uint32_t d = static_cast<uint32_t>(rng.Below(3));
    Status st;
    switch (rng.Below(3)) {
      case 0:
        st = vt.Insert(Row({e, d}));
        break;
      case 1:
        st = vt.Delete(Row({e, d}));
        break;
      default: {
        const uint32_t e2 = static_cast<uint32_t>(rng.Below(emps + 4));
        st = vt.Replace(Row({e, d}), Row({e2, d}));
        break;
      }
    }
    if (st.ok()) ++applied;
    // Whatever happened, the invariants hold.
    ASSERT_TRUE(SatisfiesAll(vt.database(), sigma.fds));
    EXPECT_TRUE(vt.HiddenRows()->SameAs(hidden0)) << "op " << op;
    EXPECT_TRUE(vt.database()
                    .Project(u.SetOf("Dept Mgr"))
                    .SameAs(py0))
        << "op " << op;
    // Every visible row satisfies P.
    const Relation visible = *vt.ViewInstance();
    for (const Tuple& row : visible.rows()) {
      EXPECT_EQ(row[1], Value::Const(0));
    }
  }
  EXPECT_GT(applied, 0) << "no operation ever applied";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace relview
