# Compile-fail harness for the [[nodiscard]] guarantees on Status and
# Result<T>. Driven from the top-level CMakeLists as test
# `status_nodiscard_compile_fail`:
#
#   cmake -DCXX=<compiler> -DSRC_DIR=<repo>/src -DCASE_DIR=<this dir>
#         -P run_case.cmake
#
# control_ok.cc must compile (proves flags/includes are sane), and each
# discard_*.cc must be rejected — with unused-result in the diagnostics,
# so an unrelated compile error cannot masquerade as a pass.

set(FLAGS -std=c++20 -fsyntax-only -Werror=unused-result -I${SRC_DIR})

execute_process(
  COMMAND ${CXX} ${FLAGS} ${CASE_DIR}/control_ok.cc
  RESULT_VARIABLE control_rc
  ERROR_VARIABLE control_err)
if(NOT control_rc EQUAL 0)
  message(FATAL_ERROR
          "control_ok.cc failed to compile — harness broken:\n"
          "${control_err}")
endif()

foreach(case discard_status discard_result)
  execute_process(
    COMMAND ${CXX} ${FLAGS} ${CASE_DIR}/${case}.cc
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "${case}.cc compiled but must not: [[nodiscard]] is missing "
            "from Status/Result")
  endif()
  if(NOT err MATCHES "unused-result|nodiscard")
    message(FATAL_ERROR
            "${case}.cc failed for the wrong reason (expected an "
            "unused-result diagnostic):\n${err}")
  endif()
endforeach()

message(STATUS "nodiscard compile-fail cases behaved as expected")
