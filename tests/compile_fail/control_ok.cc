// Control case: consuming the Status/Result properly must compile, so a
// failure of the discard_*.cc cases is attributable to [[nodiscard]] and
// not to a broken include path or flag set.
#include "util/status.h"

namespace relview {
Status Fallible() { return Status::OK(); }
Result<int> FallibleValue() { return 7; }
}  // namespace relview

int main() {
  relview::Status st = relview::Fallible();
  relview::Result<int> r = relview::FallibleValue();
  return st.ok() && r.ok() ? 0 : 1;
}
