// Must NOT compile under -Werror=unused-result: Status is [[nodiscard]],
// so silently dropping a fallible call's outcome is a build error.
#include "util/status.h"

namespace relview {
Status Fallible() { return Status::Internal("boom"); }
}  // namespace relview

int main() {
  relview::Fallible();  // discarded Status — the whole point of this case
  return 0;
}
