// Must NOT compile under -Werror=unused-result: Result<T> is
// [[nodiscard]] — discarding one drops both the value and the error.
#include "util/status.h"

namespace relview {
Result<int> FallibleValue() { return 7; }
}  // namespace relview

int main() {
  relview::FallibleValue();  // discarded Result — must be rejected
  return 0;
}
