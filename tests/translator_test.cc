// Integration tests for the ViewTranslator facade: the paper's end-to-end
// scenario — declare a view and complement, bind a database, issue view
// updates, observe the unique constant-complement translations.

#include "view/translator.h"

#include <gtest/gtest.h>

#include "deps/satisfies.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Universe u = Universe::Parse("Emp Dept Mgr").value();
    DependencySet sigma;
    sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
    auto vt = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                     u.SetOf("Dept Mgr"));
    ASSERT_TRUE(vt.ok()) << vt.status().ToString();
    vt_ = std::make_unique<ViewTranslator>(std::move(*vt));

    Relation db(vt_->universe().All());
    db.AddRow(Row({1, 10, 100}));
    db.AddRow(Row({2, 10, 100}));
    db.AddRow(Row({3, 20, 200}));
    ASSERT_TRUE(vt_->Bind(std::move(db)).ok());
  }
  std::unique_ptr<ViewTranslator> vt_;
};

TEST_F(TranslatorTest, CreateRejectsNonComplementaryPair) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto bad = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                    u.SetOf("Mgr"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TranslatorTest, BindRejectsIllegalDatabase) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                   u.SetOf("Dept Mgr"));
  ASSERT_TRUE(vt.ok());
  Relation bad(u.All());
  bad.AddRow(Row({1, 10, 100}));
  bad.AddRow(Row({1, 20, 200}));  // Emp -> Dept violated
  EXPECT_FALSE(vt->Bind(std::move(bad)).ok());
}

TEST_F(TranslatorTest, GoodComplementDetected) {
  EXPECT_TRUE(vt_->complement_is_good());
}

TEST_F(TranslatorTest, InsertDeleteRoundTrip) {
  const Tuple t = Row({4, 10});
  ASSERT_TRUE(vt_->Insert(t).ok());
  EXPECT_TRUE(vt_->database().ContainsRow(Row({4, 10, 100})));
  auto view = vt_->ViewInstance();
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->ContainsRow(t));

  ASSERT_TRUE(vt_->Delete(t).ok());
  EXPECT_FALSE(vt_->database().ContainsRow(Row({4, 10, 100})));
  // Complement held constant throughout.
  EXPECT_TRUE(vt_->database().Project(vt_->complement()).ContainsRow(
      Row({10, 100})));
}

TEST_F(TranslatorTest, UntranslatableInsertIsRefusedAtomically) {
  const Relation before = vt_->database();
  Status st = vt_->Insert(Row({1, 20}));  // e1 moves dept: illegal
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  EXPECT_TRUE(vt_->database().SameAs(before));
}

TEST_F(TranslatorTest, UntranslatableDeleteIsRefused) {
  Status st = vt_->Delete(Row({3, 20}));  // last row of dept 20
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  EXPECT_TRUE(vt_->database().ContainsRow(Row({3, 20, 200})));
}

TEST_F(TranslatorTest, ReplaceMovesEmployeeAcrossDepts) {
  ASSERT_TRUE(vt_->Replace(Row({1, 10}), Row({1, 20})).ok());
  EXPECT_TRUE(vt_->database().ContainsRow(Row({1, 20, 200})));
  EXPECT_FALSE(vt_->database().ContainsRow(Row({1, 10, 100})));
  EXPECT_TRUE(SatisfiesAll(vt_->database(), vt_->sigma().fds));
}

TEST_F(TranslatorTest, SequenceOfUpdatesComposes) {
  // The morphism property in action: a chain of translatable updates
  // keeps view and complement in lock-step.
  const Relation initial_complement =
      vt_->database().Project(vt_->complement());
  ASSERT_TRUE(vt_->Insert(Row({4, 10})).ok());
  ASSERT_TRUE(vt_->Insert(Row({5, 20})).ok());
  ASSERT_TRUE(vt_->Delete(Row({2, 10})).ok());
  ASSERT_TRUE(vt_->Replace(Row({4, 10}), Row({4, 20})).ok());
  EXPECT_TRUE(
      vt_->database().Project(vt_->complement()).SameAs(initial_complement));
  auto view = vt_->ViewInstance();
  ASSERT_TRUE(view.ok());
  Relation expected(vt_->view());
  expected.AddRow(Row({1, 10}));
  expected.AddRow(Row({3, 20}));
  expected.AddRow(Row({5, 20}));
  expected.AddRow(Row({4, 20}));
  EXPECT_TRUE(view->SameAs(expected));
}

TEST_F(TranslatorTest, UnboundTranslatorRefusesUpdates) {
  Universe u = Universe::Parse("A B").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "A -> B");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("A"), u.SetOf("A B"));
  ASSERT_TRUE(vt.ok());
  EXPECT_FALSE(vt->CanInsert(Row({1})).ok());
}

}  // namespace
}  // namespace relview
