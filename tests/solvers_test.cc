// Tests for the DPLL SAT solver and the ∀∃ 2-QBF oracle.

#include "solvers/dpll.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace relview {
namespace {

Clause3 C(Lit a, Lit b, Lit c) { return Clause3{a, b, c}; }

TEST(DpllTest, TrivialSatAndUnsat) {
  CNF3 f;
  f.num_vars = 1;
  f.clauses.push_back(C(Lit(0, true), Lit(0, true), Lit(0, true)));
  EXPECT_TRUE(SolveSat(f).satisfiable);
  f.clauses.push_back(C(Lit(0, false), Lit(0, false), Lit(0, false)));
  EXPECT_FALSE(SolveSat(f).satisfiable);
}

TEST(DpllTest, ModelSatisfiesFormula) {
  Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    CNF3 f = CNF3::Random(6, 20, &rng);
    SatResult res = SolveSat(f);
    if (res.satisfiable) {
      EXPECT_TRUE(f.Eval(res.assignment)) << f.ToString();
    }
  }
}

TEST(DpllTest, AgreesWithBruteForce) {
  Rng rng(99);
  for (int trial = 0; trial < 80; ++trial) {
    const int n = 5;
    CNF3 f = CNF3::Random(n, 3 + static_cast<int>(rng.Below(20)), &rng);
    bool brute = false;
    for (uint32_t mask = 0; mask < (1u << n) && !brute; ++mask) {
      std::vector<bool> assign(n);
      for (int i = 0; i < n; ++i) assign[i] = (mask >> i) & 1;
      if (f.Eval(assign)) brute = true;
    }
    EXPECT_EQ(SolveSat(f).satisfiable, brute) << f.ToString();
  }
}

TEST(DpllTest, RespectsFixedAssignments) {
  // (x0 | x0 | x0): satisfiable, but not with x0 fixed false.
  CNF3 f;
  f.num_vars = 2;
  f.clauses.push_back(C(Lit(0, true), Lit(0, true), Lit(0, true)));
  EXPECT_TRUE(SolveSat(f, {{0, true}}).satisfiable);
  EXPECT_FALSE(SolveSat(f, {{0, false}}).satisfiable);
}

TEST(QbfTest, ForallExistsBruteAgreement) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 5;
    const int k = 2;  // universal prefix
    CNF3 f = CNF3::Random(n, 4 + static_cast<int>(rng.Below(12)), &rng);
    // Brute: for all 2^k prefixes, exists suffix.
    bool brute = true;
    for (uint32_t pmask = 0; pmask < (1u << k) && brute; ++pmask) {
      bool exists = false;
      for (uint32_t smask = 0; smask < (1u << (n - k)) && !exists;
           ++smask) {
        std::vector<bool> assign(n);
        for (int i = 0; i < k; ++i) assign[i] = (pmask >> i) & 1;
        for (int i = k; i < n; ++i) assign[i] = (smask >> (i - k)) & 1;
        if (f.Eval(assign)) exists = true;
      }
      if (!exists) brute = false;
    }
    EXPECT_EQ(ForallExistsSat(f, k), brute) << f.ToString();
  }
}

TEST(QbfTest, ZeroUniversalsIsPlainSat) {
  Rng rng(7);
  CNF3 f = CNF3::Random(4, 10, &rng);
  EXPECT_EQ(ForallExistsSat(f, 0), SolveSat(f).satisfiable);
}

TEST(CnfTest, RandomHasDistinctVarsPerClause) {
  Rng rng(1);
  CNF3 f = CNF3::Random(5, 30, &rng);
  for (const Clause3& c : f.clauses) {
    EXPECT_NE(c[0].var, c[1].var);
    EXPECT_NE(c[1].var, c[2].var);
    EXPECT_NE(c[0].var, c[2].var);
  }
}

}  // namespace
}  // namespace relview
