// Tests for the dictionary-encoded columnar store (column_store.h) and the
// InstanceStore facade (store.h): canonical-order maintenance, dictionary
// edge cases (code-space overflow, empty relations), the rvcols1
// serialization round trip with corruption cases, the vectorized FD
// violation scan, and row/columnar store equivalence on random workloads.

#include "relational/column_store.h"

#include <gtest/gtest.h>

#include <random>

#include "relational/store.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<Value> vals) {
  return Tuple(std::vector<Value>(vals));
}

Relation SmallRelation() {
  Relation r(AttrSet{0, 1, 2});
  r.AddRow(Row({Value::Const(3), Value::Null(1), Value::Const(7)}));
  r.AddRow(Row({Value::Const(1), Value::Const(5), Value::Null(0)}));
  r.AddRow(Row({Value::Const(3), Value::Const(5), Value::Const(7)}));
  r.Normalize();
  return r;
}

// ---------------------------------------------------------------------------
// Dictionary

TEST(DictionaryTest, InternIsIdempotentAndDense) {
  Dictionary d;
  ASSERT_EQ(*d.Intern(Value::Const(42)), 0u);
  ASSERT_EQ(*d.Intern(Value::Null(7)), 1u);
  ASSERT_EQ(*d.Intern(Value::Const(42)), 0u);  // already interned
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Decode(0), Value::Const(42));
  EXPECT_EQ(d.Decode(1), Value::Null(7));
  EXPECT_EQ(d.CodeOf(Value::Null(7)), 1);
  EXPECT_EQ(d.CodeOf(Value::Const(99)), -1);
}

TEST(DictionaryTest, OverflowGuardTripsPastCodeSpace) {
  Dictionary d;
  ASSERT_TRUE(d.Intern(Value::Const(1)).ok());
  d.set_next_code_for_test(Dictionary::kMaxCodes);
  Result<uint32_t> r = d.Intern(Value::Const(2));
  ASSERT_FALSE(r.ok());
  // Already-interned values still resolve after the guard trips.
  EXPECT_EQ(*d.Intern(Value::Const(1)), 0u);
}

TEST(DictionaryTest, FromPageRejectsDuplicates) {
  ASSERT_TRUE(Dictionary::FromPage({1, 2, 3}).ok());
  EXPECT_FALSE(Dictionary::FromPage({1, 2, 1}).ok());
  Result<Dictionary> d = Dictionary::FromPage({});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 0u);
}

// ---------------------------------------------------------------------------
// ColumnStore

TEST(ColumnStoreTest, FromRelationPreservesCells) {
  const Relation r = SmallRelation();
  Result<ColumnStore> cs = ColumnStore::FromRelation(r);
  ASSERT_TRUE(cs.ok());
  ASSERT_EQ(cs->size(), r.size());
  for (int i = 0; i < r.size(); ++i) {
    EXPECT_EQ(cs->RowAt(i), r.row(i)) << "row " << i;
    for (int c = 0; c < r.arity(); ++c) {
      EXPECT_EQ(cs->At(i, c), r.row(i)[c]);
      EXPECT_EQ(cs->RawAt(i, c), r.row(i)[c].raw());
    }
  }
  EXPECT_TRUE(cs->ToRelation().SameAs(r));
}

TEST(ColumnStoreTest, EmptyRelation) {
  Relation r(AttrSet{0, 1});
  Result<ColumnStore> cs = ColumnStore::FromRelation(r);
  ASSERT_TRUE(cs.ok());
  EXPECT_TRUE(cs->empty());
  EXPECT_EQ(cs->PositionOf(Row({Value::Const(1), Value::Const(2)})), -1);
  int a = -1, b = -1;
  EXPECT_FALSE(cs->FindFDViolation({0}, 1, &a, &b));
  // Round trip of the empty store.
  std::string blob;
  cs->EncodeTo(&blob);
  Result<ColumnStore> back = ColumnStore::Decode(r.schema(), blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0);
}

TEST(ColumnStoreTest, InsertMaintainsCanonicalOrder) {
  Relation seed(AttrSet{0, 1});
  Result<ColumnStore> cs = ColumnStore::FromRelation(seed);
  ASSERT_TRUE(cs.ok());
  // Insert out of order; positions must match the normalized relation's.
  std::vector<Tuple> tuples = {
      Row({Value::Const(5), Value::Const(1)}),
      Row({Value::Const(2), Value::Null(3)}),
      Row({Value::Const(2), Value::Const(9)}),
      Row({Value::Null(0), Value::Const(0)}),
  };
  Relation expect(AttrSet{0, 1});
  for (const Tuple& t : tuples) {
    ASSERT_TRUE(cs->InsertRow(t).ok());
    expect.AddRow(t);
  }
  expect.Normalize();
  ASSERT_EQ(cs->size(), expect.size());
  for (int i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(cs->RowAt(i), expect.row(i)) << "row " << i;
    EXPECT_EQ(cs->PositionOf(expect.row(i)), i);
  }
  // Erase the middle row; order is preserved.
  cs->EraseRow(1);
  EXPECT_EQ(cs->size(), expect.size() - 1);
  EXPECT_EQ(cs->PositionOf(expect.row(1)), -1);
  EXPECT_EQ(cs->RowAt(0), expect.row(0));
  EXPECT_EQ(cs->RowAt(1), expect.row(2));
}

TEST(ColumnStoreTest, AgreementHelpers) {
  const Relation r = SmallRelation();
  Result<ColumnStore> cs = ColumnStore::FromRelation(r);
  ASSERT_TRUE(cs.ok());
  // Rows sharing attr0=Const(3) (positions depend on canonical order).
  int i3 = -1, j3 = -1;
  for (int i = 0; i < cs->size(); ++i) {
    if (cs->At(i, 0) == Value::Const(3)) (i3 < 0 ? i3 : j3) = i;
  }
  ASSERT_GE(j3, 0);
  EXPECT_TRUE(cs->RowsAgreeOn(i3, j3, {0}));
  EXPECT_FALSE(cs->RowsAgreeOn(i3, j3, {0, 1}));
  EXPECT_TRUE(cs->RowAgrees(i3, r.row(static_cast<int>(j3)), {0}));
}

TEST(ColumnStoreTest, FindFDViolationMatchesNaiveScan) {
  std::mt19937 rng(13579);
  std::uniform_int_distribution<int> vdist(0, 3);
  for (int iter = 0; iter < 30; ++iter) {
    Relation r(AttrSet{0, 1, 2});
    for (int i = 0; i < 2 + iter % 10; ++i) {
      r.AddRow(Row({Value::Const(static_cast<uint32_t>(vdist(rng))),
                    Value::Const(static_cast<uint32_t>(vdist(rng))),
                    Value::Null(static_cast<uint32_t>(vdist(rng)))}));
    }
    r.Normalize();
    Result<ColumnStore> cs = ColumnStore::FromRelation(r);
    ASSERT_TRUE(cs.ok());
    const std::vector<int> lhs = {0, 1};
    const int rhs = 2;
    bool naive = false;
    for (int i = 0; i < r.size() && !naive; ++i) {
      for (int j = i + 1; j < r.size() && !naive; ++j) {
        if (r.row(i)[0] == r.row(j)[0] && r.row(i)[1] == r.row(j)[1] &&
            r.row(i)[2] != r.row(j)[2]) {
          naive = true;
        }
      }
    }
    int a = -1, b = -1;
    const bool found = cs->FindFDViolation(lhs, rhs, &a, &b);
    ASSERT_EQ(found, naive) << "iter " << iter;
    if (found) {
      // The reported pair must actually violate.
      EXPECT_TRUE(cs->RowsAgreeOn(a, b, lhs));
      EXPECT_NE(cs->At(a, rhs), cs->At(b, rhs));
    }
  }
}

TEST(ColumnStoreTest, EncodeDecodeRoundTrip) {
  const Relation r = SmallRelation();
  Result<ColumnStore> cs = ColumnStore::FromRelation(r);
  ASSERT_TRUE(cs.ok());
  std::string blob;
  cs->EncodeTo(&blob);
  Result<ColumnStore> back = ColumnStore::Decode(r.schema(), blob);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ToRelation().SameAs(r));
  // Dictionary pages survive verbatim.
  for (int c = 0; c < r.arity(); ++c) {
    EXPECT_EQ(back->dictionary(c).page(), cs->dictionary(c).page());
    EXPECT_EQ(back->codes(c), cs->codes(c));
  }
}

TEST(ColumnStoreTest, DecodeRejectsCorruptBlobs) {
  const Relation r = SmallRelation();
  Result<ColumnStore> cs = ColumnStore::FromRelation(r);
  ASSERT_TRUE(cs.ok());
  std::string blob;
  cs->EncodeTo(&blob);

  EXPECT_FALSE(ColumnStore::Decode(r.schema(), "bogus").ok());
  EXPECT_FALSE(ColumnStore::Decode(r.schema(), "").ok());
  // Wrong arity header.
  EXPECT_FALSE(ColumnStore::Decode(Schema(AttrSet{0, 1}), blob).ok());
  // Truncated body.
  EXPECT_FALSE(
      ColumnStore::Decode(r.schema(), blob.substr(0, blob.size() / 2)).ok());
  // Out-of-range code (dictionary has one entry, code says 1).
  const Schema two(AttrSet{0, 1});
  EXPECT_FALSE(
      ColumnStore::Decode(two, "rvcols1 2 1\n1 5\n0\n1 7\n1\n").ok());
  // Dictionary entry exceeding the 32-bit value space.
  EXPECT_FALSE(
      ColumnStore::Decode(two, "rvcols1 2 1\n1 99999999999\n0\n1 7\n0\n")
          .ok());
  // Duplicate value in a dictionary page.
  EXPECT_FALSE(
      ColumnStore::Decode(two, "rvcols1 2 1\n2 5 5\n0\n1 7\n0\n").ok());
}

TEST(ColumnStoreTest, ExhaustedDictionaryFailsInsert) {
  Relation seed(AttrSet{0, 1});
  seed.AddRow(Row({Value::Const(1), Value::Const(2)}));
  Result<ColumnStore> cs = ColumnStore::FromRelation(seed);
  ASSERT_TRUE(cs.ok());
  cs->ExhaustDictionariesForTest();
  // A row made of already-interned values still inserts...
  EXPECT_TRUE(cs->InsertRow(Row({Value::Const(1), Value::Const(2)})).ok());
  // ...but a fresh value trips the code-space guard.
  EXPECT_FALSE(cs->InsertRow(Row({Value::Const(3), Value::Const(2)})).ok());
}

// ---------------------------------------------------------------------------
// InstanceStore facade: the two implementations must agree move-for-move.

TEST(InstanceStoreTest, ParseAndName) {
  EXPECT_STREQ(StoreKindName(StoreKind::kRowHash), "row");
  EXPECT_STREQ(StoreKindName(StoreKind::kColumnar), "columnar");
  ASSERT_TRUE(ParseStoreKind("row").ok());
  ASSERT_TRUE(ParseStoreKind("columnar").ok());
  EXPECT_EQ(*ParseStoreKind("columnar"), StoreKind::kColumnar);
  EXPECT_FALSE(ParseStoreKind("rowhash").ok());
}

TEST(InstanceStoreTest, StoresAgreeOnRandomWorkload) {
  std::mt19937 rng(24680);
  std::uniform_int_distribution<int> vdist(0, 5);
  std::uniform_int_distribution<int> coin(0, 3);
  Relation seed(AttrSet{0, 1, 2});
  seed.AddRow(Row({Value::Const(0), Value::Const(1), Value::Const(2)}));
  seed.Normalize();

  std::unique_ptr<InstanceStore> row =
      MakeInstanceStore(StoreKind::kRowHash, seed);
  std::unique_ptr<InstanceStore> col =
      MakeInstanceStore(StoreKind::kColumnar, seed);
  ASSERT_EQ(row->kind(), StoreKind::kRowHash);
  ASSERT_EQ(col->kind(), StoreKind::kColumnar);

  auto random_tuple = [&] {
    return Row({Value::Const(static_cast<uint32_t>(vdist(rng))),
                coin(rng) == 0
                    ? Value::Null(static_cast<uint32_t>(vdist(rng)))
                    : Value::Const(static_cast<uint32_t>(vdist(rng))),
                Value::Const(static_cast<uint32_t>(vdist(rng)))});
  };

  const AttrSet on01{0, 1};
  for (int step = 0; step < 300; ++step) {
    const Tuple t = random_tuple();
    const int row_pos = row->PositionOf(t);
    ASSERT_EQ(row_pos, col->PositionOf(t)) << "step " << step;
    if (coin(rng) != 0 || row->size() == 0) {
      if (row_pos >= 0) continue;  // keep set semantics
      const int pi = row->InsertRow(t);
      const int pj = col->InsertRow(t);
      ASSERT_EQ(pi, pj) << "step " << step;
    } else {
      std::uniform_int_distribution<int> pick(0, row->size() - 1);
      const int victim = pick(rng);
      ASSERT_EQ(row->RowAt(victim), col->RowAt(victim));
      row->EraseAt(victim);
      col->EraseAt(victim);
    }
    ASSERT_EQ(row->size(), col->size());
    // Spot-check accessors and hashes on a random row.
    if (row->size() > 0) {
      std::uniform_int_distribution<int> pick(0, row->size() - 1);
      const int i = pick(rng);
      ASSERT_EQ(row->RowAt(i), col->RowAt(i)) << "step " << step;
      ASSERT_EQ(row->At(i, 1), col->At(i, 1));
      ASSERT_EQ(row->HashOn(i, on01), col->HashOn(i, on01))
          << "step " << step;
      ASSERT_EQ(row->Agrees(i, t, on01), col->Agrees(i, t, on01));
    }
  }
  EXPECT_TRUE(row->Materialize().SameAs(col->Materialize()));
  EXPECT_GT(col->MemoryBytes(), 0u);
  EXPECT_GT(row->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace relview
