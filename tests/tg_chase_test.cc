// Tests for the tuple-generating (FD + JD) instance chase.

#include "chase/tg_chase.h"

#include <gtest/gtest.h>

#include "deps/satisfies.h"
#include "util/rng.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<Value> vals) {
  return Tuple(std::vector<Value>(vals));
}
Value C(uint32_t v) { return Value::Const(v); }
Value N(uint32_t v) { return Value::Null(v); }

TEST(TGChaseTest, MVDGeneratesRecombinations) {
  // *[AB, AC] on {(a,b1,c1), (a,b2,c2)}: the chase must add (a,b1,c2)
  // and (a,b2,c1).
  Relation r(AttrSet{0, 1, 2});
  r.AddRow(Row({C(0), C(1), C(10)}));
  r.AddRow(Row({C(0), C(2), C(20)}));
  std::vector<JD> jds = {JD::MVD(AttrSet{0, 1}, AttrSet{0, 2})};
  TGChaseOutcome out = ChaseInstanceTG(r, FDSet(), jds);
  EXPECT_FALSE(out.conflict);
  EXPECT_FALSE(out.aborted);
  EXPECT_EQ(out.result.size(), 4);
  EXPECT_EQ(out.jd_rows_added, 2);
  EXPECT_TRUE(SatisfiesJD(out.result, jds[0]));
}

TEST(TGChaseTest, AlreadySatisfiedIsNoop) {
  Relation r(AttrSet{0, 1});
  r.AddRow(Row({C(0), C(1)}));
  std::vector<JD> jds = {JD::MVD(AttrSet{0}, AttrSet{1})};
  TGChaseOutcome out = ChaseInstanceTG(r, FDSet(), jds);
  EXPECT_EQ(out.jd_rows_added, 0);
  EXPECT_TRUE(out.result.SameAs(r));
}

TEST(TGChaseTest, FDAndJDInteract) {
  // JD recombination creates an FD violation that merges nulls: *[AB, AC]
  // plus B -> C; rows (a,b,c1-null), (a,b2,c2): recombination (a,b,c2)
  // agrees with row 1 on B, forcing the null to c2.
  Relation r(AttrSet{0, 1, 2});
  r.AddRow(Row({C(0), C(1), N(0)}));
  r.AddRow(Row({C(0), C(2), C(20)}));
  std::vector<JD> jds = {JD::MVD(AttrSet{0, 1}, AttrSet{0, 2})};
  FDSet fds;
  fds.Add(AttrSet{1}, 2);  // B -> C
  TGChaseOutcome out = ChaseInstanceTG(r, fds, jds);
  ASSERT_FALSE(out.conflict);
  EXPECT_EQ(out.Resolve(N(0)), C(20));
  EXPECT_TRUE(SatisfiesAll(out.result, fds));
  EXPECT_TRUE(SatisfiesJD(out.result, jds[0]));
}

TEST(TGChaseTest, ConflictThroughRecombination) {
  // As above but with a constant c1: the forced equality c1 = c2 is a
  // genuine contradiction — no completion satisfies both constraints.
  Relation r(AttrSet{0, 1, 2});
  r.AddRow(Row({C(0), C(1), C(10)}));
  r.AddRow(Row({C(0), C(2), C(20)}));
  std::vector<JD> jds = {JD::MVD(AttrSet{0, 1}, AttrSet{0, 2})};
  FDSet fds;
  fds.Add(AttrSet{1}, 2);  // B -> C
  TGChaseOutcome out = ChaseInstanceTG(r, fds, jds);
  EXPECT_TRUE(out.conflict);
}

TEST(TGChaseTest, TerminatesOnRandomInstances) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Relation r(AttrSet{0, 1, 2, 3});
    const int rows = 2 + static_cast<int>(rng.Below(6));
    uint32_t next_null = 0;
    for (int i = 0; i < rows; ++i) {
      Tuple t(4);
      for (int c = 0; c < 4; ++c) {
        t[c] = rng.Chance(0.3)
                   ? Value::Null(next_null++)
                   : Value::Const(static_cast<uint32_t>(c) * 10 +
                                  static_cast<uint32_t>(rng.Below(2)));
      }
      r.AddRow(std::move(t));
    }
    std::vector<JD> jds = {
        JD::MVD(AttrSet{0, 1}, AttrSet{0, 2, 3}),
        JD({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}})};
    FDSet fds;
    fds.Add(AttrSet{0}, 1);
    TGChaseOutcome out = ChaseInstanceTG(r, fds, jds);
    if (out.conflict || out.aborted) continue;
    EXPECT_TRUE(SatisfiesAll(out.result, fds));
    for (const JD& jd : jds) {
      EXPECT_TRUE(SatisfiesJD(out.result, jd)) << "trial " << trial;
    }
  }
}

TEST(TGChaseTest, RowBudgetAborts) {
  // A large product forced by an MVD over disjoint value sets.
  Relation r(AttrSet{0, 1, 2});
  for (uint32_t i = 0; i < 40; ++i) {
    r.AddRow(Row({C(0), C(100 + i), C(200 + i)}));
  }
  std::vector<JD> jds = {JD::MVD(AttrSet{0, 1}, AttrSet{0, 2})};
  TGChaseOptions opts;
  opts.max_rows = 100;  // 40x40 recombinations exceed this
  TGChaseOutcome out = ChaseInstanceTG(r, FDSet(), jds, opts);
  EXPECT_TRUE(out.aborted);
}

}  // namespace
}  // namespace relview
