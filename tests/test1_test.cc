// Tests for Test 1 (the fast, stronger insertion test): backend agreement
// and the paper's soundness hierarchy
//   Test1(two-tuple) accepts ⊆ Test1(indexed) accepts ⊆ exact accepts.

#include "view/test1.h"

#include <gtest/gtest.h>

#include "deps/instance_generator.h"
#include "util/rng.h"
#include "view/insertion.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

class Test1EmpDeptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = Universe::Parse("Emp Dept Mgr").value();
    fds_ = *FDSet::Parse(u_, "Emp -> Dept; Dept -> Mgr");
    x_ = u_.SetOf("Emp Dept");
    y_ = u_.SetOf("Dept Mgr");
    v_ = Relation(x_);
    v_.AddRow(Row({1, 10}));
    v_.AddRow(Row({2, 10}));
    v_.AddRow(Row({3, 20}));
  }
  Universe u_;
  FDSet fds_;
  AttrSet x_, y_;
  Relation v_{AttrSet()};
};

TEST_F(Test1EmpDeptTest, AcceptsEasyInsertion) {
  for (Test1Backend backend :
       {Test1Backend::kTwoTupleChase, Test1Backend::kClosure,
        Test1Backend::kIndexed}) {
    Test1Options opts{backend};
    auto rep = RunTest1(u_.All(), fds_, x_, y_, v_, Row({4, 10}), opts);
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep->accepted()) << static_cast<int>(backend);
  }
}

TEST_F(Test1EmpDeptTest, RejectsViewLevelViolation) {
  for (Test1Backend backend :
       {Test1Backend::kTwoTupleChase, Test1Backend::kClosure,
        Test1Backend::kIndexed}) {
    Test1Options opts{backend};
    auto rep = RunTest1(u_.All(), fds_, x_, y_, v_, Row({1, 20}), opts);
    ASSERT_TRUE(rep.ok());
    EXPECT_FALSE(rep->accepted()) << static_cast<int>(backend);
  }
}

TEST_F(Test1EmpDeptTest, PreambleVerdictsMatchExact) {
  for (const Tuple& t : {Row({1, 10}), Row({4, 90})}) {
    auto t1 = RunTest1(u_.All(), fds_, x_, y_, v_, t);
    auto exact = CheckInsertion(u_.All(), fds_, x_, y_, v_, t);
    ASSERT_TRUE(t1.ok() && exact.ok());
    EXPECT_EQ(t1->verdict, exact->verdict) << t.ToString();
  }
}

// The key documented behaviour: Test 1 may reject a translatable
// insertion. Construct one: the bridged scenario from the insertion tests
// needs a *three-row* derivation that two-tuple chases cannot see.
TEST(Test1StrictnessTest, RejectsATranslatableInsertionThroughBridges) {
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> C; B -> C");
  const AttrSet x = u.SetOf("A B");
  const AttrSet y = u.SetOf("B C");
  Relation v(x);
  v.AddRow(Row({1, 10}));  // (a1, b1)
  v.AddRow(Row({3, 10}));  // (a3, b1)
  v.AddRow(Row({3, 20}));  // (a3, b2)
  const Tuple t = Row({1, 20});
  // Exact: translatable (a3 bridges b1's and b2's hidden C-values).
  auto exact = CheckInsertion(u.All(), fds, x, y, v, t);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->verdict, TranslationVerdict::kTranslatable);
  // Test 1 (pairwise): the violator r=(a1,b1) and the only mu=(a3,b2):
  // their two-tuple chase cannot derive C-equality — rejected.
  auto pairwise = RunTest1(u.All(), fds, x, y, v, t,
                           {Test1Backend::kTwoTupleChase});
  ASSERT_TRUE(pairwise.ok());
  EXPECT_FALSE(pairwise->accepted());
  auto closure = RunTest1(u.All(), fds, x, y, v, t,
                          {Test1Backend::kClosure});
  ASSERT_TRUE(closure.ok());
  EXPECT_FALSE(closure->accepted());
}

TEST(Test1PropertyTest, BackendsAgreeAndSoundnessHolds) {
  Rng rng(20240601);
  Universe u = Universe::Anonymous(4);
  const AttrSet universe = u.All();
  int interesting = 0;
  for (int trial = 0; trial < 300; ++trial) {
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.35)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(4)));
    }
    AttrSet x;
    do {
      x = AttrSet();
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.6)) x.Add(a);
      });
    } while (x.Empty() || x == universe);
    AttrSet y = universe - x;
    x.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) y.Add(a);
    });
    if (rng.Chance(0.6)) {
      (universe - x).ForEach([&](AttrId a) { fds.Add(x & y, a); });
    }
    Relation db(universe);
    const Schema& ds = db.schema();
    for (int i = 0; i < 5; ++i) {
      Tuple row(ds.arity());
      for (int p = 0; p < ds.arity(); ++p) {
        row[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
      }
      db.AddRow(row);
    }
    RepairToLegal(&db, fds);
    Relation v = db.Project(x);
    if (v.empty()) continue;
    const Schema vs(x);
    Tuple t(vs.arity());
    for (int p = 0; p < vs.arity(); ++p) {
      t[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
    }
    if (rng.Chance(0.8)) {
      const Tuple& base = v.row(static_cast<int>(rng.Below(v.size())));
      (x & y).ForEach([&](AttrId a) { t.Set(vs, a, base.At(vs, a)); });
    }

    auto chase_rep = RunTest1(u.All(), fds, x, y, v, t,
                              {Test1Backend::kTwoTupleChase});
    auto closure_rep =
        RunTest1(u.All(), fds, x, y, v, t, {Test1Backend::kClosure});
    auto indexed_rep =
        RunTest1(u.All(), fds, x, y, v, t, {Test1Backend::kIndexed});
    auto exact_rep = CheckInsertion(u.All(), fds, x, y, v, t);
    ASSERT_TRUE(chase_rep.ok() && closure_rep.ok() && indexed_rep.ok() &&
                exact_rep.ok());

    // Two-tuple chase and closure are the same mathematics.
    EXPECT_EQ(chase_rep->verdict, closure_rep->verdict)
        << "trial " << trial << " fds=" << fds.ToString();
    // Indexed accumulates across mus: accepts at least what pairwise does.
    if (chase_rep->accepted()) {
      EXPECT_TRUE(indexed_rep->accepted())
          << "trial " << trial << " fds=" << fds.ToString();
    }
    // Soundness: any Test-1 acceptance implies exact acceptance.
    if (indexed_rep->accepted()) {
      EXPECT_TRUE(exact_rep->translatable())
          << "trial " << trial << " fds=" << fds.ToString()
          << " X=" << x.ToString() << " Y=" << y.ToString()
          << " t=" << t.ToString() << "\nV:\n" << v.ToString();
    }
    if (exact_rep->verdict == TranslationVerdict::kTranslatable ||
        exact_rep->verdict == TranslationVerdict::kFailsChase) {
      ++interesting;
    }
  }
  EXPECT_GT(interesting, 30);
}

}  // namespace
}  // namespace relview
