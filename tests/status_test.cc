// Edge-case coverage for util/status.h: move-only payloads through
// Result<T>, code <-> string round-trips for the full StatusCode taxonomy,
// batch-index payload plumbing, value_or semantics, and static guarantees
// ([[nodiscard]] presence; the runtime discard cases live in
// tests/compile_fail/).

#include "util/status.h"

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace relview {
namespace {

// -- Static guarantees ------------------------------------------------------

// [[nodiscard]] participates in the type's attribute list, not the type
// identity, so it cannot be introspected directly; the compile-fail cases
// prove the discard behavior. What we can pin down statically: the types
// stay cheap and sane to pass around.
static_assert(std::is_copy_constructible_v<Status>);
static_assert(std::is_move_constructible_v<Status>);
static_assert(std::is_copy_constructible_v<Result<int>>);
static_assert(std::is_move_constructible_v<Result<int>>);
// Move-only payloads must be representable (copy disabled, move enabled).
static_assert(!std::is_copy_constructible_v<Result<std::unique_ptr<int>>>);
static_assert(std::is_move_constructible_v<Result<std::unique_ptr<int>>>);

TEST(StatusCodeTest, NameRoundTripCoversEveryCode) {
  // Every real code renders to a unique, non-empty, non-"Unknown" name.
  std::vector<std::string> names;
  for (int c = 0; c < static_cast<int>(StatusCode::kNumStatusCodes); ++c) {
    const char* name = StatusCodeName(static_cast<StatusCode>(c));
    ASSERT_NE(name, nullptr) << "code " << c;
    const std::string s(name);
    EXPECT_FALSE(s.empty()) << "code " << c;
    for (const std::string& prev : names) {
      EXPECT_NE(s, prev) << "duplicate name for code " << c;
    }
    names.push_back(s);
  }
}

TEST(StatusCodeTest, CorruptionAndUntranslatableNames) {
  // The two codes external tooling greps for (docs/OPERATIONS.md and the
  // paper's rejection outcome) are load-bearing strings.
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUntranslatable),
               "Untranslatable");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::FailedPrecondition("c"), StatusCode::kFailedPrecondition},
      {Status::Untranslatable("d"), StatusCode::kUntranslatable},
      {Status::CapacityExceeded("e"), StatusCode::kCapacityExceeded},
      {Status::Internal("f"), StatusCode::kInternal},
      {Status::Corruption("g"), StatusCode::kCorruption},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    const std::string rendered = c.status.ToString();
    EXPECT_NE(rendered.find(StatusCodeName(c.code)), std::string::npos)
        << rendered;
    EXPECT_NE(rendered.find(c.status.message()), std::string::npos)
        << rendered;
  }
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "Ok");
}

TEST(StatusTest, BatchIndexPayload) {
  Status plain = Status::Internal("x");
  EXPECT_EQ(plain.batch_index(), -1);
  Status tagged = Status::Internal("x").WithBatchIndex(3);
  EXPECT_EQ(tagged.batch_index(), 3);
  // Lvalue overload mutates in place and returns a reference.
  Status st = Status::Untranslatable("y");
  st.WithBatchIndex(7);
  EXPECT_EQ(st.batch_index(), 7);
}

// -- Result<T> with move-only payloads --------------------------------------

TEST(ResultTest, MoveOnlyValueRoundTrip) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(42));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 42);
  std::unique_ptr<int> extracted = std::move(r).value();
  ASSERT_NE(extracted, nullptr);
  EXPECT_EQ(*extracted, 42);
}

TEST(ResultTest, MoveOnlyErrorCarriesStatus) {
  Result<std::unique_ptr<int>> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, AssignOrReturnUnwrapsMoveOnly) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(9);
  };
  auto consume = [&]() -> Status {
    RELVIEW_ASSIGN_OR_RETURN(std::unique_ptr<int> p, make());
    return *p == 9 ? Status::OK() : Status::Internal("wrong value");
  };
  EXPECT_TRUE(consume().ok());
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fail = []() -> Result<std::unique_ptr<int>> {
    return Status::Corruption("torn");
  };
  auto consume = [&]() -> Status {
    RELVIEW_ASSIGN_OR_RETURN(std::unique_ptr<int> p, fail());
    (void)p;
    return Status::OK();
  };
  Status st = consume();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(st.message(), "torn");
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> err(Status::Internal("nope"));
  EXPECT_EQ(err.value_or(5), 5);
  Result<int> fine(11);
  EXPECT_EQ(fine.value_or(5), 11);
}

TEST(ResultTest, StatusOfSuccessIsOk) {
  Result<int> fine(1);
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(fine.status().ok());
}

}  // namespace
}  // namespace relview
