// UpdateService tests: snapshot versioning and immutability, single-update
// and batch semantics (all-or-nothing with failure attribution), journal
// recovery on Create, and metrics accounting.

#include "service/update_service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

ViewTranslator MakeTranslator() {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                   u.SetOf("Dept Mgr"));
  EXPECT_TRUE(vt.ok()) << vt.status().ToString();
  Relation db(vt->universe().All());
  db.AddRow(Row({1, 10, 100}));
  db.AddRow(Row({2, 10, 100}));
  db.AddRow(Row({3, 20, 200}));
  EXPECT_TRUE(vt->Bind(std::move(db)).ok());
  return std::move(*vt);
}

std::unique_ptr<UpdateService> MakeService(ServiceOptions options = {}) {
  auto service = UpdateService::Create(MakeTranslator(), options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

TEST(UpdateServiceTest, CreateRequiresBoundTranslator) {
  Universe u = Universe::Parse("A B").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "A -> B");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("A B"), u.SetOf("B"));
  ASSERT_TRUE(vt.ok());
  auto service = UpdateService::Create(std::move(*vt));
  EXPECT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
}

TEST(UpdateServiceTest, SeedSnapshotIsVersionZero) {
  auto service = MakeService();
  ViewSnapshot snap = service->Snapshot();
  EXPECT_EQ(snap.version, 0u);
  EXPECT_EQ(snap.database->size(), 3);
  EXPECT_EQ(snap.view->size(), 3);
  EXPECT_TRUE(snap.view->ContainsRow(Row({1, 10})));
}

TEST(UpdateServiceTest, ApplyAdvancesVersionAndPreservesOldSnapshots) {
  auto service = MakeService();
  ViewSnapshot before = service->Snapshot();
  ASSERT_TRUE(service->Apply(ViewUpdate::Insert(Row({4, 10}))).ok());
  EXPECT_EQ(service->version(), 1u);
  ViewSnapshot after = service->Snapshot();
  EXPECT_EQ(after.version, 1u);
  EXPECT_TRUE(after.view->ContainsRow(Row({4, 10})));
  EXPECT_TRUE(after.database->ContainsRow(Row({4, 10, 100})));
  // The old snapshot is immutable: it still shows the pre-update world.
  EXPECT_EQ(before.version, 0u);
  EXPECT_FALSE(before.view->ContainsRow(Row({4, 10})));
}

TEST(UpdateServiceTest, RejectedUpdateLeavesStateUntouched) {
  auto service = MakeService();
  Status st = service->Apply(ViewUpdate::Insert(Row({1, 20})));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  EXPECT_EQ(service->version(), 0u);
  EXPECT_EQ(service->Snapshot().view->size(), 3);
}

TEST(UpdateServiceTest, BatchCommitsAtomicallyAsOneVersion) {
  auto service = MakeService();
  BatchResult r = service->ApplyBatch({
      ViewUpdate::Insert(Row({4, 10})),
      ViewUpdate::Insert(Row({5, 20})),
      ViewUpdate::Delete(Row({2, 10})),
      ViewUpdate::Replace(Row({4, 10}), Row({4, 20})),
  });
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.failed_index, -1);
  EXPECT_EQ(service->version(), 1u);  // one version per batch, not four
  ViewSnapshot snap = service->Snapshot();
  EXPECT_TRUE(snap.view->ContainsRow(Row({4, 20})));
  EXPECT_TRUE(snap.view->ContainsRow(Row({5, 20})));
  EXPECT_FALSE(snap.view->ContainsRow(Row({2, 10})));
}

TEST(UpdateServiceTest, BatchRollsBackOnFirstRejection) {
  auto service = MakeService();
  BatchResult r = service->ApplyBatch({
      ViewUpdate::Insert(Row({4, 10})),   // fine alone
      ViewUpdate::Insert(Row({1, 20})),   // untranslatable: emp 1 moves
      ViewUpdate::Delete(Row({1, 10})),   // never reached
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kUntranslatable);
  EXPECT_EQ(r.failed_index, 1);
  EXPECT_FALSE(r.detail.empty());
  // All-or-nothing: even the valid first update is rolled back.
  EXPECT_EQ(service->version(), 0u);
  EXPECT_FALSE(service->Snapshot().view->ContainsRow(Row({4, 10})));
  EXPECT_EQ(service->metrics().batches_rolled_back(), 1u);
}

TEST(UpdateServiceTest, BatchSeesItsOwnEarlierUpdates) {
  auto service = MakeService();
  // Deleting both dept-10 employees one by one: the second deletion is
  // checked against the view *after* the first, where it is the last
  // dept-10 row and must be refused (condition (a) of Theorem 8).
  BatchResult r = service->ApplyBatch({
      ViewUpdate::Delete(Row({1, 10})),
      ViewUpdate::Delete(Row({2, 10})),
  });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.failed_index, 1);
  EXPECT_EQ(service->version(), 0u);
}

TEST(UpdateServiceTest, EmptyBatchIsANoOp) {
  auto service = MakeService();
  BatchResult r = service->ApplyBatch({});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(service->version(), 0u);
  EXPECT_EQ(service->metrics().batches_committed(), 0u);
}

TEST(UpdateServiceTest, InvalidArgumentRejectionsAreReportedPerCode) {
  auto service = MakeService();
  // Replace with t2 already in the view degenerates (see replacement.h).
  BatchResult r = service->ApplyBatch(
      {ViewUpdate::Replace(Row({1, 10}), Row({2, 10}))});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service->metrics().rejected_by_code(StatusCode::kInvalidArgument), 1u);
}

TEST(UpdateServiceTest, MetricsCountAcceptedAndRejectedPerKind) {
  auto service = MakeService();
  ASSERT_TRUE(service->Apply(ViewUpdate::Insert(Row({4, 10}))).ok());
  ASSERT_TRUE(service->Apply(ViewUpdate::Delete(Row({4, 10}))).ok());
  ASSERT_TRUE(
      service->Apply(ViewUpdate::Replace(Row({1, 10}), Row({1, 20}))).ok());
  EXPECT_FALSE(service->Apply(ViewUpdate::Insert(Row({2, 20}))).ok());

  const ServiceMetrics& m = service->metrics();
  EXPECT_EQ(m.accepted(UpdateKind::kInsert), 1u);
  EXPECT_EQ(m.accepted(UpdateKind::kDelete), 1u);
  EXPECT_EQ(m.accepted(UpdateKind::kReplace), 1u);
  EXPECT_EQ(m.rejected(UpdateKind::kInsert), 1u);
  EXPECT_EQ(m.rejected_by_code(StatusCode::kUntranslatable), 1u);
  EXPECT_EQ(m.total_accepted(), 3u);
  EXPECT_EQ(m.total_rejected(), 1u);
  EXPECT_EQ(m.check_latency().count(), 4u);
  EXPECT_GT(m.check_latency().mean_nanos(), 0.0);
  // Identity-free updates all hit the apply phase.
  EXPECT_EQ(m.apply_latency().count(), 3u);

  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"accepted_insert\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rejected_code_Untranslatable\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"check_latency\":{"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be single-line";
}

TEST(UpdateServiceTest, JournaledServiceRecoversStateOnRestart) {
  const std::string path = ::testing::TempDir() + "service_recover.log";
  std::remove(path.c_str());
  ServiceOptions options;
  options.journal_path = path;
  {
    auto service = MakeService(options);
    ASSERT_TRUE(service->Apply(ViewUpdate::Insert(Row({4, 10}))).ok());
    ASSERT_TRUE(service
                    ->ApplyBatch({ViewUpdate::Insert(Row({5, 20})),
                                  ViewUpdate::Delete(Row({2, 10}))})
                    .ok());
  }
  // "Kill" and restart from the seed: the journal replays to the exact
  // pre-kill relation.
  auto reborn = MakeService(options);
  EXPECT_EQ(reborn->replayed_updates(), 3u);
  ViewSnapshot snap = reborn->Snapshot();
  EXPECT_TRUE(snap.view->ContainsRow(Row({4, 10})));
  EXPECT_TRUE(snap.view->ContainsRow(Row({5, 20})));
  EXPECT_FALSE(snap.view->ContainsRow(Row({2, 10})));
  EXPECT_EQ(snap.database->size(), 4);
  // And the revived service keeps journaling.
  ASSERT_TRUE(reborn->Apply(ViewUpdate::Delete(Row({5, 20}))).ok());
  auto third = MakeService(options);
  EXPECT_EQ(third->replayed_updates(), 4u);
  EXPECT_FALSE(third->Snapshot().view->ContainsRow(Row({5, 20})));
  std::remove(path.c_str());
}

TEST(UpdateServiceTest, RejectedBatchIsNotJournaled) {
  const std::string path = ::testing::TempDir() + "service_no_journal.log";
  std::remove(path.c_str());
  ServiceOptions options;
  options.journal_path = path;
  {
    auto service = MakeService(options);
    EXPECT_FALSE(service
                     ->ApplyBatch({ViewUpdate::Insert(Row({4, 10})),
                                   ViewUpdate::Insert(Row({1, 20}))})
                     .ok());
  }
  auto reborn = MakeService(options);
  EXPECT_EQ(reborn->replayed_updates(), 0u);
  EXPECT_EQ(reborn->Snapshot().view->size(), 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace relview
