// Unit tests for FD parsing and the FDSet machinery (closure, implication,
// superkeys, minimal cover, exact projection).

#include "deps/fd_set.h"

#include <gtest/gtest.h>

namespace relview {
namespace {

class FDSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto u = Universe::Parse("A B C D E");
    ASSERT_TRUE(u.ok());
    u_ = *u;
  }
  Universe u_;
};

TEST_F(FDSetTest, ParseSplitsRightSides) {
  auto fds = FDSet::Parse(u_, "A -> B C; B C -> D");
  ASSERT_TRUE(fds.ok());
  EXPECT_EQ(fds->size(), 3);  // A->B, A->C, BC->D
}

TEST_F(FDSetTest, ParseRejectsGarbage) {
  EXPECT_FALSE(FDSet::Parse(u_, "A B C").ok());
  EXPECT_FALSE(FDSet::Parse(u_, "A -> ").ok());
  EXPECT_FALSE(FDSet::Parse(u_, "A -> Z").ok());
}

TEST_F(FDSetTest, ClosureTransitive) {
  auto fds = *FDSet::Parse(u_, "A -> B; B -> C; C -> D");
  const AttrSet closure = fds.Closure(u_.SetOf("A"));
  EXPECT_EQ(closure, u_.SetOf("A B C D"));
  EXPECT_FALSE(closure.Contains(u_["E"]));
}

TEST_F(FDSetTest, ClosureNeedsWholeLeftSide) {
  auto fds = *FDSet::Parse(u_, "A B -> C");
  EXPECT_FALSE(fds.Closure(u_.SetOf("A")).Contains(u_["C"]));
  EXPECT_TRUE(fds.Closure(u_.SetOf("A B")).Contains(u_["C"]));
}

TEST_F(FDSetTest, ImpliesAugmentation) {
  auto fds = *FDSet::Parse(u_, "A -> B");
  EXPECT_TRUE(fds.Implies(u_.SetOf("A C"), u_.SetOf("B C")));
  EXPECT_FALSE(fds.Implies(u_.SetOf("B"), u_.SetOf("A")));
}

TEST_F(FDSetTest, SuperkeyDetection) {
  // Employee -> Dept, Dept -> Mgr: Employee is a key of the whole schema
  // restricted to {A,B,C}.
  auto fds = *FDSet::Parse(u_, "A -> B; B -> C");
  EXPECT_TRUE(fds.IsSuperkey(u_.SetOf("A"), u_.SetOf("A B C")));
  EXPECT_FALSE(fds.IsSuperkey(u_.SetOf("B"), u_.SetOf("A B C")));
}

TEST_F(FDSetTest, MinimalCoverRemovesRedundantFDs) {
  auto fds = *FDSet::Parse(u_, "A -> B; B -> C; A -> C");
  FDSet cover = fds.MinimalCover();
  EXPECT_EQ(cover.size(), 2);
  // The cover is equivalent to the original.
  for (const FD& fd : fds.fds()) EXPECT_TRUE(cover.Implies(fd));
  for (const FD& fd : cover.fds()) EXPECT_TRUE(fds.Implies(fd));
}

TEST_F(FDSetTest, MinimalCoverReducesLeftSides) {
  auto fds = *FDSet::Parse(u_, "A -> B; A C -> B");
  FDSet cover = fds.MinimalCover();
  ASSERT_EQ(cover.size(), 1);
  EXPECT_EQ(cover.fds()[0].lhs, u_.SetOf("A"));
  EXPECT_EQ(cover.fds()[0].rhs, u_["B"]);
}

TEST_F(FDSetTest, MinimalCoverDropsTrivial) {
  FDSet fds;
  fds.Add(u_.SetOf("A B"), u_["A"]);
  EXPECT_EQ(fds.MinimalCover().size(), 0);
}

TEST_F(FDSetTest, ShrinkToKeyFindsMinimalKey) {
  auto fds = *FDSet::Parse(u_, "A -> B; A -> C; A -> D; A -> E");
  AttrSet key = fds.ShrinkToKey(u_.All(), u_.All());
  EXPECT_EQ(key, u_.SetOf("A"));
}

TEST_F(FDSetTest, ProjectExactFindsTransitiveFDs) {
  // A -> B, B -> C; projecting out B must retain A -> C.
  auto fds = *FDSet::Parse(u_, "A -> B; B -> C");
  FDSet proj = fds.ProjectExact(u_.SetOf("A C"));
  EXPECT_TRUE(proj.Implies(FD(u_.SetOf("A"), u_["C"])));
  EXPECT_FALSE(proj.Implies(FD(u_.SetOf("C"), u_["A"])));
}

TEST_F(FDSetTest, EmptySetClosureIsIdentity) {
  FDSet fds;
  EXPECT_EQ(fds.Closure(u_.SetOf("A C")), u_.SetOf("A C"));
}

TEST_F(FDSetTest, EmptyLhsFDAppliesEverywhere) {
  // {} -> A: A is constant across the relation; closure of anything
  // contains A.
  FDSet fds;
  fds.Add(AttrSet(), u_["A"]);
  EXPECT_TRUE(fds.Closure(AttrSet()).Contains(u_["A"]));
  EXPECT_TRUE(fds.Closure(u_.SetOf("B")).Contains(u_["A"]));
}

TEST_F(FDSetTest, ToStringRoundTripsNames) {
  auto fds = *FDSet::Parse(u_, "A B -> C");
  EXPECT_EQ(fds.ToString(&u_), "A B -> C");
}

}  // namespace
}  // namespace relview
