// Tests for Theorem 3: translatability of insertions.
//
// Validation strategy (both directions of the theorem):
//  * acceptance soundness — when CheckInsertion says translatable, every
//    legal database over a small enumerated domain that projects onto V
//    stays legal after T_u (brute-force sweep);
//  * rejection soundness — when CheckInsertion reports a chase
//    counterexample, we *reconstruct* the counterexample database from the
//    chase fixpoint (instantiating nulls with fresh constants) and verify
//    it is legal, projects onto V, and makes T_u illegal.

#include "view/insertion.h"

#include <gtest/gtest.h>

#include "chase/instance_chase.h"
#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "util/rng.h"
#include "view/generic_instance.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

class EmpDeptMgrInsertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = Universe::Parse("Emp Dept Mgr").value();
    fds_ = *FDSet::Parse(u_, "Emp -> Dept; Dept -> Mgr");
    x_ = u_.SetOf("Emp Dept");
    y_ = u_.SetOf("Dept Mgr");
    // View ED: {(e1, d1), (e2, d1), (e3, d2)}.
    v_ = Relation(x_);
    v_.AddRow(Row({1, 10}));
    v_.AddRow(Row({2, 10}));
    v_.AddRow(Row({3, 20}));
  }
  Universe u_;
  FDSet fds_;
  AttrSet x_, y_;
  Relation v_{AttrSet()};
};

TEST_F(EmpDeptMgrInsertTest, InsertNewEmployeeIntoExistingDept) {
  // (e4, d1): the complement (Dept, Mgr) has d1's manager; translatable.
  auto rep = CheckInsertion(u_.All(), fds_, x_, y_, v_, Row({4, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kTranslatable);
}

TEST_F(EmpDeptMgrInsertTest, InsertIntoUnknownDeptFailsConditionA) {
  // (e4, d9): d9 has no complement row; would need to invent a manager.
  auto rep = CheckInsertion(u_.All(), fds_, x_, y_, v_, Row({4, 90}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsComplementMembership);
}

TEST_F(EmpDeptMgrInsertTest, MovingEmployeeViolatesEmpFD) {
  // (e1, d2): e1 already maps to d1; V ∪ t violates Emp -> Dept. The FD
  // Emp -> Dept has Z = Emp ⊆ X, A = Dept ∈ X, and row (e1, d1) agrees
  // with t on Z but differs on A: condition (c) must reject.
  auto rep = CheckInsertion(u_.All(), fds_, x_, y_, v_, Row({1, 20}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsChase);
  EXPECT_EQ(rep->violated_fd.rhs, u_["Dept"]);
  EXPECT_EQ(rep->witness_row, 0);
}

TEST_F(EmpDeptMgrInsertTest, ExistingTupleIsIdentity) {
  auto rep = CheckInsertion(u_.All(), fds_, x_, y_, v_, Row({1, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kIdentity);
}

TEST_F(EmpDeptMgrInsertTest, ViewEqualsKeyFailsConditionB) {
  // X = ED, Y = EM: X∩Y = E is a superkey of X. Inserting (e1, d2) —
  // whose common part E=e1 exists in V — must fail condition (b): V ∪ t
  // cannot be the projection of a legal instance (Emp -> Dept breaks).
  auto rep = CheckInsertion(u_.All(), fds_, x_, u_.SetOf("Emp Mgr"), v_,
                            Row({1, 20}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsCommonPartKeyOfX);
  // A fresh common part fails condition (a) before (b) is consulted.
  auto rep2 = CheckInsertion(u_.All(), fds_, x_, u_.SetOf("Emp Mgr"), v_,
                             Row({4, 10}));
  ASSERT_TRUE(rep2.ok());
  EXPECT_EQ(rep2->verdict, TranslationVerdict::kFailsComplementMembership);
}

TEST_F(EmpDeptMgrInsertTest, ShortcutAndScratchAgree) {
  InsertionOptions scratch;
  scratch.reuse_base_chase = false;
  for (const Tuple& t :
       {Row({4, 10}), Row({4, 90}), Row({1, 20}), Row({2, 20})}) {
    auto fast = CheckInsertion(u_.All(), fds_, x_, y_, v_, t);
    auto slow = CheckInsertion(u_.All(), fds_, x_, y_, v_, t, scratch);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_EQ(fast->verdict, slow->verdict) << t.ToString();
  }
}

TEST_F(EmpDeptMgrInsertTest, SortBackendAgrees) {
  InsertionOptions sort_opts;
  sort_opts.backend = ChaseBackend::kSort;
  for (const Tuple& t : {Row({4, 10}), Row({1, 20})}) {
    auto hash_rep = CheckInsertion(u_.All(), fds_, x_, y_, v_, t);
    auto sort_rep =
        CheckInsertion(u_.All(), fds_, x_, y_, v_, t, sort_opts);
    ASSERT_TRUE(hash_rep.ok() && sort_rep.ok());
    EXPECT_EQ(hash_rep->verdict, sort_rep->verdict) << t.ToString();
  }
}

TEST_F(EmpDeptMgrInsertTest, ApplyInsertionJoinsComplement) {
  Relation db(u_.All());
  db.AddRow(Row({1, 10, 100}));
  db.AddRow(Row({2, 10, 100}));
  db.AddRow(Row({3, 20, 200}));
  auto updated = ApplyInsertion(u_.All(), x_, y_, db, Row({4, 10}));
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->size(), 4);
  EXPECT_TRUE(updated->ContainsRow(Row({4, 10, 100})));
  EXPECT_TRUE(SatisfiesAll(*updated, fds_));
  // And the view sees exactly V ∪ t (consistency, fact (i)).
  Relation expected_view = v_;
  expected_view.AddRow(Row({4, 10}));
  expected_view.Normalize();
  EXPECT_TRUE(updated->Project(x_).SameAs(expected_view));
}

TEST_F(EmpDeptMgrInsertTest, RejectsMalformedArguments) {
  // Bad complement (does not cover U).
  EXPECT_FALSE(
      CheckInsertion(u_.All(), fds_, x_, u_.SetOf("Dept"), v_, Row({4, 10}))
          .ok());
  // Wrong arity.
  EXPECT_FALSE(CheckInsertion(u_.All(), fds_, x_, y_, v_, Row({4})).ok());
  // Null in tuple.
  Tuple bad(std::vector<Value>{Value::Const(1), Value::Null(0)});
  EXPECT_FALSE(CheckInsertion(u_.All(), fds_, x_, y_, v_, bad).ok());
}

// A case where condition (c) must look at the complement columns: the
// violation is only visible through the chase.
TEST(InsertChaseTest, ComplementSideViolationDetected) {
  // U = {A, B, C}, Sigma = {A -> C, B -> C}, X = AB, Y = BC (a valid
  // complement: X∩Y = B -> C). V = {(a1, b1), (a2, b2)}.
  // Insert (a1, b2): the inserted database row borrows b2's hidden
  // C-value, owned by a2's row; A -> C demands it equal a1's existing
  // C-value, but a legal R may give the two rows different C's — the
  // chase must detect that the equality is NOT forced and reject.
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> C; B -> C");
  const AttrSet x = u.SetOf("A B");
  const AttrSet y = u.SetOf("B C");
  Relation v(x);
  v.AddRow(Row({1, 10}));  // (a1, b1)
  v.AddRow(Row({2, 20}));  // (a2, b2)
  auto rep = CheckInsertion(u.All(), fds, x, y, v, Row({1, 20}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsChase);
  EXPECT_EQ(rep->violated_fd.rhs, u["C"]);

  // With a bridging row: (a3, b1), (a3, b2) chain b1's and b2's hidden
  // C-values equal in every legal R, so the insertion becomes
  // translatable.
  Relation v2(x);
  v2.AddRow(Row({1, 10}));  // (a1, b1)
  v2.AddRow(Row({3, 10}));  // (a3, b1)
  v2.AddRow(Row({3, 20}));  // (a3, b2)
  auto rep2 = CheckInsertion(u.All(), fds, x, y, v2, Row({1, 20}));
  ASSERT_TRUE(rep2.ok());
  EXPECT_EQ(rep2->verdict, TranslationVerdict::kTranslatable);

  // Alternatively {} -> C (one possible C value) also forces equality.
  FDSet forced = fds;
  forced.Add(AttrSet(), u["C"]);
  auto rep3 = CheckInsertion(u.All(), forced, x, y, v, Row({1, 20}));
  ASSERT_TRUE(rep3.ok());
  EXPECT_EQ(rep3->verdict, TranslationVerdict::kTranslatable);
}

// ---------- randomized dual validation ----------

struct RandomCase {
  Universe u;
  FDSet fds;
  AttrSet x, y;
  Relation v{AttrSet()};
  Tuple t;
};

RandomCase MakeRandomCase(Rng* rng) {
  RandomCase c;
  c.u = Universe::Anonymous(4);
  const AttrSet universe = c.u.All();
  const int nfd = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < nfd; ++i) {
    AttrSet lhs;
    universe.ForEach([&](AttrId a) {
      if (rng->Chance(0.35)) lhs.Add(a);
    });
    c.fds.Add(lhs, static_cast<AttrId>(rng->Below(4)));
  }
  // X random nonempty proper-ish subset; Y = (U − X) ∪ random W ⊆ X.
  do {
    c.x = AttrSet();
    universe.ForEach([&](AttrId a) {
      if (rng->Chance(0.6)) c.x.Add(a);
    });
  } while (c.x.Empty() || c.x == universe);
  c.y = universe - c.x;
  c.x.ForEach([&](AttrId a) {
    if (rng->Chance(0.5)) c.y.Add(a);
  });
  // Bias toward condition (b) holding: often add FDs X∩Y -> (U − X).
  if (rng->Chance(0.6)) {
    const AttrSet common = c.x & c.y;
    (universe - c.x).ForEach([&](AttrId a) { c.fds.Add(common, a); });
  }
  // V = pi_X of a random legal instance over domain {0,1} per column.
  Relation db(universe);
  const Schema& ds = db.schema();
  const int rows = 2 + static_cast<int>(rng->Below(4));
  for (int i = 0; i < rows; ++i) {
    Tuple t(ds.arity());
    for (int p = 0; p < ds.arity(); ++p) {
      t[p] = Value::Const(static_cast<uint32_t>(rng->Below(2)));
    }
    db.AddRow(t);
  }
  RepairToLegal(&db, c.fds);
  c.v = db.Project(c.x);
  // t: usually borrow an existing row's common part (so condition (a)
  // holds) and randomize the X − Y columns; sometimes fully random.
  const Schema vs(c.x);
  Tuple t(vs.arity());
  for (int p = 0; p < vs.arity(); ++p) {
    t[p] = Value::Const(static_cast<uint32_t>(rng->Below(2)));
  }
  if (c.v.size() > 0 && rng->Chance(0.8)) {
    const Tuple& base =
        c.v.row(static_cast<int>(rng->Below(c.v.size())));
    (c.x & c.y).ForEach([&](AttrId a) { t.Set(vs, a, base.At(vs, a)); });
  }
  c.t = t;
  return c;
}

TEST(InsertPropertyTest, AcceptedInsertionsAreSafeOnAllSmallDatabases) {
  Rng rng(123);
  int accepted_checked = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomCase c = MakeRandomCase(&rng);
    auto rep = CheckInsertion(c.u.All(), c.fds, c.x, c.y, c.v, c.t);
    ASSERT_TRUE(rep.ok());
    if (rep->verdict != TranslationVerdict::kTranslatable) continue;
    ++accepted_checked;
    // Sweep every legal database over domain {0,1} projecting onto V.
    EnumerateRelations(c.u.All(), 2, [&](const Relation& r) {
      if (!SatisfiesAll(r, c.fds)) return;
      if (!r.Project(c.x).SameAs(c.v)) return;
      auto updated = ApplyInsertion(c.u.All(), c.x, c.y, r, c.t);
      ASSERT_TRUE(updated.ok());
      EXPECT_TRUE(SatisfiesAll(*updated, c.fds))
          << "trial " << trial << "\nfds: " << c.fds.ToString()
          << "\nX=" << c.x.ToString() << " Y=" << c.y.ToString() << "\nR:\n"
          << r.ToString() << "t=" << c.t.ToString();
    });
  }
  EXPECT_GT(accepted_checked, 5);
}

TEST(InsertPropertyTest, RejectionWitnessesAreGenuineCounterexamples) {
  Rng rng(456);
  int rejections_checked = 0;
  for (int trial = 0; trial < 600; ++trial) {
    RandomCase c = MakeRandomCase(&rng);
    auto rep = CheckInsertion(c.u.All(), c.fds, c.x, c.y, c.v, c.t);
    ASSERT_TRUE(rep.ok());
    if (rep->verdict != TranslationVerdict::kFailsChase) continue;
    ++rejections_checked;
    // Rebuild the witness: the generic instance with the reported (r, f)
    // hypothesis, chased; instantiate surviving nulls with fresh
    // constants.
    const FD& fd = rep->violated_fd;
    const int r = rep->witness_row;
    const AttrSet common = c.x & c.y;
    const Schema& vs = c.v.schema();
    int mu = -1;
    for (int i = 0; i < c.v.size() && mu < 0; ++i) {
      if (c.v.row(i).AgreesWith(c.t, vs, common)) mu = i;
    }
    ASSERT_GE(mu, 0);
    GenericInstance g = GenericInstance::Build(c.u.All(), c.x, c.v);
    Relation working = g.relation();
    (fd.lhs & (c.y - c.x)).ForEach([&](AttrId w) {
      const Value a = g.NullAt(r, w);
      const Value b = g.NullAt(mu, w);
      if (a != b) working.RenameValue(a, b);
    });
    ChaseOutcome out = ChaseInstance(working, c.fds);
    ASSERT_FALSE(out.conflict) << "reported counterexample chased into "
                                  "conflict; verdict was wrong";
    // Instantiate nulls with fresh constants (disjoint from 0/1 data).
    Relation witness = out.result;
    uint32_t fresh = 1000;
    for (int i = 0; i < witness.size(); ++i) {
      for (int p = 0; p < witness.arity(); ++p) {
        const Value val = witness.row(i)[p];
        if (val.is_null()) witness.RenameValue(val, Value::Const(fresh++));
      }
    }
    EXPECT_TRUE(SatisfiesAll(witness, c.fds));
    EXPECT_TRUE(witness.Project(c.x).SameAs(c.v));
    auto updated = ApplyInsertion(c.u.All(), c.x, c.y, witness, c.t);
    ASSERT_TRUE(updated.ok());
    EXPECT_FALSE(SatisfiesAll(*updated, c.fds))
        << "trial " << trial << ": reported untranslatable but the "
        << "reconstructed witness stays legal\nfds: " << c.fds.ToString();
  }
  EXPECT_GT(rejections_checked, 5);
}

}  // namespace
}  // namespace relview
