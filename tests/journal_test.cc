// Journal durability tests: encode/decode round trips, replay equivalence
// (a replayed journal reproduces exactly the directly-updated database —
// fact (ii) in action), torn-tail truncation, and divergence detection.

#include "service/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "util/failpoint.h"
#include "view/translator.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

/// A fresh Emp-Dept-Mgr translator bound to the canonical instance.
ViewTranslator MakeTranslator() {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                   u.SetOf("Dept Mgr"));
  EXPECT_TRUE(vt.ok()) << vt.status().ToString();
  Relation db(vt->universe().All());
  db.AddRow(Row({1, 10, 100}));
  db.AddRow(Row({2, 10, 100}));
  db.AddRow(Row({3, 20, 200}));
  EXPECT_TRUE(vt->Bind(std::move(db)).ok());
  return std::move(*vt);
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "journal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    Failpoints::ClearAll();
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(JournalTest, PayloadRoundTrip) {
  const ViewUpdate updates[] = {
      ViewUpdate::Insert(Row({4, 10})),
      ViewUpdate::Delete(Row({2, 10})),
      ViewUpdate::Replace(Row({1, 10}), Row({1, 20})),
  };
  for (const ViewUpdate& u : updates) {
    Result<ViewUpdate> back = DecodeJournalPayload(EncodeJournalPayload(u));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(*back == u) << u.ToString();
  }
}

TEST_F(JournalTest, PayloadRoundTripPreservesNulls) {
  std::vector<Value> vals = {Value::Const(7), Value::Null(3)};
  const ViewUpdate u = ViewUpdate::Insert(Tuple(std::move(vals)));
  Result<ViewUpdate> back = DecodeJournalPayload(EncodeJournalPayload(u));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == u);
}

TEST_F(JournalTest, ReadOfMissingFileIsEmpty) {
  auto r = Journal::Read(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->updates.empty());
  EXPECT_FALSE(r->truncated);
}

TEST_F(JournalTest, AppendThenReadRoundTrip) {
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({4, 10}))).ok());
    ASSERT_TRUE(j->AppendAll({ViewUpdate::Delete(Row({4, 10})),
                              ViewUpdate::Replace(Row({1, 10}),
                                                  Row({1, 20}))})
                    .ok());
  }
  auto r = Journal::Read(path_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->updates.size(), 3u);
  EXPECT_FALSE(r->truncated);
  EXPECT_TRUE(r->updates[0] == ViewUpdate::Insert(Row({4, 10})));
  EXPECT_TRUE(r->updates[2] ==
              ViewUpdate::Replace(Row({1, 10}), Row({1, 20})));
}

TEST_F(JournalTest, ReplayEqualsDirectApplication) {
  // Drive one translator directly and journal the same updates; replaying
  // the journal on a fresh seed must land on the identical relation.
  ViewTranslator direct = MakeTranslator();
  const std::vector<ViewUpdate> updates = {
      ViewUpdate::Insert(Row({4, 10})),
      ViewUpdate::Insert(Row({5, 20})),
      ViewUpdate::Delete(Row({2, 10})),
      ViewUpdate::Replace(Row({4, 10}), Row({4, 20})),
  };
  ASSERT_TRUE(direct.Insert(updates[0].t1).ok());
  ASSERT_TRUE(direct.Insert(updates[1].t1).ok());
  ASSERT_TRUE(direct.Delete(updates[2].t1).ok());
  ASSERT_TRUE(direct.Replace(updates[3].t1, updates[3].t2).ok());

  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->AppendAll(updates).ok());
  }
  ViewTranslator replayed = MakeTranslator();
  auto r = Journal::Replay(path_, &replayed);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->updates.size(), 4u);
  EXPECT_TRUE(replayed.database().SameAs(direct.database()));
}

TEST_F(JournalTest, TruncatedLastRecordRecoversToLastCompleteRecord) {
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({4, 10}))).ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({5, 20}))).ok());
  }
  // Simulate a torn write: chop bytes off the final record.
  std::ifstream in(path_, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(all.data(), static_cast<std::streamsize>(all.size() - 5));
  out.close();

  auto r = Journal::Read(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  EXPECT_FALSE(r->warning.empty());
  ASSERT_EQ(r->updates.size(), 1u);
  EXPECT_TRUE(r->updates[0] == ViewUpdate::Insert(Row({4, 10})));

  // The repair physically truncated the file: a second read is clean and a
  // fresh append after recovery extends from the record boundary.
  auto again = Journal::Read(path_);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->truncated);
  EXPECT_EQ(again->updates.size(), 1u);
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Delete(Row({4, 10}))).ok());
  }
  auto final_read = Journal::Read(path_);
  ASSERT_TRUE(final_read.ok());
  EXPECT_FALSE(final_read->truncated);
  EXPECT_EQ(final_read->updates.size(), 2u);
}

TEST_F(JournalTest, CorruptChecksumIsDetected) {
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({4, 10}))).ok());
  }
  std::ifstream in(path_, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  all[all.size() - 2] ^= 1;  // flip a payload bit, keep length
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << all;
  out.close();

  auto r = Journal::Read(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  EXPECT_TRUE(r->updates.empty());
}

TEST_F(JournalTest, ReplayOfInvalidUpdateReturnsInternal) {
  // Journal an update that the seed instance rejects (inserting Emp 1 into
  // Dept 20 moves an employee: untranslatable). Replay must refuse with
  // kInternal rather than silently diverge.
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({1, 20}))).ok());
  }
  ViewTranslator vt = MakeTranslator();
  auto r = Journal::Replay(path_, &vt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST_F(JournalTest, OpenVerifiesFinalRecordChecksum) {
  // The fix for the reopen-after-repair hole: O_APPEND must never extend a
  // journal whose final record does not verify, or everything appended
  // after the bad record would be unreachable to replay.
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({4, 10}))).ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({5, 20}))).ok());
  }
  // Flip a payload bit of the *final* record, keeping it "complete"
  // (newline-terminated, correct length) — only the checksum can tell.
  std::ifstream in(path_, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  all[all.size() - 2] ^= 1;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out << all;
  out.close();

  auto reopened = Journal::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);

  // Read(repair) truncates the bad record; Open then succeeds and appends
  // land on the repaired boundary.
  auto r = Journal::Read(path_, /*repair=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  auto again = Journal::Open(path_);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE(again->Append(ViewUpdate::Delete(Row({4, 10}))).ok());
  auto final_read = Journal::Read(path_);
  ASSERT_TRUE(final_read.ok());
  EXPECT_FALSE(final_read->truncated);
  EXPECT_EQ(final_read->updates.size(), 2u);
}

TEST_F(JournalTest, OpenRefusesTornTail) {
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({4, 10}))).ok());
  }
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out << "rv1 57 0123456789abcdef I 2 torn";  // no terminator
  out.close();

  auto reopened = Journal::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);

  auto r = Journal::Read(path_, /*repair=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  ASSERT_EQ(r->updates.size(), 1u);
  EXPECT_TRUE(Journal::Open(path_).ok());
}

TEST_F(JournalTest, FailpointFsyncErrorMidBatchFailsAppend) {
  // fsync reports EIO on the *second* batch. The first lands durably; the
  // second fails, leaving the service free to roll back.
  ASSERT_TRUE(Failpoints::Set("journal.fsync", "error@2").ok());
  auto j = Journal::Open(path_);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({4, 10}))).ok());
  Status st = j->AppendAll({ViewUpdate::Insert(Row({5, 20})),
                            ViewUpdate::Insert(Row({6, 10}))});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("injected"), std::string::npos);
  // The failed batch was rolled off the file: its records must not
  // survive as phantoms that would replay as accepted.
  {
    auto r = Journal::Read(path_);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->truncated);
    ASSERT_EQ(r->updates.size(), 1u);
    EXPECT_TRUE(r->updates[0] == ViewUpdate::Insert(Row({4, 10})));
  }
  // Third batch: the failpoint fired its once, real fsync resumes, and
  // the new record lands at the committed boundary.
  ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({7, 20}))).ok());
  auto r = Journal::Read(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->truncated);
  ASSERT_EQ(r->updates.size(), 2u);
  EXPECT_TRUE(r->updates[1] == ViewUpdate::Insert(Row({7, 20})));
}

TEST_F(JournalTest, FailpointShortWritePoisonsHandle) {
  // An injected short write models a crash mid-append: the torn tail
  // stays on disk for the repair path — so the live handle must poison
  // itself, or later batches would land after the tear and be silently
  // dropped at replay.
  auto j = Journal::Open(path_);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({4, 10}))).ok());
  ASSERT_TRUE(Failpoints::Set("journal.write", "short:3").ok());
  ASSERT_FALSE(j->Append(ViewUpdate::Insert(Row({5, 20}))).ok());
  Failpoints::ClearAll();
  Status st = j->Append(ViewUpdate::Insert(Row({6, 10})));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // Repair + reopen restores service; nothing appended through the
  // poisoned handle is on disk.
  ASSERT_TRUE(Journal::Read(path_, /*repair=*/true).ok());
  auto again = Journal::Open(path_);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE(again->Append(ViewUpdate::Insert(Row({6, 10}))).ok());
  auto r = Journal::Read(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->truncated);
  ASSERT_EQ(r->updates.size(), 2u);
  EXPECT_TRUE(r->updates[1] == ViewUpdate::Insert(Row({6, 10})));
}

TEST_F(JournalTest, OpenAcceptsFinalRecordLargerThanTailWindow) {
  // One valid record can outgrow the 1 MiB tail-verification window
  // (huge-arity tuples); Open must widen its window, not declare the
  // journal corrupt.
  std::vector<Value> vals;
  vals.reserve(150000);
  for (uint32_t i = 0; i < 150000; ++i) {
    vals.push_back(Value::Const(1000000u + i));
  }
  const ViewUpdate big = ViewUpdate::Insert(Tuple(std::move(vals)));
  ASSERT_GT(EncodeJournalPayload(big).size(), size_t{1} << 20);
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(big).ok());
  }
  auto reopened = Journal::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE(reopened->Append(ViewUpdate::Insert(Row({5, 20}))).ok());
  auto r = Journal::Read(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->truncated);
  ASSERT_EQ(r->updates.size(), 2u);
  EXPECT_TRUE(r->updates[0] == big);
}

TEST_F(JournalTest, FailpointShortWriteOnLengthPrefixRepairsAndReplays) {
  // A short write that tears mid-header (3 bytes keeps only "rv1") leaves
  // a real torn tail on disk; repair must recover exactly the records
  // before it, and replay of the repaired journal must equal direct
  // application of those records (fact (ii)).
  {
    auto j = Journal::Open(path_);
    ASSERT_TRUE(j.ok());
    ASSERT_TRUE(j->Append(ViewUpdate::Insert(Row({4, 10}))).ok());
    ASSERT_TRUE(Failpoints::Set("journal.write", "short:3").ok());
    Status st = j->Append(ViewUpdate::Insert(Row({5, 20})));
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("short write"), std::string::npos);
    Failpoints::ClearAll();
  }
  auto reopened = Journal::Open(path_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);

  ViewTranslator replayed = MakeTranslator();
  auto r = Journal::Replay(path_, &replayed);  // repairs the tail, too
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  ASSERT_EQ(r->updates.size(), 1u);

  ViewTranslator direct = MakeTranslator();
  ASSERT_TRUE(direct.Insert(Row({4, 10})).ok());
  EXPECT_TRUE(replayed.database().SameAs(direct.database()));
  EXPECT_TRUE(Journal::Open(path_).ok());  // repaired: appendable again
}

TEST_F(JournalTest, FailpointWriteErrorLeavesFileUntouched) {
  ASSERT_TRUE(Failpoints::Set("journal.write", "error").ok());
  auto j = Journal::Open(path_);
  ASSERT_TRUE(j.ok());
  Status st = j->Append(ViewUpdate::Insert(Row({4, 10})));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("injected"), std::string::npos);
  auto r = Journal::Read(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->updates.empty());  // the error fired before any byte
  EXPECT_FALSE(r->truncated);
}

TEST_F(JournalTest, ReplayRequiresBoundTranslator) {
  Universe u = Universe::Parse("A B").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "A -> B");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("A B"), u.SetOf("B"));
  ASSERT_TRUE(vt.ok());
  auto r = Journal::Replay(path_, &*vt);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace relview
