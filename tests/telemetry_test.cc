// Tests for the telemetry layer: LatencyHistogram boundary behaviour
// (empty, q=0/q=1, single sample, min tracking), the TelemetryRegistry's
// Prometheus/JSON renderings, the tracer-stats collector, the
// enum-derived ServiceMetrics array sizes, and the journal's fsync
// histogram.

#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "service/journal.h"
#include "service/metrics.h"
#include "service/update.h"
#include "util/status.h"

namespace relview {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_nanos(), 0u);
  EXPECT_EQ(h.max_nanos(), 0u);
  EXPECT_EQ(h.QuantileNanos(0.0), 0u);
  EXPECT_EQ(h.QuantileNanos(0.5), 0u);
  EXPECT_EQ(h.QuantileNanos(1.0), 0u);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleIsEveryQuantile) {
  LatencyHistogram h;
  h.Record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min_nanos(), 777u);
  EXPECT_EQ(h.max_nanos(), 777u);
  // Without the [min, max] clamp the log2 buckets would report the bucket
  // edge (1023), not the observed value.
  EXPECT_EQ(h.QuantileNanos(0.0), 777u);
  EXPECT_EQ(h.QuantileNanos(0.5), 777u);
  EXPECT_EQ(h.QuantileNanos(1.0), 777u);
}

TEST(LatencyHistogramTest, BoundaryQuantilesAreExactObservedValues) {
  LatencyHistogram h;
  h.Record(100);
  h.Record(5000);
  h.Record(90000);
  EXPECT_EQ(h.QuantileNanos(0.0), 100u);    // q=0 -> min
  EXPECT_EQ(h.QuantileNanos(1.0), 90000u);  // q=1 -> max
  // Out-of-range q clamps rather than walking off the bucket array.
  EXPECT_EQ(h.QuantileNanos(-3.0), 100u);
  EXPECT_EQ(h.QuantileNanos(7.0), 90000u);
  // Interior quantiles stay within the observed range.
  const uint64_t p50 = h.QuantileNanos(0.5);
  EXPECT_GE(p50, 100u);
  EXPECT_LE(p50, 90000u);
}

TEST(LatencyHistogramTest, MinTracksTheSmallestSampleEverRecorded) {
  LatencyHistogram h;
  h.Record(9000);
  EXPECT_EQ(h.min_nanos(), 9000u);
  h.Record(40);
  EXPECT_EQ(h.min_nanos(), 40u);
  h.Record(70000);
  EXPECT_EQ(h.min_nanos(), 40u);
  EXPECT_EQ(h.max_nanos(), 70000u);
}

TEST(LatencyHistogramTest, JsonCarriesMinAndBoundaries) {
  LatencyHistogram h;
  h.Record(256);
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"min_ns\":256"), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\":256"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Enum-derived ServiceMetrics sizes (satellite: no silently dropped
// counters when an enum grows — the static_asserts in metrics.h pin the
// sentinels; these tests pin the derived values).

TEST(ServiceMetricsSizesTest, CountersCoverEveryKindAndCode) {
  EXPECT_EQ(ServiceMetrics::kKinds,
            static_cast<int>(UpdateKind::kNumUpdateKinds));
  EXPECT_EQ(ServiceMetrics::kStatusCodes,
            static_cast<int>(StatusCode::kNumStatusCodes));
  // Every real enumerator is strictly below the sentinel.
  EXPECT_LT(static_cast<int>(UpdateKind::kReplace), ServiceMetrics::kKinds);
  EXPECT_LT(static_cast<int>(StatusCode::kInternal),
            ServiceMetrics::kStatusCodes);
  // Recording against the last real enumerators stays in bounds.
  ServiceMetrics m;
  m.RecordAccepted(UpdateKind::kReplace);
  m.RecordRejected(UpdateKind::kReplace, StatusCode::kInternal);
  EXPECT_EQ(m.accepted(UpdateKind::kReplace), 1u);
  EXPECT_EQ(m.rejected_by_code(StatusCode::kInternal), 1u);
}

// ---------------------------------------------------------------------------
// TelemetryRegistry

TEST(TelemetryRegistryTest, RendersPrometheusExposition) {
  TelemetryRegistry registry;
  registry.Register("test", [] {
    std::vector<MetricFamily> out;
    out.push_back(CounterFamily("demo_total", "A demo counter", 3));
    MetricFamily labeled = GaugeFamily("demo_gauge", "A labeled gauge", 0);
    labeled.samples.clear();
    labeled.samples.push_back({Label("kind", "insert"), 1.5});
    labeled.samples.push_back({Label("kind", "weird\"value\\x"), 2});
    out.push_back(std::move(labeled));
    return out;
  });
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP demo_total A demo counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("demo_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("demo_gauge{kind=\"insert\"} 1.5\n"),
            std::string::npos);
  // Label values escape quotes and backslashes.
  EXPECT_NE(text.find("demo_gauge{kind=\"weird\\\"value\\\\x\"} 2\n"),
            std::string::npos);
}

TEST(TelemetryRegistryTest, SanitizesMetricNames) {
  TelemetryRegistry registry;
  registry.Register("test", [] {
    std::vector<MetricFamily> out;
    out.push_back(CounterFamily("bad.name-with spaces", "sanitized", 1));
    out.push_back(CounterFamily("9starts_with_digit", "prefixed", 1));
    return out;
  });
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("bad_name_with_spaces 1\n"), std::string::npos);
  EXPECT_NE(text.find("_9starts_with_digit 1\n"), std::string::npos);
  EXPECT_EQ(text.find("bad.name"), std::string::npos);
}

TEST(TelemetryRegistryTest, SummaryRendersQuantilesCountAndSum) {
  LatencyHistogram h;
  h.Record(1000);  // 1 µs
  h.Record(1000);
  TelemetryRegistry registry;
  registry.Register("test", [&h] {
    std::vector<MetricFamily> out;
    out.push_back(SummaryFamily("lat_seconds", "A summary", h));
    return out;
  });
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE lat_seconds summary\n"), std::string::npos);
  // One series per quantile plus the suffixed _count/_sum pair; values in
  // seconds (1000 ns = ~1e-06 s — don't pin the float's text).
  EXPECT_NE(text.find("lat_seconds{quantile=\"0\"} 1."), std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"1\"} 1."), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 2."), std::string::npos);
}

TEST(TelemetryRegistryTest, JsonSectionsRenderInRegistrationOrder) {
  TelemetryRegistry registry;
  registry.RegisterJson("alpha", [] { return std::string("{\"a\":1}"); });
  registry.RegisterJson("beta", [] { return std::string("[2,3]"); });
  EXPECT_EQ(registry.RenderJson(), "{\"alpha\":{\"a\":1},\"beta\":[2,3]}");
  // Re-registering replaces in place; unregistering removes.
  registry.RegisterJson("alpha", [] { return std::string("{\"a\":9}"); });
  EXPECT_EQ(registry.RenderJson(), "{\"alpha\":{\"a\":9},\"beta\":[2,3]}");
  registry.Unregister("alpha");
  EXPECT_EQ(registry.RenderJson(), "{\"beta\":[2,3]}");
}

TEST(TelemetryRegistryTest, TracerCollectorExportsAllCounters) {
  Tracer tracer(32);
  tracer.Enable(8);
  { Span s(tracer, "x"); }
  tracer.Disable();
  const std::vector<MetricFamily> families = CollectTracerStats(tracer);
  ASSERT_EQ(families.size(), 8u);
  EXPECT_EQ(families[0].name, "relview_tracer_enabled");
  EXPECT_EQ(families[1].samples[0].value, 8.0);  // sample_every
  const std::string json = TracerStatsJson(tracer);
  EXPECT_NE(json.find("\"sample_every\":8"), std::string::npos);
  EXPECT_NE(json.find("\"spans_recorded\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Journal fsync latency histogram

TEST(JournalFsyncTest, AppendRecordsFsyncLatency) {
  std::string path = testing::TempDir() + "/fsync_hist.journal";
  std::remove(path.c_str());
  auto journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->fsync_latency()->count(), 0u);
  Tuple t(std::vector<Value>{Value::Const(1), Value::Const(2)});
  ASSERT_TRUE(journal->Append(ViewUpdate::Insert(t)).ok());
  EXPECT_EQ(journal->fsync_latency()->count(), 1u);
  // Group commit: one fsync for the whole batch.
  ASSERT_TRUE(journal
                  ->AppendAll({ViewUpdate::Delete(t), ViewUpdate::Insert(t)})
                  .ok());
  EXPECT_EQ(journal->fsync_latency()->count(), 2u);
  EXPECT_GT(journal->fsync_latency()->total_nanos(), 0u);
  // The histogram handle survives a move of the journal.
  auto held = journal->fsync_latency();
  Journal moved = std::move(*journal);
  ASSERT_TRUE(moved.Append(ViewUpdate::Insert(t)).ok());
  EXPECT_EQ(held->count(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace relview
