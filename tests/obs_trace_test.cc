// Tests for the span tracer (obs/trace.h): ring semantics (drop-oldest,
// no torn records under concurrent writers), head-based sampling, the
// disabled fast path, and well-formedness of the Chrome trace_event JSON
// export (checked with a tiny recursive-descent JSON parser rather than
// eyeballed substrings).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

namespace relview {
namespace {

// ---------------------------------------------------------------------------
// A minimal validating JSON parser: syntax only, no DOM. Enough to prove
// the exporter emits parseable JSON (balanced structure, legal strings and
// numbers), which substring checks cannot.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

  int objects_seen() const { return objects_; }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseString() {
    if (!Eat('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return Eat('"');
  }
  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool ParseObject() {
    if (!Eat('{')) return false;
    ++objects_;
    SkipWs();
    if (Eat('}')) return true;
    for (;;) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool ParseArray() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    for (;;) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool ParseLiteral(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool ParseValue() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
  int objects_ = 0;
};

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer tracer(64);
  {
    Span s(tracer, "noop");
    s.AddArg("n", 7);
    EXPECT_FALSE(s.recording());
  }
  const TracerStats stats = tracer.stats();
  EXPECT_EQ(stats.spans_started, 0u);
  EXPECT_EQ(stats.spans_recorded, 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, RecordsSpanWithArgsAndTiming) {
  Tracer tracer(64);
  tracer.Enable();
  {
    Span outer(tracer, "outer");
    outer.AddArg("rows", 42);
    Span inner(tracer, "inner");
  }
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Children complete (and are pushed) before their parent.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  ASSERT_EQ(events[1].num_args, 1);
  EXPECT_STREQ(events[1].arg_name[0], "rows");
  EXPECT_EQ(events[1].arg_value[0], 42u);
  EXPECT_GE(events[0].start_ns, 0);
  EXPECT_GE(events[0].dur_ns, 0);
  // The parent encloses the child.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST(TracerTest, HeadBasedSamplingKeepsWholeTraces) {
  Tracer tracer(1 << 10);
  tracer.Enable(/*sample_every=*/4);
  const int roots = 100;
  for (int i = 0; i < roots; ++i) {
    Span root(tracer, "root");
    Span child(tracer, "child");  // must inherit the root's decision
  }
  tracer.Disable();
  const TracerStats stats = tracer.stats();
  // 1 in 4 roots kept, each with exactly one child: 25 * 2 records.
  EXPECT_EQ(stats.spans_recorded, 50u);
  EXPECT_EQ(stats.spans_sampled_out, 150u);
  int children = 0;
  for (const TraceEvent& ev : tracer.Snapshot()) {
    if (std::string(ev.name) == "child") ++children;
  }
  EXPECT_EQ(children, 25);
}

TEST(TraceRingTest, DropsOldestWhenLapped) {
  TraceRing ring(8);  // rounded to a power of two
  const uint64_t cap = ring.capacity();
  const uint64_t total = cap + 5;
  for (uint64_t i = 0; i < total; ++i) {
    TraceEvent ev;
    ev.name = "e";
    ev.start_ns = static_cast<int64_t>(i);
    ring.Push(ev);
  }
  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.dropped_oldest(), total - cap);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), cap);
  // Oldest-first, and exactly the newest `cap` records survive.
  for (uint64_t i = 0; i < cap; ++i) {
    EXPECT_EQ(events[i].start_ns, static_cast<int64_t>(total - cap + i));
  }
}

TEST(TraceRingTest, ConcurrentWritersAndReadersNeverTear) {
  // Each record carries a checksum relation between its fields. Writers
  // hammer a deliberately tiny ring (constant lapping) while readers
  // snapshot; any torn read would break the relation. Run under TSan for
  // the memory-model half of the claim.
  TraceRing ring(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceEvent& ev : ring.Snapshot()) {
        const int64_t want = ev.start_ns * 3 + 1;
        if (ev.dur_ns != want ||
            ev.arg_value[0] != static_cast<uint64_t>(ev.start_ns) * 7) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int64_t k = static_cast<int64_t>(w) * kPerWriter + i;
        TraceEvent ev;
        ev.name = "w";
        ev.start_ns = k;
        ev.dur_ns = k * 3 + 1;
        ev.arg_name[0] = "k";
        ev.arg_value[0] = static_cast<uint64_t>(k) * 7;
        ev.num_args = 1;
        ring.Push(ev);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(ring.pushed(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  // Final snapshot: every slot either holds an intact record or was
  // abandoned to a (counted) same-slot collision — never a torn one.
  std::vector<TraceEvent> events = ring.Snapshot();
  EXPECT_LE(events.size(), ring.capacity());
  EXPECT_GE(events.size() + ring.dropped_collisions(), ring.capacity());
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.dur_ns, ev.start_ns * 3 + 1);
  }
}

TEST(TracerExportTest, ChromeTraceIsWellFormedJson) {
  Tracer tracer(256);
  tracer.Enable();
  {
    Span a(tracer, "alpha");
    a.AddArg("specs", 3);
    a.AddArg("probes", 9);
    Span b(tracer, "beta \"quoted\\name\"");  // exercises escaping
  }
  {
    Span c(tracer, "gamma");
  }
  tracer.Disable();

  const std::string json = tracer.ExportChromeTrace();
  JsonValidator v(json);
  EXPECT_TRUE(v.Valid()) << json;
  // Top-level object + 3 event objects + one args object per event.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 3);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  // The quote and backslash must arrive escaped.
  EXPECT_NE(json.find("beta \\\"quoted\\\\name\\\""), std::string::npos);
  EXPECT_NE(json.find("\"specs\":3"), std::string::npos);
}

TEST(TracerExportTest, EmptyTraceIsStillValidJson) {
  Tracer tracer(16);
  const std::string json = tracer.ExportChromeTrace();
  JsonValidator v(json);
  EXPECT_TRUE(v.Valid()) << json;
  EXPECT_EQ(CountOccurrences(json, "\"ph\""), 0);
}

TEST(TracerExportTest, TextExportListsEverySpan) {
  Tracer tracer(64);
  tracer.Enable();
  {
    Span a(tracer, "first");
    Span b(tracer, "second");
    b.AddArg("k", 5);
  }
  tracer.Disable();
  const std::string text = tracer.ExportText();
  EXPECT_NE(text.find("first"), std::string::npos);
  EXPECT_NE(text.find("second"), std::string::npos);
  EXPECT_NE(text.find("k=5"), std::string::npos);
}

TEST(TracerTest, ClearResetsBufferButNotCounters) {
  Tracer tracer(64);
  tracer.Enable();
  { Span s(tracer, "x"); }
  tracer.Disable();
  ASSERT_EQ(tracer.Snapshot().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.stats().spans_recorded, 1u);
}

}  // namespace
}  // namespace relview
