// Tests for Test 2: the good-complement checker and the fast per-insert
// test. Key properties from the paper:
//  * goodness is a schema property; when Y is good, Test 2 accepts exactly
//    the translatable insertions;
//  * when Y is not good, Test 2 is disregarded (we verify the checker
//    flags such schemas).

#include "view/test2.h"

#include <gtest/gtest.h>

#include "deps/instance_generator.h"
#include "util/rng.h"
#include "view/complement.h"
#include "view/insertion.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

TEST(GoodComplementTest, EmpDeptMgrIsGood) {
  // X = ED, Y = DM, Sigma = {E -> D, D -> M}: the canonical example is a
  // good complement — the only FD with a complement-side consequence is
  // D -> M and the complement-matching row pins M down.
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  auto fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto rep = CheckGoodComplement(u.All(), fds, u.SetOf("Emp Dept"),
                                 u.SetOf("Dept Mgr"));
  EXPECT_TRUE(rep.good);
}

TEST(GoodComplementTest, BridgeableSchemaIsNotGood) {
  // Sigma = {A -> C, B -> C}, X = AB, Y = BC: whether an insertion is
  // legal depends on bridging rows in the instance (see the insertion
  // tests), so Y cannot be a good complement.
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> C; B -> C");
  auto rep =
      CheckGoodComplement(u.All(), fds, u.SetOf("A B"), u.SetOf("B C"));
  EXPECT_FALSE(rep.good);
  EXPECT_EQ(rep.counterexample_fd.rhs, u["C"]);
}

TEST(GoodComplementTest, PaperLiteralModeIsMoreConservative) {
  // Whatever the literal-initialization mode decides, "not good" is the
  // safe direction; assert the semantic mode never flags a schema the
  // literal mode considers good (the literal linkage is weaker, deriving
  // fewer equalities, hence rejects at least as often).
  Rng rng(5);
  Universe u = Universe::Anonymous(4);
  const AttrSet universe = u.All();
  for (int trial = 0; trial < 100; ++trial) {
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.35)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(4)));
    }
    AttrSet x;
    do {
      x = AttrSet();
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.6)) x.Add(a);
      });
    } while (x.Empty() || x == universe);
    AttrSet y = universe - x;
    x.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) y.Add(a);
    });
    const bool semantic =
        CheckGoodComplement(universe, fds, x, y,
                            GoodComplementMode::kSemantic)
            .good;
    const bool literal =
        CheckGoodComplement(universe, fds, x, y,
                            GoodComplementMode::kPaperLiteral)
            .good;
    if (literal) {
      EXPECT_TRUE(semantic)
          << "fds=" << fds.ToString() << " X=" << x.ToString()
          << " Y=" << y.ToString();
    }
  }
}

TEST(Test2RunTest, MatchesExactOnEmpDeptMgr) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  auto fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  const AttrSet x = u.SetOf("Emp Dept");
  const AttrSet y = u.SetOf("Dept Mgr");
  ASSERT_TRUE(CheckGoodComplement(u.All(), fds, x, y).good);
  Relation v(x);
  v.AddRow(Row({1, 10}));
  v.AddRow(Row({2, 10}));
  v.AddRow(Row({3, 20}));
  for (const Tuple& t :
       {Row({4, 10}), Row({4, 90}), Row({1, 20}), Row({1, 10})}) {
    auto t2 = RunTest2(u.All(), fds, x, y, v, t);
    auto exact = CheckInsertion(u.All(), fds, x, y, v, t);
    ASSERT_TRUE(t2.ok() && exact.ok());
    EXPECT_EQ(t2->accepted(), exact->translatable()) << t.ToString();
  }
}

// The paper's claim: when Y is a good complement, Test 2 accepts
// *precisely* the translatable insertions. Validate on random schemas
// where the checker reports goodness.
TEST(Test2PropertyTest, ExactWhenComplementIsGood) {
  Rng rng(777);
  Universe u = Universe::Anonymous(4);
  const AttrSet universe = u.All();
  int good_cases = 0, disagreements_allowed = 0;
  for (int trial = 0; trial < 400; ++trial) {
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.35)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(4)));
    }
    AttrSet x;
    do {
      x = AttrSet();
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.6)) x.Add(a);
      });
    } while (x.Empty() || x == universe);
    AttrSet y = universe - x;
    x.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) y.Add(a);
    });
    if (rng.Chance(0.6)) {
      (universe - x).ForEach([&](AttrId a) { fds.Add(x & y, a); });
    }
    if (!AreComplementaryFDOnly(universe, fds, x, y)) continue;
    if (!CheckGoodComplement(universe, fds, x, y).good) continue;

    Relation db(universe);
    const Schema& ds = db.schema();
    for (int i = 0; i < 5; ++i) {
      Tuple row(ds.arity());
      for (int p = 0; p < ds.arity(); ++p) {
        row[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
      }
      db.AddRow(row);
    }
    RepairToLegal(&db, fds);
    Relation v = db.Project(x);
    if (v.empty()) continue;
    const Schema vs(x);
    Tuple t(vs.arity());
    for (int p = 0; p < vs.arity(); ++p) {
      t[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
    }
    if (rng.Chance(0.8)) {
      const Tuple& base = v.row(static_cast<int>(rng.Below(v.size())));
      (x & y).ForEach([&](AttrId a) { t.Set(vs, a, base.At(vs, a)); });
    }

    auto t2 = RunTest2(universe, fds, x, y, v, t);
    auto exact = CheckInsertion(universe, fds, x, y, v, t);
    ASSERT_TRUE(t2.ok() && exact.ok());
    ++good_cases;
    // Soundness must be unconditional.
    if (t2->accepted() && !exact->translatable()) {
      ADD_FAILURE() << "Test 2 accepted an untranslatable insert: fds="
                    << fds.ToString() << " X=" << x.ToString()
                    << " Y=" << y.ToString() << " t=" << t.ToString()
                    << "\nV:\n" << v.ToString();
    }
    // Exactness when good (the paper's claim; our checker may be more
    // conservative than necessary, but these schemas it declared good).
    if (exact->translatable() && !t2->accepted()) {
      ++disagreements_allowed;
      ADD_FAILURE() << "Test 2 rejected a translatable insert on a "
                    << "good complement: fds=" << fds.ToString()
                    << " X=" << x.ToString() << " Y=" << y.ToString()
                    << " t=" << t.ToString() << "\nV:\n" << v.ToString();
    }
  }
  EXPECT_GT(good_cases, 40);
}

TEST(Test2RunTest, SoundEvenWhenComplementIsNotGood) {
  // On the bridgeable schema, RunTest2 decides from the canonical chased
  // database; verify it never accepts an insertion the exact test
  // rejects, on a small sweep of tuples.
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> C; B -> C");
  const AttrSet x = u.SetOf("A B");
  const AttrSet y = u.SetOf("B C");
  Relation v(x);
  v.AddRow(Row({1, 10}));
  v.AddRow(Row({2, 20}));
  for (uint32_t a = 1; a <= 3; ++a) {
    for (uint32_t b : {10u, 20u, 30u}) {
      const Tuple t = Row({a, b});
      if (v.ContainsRow(t)) continue;
      auto t2 = RunTest2(u.All(), fds, x, y, v, t);
      auto exact = CheckInsertion(u.All(), fds, x, y, v, t);
      ASSERT_TRUE(t2.ok() && exact.ok());
      if (t2->accepted()) {
        EXPECT_TRUE(exact->translatable()) << t.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace relview
