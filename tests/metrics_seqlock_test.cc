// The seqlock contract of ServiceMetrics (service/metrics.h): a scrape
// racing the writer must never observe a rejection's per-kind counter
// without its per-code counter (or vice versa) — sum-over-kinds equals
// sum-over-codes in every exported snapshot. The writer here hammers
// multi-counter recordings while readers assert the invariant through
// ReadConsistent and through the ToJson it wraps; run under TSan in CI,
// this also proves the recipe is race-free, not merely
// consistent-looking.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "service/metrics.h"
#include "service/update.h"
#include "util/status.h"

namespace relview {
namespace {

TEST(MetricsSeqlock, KindAndCodeTotalsAgreeInEverySnapshot) {
  ServiceMetrics metrics;
  std::atomic<bool> done{false};

  // Single writer, as the service guarantees (writer_mu_): each iteration
  // is one multi-counter recording.
  std::thread writer([&] {
    const StatusCode codes[] = {StatusCode::kUntranslatable,
                                StatusCode::kInvalidArgument,
                                StatusCode::kFailedPrecondition};
    for (int i = 0; i < 30'000; ++i) {
      metrics.RecordRejected(
          static_cast<UpdateKind>(i % ServiceMetrics::kKinds),
          codes[i % 3]);
    }
    done.store(true, std::memory_order_release);
  });

  // Two reader threads: one through the raw accessors under
  // ReadConsistent, one through ToJson (the registry's JSON path).
  std::thread checker([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto [by_kind, by_code] = metrics.ReadConsistent([&] {
        uint64_t kinds = 0;
        for (int k = 0; k < ServiceMetrics::kKinds; ++k) {
          kinds += metrics.rejected(static_cast<UpdateKind>(k));
        }
        uint64_t codes = 0;
        for (int c = 0; c < ServiceMetrics::kStatusCodes; ++c) {
          codes += metrics.rejected_by_code(static_cast<StatusCode>(c));
        }
        return std::pair<uint64_t, uint64_t>(kinds, codes);
      });
      ASSERT_EQ(by_kind, by_code);
    }
  });
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string json = metrics.ToJson();
      ASSERT_FALSE(json.empty());
    }
  });

  writer.join();
  checker.join();
  scraper.join();

  // Final state: everything recorded, nothing lost.
  uint64_t total = 0;
  for (int k = 0; k < ServiceMetrics::kKinds; ++k) {
    total += metrics.rejected(static_cast<UpdateKind>(k));
  }
  EXPECT_EQ(total, 30'000u);
  EXPECT_EQ(metrics.total_rejected(), 30'000u);
}

TEST(MetricsSeqlock, EngineGaugePublishesAreAtomicUnderReadConsistent) {
  ServiceMetrics metrics;
  std::atomic<bool> done{false};

  // The writer republishes gauge snapshots where every field equals the
  // iteration counter; a consistent reader must never see a mix.
  std::thread writer([&] {
    for (uint64_t i = 1; i <= 20'000; ++i) {
      EngineStats stats;
      stats.closure_hits = i;
      stats.closure_misses = i;
      stats.index_reuses = i;
      metrics.SetEngineGauges(stats);
    }
    done.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const EngineStats snap =
          metrics.ReadConsistent([&] { return metrics.engine_gauges(); });
      ASSERT_EQ(snap.closure_hits, snap.closure_misses);
      ASSERT_EQ(snap.closure_hits, snap.index_reuses);
    }
  });
  writer.join();
  reader.join();
}

}  // namespace
}  // namespace relview
