// Tests for the succinct view encoding (union of Cartesian products).

#include "succinct/succinct_view.h"

#include <gtest/gtest.h>

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

Relation Factor(AttrSet attrs, std::vector<Tuple> rows) {
  Relation r(attrs);
  for (Tuple& t : rows) r.AddRow(std::move(t));
  return r;
}

TEST(SuccinctViewTest, RejectsBadProducts) {
  SuccinctView v(AttrSet{0, 1});
  // Overlapping factors.
  CartesianProduct overlap;
  overlap.factors.push_back(Factor(AttrSet{0}, {Row({1})}));
  overlap.factors.push_back(Factor(AttrSet{0, 1}, {Row({1, 2})}));
  EXPECT_FALSE(v.AddProduct(std::move(overlap)).ok());
  // Not covering.
  CartesianProduct partial;
  partial.factors.push_back(Factor(AttrSet{0}, {Row({1})}));
  EXPECT_FALSE(v.AddProduct(std::move(partial)).ok());
}

TEST(SuccinctViewTest, ExpandMatchesContains) {
  // V = {0,1} x {5,6}  ∪  {(9, 9)}.
  SuccinctView v(AttrSet{0, 1});
  CartesianProduct grid;
  grid.factors.push_back(Factor(AttrSet{0}, {Row({0}), Row({1})}));
  grid.factors.push_back(Factor(AttrSet{1}, {Row({5}), Row({6})}));
  ASSERT_TRUE(v.AddProduct(std::move(grid)).ok());
  CartesianProduct single;
  single.factors.push_back(Factor(AttrSet{0, 1}, {Row({9, 9})}));
  ASSERT_TRUE(v.AddProduct(std::move(single)).ok());

  EXPECT_EQ(v.ExpandedSizeBound(), 5);
  Relation expanded = v.Expand();
  EXPECT_EQ(expanded.size(), 5);
  for (const Tuple& t : expanded.rows()) {
    EXPECT_TRUE(v.Contains(t)) << t.ToString();
  }
  EXPECT_FALSE(v.Contains(Row({0, 9})));
  EXPECT_FALSE(v.Contains(Row({9, 5})));
  EXPECT_TRUE(v.Contains(Row({9, 9})));
}

TEST(SuccinctViewTest, ExponentialExpansionLinearDescription) {
  const int n = 10;
  AttrSet attrs = AttrSet::FirstN(n);
  SuccinctView v(attrs);
  CartesianProduct grid;
  for (int i = 0; i < n; ++i) {
    grid.factors.push_back(
        Factor(AttrSet::Single(static_cast<AttrId>(i)),
               {Row({0}), Row({1})}));
  }
  ASSERT_TRUE(v.AddProduct(std::move(grid)).ok());
  EXPECT_EQ(v.ExpandedSizeBound(), 1 << n);
  EXPECT_EQ(v.DescriptionSize(), 2 * n);
  EXPECT_EQ(v.Expand().size(), 1 << n);
}

TEST(SuccinctViewTest, OverlappingProductsDeduplicateOnExpand) {
  SuccinctView v(AttrSet{0});
  CartesianProduct p1;
  p1.factors.push_back(Factor(AttrSet{0}, {Row({1}), Row({2})}));
  ASSERT_TRUE(v.AddProduct(std::move(p1)).ok());
  CartesianProduct p2;
  p2.factors.push_back(Factor(AttrSet{0}, {Row({2}), Row({3})}));
  ASSERT_TRUE(v.AddProduct(std::move(p2)).ok());
  EXPECT_EQ(v.ExpandedSizeBound(), 4);  // bound counts duplicates
  EXPECT_EQ(v.Expand().size(), 3);      // expansion deduplicates
}

}  // namespace
}  // namespace relview
