// Concurrency tests for UpdateService: reader threads taking snapshots
// while a writer applies batches must observe only committed versions —
// never a torn intermediate state — and versions must be monotone per
// reader. Run instrumented with -DRELVIEW_SANITIZE=thread to let TSan
// check the synchronization itself.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/update_service.h"
#include "util/thread_pool.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

// A wider instance so batches are visible: depts 10..13, three employees
// each, Emp -> Dept -> Mgr.
std::unique_ptr<UpdateService> MakeService() {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                   u.SetOf("Dept Mgr"));
  EXPECT_TRUE(vt.ok());
  Relation db(vt->universe().All());
  uint32_t emp = 0;
  for (uint32_t d = 0; d < 4; ++d) {
    for (int i = 0; i < 3; ++i) {
      db.AddRow(Row({emp++, 10 + d, 100 + d}));
    }
  }
  EXPECT_TRUE(vt->Bind(std::move(db)).ok());
  auto service = UpdateService::Create(std::move(*vt));
  EXPECT_TRUE(service.ok());
  return std::move(*service);
}

TEST(ServiceConcurrencyTest, ReadersSeeOnlyCommittedBatchBoundaries) {
  auto service = MakeService();
  const int base_rows = service->Snapshot().view->size();  // 12
  constexpr int kBatchSize = 4;   // every committed batch adds 4 view rows
  constexpr int kBatches = 50;
  constexpr int kReaders = 4;

  StartGate gate;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      gate.Wait();
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        ViewSnapshot snap = service->Snapshot();
        // Versions are monotone from any single reader's point of view.
        if (snap.version < last_version) violations.fetch_add(1);
        last_version = snap.version;
        // Never a torn batch: the row count only takes pre-/post-batch
        // values, and the snapshot is internally consistent (the view is
        // exactly the X-projection of the database it rides with).
        const int extra = snap.view->size() - base_rows;
        if (extra < 0 || extra % kBatchSize != 0) violations.fetch_add(1);
        if (static_cast<uint64_t>(extra) != snap.version * kBatchSize) {
          violations.fetch_add(1);
        }
        if (!snap.database->Project(AttrSet{0, 1}).SameAs(*snap.view)) {
          violations.fetch_add(1);
        }
      }
    });
  }

  gate.Open();
  uint32_t emp = 1000;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<ViewUpdate> batch;
    for (int i = 0; i < kBatchSize; ++i) {
      batch.push_back(
          ViewUpdate::Insert(Row({emp++, 10 + static_cast<uint32_t>(i % 4)})));
    }
    BatchResult r = service->ApplyBatch(batch);
    ASSERT_TRUE(r.ok()) << r.status.ToString() << " " << r.detail;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(service->version(), static_cast<uint64_t>(kBatches));
  EXPECT_EQ(service->Snapshot().view->size(),
            base_rows + kBatches * kBatchSize);
}

TEST(ServiceConcurrencyTest, SnapshotsOutliveLaterWrites) {
  auto service = MakeService();
  ViewSnapshot snap = service->Snapshot();
  const int rows_before = snap.view->size();
  // A reader holding a snapshot while many writes land keeps a stable,
  // fully usable relation (shared_ptr keeps the version alive).
  std::thread writer([&] {
    for (uint32_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(service->Apply(ViewUpdate::Insert(Row({2000 + i, 10}))).ok());
    }
  });
  writer.join();
  EXPECT_EQ(snap.view->size(), rows_before);
  EXPECT_EQ(snap.version, 0u);
  EXPECT_EQ(service->Snapshot().view->size(), rows_before + 20);
}

TEST(ServiceConcurrencyTest, ConcurrentReadersViaThreadPool) {
  auto service = MakeService();
  ThreadPool pool(4);
  std::atomic<int> bad{0};
  std::atomic<bool> done{false};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      // do-while: every reader observes at least one snapshot even if the
      // writer finishes before this task is scheduled.
      do {
        ViewSnapshot snap = service->Snapshot();
        if (snap.view->size() !=
            snap.database->Project(AttrSet{0, 1}).size()) {
          bad.fetch_add(1);
        }
      } while (!done.load(std::memory_order_acquire));
    });
  }
  for (uint32_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(service->Apply(ViewUpdate::Insert(Row({3000 + i, 11}))).ok());
  }
  done.store(true, std::memory_order_release);
  pool.Wait();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(service->metrics().snapshots(), 0u);
}

}  // namespace
}  // namespace relview
