// Tests for the Armstrong derivation engine: completeness against the
// closure algorithm, and independent replay of every produced proof.

#include "deps/armstrong.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace relview {
namespace {

TEST(ArmstrongTest, DerivesTransitiveChain) {
  Universe u = Universe::Parse("A B C D").value();
  auto fds = *FDSet::Parse(u, "A -> B; B -> C; C -> D");
  auto d = DeriveFD(fds, u.SetOf("A"), u.SetOf("D"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->lhs, u.SetOf("A"));
  EXPECT_EQ((*d)->rhs, u.SetOf("D"));
  EXPECT_FALSE((*d)->explicit_fd);
  EXPECT_TRUE(ReplayDerivation(**d, fds, EFDSet()).ok());
  // The rendering mentions every rule used.
  const std::string proof = (*d)->ToString(&u);
  EXPECT_NE(proof.find("transitivity"), std::string::npos);
  EXPECT_NE(proof.find("given"), std::string::npos);
}

TEST(ArmstrongTest, RefusesNonImpliedFD) {
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> B");
  auto d = DeriveFD(fds, u.SetOf("B"), u.SetOf("A"));
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(ArmstrongTest, ReflexivityAlone) {
  Universe u = Universe::Parse("A B").value();
  FDSet none;
  auto d = DeriveFD(none, u.SetOf("A B"), u.SetOf("A"));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(ReplayDerivation(**d, none, EFDSet()).ok());
}

TEST(ArmstrongTest, EFDDerivationCarriesExplicitJudgements) {
  Universe u = Universe::Parse("Cost Rate Price Tax").value();
  EFDSet efds;
  efds.Add(EFD(u.SetOf("Cost Rate"), u.SetOf("Price")));
  efds.Add(EFD(u.SetOf("Price"), u.SetOf("Tax")));
  auto d = DeriveEFD(efds, u.SetOf("Cost Rate"), u.SetOf("Tax"));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE((*d)->explicit_fd);
  EXPECT_TRUE(ReplayDerivation(**d, FDSet(), efds).ok());
  EXPECT_NE((*d)->ToString(&u).find("->e"), std::string::npos);
}

TEST(ArmstrongTest, ReplayRejectsTamperedProof) {
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> B");
  auto d = DeriveFD(fds, u.SetOf("A"), u.SetOf("B"));
  ASSERT_TRUE(d.ok());
  // Tamper: claim a different conclusion.
  Derivation forged = **d;
  forged.rhs = u.SetOf("C");
  EXPECT_FALSE(ReplayDerivation(forged, fds, EFDSet()).ok());
  // Tamper: fabricate a 'given' leaf.
  Derivation fake_leaf;
  fake_leaf.lhs = u.SetOf("B");
  fake_leaf.rhs = u.SetOf("C");
  fake_leaf.rule = InferenceRule::kGiven;
  EXPECT_FALSE(ReplayDerivation(fake_leaf, fds, EFDSet()).ok());
}

TEST(ArmstrongTest, ReplayRejectsMixedJudgements) {
  Universe u = Universe::Parse("A B").value();
  Derivation fd_leaf;
  fd_leaf.lhs = u.SetOf("A");
  fd_leaf.rhs = u.SetOf("A");
  fd_leaf.rule = InferenceRule::kReflexivity;
  Derivation efd_root;
  efd_root.lhs = u.SetOf("A");
  efd_root.rhs = u.SetOf("A");
  efd_root.explicit_fd = true;
  efd_root.rule = InferenceRule::kAugmentation;
  efd_root.premises.push_back(std::make_shared<Derivation>(fd_leaf));
  EXPECT_FALSE(ReplayDerivation(efd_root, FDSet(), EFDSet()).ok());
}

class ArmstrongPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArmstrongPropertyTest, CompleteAndSoundAgainstClosure) {
  const int width = 6;
  Rng rng(5000 + GetParam());
  FDSet fds;
  const int nfd = 1 + static_cast<int>(rng.Below(5));
  for (int i = 0; i < nfd; ++i) {
    AttrSet lhs;
    for (int c = 0; c < width; ++c) {
      if (rng.Chance(0.35)) lhs.Add(static_cast<AttrId>(c));
    }
    fds.Add(lhs, static_cast<AttrId>(rng.Below(width)));
  }
  for (int probe = 0; probe < 12; ++probe) {
    AttrSet lhs, rhs;
    for (int c = 0; c < width; ++c) {
      if (rng.Chance(0.4)) lhs.Add(static_cast<AttrId>(c));
      if (rng.Chance(0.4)) rhs.Add(static_cast<AttrId>(c));
    }
    if (rhs.Empty()) continue;
    const bool implied = fds.Implies(lhs, rhs);
    auto d = DeriveFD(fds, lhs, rhs);
    EXPECT_EQ(d.ok(), implied) << fds.ToString() << " " << lhs.ToString()
                               << "->" << rhs.ToString();
    if (d.ok()) {
      EXPECT_TRUE(ReplayDerivation(**d, fds, EFDSet()).ok());
      EXPECT_EQ((*d)->lhs, lhs);
      EXPECT_EQ((*d)->rhs, rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArmstrongPropertyTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace relview
