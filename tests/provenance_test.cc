// Provenance tests, pinned to the paper's running example (Theorem 3):
// U = {Emp, Dept, Mgr}, Sigma = {Emp -> Dept, Dept -> Mgr}, X = ED,
// Y = DM, V = {(e1,d1), (e2,d1), (e3,d2)}. A rejected update must
// reproducibly report *which* condition of the translatability test
// failed and, for condition (c), the violated FD and the violator row —
// through the service layer's DecisionLog, not just the in-memory report.

#include "obs/provenance.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/update_service.h"
#include "view/insertion.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = Universe::Parse("Emp Dept Mgr").value();
    DependencySet sigma;
    sigma.fds = *FDSet::Parse(u_, "Emp -> Dept; Dept -> Mgr");
    auto vt = ViewTranslator::Create(u_, sigma, u_.SetOf("Emp Dept"),
                                     u_.SetOf("Dept Mgr"));
    ASSERT_TRUE(vt.ok()) << vt.status().ToString();
    Relation db(u_.All());
    db.AddRow(Row({1, 10, 100}));
    db.AddRow(Row({2, 10, 100}));
    db.AddRow(Row({3, 20, 200}));
    ASSERT_TRUE(vt->Bind(std::move(db)).ok());
    auto service = UpdateService::Create(std::move(*vt));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(*service);
  }

  Universe u_;
  std::unique_ptr<UpdateService> service_;
};

TEST_F(ProvenanceTest, RejectedInsertionReportsConditionCWithFdAndViolator) {
  // (e1, d2): condition (c) must reject — the FD Emp -> Dept has row
  // (e1, d1) agreeing with t on Emp but not Dept (insertion_test.cc proves
  // the verdict; here we prove the provenance survives the service).
  Status st = service_->Apply(ViewUpdate::Insert(Row({1, 20})));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);

  auto trace = service_->decisions().LastRejected();
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->kind, 'I');
  EXPECT_FALSE(trace->accepted);
  EXPECT_EQ(trace->failed_condition, 'c');
  EXPECT_EQ(trace->verdict, "FailsChase");
  ASSERT_TRUE(trace->has_violated_fd);
  EXPECT_TRUE(trace->violated_fd.lhs.Contains(u_["Emp"]));
  EXPECT_EQ(trace->violated_fd.rhs, u_["Dept"]);
  ASSERT_TRUE(trace->has_violator);
  EXPECT_EQ(trace->violator_row, 0);
  EXPECT_EQ(trace->violator_tuple, Row({1, 10}));
  // The mu row matching t on X∩Y (Dept = d2) is (e3, d2).
  ASSERT_TRUE(trace->has_mu);
  EXPECT_EQ(trace->mu_tuple, Row({3, 20}));
  EXPECT_GT(trace->check_nanos, 0);
  EXPECT_EQ(trace->apply_nanos, 0);
  EXPECT_EQ(trace->batch_index, 0);  // Apply is a batch of one

  // Human/machine renderings carry the same evidence.
  const std::string text = trace->ToString(&u_);
  EXPECT_NE(text.find("REJECTED"), std::string::npos);
  EXPECT_NE(text.find("(c)"), std::string::npos);
  EXPECT_NE(text.find("Emp -> Dept"), std::string::npos);
  EXPECT_NE(text.find("V[0]"), std::string::npos);
  const std::string json = trace->ToJson(&u_);
  EXPECT_NE(json.find("\"failed_condition\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"violated_fd\":\"Emp -> Dept\""), std::string::npos);
  EXPECT_NE(json.find("\"violator_row\":0"), std::string::npos);
}

TEST_F(ProvenanceTest, ConditionAFailureHasNoFdEvidence) {
  // (e4, d9): d9 has no complement row — condition (a).
  Status st = service_->Apply(ViewUpdate::Insert(Row({4, 90})));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  auto trace = service_->decisions().LastRejected();
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->failed_condition, 'a');
  EXPECT_EQ(trace->verdict, "FailsComplementMembership");
  EXPECT_FALSE(trace->has_violated_fd);
  EXPECT_FALSE(trace->has_violator);
}

TEST_F(ProvenanceTest, RejectedDeletionIsTracedToo) {
  // Deleting (e3, d2) would orphan d2's complement row: condition (a).
  Status st = service_->Apply(ViewUpdate::Delete(Row({3, 20})));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  auto trace = service_->decisions().LastRejected();
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->kind, 'D');
  EXPECT_EQ(trace->failed_condition, 'a');
}

TEST_F(ProvenanceTest, AcceptedDecisionsAreRecordedAsWell) {
  ASSERT_TRUE(service_->Apply(ViewUpdate::Insert(Row({4, 10}))).ok());
  auto trace = service_->decisions().Last();
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->kind, 'I');
  EXPECT_TRUE(trace->accepted);
  EXPECT_EQ(trace->failed_condition, '-');
  EXPECT_EQ(trace->verdict, "Translatable");
  EXPECT_GT(trace->apply_nanos, 0);
  EXPECT_FALSE(service_->decisions().LastRejected().has_value());
}

TEST_F(ProvenanceTest, BatchPositionIsThreadedIntoStatusAndTrace) {
  // Update 0 accepts, update 1 is the condition-(c) rejection: the batch
  // rolls back and both the Status payload and the DecisionTrace carry
  // the failing position.
  std::vector<ViewUpdate> batch = {
      ViewUpdate::Insert(Row({4, 10})),
      ViewUpdate::Insert(Row({1, 20})),
      ViewUpdate::Insert(Row({5, 10})),  // never staged
  };
  BatchResult r = service_->ApplyBatch(batch);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.failed_index, 1);
  EXPECT_EQ(r.status.batch_index(), 1);
  EXPECT_EQ(service_->version(), 0u);  // rolled back

  ASSERT_EQ(service_->decisions().total(), 2u);  // update 2 never ran
  std::vector<DecisionTrace> traces = service_->decisions().Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_TRUE(traces[0].accepted);
  EXPECT_EQ(traces[0].batch_index, 0);
  EXPECT_FALSE(traces[1].accepted);
  EXPECT_EQ(traces[1].batch_index, 1);
  EXPECT_EQ(traces[1].failed_condition, 'c');
  auto rejected = service_->decisions().LastRejected();
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->batch_index, 1);
}

TEST_F(ProvenanceTest, SingleUpdateStatusCarriesBatchIndexZero) {
  Status st = service_->Apply(ViewUpdate::Insert(Row({1, 20})));
  EXPECT_EQ(st.batch_index(), 0);
  // A default-constructed status is not batch-scoped.
  EXPECT_EQ(Status::OK().batch_index(), -1);
}

TEST(FailingConditionTest, MapsEveryVerdictToItsPaperCondition) {
  EXPECT_EQ(FailingCondition(TranslationVerdict::kTranslatable), '-');
  EXPECT_EQ(FailingCondition(TranslationVerdict::kIdentity), '-');
  EXPECT_EQ(FailingCondition(TranslationVerdict::kFailsComplementMembership),
            'a');
  EXPECT_EQ(FailingCondition(TranslationVerdict::kFailsCommonPartNotKeyOfY),
            'b');
  EXPECT_EQ(FailingCondition(TranslationVerdict::kFailsCommonPartKeyOfX),
            'b');
  EXPECT_EQ(FailingCondition(TranslationVerdict::kFailsChase), 'c');
}

TEST(DecisionLogTest, BoundedLogKeepsTheNewestTraces) {
  DecisionLog log(4);
  for (int i = 0; i < 10; ++i) {
    DecisionTrace t;
    t.kind = 'I';
    t.accepted = (i % 2) == 0;
    EXPECT_EQ(log.Push(std::move(t)), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.capacity(), 4u);
  std::vector<DecisionTrace> traces = log.Snapshot();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces.front().sequence, 6u);  // oldest retained
  EXPECT_EQ(traces.back().sequence, 9u);
  auto last = log.Last();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->sequence, 9u);
  auto rejected = log.LastRejected();
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->sequence, 9u);  // i=9 was odd -> rejected
}

TEST(DecisionLogTest, EmptyLogHasNoLast) {
  DecisionLog log;
  EXPECT_FALSE(log.Last().has_value());
  EXPECT_FALSE(log.LastRejected().has_value());
  EXPECT_EQ(log.total(), 0u);
}

}  // namespace
}  // namespace relview
