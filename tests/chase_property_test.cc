// Randomized property suite for the instance chase, parameterized over
// backends and seeds:
//   * the fixpoint satisfies every FD;
//   * chasing a fixpoint again is a no-op;
//   * the two backends agree on conflict status and on the per-column
//     constant content;
//   * Resolve() maps every input cell to its cell in the fixpoint.

#include <gtest/gtest.h>

#include <algorithm>

#include "chase/instance_chase.h"
#include "deps/satisfies.h"
#include "relational/universe.h"
#include "util/rng.h"

namespace relview {
namespace {

struct Instance {
  Relation rel{AttrSet()};
  FDSet fds;
};

Instance MakeRandomNullInstance(uint64_t seed) {
  Rng rng(seed);
  const int width = 3 + static_cast<int>(rng.Below(3));
  const int rows = 4 + static_cast<int>(rng.Below(12));
  Instance out;
  out.rel = Relation(AttrSet::FirstN(width));
  uint32_t next_null = 0;
  for (int i = 0; i < rows; ++i) {
    Tuple t(width);
    for (int c = 0; c < width; ++c) {
      if (rng.Chance(0.45)) {
        t[c] = Value::Null(next_null++);
      } else {
        // Per-column constant space.
        t[c] = Value::Const(static_cast<uint32_t>(c) * 100 +
                            static_cast<uint32_t>(rng.Below(3)));
      }
    }
    out.rel.AddRow(std::move(t));
  }
  const int nfds = 1 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < nfds; ++i) {
    AttrSet lhs;
    for (int c = 0; c < width; ++c) {
      if (rng.Chance(0.4)) lhs.Add(static_cast<AttrId>(c));
    }
    out.fds.Add(lhs, static_cast<AttrId>(rng.Below(width)));
  }
  return out;
}

class ChasePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChasePropertyTest, FixpointSatisfiesFDsAndIsIdempotent) {
  const Instance in = MakeRandomNullInstance(1000 + GetParam());
  for (ChaseBackend backend : {ChaseBackend::kHash, ChaseBackend::kSort}) {
    ChaseOutcome out = ChaseInstance(in.rel, in.fds, backend);
    if (out.conflict) continue;
    EXPECT_TRUE(SatisfiesAll(out.result, in.fds));
    ChaseOutcome again = ChaseInstance(out.result, in.fds, backend);
    EXPECT_FALSE(again.conflict);
    EXPECT_EQ(again.stats.merges, 0);
    EXPECT_TRUE(again.result.SameAs(out.result));
  }
}

TEST_P(ChasePropertyTest, BackendsAgree) {
  const Instance in = MakeRandomNullInstance(2000 + GetParam());
  ChaseOutcome h = ChaseInstance(in.rel, in.fds, ChaseBackend::kHash);
  ChaseOutcome s = ChaseInstance(in.rel, in.fds, ChaseBackend::kSort);
  ASSERT_EQ(h.conflict, s.conflict) << "seed " << GetParam();
  if (h.conflict) return;
  EXPECT_EQ(h.result.size(), s.result.size());
  for (int c = 0; c < h.result.arity(); ++c) {
    std::vector<uint32_t> hc, sc;
    for (int i = 0; i < h.result.size(); ++i) {
      if (h.result.row(i)[c].is_const()) {
        hc.push_back(h.result.row(i)[c].raw());
      }
      if (s.result.row(i)[c].is_const()) {
        sc.push_back(s.result.row(i)[c].raw());
      }
    }
    std::sort(hc.begin(), hc.end());
    std::sort(sc.begin(), sc.end());
    EXPECT_EQ(hc, sc) << "seed " << GetParam() << " column " << c;
  }
}

TEST_P(ChasePropertyTest, ResolveMapsInputCellsIntoFixpoint) {
  const Instance in = MakeRandomNullInstance(3000 + GetParam());
  ChaseOutcome out = ChaseInstance(in.rel, in.fds, ChaseBackend::kHash);
  if (out.conflict) return;
  // Every input row, with all cells resolved, must be a row of the
  // fixpoint.
  for (const Tuple& row : in.rel.rows()) {
    Tuple resolved(row.arity());
    for (int c = 0; c < row.arity(); ++c) {
      resolved[c] = out.Resolve(row[c]);
    }
    EXPECT_TRUE(out.result.ContainsRow(resolved)) << "seed " << GetParam();
  }
}

TEST_P(ChasePropertyTest, ConflictImpliesGenuineContradiction) {
  // When the chase reports a conflict, the instance (restricted to its
  // constants) must genuinely be unable to satisfy the FDs: verify with
  // an independent check — the sort backend must also report conflict.
  const Instance in = MakeRandomNullInstance(4000 + GetParam());
  ChaseOutcome h = ChaseInstance(in.rel, in.fds, ChaseBackend::kHash);
  ChaseOutcome s = ChaseInstance(in.rel, in.fds, ChaseBackend::kSort);
  EXPECT_EQ(h.conflict, s.conflict);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChasePropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace relview
