// Recovery torture test: randomized kill-points against the durable
// store. Each iteration forks a child that serves a deterministic update
// stream through UpdateService (small segments, aggressive auto-
// checkpointing) with one crash failpoint armed at a random hit count;
// the child dies mid-write, mid-rename, mid-compaction... wherever the
// die roll lands. The parent then recovers from whatever the child left
// on disk and asserts the recovered database is *identical* to a
// lockstep in-memory oracle — fact (ii) of the constant-complement
// framework says replaying the accepted prefix must reproduce the state
// bit for bit, no matter where the power went out.
//
// A second section runs the same discipline against the SHARDED write
// path (ShardedService, group-commit journals, one data directory per
// shard) with kill sites inside the commit queue itself; recovery must
// recompose per-shard oracle states.
//
// Environment knobs:
//   RELVIEW_TORTURE_ITERS  iterations (default 25; CI runs 200)
//   RELVIEW_TORTURE_DIR    base directory for the per-iteration stores
//                          (default: the test temp dir). A failing
//                          iteration's journal+checkpoint directory is
//                          kept and its path printed, so it can be
//                          uploaded as a CI artifact and replayed.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "service/update_service.h"
#include "shard/router.h"
#include "shard/sharded_service.h"
#include "util/failpoint.h"
#include "view/translator.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

/// A fresh Emp-Dept-Mgr translator bound to the canonical instance.
ViewTranslator MakeTranslator() {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                   u.SetOf("Dept Mgr"));
  EXPECT_TRUE(vt.ok()) << vt.status().ToString();
  Relation db(vt->universe().All());
  db.AddRow(Row({1, 10, 100}));
  db.AddRow(Row({2, 10, 100}));
  db.AddRow(Row({3, 20, 200}));
  EXPECT_TRUE(vt->Bind(std::move(db)).ok());
  return std::move(*vt);
}

/// The deterministic update stream for one iteration: a seeded mix of
/// inserts of fresh employees and deletes of earlier ones. std::mt19937
/// is bit-reproducible across platforms, so the child, the oracle and a
/// postmortem rerun all see the same list. Some deletes are
/// untranslatable (last employee of a department) — both the child and
/// the oracle reject exactly those, which is part of the point.
std::vector<ViewUpdate> MakeWorkload(uint32_t seed, int n) {
  std::mt19937 rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> live = {{1, 10}, {2, 10},
                                                     {3, 20}};
  uint32_t next_emp = 1000;
  std::vector<ViewUpdate> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (live.size() > 4 && rng() % 3 == 0) {
      const size_t k = rng() % live.size();
      out.push_back(ViewUpdate::Delete(Row({live[k].first, live[k].second})));
      live.erase(live.begin() + static_cast<ptrdiff_t>(k));
    } else {
      const uint32_t dept = rng() % 2 ? 10 : 20;
      out.push_back(ViewUpdate::Insert(Row({next_emp, dept})));
      live.emplace_back(next_emp, dept);
      ++next_emp;
    }
  }
  return out;
}

/// Replays the workload through a fresh translator until exactly `target`
/// updates have been accepted; returns the database at that point. This
/// is the oracle the recovered store must match.
Relation OracleAfter(const std::vector<ViewUpdate>& workload,
                     uint64_t target, uint64_t* accepted_out) {
  ViewTranslator vt = MakeTranslator();
  uint64_t accepted = 0;
  for (const ViewUpdate& u : workload) {
    if (accepted == target) break;
    Status st = u.kind == UpdateKind::kInsert ? vt.Insert(u.t1)
                                              : vt.Delete(u.t1);
    if (st.ok()) ++accepted;
  }
  *accepted_out = accepted;
  return vt.database();
}

/// Every site a child may be killed at, plus one silent-corruption mode
/// ("checkpoint.flip" never crashes: the child finishes cleanly and
/// recovery must *detect* the damage and fall back).
struct KillPoint {
  const char* name;
  const char* action;
};
constexpr KillPoint kKillPoints[] = {
    {"service.crash_before_journal", "crash"},
    {"journal.crash_after_write", "crash"},
    {"service.crash_before_publish", "crash"},
    {"checkpoint.crash_before_rename", "crash"},
    {"checkpoint.crash_after_rename", "crash"},
    {"compact.crash_mid_delete", "crash"},
    {"checkpoint.flip", "flip:2"},
};

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

TEST(RecoveryTortureTest, RandomizedKillPointsRecoverToOracle) {
  const int iters = EnvInt("RELVIEW_TORTURE_ITERS", 25);
  const char* base_env = std::getenv("RELVIEW_TORTURE_DIR");
  const std::string base =
      base_env != nullptr && *base_env != '\0'
          ? std::string(base_env)
          : ::testing::TempDir() + "recovery_torture";
  std::filesystem::create_directories(base);
  constexpr int kUpdates = 60;

  for (int iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const std::string dir = base + "/iter_" + std::to_string(iter);
    std::filesystem::remove_all(dir);

    // The iteration index seeds everything: the workload, the kill site
    // and the hit count it fires on. Rerunning a failing iteration
    // reproduces its exact crash.
    std::mt19937 dice(0x7040u + static_cast<uint32_t>(iter));
    const std::vector<ViewUpdate> workload =
        MakeWorkload(static_cast<uint32_t>(iter), kUpdates);
    const KillPoint kp =
        kKillPoints[dice() % (sizeof(kKillPoints) / sizeof(kKillPoints[0]))];
    const uint32_t nth = 1 + dice() % 12;
    const std::string spec = std::string(kp.action) +
                             (std::string(kp.action) == "crash"
                                  ? "@" + std::to_string(nth)
                                  : "");

    StoreOptions store;
    store.dir = dir;
    store.rotate_records = 7;
    store.checkpoint_every = 5;
    store.keep_checkpoints = 2;

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // ---- child: serve until the armed failpoint kills us (or the
      // workload runs dry). Plain _exit codes, no gtest machinery.
      if (!Failpoints::Set(kp.name, spec).ok()) ::_exit(3);
      ViewTranslator vt = MakeTranslator();
      ServiceOptions opts;
      opts.store = store;
      auto service = UpdateService::Create(std::move(vt), opts);
      if (!service.ok()) ::_exit(5);
      for (const ViewUpdate& u : workload) {
        (void)(*service)->Apply(u);  // rejections are part of the stream
      }
      ::_exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit normally";
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == Failpoints::kCrashExitCode)
        << "child exited " << code << " (kill point " << kp.name << "@"
        << nth << ")";

    // ---- parent: recover from whatever is on disk.
    ViewTranslator vt = MakeTranslator();
    ServiceOptions opts;
    opts.store = store;
    auto service = UpdateService::Create(std::move(vt), opts);
    ASSERT_TRUE(service.ok())
        << "recovery failed after " << kp.name << "@" << nth << ": "
        << service.status().ToString() << "\nstore kept at " << dir;
    const RecoveryInfo& info = (*service)->store()->recovery();

    // Compaction soundness: the durable suffix past the checkpoint was
    // replayable — the store never reached past its newest checkpoint.
    EXPECT_GE(info.recovered_seq, (*service)->store()->last_checkpoint_seq());

    // The recovered database must equal the oracle at recovered_seq.
    uint64_t oracle_accepted = 0;
    const Relation oracle =
        OracleAfter(workload, info.recovered_seq, &oracle_accepted);
    ASSERT_EQ(oracle_accepted, info.recovered_seq)
        << "journal holds more accepted updates than the workload can "
        << "explain; store kept at " << dir;
    const ViewSnapshot snap = (*service)->Snapshot();
    ASSERT_TRUE(snap.database->SameAs(oracle))
        << "recovered state diverges from the oracle after " << kp.name
        << "@" << nth << " (recovered_seq " << info.recovered_seq
        << ", replayed " << info.replayed << ", ckpt "
        << info.checkpoint_seq << ")\nstore kept at " << dir;

    // The recovered service must be live: accept one more update and
    // advance the durable sequence number.
    const uint64_t before = (*service)->store()->seq();
    const uint32_t fresh_emp = 90000 + static_cast<uint32_t>(iter);
    ASSERT_TRUE((*service)->Apply(ViewUpdate::Insert(Row({fresh_emp, 10})))
                    .ok());
    EXPECT_EQ((*service)->store()->seq(), before + 1);

    if (!::testing::Test::HasFailure()) {
      std::filesystem::remove_all(dir);
    } else {
      std::fprintf(stderr,
                   "relview torture: iteration %d FAILED; artifacts kept "
                   "at %s\n",
                   iter, dir.c_str());
      break;
    }
  }
}

// ---------------------------------------------------------------------
// Sharded variant: the same randomized-kill discipline against a
// ShardedService with the group-commit journal path — N data directories,
// one journal per shard, crash sites including the commit queue's own
// failpoints (unsynced append, before/after the cohort fsync). The
// recovered COMPOSITE state must match a per-shard lockstep oracle: the
// router is deterministic, so each shard's accepted prefix is exactly the
// shard-routed sub-stream replayed to that shard's recovered_seq.
// ---------------------------------------------------------------------

/// The canonical schema pieces shared by the sharded child and oracle.
struct ShardedFixture {
  Universe u;
  DependencySet sigma;
  AttrSet x;
  AttrSet y;
  Relation seed;

  ShardedFixture()
      : u(Universe::Parse("Emp Dept Mgr").value()),
        x(u.SetOf("Emp Dept")),
        y(u.SetOf("Dept Mgr")),
        seed(u.All()) {
    sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
    seed.AddRow(Row({1, 10, 100}));
    seed.AddRow(Row({2, 10, 100}));
    seed.AddRow(Row({3, 20, 200}));
    seed.AddRow(Row({4, 30, 300}));
    seed.AddRow(Row({5, 30, 300}));
  }
};

/// Shard `shard`'s lockstep oracle: a translator over the router-selected
/// slice of the seed, replaying the shard-routed sub-stream until exactly
/// `target` updates have been accepted shard-locally.
Relation ShardOracleAfter(const ShardedFixture& f, const ShardRouter& router,
                          int shard, const std::vector<ViewUpdate>& workload,
                          uint64_t target, uint64_t* accepted_out) {
  auto vt = ViewTranslator::Create(f.u, f.sigma, f.x, f.y);
  EXPECT_TRUE(vt.ok());
  Relation db(f.u.All());
  for (const Tuple& row : f.seed.rows()) {
    if (router.ShardOfBase(row) == shard) db.AddRow(row);
  }
  EXPECT_TRUE(vt->Bind(std::move(db)).ok());
  uint64_t accepted = 0;
  for (const ViewUpdate& u : workload) {
    if (accepted == target) break;
    if (router.ShardOfView(u.t1) != shard) continue;
    Status st = u.kind == UpdateKind::kInsert ? vt->Insert(u.t1)
                                              : vt->Delete(u.t1);
    if (st.ok()) ++accepted;
  }
  *accepted_out = accepted;
  return vt->database();
}

/// Single-update translatable batches over the sharded seed: fresh
/// inserts into the seeded departments plus deletes of earlier inserts
/// (never a department's last member, so every shard-local verdict is
/// accept — the stream stays translatable end to end as the issue's
/// sharded torture spec requires).
std::vector<ViewUpdate> MakeShardedWorkload(uint32_t seed_val, int n) {
  std::mt19937 rng(seed_val);
  const uint32_t depts[] = {10, 20, 30};
  std::vector<std::pair<uint32_t, uint32_t>> inserted;
  uint32_t next_emp = 2000;
  std::vector<ViewUpdate> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (!inserted.empty() && rng() % 4 == 0) {
      const size_t k = rng() % inserted.size();
      out.push_back(
          ViewUpdate::Delete(Row({inserted[k].first, inserted[k].second})));
      inserted.erase(inserted.begin() + static_cast<ptrdiff_t>(k));
    } else {
      const uint32_t dept = depts[rng() % 3];
      out.push_back(ViewUpdate::Insert(Row({next_emp, dept})));
      inserted.emplace_back(next_emp, dept);
      ++next_emp;
    }
  }
  return out;
}

/// Kill sites for the sharded child: the group-commit queue's own
/// failpoints plus the shared journal/checkpoint sites underneath it.
constexpr KillPoint kShardedKillPoints[] = {
    {"commit.crash_before_append", "crash"},
    {"commit.crash_before_sync", "crash"},
    {"commit.crash_after_sync", "crash"},
    {"journal.crash_after_write", "crash"},
    {"checkpoint.crash_before_rename", "crash"},
};

TEST(RecoveryTortureTest, ShardedGroupCommitRecoversToPerShardOracles) {
  const int iters = EnvInt("RELVIEW_TORTURE_ITERS", 25);
  const char* base_env = std::getenv("RELVIEW_TORTURE_DIR");
  const std::string base =
      base_env != nullptr && *base_env != '\0'
          ? std::string(base_env) + "_sharded"
          : ::testing::TempDir() + "recovery_torture_sharded";
  std::filesystem::create_directories(base);
  constexpr int kUpdates = 60;
  constexpr int kShards = 3;

  ShardedFixture f;
  const ShardRouter router(f.u, f.x, f.y, kShards);
  for (int iter = 0; iter < iters; ++iter) {
    SCOPED_TRACE("sharded iteration " + std::to_string(iter));
    const std::string dir = base + "/iter_" + std::to_string(iter);
    std::filesystem::remove_all(dir);

    std::mt19937 dice(0x5a4du ^ static_cast<uint32_t>(iter));
    const std::vector<ViewUpdate> workload =
        MakeShardedWorkload(static_cast<uint32_t>(iter), kUpdates);
    const KillPoint kp = kShardedKillPoints[
        dice() % (sizeof(kShardedKillPoints) / sizeof(kShardedKillPoints[0]))];
    const uint32_t nth = 1 + dice() % 12;
    const std::string spec =
        std::string(kp.action) + "@" + std::to_string(nth);

    ShardedServiceOptions options;
    options.shards = kShards;
    options.store_root = dir;
    options.checkpoint_every = 5;
    options.rotate_records = 7;
    options.group_commit = true;
    options.group_window_us = 100;

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // ---- child: apply single-update batches until the failpoint
      // kills us. Plain _exit codes, no gtest machinery.
      if (!Failpoints::Set(kp.name, spec).ok()) ::_exit(3);
      auto svc = ShardedService::Create(f.u, f.sigma, f.x, f.y, f.seed,
                                        options);
      if (!svc.ok()) ::_exit(5);
      for (const ViewUpdate& u : workload) {
        std::vector<ViewUpdate> batch{u};
        (void)(*svc)->ApplyBatch(batch);
      }
      ::_exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit normally";
    const int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 || code == Failpoints::kCrashExitCode)
        << "child exited " << code << " (kill point " << kp.name << "@"
        << nth << ")";

    // ---- parent: recover the composition from the N data directories.
    auto svc = ShardedService::Create(f.u, f.sigma, f.x, f.y, f.seed,
                                      options);
    ASSERT_TRUE(svc.ok())
        << "sharded recovery failed after " << kp.name << "@" << nth
        << ": " << svc.status().ToString() << "\nstores kept at " << dir;

    // Shard by shard: the recovered database equals the lockstep oracle
    // replayed to that shard's own recovered sequence number.
    for (int s = 0; s < (*svc)->shard_count(); ++s) {
      SCOPED_TRACE("shard " + std::to_string(s));
      ASSERT_NE((*svc)->shard(s)->store(), nullptr);
      const RecoveryInfo& info = (*svc)->shard(s)->store()->recovery();
      uint64_t oracle_accepted = 0;
      const Relation oracle = ShardOracleAfter(
          f, router, s, workload, info.recovered_seq, &oracle_accepted);
      ASSERT_EQ(oracle_accepted, info.recovered_seq)
          << "shard journal holds more accepted updates than its "
          << "sub-stream can explain; stores kept at " << dir;
      const ViewSnapshot snap = (*svc)->shard(s)->Snapshot();
      ASSERT_TRUE(snap.database->SameAs(oracle))
          << "shard state diverges from its oracle after " << kp.name
          << "@" << nth << " (recovered_seq " << info.recovered_seq
          << ")\nstores kept at " << dir;
    }

    // Liveness: the recovered composition accepts a fresh batch and the
    // composite version advances.
    const uint64_t before = (*svc)->version();
    std::vector<ViewUpdate> fresh{ViewUpdate::Insert(
        Row({95000 + static_cast<uint32_t>(iter), 10}))};
    ASSERT_TRUE((*svc)->ApplyBatch(fresh).ok());
    EXPECT_EQ((*svc)->version(), before + 1);

    if (!::testing::Test::HasFailure()) {
      std::filesystem::remove_all(dir);
    } else {
      std::fprintf(stderr,
                   "relview sharded torture: iteration %d FAILED; "
                   "artifacts kept at %s\n",
                   iter, dir.c_str());
      break;
    }
  }
}

}  // namespace
}  // namespace relview
