// HTTP and JSON parsing edge cases for the network front-end: torn
// reads (arbitrary chunking must parse identically to one Feed),
// pipelining, the typed over-limit errors (413/431/411/501), and the
// JSON parser's rejection paths. The loopback server behaviors (429,
// deadlines, drain) live in net_server_test.cc.

#include <algorithm>
#include <string>

#include "gtest/gtest.h"
#include "net/http.h"
#include "net/json.h"

namespace relview {
namespace net {
namespace {

constexpr char kSimplePost[] =
    "POST /v1/batch HTTP/1.1\r\n"
    "Host: x\r\n"
    "Content-Length: 2\r\n"
    "\r\n"
    "{}";

TEST(RequestParser, ParsesPostWithBody) {
  RequestParser p;
  p.Feed(kSimplePost, sizeof(kSimplePost) - 1);
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().path, "/v1/batch");
  EXPECT_EQ(p.request().body, "{}");
  EXPECT_EQ(p.request().Header("content-length"), "2");
  EXPECT_TRUE(p.request().keep_alive());
}

TEST(RequestParser, ByteAtATimeMatchesOneShot) {
  // A torn read at *every* byte boundary must land in the same state.
  const std::string req(kSimplePost);
  RequestParser torn;
  for (char c : req) {
    torn.Feed(&c, 1);
  }
  ASSERT_TRUE(torn.complete());
  RequestParser oneshot;
  oneshot.Feed(req.data(), req.size());
  ASSERT_TRUE(oneshot.complete());
  EXPECT_EQ(torn.request().body, oneshot.request().body);
  EXPECT_EQ(torn.request().target, oneshot.request().target);
  EXPECT_EQ(torn.request().headers.size(), oneshot.request().headers.size());
}

TEST(RequestParser, MidRequestReportsTorn) {
  RequestParser p;
  EXPECT_FALSE(p.mid_request());  // idle, nothing fed
  p.Feed("POST /v1/batch HT", 17);
  EXPECT_TRUE(p.mid_request());  // bytes consumed, request incomplete
  EXPECT_FALSE(p.complete());
  EXPECT_FALSE(p.error());
}

TEST(RequestParser, PipelinedRequestsComeOutInOrder) {
  const std::string two =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  RequestParser p;
  p.Feed(two.data(), two.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().path, "/healthz");
  p.Next();
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().path, "/metrics");
  p.Next();
  EXPECT_FALSE(p.complete());
  EXPECT_FALSE(p.mid_request());
}

TEST(RequestParser, PipelineSplitMidSecondRequest) {
  RequestParser p;
  const std::string chunk1 =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nGET /metr";
  p.Feed(chunk1.data(), chunk1.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().path, "/healthz");
  p.Next();
  EXPECT_FALSE(p.complete());
  EXPECT_TRUE(p.mid_request());
  const std::string chunk2 = "ics HTTP/1.1\r\nHost: x\r\n\r\n";
  p.Feed(chunk2.data(), chunk2.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().path, "/metrics");
}

TEST(RequestParser, OversizedBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  RequestParser p(limits);
  const std::string req =
      "POST /v1/batch HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
  p.Feed(req.data(), req.size());
  ASSERT_TRUE(p.error());
  EXPECT_EQ(p.error_status(), 413);
}

TEST(RequestParser, OversizedHeadersAre431) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  RequestParser p(limits);
  const std::string req = "GET / HTTP/1.1\r\nX-Pad: " +
                          std::string(128, 'a') + "\r\n\r\n";
  p.Feed(req.data(), req.size());
  ASSERT_TRUE(p.error());
  EXPECT_EQ(p.error_status(), 431);
}

TEST(RequestParser, HeaderLimitFiresWithoutBlankLine) {
  // A peer that never sends the terminating blank line must still trip
  // the cap instead of buffering forever.
  HttpLimits limits;
  limits.max_header_bytes = 64;
  RequestParser p(limits);
  const std::string drip = "GET / HTTP/1.1\r\nX-Pad: aaaaaaaa\r\n";
  p.Feed(drip.data(), drip.size());
  p.Feed(drip.data() + 16, drip.size() - 16);  // more header lines
  p.Feed(drip.data() + 16, drip.size() - 16);
  ASSERT_TRUE(p.error());
  EXPECT_EQ(p.error_status(), 431);
}

TEST(RequestParser, PostWithoutContentLengthIs411) {
  RequestParser p;
  const std::string req = "POST /v1/batch HTTP/1.1\r\nHost: x\r\n\r\n";
  p.Feed(req.data(), req.size());
  ASSERT_TRUE(p.error());
  EXPECT_EQ(p.error_status(), 411);
}

TEST(RequestParser, ChunkedEncodingIs501) {
  RequestParser p;
  const std::string req =
      "POST /v1/batch HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  p.Feed(req.data(), req.size());
  ASSERT_TRUE(p.error());
  EXPECT_EQ(p.error_status(), 501);
}

TEST(RequestParser, MalformedRequestLineIs400) {
  RequestParser p;
  const std::string req = "NONSENSE\r\n\r\n";
  p.Feed(req.data(), req.size());
  ASSERT_TRUE(p.error());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(RequestParser, NegativeContentLengthIs400) {
  RequestParser p;
  const std::string req =
      "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n";
  p.Feed(req.data(), req.size());
  ASSERT_TRUE(p.error());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(RequestParser, QueryStringSplitsAndLooksUp) {
  RequestParser p;
  const std::string req =
      "GET /v1/snapshot?tenant=t0&include=database HTTP/1.1\r\n\r\n";
  p.Feed(req.data(), req.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().path, "/v1/snapshot");
  EXPECT_EQ(p.request().QueryParam("tenant"), "t0");
  EXPECT_EQ(p.request().QueryParam("include"), "database");
  EXPECT_EQ(p.request().QueryParam("absent"), "");
}

TEST(RequestParser, ConnectionCloseDisablesKeepAlive) {
  RequestParser p;
  const std::string req =
      "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
  p.Feed(req.data(), req.size());
  ASSERT_TRUE(p.complete());
  EXPECT_FALSE(p.request().keep_alive());
}

TEST(ResponseParser, RoundTripsBuildResponse) {
  const std::string wire =
      BuildResponse(429, "application/json", "{\"error\":\"shed\"}", true,
                    {"Retry-After: 3"});
  ResponseParser p;
  // Torn feed again: two-byte chunks.
  for (size_t i = 0; i < wire.size(); i += 2) {
    p.Feed(wire.data() + i, std::min<size_t>(2, wire.size() - i));
  }
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.status(), 429);
  EXPECT_EQ(p.body(), "{\"error\":\"shed\"}");
  EXPECT_EQ(p.Header("retry-after"), "3");
}

TEST(ResponseParser, PipelinedResponses) {
  const std::string wire = BuildResponse(200, "text/plain", "ok\n", true) +
                           BuildResponse(404, "text/plain", "no\n", true);
  ResponseParser p;
  p.Feed(wire.data(), wire.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.status(), 200);
  p.Next();
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.status(), 404);
}

TEST(BuildRequest, CarriesBodyAndHost) {
  const std::string wire =
      BuildRequest("POST", "/v1/batch", "127.0.0.1", "{\"x\":1}");
  RequestParser p;
  p.Feed(wire.data(), wire.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().body, "{\"x\":1}");
  EXPECT_EQ(p.request().Header("host"), "127.0.0.1");
}

// --- JSON parser rejection paths (the server answers these with 400) ---

TEST(Json, ParsesBatchShape) {
  auto v = ParseJson(
      R"({"tenant":"t0","updates":[{"op":"insert","row":[1,1000000]}]})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* updates = v->Get("updates");
  ASSERT_NE(updates, nullptr);
  ASSERT_TRUE(updates->is_array());
  EXPECT_EQ(updates->array()[0].Get("op")->string_value(), "insert");
  EXPECT_EQ(updates->array()[0].Get("row")->array()[1].int_value(), 1000000);
}

TEST(Json, RejectsTruncatedDocument) {
  EXPECT_FALSE(ParseJson(R"({"tenant":"t0")").ok());
  EXPECT_FALSE(ParseJson("[1,2,").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} {}").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
}

TEST(Json, RejectsNonIntegerNumbers) {
  // Value ids are integers; a double would truncate silently.
  EXPECT_FALSE(ParseJson("1.5").ok());
  EXPECT_FALSE(ParseJson("1e3").ok());
}

TEST(Json, DepthLimitStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  auto v = ParseJson("\"" + JsonEscape(nasty) + "\"");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->string_value(), nasty);
}

}  // namespace
}  // namespace net
}  // namespace relview
