// Tests for the columnar chase kernel (code_chase.h): ChaseBackend::
// kColumnar must reach the *identical* fixpoint as kHash/kSort (each merge
// class resolves to its unique minimum raw element, so the fixpoint is
// merge-order-independent — not just equivalent up to renaming), and the
// semi-naive ProbeDeltaChaser must agree decision-for-decision with the
// copy-and-rechase oracle it replaces.

#include "chase/code_chase.h"

#include <gtest/gtest.h>

#include <random>

#include "chase/instance_chase.h"
#include "deps/satisfies.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<Value> vals) {
  return Tuple(std::vector<Value>(vals));
}

// ---------------------------------------------------------------------------
// ChaseCodes (full kernel) vs the reference backends.

TEST(CodeChaseTest, NullAdoptsConstant) {
  Relation r(AttrSet{0, 1});
  r.AddRow(Row({Value::Const(1), Value::Null(0)}));
  r.AddRow(Row({Value::Const(1), Value::Const(9)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  ChaseOutcome out = ChaseInstance(r, fds, ChaseBackend::kColumnar);
  EXPECT_FALSE(out.conflict);
  EXPECT_EQ(out.result.size(), 1);
  EXPECT_EQ(out.Resolve(Value::Null(0)), Value::Const(9));
  EXPECT_TRUE(SatisfiesAll(out.result, fds));
}

TEST(CodeChaseTest, ConstantConflictDetected) {
  Relation r(AttrSet{0, 1});
  r.AddRow(Row({Value::Const(1), Value::Const(8)}));
  r.AddRow(Row({Value::Const(1), Value::Const(9)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  EXPECT_TRUE(ChaseInstance(r, fds, ChaseBackend::kColumnar).conflict);
}

TEST(CodeChaseTest, NullNullMergeIsDeterministic) {
  Relation r(AttrSet{0, 1});
  r.AddRow(Row({Value::Const(1), Value::Null(5)}));
  r.AddRow(Row({Value::Const(1), Value::Null(3)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  ChaseOutcome out = ChaseInstance(r, fds, ChaseBackend::kColumnar);
  EXPECT_FALSE(out.conflict);
  EXPECT_EQ(out.Resolve(Value::Null(5)), Value::Null(3));
  EXPECT_EQ(out.Resolve(Value::Null(3)), Value::Null(3));
}

TEST(CodeChaseTest, TransitivePropagation) {
  Relation r(AttrSet{0, 1, 2});
  r.AddRow(Row({Value::Const(1), Value::Null(0), Value::Null(1)}));
  r.AddRow(Row({Value::Const(1), Value::Null(2), Value::Const(7)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  fds.Add(AttrSet{1}, 2);
  ChaseOutcome out = ChaseInstance(r, fds, ChaseBackend::kColumnar);
  EXPECT_FALSE(out.conflict);
  EXPECT_EQ(out.Resolve(Value::Null(1)), Value::Const(7));
  EXPECT_TRUE(SatisfiesAll(out.result, fds));
}

TEST(CodeChaseTest, EmptyAndTrivialInstances) {
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  Relation empty(AttrSet{0, 1});
  ChaseOutcome out = ChaseInstance(empty, fds, ChaseBackend::kColumnar);
  EXPECT_FALSE(out.conflict);
  EXPECT_EQ(out.result.size(), 0);

  Relation one(AttrSet{0, 1});
  one.AddRow(Row({Value::Const(1), Value::Null(0)}));
  out = ChaseInstance(one, fds, ChaseBackend::kColumnar);
  EXPECT_FALSE(out.conflict);
  EXPECT_EQ(out.result.size(), 1);
  EXPECT_TRUE(out.renames.empty());
}

/// Random instance generator shared by the property tests.
Relation RandomInstance(std::mt19937* rng, int rows, int arity,
                        int const_range, int null_range) {
  AttrSet attrs;
  for (int a = 0; a < arity; ++a) attrs.Add(static_cast<AttrId>(a));
  Relation r(attrs);
  std::uniform_int_distribution<int> coin(0, 2);
  std::uniform_int_distribution<int> cdist(0, const_range - 1);
  std::uniform_int_distribution<int> ndist(0, null_range - 1);
  for (int i = 0; i < rows; ++i) {
    Tuple t(arity);
    for (int c = 0; c < arity; ++c) {
      t[c] = coin(*rng) == 0
                 ? Value::Null(static_cast<uint32_t>(ndist(*rng)))
                 : Value::Const(static_cast<uint32_t>(cdist(*rng)));
    }
    r.AddRow(t);
  }
  r.Normalize();
  return r;
}

FDSet RandomFDs(std::mt19937* rng, int arity, int count) {
  FDSet fds;
  std::uniform_int_distribution<int> attr(0, arity - 1);
  for (int i = 0; i < count; ++i) {
    AttrSet lhs;
    lhs.Add(static_cast<AttrId>(attr(*rng)));
    if (arity > 2 && attr(*rng) % 2 == 0) {
      lhs.Add(static_cast<AttrId>(attr(*rng)));
    }
    int rhs = attr(*rng);
    while (lhs.Contains(static_cast<AttrId>(rhs))) rhs = attr(*rng);
    fds.Add(lhs, static_cast<AttrId>(rhs));
  }
  return fds;
}

TEST(CodeChaseTest, IdenticalFixpointToHashAndSortOnRandomInstances) {
  std::mt19937 rng(20260809);
  for (int iter = 0; iter < 60; ++iter) {
    const int arity = 2 + iter % 3;
    Relation r = RandomInstance(&rng, 3 + iter % 12, arity, 4, 10);
    FDSet fds = RandomFDs(&rng, arity, 1 + iter % 4);
    const ChaseOutcome hash_out = ChaseInstance(r, fds, ChaseBackend::kHash);
    const ChaseOutcome sort_out = ChaseInstance(r, fds, ChaseBackend::kSort);
    const ChaseOutcome col_out =
        ChaseInstance(r, fds, ChaseBackend::kColumnar);
    ASSERT_EQ(hash_out.conflict, col_out.conflict) << "iter " << iter;
    ASSERT_EQ(sort_out.conflict, col_out.conflict) << "iter " << iter;
    if (col_out.conflict) continue;
    // Merge classes resolve to their minimum element in every backend, so
    // the materialized fixpoints are identical — not merely isomorphic.
    EXPECT_TRUE(col_out.result.SameAs(hash_out.result)) << "iter " << iter;
    EXPECT_TRUE(col_out.result.SameAs(sort_out.result)) << "iter " << iter;
    EXPECT_TRUE(SatisfiesAll(col_out.result, fds)) << "iter " << iter;
    // Resolve() agrees on every input value.
    for (const Tuple& t : r.rows()) {
      for (const Value& v : t.values()) {
        EXPECT_EQ(col_out.Resolve(v), hash_out.Resolve(v)) << "iter " << iter;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ProbeDeltaChaser vs the copy-and-rechase oracle.

TEST(ProbeDeltaChaserTest, AgreesWithFullRechaseOnRandomHypotheses) {
  std::mt19937 rng(987654);
  int live_hypotheses = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const int arity = 2 + iter % 3;
    Relation raw = RandomInstance(&rng, 4 + iter % 10, arity, 3, 12);
    FDSet fds = RandomFDs(&rng, arity, 1 + iter % 3);
    ChaseOutcome base = ChaseInstance(raw, fds, ChaseBackend::kHash);
    if (base.conflict || base.result.empty()) continue;
    const Relation& fix = base.result;

    const CodeProbeIndex index = CodeProbeIndex::Build(fix, fds);
    ProbeDeltaChaser chaser(&index);

    // Random hypotheses: equate pairs of fixpoint cell values.
    std::uniform_int_distribution<int> rdist(0, fix.size() - 1);
    std::uniform_int_distribution<int> cdist(0, arity - 1);
    for (int probe = 0; probe < 8; ++probe) {
      std::vector<std::pair<uint32_t, uint32_t>> seeds;
      const int nseeds = 1 + probe % 2;
      for (int k = 0; k < nseeds; ++k) {
        seeds.emplace_back(fix.row(rdist(rng))[cdist(rng)].raw(),
                           fix.row(rdist(rng))[cdist(rng)].raw());
      }

      // Oracle: apply the same merges to a copy (respecting the
      // min-element merge rule) and run the full chase.
      Relation working = fix;
      bool oracle_conflict = false;
      std::unordered_map<uint32_t, Value> manual;
      auto resolve_manual = [&](Value v) {
        auto it = manual.find(v.raw());
        while (it != manual.end()) {
          v = it->second;
          it = manual.find(v.raw());
        }
        return v;
      };
      for (const auto& [a, b] : seeds) {
        const Value ra = resolve_manual(Value(
            (a & Value::kNullTag) ? Value::Null(a & ~Value::kNullTag)
                                  : Value::Const(a)));
        const Value rb = resolve_manual(Value(
            (b & Value::kNullTag) ? Value::Null(b & ~Value::kNullTag)
                                  : Value::Const(b)));
        if (ra == rb) continue;
        if (ra.is_const() && rb.is_const()) {
          oracle_conflict = true;
          break;
        }
        const Value from = ra.raw() > rb.raw() ? ra : rb;
        const Value to = ra.raw() > rb.raw() ? rb : ra;
        working.RenameValue(from, to);
        manual[from.raw()] = to;
      }
      ChaseOutcome oracle;
      if (!oracle_conflict) {
        oracle = ChaseInstance(working, fds, ChaseBackend::kHash);
        oracle_conflict = oracle.conflict;
      }

      ChaseStats stats;
      bool chased = false;
      const bool delta_conflict = chaser.Chase(seeds, &stats, &chased);
      ASSERT_EQ(delta_conflict, oracle_conflict)
          << "iter " << iter << " probe " << probe;
      if (delta_conflict) continue;
      ++live_hypotheses;

      // Every pair of fixpoint values must compare equal/unequal the same
      // way under both resolutions.
      auto oracle_resolve = [&](Value v) {
        return oracle.Resolve(resolve_manual(v));
      };
      for (int i = 0; i < fix.size(); ++i) {
        for (int c = 0; c < arity; ++c) {
          for (int c2 = 0; c2 < arity; ++c2) {
            const Value u = fix.row(i)[c];
            const Value w = fix.row((i + 1) % fix.size())[c2];
            const bool delta_eq =
                chaser.Resolve(u.raw()) == chaser.Resolve(w.raw());
            const bool oracle_eq = oracle_resolve(u) == oracle_resolve(w);
            ASSERT_EQ(delta_eq, oracle_eq)
                << "iter " << iter << " probe " << probe << " values "
                << u.ToString() << " " << w.ToString();
          }
        }
      }
    }
  }
  // The generator must actually exercise non-trivial hypotheses.
  EXPECT_GT(live_hypotheses, 50);
}

TEST(ProbeDeltaChaserTest, ScratchStateResetsBetweenProbes) {
  // A merge-heavy probe followed by a no-op probe: the second must see
  // pristine state (no leakage of the first probe's unions).
  Relation r(AttrSet{0, 1, 2});
  r.AddRow(Row({Value::Const(1), Value::Null(10), Value::Null(20)}));
  r.AddRow(Row({Value::Const(2), Value::Null(11), Value::Null(21)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  fds.Add(AttrSet{1}, 2);
  ChaseOutcome base = ChaseInstance(r, fds, ChaseBackend::kHash);
  ASSERT_FALSE(base.conflict);
  const CodeProbeIndex index = CodeProbeIndex::Build(base.result, fds);
  ProbeDeltaChaser chaser(&index);

  ChaseStats stats;
  bool chased = false;
  // Probe 1: equate the two rows' A-nulls; B-nulls must follow via A->B,
  // wait — attrs are (0:const, 1:null, 2:null); equate the column-1 nulls,
  // column-2 nulls follow through FD 1 -> 2.
  ASSERT_FALSE(chaser.Chase({{Value::Null(10).raw(), Value::Null(11).raw()}},
                            &stats, &chased));
  EXPECT_TRUE(chased);
  EXPECT_EQ(chaser.Resolve(Value::Null(20).raw()),
            chaser.Resolve(Value::Null(21).raw()));

  // Probe 2 (empty hypothesis): nothing is merged any more.
  ASSERT_FALSE(chaser.Chase({}, &stats, &chased));
  EXPECT_FALSE(chased);
  EXPECT_NE(chaser.Resolve(Value::Null(20).raw()),
            chaser.Resolve(Value::Null(21).raw()));
  EXPECT_NE(chaser.Resolve(Value::Null(10).raw()),
            chaser.Resolve(Value::Null(11).raw()));
}

}  // namespace
}  // namespace relview
