// Loopback integration tests for the network front-end: a real
// HttpServer on an ephemeral port, driven through real sockets with the
// client-side ResponseParser. Covers the wire protocol (commit, atomic
// rejection, snapshots), admission control (429 + Retry-After), request
// deadlines, graceful drain, the connection cap, durability degradation
// under an injected journal-fsync fault (503, never a hang), sharded
// tenants (routing, composed snapshots, per-shard metric labels), and —
// via fork + SIGKILL against the sharded group-commit configuration —
// that journal replay recovers every acknowledged batch.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "gtest/gtest.h"
#include "net/server.h"
#include "net/workload.h"
#include "obs/telemetry.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "util/failpoint.h"

namespace relview {
namespace net {
namespace {

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RELVIEW_UNDER_TSAN 1
#endif
#endif
#ifndef RELVIEW_UNDER_TSAN
#define RELVIEW_UNDER_TSAN 0
#endif

/// A minimal blocking HTTP client over one loopback connection.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (fd_ >= 0) {
      int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  /// Sends raw request bytes and parses one response. Returns false on a
  /// transport error (peer closed before a full response).
  bool Roundtrip(const std::string& request, ResponseParser* parser) {
    if (fd_ < 0) return false;
    size_t off = 0;
    while (off < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + off,
                               request.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    char buf[16 * 1024];
    while (!parser->complete() && !parser->error()) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      parser->Feed(buf, static_cast<size_t>(n));
    }
    return parser->complete();
  }

  bool Do(const std::string& method, const std::string& target,
          const std::string& body, ResponseParser* parser) {
    return Roundtrip(BuildRequest(method, target, "127.0.0.1", body),
                     parser);
  }

  /// True once the peer has closed (recv sees EOF).
  bool PeerClosed() {
    char c;
    return ::recv(fd_, &c, 1, 0) <= 0;
  }

 private:
  int fd_ = -1;
};

std::string InsertBody(const std::string& tenant, uint32_t emp,
                       uint32_t dept) {
  return "{\"tenant\":\"" + tenant + "\",\"updates\":[{\"op\":\"insert\"," +
         "\"row\":[" + std::to_string(emp) + "," + std::to_string(dept) +
         "]}]}";
}

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}, TenantSpec spec = {}) {
    spec.tenants = 2;
    spec.emps = 16;
    spec.depts = 4;
    auto tenants = MakeTenants(spec);
    ASSERT_TRUE(tenants.ok()) << tenants.status().ToString();
    tenants_ = std::move(tenants).value();
    for (int i = 0; i < tenants_.size(); ++i) {
      tenants_.services[static_cast<size_t>(i)]->RegisterTelemetry(
          &registry_, "tenant_" + tenants_.names[static_cast<size_t>(i)]);
    }
    auto server = HttpServer::Start(&tenants_, &registry_, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    Failpoints::ClearAll();
  }

  TenantSet tenants_;
  TelemetryRegistry registry_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(NetServerTest, BatchCommitsAndSnapshotReflectsIt) {
  StartServer();
  Client c(server_->port());
  ASSERT_TRUE(c.connected());

  // Fresh employee 17 into its round-robin department (17 % 4 = 1).
  ResponseParser post;
  ASSERT_TRUE(c.Do("POST", "/v1/batch",
                   InsertBody("t0", 17, DeptOfEmp(17, 4)), &post));
  EXPECT_EQ(post.status(), 200) << post.body();
  EXPECT_NE(post.body().find("\"version\":1"), std::string::npos)
      << post.body();

  // Same keep-alive connection serves the read.
  ResponseParser get;
  ASSERT_TRUE(c.Do("GET", "/v1/snapshot?tenant=t0", "", &get));
  EXPECT_EQ(get.status(), 200);
  EXPECT_NE(get.body().find("\"version\":1"), std::string::npos);
  EXPECT_NE(get.body().find("[17,"), std::string::npos) << get.body();

  // The other tenant is independent: still at version 0.
  ResponseParser other;
  ASSERT_TRUE(c.Do("GET", "/v1/snapshot?tenant=t1", "", &other));
  EXPECT_NE(other.body().find("\"version\":0"), std::string::npos);
}

TEST_F(NetServerTest, RejectedBatchIsAtomicAnd409) {
  StartServer();
  Client c(server_->port());
  ASSERT_TRUE(c.connected());

  // Second update claims employee 1 for a department that contradicts
  // Emp -> Dept (seeded dept of 1 is 1000001): untranslatable, so the
  // whole batch — including the valid first insert — must roll back.
  const std::string body =
      "{\"tenant\":\"t0\",\"updates\":["
      "{\"op\":\"insert\",\"row\":[17," +
      std::to_string(DeptOfEmp(17, 4)) + "]}," +
      "{\"op\":\"insert\",\"row\":[1," + std::to_string(DeptOfEmp(2, 4)) +
      "]}]}";
  ResponseParser post;
  ASSERT_TRUE(c.Do("POST", "/v1/batch", body, &post));
  EXPECT_EQ(post.status(), 409) << post.body();
  EXPECT_NE(post.body().find("\"failed_index\":1"), std::string::npos)
      << post.body();

  ResponseParser get;
  ASSERT_TRUE(c.Do("GET", "/v1/snapshot?tenant=t0", "", &get));
  EXPECT_NE(get.body().find("\"version\":0"), std::string::npos)
      << get.body();
  EXPECT_EQ(get.body().find("[17,"), std::string::npos) << get.body();
}

TEST_F(NetServerTest, RoutingAndParseErrors) {
  StartServer();
  Client c(server_->port());
  ASSERT_TRUE(c.connected());

  ResponseParser bad_tenant;
  ASSERT_TRUE(c.Do("POST", "/v1/batch", InsertBody("nope", 17, 1000001),
                   &bad_tenant));
  EXPECT_EQ(bad_tenant.status(), 404);

  ResponseParser bad_path;
  ASSERT_TRUE(c.Do("GET", "/v1/unknown", "", &bad_path));
  EXPECT_EQ(bad_path.status(), 404);

  ResponseParser bad_method;
  ASSERT_TRUE(c.Do("GET", "/v1/batch", "", &bad_method));
  EXPECT_EQ(bad_method.status(), 405);
  EXPECT_EQ(bad_method.Header("allow"), "POST");

  ResponseParser bad_json;
  ASSERT_TRUE(c.Do("POST", "/v1/batch", "{\"tenant\":", &bad_json));
  EXPECT_EQ(bad_json.status(), 400);

  ResponseParser bad_shape;
  ASSERT_TRUE(c.Do("POST", "/v1/batch",
                   "{\"tenant\":\"t0\",\"updates\":[{\"op\":\"warp\"}]}",
                   &bad_shape));
  EXPECT_EQ(bad_shape.status(), 400);

  // The connection survived all five errors: parse errors at the HTTP
  // layer close, but protocol-level errors keep the conversation open.
  ResponseParser health;
  ASSERT_TRUE(c.Do("GET", "/healthz", "", &health));
  EXPECT_EQ(health.status(), 200);
}

TEST_F(NetServerTest, FullWriteGateSheds429WithRetryAfter) {
  ServerOptions options;
  options.max_write_queue = 0;  // admit nothing: every write sheds
  StartServer(options);
  Client c(server_->port());
  ASSERT_TRUE(c.connected());

  ResponseParser post;
  ASSERT_TRUE(c.Do("POST", "/v1/batch",
                   InsertBody("t0", 17, DeptOfEmp(17, 4)), &post));
  EXPECT_EQ(post.status(), 429) << post.body();
  const std::string retry_after = post.Header("retry-after");
  ASSERT_FALSE(retry_after.empty());
  EXPECT_GE(std::stoi(retry_after), 1);
  EXPECT_EQ(server_->gate().sheds(), 1u);

  // Reads are not gated: the snapshot path stays live past the knee.
  ResponseParser get;
  ASSERT_TRUE(c.Do("GET", "/v1/snapshot?tenant=t0", "", &get));
  EXPECT_EQ(get.status(), 200);
}

TEST_F(NetServerTest, ExpiredDeadlineIs503WithoutApplying) {
  StartServer();
  Client c(server_->port());
  ASSERT_TRUE(c.connected());

  // Deadline 0 = already expired when the apply would start; the request
  // must be refused deterministically and the state untouched.
  const std::string body = InsertBody("t0", 17, DeptOfEmp(17, 4));
  const std::string request =
      "POST /v1/batch HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "x-relview-deadline-ms: 0\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  ResponseParser post;
  ASSERT_TRUE(c.Roundtrip(request, &post));
  EXPECT_EQ(post.status(), 503) << post.body();
  EXPECT_NE(post.body().find("deadline"), std::string::npos) << post.body();

  ResponseParser get;
  ASSERT_TRUE(c.Do("GET", "/v1/snapshot?tenant=t0", "", &get));
  EXPECT_NE(get.body().find("\"version\":0"), std::string::npos);
}

TEST_F(NetServerTest, DrainAnswers503AndClosesConnections) {
  StartServer();
  Client c(server_->port());
  ASSERT_TRUE(c.connected());

  ResponseParser before;
  ASSERT_TRUE(c.Do("GET", "/healthz", "", &before));
  EXPECT_EQ(before.status(), 200);

  server_->BeginDrain();
  EXPECT_TRUE(server_->draining());

  // The live keep-alive connection gets 503 + Connection: close for any
  // further request (health checks report not-ready during drain).
  ResponseParser during;
  ASSERT_TRUE(c.Do("GET", "/healthz", "", &during));
  EXPECT_EQ(during.status(), 503);
  EXPECT_EQ(during.Header("connection"), "close");
  EXPECT_TRUE(c.PeerClosed());

  server_->Wait();
  server_->Stop();  // idempotent
}

TEST_F(NetServerTest, ConnectionCapAnswers503Immediately) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);

  Client first(server_->port());
  ASSERT_TRUE(first.connected());
  // Occupy the only slot with a real request/response conversation.
  ResponseParser ok;
  ASSERT_TRUE(first.Do("GET", "/healthz", "", &ok));
  EXPECT_EQ(ok.status(), 200);

  // The second connection is refused by the acceptor itself: 503 +
  // close, without ever occupying a worker.
  Client second(server_->port());
  ASSERT_TRUE(second.connected());
  ResponseParser refused;
  ASSERT_TRUE(second.Do("GET", "/healthz", "", &refused));
  EXPECT_EQ(refused.status(), 503);
  EXPECT_NE(refused.body().find("over_capacity"), std::string::npos)
      << refused.body();
  EXPECT_TRUE(second.PeerClosed());
}

TEST_F(NetServerTest, JournalFsyncFaultDegradesTo503NotHang) {
  TenantSpec spec;
  spec.store_root = ::testing::TempDir() + "relview_net_fsync_fault";
  StartServer({}, spec);
  Client c(server_->port());
  ASSERT_TRUE(c.connected());

  // Same injection an operator would use: RELVIEW_FAILPOINTS=
  // "journal.fsync=error*0". Every write must now refuse with 503
  // (durability), not block a worker or ack unsynced data.
  ASSERT_TRUE(Failpoints::Set("journal.fsync", "error*0").ok());
  ResponseParser post;
  ASSERT_TRUE(c.Do("POST", "/v1/batch",
                   InsertBody("t0", 17, DeptOfEmp(17, 4)), &post));
  EXPECT_EQ(post.status(), 503) << post.body();
  EXPECT_NE(post.body().find("durability"), std::string::npos)
      << post.body();

  // Nothing was acknowledged, so nothing may be visible.
  ResponseParser get;
  ASSERT_TRUE(c.Do("GET", "/v1/snapshot?tenant=t0", "", &get));
  EXPECT_EQ(get.status(), 200);
  EXPECT_NE(get.body().find("\"version\":0"), std::string::npos);

  // Clearing the fault restores service on the same connection.
  Failpoints::ClearAll();
  ResponseParser retry;
  ASSERT_TRUE(c.Do("POST", "/v1/batch",
                   InsertBody("t0", 17, DeptOfEmp(17, 4)), &retry));
  EXPECT_EQ(retry.status(), 200) << retry.body();
}

TEST_F(NetServerTest, MetricsExposeNetAndTenantSections) {
  StartServer();
  Client c(server_->port());
  ASSERT_TRUE(c.connected());
  ResponseParser post;
  ASSERT_TRUE(c.Do("POST", "/v1/batch",
                   InsertBody("t0", 17, DeptOfEmp(17, 4)), &post));
  ASSERT_EQ(post.status(), 200);

  ResponseParser prom;
  ASSERT_TRUE(c.Do("GET", "/metrics", "", &prom));
  EXPECT_EQ(prom.status(), 200);
  EXPECT_NE(prom.body().find("relview_net_requests_total"),
            std::string::npos);
  EXPECT_NE(prom.body().find("relview_net_write_gate_depth"),
            std::string::npos);
  // Both tenants' service sections share the registry.
  EXPECT_NE(prom.body().find("service=\"tenant_t0\""), std::string::npos)
      << prom.body().substr(0, 400);
  EXPECT_NE(prom.body().find("relview_pending_writers"), std::string::npos);

  ResponseParser json;
  ASSERT_TRUE(c.Do("GET", "/metrics?format=json", "", &json));
  EXPECT_EQ(json.status(), 200);
  EXPECT_NE(json.body().find("\"net\""), std::string::npos);
  EXPECT_NE(json.body().find("\"write_gate\""), std::string::npos);
}

TEST_F(NetServerTest, ShardedTenantRoutesAndComposesSnapshots) {
  TenantSpec spec;
  spec.shards = 3;
  StartServer({}, spec);
  Client c(server_->port());
  ASSERT_TRUE(c.connected());

  // Six fresh employees across the four departments: the dept-hash
  // router spreads them over the shards, and every ack must bump the
  // composite version by exactly one (read-your-writes over HTTP).
  for (uint32_t i = 0; i < 6; ++i) {
    const uint32_t emp = 17 + i;
    ResponseParser post;
    ASSERT_TRUE(c.Do("POST", "/v1/batch",
                     InsertBody("t0", emp, DeptOfEmp(emp, 4)), &post));
    ASSERT_EQ(post.status(), 200) << post.body();
    EXPECT_NE(post.body().find("\"version\":" + std::to_string(i + 1)),
              std::string::npos)
        << post.body();
  }

  // The snapshot is the composition of all three shards: it reports the
  // shard count, the summed version, and every inserted row regardless
  // of which shard holds it.
  ResponseParser get;
  ASSERT_TRUE(c.Do("GET", "/v1/snapshot?tenant=t0", "", &get));
  EXPECT_EQ(get.status(), 200);
  EXPECT_NE(get.body().find("\"shards\":3"), std::string::npos)
      << get.body();
  EXPECT_NE(get.body().find("\"version\":6"), std::string::npos)
      << get.body();
  for (uint32_t i = 0; i < 6; ++i) {
    const uint32_t emp = 17 + i;
    EXPECT_NE(get.body().find("[" + std::to_string(emp) + ","),
              std::string::npos)
        << "emp " << emp << " missing from composed snapshot: "
        << get.body();
  }

  // Per-shard metric families are distinguishable in one scrape.
  ResponseParser prom;
  ASSERT_TRUE(c.Do("GET", "/metrics", "", &prom));
  EXPECT_EQ(prom.status(), 200);
  EXPECT_NE(prom.body().find("shard=\"0\""), std::string::npos);
  EXPECT_NE(prom.body().find("shard=\"2\""), std::string::npos);
}

// The durability claim, end to end: every batch the server ACKNOWLEDGED
// before a SIGKILL must be present after journal replay. The server runs
// in a forked child (so the kill is a real process death, not a polite
// shutdown); the parent is the client and then re-opens the store.
TEST_F(NetServerTest, AckedBatchesSurviveSigkill) {
  if (RELVIEW_UNDER_TSAN) {
    GTEST_SKIP() << "fork-based kill test is not meaningful under TSan";
  }
  const std::string store_root =
      ::testing::TempDir() + "relview_net_kill9";
  TenantSpec spec;
  spec.tenants = 1;
  spec.emps = 8;
  spec.depts = 4;
  spec.store_root = store_root;
  // The production sharded configuration: the kill must not outrun the
  // group-commit ack protocol on any shard (acked ⊆ recovered, composed).
  spec.shards = 2;
  spec.group_commit = true;
  spec.group_window_us = 500;

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: serve until killed. No gtest machinery, no destructors on
    // the way out — _exit only.
    ::close(pipe_fds[0]);
    auto tenants = MakeTenants(spec);
    if (!tenants.ok()) _exit(3);
    auto server = HttpServer::Start(&*tenants, nullptr, {});
    if (!server.ok()) _exit(4);
    const int port = (*server)->port();
    if (::write(pipe_fds[1], &port, sizeof(port)) != sizeof(port)) _exit(5);
    for (;;) ::pause();
  }

  ::close(pipe_fds[1]);
  int port = 0;
  ASSERT_EQ(::read(pipe_fds[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  ::close(pipe_fds[0]);

  // Ack a stream of fresh inserts; remember the last acked version.
  uint64_t last_acked_version = 0;
  {
    Client c(port);
    ASSERT_TRUE(c.connected());
    for (uint32_t i = 0; i < 20; ++i) {
      const uint32_t emp = spec.emps + 1 + i;
      ResponseParser post;
      ASSERT_TRUE(c.Do("POST", "/v1/batch",
                       InsertBody("t0", emp, DeptOfEmp(emp, spec.depts)),
                       &post));
      ASSERT_EQ(post.status(), 200) << post.body();
      const size_t pos = post.body().find("\"version\":");
      ASSERT_NE(pos, std::string::npos);
      last_acked_version = std::strtoull(
          post.body().c_str() + pos + 10, nullptr, 10);
    }
  }
  ASSERT_EQ(last_acked_version, 20u);

  ::kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Reopen the same store: replay must reconstruct every acked batch.
  // (The version counter is per-process and restarts at 0 on recovery;
  // durability is about the replayed *state*, not the counter.)
  auto recovered = MakeTenants(spec);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ShardedService* t0 = recovered->Find("t0");
  ASSERT_NE(t0, nullptr);
  EXPECT_GE(t0->replayed_updates(), last_acked_version);
  // Every acked row — one insert per acked batch — is in the recovered
  // composed view, and nothing seeded was lost.
  const ShardedSnapshot snap = t0->Snapshot();
  EXPECT_GE(snap.view_size(), static_cast<uint64_t>(spec.emps) + 20);
  for (uint32_t i = 0; i < 20; ++i) {
    const uint32_t emp = spec.emps + 1 + i;
    EXPECT_TRUE(snap.ViewContains(
        Tuple({Value::Const(emp),
               Value::Const(DeptOfEmp(emp, spec.depts))})))
        << "acked insert of emp " << emp << " lost across SIGKILL";
  }
}

}  // namespace
}  // namespace net
}  // namespace relview
