// Tests for the tableau chase and dependency implication, including a
// brute-force semantic cross-check of implication on small universes.

#include <gtest/gtest.h>

#include "chase/implication.h"
#include "chase/tableau.h"
#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "util/rng.h"

namespace relview {
namespace {

class ImplicationTest : public ::testing::Test {
 protected:
  void SetUp() override { u_ = Universe::Parse("A B C D").value(); }
  Universe u_;
};

TEST_F(ImplicationTest, FDImplicationMatchesClosureWithoutJDs) {
  auto fds = *FDSet::Parse(u_, "A -> B; B -> C");
  EXPECT_TRUE(
      ImpliesFD(u_.All(), fds, {}, u_.SetOf("A"), u_.SetOf("C")));
  EXPECT_FALSE(
      ImpliesFD(u_.All(), fds, {}, u_.SetOf("C"), u_.SetOf("A")));
}

TEST_F(ImplicationTest, FDFromMVDAndFD) {
  // A ->-> B | CD plus A B -> C. Then A -> C is implied? No — but the
  // classical interaction: *[AB, ACD] and AB -> C gives A -> C.
  auto fds = *FDSet::Parse(u_, "A B -> C");
  std::vector<JD> jds = {JD::MVD(u_.SetOf("A B"), u_.SetOf("A C D"))};
  EXPECT_TRUE(ImpliesFD(u_.All(), fds, jds, u_.SetOf("A"), u_.SetOf("C")));
  EXPECT_FALSE(ImpliesFD(u_.All(), fds, jds, u_.SetOf("A"), u_.SetOf("B")));
}

TEST_F(ImplicationTest, MVDFromFD) {
  // A -> B implies A ->-> B (i.e. *[AB, ACD]).
  auto fds = *FDSet::Parse(u_, "A -> B");
  EXPECT_TRUE(ImpliesMVD(u_.All(), fds, {}, u_.SetOf("A B"),
                         u_.SetOf("A C D")));
  // But not A ->-> C in general.
  EXPECT_FALSE(ImpliesMVD(u_.All(), fds, {}, u_.SetOf("A C"),
                          u_.SetOf("A B D")));
}

TEST_F(ImplicationTest, MVDComplementationRule) {
  // *[X, Y] holds iff *[Y, X] holds (symmetry of our encoding).
  auto fds = *FDSet::Parse(u_, "A -> B");
  EXPECT_TRUE(ImpliesMVD(u_.All(), fds, {}, u_.SetOf("A C D"),
                         u_.SetOf("A B")));
}

TEST_F(ImplicationTest, JDImpliedByItself) {
  JD jd({u_.SetOf("A B"), u_.SetOf("B C"), u_.SetOf("C D")});
  EXPECT_TRUE(ImpliesJD(u_.All(), FDSet(), {jd}, jd));
}

TEST_F(ImplicationTest, TernaryJDNotImpliedByNothing) {
  JD jd({u_.SetOf("A B"), u_.SetOf("B C"), u_.SetOf("C D")});
  EXPECT_FALSE(ImpliesJD(u_.All(), FDSet(), {}, jd));
}

TEST_F(ImplicationTest, JDImpliesItsBipartitionMVDsWithKeys) {
  // With B -> C, the 3-ary JD *[AB, BC, CD] implies the MVD *[ABC, BCD]?
  // We only check the generic sanity: a JD implies each bipartition MVD
  // after chasing with the component FDs that glue the middle.
  JD jd({u_.SetOf("A B"), u_.SetOf("B C D")});
  EXPECT_TRUE(ImpliesMVD(u_.All(), FDSet(), {jd}, u_.SetOf("A B"),
                         u_.SetOf("B C D")));
}

TEST_F(ImplicationTest, EmbeddedMVDFromFullMVD) {
  std::vector<JD> jds = {JD::MVD(u_.SetOf("A B"), u_.SetOf("A C D"))};
  EmbeddedMVD emvd{u_.SetOf("A"), u_.SetOf("B"), u_.SetOf("C")};
  EXPECT_TRUE(ImpliesEmbeddedMVD(u_.All(), FDSet(), jds, emvd));
}

TEST_F(ImplicationTest, EmbeddedMVDNotImpliedVacuously) {
  EmbeddedMVD emvd{u_.SetOf("A"), u_.SetOf("B"), u_.SetOf("C")};
  EXPECT_FALSE(ImpliesEmbeddedMVD(u_.All(), FDSet(), {}, emvd));
}

// Brute-force cross-check: Sigma |= sigma iff every small relation
// satisfying Sigma satisfies sigma. Sound only as a refutation oracle on a
// bounded domain, but FD/MVD implication over FDs+MVDs has two-tuple
// counterexamples (Sagiv et al.), and two-tuple relations over domain 2
// are covered by the enumeration, so agreement here is meaningful.
struct BruteDeps {
  FDSet fds;
  std::vector<JD> jds;
};

bool BruteImplies(const AttrSet& universe, const BruteDeps& sigma,
                  const std::function<bool(const Relation&)>& target) {
  bool implied = true;
  EnumerateRelations(universe, 2, [&](const Relation& r) {
    if (!implied) return;
    if (!SatisfiesAll(r, sigma.fds)) return;
    for (const JD& jd : sigma.jds) {
      if (!SatisfiesJD(r, jd)) return;
    }
    if (!target(r)) implied = false;
  });
  return implied;
}

TEST_F(ImplicationTest, RandomizedAgreementWithBruteForceFDs) {
  // 3-attribute universes, random FD sets, random FD/MVD targets.
  Universe u3 = Universe::Anonymous(3);
  const AttrSet universe = u3.All();
  Rng rng(20240705);
  for (int trial = 0; trial < 60; ++trial) {
    FDSet fds;
    const int nfd = static_cast<int>(rng.Below(3));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.4)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(3)));
    }
    // FD target.
    AttrSet tl;
    universe.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) tl.Add(a);
    });
    const AttrId tr = static_cast<AttrId>(rng.Below(3));
    const bool chase_says =
        ImpliesFD(universe, fds, {}, tl, AttrSet::Single(tr));
    const bool brute_says =
        BruteImplies(universe, {fds, {}}, [&](const Relation& r) {
          return SatisfiesFD(r, FD(tl, tr));
        });
    EXPECT_EQ(chase_says, brute_says)
        << "trial " << trial << " fds=" << fds.ToString();

    // MVD target *[S, U−S ∪ (S∩?)]: pick a random bipartition overlap.
    AttrSet xs;
    universe.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) xs.Add(a);
    });
    AttrSet ys = universe - xs;
    // Share one attribute sometimes.
    if (!xs.Empty() && rng.Chance(0.5)) {
      ys.Add(static_cast<AttrId>(xs.First()));
    }
    if ((xs | ys) != universe || xs.Empty() || ys.Empty()) continue;
    const bool chase_mvd = ImpliesMVD(universe, fds, {}, xs, ys);
    const bool brute_mvd =
        BruteImplies(universe, {fds, {}}, [&](const Relation& r) {
          return SatisfiesJD(r, JD::MVD(xs, ys));
        });
    EXPECT_EQ(chase_mvd, brute_mvd)
        << "trial " << trial << " fds=" << fds.ToString() << " X=" <<
        xs.ToString() << " Y=" << ys.ToString();
  }
}

TEST(TableauTest, ChaseTerminatesAndNormalizes) {
  Universe u = Universe::Anonymous(4);
  auto fds = *FDSet::Parse(u, "A0 -> A1; A1 -> A2; A2 -> A3");
  Tableau t(u.All());
  t.AddRowDistinguishedOn(u.All());
  t.AddRowDistinguishedOn(u.SetOf("A0"));
  const int steps = t.Chase(fds, {});
  EXPECT_GE(steps, 3);
  EXPECT_TRUE(t.HasRowDistinguishedOn(u.All()));
  EXPECT_EQ(t.rows(), 1);  // the second row collapses into the first
}

}  // namespace
}  // namespace relview
