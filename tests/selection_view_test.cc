// Tests for the selection-view extension (paper Section 6, direction (2)):
// views sigma_P(pi_X(R)) under the constant complement pair
// (sigma_{¬P} pi_X, pi_Y).

#include "view/selection_view.h"

#include <gtest/gtest.h>

#include "deps/satisfies.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

constexpr uint32_t kSales = 10;
constexpr uint32_t kDev = 20;

class SelectionViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Universe u = Universe::Parse("Emp Dept Mgr").value();
    DependencySet sigma;
    sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
    TuplePredicate sales_only;
    sales_only.AddEquals(u["Dept"], Value::Const(kSales));
    auto vt = SelectionViewTranslator::Create(
        u, sigma, u.SetOf("Emp Dept"), u.SetOf("Dept Mgr"), sales_only);
    ASSERT_TRUE(vt.ok()) << vt.status().ToString();
    vt_ = std::make_unique<SelectionViewTranslator>(std::move(*vt));

    Relation db(vt_->universe().All());
    db.AddRow(Row({1, kSales, 100}));
    db.AddRow(Row({2, kSales, 100}));
    db.AddRow(Row({3, kDev, 200}));
    db.AddRow(Row({4, kDev, 200}));
    ASSERT_TRUE(vt_->Bind(std::move(db)).ok());
  }
  std::unique_ptr<SelectionViewTranslator> vt_;
};

TEST_F(SelectionViewTest, ViewShowsOnlyMatchingRows) {
  auto view = vt_->ViewInstance();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 2);
  for (const Tuple& t : view->rows()) {
    EXPECT_EQ(t[1], Value::Const(kSales));
  }
  auto hidden = vt_->HiddenRows();
  ASSERT_TRUE(hidden.ok());
  EXPECT_EQ(hidden->size(), 2);
}

TEST_F(SelectionViewTest, InsertInsidePredicate) {
  ASSERT_TRUE(vt_->Insert(Row({5, kSales})).ok());
  EXPECT_TRUE(vt_->database().ContainsRow(Row({5, kSales, 100})));
}

TEST_F(SelectionViewTest, InsertOutsidePredicateRejected) {
  Status st = vt_->Insert(Row({5, kDev}));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  EXPECT_EQ(vt_->database().size(), 4);
}

TEST_F(SelectionViewTest, HiddenComponentStaysConstant) {
  const Relation hidden_before = *vt_->HiddenRows();
  const Relation py_before = vt_->database().Project(
      Universe::Parse("Emp Dept Mgr")->SetOf("Dept Mgr"));
  ASSERT_TRUE(vt_->Insert(Row({5, kSales})).ok());
  ASSERT_TRUE(vt_->Delete(Row({1, kSales})).ok());
  EXPECT_TRUE(vt_->HiddenRows()->SameAs(hidden_before));
  EXPECT_TRUE(vt_->database()
                  .Project(Universe::Parse("Emp Dept Mgr")->SetOf("Dept Mgr"))
                  .SameAs(py_before));
}

TEST_F(SelectionViewTest, DeleteOutsidePredicateRejected) {
  Status st = vt_->Delete(Row({3, kDev}));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  EXPECT_TRUE(vt_->database().ContainsRow(Row({3, kDev, 200})));
}

TEST_F(SelectionViewTest, DeleteLastRowOfDeptRejected) {
  // Delete both sales rows: the second one must fail (complement row for
  // sales would vanish) even though both are inside P.
  ASSERT_TRUE(vt_->Delete(Row({1, kSales})).ok());
  Status st = vt_->Delete(Row({2, kSales}));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
}

TEST_F(SelectionViewTest, ReplaceWithinPredicate) {
  ASSERT_TRUE(vt_->Replace(Row({1, kSales}), Row({9, kSales})).ok());
  EXPECT_TRUE(vt_->database().ContainsRow(Row({9, kSales, 100})));
  EXPECT_FALSE(vt_->database().ContainsRow(Row({1, kSales, 100})));
}

TEST_F(SelectionViewTest, ReplaceLeavingPredicateRejected) {
  // Moving employee 1 to dev would remove it from the view but ADD it to
  // the hidden sigma_{¬P} component — not allowed.
  Status st = vt_->Replace(Row({1, kSales}), Row({1, kDev}));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
}

TEST_F(SelectionViewTest, CreateRejectsPredicateOutsideView) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  TuplePredicate bad;
  bad.AddEquals(u["Mgr"], Value::Const(1));  // Mgr is not a view attribute
  auto vt = SelectionViewTranslator::Create(
      u, sigma, u.SetOf("Emp Dept"), u.SetOf("Dept Mgr"), bad);
  EXPECT_FALSE(vt.ok());
}

TEST(TuplePredicateTest, MixedAtoms) {
  Schema s(AttrSet{0, 1});
  TuplePredicate p;
  p.AddEquals(0, Value::Const(1));
  p.AddNotEquals(1, Value::Const(5));
  EXPECT_TRUE(p.Eval(Row({1, 4}), s));
  EXPECT_FALSE(p.Eval(Row({1, 5}), s));
  EXPECT_FALSE(p.Eval(Row({2, 4}), s));
  EXPECT_EQ(p.Attrs(), (AttrSet{0, 1}));
}

TEST(TuplePredicateTest, EmptyPredicateAcceptsAll) {
  Schema s(AttrSet{0});
  TuplePredicate p;
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(p.Eval(Row({7}), s));
}

}  // namespace
}  // namespace relview
