// Brute-force validation of the good-complement checker (Test 2's
// schema-level precomputation) against the paper's *definition*:
//
//   Y is good for X iff for all legal R1, R2 with pi_X(R1) = pi_X(R2) and
//   t[X∩Y] present, T_u[R1] |= Sigma iff T_u[R2] |= Sigma.
//
// The paper proves two-tuple witnesses suffice, so enumerating all pairs
// of <= 2-row relations over a 3-value domain is a genuine (one-sided)
// oracle: any counterexample it finds MUST be flagged by the checker.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "deps/satisfies.h"
#include "util/rng.h"
#include "view/complement.h"
#include "view/test2.h"

namespace relview {
namespace {

/// All tuples over `width` columns with values {0..domain-1}.
std::vector<Tuple> AllTuples(int width, int domain) {
  std::vector<Tuple> out;
  int64_t total = 1;
  for (int i = 0; i < width; ++i) total *= domain;
  for (int64_t code = 0; code < total; ++code) {
    Tuple t(width);
    int64_t c = code;
    for (int p = 0; p < width; ++p) {
      t[p] = Value::Const(static_cast<uint32_t>(c % domain));
      c /= domain;
    }
    out.push_back(std::move(t));
  }
  return out;
}

Relation InsertTranslation(const AttrSet& x, const AttrSet& y,
                           const Relation& r, const Tuple& t) {
  Relation tx(x);
  tx.AddRow(t);
  const Relation ty = Relation::NaturalJoin(tx, r.Project(y));
  auto u = Relation::Union(r, ty);
  RELVIEW_DCHECK(u.ok(), "schema mismatch");
  return std::move(*u);
}

TEST(GoodComplementBruteTest, CheckerFlagsEveryTwoTupleCounterexample) {
  Rng rng(20260705);
  const int width = 3;
  const AttrSet universe = AttrSet::FirstN(width);
  const std::vector<Tuple> tuples = AllTuples(width, 3);
  int schemas_checked = 0, brute_bad_seen = 0, brute_good_seen = 0;

  for (int trial = 0;
       trial < 800 && (schemas_checked <= 25 || brute_bad_seen <= 2);
       ++trial) {
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.4)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(width)));
    }
    AttrSet x;
    do {
      x = AttrSet();
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.6)) x.Add(a);
      });
    } while (x.Empty() || x == universe);
    AttrSet y = universe - x;
    x.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) y.Add(a);
    });
    // Test 2's operating regime: complementary pair with X∩Y -> Y.
    if (!AreComplementaryFDOnly(universe, fds, x, y)) continue;
    if (!fds.IsSuperkey(x & y, y)) continue;
    if (fds.IsSuperkey(x & y, x)) continue;
    ++schemas_checked;

    // All legal relations with at most two rows, grouped by pi_X.
    std::vector<Relation> rels;
    for (size_t i = 0; i < tuples.size(); ++i) {
      Relation r1(universe);
      r1.AddRow(tuples[i]);
      if (SatisfiesAll(r1, fds)) rels.push_back(r1);
      for (size_t j = i + 1; j < tuples.size(); ++j) {
        Relation r2(universe);
        r2.AddRow(tuples[i]);
        r2.AddRow(tuples[j]);
        r2.Normalize();
        if (SatisfiesAll(r2, fds)) rels.push_back(r2);
      }
    }
    std::map<std::vector<Tuple>, std::vector<int>> groups;
    for (size_t i = 0; i < rels.size(); ++i) {
      groups[rels[i].Project(x).rows()].push_back(static_cast<int>(i));
    }

    const std::vector<Tuple> view_tuples =
        AllTuples(x.Count(), 3);  // candidate inserts over X
    const Schema vs(x);
    const AttrSet common = x & y;

    bool brute_good = true;
    for (const auto& [vrows, members] : groups) {
      if (!brute_good) break;
      // Candidate inserts whose common part appears in the view.
      for (const Tuple& t : view_tuples) {
        if (!brute_good) break;
        bool common_present = false;
        for (const Tuple& row : vrows) {
          if (row.AgreesWith(t, vs, common)) common_present = true;
        }
        if (!common_present) continue;
        // Legality of T_u must be uniform across the group.
        int seen_legal = -1;
        for (int ri : members) {
          const Relation tu =
              InsertTranslation(x, y, rels[ri], t);
          const int legal = SatisfiesAll(tu, fds) ? 1 : 0;
          if (seen_legal < 0) {
            seen_legal = legal;
          } else if (seen_legal != legal) {
            brute_good = false;
            break;
          }
        }
      }
    }

    const bool checker_good =
        CheckGoodComplement(universe, fds, x, y).good;
    if (!brute_good) {
      ++brute_bad_seen;
      EXPECT_FALSE(checker_good)
          << "checker missed a two-tuple counterexample: fds="
          << fds.ToString() << " X=" << x.ToString()
          << " Y=" << y.ToString();
    } else {
      ++brute_good_seen;
      // The converse need not hold on a bounded domain (a counterexample
      // may need more values), so no assertion here.
    }
  }
  EXPECT_GT(schemas_checked, 10);
  EXPECT_GT(brute_good_seen, 3);
  EXPECT_GT(brute_bad_seen, 0);
}

}  // namespace
}  // namespace relview
