// Tests for Section 2: complementary views (Theorem 1), minimal
// complements (Corollary 2), minimum complements (Theorem 2's search), and
// Theorem 10 (EFDs). Includes a brute-force check of the *definition* of
// complementarity (reconstructability) against the Theorem 1 criterion.

#include "view/complement.h"

#include <gtest/gtest.h>

#include <map>

#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "util/rng.h"

namespace relview {
namespace {

class EmpDeptMgrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = Universe::Parse("Emp Dept Mgr").value();
    sigma_.fds = *FDSet::Parse(u_, "Emp -> Dept; Dept -> Mgr");
  }
  Universe u_;
  DependencySet sigma_;
};

TEST_F(EmpDeptMgrTest, ClassicalDecompositionIsComplementary) {
  // The paper's example: X = ED, Y = EM are complementary (E = X∩Y is a
  // key of both), though not independent in Rissanen's sense.
  EXPECT_TRUE(AreComplementary(u_.All(), sigma_, u_.SetOf("Emp Dept"),
                               u_.SetOf("Emp Mgr")));
}

TEST_F(EmpDeptMgrTest, DeptMgrComplementsEmpDept) {
  // X = ED, Y = DM: X∩Y = D is a superkey of Y = DM (D -> M).
  EXPECT_TRUE(AreComplementary(u_.All(), sigma_, u_.SetOf("Emp Dept"),
                               u_.SetOf("Dept Mgr")));
}

TEST_F(EmpDeptMgrTest, NonCoveringPairIsNot) {
  EXPECT_FALSE(AreComplementary(u_.All(), sigma_, u_.SetOf("Emp Dept"),
                                u_.SetOf("Dept")));
}

TEST_F(EmpDeptMgrTest, DisjointNonKeyPairIsNot) {
  // X = ED, Y = M: X ∩ Y = {} is no superkey of either side.
  EXPECT_FALSE(AreComplementary(u_.All(), sigma_, u_.SetOf("Emp Dept"),
                                u_.SetOf("Mgr")));
}

TEST_F(EmpDeptMgrTest, IdentityIsAlwaysComplement) {
  EXPECT_TRUE(AreComplementary(u_.All(), sigma_, u_.SetOf("Emp Dept"),
                               u_.All()));
}

TEST_F(EmpDeptMgrTest, FDOnlyFastPathAgreesWithChase) {
  // Force the chase path by adding the (implied) MVD as a JD.
  DependencySet with_jd = sigma_;
  with_jd.jds.push_back(
      JD::MVD(u_.SetOf("Emp Dept"), u_.SetOf("Dept Mgr")));
  for (const char* yspec : {"Emp Mgr", "Dept Mgr", "Mgr", "Emp Dept Mgr"}) {
    const AttrSet y = u_.SetOf(yspec);
    EXPECT_EQ(AreComplementary(u_.All(), sigma_, u_.SetOf("Emp Dept"), y),
              AreComplementary(u_.All(), with_jd, u_.SetOf("Emp Dept"), y))
        << yspec;
  }
}

TEST_F(EmpDeptMgrTest, MinimalComplementShrinks) {
  const AttrSet y =
      MinimalComplement(u_.All(), sigma_, u_.SetOf("Emp Dept"));
  // Starting from U = EDM, E and D can both be dropped? Removing E: Y=DM,
  // complementary (D->M). Then removing D: Y=M, not complementary. So the
  // greedy (ascending) result is {Dept, Mgr} minus nothing more: {D, M}
  // after E leaves, and D must stay.
  EXPECT_EQ(y, u_.SetOf("Dept Mgr"));
}

TEST_F(EmpDeptMgrTest, MinimalComplementRespectsOrder) {
  // Removing D first: Y = EM, complementary (E -> M). Then E cannot
  // leave. Different minimal complements from different orders.
  std::vector<AttrId> order = {u_["Dept"], u_["Emp"]};
  const AttrSet y =
      MinimalComplement(u_.All(), sigma_, u_.SetOf("Emp Dept"), &order);
  EXPECT_EQ(y, u_.SetOf("Emp Mgr"));
}

TEST_F(EmpDeptMgrTest, MinimumComplementIsSmallest) {
  auto res = MinimumComplement(u_.All(), sigma_, u_.SetOf("Emp Dept"));
  ASSERT_TRUE(res.ok());
  // Y must contain Mgr (= U − X); the smallest W ⊆ {E, D} with W a
  // superkey of W ∪ {M} or of X... W = {D}: D -> M so X∩Y={D} is a
  // superkey of Y={D,M}. W = {}: {} -> M fails. So minimum is {Dept,Mgr}.
  EXPECT_EQ(res->complement.Count(), 2);
  EXPECT_TRUE(AreComplementary(u_.All(), sigma_, u_.SetOf("Emp Dept"),
                               res->complement));
}

// Brute-force check of the *definition*: X, Y complementary iff no two
// distinct legal instances share both projections.
bool BruteComplementary(const AttrSet& universe, const FDSet& fds,
                        const AttrSet& x, const AttrSet& y) {
  bool complementary = true;
  std::map<std::pair<std::vector<Tuple>, std::vector<Tuple>>, Relation>
      seen;
  EnumerateRelations(universe, 2, [&](const Relation& r) {
    if (!complementary) return;
    if (!SatisfiesAll(r, fds)) return;
    Relation px = r.Project(x);
    Relation py = r.Project(y);
    auto key = std::make_pair(px.rows(), py.rows());
    auto [it, inserted] = seen.emplace(key, r);
    if (!inserted && !it->second.SameAs(r)) complementary = false;
  });
  return complementary;
}

TEST(ComplementBruteForceTest, Theorem1MatchesDefinitionOnRandomSchemas) {
  Universe u = Universe::Anonymous(3);
  const AttrSet universe = u.All();
  Rng rng(7);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    FDSet fds;
    const int nfd = static_cast<int>(rng.Below(3));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.4)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(3)));
    }
    AttrSet x, y;
    universe.ForEach([&](AttrId a) {
      if (rng.Chance(0.6)) x.Add(a);
      if (rng.Chance(0.6)) y.Add(a);
    });
    if (x.Empty() || y.Empty()) continue;
    DependencySet sigma;
    sigma.fds = fds;
    const bool theorem = AreComplementary(universe, sigma, x, y);
    const bool brute = BruteComplementary(universe, fds, x, y);
    EXPECT_EQ(theorem, brute)
        << "fds=" << fds.ToString() << " X=" << x.ToString()
        << " Y=" << y.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(MinimumComplementTest, MonotoneSizesForFDs) {
  // HasComplementOfSize must be monotone in k for FD-only schemas.
  Universe u = Universe::Anonymous(5);
  auto fds = *FDSet::Parse(u, "A0 -> A1; A1 -> A2; A2 A3 -> A4");
  DependencySet sigma;
  sigma.fds = fds;
  const AttrSet x = u.SetOf("A0 A1 A2 A3");
  auto min = MinimumComplement(u.All(), sigma, x);
  ASSERT_TRUE(min.ok());
  for (int k = 0; k <= 5; ++k) {
    auto has = HasComplementOfSize(u.All(), sigma, x, k);
    ASSERT_TRUE(has.ok());
    EXPECT_EQ(*has, k >= min->complement.Count()) << "k=" << k;
  }
}

TEST(Theorem10Test, EFDAllowsNonCoveringComplement) {
  // U = {Cost, Rate, Price}, Price computable from Cost+Rate:
  // Cost Rate ->e Price. X = {Cost, Rate}, Y = {Cost}: X ∪ Y != U yet
  // complementary because (a) the embedded MVD on X∪Y = X is trivial and
  // (b) Sigma_F |= X ∪ Y -> U.
  Universe u = Universe::Parse("Cost Rate Price").value();
  DependencySet sigma;
  sigma.efds.Add(EFD(u.SetOf("Cost Rate"), u.SetOf("Price")));
  EXPECT_TRUE(AreComplementary(u.All(), sigma, u.SetOf("Cost Rate"),
                               u.SetOf("Cost")));
  // Without the EFD this fails.
  DependencySet none;
  EXPECT_FALSE(AreComplementary(u.All(), none, u.SetOf("Cost Rate"),
                                u.SetOf("Cost")));
  // And an FD (instead of an EFD) does not help: Price is information.
  DependencySet with_fd;
  with_fd.fds = *FDSet::Parse(u, "Cost Rate -> Price");
  EXPECT_FALSE(AreComplementary(u.All(), with_fd, u.SetOf("Cost Rate"),
                                u.SetOf("Cost")));
}

TEST(Theorem10Test, EmbeddedMVDConditionStillRequired) {
  // With an EFD covering the missing attribute but no key structure on
  // X ∪ Y, condition (a) fails.
  Universe u = Universe::Parse("A B C D").value();
  DependencySet sigma;
  sigma.efds.Add(EFD(u.SetOf("A B C"), u.SetOf("D")));
  // X = AB, Y = BC: embedded MVD B ->-> A | C within ABC not implied.
  EXPECT_FALSE(
      AreComplementary(u.All(), sigma, u.SetOf("A B"), u.SetOf("B C")));
  // Add B -> A: now X∩Y = B determines A, embedded MVD holds.
  sigma.fds = *FDSet::Parse(u, "B -> A");
  EXPECT_TRUE(
      AreComplementary(u.All(), sigma, u.SetOf("A B"), u.SetOf("B C")));
}

TEST(Theorem10Test, MinimalComplementWithEFDsCanDropNonViewAttrs) {
  Universe u = Universe::Parse("Cost Rate Price").value();
  DependencySet sigma;
  sigma.efds.Add(EFD(u.SetOf("Cost Rate"), u.SetOf("Price")));
  const AttrSet y = MinimalComplement(u.All(), sigma, u.SetOf("Cost Rate"));
  EXPECT_FALSE(y.Contains(u["Price"]));
}

}  // namespace
}  // namespace relview
