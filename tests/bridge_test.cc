// Bridge test: Theorem 3's concrete translation IS the Bancilhon–Spyratos
// abstract translation. Build the full finite state space of legal
// instances over a tiny schema, the view/complement labelings v = pi_X,
// vc = pi_Y, and check that for every view instance V and candidate tuple
// t accepted by CheckInsertion, the relational translation
// R ∪ t*pi_Y(R) is exactly the unique state s' with v(s') = V ∪ t and
// vc(s') = vc(s) — for EVERY state s in V's fiber.

#include <gtest/gtest.h>

#include <map>

#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "framework/bs_framework.h"
#include "view/insertion.h"

namespace relview {
namespace {

struct SpaceCase {
  const char* fds_text;
  const char* x_text;
  const char* y_text;
};

class BridgeTest : public ::testing::TestWithParam<SpaceCase> {};

TEST_P(BridgeTest, InsertionTranslationMatchesAbstractDefinition) {
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, GetParam().fds_text);
  const AttrSet x = u.SetOf(GetParam().x_text);
  const AttrSet y = u.SetOf(GetParam().y_text);

  // State space: all legal instances over domain {0,1}.
  std::vector<Relation> states;
  EnumerateRelations(u.All(), 2, [&](const Relation& r) {
    if (SatisfiesAll(r, fds)) states.push_back(r);
  });
  ASSERT_GT(states.size(), 4u);

  // Index states by (pi_X, pi_Y) — complementarity makes this injective
  // exactly when Theorem 1 says so; we only need lookups.
  std::map<std::pair<std::vector<Tuple>, std::vector<Tuple>>, int> index;
  for (size_t i = 0; i < states.size(); ++i) {
    index[{states[i].Project(x).rows(), states[i].Project(y).rows()}] =
        static_cast<int>(i);
  }

  // All candidate view tuples over domain {0,1}.
  std::vector<Tuple> candidates;
  const Schema vs(x);
  const int k = x.Count();
  for (int code = 0; code < (1 << k); ++code) {
    Tuple t(k);
    for (int p = 0; p < k; ++p) {
      t[p] = Value::Const(static_cast<uint32_t>((code >> p) & 1));
    }
    candidates.push_back(std::move(t));
  }

  int translated = 0;
  for (const Relation& s : states) {
    const Relation v = s.Project(x);
    for (const Tuple& t : candidates) {
      auto rep = CheckInsertion(u.All(), fds, x, y, v, t);
      ASSERT_TRUE(rep.ok());
      if (rep->verdict != TranslationVerdict::kTranslatable) continue;
      auto updated = ApplyInsertion(u.All(), x, y, s, t);
      ASSERT_TRUE(updated.ok());
      ++translated;
      // Consistency: view image is V ∪ t; complement constant.
      Relation vplus = v;
      vplus.AddRow(t);
      vplus.Normalize();
      EXPECT_TRUE(updated->Project(x).SameAs(vplus));
      EXPECT_TRUE(updated->Project(y).SameAs(s.Project(y)));
      EXPECT_TRUE(SatisfiesAll(*updated, fds));
      // Uniqueness: the abstract inverse lookup (v × vc)^{-1} finds the
      // same state (when it lies inside the enumerated domain).
      auto it = index.find({vplus.rows(), s.Project(y).rows()});
      if (it != index.end()) {
        EXPECT_TRUE(states[it->second].SameAs(*updated));
      }
    }
  }
  EXPECT_GT(translated, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Schemas, BridgeTest,
    ::testing::Values(SpaceCase{"A -> B; B -> C", "A B", "B C"},
                      SpaceCase{"B -> C", "A B", "B C"},
                      SpaceCase{"A -> C", "A B", "A C"}),
    [](const auto& param_info) {
      return "Case" + std::to_string(param_info.index);
    });

}  // namespace
}  // namespace relview
