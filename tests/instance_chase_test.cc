// Tests for the constant/null instance chase — all backends.

#include "chase/instance_chase.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "deps/satisfies.h"
#include "relational/universe.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<Value> vals) {
  return Tuple(std::vector<Value>(vals));
}

class InstanceChaseTest : public ::testing::TestWithParam<ChaseBackend> {};

TEST_P(InstanceChaseTest, NullAdoptsConstant) {
  // A -> B; rows (a, ?0) and (a, b): the null must become b.
  Relation r(AttrSet{0, 1});
  r.AddRow(Row({Value::Const(1), Value::Null(0)}));
  r.AddRow(Row({Value::Const(1), Value::Const(9)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  ChaseOutcome out = ChaseInstance(r, fds, GetParam());
  EXPECT_FALSE(out.conflict);
  EXPECT_EQ(out.result.size(), 1);  // rows become identical
  EXPECT_EQ(out.Resolve(Value::Null(0)), Value::Const(9));
  EXPECT_TRUE(SatisfiesAll(out.result, fds));
}

TEST_P(InstanceChaseTest, ConstantConflictDetected) {
  Relation r(AttrSet{0, 1});
  r.AddRow(Row({Value::Const(1), Value::Const(8)}));
  r.AddRow(Row({Value::Const(1), Value::Const(9)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  ChaseOutcome out = ChaseInstance(r, fds, GetParam());
  EXPECT_TRUE(out.conflict);
}

TEST_P(InstanceChaseTest, NullNullMergeIsDeterministic) {
  Relation r(AttrSet{0, 1});
  r.AddRow(Row({Value::Const(1), Value::Null(5)}));
  r.AddRow(Row({Value::Const(1), Value::Null(3)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  ChaseOutcome out = ChaseInstance(r, fds, GetParam());
  EXPECT_FALSE(out.conflict);
  // Lower-id null wins.
  EXPECT_EQ(out.Resolve(Value::Null(5)), Value::Null(3));
  EXPECT_EQ(out.Resolve(Value::Null(3)), Value::Null(3));
}

TEST_P(InstanceChaseTest, TransitivePropagation) {
  // A -> B, B -> C with nulls chaining to a constant.
  Relation r(AttrSet{0, 1, 2});
  r.AddRow(Row({Value::Const(1), Value::Null(0), Value::Null(1)}));
  r.AddRow(Row({Value::Const(1), Value::Null(2), Value::Const(7)}));
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  fds.Add(AttrSet{1}, 2);
  ChaseOutcome out = ChaseInstance(r, fds, GetParam());
  EXPECT_FALSE(out.conflict);
  EXPECT_EQ(out.Resolve(Value::Null(1)), Value::Const(7));
  EXPECT_TRUE(SatisfiesAll(out.result, fds));
}

TEST_P(InstanceChaseTest, FixpointSatisfiesAllFDs) {
  // Random-ish richer case.
  Relation r(AttrSet{0, 1, 2, 3});
  for (uint32_t i = 0; i < 6; ++i) {
    r.AddRow(Row({Value::Const(i % 2), Value::Null(i),
                  Value::Null(100 + i), Value::Const(i % 3)}));
  }
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  fds.Add(AttrSet{1, 3}, 2);
  ChaseOutcome out = ChaseInstance(r, fds, GetParam());
  ASSERT_FALSE(out.conflict);
  EXPECT_TRUE(SatisfiesAll(out.result, fds));
}

INSTANTIATE_TEST_SUITE_P(Backends, InstanceChaseTest,
                         ::testing::Values(ChaseBackend::kHash,
                                           ChaseBackend::kSort,
                                           ChaseBackend::kColumnar),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case ChaseBackend::kHash:
                               return "Hash";
                             case ChaseBackend::kSort:
                               return "Sort";
                             case ChaseBackend::kColumnar:
                               return "Columnar";
                           }
                           return "Unknown";
                         });

TEST(InstanceChaseAgreementTest, BackendsReachEquivalentFixpoints) {
  // The two backends may choose different null representatives but must
  // agree on conflict status and on the constant content: compare after
  // mapping each null to a canonical id by first occurrence.
  Relation r(AttrSet{0, 1, 2});
  for (uint32_t i = 0; i < 8; ++i) {
    r.AddRow(Row({Value::Const(i % 3), Value::Null(i),
                  (i % 2) ? Value::Const(50 + i % 4) : Value::Null(40 + i)}));
  }
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  fds.Add(AttrSet{1}, 2);
  ChaseOutcome hash_out = ChaseInstance(r, fds, ChaseBackend::kHash);
  ChaseOutcome sort_out = ChaseInstance(r, fds, ChaseBackend::kSort);
  ASSERT_EQ(hash_out.conflict, sort_out.conflict);
  if (hash_out.conflict) return;
  EXPECT_EQ(hash_out.result.size(), sort_out.result.size());
  EXPECT_TRUE(SatisfiesAll(hash_out.result, fds));
  EXPECT_TRUE(SatisfiesAll(sort_out.result, fds));
  // Nulls may receive different representatives, but the visible data must
  // agree: per column, the multiset of constants is identical.
  for (int c = 0; c < hash_out.result.arity(); ++c) {
    std::vector<uint32_t> ha, sa;
    for (int i = 0; i < hash_out.result.size(); ++i) {
      const Value va = hash_out.result.row(i)[c];
      const Value vb = sort_out.result.row(i)[c];
      if (va.is_const()) ha.push_back(va.raw());
      if (vb.is_const()) sa.push_back(vb.raw());
    }
    std::sort(ha.begin(), ha.end());
    std::sort(sa.begin(), sa.end());
    EXPECT_EQ(ha, sa) << "column " << c;
  }
}

}  // namespace
}  // namespace relview
