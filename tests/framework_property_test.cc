// Exhaustive validation of the Bancilhon–Spyratos facts on enumerated
// state spaces: for EVERY view update translatable under a constant
// complement, the translation is consistent and acceptable (fact (i)),
// translations compose (fact (ii) forward), and the canonical complement
// reconstruction round-trips (fact (ii) converse) — swept across random
// state spaces and complements.

#include <gtest/gtest.h>

#include <algorithm>

#include "framework/bs_framework.h"
#include "util/rng.h"

namespace relview {
namespace {

struct Space {
  FiniteMapping v;
  FiniteMapping vc;
};

/// A random state space of `pairs` states with view/complement labels;
/// guaranteed complement by construction (distinct pairs).
Space MakeSpace(int nview, int ncomp, double keep, Rng* rng) {
  std::vector<int> vimg, cimg;
  for (int a = 0; a < nview; ++a) {
    for (int b = 0; b < ncomp; ++b) {
      if (rng->Chance(keep) || (a == 0 && b == 0)) {
        vimg.push_back(a);
        cimg.push_back(b);
      }
    }
  }
  return {FiniteMapping(FiniteMapping::FromLabels(vimg)),
          FiniteMapping(FiniteMapping::FromLabels(cimg))};
}

class BSPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BSPropertyTest, TranslationsAreConsistentAcceptableAndCompose) {
  Rng rng(42 + GetParam());
  const Space sp = MakeSpace(3, 3, 0.8, &rng);
  ASSERT_TRUE(IsComplementOf(sp.v, sp.vc));
  const int vr = sp.v.range_size();

  // Enumerate all view updates over a small view range (vr^vr maps).
  std::vector<FiniteMapping> updates;
  std::vector<FiniteMapping> translations;
  int64_t total_maps = 1;
  for (int i = 0; i < vr; ++i) total_maps *= vr;
  for (int64_t code = 0; code < total_maps; ++code) {
    std::vector<int> img(vr);
    int64_t c = code;
    for (int i = 0; i < vr; ++i) {
      img[i] = static_cast<int>(c % vr);
      c /= vr;
    }
    FiniteMapping u(img, vr);
    auto tu = TranslateUnderConstantComplement(sp.v, sp.vc, u);
    if (!tu.has_value()) continue;
    // Fact (i).
    EXPECT_TRUE(IsConsistentTranslation(sp.v, u, *tu));
    EXPECT_TRUE(IsAcceptableTranslation(sp.v, u, *tu));
    updates.push_back(u);
    translations.push_back(*tu);
  }
  ASSERT_FALSE(updates.empty());

  // Fact (ii) forward: for translatable u, w whose composite is also
  // translatable, T_{uw} == T_u ∘ T_w.
  for (size_t i = 0; i < updates.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      FiniteMapping uw = FiniteMapping::Compose(updates[i], updates[j]);
      auto tuw = TranslateUnderConstantComplement(sp.v, sp.vc, uw);
      if (!tuw.has_value()) continue;
      EXPECT_TRUE(IsMorphismOnPair(translations[i], translations[j], *tuw));
    }
  }
}

TEST_P(BSPropertyTest, CanonicalComplementRoundTrips) {
  Rng rng(4242 + GetParam());
  const Space sp = MakeSpace(3, 2, 0.9, &rng);
  ASSERT_TRUE(IsComplementOf(sp.v, sp.vc));
  const int vr = sp.v.range_size();

  // Pick the set of all translatable *permutations* of the view range (a
  // "reasonable" update set: closed under composition with inverses).
  std::vector<std::pair<FiniteMapping, FiniteMapping>> updates;
  std::vector<int> perm(vr);
  for (int i = 0; i < vr; ++i) perm[i] = i;
  do {
    FiniteMapping u(perm, vr);
    auto tu = TranslateUnderConstantComplement(sp.v, sp.vc, u);
    if (tu.has_value()) updates.emplace_back(u, *tu);
  } while (std::next_permutation(perm.begin(), perm.end()));
  ASSERT_FALSE(updates.empty());

  auto recovered = ComplementFromTranslator(sp.v, updates);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(IsComplementOf(sp.v, *recovered));
  for (const auto& [u, tu] : updates) {
    auto again = TranslateUnderConstantComplement(sp.v, *recovered, u);
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(*again == tu);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BSPropertyTest, ::testing::Range(0, 12));

TEST(BSFrameworkEdgeTest, IdentityUpdateAlwaysTranslatable) {
  FiniteMapping v({0, 0, 1}, 2);
  FiniteMapping vc({0, 1, 0}, 2);
  auto tid = TranslateUnderConstantComplement(v, vc,
                                              FiniteMapping::Identity(2));
  ASSERT_TRUE(tid.has_value());
  EXPECT_TRUE(*tid == FiniteMapping::Identity(3));
}

TEST(BSFrameworkEdgeTest, NonComplementIsRejectedByTranslate) {
  FiniteMapping v({0, 0}, 1);
  FiniteMapping not_comp({0, 0}, 1);
  EXPECT_FALSE(TranslateUnderConstantComplement(
                   v, not_comp, FiniteMapping::Identity(1))
                   .has_value());
}

}  // namespace
}  // namespace relview
