// The load harness is only as reproducible as its traffic stream:
// bench/loadgen_traffic.h promises the stream is a pure function of
// TrafficOptions. These tests pin that down (same seed = byte-identical
// bodies, different seed = different bodies), plus the structural
// properties the benchmark's offered/accepted split depends on: tenants
// rotate, the conflict op is always untranslatable-by-construction, and
// the Zipf sampler actually skews.

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "loadgen_traffic.h"
#include "net/workload.h"
#include "util/rng.h"

namespace relview {
namespace bench {
namespace {

std::vector<std::string> Bodies(const TrafficOptions& options, int n) {
  TrafficGen gen(options);
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(gen.Next().body);
  return out;
}

TEST(TrafficGen, SameSeedIsByteIdentical) {
  TrafficOptions options;
  options.seed = 1234;
  const auto a = Bodies(options, 256);
  const auto b = Bodies(options, 256);
  ASSERT_EQ(a, b);
}

TEST(TrafficGen, DifferentSeedDiffers) {
  TrafficOptions a_opts;
  a_opts.seed = 1;
  TrafficOptions b_opts;
  b_opts.seed = 2;
  const auto a = Bodies(a_opts, 64);
  const auto b = Bodies(b_opts, 64);
  EXPECT_NE(a, b);
}

TEST(TrafficGen, TenantsRotateRoundRobin) {
  TrafficOptions options;
  options.tenants = 3;
  TrafficGen gen(options);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(gen.Next().tenant, "t" + std::to_string(i % 3));
  }
  EXPECT_EQ(gen.generated(), 9u);
}

TEST(TrafficGen, FreshInsertsTargetTheSampledDepartment) {
  // Insert-only stream: every row must pair a brand-new employee id with
  // the department DeptOfEmp assigns it, so the server always accepts.
  TrafficOptions options;
  options.weight_insert = 1;
  options.weight_delete = 0;
  options.weight_replace = 0;
  options.weight_conflict = 0;
  options.tenants = 1;
  TrafficGen gen(options);
  std::set<uint32_t> seen;
  for (int i = 0; i < 100; ++i) {
    const GeneratedBatch batch = gen.Next();
    size_t pos = 0;
    while ((pos = batch.body.find("\"row\":[", pos)) != std::string::npos) {
      pos += 7;
      const uint32_t emp =
          static_cast<uint32_t>(std::stoul(batch.body.substr(pos)));
      const size_t comma = batch.body.find(',', pos);
      const uint32_t dept = static_cast<uint32_t>(
          std::stoul(batch.body.substr(comma + 1)));
      EXPECT_GT(emp, options.emps);               // fresh, never seeded
      EXPECT_TRUE(seen.insert(emp).second) << emp;  // never reused
      EXPECT_EQ(dept, net::DeptOfEmp(emp, options.depts));
    }
  }
}

TEST(TrafficGen, ConflictOpsContradictTheSeededFd) {
  // Conflict-only stream: every row must claim a *seeded* employee for a
  // department other than its own — untranslatable under Emp -> Dept no
  // matter what the server state is.
  TrafficOptions options;
  options.weight_insert = 0;
  options.weight_delete = 0;
  options.weight_replace = 0;
  options.weight_conflict = 1;
  options.tenants = 1;
  TrafficGen gen(options);
  for (int i = 0; i < 50; ++i) {
    const GeneratedBatch batch = gen.Next();
    size_t pos = 0;
    while ((pos = batch.body.find("\"row\":[", pos)) != std::string::npos) {
      pos += 7;
      const uint32_t emp =
          static_cast<uint32_t>(std::stoul(batch.body.substr(pos)));
      const size_t comma = batch.body.find(',', pos);
      const uint32_t dept = static_cast<uint32_t>(
          std::stoul(batch.body.substr(comma + 1)));
      EXPECT_LE(emp, options.emps);  // seeded employee
      EXPECT_NE(dept, net::DeptOfEmp(emp, options.depts));
    }
  }
}

TEST(ZipfSampler, ThetaZeroIsRoughlyUniform) {
  ZipfSampler sampler(8, 0.0);
  Rng rng(7);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 80'000; ++i) ++counts[static_cast<size_t>(
      sampler.Sample(rng))];
  for (int c : counts) {
    EXPECT_GT(c, 8'000);  // expectation 10'000 each
    EXPECT_LT(c, 12'000);
  }
}

TEST(ZipfSampler, HighThetaConcentratesOnTheHead) {
  ZipfSampler sampler(8, 2.0);
  Rng rng(7);
  int head = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (sampler.Sample(rng) == 0) ++head;
  }
  // P(0) = 1 / sum(1/k^2) ~ 0.65 for n=8; uniform would be 0.125.
  EXPECT_GT(head, n / 2);
}

}  // namespace
}  // namespace bench
}  // namespace relview
