// Tests for JDs/MVDs, instance-level satisfaction, and explicit FDs
// (Section 5: Propositions 1 and 2 behaviour, witness composition).

#include <gtest/gtest.h>

#include "deps/efd.h"
#include "deps/instance_generator.h"
#include "deps/jd.h"
#include "deps/satisfies.h"
#include "relational/relation.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

TEST(JDTest, BipartitionMVDs) {
  JD jd({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}});
  auto mvds = jd.BipartitionMVDs();
  // 2^(3-1) - 1 nontrivial bipartitions.
  EXPECT_EQ(mvds.size(), 3u);
  for (const JD& mvd : mvds) {
    EXPECT_TRUE(mvd.IsMVD());
    EXPECT_EQ(mvd.Scope(), jd.Scope());
  }
}

TEST(SatisfiesTest, FDViolationDetected) {
  Relation r(AttrSet{0, 1});
  r.AddRow(Row({1, 2}));
  r.AddRow(Row({1, 3}));
  EXPECT_FALSE(SatisfiesFD(r, FD(AttrSet{0}, 1)));
  EXPECT_TRUE(SatisfiesFD(r, FD(AttrSet{1}, 0)));
}

TEST(SatisfiesTest, MVDHoldsForProductShape) {
  // R = pi_AB(R) x pi_C(R) (on shared empty set) satisfies *[AB, C]-ish
  // patterns; build the classical MVD example A ->-> B.
  Relation r(AttrSet{0, 1, 2});
  // (a, b1, c1), (a, b1, c2), (a, b2, c1), (a, b2, c2): A ->-> B | C.
  for (uint32_t b : {1u, 2u}) {
    for (uint32_t c : {10u, 20u}) r.AddRow(Row({0, b, c}));
  }
  EXPECT_TRUE(SatisfiesJD(r, JD::MVD(AttrSet{0, 1}, AttrSet{0, 2})));
  // Remove one tuple: the MVD breaks.
  Relation broken = r.Select([](const Tuple& t) {
    return !(t[1] == Value::Const(2) && t[2] == Value::Const(20));
  });
  EXPECT_FALSE(SatisfiesJD(broken, JD::MVD(AttrSet{0, 1}, AttrSet{0, 2})));
}

TEST(SatisfiesTest, EmbeddedMVDIgnoresOutsideColumns) {
  // Same data extended by a D column that would break a full MVD.
  Relation r(AttrSet{0, 1, 2, 3});
  int d = 0;
  for (uint32_t b : {1u, 2u}) {
    for (uint32_t c : {10u, 20u}) r.AddRow(Row({0, b, c, uint32_t(d++)}));
  }
  EmbeddedMVD emvd{AttrSet{0}, AttrSet{1}, AttrSet{2}};
  EXPECT_TRUE(SatisfiesEmbeddedMVD(r, emvd));
  EXPECT_FALSE(SatisfiesJD(
      r, JD::MVD(AttrSet{0, 1}, AttrSet{0, 2, 3})));
}

TEST(InstanceGeneratorTest, ProducesLegalInstances) {
  Universe u = Universe::Anonymous(5);
  auto fds = *FDSet::Parse(u, "A0 -> A1; A1 A2 -> A3; A3 -> A4");
  GeneratorOptions opts;
  opts.rows = 200;
  opts.domain = 5;
  opts.seed = 42;
  Relation r = GenerateLegalInstance(u.All(), fds, opts);
  EXPECT_TRUE(SatisfiesAll(r, fds));
  EXPECT_GT(r.size(), 0);
}

TEST(InstanceGeneratorTest, DeterministicForSeed) {
  Universe u = Universe::Anonymous(3);
  auto fds = *FDSet::Parse(u, "A0 -> A1");
  GeneratorOptions opts;
  opts.rows = 50;
  opts.seed = 7;
  Relation a = GenerateLegalInstance(u.All(), fds, opts);
  Relation b = GenerateLegalInstance(u.All(), fds, opts);
  EXPECT_TRUE(a.SameAs(b));
  opts.seed = 8;
  Relation c = GenerateLegalInstance(u.All(), fds, opts);
  EXPECT_FALSE(a.SameAs(c));  // overwhelmingly likely
}

TEST(InstanceGeneratorTest, EnumerateRelationsCountsSubsets) {
  int count = 0;
  EnumerateRelations(AttrSet{0, 1}, 2, [&](const Relation& r) {
    EXPECT_TRUE(r.attrs() == (AttrSet{0, 1}));
    ++count;
  });
  EXPECT_EQ(count, 16);  // 2^(2*2) subsets of the 4-tuple product
}

// ---------- Explicit functional dependencies ----------

EFDWitness ProjectionWitness(AttrSet from, AttrSet to_add,
                             std::function<Value(Value)> fn, AttrId src,
                             AttrId dst) {
  return [from, to_add, fn, src, dst](const Relation& in) {
    Relation out(from | to_add);
    const Schema& os = out.schema();
    const Schema& is = in.schema();
    for (const Tuple& t : in.rows()) {
      Tuple row(os.arity());
      from.ForEach([&](AttrId a) { row.Set(os, a, t.At(is, a)); });
      row.Set(os, dst, fn(t.At(is, src)));
      out.AddRow(row);
    }
    out.Normalize();
    return out;
  };
}

TEST(EFDTest, Proposition1ImplicationMatchesFDs) {
  // Sigma = {A ->e B, B ->e C}; Sigma |= A ->e C but not C ->e A.
  EFDSet efds;
  efds.Add(EFD(AttrSet{0}, AttrSet{1}));
  efds.Add(EFD(AttrSet{1}, AttrSet{2}));
  EXPECT_TRUE(efds.Implies(AttrSet{0}, AttrSet{2}));
  EXPECT_FALSE(efds.Implies(AttrSet{2}, AttrSet{0}));
  // And the FD shadows are exactly {A->B, B->C}.
  EXPECT_EQ(efds.AsFDs().size(), 2);
}

TEST(EFDTest, SatisfiesEFDChecksWitness) {
  // Cost(0) -> Price(1) with Price = Cost + 100.
  auto doubler = [](Value v) { return Value::Const(v.index() + 100); };
  EFD efd(AttrSet{0}, AttrSet{1},
          ProjectionWitness(AttrSet{0}, AttrSet{1}, doubler, 0, 1));
  Relation good(AttrSet{0, 1});
  good.AddRow(Row({5, 105}));
  good.AddRow(Row({7, 107}));
  EXPECT_TRUE(SatisfiesEFD(good, efd));
  Relation bad(AttrSet{0, 1});
  bad.AddRow(Row({5, 9}));
  EXPECT_FALSE(SatisfiesEFD(bad, efd));
}

TEST(EFDTest, ComposeWitnessChainsFunctions) {
  // A ->e B (B = A + 100), B ->e C (C = B + 1000): derive A ->e C.
  auto plus100 = [](Value v) { return Value::Const(v.index() + 100); };
  auto plus1000 = [](Value v) { return Value::Const(v.index() + 1000); };
  EFDSet efds;
  efds.Add(EFD(AttrSet{0}, AttrSet{1},
               ProjectionWitness(AttrSet{0}, AttrSet{1}, plus100, 0, 1)));
  efds.Add(EFD(AttrSet{1}, AttrSet{2},
               ProjectionWitness(AttrSet{1}, AttrSet{2}, plus1000, 1, 2)));
  auto witness = efds.ComposeWitness(AttrSet{0}, AttrSet{2});
  ASSERT_TRUE(witness.ok());

  Relation in(AttrSet{0});
  in.AddRow(Row({5}));
  Relation out = (*witness)(in);
  EXPECT_EQ(out.attrs(), (AttrSet{0, 2}));
  ASSERT_EQ(out.size(), 1);
  // C = (5 + 100) + 1000.
  Relation expect(AttrSet{0, 2});
  expect.AddRow(Row({5, 1105}));
  EXPECT_TRUE(out.SameAs(expect));
}

TEST(EFDTest, ComposeWitnessFailsWithoutWitness) {
  EFDSet efds;
  efds.Add(EFD(AttrSet{0}, AttrSet{1}));  // no witness attached
  EXPECT_FALSE(efds.ComposeWitness(AttrSet{0}, AttrSet{1}).ok());
}

TEST(EFDTest, ComposeWitnessFailsWhenNotImplied) {
  EFDSet efds;
  EXPECT_FALSE(efds.ComposeWitness(AttrSet{0}, AttrSet{1}).ok());
}

TEST(DependencySetTest, FdsWithEfdShadows) {
  DependencySet sigma;
  sigma.fds.Add(AttrSet{0}, 1);
  sigma.efds.Add(EFD(AttrSet{1}, AttrSet{2}));
  FDSet all = sigma.FdsWithEfdShadows();
  EXPECT_TRUE(all.Implies(AttrSet{0}, AttrSet{2}));
  EXPECT_TRUE(sigma.HasEFDs());
  EXPECT_FALSE(sigma.HasJDs());
}

}  // namespace
}  // namespace relview
