// End-to-end observability tests: trace propagation from the HTTP edge
// through the shard router into the commit path (the span tree for a
// 2-shard grouped batch is pinned shape-for-shape), the `x-relview-trace`
// response-header echo on success and refusal paths, the wide-event JSON
// schema (exact key set, stable order), and the group-commit stall
// watchdog (a `commit.fsync=sleep` failpoint past --commit-stall-ms must
// bump the stall counter and force a wide event through the sampler).
//
// Runs under TSan in CI: the loopback server exercises the tracer ring
// and the thread-local context hand-off on real worker threads.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "deps/dep_set.h"
#include "net/http.h"
#include "net/server.h"
#include "net/workload.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "obs/wide_event.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "relational/universe.h"
#include "relational/value.h"
#include "service/metrics.h"
#include "shard/sharded_service.h"
#include "util/failpoint.h"

namespace relview {
namespace net {
namespace {

/// A minimal blocking HTTP client over one loopback connection (the
/// net_server_test idiom, plus raw-request support for header injection).
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (fd_ >= 0) {
      int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Roundtrip(const std::string& request, ResponseParser* parser) {
    if (fd_ < 0) return false;
    size_t off = 0;
    while (off < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + off,
                               request.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    char buf[16 * 1024];
    while (!parser->complete() && !parser->error()) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      parser->Feed(buf, static_cast<size_t>(n));
    }
    return parser->complete();
  }

 private:
  int fd_ = -1;
};

const TraceEvent* FindBySpanId(const std::vector<TraceEvent>& events,
                               uint64_t span_id) {
  for (const TraceEvent& ev : events) {
    if (ev.span_id == span_id) return &ev;
  }
  return nullptr;
}

/// Walks parent links from `ev` to the tree root and returns the root's
/// name ("" when a parent link dangles).
std::string RootNameOf(const std::vector<TraceEvent>& events,
                       const TraceEvent& ev) {
  const TraceEvent* at = &ev;
  for (int hops = 0; hops < 64; ++hops) {
    if (at->parent_span_id == 0) return at->name;
    at = FindBySpanId(events, at->parent_span_id);
    if (at == nullptr) return "";
  }
  return "";
}

uint64_t ArgValue(const TraceEvent& ev, const std::string& name,
                  uint64_t missing) {
  for (int i = 0; i < ev.num_args; ++i) {
    if (name == ev.arg_name[i]) return ev.arg_value[i];
  }
  return missing;
}

/// Top-level keys of one JSON object line, in encounter order. Tracks
/// nesting depth and string state, so keys of nested arrays/objects and
/// colons inside string values are not miscounted.
std::vector<std::string> TopLevelJsonKeys(const std::string& line) {
  std::vector<std::string> keys;
  int depth = 0;
  bool in_string = false;
  std::string current;
  bool capturing = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
        if (capturing) current += "\\?";
      } else if (c == '"') {
        in_string = false;
      } else if (capturing) {
        current += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        if (depth == 1) {
          capturing = true;
          current.clear();
        }
        break;
      case ':':
        if (depth == 1 && capturing) {
          keys.push_back(current);
          capturing = false;
        }
        break;
      case ',':
        capturing = false;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        break;
      default:
        break;
    }
  }
  return keys;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

class TracePropagationTest : public ::testing::Test {
 protected:
  void StartServer(TenantSpec spec) {
    auto tenants = MakeTenants(spec);
    ASSERT_TRUE(tenants.ok()) << tenants.status().ToString();
    tenants_ = std::move(tenants).value();
    auto server = HttpServer::Start(&tenants_, nullptr, {});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    GlobalTracer().Disable();
    GlobalTracer().Clear();
    GlobalWideEvents().Reset();
    Failpoints::ClearAll();
  }

  TenantSet tenants_;
  std::unique_ptr<HttpServer> server_;
};

// The tentpole claim, pinned: one client request over a 2-shard grouped
// tenant renders as ONE span tree — net.batch at the root, router.fanout
// under it, one shard.apply per touched shard under the fan-out, and a
// commit.cohort_fsync leader span on every shard's commit path — all
// carrying the trace id the client injected, which also comes back in the
// response header.
TEST_F(TracePropagationTest, TwoShardGroupedBatchRendersOneSpanTree) {
  const std::string store_root =
      ::testing::TempDir() + "relview_trace_prop";
  std::filesystem::remove_all(store_root);
  TenantSpec spec;
  spec.tenants = 1;
  spec.emps = 16;
  spec.depts = 8;
  spec.shards = 2;
  spec.store_root = store_root;
  spec.group_commit = true;
  StartServer(spec);

  // Two fresh employees whose departments route to DIFFERENT shards
  // (found via the same deterministic router the server uses).
  const ShardedService* t0 = tenants_.Find("t0");
  ASSERT_NE(t0, nullptr);
  uint32_t emp_a = 0, emp_b = 0;
  int shard_a = -1;
  for (uint32_t emp = spec.emps + 1; emp <= spec.emps + spec.depts; ++emp) {
    const uint32_t dept = DeptOfEmp(emp, spec.depts);
    const int shard = t0->router().ShardOfView(
        Tuple({Value::Const(emp), Value::Const(dept)}));
    if (emp_a == 0) {
      emp_a = emp;
      shard_a = shard;
    } else if (shard != shard_a) {
      emp_b = emp;
      break;
    }
  }
  ASSERT_NE(emp_b, 0u) << "router degenerated: all departments on shard "
                       << shard_a;

  GlobalTracer().Clear();
  GlobalTracer().Enable(/*sample_every=*/1);

  const uint64_t trace_id = 0xdeadbeefcafef00dULL;
  const std::string body =
      "{\"tenant\":\"t0\",\"updates\":["
      "{\"op\":\"insert\",\"row\":[" +
      std::to_string(emp_a) + "," +
      std::to_string(DeptOfEmp(emp_a, spec.depts)) +
      "]},{\"op\":\"insert\",\"row\":[" + std::to_string(emp_b) + "," +
      std::to_string(DeptOfEmp(emp_b, spec.depts)) + "]}]}";
  Client c(server_->port());
  ASSERT_TRUE(c.connected());
  ResponseParser post;
  ASSERT_TRUE(c.Roundtrip(
      BuildRequest("POST", "/v1/batch", "127.0.0.1", body,
                   {"x-relview-trace: " + TraceIdHex(trace_id)}),
      &post));
  ASSERT_EQ(post.status(), 200) << post.body();
  // Satellite: the adopted id is echoed back verbatim.
  EXPECT_EQ(post.Header("x-relview-trace"), TraceIdHex(trace_id));

  GlobalTracer().Disable();
  std::vector<TraceEvent> all = GlobalTracer().Snapshot();
  std::vector<TraceEvent> mine;
  for (const TraceEvent& ev : all) {
    if (ev.trace_id == trace_id) mine.push_back(ev);
  }
  ASSERT_FALSE(mine.empty());

  // Exactly one root, named net.batch, and every other span reaches it
  // through intact parent links: one request, one tree.
  const TraceEvent* root = nullptr;
  for (const TraceEvent& ev : mine) {
    if (ev.parent_span_id == 0) {
      EXPECT_EQ(root, nullptr) << "second root: " << ev.name;
      root = &ev;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_STREQ(root->name, "net.batch");
  for (const TraceEvent& ev : mine) {
    EXPECT_EQ(RootNameOf(mine, ev), "net.batch")
        << ev.name << " does not reach the net.batch root";
  }

  // router.fanout sits directly under the root and saw both updates.
  const TraceEvent* fanout = nullptr;
  for (const TraceEvent& ev : mine) {
    if (std::string(ev.name) == "router.fanout") {
      ASSERT_EQ(fanout, nullptr);
      fanout = &ev;
    }
  }
  ASSERT_NE(fanout, nullptr);
  EXPECT_EQ(fanout->parent_span_id, root->span_id);
  EXPECT_EQ(ArgValue(*fanout, "updates", 0), 2u);
  EXPECT_EQ(ArgValue(*fanout, "shards", 0), 2u);

  // One shard.apply per touched shard, both under the fan-out, exposing
  // the two distinct shard ids the router chose.
  std::vector<uint64_t> shards_seen;
  for (const TraceEvent& ev : mine) {
    if (std::string(ev.name) != "shard.apply") continue;
    EXPECT_EQ(ev.parent_span_id, fanout->span_id);
    shards_seen.push_back(ArgValue(ev, "shard", ~0ULL));
  }
  ASSERT_EQ(shards_seen.size(), 2u);
  EXPECT_NE(shards_seen[0], shards_seen[1]);

  // The commit attribution: each shard's grouped write path recorded a
  // cohort-fsync leader span inside this trace (cohort of 1: the request
  // itself led on both shards).
  int fsync_spans = 0;
  for (const TraceEvent& ev : mine) {
    if (std::string(ev.name) != "commit.cohort_fsync") continue;
    ++fsync_spans;
    EXPECT_GE(ArgValue(ev, "cohort_batches", 0), 1u);
  }
  EXPECT_EQ(fsync_spans, 2);

  // The journal appends ran under the same trace as well.
  int appends = 0;
  for (const TraceEvent& ev : mine) {
    if (std::string(ev.name) == "journal.append") ++appends;
  }
  EXPECT_GE(appends, 2);
}

// Satellite 1: refusal paths carry the trace echo too. An unknown tenant
// (404) and a draining server (503) both answer with the adopted id; a
// request without the header gets a freshly minted, parseable id.
TEST_F(TracePropagationTest, RefusalPathsEchoTraceId) {
  TenantSpec spec;
  spec.tenants = 1;
  spec.emps = 8;
  spec.depts = 4;
  StartServer(spec);

  const uint64_t trace_id = 0x1122334455667788ULL;
  {
    Client c(server_->port());
    ASSERT_TRUE(c.connected());
    ResponseParser resp;
    ASSERT_TRUE(c.Roundtrip(
        BuildRequest("POST", "/v1/batch", "127.0.0.1",
                     "{\"tenant\":\"nope\",\"updates\":[]}",
                     {"x-relview-trace: " + TraceIdHex(trace_id)}),
        &resp));
    EXPECT_EQ(resp.status(), 404);
    EXPECT_EQ(resp.Header("x-relview-trace"), TraceIdHex(trace_id));
  }
  {
    // No header: the server mints one and still echoes it.
    Client c(server_->port());
    ASSERT_TRUE(c.connected());
    ResponseParser resp;
    ASSERT_TRUE(c.Roundtrip(
        BuildRequest("GET", "/healthz", "127.0.0.1", ""), &resp));
    EXPECT_EQ(resp.status(), 200);
    uint64_t minted = 0;
    EXPECT_TRUE(
        ParseTraceIdHex(resp.Header("x-relview-trace"), &minted))
        << resp.Header("x-relview-trace");
    EXPECT_NE(minted, 0u);
  }
  {
    server_->BeginDrain();
    Client c(server_->port());
    // The acceptor may already be closed; only a connected client can
    // observe the drain refusal's headers.
    if (c.connected()) {
      ResponseParser resp;
      if (c.Roundtrip(BuildRequest(
                          "POST", "/v1/batch", "127.0.0.1",
                          "{\"tenant\":\"t0\",\"updates\":[]}",
                          {"x-relview-trace: " + TraceIdHex(trace_id)}),
                      &resp)) {
        EXPECT_EQ(resp.status(), 503);
        EXPECT_EQ(resp.Header("x-relview-trace"), TraceIdHex(trace_id));
      }
    }
  }
}

// The wide-event "canonical log line" schema, pinned exactly: dashboards
// and the CI artifact greps parse these keys, so adding/renaming one must
// be a conscious, test-visible change.
TEST(WideEventSchemaTest, FormatEmitsExactlyThePinnedKeys) {
  WideEvent ev;
  ev.kind = "request";
  ev.tenant = "t0";
  ev.trace_id = 0xabcdef0123456789ULL;
  ev.http_status = 200;
  ev.admission = "admitted";
  ev.batch_size = 3;
  ev.shard_mask = 0b101;
  ev.shards_touched = 2;
  ev.cohort_batches = 4;
  ev.led_cohort = true;
  ev.stage_nanos = 1'500;
  ev.append_nanos = 2'500;
  ev.commit_wait_nanos = 3'500;
  ev.total_nanos = 9'000;
  ev.straggler_shard = 2;
  ev.straggler_nanos = 4'000;
  ev.detail = "quoted \"detail\"";

  const std::string line = WideEventSink::Format(ev, /*forced=*/false);
  const std::vector<std::string> want = {
      "event",       "tenant",         "trace",          "status",
      "admission",   "batch_size",     "shards",         "shard_count",
      "cohort_batches", "led_cohort",  "stage_us",       "append_us",
      "commit_wait_us", "total_us",    "straggler_shard", "straggler_us",
      "detail",      "forced"};
  EXPECT_EQ(TopLevelJsonKeys(line), want) << line;

  // Spot-check the values that downstream greps key on.
  EXPECT_NE(line.find("\"trace\":\"abcdef0123456789\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"shards\":[0,2]"), std::string::npos) << line;
  EXPECT_NE(line.find("\"stage_us\":1.500"), std::string::npos) << line;
  EXPECT_NE(line.find("\"detail\":\"quoted \\\"detail\\\"\""),
            std::string::npos)
      << line;

  // A zero-value event renders the same key set (fields never disappear).
  const std::string empty_line = WideEventSink::Format(WideEvent{}, true);
  EXPECT_EQ(TopLevelJsonKeys(empty_line), want) << empty_line;
  EXPECT_NE(empty_line.find("\"forced\":true"), std::string::npos);
}

// The stall watchdog: a commit.fsync slowed past commit_stall_ms (via the
// non-faulting `sleep` failpoint action) must bump the stall counter and
// force a commit_stall wide event through a sampler that would otherwise
// drop everything — while the batch itself still commits fine (a slow
// disk is not an error).
TEST(CommitStallWatchdogTest, SlowCohortFsyncForcesStallReport) {
  const std::string store_root =
      ::testing::TempDir() + "relview_stall_watchdog";
  std::filesystem::remove_all(store_root);
  const std::string log_path = store_root + ".wide.jsonl";
  std::remove(log_path.c_str());

  auto u = Universe::Parse("Emp Dept Mgr");
  ASSERT_TRUE(u.ok());
  DependencySet sigma;
  auto fds = FDSet::Parse(*u, "Emp -> Dept; Dept -> Mgr");
  ASSERT_TRUE(fds.ok());
  sigma.fds = *fds;
  Relation seed(u->All());
  seed.AddRow(Tuple({Value::Const(1), Value::Const(kDeptBase),
                     Value::Const(kMgrBase)}));

  ShardedServiceOptions options;
  options.shards = 1;
  options.store_root = store_root;
  options.group_commit = true;
  options.commit_stall_ms = 1;
  auto svc = ShardedService::Create(*u, sigma, u->SetOf("Emp Dept"),
                                    u->SetOf("Dept Mgr"), seed, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  // Sampler set far past anything this test emits: only forced events
  // (and the counter-zero burn below) can reach the log.
  ASSERT_TRUE(
      GlobalWideEvents().OpenFile(log_path, 1u << 30).ok());
  GlobalWideEvents().Emit(WideEvent{}, /*forced=*/false);  // burns n = 0

  ASSERT_TRUE(Failpoints::Set("commit.fsync", "sleep:50").ok());
  std::vector<ViewUpdate> batch{ViewUpdate::Insert(
      Tuple({Value::Const(2), Value::Const(kDeptBase)}))};
  const BatchResult r = (*svc)->ApplyBatch(batch);
  Failpoints::ClearAll();
  GlobalWideEvents().Reset();

  // The sleep is a delay, not a fault: the batch committed.
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ((*svc)->shard(0)->metrics().commit_stalls(), 1u);

  const std::string log = ReadWholeFile(log_path);
  const size_t stall_at = log.find("\"event\":\"commit_stall\"");
  ASSERT_NE(stall_at, std::string::npos) << log;
  const std::string stall_line = log.substr(stall_at);
  EXPECT_NE(stall_line.find("\"forced\":true"), std::string::npos) << log;
  EXPECT_NE(stall_line.find("\"led_cohort\""), std::string::npos);
}

// The `sleep` failpoint action itself: parses with a millisecond arg,
// delays the caller, and reports no fault (sites proceed normally).
TEST(FailpointSleepTest, SleepDelaysWithoutFaulting) {
  ASSERT_TRUE(Failpoints::Set("test.sleep_site", "sleep:20").ok());
  const auto before = std::chrono::steady_clock::now();
  // Direct Check call: this test exercises the failpoint machinery
  // itself, not a production injection site.
  FailpointHit hit =
      Failpoints::Check("test.sleep_site");  // relview-lint: allow(failpoint-direct-check)
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_FALSE(hit) << "sleep must not report a fault";
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
  Failpoints::ClearAll();
  // Malformed specs still read as errors, and the action list names it.
  const Status bad = Failpoints::Set("test.sleep_site", "nap:20");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("sleep"), std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace relview
