// Unit tests for AttrSet and Universe.

#include "relational/attr_set.h"

#include <gtest/gtest.h>

#include "relational/universe.h"

namespace relview {
namespace {

TEST(AttrSetTest, EmptyByDefault) {
  AttrSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.First(), -1);
}

TEST(AttrSetTest, AddRemoveContains) {
  AttrSet s;
  s.Add(3);
  s.Add(200);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(200));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.Count(), 1);
}

TEST(AttrSetTest, InitializerListAndFirstN) {
  AttrSet s{1, 5, 9};
  EXPECT_EQ(s.Count(), 3);
  AttrSet f = AttrSet::FirstN(10);
  EXPECT_EQ(f.Count(), 10);
  EXPECT_TRUE(s.SubsetOf(f));
  EXPECT_FALSE(f.SubsetOf(s));
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a{1, 2, 3};
  AttrSet b{3, 4};
  EXPECT_EQ((a | b), (AttrSet{1, 2, 3, 4}));
  EXPECT_EQ((a & b), AttrSet{3});
  EXPECT_EQ((a - b), (AttrSet{1, 2}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((a - b).Intersects(b));
}

TEST(AttrSetTest, IterationAscendingAcrossWords) {
  AttrSet s{0, 63, 64, 128, 255};
  std::vector<AttrId> got = s.ToVector();
  EXPECT_EQ(got, (std::vector<AttrId>{0, 63, 64, 128, 255}));
  EXPECT_EQ(s.First(), 0);
  EXPECT_EQ(s.Next(64), 128);
  EXPECT_EQ(s.Next(255), -1);
}

TEST(AttrSetTest, HashDiffersAcrossDistinctSets) {
  AttrSet a{1};
  AttrSet b{2};
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_EQ(a.Hash(), AttrSet{1}.Hash());
}

TEST(AttrSetTest, OrderIsTotal) {
  AttrSet a{1};
  AttrSet b{2};
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(UniverseTest, ParseAndFormat) {
  auto u = Universe::Parse("Emp Dept Mgr");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3);
  EXPECT_EQ((*u)["Dept"], 1);
  AttrSet ed = u->SetOf("Emp Dept");
  EXPECT_EQ(u->Format(ed), "{Emp,Dept}");
}

TEST(UniverseTest, UnknownAttributeIsError) {
  auto u = Universe::Parse("A B");
  ASSERT_TRUE(u.ok());
  EXPECT_FALSE(u->Id("C").ok());
  EXPECT_FALSE(u->Set("A C").ok());
}

TEST(UniverseTest, DuplicateNamesShareId) {
  Universe u;
  auto a1 = u.Add("A");
  auto a2 = u.Add("A");
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_EQ(*a1, *a2);
  EXPECT_EQ(u.size(), 1);
}

TEST(UniverseTest, CapacityLimit) {
  Universe u = Universe::Anonymous(256);
  EXPECT_EQ(u.size(), 256);
  EXPECT_FALSE(u.Add("overflow").ok());
}

}  // namespace
}  // namespace relview
