// Edge cases across the public API: degenerate views, empty instances,
// single-attribute universes, capacity limits, and replacement-rejection
// witness checks mirroring the insertion ones.

#include <gtest/gtest.h>

#include "chase/instance_chase.h"
#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "util/rng.h"
#include "view/complement.h"
#include "view/find_complement.h"
#include "view/generic_instance.h"
#include "view/insertion.h"
#include "view/replacement.h"
#include "view/test1.h"
#include "view/test2.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

TEST(EdgeCaseTest, EmptyViewInsertFailsConditionA) {
  Universe u = Universe::Parse("A B").value();
  auto fds = *FDSet::Parse(u, "A -> B");
  Relation v(u.SetOf("A"));
  // Inserting into an empty view: no complement row can supply B.
  auto rep = CheckInsertion(u.All(), fds, u.SetOf("A"), u.SetOf("A B"), v,
                            Row({1}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsComplementMembership);
}

TEST(EdgeCaseTest, ViewEqualsUniverseIsAlwaysTranslatableModuloSigma) {
  // X = U: the complement adds nothing; X∩Y = Y, and condition (b)'s
  // "not a superkey of X" clause decides. With Y = U the translator
  // refuses everything new (identity view updates only).
  Universe u = Universe::Parse("A B").value();
  auto fds = *FDSet::Parse(u, "A -> B");
  Relation v(u.All());
  v.AddRow(Row({1, 5}));
  auto rep = CheckInsertion(u.All(), fds, u.All(), u.All(), v, Row({1, 5}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kIdentity);
  auto rep2 =
      CheckInsertion(u.All(), fds, u.All(), u.All(), v, Row({2, 6}));
  ASSERT_TRUE(rep2.ok());
  EXPECT_FALSE(rep2->translatable());
}

TEST(EdgeCaseTest, SingleAttributeUniverse) {
  Universe u = Universe::Parse("A").value();
  FDSet fds;
  Relation v(u.SetOf("A"));
  v.AddRow(Row({1}));
  // X = Y = U = {A}: inserting an existing tuple is identity; a new one
  // hits condition (b) (X∩Y = A is trivially a superkey of X).
  auto rep =
      CheckInsertion(u.All(), fds, u.SetOf("A"), u.SetOf("A"), v, Row({1}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kIdentity);
  auto rep2 =
      CheckInsertion(u.All(), fds, u.SetOf("A"), u.SetOf("A"), v, Row({2}));
  ASSERT_TRUE(rep2.ok());
  EXPECT_FALSE(rep2->translatable());
}

TEST(EdgeCaseTest, EmptyFdSetMakesDisjointComplementsFail) {
  Universe u = Universe::Parse("A B").value();
  DependencySet none;
  // Without FDs, X∩Y = {} is a superkey of nothing: only overlapping
  // covers can be complementary.
  EXPECT_FALSE(
      AreComplementary(u.All(), none, u.SetOf("A"), u.SetOf("B")));
  EXPECT_TRUE(
      AreComplementary(u.All(), none, u.SetOf("A"), u.SetOf("A B")));
}

TEST(EdgeCaseTest, Test1IndexedCapacityFallsBackToClosure) {
  // |X − Y| > 16 exceeds the indexed backend's pattern-mask capacity; it
  // degrades to the (sound) closure backend and flags the fallback.
  Universe u = Universe::Anonymous(20);
  FDSet fds;
  fds.Add(AttrSet::Single(18), 19);  // condition (b) holds
  AttrSet x = u.All();
  x.Remove(19);
  AttrSet y{18, 19};
  // X − Y has 18 attributes.
  Relation v(x);
  Tuple t(x.Count());
  for (int i = 0; i < x.Count(); ++i) t[i] = Value::Const(1);
  v.AddRow(t);
  Tuple t2 = t;
  t2[0] = Value::Const(2);
  auto rep =
      RunTest1(u.All(), fds, x, y, v, t2, {Test1Backend::kIndexed});
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->indexed_fell_back);
  EXPECT_EQ(rep->used_backend, Test1Backend::kClosure);
  EXPECT_TRUE(rep->accepted());
}

TEST(EdgeCaseTest, GenericInstanceNullIdsAreDistinct) {
  Universe u = Universe::Parse("A B C").value();
  Relation v(u.SetOf("A"));
  v.AddRow(Row({1}));
  v.AddRow(Row({2}));
  GenericInstance g = GenericInstance::Build(u.All(), u.SetOf("A"), v);
  EXPECT_NE(g.NullAt(0, u["B"]), g.NullAt(0, u["C"]));
  EXPECT_NE(g.NullAt(0, u["B"]), g.NullAt(1, u["B"]));
  EXPECT_TRUE(g.relation().HasNulls());
  EXPECT_EQ(g.relation().size(), 2);
}

TEST(EdgeCaseTest, FindComplementOnEmptyView) {
  Universe u = Universe::Parse("A B").value();
  auto fds = *FDSet::Parse(u, "A -> B");
  Relation v(u.SetOf("A"));
  auto res =
      FindTranslatingComplement(u.All(), fds, u.SetOf("A"), v, Row({1}));
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->found);
  EXPECT_EQ(res->candidates, 0);
}

// Replacement rejections reconstruct into genuine counterexamples, like
// the insertion ones: re-run the reported (f, r) hypothesis and check a
// legal database emerges whose translation violates Sigma.
TEST(ReplaceWitnessTest, RejectionsAreGenuine) {
  Rng rng(1357);
  Universe u = Universe::Anonymous(4);
  const AttrSet universe = u.All();
  int rejections = 0;
  for (int trial = 0; trial < 3000 && rejections < 8; ++trial) {
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.35)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(4)));
    }
    AttrSet x;
    do {
      x = AttrSet();
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.6)) x.Add(a);
      });
    } while (x.Empty() || x == universe);
    AttrSet y = universe - x;
    x.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) y.Add(a);
    });
    if (rng.Chance(0.6)) {
      (universe - x).ForEach([&](AttrId a) { fds.Add(x & y, a); });
    }
    Relation db(universe);
    const Schema& ds = db.schema();
    for (int i = 0; i < 5; ++i) {
      Tuple row(ds.arity());
      for (int p = 0; p < ds.arity(); ++p) {
        row[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
      }
      db.AddRow(row);
    }
    RepairToLegal(&db, fds);
    Relation v = db.Project(x);
    if (v.size() < 2) continue;
    const Schema vs(x);
    const Tuple t1 = v.row(static_cast<int>(rng.Below(v.size())));
    Tuple t2 = t1;
    // Half the time stay in case 2 (mutate only X − Y, keeping the
    // common part) — its chase test quantifies over all mu rows and
    // rejects more readily.
    const AttrSet mutable_attrs = rng.Chance(0.5) ? (x - y) : x;
    mutable_attrs.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) {
        t2.Set(vs, a, Value::Const(static_cast<uint32_t>(rng.Below(2))));
      }
    });
    if (t2 == t1 || v.ContainsRow(t2)) continue;

    auto rep = CheckReplacement(universe, fds, x, y, v, t1, t2);
    ASSERT_TRUE(rep.ok());
    if (rep->verdict != TranslationVerdict::kFailsChase) continue;
    ++rejections;
    // Sweep small databases: some legal R compatible with V must yield an
    // illegal T_u (otherwise the rejection is at least suspicious — the
    // bounded domain may simply not contain the witness, so only count).
    bool witnessed = false;
    EnumerateRelations(universe, 2, [&](const Relation& r) {
      if (witnessed) return;
      if (!SatisfiesAll(r, fds)) return;
      if (!r.Project(x).SameAs(v)) return;
      auto updated = ApplyReplacement(universe, x, y, r, t1, t2);
      if (updated.ok() && !SatisfiesAll(*updated, fds)) witnessed = true;
    });
    // The two-valued domain contains the generic witness whenever one
    // exists with two distinct complement values, which holds for chain
    // FDs over {0,1}; assert it.
    EXPECT_TRUE(witnessed)
        << "fds=" << fds.ToString() << " X=" << x.ToString()
        << " Y=" << y.ToString() << " t1=" << t1.ToString()
        << " t2=" << t2.ToString() << "\nV:\n" << v.ToString();
  }
  EXPECT_GT(rejections, 2);
}

}  // namespace
}  // namespace relview
