// Tests for Theorem 6: finding a complement that renders an insertion
// translatable, including the W_r candidate characterization.

#include "view/find_complement.h"

#include <gtest/gtest.h>

#include "deps/instance_generator.h"
#include "util/rng.h"
#include "view/complement.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

TEST(FindComplementTest, FindsDeptMgrForEmpDeptView) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  auto fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  const AttrSet x = u.SetOf("Emp Dept");
  Relation v(x);
  v.AddRow(Row({1, 10}));
  v.AddRow(Row({2, 10}));
  v.AddRow(Row({3, 20}));
  // Inserting (e4, d1): translatable under constant Y = {Dept, Mgr}.
  auto res = FindTranslatingComplement(u.All(), fds, x, v, Row({4, 10}));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->found);
  EXPECT_TRUE(res->complement.Contains(u["Mgr"]));
  // The number of candidates is bounded by min(|V|, 2^|X|).
  EXPECT_LE(res->candidates, v.size());
}

TEST(FindComplementTest, NoComplementForContradictoryInsert) {
  // Inserting (e1, d2) when e1 -> d1 already: under ANY constant
  // complement W ∪ {Mgr}, either W contains Emp (then Emp -> X makes the
  // insert illegal) or the chase test fails... Emp -> Dept is violated at
  // the view level regardless of the complement, so nothing is found.
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  auto fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  const AttrSet x = u.SetOf("Emp Dept");
  Relation v(x);
  v.AddRow(Row({1, 10}));
  v.AddRow(Row({2, 20}));
  auto res = FindTranslatingComplement(u.All(), fds, x, v, Row({1, 20}));
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->found);
}

TEST(FindComplementTest, PartialRestrictionHonored) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  auto fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  const AttrSet x = u.SetOf("Emp Dept");
  Relation v(x);
  v.AddRow(Row({1, 10}));
  v.AddRow(Row({2, 10}));
  // Demand the complement contain Emp: then X∩Y ⊇ {Emp} is a superkey of
  // X and no insertion is translatable — nothing found.
  auto res = FindTranslatingComplement(u.All(), fds, x, v, Row({4, 10}),
                                       FindComplementTest::kExact,
                                       u.SetOf("Emp"));
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->found);
}

TEST(FindComplementTest, FoundComplementIsActuallyComplementary) {
  Universe u = Universe::Parse("A B C D").value();
  auto fds = *FDSet::Parse(u, "A -> B; B -> C; C -> D");
  const AttrSet x = u.SetOf("A B C");
  Relation v(x);
  v.AddRow(Row({1, 5, 8}));
  v.AddRow(Row({2, 5, 8}));
  v.AddRow(Row({3, 6, 9}));
  auto res = FindTranslatingComplement(u.All(), fds, x, v, Row({4, 5, 8}));
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->found);
  DependencySet sigma;
  sigma.fds = fds;
  EXPECT_TRUE(AreComplementary(u.All(), sigma, x, res->complement));
}

// Theorem 6's completeness: if ANY complement of the form W ∪ (U − X)
// renders the insertion translatable, the W_r search finds one. Validate
// by exhaustive W-sweeps on small views.
TEST(FindComplementPropertyTest, SearchMatchesExhaustiveSweep) {
  Rng rng(2024);
  Universe u = Universe::Anonymous(4);
  const AttrSet universe = u.All();
  int found_cases = 0;
  for (int trial = 0; trial < 500 && found_cases <= 10; ++trial) {
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.35)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(4)));
    }
    AttrSet x;
    do {
      x = AttrSet();
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.7)) x.Add(a);
      });
    } while (x.Empty() || x == universe);

    Relation db(universe);
    const Schema& ds = db.schema();
    for (int i = 0; i < 4; ++i) {
      Tuple row(ds.arity());
      for (int p = 0; p < ds.arity(); ++p) {
        row[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
      }
      db.AddRow(row);
    }
    RepairToLegal(&db, fds);
    Relation v = db.Project(x);
    if (v.empty()) continue;
    const Schema vs(x);
    Tuple t(vs.arity());
    for (int p = 0; p < vs.arity(); ++p) {
      t[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
    }
    if (v.ContainsRow(t)) continue;

    auto res = FindTranslatingComplement(u.All(), fds, x, v, t);
    ASSERT_TRUE(res.ok());

    // Exhaustive: try every W ⊆ X.
    bool exists = false;
    const std::vector<AttrId> members = x.ToVector();
    for (uint32_t mask = 0;
         mask < (1u << members.size()) && !exists; ++mask) {
      AttrSet w;
      for (size_t i = 0; i < members.size(); ++i) {
        if (mask & (1u << i)) w.Add(members[i]);
      }
      auto rep =
          CheckInsertion(universe, fds, x, w | (universe - x), v, t);
      ASSERT_TRUE(rep.ok());
      if (rep->verdict == TranslationVerdict::kTranslatable) exists = true;
    }
    EXPECT_EQ(res->found, exists)
        << "fds=" << fds.ToString() << " X=" << x.ToString()
        << " t=" << t.ToString() << "\nV:\n" << v.ToString();
    if (exists) ++found_cases;
  }
  EXPECT_GT(found_cases, 10);
}

}  // namespace
}  // namespace relview
