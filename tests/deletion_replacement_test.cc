// Tests for Section 4: deletions (Theorem 8) and replacements (Theorem 9),
// with brute-force validation of both on small enumerated domains.

#include <gtest/gtest.h>

#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "util/rng.h"
#include "view/complement.h"
#include "view/deletion.h"
#include "view/replacement.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

class EmpDeptMgrDeleteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = Universe::Parse("Emp Dept Mgr").value();
    fds_ = *FDSet::Parse(u_, "Emp -> Dept; Dept -> Mgr");
    x_ = u_.SetOf("Emp Dept");
    y_ = u_.SetOf("Dept Mgr");
    v_ = Relation(x_);
    v_.AddRow(Row({1, 10}));
    v_.AddRow(Row({2, 10}));
    v_.AddRow(Row({3, 20}));
  }
  Universe u_;
  FDSet fds_;
  AttrSet x_, y_;
  Relation v_{AttrSet()};
};

TEST_F(EmpDeptMgrDeleteTest, DeleteWithSurvivingDeptRow) {
  // Deleting (e1, d1): (e2, d1) keeps d1's complement row alive.
  auto rep = CheckDeletion(u_.All(), fds_, x_, y_, v_, Row({1, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kTranslatable);
}

TEST_F(EmpDeptMgrDeleteTest, DeleteLastDeptRowFailsConditionA) {
  // (e3, d2) is d2's only view row: deleting it would delete d2's
  // complement row too.
  auto rep = CheckDeletion(u_.All(), fds_, x_, y_, v_, Row({3, 20}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsComplementMembership);
}

TEST_F(EmpDeptMgrDeleteTest, DeleteMissingTupleIsIdentity) {
  auto rep = CheckDeletion(u_.All(), fds_, x_, y_, v_, Row({9, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kIdentity);
}

TEST_F(EmpDeptMgrDeleteTest, ApplyDeletionRemovesExactlyTheRow) {
  Relation db(u_.All());
  db.AddRow(Row({1, 10, 100}));
  db.AddRow(Row({2, 10, 100}));
  db.AddRow(Row({3, 20, 200}));
  auto updated = ApplyDeletion(u_.All(), x_, y_, db, Row({1, 10}));
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->size(), 2);
  EXPECT_FALSE(updated->ContainsRow(Row({1, 10, 100})));
  // Complement constant: pi_Y unchanged.
  EXPECT_TRUE(updated->Project(y_).SameAs(db.Project(y_)));
  // View updated: pi_X = V − t.
  Relation expected = v_.Select(
      [](const Tuple& t) { return t[0] != Value::Const(1); });
  EXPECT_TRUE(updated->Project(x_).SameAs(expected));
}

TEST_F(EmpDeptMgrDeleteTest, KeyComplementFailsConditionB) {
  // Y = EM: X∩Y = E is a key of X. Deleting (e1, d1) with another row
  // sharing E?! Emp is a key, so no second row shares E=1 — condition (a)
  // fails first. (b)'s schema-level rejection needs a V where two rows
  // share the common part, impossible for legal V here; we check (a).
  auto rep = CheckDeletion(u_.All(), fds_, x_, u_.SetOf("Emp Mgr"), v_,
                           Row({1, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsComplementMembership);
}

// Deletions of view tuples are translatable iff (a) & (b) — validate
// against brute force: for every legal R with pi_X(R) = V, R − t*pi_Y(R)
// must be legal (trivially true for FDs) AND project onto V − t AND keep
// pi_Y constant. Untranslatability must be witnessed by some R where the
// translation breaks A or B.
TEST(DeletePropertyTest, CriterionMatchesSemantics) {
  Rng rng(99);
  Universe u = Universe::Anonymous(4);
  const AttrSet universe = u.All();
  int translatable_seen = 0, untranslatable_seen = 0;
  for (int trial = 0;
       trial < 400 && (translatable_seen <= 3 || untranslatable_seen <= 3);
       ++trial) {
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(2));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.35)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(4)));
    }
    AttrSet x;
    do {
      x = AttrSet();
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.6)) x.Add(a);
      });
    } while (x.Empty() || x == universe);
    AttrSet y = universe - x;
    x.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) y.Add(a);
    });
    if (rng.Chance(0.6)) {
      (universe - x).ForEach([&](AttrId a) { fds.Add(x & y, a); });
    }
    // Theorem 8 presupposes that Y is a complement of X (its proof invokes
    // Theorem 1); restrict the semantic comparison accordingly.
    if (!AreComplementaryFDOnly(universe, fds, x, y)) continue;
    Relation db(universe);
    const Schema& ds = db.schema();
    for (int i = 0; i < 4; ++i) {
      Tuple t(ds.arity());
      for (int p = 0; p < ds.arity(); ++p) {
        t[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
      }
      db.AddRow(t);
    }
    RepairToLegal(&db, fds);
    const Relation v = db.Project(x);
    if (v.empty()) continue;
    const Tuple t = v.row(static_cast<int>(rng.Below(v.size())));

    auto rep = CheckDeletion(u.All(), fds, x, y, v, t);
    ASSERT_TRUE(rep.ok());
    if (rep->verdict == TranslationVerdict::kIdentity) continue;

    // Semantics: translatable iff for EVERY legal R with pi_X(R) = V,
    // the deletion R − t*pi_Y(R) projects onto V − t and keeps pi_Y(R).
    bool semantic_ok = true;
    Relation vminus = v.Select([&](const Tuple& row) { return row != t; });
    EnumerateRelations(universe, 2, [&](const Relation& r) {
      if (!semantic_ok) return;
      if (!SatisfiesAll(r, fds)) return;
      if (!r.Project(x).SameAs(v)) return;
      auto updated = ApplyDeletion(u.All(), x, y, r, t);
      ASSERT_TRUE(updated.ok());
      if (!updated->Project(x).SameAs(vminus) ||
          !updated->Project(y).SameAs(r.Project(y))) {
        semantic_ok = false;
      }
    });
    EXPECT_EQ(rep->verdict == TranslationVerdict::kTranslatable,
              semantic_ok)
        << "fds=" << fds.ToString() << " X=" << x.ToString()
        << " Y=" << y.ToString() << " t=" << t.ToString() << "\nV:\n"
        << v.ToString();
    if (semantic_ok) {
      ++translatable_seen;
    } else {
      ++untranslatable_seen;
    }
  }
  EXPECT_GT(translatable_seen, 3);
  EXPECT_GT(untranslatable_seen, 3);
}

// ---------------- replacements ----------------

class ReplaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    u_ = Universe::Parse("Emp Dept Mgr").value();
    fds_ = *FDSet::Parse(u_, "Emp -> Dept; Dept -> Mgr");
    x_ = u_.SetOf("Emp Dept");
    y_ = u_.SetOf("Dept Mgr");
    v_ = Relation(x_);
    v_.AddRow(Row({1, 10}));
    v_.AddRow(Row({2, 10}));
    v_.AddRow(Row({3, 20}));
  }
  Universe u_;
  FDSet fds_;
  AttrSet x_, y_;
  Relation v_{AttrSet()};
};

TEST_F(ReplaceTest, Case1MoveEmployeeBetweenDepts) {
  // Replace (e1, d1) by (e1, d2): common parts differ (d1 vs d2) — case
  // 1. Condition (a): d1 survives via (e2, d1); d2 exists via (e3, d2).
  // The FD Emp -> Dept: candidate violators r with r[Emp] = e1 and
  // r[Dept] != d2 — only (e1, d1) = t1 itself, which is excluded. So
  // translatable.
  auto rep =
      CheckReplacement(u_.All(), fds_, x_, y_, v_, Row({1, 10}), Row({1, 20}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->theorem_case, 1);
  EXPECT_EQ(rep->verdict, TranslationVerdict::kTranslatable);
}

TEST_F(ReplaceTest, Case1FailsWhenOldComplementRowDies) {
  // Replace (e3, d2) by (e3, d1): d2 loses its only view row.
  auto rep =
      CheckReplacement(u_.All(), fds_, x_, y_, v_, Row({3, 20}), Row({3, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->theorem_case, 1);
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsComplementMembership);
}

TEST_F(ReplaceTest, Case2RenameEmployeeSameDept) {
  // Replace (e1, d1) by (e9, d1): same common part d1 — case 2; no
  // superkey conditions needed; chase test passes (Emp -> Dept: violators
  // r with r[Emp] = e9 — none).
  auto rep =
      CheckReplacement(u_.All(), fds_, x_, y_, v_, Row({1, 10}), Row({9, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->theorem_case, 2);
  EXPECT_EQ(rep->verdict, TranslationVerdict::kTranslatable);
}

TEST_F(ReplaceTest, Case2DetectsFDViolation) {
  // Replace (e1, d1) by (e2, d1)?? e2 already in V with d1 — t2 ∈ V is
  // rejected as an argument error; use (e3, d1): but e3 maps to d2 in V —
  // Emp -> Dept violation via surviving row (e3, d2): r[Emp]=e3 agrees,
  // Dept differs. Untranslatable.
  auto rep =
      CheckReplacement(u_.All(), fds_, x_, y_, v_, Row({1, 10}), Row({3, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->theorem_case, 2);
  EXPECT_EQ(rep->verdict, TranslationVerdict::kFailsChase);
}

TEST_F(ReplaceTest, ReplacedTupleMayBeSoleSourceInCase2) {
  // V = {(e1, d1)} only; replace (e1, d1) by (e2, d1): t1 itself is the
  // complement-row source (mu), which case 2 allows.
  Relation v(x_);
  v.AddRow(Row({1, 10}));
  auto rep =
      CheckReplacement(u_.All(), fds_, x_, y_, v, Row({1, 10}), Row({2, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->theorem_case, 2);
  EXPECT_EQ(rep->verdict, TranslationVerdict::kTranslatable);
}

TEST_F(ReplaceTest, ArgumentValidation) {
  // t1 not in view.
  EXPECT_FALSE(CheckReplacement(u_.All(), fds_, x_, y_, v_, Row({9, 10}),
                                Row({8, 10}))
                   .ok());
  // t2 already in view.
  EXPECT_FALSE(CheckReplacement(u_.All(), fds_, x_, y_, v_, Row({1, 10}),
                                Row({2, 10}))
                   .ok());
  // t1 == t2 is the identity.
  auto rep = CheckReplacement(u_.All(), fds_, x_, y_, v_, Row({1, 10}),
                              Row({1, 10}));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->verdict, TranslationVerdict::kIdentity);
}

TEST_F(ReplaceTest, ApplyReplacementSwapsRows) {
  Relation db(u_.All());
  db.AddRow(Row({1, 10, 100}));
  db.AddRow(Row({2, 10, 100}));
  db.AddRow(Row({3, 20, 200}));
  auto updated = ApplyReplacement(u_.All(), x_, y_, db, Row({1, 10}),
                                  Row({1, 20}));
  ASSERT_TRUE(updated.ok());
  EXPECT_FALSE(updated->ContainsRow(Row({1, 10, 100})));
  EXPECT_TRUE(updated->ContainsRow(Row({1, 20, 200})));
  EXPECT_TRUE(updated->Project(y_).SameAs(db.Project(y_)));
  EXPECT_TRUE(SatisfiesAll(*updated, fds_));
}

// Replacement property test mirroring the insertion one: accepted
// replacements keep every compatible small database legal with the right
// view and constant complement.
TEST(ReplacePropertyTest, AcceptedReplacementsAreSafe) {
  Rng rng(321);
  Universe u = Universe::Anonymous(4);
  const AttrSet universe = u.All();
  int accepted = 0;
  for (int trial = 0; trial < 150 && accepted < 12; ++trial) {
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(2));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.35)) lhs.Add(a);
      });
      fds.Add(lhs, static_cast<AttrId>(rng.Below(4)));
    }
    AttrSet x;
    do {
      x = AttrSet();
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.6)) x.Add(a);
      });
    } while (x.Empty() || x == universe);
    AttrSet y = universe - x;
    x.ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) y.Add(a);
    });
    if (rng.Chance(0.5)) {
      (universe - x).ForEach([&](AttrId a) { fds.Add(x & y, a); });
    }
    Relation db(universe);
    const Schema& ds = db.schema();
    for (int i = 0; i < 4; ++i) {
      Tuple t(ds.arity());
      for (int p = 0; p < ds.arity(); ++p) {
        t[p] = Value::Const(static_cast<uint32_t>(rng.Below(2)));
      }
      db.AddRow(t);
    }
    RepairToLegal(&db, fds);
    const Relation v = db.Project(x);
    if (v.empty()) continue;
    const Tuple t1 = v.row(static_cast<int>(rng.Below(v.size())));
    const Schema vs(x);
    Tuple t2 = t1;
    // Mutate one or two X columns.
    x.ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) {
        t2.Set(vs, a,
               Value::Const(static_cast<uint32_t>(rng.Below(2))));
      }
    });
    if (t2 == t1 || v.ContainsRow(t2)) continue;

    auto rep = CheckReplacement(u.All(), fds, x, y, v, t1, t2);
    ASSERT_TRUE(rep.ok());
    if (rep->verdict != TranslationVerdict::kTranslatable) continue;
    ++accepted;

    Relation vafter = v.Select([&](const Tuple& row) { return row != t1; });
    vafter.AddRow(t2);
    vafter.Normalize();
    EnumerateRelations(universe, 2, [&](const Relation& r) {
      if (!SatisfiesAll(r, fds)) return;
      if (!r.Project(x).SameAs(v)) return;
      auto updated = ApplyReplacement(u.All(), x, y, r, t1, t2);
      ASSERT_TRUE(updated.ok());
      EXPECT_TRUE(SatisfiesAll(*updated, fds))
          << "case " << rep->theorem_case << " fds=" << fds.ToString()
          << "\nR:\n" << r.ToString() << "t1=" << t1.ToString()
          << " t2=" << t2.ToString();
      EXPECT_TRUE(updated->Project(x).SameAs(vafter));
      EXPECT_TRUE(updated->Project(y).SameAs(r.Project(y)));
    });
  }
  EXPECT_GT(accepted, 5);
}

}  // namespace
}  // namespace relview
