// Cross-validation of the paper's hardness reductions against SAT/QBF
// oracles:
//   Theorem 2: SAT(phi)      <=> complement of size n+1 exists;
//   Theorem 4: ∀∃-SAT(phi)   <=> succinct insertion translatable;
//   Theorem 5: UNSAT(phi)    <=> Test 1 accepts the succinct insertion;
//   Theorem 7: SAT(phi)      <=> some complement renders it translatable.

#include "reductions/reductions.h"

#include <gtest/gtest.h>

#include "solvers/dpll.h"
#include "util/rng.h"
#include "view/complement.h"
#include "view/find_complement.h"
#include "view/insertion.h"
#include "view/test1.h"

namespace relview {
namespace {

Clause3 C(Lit a, Lit b, Lit c) { return Clause3{a, b, c}; }

CNF3 SatisfiableExample() {
  // (x0 | x1 | x2) & (~x0 | x1 | ~x2).
  CNF3 f;
  f.num_vars = 3;
  f.clauses.push_back(C(Lit(0, true), Lit(1, true), Lit(2, true)));
  f.clauses.push_back(C(Lit(0, false), Lit(1, true), Lit(2, false)));
  return f;
}

CNF3 UnsatisfiableExample() {
  // All eight sign patterns over three variables: unsatisfiable.
  CNF3 f;
  f.num_vars = 3;
  for (int mask = 0; mask < 8; ++mask) {
    f.clauses.push_back(C(Lit(0, mask & 1), Lit(1, mask & 2),
                          Lit(2, mask & 4)));
  }
  return f;
}

TEST(Theorem2Test, SatisfiableFormulaYieldsSmallComplement) {
  const CNF3 phi = SatisfiableExample();
  MinComplementReduction red = ReduceSatToMinComplement(phi);
  DependencySet sigma;
  sigma.fds = red.fds;
  auto has = HasComplementOfSize(red.universe.All(), sigma, red.x,
                                 red.target_size);
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
  // Decode an assignment from the minimum complement and check it
  // satisfies phi.
  auto min = MinimumComplement(red.universe.All(), sigma, red.x);
  ASSERT_TRUE(min.ok());
  ASSERT_EQ(min->complement.Count(), red.target_size);
  const std::vector<bool> h = red.DecodeAssignment(min->complement);
  EXPECT_TRUE(phi.Eval(h));
}

TEST(Theorem2Test, UnsatisfiableFormulaNeedsLargerComplement) {
  const CNF3 phi = UnsatisfiableExample();
  MinComplementReduction red = ReduceSatToMinComplement(phi);
  DependencySet sigma;
  sigma.fds = red.fds;
  auto has = HasComplementOfSize(red.universe.All(), sigma, red.x,
                                 red.target_size);
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

TEST(Theorem2Test, RandomizedAgreementWithDpll) {
  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 3 + static_cast<int>(rng.Below(2));
    const int m = 2 + static_cast<int>(rng.Below(8));
    const CNF3 phi = CNF3::Random(n, m, &rng);
    MinComplementReduction red = ReduceSatToMinComplement(phi);
    DependencySet sigma;
    sigma.fds = red.fds;
    auto has = HasComplementOfSize(red.universe.All(), sigma, red.x,
                                   red.target_size);
    ASSERT_TRUE(has.ok());
    EXPECT_EQ(*has, SolveSat(phi).satisfiable)
        << phi.ToString() << " trial " << trial;
  }
}

TEST(Theorem4Test, SuccinctViewExpandsToGridPlusOne) {
  const CNF3 phi = SatisfiableExample();
  SuccinctInsertionReduction red = ReduceForallExistsToInsertion(phi, 2);
  EXPECT_EQ(red.view.ExpandedSizeBound(), (1 << phi.num_vars) + 1);
  const Relation v = red.view.Expand();
  EXPECT_EQ(v.size(), (1 << phi.num_vars) + 1);
  // Membership without expansion agrees with expansion.
  for (const Tuple& row : v.rows()) {
    EXPECT_TRUE(red.view.Contains(row));
  }
  EXPECT_FALSE(red.view.Contains(red.t));
  // Description is linear in |U| (a few cells per attribute).
  EXPECT_LT(red.view.DescriptionSize(), 8 * red.universe.size());
}

// The paper's forward argument (soundness of the reduction's
// "satisfiable => translatable" direction) holds and is validated below.
TEST(Theorem4Test, QbfTrueImpliesTranslatable) {
  Rng rng(13);
  int true_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 3 + static_cast<int>(rng.Below(2));
    const int k = 1 + static_cast<int>(rng.Below(2));
    const int m = 2 + static_cast<int>(rng.Below(6));
    const CNF3 phi = CNF3::Random(n, m, &rng);
    if (!ForallExistsSat(phi, k)) continue;
    SuccinctInsertionReduction red = ReduceForallExistsToInsertion(phi, k);
    const Relation v = red.view.Expand();
    auto rep = CheckInsertion(red.universe.All(), red.fds, red.view_x,
                              red.comp_y, v, red.t);
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep->translatable())
        << phi.ToString() << " k=" << k << " trial " << trial;
    ++true_seen;
  }
  EXPECT_GT(true_seen, 5);
}

// Reproduction finding (documented in EXPERIMENTS.md): the backward
// direction of the paper's Theorem 4 proof fails as literally stated.
// The clause FDs Lji A -> Fj also fire between two grid rows that agree
// on a FALSE literal (value 0). Rows sharing a universal prefix agree on
// every universal literal column and (after X1X1'..XkXk' -> A spreads the
// imposed r[A] = s[A] through the class) their F-columns merge; each
// clause containing an existential literal is satisfied by SOME extension
// in the class, so s's F-value joins every pool, F1..Fm -> C fires, and
// r[C] = s[C] is genuinely FORCED in every legal database — even though
// the prefix has no single satisfying extension. The concrete formula
// below (universal x0, x1) has prefix x0=x1=0 unsatisfiable
// (clause1 needs ~x2, clause6 needs x2), yet the insertion is
// translatable; our independently validated exact test demonstrates it.
TEST(Theorem4Test, BackwardDirectionErratumWitness) {
  CNF3 phi;
  phi.num_vars = 3;
  auto C3 = [](Lit a, Lit b, Lit c) { return Clause3{a, b, c}; };
  phi.clauses.push_back(C3(Lit(0, true), Lit(1, true), Lit(2, false)));
  phi.clauses.push_back(C3(Lit(2, false), Lit(0, false), Lit(1, false)));
  phi.clauses.push_back(C3(Lit(1, false), Lit(0, true), Lit(2, true)));
  phi.clauses.push_back(C3(Lit(0, true), Lit(1, true), Lit(2, true)));
  const int k = 2;
  ASSERT_FALSE(ForallExistsSat(phi, k));  // prefix (0,0) kills it
  SuccinctInsertionReduction red = ReduceForallExistsToInsertion(phi, k);
  const Relation v = red.view.Expand();
  auto rep = CheckInsertion(red.universe.All(), red.fds, red.view_x,
                            red.comp_y, v, red.t);
  ASSERT_TRUE(rep.ok());
  // The paper's claimed equivalence would demand untranslatability here;
  // the chase (correctly) proves every legal database stays legal.
  EXPECT_TRUE(rep->translatable());
}

TEST(Theorem5Test, UnsatAcceptedSatRejected) {
  {
    SuccinctInsertionReduction red = ReduceUnsatToTest1(UnsatisfiableExample());
    const Relation v = red.view.Expand();
    auto rep = RunTest1(red.universe.All(), red.fds, red.view_x, red.comp_y,
                        v, red.t, {Test1Backend::kTwoTupleChase});
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep->accepted());
  }
  {
    SuccinctInsertionReduction red = ReduceUnsatToTest1(SatisfiableExample());
    const Relation v = red.view.Expand();
    auto rep = RunTest1(red.universe.All(), red.fds, red.view_x, red.comp_y,
                        v, red.t, {Test1Backend::kTwoTupleChase});
    ASSERT_TRUE(rep.ok());
    EXPECT_FALSE(rep->accepted());
  }
}

TEST(Theorem5Test, RandomizedAgreementWithDpll) {
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 3 + static_cast<int>(rng.Below(2));
    const int m = 3 + static_cast<int>(rng.Below(12));
    const CNF3 phi = CNF3::Random(n, m, &rng);
    SuccinctInsertionReduction red = ReduceUnsatToTest1(phi);
    const Relation v = red.view.Expand();
    auto rep = RunTest1(red.universe.All(), red.fds, red.view_x, red.comp_y,
                        v, red.t, {Test1Backend::kClosure});
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep->accepted(), !SolveSat(phi).satisfiable)
        << phi.ToString() << " trial " << trial;
  }
}

TEST(Theorem7Test, RandomizedAgreementWithDpll) {
  Rng rng(19);
  int sat_seen = 0, unsat_seen = 0;
  for (int trial = 0; trial < 27; ++trial) {
    // Mix random draws (usually satisfiable at these densities) with the
    // fixed unsatisfiable instance so both outcomes are exercised.
    const int n = 3 + static_cast<int>(rng.Below(2));
    const int m = 2 + static_cast<int>(rng.Below(10));
    const CNF3 phi =
        (trial % 9 == 8) ? UnsatisfiableExample() : CNF3::Random(n, m, &rng);
    ComplementExistenceReduction red = ReduceSatToComplementExistence(phi);
    const Relation v = red.view.Expand();
    auto res = FindTranslatingComplement(red.universe.All(), red.fds,
                                         red.view_x, v, red.t);
    ASSERT_TRUE(res.ok());
    const bool sat = SolveSat(phi).satisfiable;
    EXPECT_EQ(res->found, sat) << phi.ToString() << " trial " << trial;
    if (res->found) {
      EXPECT_TRUE(phi.Eval(red.DecodeAssignment(res->complement)))
          << phi.ToString();
      ++sat_seen;
    } else {
      ++unsat_seen;
    }
  }
  EXPECT_GT(sat_seen, 2);
  EXPECT_GT(unsat_seen, 2);
}

}  // namespace
}  // namespace relview
