// Lockstep differential test for the columnar store: a from-scratch
// reference translator, a row-store engine, and columnar engines (1 and 4
// probe threads) receive identical random update streams and must agree
// decision-for-decision — status, verdict, violated FD, witness row,
// theorem case — and state-for-state (database and served view) after
// every update. This is the CI gate that lets the columnar store replace
// the row store without a semantic audit of every call site: any
// divergence in ordering, hashing, or probe resolution shows up as a
// verdict or post-state mismatch here.
//
// The 4-thread columnar fleet member also runs under TSan in CI (see
// .github/workflows/ci.yml): probe workers share one frozen
// CodeProbeIndex, so the sanitizer checks that per-worker ProbeDeltaChaser
// scratch is genuinely unshared.

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "deps/instance_generator.h"
#include "service/update.h"
#include "util/rng.h"
#include "view/complement.h"
#include "view/translator.h"

namespace relview {
namespace {

struct DiffSchema {
  Universe universe;
  FDSet fds;
  AttrSet x, y;
  Relation database{AttrSet()};
};

/// Per-column value spaces (matching the instance generator's convention)
/// keep repairs and mutations column-local.
Value ColValue(int col, uint32_t v) {
  return Value::Const(static_cast<uint32_t>(col) * 0x01000000u + v);
}

/// The paper's chain shape A0 -> A1 -> ... with a deterministic legal
/// instance; X drops the last attribute, Y keeps the last two.
DiffSchema MakeChainSchema(int width, int rows, uint64_t seed) {
  DiffSchema s;
  s.universe = Universe::Anonymous(width);
  for (int i = 0; i + 1 < width; ++i) {
    s.fds.Add(AttrSet::Single(static_cast<AttrId>(i)),
              static_cast<AttrId>(i + 1));
  }
  s.x = s.universe.All();
  s.x.Remove(static_cast<AttrId>(width - 1));
  s.y = AttrSet{static_cast<AttrId>(width - 2),
                static_cast<AttrId>(width - 1)};
  Rng rng(seed);
  Relation db(s.universe.All());
  const relview::Schema& sch = db.schema();
  for (int i = 0; i < rows; ++i) {
    Tuple t(width);
    uint32_t v = static_cast<uint32_t>(i);
    for (int c = 0; c < width; ++c) {
      t[sch.PosOf(static_cast<AttrId>(c))] = ColValue(c, v);
      v = static_cast<uint32_t>(
          (v * 2654435761u + static_cast<uint32_t>(c)) %
          static_cast<uint32_t>(std::max<int>(2, rows >> (2 * (c + 1)))));
    }
    db.AddRow(std::move(t));
  }
  RepairToLegal(&db, s.fds);
  db.Normalize();
  s.database = std::move(db);
  return s;
}

/// A random canonical FD set with the first complementary (X, Y) found by
/// subset enumeration and a random legal instance; nullopt when the drawn
/// FDs admit no nontrivial complement.
std::optional<DiffSchema> MakeRandomSchema(int width, int nfds, int rows,
                                           uint64_t seed) {
  Rng rng(seed);
  DiffSchema s;
  s.universe = Universe::Anonymous(width);
  for (int i = 0; i < nfds; ++i) {
    AttrSet lhs;
    const int lhs_size = 1 + static_cast<int>(rng.Below(2));
    for (int k = 0; k < lhs_size; ++k) {
      lhs.Add(static_cast<AttrId>(rng.Below(width)));
    }
    const AttrId rhs = static_cast<AttrId>(rng.Below(width));
    if (lhs.Contains(rhs)) continue;
    s.fds.Add(lhs, rhs);
  }
  DependencySet sigma;
  sigma.fds = s.fds;
  const AttrSet all = s.universe.All();
  const uint32_t subsets = 1u << width;
  for (uint32_t xb = 1; xb + 1 < subsets && s.x.Empty(); ++xb) {
    for (uint32_t yb = 1; yb + 1 < subsets; ++yb) {
      AttrSet x, y;
      for (int a = 0; a < width; ++a) {
        if (xb & (1u << a)) x.Add(static_cast<AttrId>(a));
        if (yb & (1u << a)) y.Add(static_cast<AttrId>(a));
      }
      if ((x | y) != all || x == all || y == all) continue;
      if (!AreComplementary(all, sigma, x, y)) continue;
      s.x = x;
      s.y = y;
      break;
    }
  }
  if (s.x.Empty()) return std::nullopt;
  GeneratorOptions gopts;
  gopts.rows = rows;
  gopts.domain = 6;
  gopts.seed = seed * 7919 + 13;
  s.database = GenerateLegalInstance(all, s.fds, gopts);
  return s;
}

ViewTranslator MakeVt(const DiffSchema& s, TranslatorOptions options) {
  DependencySet sigma;
  sigma.fds = s.fds;
  auto vt = ViewTranslator::Create(s.universe, sigma, s.x, s.y, options);
  EXPECT_TRUE(vt.ok()) << vt.status().ToString();
  Status st = vt->Bind(s.database);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return std::move(*vt);
}

struct RandomOp {
  UpdateKind kind = UpdateKind::kInsert;
  Tuple t1, t2;
};

RandomOp DrawOp(Rng* rng, const Relation& view) {
  const relview::Schema& vs = view.schema();
  const int arity = vs.arity();
  auto random_tuple = [&] {
    Tuple t(arity);
    for (int p = 0; p < arity; ++p) {
      t[p] = ColValue(static_cast<int>(vs.cols()[p]),
                      static_cast<uint32_t>(rng->Below(6)));
    }
    return t;
  };
  auto mutated_row = [&] {
    if (view.empty()) return random_tuple();
    Tuple t = view.row(static_cast<int>(rng->Below(view.size())));
    const int p = static_cast<int>(rng->Below(arity));
    t[p] = ColValue(static_cast<int>(vs.cols()[p]),
                    static_cast<uint32_t>(rng->Below(6)));
    return t;
  };
  RandomOp op;
  const uint64_t k = rng->Below(4);
  if (k == 0) {
    op.kind = UpdateKind::kInsert;
    op.t1 = rng->Chance(0.7) ? mutated_row() : random_tuple();
  } else if (k == 1) {
    op.kind = UpdateKind::kDelete;
    op.t1 = view.empty() || rng->Chance(0.3)
                ? random_tuple()
                : view.row(static_cast<int>(rng->Below(view.size())));
  } else {
    op.kind = UpdateKind::kReplace;
    op.t1 = view.empty() || rng->Chance(0.2)
                ? random_tuple()
                : view.row(static_cast<int>(rng->Below(view.size())));
    op.t2 = mutated_row();
  }
  return op;
}

/// Applies `op` to every translator and asserts identical outcomes and
/// post-states. Effort counters are exempt (order-dependent under the
/// parallel early exit); decisions and witnesses are not.
void ApplyEverywhere(const RandomOp& op, std::vector<ViewTranslator>* vts,
                     const std::string& ctx) {
  switch (op.kind) {
    case UpdateKind::kInsert: {
      Result<InsertionReport> ref = (*vts)[0].InsertWithReport(op.t1);
      for (size_t i = 1; i < vts->size(); ++i) {
        Result<InsertionReport> r = (*vts)[i].InsertWithReport(op.t1);
        ASSERT_EQ(ref.ok(), r.ok()) << ctx << " vt" << i;
        if (!ref.ok()) {
          ASSERT_EQ(ref.status().ToString(), r.status().ToString())
              << ctx << " vt" << i;
          continue;
        }
        ASSERT_EQ(ref->verdict, r->verdict) << ctx << " vt" << i;
        ASSERT_EQ(ref->violated_fd, r->violated_fd) << ctx << " vt" << i;
        ASSERT_EQ(ref->witness_row, r->witness_row) << ctx << " vt" << i;
      }
      break;
    }
    case UpdateKind::kDelete: {
      Result<DeletionReport> ref = (*vts)[0].DeleteWithReport(op.t1);
      for (size_t i = 1; i < vts->size(); ++i) {
        Result<DeletionReport> r = (*vts)[i].DeleteWithReport(op.t1);
        ASSERT_EQ(ref.ok(), r.ok()) << ctx << " vt" << i;
        if (!ref.ok()) {
          ASSERT_EQ(ref.status().ToString(), r.status().ToString())
              << ctx << " vt" << i;
          continue;
        }
        ASSERT_EQ(ref->verdict, r->verdict) << ctx << " vt" << i;
      }
      break;
    }
    case UpdateKind::kReplace: {
      Result<ReplacementReport> ref =
          (*vts)[0].ReplaceWithReport(op.t1, op.t2);
      for (size_t i = 1; i < vts->size(); ++i) {
        Result<ReplacementReport> r =
            (*vts)[i].ReplaceWithReport(op.t1, op.t2);
        ASSERT_EQ(ref.ok(), r.ok()) << ctx << " vt" << i;
        if (!ref.ok()) {
          ASSERT_EQ(ref.status().ToString(), r.status().ToString())
              << ctx << " vt" << i;
          continue;
        }
        ASSERT_EQ(ref->verdict, r->verdict) << ctx << " vt" << i;
        ASSERT_EQ(ref->theorem_case, r->theorem_case) << ctx << " vt" << i;
        ASSERT_EQ(ref->violated_fd, r->violated_fd) << ctx << " vt" << i;
        ASSERT_EQ(ref->witness_row, r->witness_row) << ctx << " vt" << i;
      }
      break;
    }
    case UpdateKind::kNumUpdateKinds:
      FAIL() << ctx << " sentinel update kind generated";
  }
  Result<Relation> ref_view = (*vts)[0].ViewInstance();
  ASSERT_TRUE(ref_view.ok());
  for (size_t i = 1; i < vts->size(); ++i) {
    ASSERT_TRUE((*vts)[i].database().SameAs((*vts)[0].database()))
        << ctx << " vt" << i << " database diverged";
    Result<Relation> v = (*vts)[i].ViewInstance();
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v->rows(), ref_view->rows())
        << ctx << " vt" << i << " view diverged";
  }
}

/// vts[0] is the from-scratch reference; then the row-store engine, the
/// columnar engine single-threaded, and the columnar engine with 4 probe
/// workers sharing the cached CodeProbeIndex.
std::vector<ViewTranslator> MakeFleet(const DiffSchema& s) {
  std::vector<ViewTranslator> vts;
  TranslatorOptions scratch;
  scratch.incremental = false;
  vts.push_back(MakeVt(s, scratch));
  TranslatorOptions row_engine;  // defaults: kRowHash store, kHash chase
  vts.push_back(MakeVt(s, row_engine));
  TranslatorOptions col1;
  col1.store = StoreKind::kColumnar;
  vts.push_back(MakeVt(s, col1));
  TranslatorOptions col4;
  col4.store = StoreKind::kColumnar;
  col4.probe_threads = 4;
  col4.pair_screen = false;  // screens resolve probes before they chase
  vts.push_back(MakeVt(s, col4));
  return vts;
}

void RunDifferential(const DiffSchema& s, int ops, uint64_t seed,
                     const std::string& ctx) {
  std::vector<ViewTranslator> vts = MakeFleet(s);
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    Result<Relation> view = vts[0].ViewInstance();
    ASSERT_TRUE(view.ok());
    const RandomOp op = DrawOp(&rng, *view);
    ApplyEverywhere(op, &vts, ctx + " op " + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ColumnarDifferentialTest, ChainSchemas) {
  for (int width : {3, 4, 5}) {
    for (uint64_t seed : {17ull, 29ull}) {
      DiffSchema s = MakeChainSchema(width, 40, seed);
      RunDifferential(s, 60, seed * 31 + width,
                      "chain w" + std::to_string(width) + " s" +
                          std::to_string(seed));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ColumnarDifferentialTest, ProbeHeavySchema) {
  // U = ABC, X = AB, Y = BC, Sigma = {B -> C, C -> B}: C -> B has an empty
  // lhs∩X, so every row is a probe candidate and the columnar delta-probe
  // path carries the whole verdict, concurrently on the 4-thread member.
  DiffSchema s;
  s.universe = Universe::Anonymous(3);
  s.fds.Add(AttrSet{1}, 2);
  s.fds.Add(AttrSet{2}, 1);
  s.x = AttrSet{0, 1};
  s.y = AttrSet{1, 2};
  Relation db(s.universe.All());
  const relview::Schema& sch = db.schema();
  for (int i = 0; i < 30; ++i) {
    Tuple t(3);
    t[sch.PosOf(0)] = ColValue(0, static_cast<uint32_t>(i));
    t[sch.PosOf(1)] = ColValue(1, static_cast<uint32_t>(i % 5));
    t[sch.PosOf(2)] = ColValue(2, static_cast<uint32_t>(i % 5));
    db.AddRow(std::move(t));
  }
  db.Normalize();
  s.database = std::move(db);
  for (uint64_t seed : {41ull, 43ull, 47ull}) {
    RunDifferential(s, 60, seed, "probe-heavy s" + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ColumnarDifferentialTest, RandomFdSchemas) {
  int schemas_run = 0;
  for (uint64_t seed = 50; seed <= 90 && schemas_run < 8; ++seed) {
    std::optional<DiffSchema> s = MakeRandomSchema(/*width=*/4, /*nfds=*/3,
                                                   /*rows=*/25, seed);
    if (!s.has_value()) continue;
    DependencySet sigma;
    sigma.fds = s->fds;
    auto probe = ViewTranslator::Create(s->universe, sigma, s->x, s->y);
    if (!probe.ok()) continue;
    ++schemas_run;
    RunDifferential(*s, 50, seed * 97, "random s" + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(schemas_run, 4) << "subset enumeration found too few schemas";
}

TEST(ColumnarEngineTest, ProbeIndexIsCachedAcrossChecksAtFixedBase) {
  // CanInsert never mutates, so the base version is stable: the first
  // chasing check builds the probe index and later ones reuse it.
  DiffSchema s = MakeChainSchema(4, 50, 3);
  TranslatorOptions opts;
  opts.store = StoreKind::kColumnar;
  opts.pair_screen = false;  // screened probes never reach the chaser
  ViewTranslator vt = MakeVt(s, opts);
  const relview::Schema vs(s.x);
  Result<Relation> view = vt.ViewInstance();
  ASSERT_TRUE(view.ok());
  for (int i = 0; i < 6; ++i) {
    Tuple fresh = view->row(0);
    fresh.Set(vs, 0, ColValue(0, 0x00F000u + static_cast<uint32_t>(i)));
    auto ins = vt.CanInsert(fresh);
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  }
  const EngineStats es = vt.engine_stats();
  EXPECT_GE(es.probe_index_builds, 1u);
  EXPECT_GT(es.probe_index_reuses, es.probe_index_builds);
}

TEST(ColumnarEngineTest, ColumnarStoreForcesColumnarBackend) {
  DiffSchema s = MakeChainSchema(3, 10, 1);
  TranslatorOptions opts;
  opts.store = StoreKind::kColumnar;
  opts.backend = ChaseBackend::kHash;  // overridden by the store choice
  ViewTranslator vt = MakeVt(s, opts);
  Result<Relation> view = vt.ViewInstance();
  ASSERT_TRUE(view.ok());
  ASSERT_GT(view->size(), 0);
  auto r = vt.CanInsert(view->row(0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->verdict, TranslationVerdict::kIdentity);
}

}  // namespace
}  // namespace relview
