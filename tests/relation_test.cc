// Unit tests for Value, Tuple, Relation and its algebra.

#include "relational/relation.h"

#include <gtest/gtest.h>

namespace relview {
namespace {

Tuple MakeTuple(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

TEST(ValueTest, ConstVsNull) {
  Value c = Value::Const(7);
  Value n = Value::Null(7);
  EXPECT_TRUE(c.is_const());
  EXPECT_TRUE(n.is_null());
  EXPECT_NE(c, n);
  EXPECT_EQ(c.index(), 7u);
  EXPECT_EQ(n.index(), 7u);
  EXPECT_EQ(c.ToString(), "c7");
  EXPECT_EQ(n.ToString(), "?7");
}

TEST(ValuePoolTest, InternIsIdempotent) {
  ValuePool pool;
  Value a = pool.Intern("alice");
  Value b = pool.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, pool.Intern("alice"));
  EXPECT_EQ(pool.NameOf(a), "alice");
}

TEST(TupleTest, ProjectAndAgree) {
  Schema abc(AttrSet{0, 1, 2});
  Schema ac(AttrSet{0, 2});
  Tuple t = MakeTuple({10, 20, 30});
  Tuple p = t.Project(abc, ac);
  EXPECT_EQ(p[0], Value::Const(10));
  EXPECT_EQ(p[1], Value::Const(30));
  Tuple t2 = MakeTuple({10, 99, 30});
  EXPECT_TRUE(t.AgreesWith(t2, abc, AttrSet{0, 2}));
  EXPECT_FALSE(t.AgreesWith(t2, abc, AttrSet{1}));
}

TEST(RelationTest, NormalizeDeduplicates) {
  Relation r(AttrSet{0, 1});
  r.AddRow(MakeTuple({1, 2}));
  r.AddRow(MakeTuple({1, 2}));
  r.AddRow(MakeTuple({3, 4}));
  r.Normalize();
  EXPECT_EQ(r.size(), 2);
}

TEST(RelationTest, ProjectDeduplicates) {
  Relation r(AttrSet{0, 1});
  r.AddRow(MakeTuple({1, 2}));
  r.AddRow(MakeTuple({1, 3}));
  Relation p = r.Project(AttrSet{0});
  EXPECT_EQ(p.size(), 1);
  EXPECT_TRUE(p.ContainsRow(MakeTuple({1})));
}

TEST(RelationTest, NaturalJoinRecombines) {
  // Classic: R(A,B), S(B,C); join on B.
  Relation r(AttrSet{0, 1});
  r.AddRow(MakeTuple({1, 10}));
  r.AddRow(MakeTuple({2, 20}));
  Relation s(AttrSet{1, 2});
  s.AddRow(MakeTuple({10, 100}));
  s.AddRow(MakeTuple({10, 101}));
  Relation j = Relation::NaturalJoin(r, s);
  EXPECT_EQ(j.attrs(), (AttrSet{0, 1, 2}));
  EXPECT_EQ(j.size(), 2);
  EXPECT_TRUE(j.ContainsRow(MakeTuple({1, 10, 100})));
  EXPECT_TRUE(j.ContainsRow(MakeTuple({1, 10, 101})));
}

TEST(RelationTest, JoinOnDisjointSchemasIsProduct) {
  Relation r(AttrSet{0});
  r.AddRow(MakeTuple({1}));
  r.AddRow(MakeTuple({2}));
  Relation s(AttrSet{1});
  s.AddRow(MakeTuple({7}));
  Relation j = Relation::NaturalJoin(r, s);
  EXPECT_EQ(j.size(), 2);
  auto p = Relation::Product(r, s);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->SameAs(j));
}

TEST(RelationTest, ProductRejectsOverlap) {
  Relation r(AttrSet{0});
  Relation s(AttrSet{0});
  EXPECT_FALSE(Relation::Product(r, s).ok());
}

TEST(RelationTest, UnionAndDifference) {
  Relation a(AttrSet{0});
  a.AddRow(MakeTuple({1}));
  a.AddRow(MakeTuple({2}));
  Relation b(AttrSet{0});
  b.AddRow(MakeTuple({2}));
  b.AddRow(MakeTuple({3}));
  auto u = Relation::Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3);
  auto d = Relation::Difference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1);
  EXPECT_TRUE(d->ContainsRow(MakeTuple({1})));
}

TEST(RelationTest, UnionSchemaMismatchIsError) {
  Relation a(AttrSet{0});
  Relation b(AttrSet{1});
  EXPECT_FALSE(Relation::Union(a, b).ok());
}

TEST(RelationTest, RenameValueAffectsAllColumns) {
  Relation r(AttrSet{0, 1});
  r.AddRow(MakeTuple({5, 5}));
  EXPECT_EQ(r.RenameValue(Value::Const(5), Value::Const(6)), 2);
  EXPECT_TRUE(r.ContainsRow(MakeTuple({6, 6})));
}

TEST(RelationTest, HasNulls) {
  Relation r(AttrSet{0});
  r.AddRow(Tuple({Value::Const(1)}));
  EXPECT_FALSE(r.HasNulls());
  r.AddRow(Tuple({Value::Null(0)}));
  EXPECT_TRUE(r.HasNulls());
}

TEST(RelationTest, SameAsIsOrderInsensitive) {
  Relation a(AttrSet{0});
  a.AddRow(MakeTuple({1}));
  a.AddRow(MakeTuple({2}));
  Relation b(AttrSet{0});
  b.AddRow(MakeTuple({2}));
  b.AddRow(MakeTuple({1}));
  EXPECT_TRUE(a.SameAs(b));
}

TEST(RelationTest, AddRowNamedValidates) {
  Relation r(AttrSet{0, 2});
  EXPECT_TRUE(r.AddRowNamed({{0, Value::Const(1)}, {2, Value::Const(2)}})
                  .ok());
  EXPECT_FALSE(r.AddRowNamed({{0, Value::Const(1)}}).ok());
  EXPECT_FALSE(
      r.AddRowNamed({{0, Value::Const(1)}, {1, Value::Const(2)}}).ok());
  EXPECT_FALSE(
      r.AddRowNamed({{0, Value::Const(1)}, {0, Value::Const(2)}}).ok());
  EXPECT_EQ(r.size(), 1);
}

TEST(RelationTest, SelectFilters) {
  Relation r(AttrSet{0});
  r.AddRow(MakeTuple({1}));
  r.AddRow(MakeTuple({2}));
  Relation sel = r.Select(
      [](const Tuple& t) { return t[0] == Value::Const(2); });
  EXPECT_EQ(sel.size(), 1);
}

}  // namespace
}  // namespace relview
