// Differential tests for the incremental translatability engine: for
// random FD sets and random update streams, a translator running on the
// engine (persistent view index + cached base chase, with and without
// parallel probes and the pair screen) must produce verdicts, witnesses
// and post-states identical to the from-scratch free functions after
// every update. Also unit-tests the shared ClosureCache.

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "deps/closure_cache.h"
#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "service/metrics.h"
#include "util/rng.h"
#include "view/complement.h"
#include "view/translator.h"

namespace relview {
namespace {

// ---------------------------------------------------------------------
// ClosureCache

TEST(ClosureCacheTest, MatchesDirectClosureAndCounts) {
  Universe u = Universe::Anonymous(5);
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  fds.Add(AttrSet{1}, 2);
  fds.Add(AttrSet{2, 3}, 4);

  ClosureCache cache(64);
  for (int round = 0; round < 3; ++round) {
    for (uint32_t bits = 0; bits < 32; ++bits) {
      AttrSet seed;
      for (int a = 0; a < 5; ++a) {
        if (bits & (1u << a)) seed.Add(static_cast<AttrId>(a));
      }
      EXPECT_EQ(cache.Closure(fds, seed), fds.Closure(seed));
    }
  }
  EXPECT_EQ(cache.misses(), 32u);  // one per distinct seed
  EXPECT_EQ(cache.hits(), 64u);    // rounds 2 and 3 fully cached
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ClosureCacheTest, EvictsLeastRecentlyUsed) {
  FDSet fds;
  fds.Add(AttrSet{0}, 1);
  ClosureCache cache(2);
  const AttrSet a{0}, b{1}, c{2};
  cache.Closure(fds, a);
  cache.Closure(fds, b);
  cache.Closure(fds, a);  // a is now MRU
  cache.Closure(fds, c);  // evicts b
  EXPECT_EQ(cache.evictions(), 1u);
  const uint64_t hits_before = cache.hits();
  cache.Closure(fds, a);
  EXPECT_EQ(cache.hits(), hits_before + 1);
  cache.Closure(fds, b);  // must be a miss again
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(ClosureCacheTest, InvalidatesWhenFdSetChanges) {
  FDSet fds1;
  fds1.Add(AttrSet{0}, 1);
  FDSet fds2;
  fds2.Add(AttrSet{0}, 2);
  ClosureCache cache(16);
  const AttrSet seed{0};
  EXPECT_EQ(cache.Closure(fds1, seed), fds1.Closure(seed));
  // Same seed, different FD set: a stale hit here would be unsound.
  EXPECT_EQ(cache.Closure(fds2, seed), fds2.Closure(seed));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.Closure(fds2, seed), fds2.Closure(seed));
  EXPECT_EQ(cache.hits(), 1u);
}

// ---------------------------------------------------------------------
// Differential harness

struct Schema4 {
  Universe universe;
  FDSet fds;
  AttrSet x, y;
  Relation database{AttrSet()};
};

/// Per-column value spaces (matching the instance generator's convention)
/// keep RepairToLegal merges column-local.
Value ColValue(int col, uint32_t v) {
  return Value::Const(static_cast<uint32_t>(col) * 0x01000000u + v);
}

/// The paper's chain shape A0 -> A1 -> ... with a deterministic legal
/// instance; X drops the last attribute, Y keeps the last two.
Schema4 MakeChainSchema(int width, int rows, uint64_t seed) {
  Schema4 s;
  s.universe = Universe::Anonymous(width);
  for (int i = 0; i + 1 < width; ++i) {
    s.fds.Add(AttrSet::Single(static_cast<AttrId>(i)),
              static_cast<AttrId>(i + 1));
  }
  s.x = s.universe.All();
  s.x.Remove(static_cast<AttrId>(width - 1));
  s.y = AttrSet{static_cast<AttrId>(width - 2),
                static_cast<AttrId>(width - 1)};
  Rng rng(seed);
  Relation db(s.universe.All());
  const relview::Schema& sch = db.schema();
  for (int i = 0; i < rows; ++i) {
    Tuple t(width);
    uint32_t v = static_cast<uint32_t>(i);
    for (int c = 0; c < width; ++c) {
      t[sch.PosOf(static_cast<AttrId>(c))] = ColValue(c, v);
      v = static_cast<uint32_t>(
          (v * 2654435761u + static_cast<uint32_t>(c)) %
          static_cast<uint32_t>(std::max<int>(2, rows >> (2 * (c + 1)))));
    }
    db.AddRow(std::move(t));
  }
  RepairToLegal(&db, s.fds);
  db.Normalize();
  s.database = std::move(db);
  return s;
}

/// A random canonical FD set over `width` attributes together with the
/// first complementary (X, Y) pair found by subset enumeration, and a
/// random legal instance. Returns nullopt when no nontrivial complement
/// exists for the drawn FDs.
std::optional<Schema4> MakeRandomSchema(int width, int nfds, int rows,
                                        uint64_t seed) {
  Rng rng(seed);
  Schema4 s;
  s.universe = Universe::Anonymous(width);
  for (int i = 0; i < nfds; ++i) {
    AttrSet lhs;
    const int lhs_size = 1 + static_cast<int>(rng.Below(2));
    for (int k = 0; k < lhs_size; ++k) {
      lhs.Add(static_cast<AttrId>(rng.Below(width)));
    }
    const AttrId rhs = static_cast<AttrId>(rng.Below(width));
    if (lhs.Contains(rhs)) continue;  // keep FDs nontrivial
    s.fds.Add(lhs, rhs);
  }
  DependencySet sigma;
  sigma.fds = s.fds;
  const AttrSet all = s.universe.All();
  const uint32_t subsets = 1u << width;
  for (uint32_t xb = 1; xb + 1 < subsets && s.x.Empty(); ++xb) {
    for (uint32_t yb = 1; yb + 1 < subsets; ++yb) {
      AttrSet x, y;
      for (int a = 0; a < width; ++a) {
        if (xb & (1u << a)) x.Add(static_cast<AttrId>(a));
        if (yb & (1u << a)) y.Add(static_cast<AttrId>(a));
      }
      if ((x | y) != all || x == all || y == all) continue;
      if (!AreComplementary(all, sigma, x, y)) continue;
      s.x = x;
      s.y = y;
      break;
    }
  }
  if (s.x.Empty()) return std::nullopt;
  GeneratorOptions gopts;
  gopts.rows = rows;
  gopts.domain = 6;
  gopts.seed = seed * 7919 + 13;
  s.database = GenerateLegalInstance(all, s.fds, gopts);
  return s;
}

ViewTranslator MakeVt(const Schema4& s, TranslatorOptions options) {
  DependencySet sigma;
  sigma.fds = s.fds;
  auto vt = ViewTranslator::Create(s.universe, sigma, s.x, s.y, options);
  EXPECT_TRUE(vt.ok()) << vt.status().ToString();
  Status st = vt->Bind(s.database);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return std::move(*vt);
}

/// One random update over X: mostly mutations of live view rows (which
/// exercise conditions (a)/(b)/(c) and both Theorem 9 cases), sometimes
/// wholly random tuples.
struct RandomOp {
  UpdateKind kind = UpdateKind::kInsert;
  Tuple t1, t2;
};

RandomOp DrawOp(Rng* rng, const Relation& view) {
  const relview::Schema& vs = view.schema();
  const int arity = vs.arity();
  auto random_tuple = [&] {
    Tuple t(arity);
    for (int p = 0; p < arity; ++p) {
      t[p] = ColValue(static_cast<int>(vs.cols()[p]),
                      static_cast<uint32_t>(rng->Below(6)));
    }
    return t;
  };
  auto mutated_row = [&] {
    if (view.empty()) return random_tuple();
    Tuple t = view.row(static_cast<int>(rng->Below(view.size())));
    const int p = static_cast<int>(rng->Below(arity));
    t[p] = ColValue(static_cast<int>(vs.cols()[p]),
                    static_cast<uint32_t>(rng->Below(6)));
    return t;
  };
  RandomOp op;
  const uint64_t k = rng->Below(4);
  if (k == 0) {
    op.kind = UpdateKind::kInsert;
    op.t1 = rng->Chance(0.7) ? mutated_row() : random_tuple();
  } else if (k == 1) {
    op.kind = UpdateKind::kDelete;
    op.t1 = view.empty() || rng->Chance(0.3)
                ? random_tuple()
                : view.row(static_cast<int>(rng->Below(view.size())));
  } else {
    op.kind = UpdateKind::kReplace;
    op.t1 = view.empty() || rng->Chance(0.2)
                ? random_tuple()
                : view.row(static_cast<int>(rng->Below(view.size())));
    op.t2 = mutated_row();
  }
  return op;
}

/// Applies `op` to every translator and asserts identical outcomes:
/// status, verdict, violated FD, witness row, theorem case — but never
/// effort counters (chases_run is legitimately order-dependent under the
/// parallel executor's early exit).
void ApplyEverywhere(const RandomOp& op, std::vector<ViewTranslator>* vts,
                     const std::string& ctx) {
  switch (op.kind) {
    case UpdateKind::kInsert: {
      Result<InsertionReport> ref = (*vts)[0].InsertWithReport(op.t1);
      for (size_t i = 1; i < vts->size(); ++i) {
        Result<InsertionReport> r = (*vts)[i].InsertWithReport(op.t1);
        ASSERT_EQ(ref.ok(), r.ok()) << ctx << " vt" << i;
        if (!ref.ok()) {
          ASSERT_EQ(ref.status().ToString(), r.status().ToString())
              << ctx << " vt" << i;
          continue;
        }
        ASSERT_EQ(ref->verdict, r->verdict) << ctx << " vt" << i;
        ASSERT_EQ(ref->violated_fd, r->violated_fd) << ctx << " vt" << i;
        ASSERT_EQ(ref->witness_row, r->witness_row) << ctx << " vt" << i;
      }
      break;
    }
    case UpdateKind::kDelete: {
      Result<DeletionReport> ref = (*vts)[0].DeleteWithReport(op.t1);
      for (size_t i = 1; i < vts->size(); ++i) {
        Result<DeletionReport> r = (*vts)[i].DeleteWithReport(op.t1);
        ASSERT_EQ(ref.ok(), r.ok()) << ctx << " vt" << i;
        if (!ref.ok()) {
          ASSERT_EQ(ref.status().ToString(), r.status().ToString())
              << ctx << " vt" << i;
          continue;
        }
        ASSERT_EQ(ref->verdict, r->verdict) << ctx << " vt" << i;
      }
      break;
    }
    case UpdateKind::kReplace: {
      Result<ReplacementReport> ref =
          (*vts)[0].ReplaceWithReport(op.t1, op.t2);
      for (size_t i = 1; i < vts->size(); ++i) {
        Result<ReplacementReport> r =
            (*vts)[i].ReplaceWithReport(op.t1, op.t2);
        ASSERT_EQ(ref.ok(), r.ok()) << ctx << " vt" << i;
        if (!ref.ok()) {
          ASSERT_EQ(ref.status().ToString(), r.status().ToString())
              << ctx << " vt" << i;
          continue;
        }
        ASSERT_EQ(ref->verdict, r->verdict) << ctx << " vt" << i;
        ASSERT_EQ(ref->theorem_case, r->theorem_case) << ctx << " vt" << i;
        ASSERT_EQ(ref->violated_fd, r->violated_fd) << ctx << " vt" << i;
        ASSERT_EQ(ref->witness_row, r->witness_row) << ctx << " vt" << i;
      }
      break;
    }
    case UpdateKind::kNumUpdateKinds:
      FAIL() << ctx << " sentinel update kind generated";
  }
  // Post-state equality: databases and served views must agree exactly
  // (the engine maintains the view in Project's canonical order).
  Result<Relation> ref_view = (*vts)[0].ViewInstance();
  ASSERT_TRUE(ref_view.ok());
  for (size_t i = 1; i < vts->size(); ++i) {
    ASSERT_TRUE((*vts)[i].database().SameAs((*vts)[0].database()))
        << ctx << " vt" << i << " database diverged";
    Result<Relation> v = (*vts)[i].ViewInstance();
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v->rows(), ref_view->rows())
        << ctx << " vt" << i << " view diverged";
  }
}

/// vts[0] is the from-scratch reference; the rest are engine variants
/// covering screen on/off and 1 vs 4 probe threads.
std::vector<ViewTranslator> MakeFleet(const Schema4& s) {
  std::vector<ViewTranslator> vts;
  TranslatorOptions scratch;
  scratch.incremental = false;
  vts.push_back(MakeVt(s, scratch));
  TranslatorOptions engine1;  // defaults: incremental, screen, 1 thread
  vts.push_back(MakeVt(s, engine1));
  TranslatorOptions engine4;
  engine4.probe_threads = 4;
  engine4.pair_screen = false;
  vts.push_back(MakeVt(s, engine4));
  return vts;
}

void RunDifferential(const Schema4& s, int ops, uint64_t seed,
                     const std::string& ctx) {
  std::vector<ViewTranslator> vts = MakeFleet(s);
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    Result<Relation> view = vts[0].ViewInstance();
    ASSERT_TRUE(view.ok());
    const RandomOp op = DrawOp(&rng, *view);
    ApplyEverywhere(op, &vts, ctx + " op " + std::to_string(i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalDifferentialTest, ChainSchemas) {
  for (int width : {3, 4, 5}) {
    for (uint64_t seed : {11ull, 22ull}) {
      Schema4 s = MakeChainSchema(width, 40, seed);
      RunDifferential(s, 60, seed * 31 + width,
                      "chain w" + std::to_string(width) + " s" +
                          std::to_string(seed));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(IncrementalDifferentialTest, ProbeHeavySchema) {
  // U = ABC, X = AB, Y = BC, Sigma = {B -> C, C -> B}: C -> B has an empty
  // lhs∩X, so every row is a probe candidate — the parallel executor's
  // first-counterexample selection gets real coverage here.
  Schema4 s;
  s.universe = Universe::Anonymous(3);
  s.fds.Add(AttrSet{1}, 2);
  s.fds.Add(AttrSet{2}, 1);
  s.x = AttrSet{0, 1};
  s.y = AttrSet{1, 2};
  Relation db(s.universe.All());
  const relview::Schema& sch = db.schema();
  for (int i = 0; i < 30; ++i) {
    Tuple t(3);
    t[sch.PosOf(0)] = ColValue(0, static_cast<uint32_t>(i));
    t[sch.PosOf(1)] = ColValue(1, static_cast<uint32_t>(i % 5));
    t[sch.PosOf(2)] = ColValue(2, static_cast<uint32_t>(i % 5));
    db.AddRow(std::move(t));
  }
  db.Normalize();
  s.database = std::move(db);
  for (uint64_t seed : {5ull, 6ull, 7ull}) {
    RunDifferential(s, 60, seed, "probe-heavy s" + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalDifferentialTest, RandomFdSchemas) {
  int schemas_run = 0;
  for (uint64_t seed = 1; seed <= 40 && schemas_run < 8; ++seed) {
    std::optional<Schema4> s = MakeRandomSchema(/*width=*/4, /*nfds=*/3,
                                                /*rows=*/25, seed);
    if (!s.has_value()) continue;
    DependencySet sigma;
    sigma.fds = s->fds;
    auto probe = ViewTranslator::Create(s->universe, sigma, s->x, s->y);
    if (!probe.ok()) continue;  // e.g. non-canonical corner the seed drew
    ++schemas_run;
    RunDifferential(*s, 50, seed * 97, "random s" + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(schemas_run, 4) << "subset enumeration found too few schemas";
}

// ---------------------------------------------------------------------
// Engine behaviours beyond verdict parity

TEST(IncrementalEngineTest, ReusesIndexAndExtendsBaseAcrossStream) {
  Schema4 s = MakeChainSchema(4, 50, 3);
  TranslatorOptions opts;
  ViewTranslator vt = MakeVt(s, opts);
  const relview::Schema vs(s.x);
  Result<Relation> view = vt.ViewInstance();
  ASSERT_TRUE(view.ok());
  for (int i = 0; i < 10; ++i) {
    Tuple fresh = view->row(0);
    fresh.Set(vs, 0, ColValue(0, 0x00F000u + static_cast<uint32_t>(i)));
    auto ins = vt.InsertWithReport(fresh);
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    ASSERT_TRUE(ins->translatable());
    auto del = vt.DeleteWithReport(fresh);
    ASSERT_TRUE(del.ok()) << del.status().ToString();
    ASSERT_TRUE(del->translatable());
  }
  const EngineStats es = vt.engine_stats();
  EXPECT_EQ(es.index_rebuilds, 1u);  // one build, maintained ever after
  EXPECT_GE(es.index_reuses, 20u);
  EXPECT_GT(es.base_extends, 0u);    // accepted inserts extend in place
  EXPECT_GT(es.closure_hits, 0u);
  EXPECT_GT(es.closure_hit_rate, 0.5);
}

TEST(IncrementalEngineTest, CopiedTranslatorRebuildsItsOwnCaches) {
  Schema4 s = MakeChainSchema(4, 30, 9);
  ViewTranslator vt = MakeVt(s, TranslatorOptions{});
  const relview::Schema vs(s.x);
  Result<Relation> view = vt.ViewInstance();
  ASSERT_TRUE(view.ok());
  Tuple fresh = view->row(0);
  fresh.Set(vs, 0, ColValue(0, 0x00F001u));
  ASSERT_TRUE(vt.Insert(fresh).ok());

  ViewTranslator copy = vt;  // drops caches; must still agree
  EXPECT_EQ(copy.engine_stats().index_rebuilds, 0u);
  Result<Relation> a = vt.ViewInstance();
  Result<Relation> b = copy.ViewInstance();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows(), b->rows());
  Tuple fresh2 = view->row(0);
  fresh2.Set(vs, 0, ColValue(0, 0x00F002u));
  auto r1 = vt.CanInsert(fresh2);
  auto r2 = copy.CanInsert(fresh2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->verdict, r2->verdict);
}

TEST(IncrementalEngineTest, MetricsExportEngineGauges) {
  ServiceMetrics metrics;
  EngineStats stats;
  stats.closure_hits = 30;
  stats.closure_misses = 10;
  stats.index_reuses = 7;
  stats.base_shrinks = 5;
  stats.probes_run = 100;
  stats.probes_screened = 60;
  stats.probes_parallel = 40;
  metrics.SetEngineGauges(stats);
  const EngineStats out = metrics.engine_gauges();
  EXPECT_EQ(out.closure_hits, 30u);
  EXPECT_EQ(out.base_shrinks, 5u);
  EXPECT_DOUBLE_EQ(out.closure_hit_rate, 0.75);
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"closure_cache_hit_rate\":0.75"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"view_index_reuses\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"base_chase_shrinks\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"probes_run\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"probes_parallel\":40"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must stay single-line";
}

}  // namespace
}  // namespace relview
