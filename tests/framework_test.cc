// Tests for the Bancilhon–Spyratos framework (facts (i) and (ii) of the
// paper's introduction) over finite state spaces, plus the instantiation
// with relational states and projection views that ties the abstract
// theory to the paper's concrete setting.

#include "framework/bs_framework.h"

#include <gtest/gtest.h>

#include <map>

#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "view/deletion.h"
#include "view/insertion.h"

namespace relview {
namespace {

TEST(FiniteMappingTest, ComposeAndIdentity) {
  FiniteMapping f({1, 2, 0}, 3);
  FiniteMapping id = FiniteMapping::Identity(3);
  EXPECT_TRUE(FiniteMapping::Compose(f, id) == f);
  EXPECT_TRUE(FiniteMapping::Compose(id, f) == f);
  FiniteMapping ff = FiniteMapping::Compose(f, f);
  EXPECT_EQ(ff(0), 2);
  EXPECT_EQ(ff(2), 1);
}

TEST(FiniteMappingTest, FromLabelsDensifies) {
  FiniteMapping m = FiniteMapping::FromLabels({42, 17, 42, 3});
  EXPECT_EQ(m.range_size(), 3);
  EXPECT_EQ(m(0), m(2));
  EXPECT_NE(m(0), m(1));
}

TEST(ComplementTest, IdentityIsComplementOfEverything) {
  FiniteMapping v({0, 0, 1, 1}, 2);
  FiniteMapping id = FiniteMapping::Identity(4);
  EXPECT_TRUE(IsComplementOf(v, id));
}

TEST(ComplementTest, CoarseMapIsNotComplement) {
  FiniteMapping v({0, 0, 1, 1}, 2);
  FiniteMapping coarse({0, 0, 0, 0}, 1);
  EXPECT_FALSE(IsComplementOf(v, coarse));
  // The "other half" is a complement.
  FiniteMapping other({0, 1, 0, 1}, 2);
  EXPECT_TRUE(IsComplementOf(v, other));
}

TEST(TranslationTest, ConstantComplementTranslationIsUniqueAndChecked) {
  // States = pairs (a, b) with a, b in {0,1}; v = first coordinate,
  // vc = second. u swaps the view value.
  FiniteMapping v({0, 0, 1, 1}, 2);
  FiniteMapping vc({0, 1, 0, 1}, 2);
  FiniteMapping u({1, 0}, 2);
  auto tu = TranslateUnderConstantComplement(v, vc, u);
  ASSERT_TRUE(tu.has_value());
  // (a, b) -> (1 − a, b): state 0 = (0,0) -> (1,0) = state 2, etc.
  EXPECT_EQ((*tu)(0), 2);
  EXPECT_EQ((*tu)(1), 3);
  EXPECT_EQ((*tu)(2), 0);
  EXPECT_EQ((*tu)(3), 1);
  // Fact (i).
  EXPECT_TRUE(IsConsistentTranslation(v, u, *tu));
  EXPECT_TRUE(IsAcceptableTranslation(v, u, *tu));
}

TEST(TranslationTest, UntranslatableWhenTargetStateMissing) {
  // Remove state (1,1): now u (swap) cannot move (0,1) anywhere.
  FiniteMapping v({0, 0, 1}, 2);
  FiniteMapping vc({0, 1, 0}, 2);
  FiniteMapping u({1, 0}, 2);
  EXPECT_FALSE(TranslateUnderConstantComplement(v, vc, u).has_value());
}

TEST(TranslationTest, MorphismPropertyHolds) {
  // Fact (ii), forward direction: translations of composable updates
  // compose. Use the 4-state space and the updates u (swap) and w = u.
  FiniteMapping v({0, 0, 1, 1}, 2);
  FiniteMapping vc({0, 1, 0, 1}, 2);
  FiniteMapping u({1, 0}, 2);
  auto tu = TranslateUnderConstantComplement(v, vc, u);
  ASSERT_TRUE(tu.has_value());
  FiniteMapping uu = FiniteMapping::Compose(u, u);  // identity on views
  auto tuu = TranslateUnderConstantComplement(v, vc, uu);
  ASSERT_TRUE(tuu.has_value());
  EXPECT_TRUE(IsMorphismOnPair(*tu, *tu, *tuu));
}

TEST(TranslationTest, ConverseRecoversAComplement) {
  // Fact (ii), converse: from a consistent acceptable morphism, rebuild a
  // complement that reproduces it.
  FiniteMapping v({0, 0, 1, 1}, 2);
  FiniteMapping vc({0, 1, 0, 1}, 2);
  FiniteMapping u({1, 0}, 2);
  FiniteMapping id2({0, 1}, 2);
  auto tu = TranslateUnderConstantComplement(v, vc, u);
  ASSERT_TRUE(tu.has_value());
  std::vector<std::pair<FiniteMapping, FiniteMapping>> updates = {
      {u, *tu}, {id2, FiniteMapping::Identity(4)}};
  auto recovered = ComplementFromTranslator(v, updates);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(IsComplementOf(v, *recovered));
  auto tu2 = TranslateUnderConstantComplement(v, *recovered, u);
  ASSERT_TRUE(tu2.has_value());
  EXPECT_TRUE(*tu2 == *tu);
}

TEST(TranslationTest, ConverseRejectsInconsistentTranslator) {
  FiniteMapping v({0, 0, 1, 1}, 2);
  FiniteMapping u({1, 0}, 2);
  // A bogus "translation" that does not move the view.
  FiniteMapping bogus = FiniteMapping::Identity(4);
  auto recovered = ComplementFromTranslator(v, {{u, bogus}});
  EXPECT_FALSE(recovered.has_value());
}

// ---- Relational instantiation: states = legal ED instances, v = pi_E ----

TEST(RelationalBridgeTest, ProjectionViewTranslationsAreMorphisms) {
  // Universe {A, B} with FD A -> B, states = legal instances over domain
  // {0,1} (per-column), view = pi_A, complement = pi_AB = identity-ish.
  Universe u = Universe::Anonymous(2);
  FDSet fds;
  fds.Add(AttrSet{0}, 1);

  std::vector<Relation> states;
  EnumerateRelations(u.All(), 2, [&](const Relation& r) {
    if (SatisfiesAll(r, fds)) states.push_back(r);
  });
  ASSERT_GT(states.size(), 4u);

  // v: state -> its pi_A image (labeled).
  std::map<std::vector<Tuple>, int> view_ids;
  std::vector<int> vlabels;
  for (const Relation& s : states) {
    Relation p = s.Project(AttrSet{0});
    auto [it, ignore] =
        view_ids.emplace(p.rows(), static_cast<int>(view_ids.size()));
    vlabels.push_back(it->second);
  }
  FiniteMapping v = FiniteMapping::FromLabels(vlabels);

  // vc: the complement pi_B-with-links... use the full-state identity as
  // the trivial complement (always valid).
  FiniteMapping vc = FiniteMapping::Identity(static_cast<int>(states.size()));
  EXPECT_TRUE(IsComplementOf(v, vc));

  // A view update: insert the A-tuple (1) — defined on view states.
  std::vector<int> uimage(v.range_size());
  std::map<int, std::vector<Tuple>> view_rows;
  for (const auto& [rows, id] : view_ids) view_rows[id] = rows;
  for (const auto& [rows, id] : view_ids) {
    std::vector<Tuple> updated = rows;
    Tuple t(std::vector<Value>{Value::Const(1)});
    bool present = false;
    for (const Tuple& row : updated) {
      if (row == t) present = true;
    }
    if (!present) updated.push_back(t);
    std::sort(updated.begin(), updated.end());
    auto found = view_ids.find(updated);
    // Every view instance over {0,1} exists among legal states.
    ASSERT_NE(found, view_ids.end());
    uimage[id] = found->second;
  }
  FiniteMapping uu(std::move(uimage), v.range_size());

  // Under the identity complement, only updates that do not change the
  // view are translatable... the insert changes it, so expect failure:
  EXPECT_FALSE(TranslateUnderConstantComplement(v, vc, uu).has_value());
}

}  // namespace
}  // namespace relview
