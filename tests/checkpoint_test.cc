// Checkpoint and DurableStore tests: encode/write/read round trips,
// checksum and arity corruption detection, crash-atomicity of the
// tmp+rename protocol (fork'd children with crash failpoints armed), and
// the store-level invariants — rotation, checkpoint-bounded recovery,
// compaction never deleting a segment the checkpoint does not cover.

#include "service/checkpoint.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "service/recovery.h"
#include "util/failpoint.h"
#include "view/translator.h"

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

/// A fresh Emp-Dept-Mgr translator bound to the canonical instance.
ViewTranslator MakeTranslator() {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  auto vt = ViewTranslator::Create(u, sigma, u.SetOf("Emp Dept"),
                                   u.SetOf("Dept Mgr"));
  EXPECT_TRUE(vt.ok()) << vt.status().ToString();
  Relation db(vt->universe().All());
  db.AddRow(Row({1, 10, 100}));
  db.AddRow(Row({2, 10, 100}));
  db.AddRow(Row({3, 20, 200}));
  EXPECT_TRUE(vt->Bind(std::move(db)).ok());
  return std::move(*vt);
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "checkpoint_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
  }
  void TearDown() override {
    Failpoints::ClearAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  /// Applies `u` through the translator and journals it via the store —
  /// what UpdateService does under its writer mutex.
  static void ApplyAndAppend(ViewTranslator* vt, DurableStore* store,
                             const ViewUpdate& u) {
    Status st = u.kind == UpdateKind::kInsert ? vt->Insert(u.t1)
                : u.kind == UpdateKind::kDelete
                    ? vt->Delete(u.t1)
                    : vt->Replace(u.t1, u.t2);
    ASSERT_TRUE(st.ok()) << u.ToString() << ": " << st.ToString();
    ASSERT_TRUE(store->Append({u}).ok());
  }

  std::string dir_;
};

TEST_F(CheckpointTest, WriteReadRoundTrip) {
  ViewTranslator vt = MakeTranslator();
  const std::string path = Path("checkpoint-test.rvc");
  ASSERT_TRUE(WriteCheckpoint(path, vt.database(), 7).ok());
  auto back = ReadCheckpoint(path, vt.universe().All());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->seq, 7u);
  EXPECT_TRUE(back->database.SameAs(vt.database()));
}

TEST_F(CheckpointTest, ColumnarWriteReadRoundTrip) {
  ViewTranslator vt = MakeTranslator();
  const std::string path = Path("checkpoint-cols.rvc");
  ASSERT_TRUE(WriteCheckpoint(path, vt.database(), 9,
                              CheckpointFormat::kColumnar)
                  .ok());
  // Readers auto-detect the format from the magic: no format argument.
  auto back = ReadCheckpoint(path, vt.universe().All());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->seq, 9u);
  EXPECT_TRUE(back->database.SameAs(vt.database()));
  // The stored body really is dictionary pages, not rows of raw ids.
  std::ifstream in(path);
  std::string header, body_magic;
  ASSERT_TRUE(std::getline(in, header));
  in >> body_magic;
  EXPECT_EQ(header.substr(0, 7), "rvckpt2");
  EXPECT_EQ(body_magic, "rvcols1");
}

TEST_F(CheckpointTest, ColumnarRoundTripPreservesNulls) {
  // Labeled nulls survive the dictionary pages: the page stores the raw
  // tagged id, so Null(k) decodes back as Null(k), not Const.
  Universe u = Universe::Parse("A B").value();
  Relation r(u.All());
  r.AddRow(Tuple({Value::Const(1), Value::Null(4)}));
  r.AddRow(Tuple({Value::Const(2), Value::Null(4)}));
  r.AddRow(Tuple({Value::Const(2), Value::Null(7)}));
  r.Normalize();
  const std::string path = Path("cols-nulls.rvc");
  ASSERT_TRUE(
      WriteCheckpoint(path, r, 1, CheckpointFormat::kColumnar).ok());
  auto back = ReadCheckpoint(path, u.All());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->database.SameAs(r));
}

TEST_F(CheckpointTest, ColumnarReadDetectsFlippedBit) {
  ViewTranslator vt = MakeTranslator();
  const std::string path = Path("cols-flipped.rvc");
  ASSERT_TRUE(Failpoints::Set("checkpoint.flip", "flip:2").ok());
  ASSERT_TRUE(WriteCheckpoint(path, vt.database(), 3,
                              CheckpointFormat::kColumnar)
                  .ok());
  Failpoints::ClearAll();
  auto back = ReadCheckpoint(path, vt.universe().All());
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, StoreRecoversMixedFormatCheckpoints) {
  // A store that toggles columnar_checkpoints mid-life keeps recovering:
  // the newest checkpoint (columnar) is loaded by auto-detection.
  ViewTranslator vt = MakeTranslator();
  StoreOptions opts;
  opts.dir = dir_;
  {
    auto store = DurableStore::Open(opts, &vt);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ApplyAndAppend(&vt, store->get(), ViewUpdate::Insert(Row({4, 10})));
    ASSERT_TRUE((*store)->WriteCheckpoint(vt.database()).ok());  // row fmt
    ApplyAndAppend(&vt, store->get(), ViewUpdate::Insert(Row({5, 10})));
  }
  opts.columnar_checkpoints = true;
  {
    ViewTranslator fresh = MakeTranslator();
    auto store = DurableStore::Open(opts, &fresh);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(fresh.database().SameAs(vt.database()));
    ApplyAndAppend(&fresh, store->get(), ViewUpdate::Insert(Row({6, 20})));
    auto seq = (*store)->WriteCheckpoint(fresh.database());  // columnar
    ASSERT_TRUE(seq.ok());
    vt = std::move(fresh);
  }
  {
    ViewTranslator fresh = MakeTranslator();
    auto store = DurableStore::Open(opts, &fresh);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE((*store)->recovery().used_checkpoint);
    EXPECT_TRUE(fresh.database().SameAs(vt.database()));
  }
}

TEST_F(CheckpointTest, RoundTripPreservesEmptyRelation) {
  Universe u = Universe::Parse("A B").value();
  Relation empty(u.All());
  const std::string path = Path("empty.rvc");
  ASSERT_TRUE(WriteCheckpoint(path, empty, 0).ok());
  auto back = ReadCheckpoint(path, u.All());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->database.size(), 0);
}

TEST_F(CheckpointTest, ReadDetectsFlippedBit) {
  ViewTranslator vt = MakeTranslator();
  const std::string path = Path("flipped.rvc");
  // The failpoint corrupts the outgoing bytes *after* the checksum was
  // computed — exactly the silent-disk-corruption scenario.
  ASSERT_TRUE(Failpoints::Set("checkpoint.flip", "flip:2").ok());
  ASSERT_TRUE(WriteCheckpoint(path, vt.database(), 3).ok());
  Failpoints::ClearAll();
  auto back = ReadCheckpoint(path, vt.universe().All());
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, ReadDetectsArityMismatch) {
  ViewTranslator vt = MakeTranslator();
  const std::string path = Path("arity.rvc");
  ASSERT_TRUE(WriteCheckpoint(path, vt.database(), 3).ok());
  Universe narrow = Universe::Parse("A B").value();
  auto back = ReadCheckpoint(path, narrow.All());
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, ReadOfMissingFileIsNotFound) {
  Universe u = Universe::Parse("A").value();
  auto back = ReadCheckpoint(Path("nope.rvc"), u.All());
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, InjectedFsyncErrorLeavesNoCheckpoint) {
  ViewTranslator vt = MakeTranslator();
  const std::string path = Path("fsync.rvc");
  ASSERT_TRUE(Failpoints::Set("checkpoint.fsync", "error").ok());
  Status st = WriteCheckpoint(path, vt.database(), 3);
  ASSERT_FALSE(st.ok());
  // Neither the checkpoint nor its tmp survives a failed write.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// Forks a child that runs `body` with `failpoint` armed as "crash"; the
// child must die with Failpoints::kCrashExitCode. Returns after reaping.
template <typename Body>
void RunCrashChild(const std::string& failpoint, Body body) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm and run. The crash failpoint _exit()s inside Check, so
    // nothing below the body runs on the expected path.
    if (!Failpoints::Set(failpoint, "crash").ok()) ::_exit(3);
    body();
    ::_exit(4);  // the failpoint never fired: wrong path exercised
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), Failpoints::kCrashExitCode)
      << "child exited " << WEXITSTATUS(wstatus) << " instead of crashing at "
      << failpoint;
}

TEST_F(CheckpointTest, CrashBeforeRenamePublishesNothing) {
  ViewTranslator vt = MakeTranslator();
  const std::string path = Path("crash1.rvc");
  RunCrashChild("checkpoint.crash_before_rename",
                [&] { (void)WriteCheckpoint(path, vt.database(), 3); });
  // The kill landed between tmp-fsync and rename: the checkpoint name must
  // not exist; the orphan tmp is the recovery scanner's job to sweep.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(CheckpointTest, CrashAfterRenameLeavesValidCheckpoint) {
  ViewTranslator vt = MakeTranslator();
  const std::string path = Path("crash2.rvc");
  RunCrashChild("checkpoint.crash_after_rename",
                [&] { (void)WriteCheckpoint(path, vt.database(), 3); });
  auto back = ReadCheckpoint(path, vt.universe().All());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->seq, 3u);
  EXPECT_TRUE(back->database.SameAs(vt.database()));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(CheckpointTest, StoreOpensEmptyDirAsSeed) {
  ViewTranslator vt = MakeTranslator();
  StoreOptions opts;
  opts.dir = dir_;
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE((*store)->recovery().used_checkpoint);
  EXPECT_EQ((*store)->recovery().replayed, 0u);
  EXPECT_EQ((*store)->seq(), 0u);
  EXPECT_EQ((*store)->segment_count(), 1);  // the fresh active segment
}

TEST_F(CheckpointTest, StoreRotatesSegmentsAndRecovers) {
  StoreOptions opts;
  opts.dir = dir_;
  opts.rotate_records = 3;
  ViewTranslator direct = MakeTranslator();
  {
    ViewTranslator vt = MakeTranslator();
    auto store = DurableStore::Open(opts, &vt);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < 8; ++i) {
      const ViewUpdate u = ViewUpdate::Insert(Row({100 + i, 10}));
      ApplyAndAppend(&vt, store->get(), u);
      ASSERT_TRUE(direct.Insert(u.t1).ok());
    }
    EXPECT_EQ((*store)->seq(), 8u);
    EXPECT_EQ((*store)->segment_count(), 3);  // 3 + 3 + 2
  }
  // Reopen: full replay from the seed across all three segments.
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE((*store)->recovery().used_checkpoint);
  EXPECT_EQ((*store)->recovery().replayed, 8u);
  EXPECT_EQ((*store)->recovery().recovered_seq, 8u);
  EXPECT_TRUE(vt.database().SameAs(direct.database()));
}

TEST_F(CheckpointTest, StoreCheckpointCompactsAndBoundsReplay) {
  StoreOptions opts;
  opts.dir = dir_;
  opts.rotate_records = 2;
  ViewTranslator direct = MakeTranslator();
  {
    ViewTranslator vt = MakeTranslator();
    auto store = DurableStore::Open(opts, &vt);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < 5; ++i) {
      const ViewUpdate u = ViewUpdate::Insert(Row({100 + i, 20}));
      ApplyAndAppend(&vt, store->get(), u);
      ASSERT_TRUE(direct.Insert(u.t1).ok());
    }
    auto seq = (*store)->WriteCheckpoint(vt.database());
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(*seq, 5u);
    EXPECT_EQ((*store)->compaction_lag(), 0u);
    // Segments [0,2) and [2,4) are fully covered and must be gone; the
    // active segment [4,..) still holds record 4 and must survive.
    EXPECT_EQ((*store)->segments_compacted(), 2u);
    EXPECT_EQ((*store)->segment_count(), 1);
    EXPECT_FALSE(std::filesystem::exists(
        dir_ + "/journal-0000000000000000.log"));
    // Two more records after the checkpoint.
    for (uint32_t i = 5; i < 7; ++i) {
      const ViewUpdate u = ViewUpdate::Insert(Row({100 + i, 20}));
      ApplyAndAppend(&vt, store->get(), u);
      ASSERT_TRUE(direct.Insert(u.t1).ok());
    }
    EXPECT_EQ((*store)->compaction_lag(), 2u);
  }
  // Recovery: checkpoint at 5, replay only the 2-record suffix.
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().used_checkpoint);
  EXPECT_EQ((*store)->recovery().checkpoint_seq, 5u);
  EXPECT_EQ((*store)->recovery().replayed, 2u);
  EXPECT_EQ((*store)->seq(), 7u);
  EXPECT_TRUE(vt.database().SameAs(direct.database()));
}

TEST_F(CheckpointTest, StoreSkipsCorruptCheckpointAndFallsBack) {
  StoreOptions opts;
  opts.dir = dir_;
  opts.rotate_records = 2;
  ViewTranslator direct = MakeTranslator();
  std::string newest_ckpt;
  {
    ViewTranslator vt = MakeTranslator();
    auto store = DurableStore::Open(opts, &vt);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < 3; ++i) {
      const ViewUpdate u = ViewUpdate::Insert(Row({100 + i, 10}));
      ApplyAndAppend(&vt, store->get(), u);
      ASSERT_TRUE(direct.Insert(u.t1).ok());
    }
    ASSERT_TRUE((*store)->WriteCheckpoint(vt.database()).ok());  // seq 3
    const ViewUpdate u = ViewUpdate::Insert(Row({200, 20}));
    ApplyAndAppend(&vt, store->get(), u);
    ASSERT_TRUE(direct.Insert(u.t1).ok());
    auto seq = (*store)->WriteCheckpoint(vt.database());  // seq 4
    ASSERT_TRUE(seq.ok());
    char name[64];
    std::snprintf(name, sizeof(name), "checkpoint-%016llx.rvc",
                  static_cast<unsigned long long>(*seq));
    newest_ckpt = dir_ + "/" + name;
  }
  // Flip a bit in the newest checkpoint's body.
  {
    std::fstream f(newest_ckpt, std::ios::in | std::ios::out |
                                    std::ios::binary | std::ios::ate);
    ASSERT_TRUE(f.is_open());
    const std::streamoff size = f.tellg();
    f.seekp(size - 2);
    char c;
    f.seekg(size - 2);
    f.get(c);
    f.seekp(size - 2);
    f.put(static_cast<char>(c ^ 1));
  }
  // Recovery must warn, fall back to the seq-3 checkpoint, and replay the
  // journal suffix past it — landing on the same state regardless.
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().used_checkpoint);
  EXPECT_EQ((*store)->recovery().checkpoint_seq, 3u);
  ASSERT_FALSE((*store)->recovery().warnings.empty());
  EXPECT_NE((*store)->recovery().warnings[0].find("skipping checkpoint"),
            std::string::npos);
  EXPECT_EQ((*store)->seq(), 4u);
  EXPECT_TRUE(vt.database().SameAs(direct.database()));
  // The known-corrupt file was unlinked: thinning must only ever count
  // usable checkpoints toward keep_checkpoints.
  EXPECT_FALSE(std::filesystem::exists(newest_ckpt));
}

TEST_F(CheckpointTest, CompactionPreservesFallbackToOlderCheckpoint) {
  // Segment compaction is bounded by the *oldest retained* checkpoint,
  // so when the newest checkpoint turns out corrupt, recovery can fall
  // back to an older retained one and still find the journal suffix
  // (older_seq, newest_seq] on disk — a longer replay, not a "journal
  // gap" outage.
  StoreOptions opts;
  opts.dir = dir_;
  opts.rotate_records = 2;
  opts.keep_checkpoints = 2;
  ViewTranslator direct = MakeTranslator();
  std::string newest_ckpt;
  {
    ViewTranslator vt = MakeTranslator();
    auto store = DurableStore::Open(opts, &vt);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < 3; ++i) {
      const ViewUpdate u = ViewUpdate::Insert(Row({100 + i, 10}));
      ApplyAndAppend(&vt, store->get(), u);
      ASSERT_TRUE(direct.Insert(u.t1).ok());
    }
    ASSERT_TRUE((*store)->WriteCheckpoint(vt.database()).ok());  // seq 3
    for (uint32_t i = 3; i < 5; ++i) {
      const ViewUpdate u = ViewUpdate::Insert(Row({100 + i, 20}));
      ApplyAndAppend(&vt, store->get(), u);
      ASSERT_TRUE(direct.Insert(u.t1).ok());
    }
    auto seq = (*store)->WriteCheckpoint(vt.database());  // seq 5
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(*seq, 5u);
    char name[64];
    std::snprintf(name, sizeof(name), "checkpoint-%016llx.rvc",
                  static_cast<unsigned long long>(*seq));
    newest_ckpt = dir_ + "/" + name;
    // Records (3, 5] are not covered by the retained seq-3 checkpoint;
    // their segments must have survived the seq-5 compaction.
  }
  // Corrupt the newest checkpoint's body.
  {
    std::fstream f(newest_ckpt, std::ios::in | std::ios::out |
                                    std::ios::binary | std::ios::ate);
    ASSERT_TRUE(f.is_open());
    const std::streamoff size = f.tellg();
    char c;
    f.seekg(size - 2);
    f.get(c);
    f.seekp(size - 2);
    f.put(static_cast<char>(c ^ 1));
  }
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->recovery().used_checkpoint);
  EXPECT_EQ((*store)->recovery().checkpoint_seq, 3u);
  EXPECT_EQ((*store)->recovery().replayed, 2u);  // records 3 and 4
  EXPECT_EQ((*store)->seq(), 5u);
  EXPECT_TRUE(vt.database().SameAs(direct.database()));
}

TEST_F(CheckpointTest, WriteCheckpointIsIdempotentAtFixedSeq) {
  // Two checkpoints with no intervening updates must not duplicate the
  // seq in the retained-checkpoint list (thinning would then erase two
  // entries for one on-disk file, shrinking the real fallback depth).
  StoreOptions opts;
  opts.dir = dir_;
  opts.keep_checkpoints = 2;
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok());
  ApplyAndAppend(&vt, store->get(), ViewUpdate::Insert(Row({100, 10})));
  auto first = (*store)->WriteCheckpoint(vt.database());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  auto second = (*store)->WriteCheckpoint(vt.database());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1u);
  EXPECT_EQ((*store)->checkpoints_written(), 1u);
  // Advance and checkpoint twice more: thinning keeps the newest two
  // *distinct* checkpoints, so seq 1's file goes exactly when seq 3's
  // checkpoint lands.
  ApplyAndAppend(&vt, store->get(), ViewUpdate::Insert(Row({101, 10})));
  ASSERT_TRUE((*store)->WriteCheckpoint(vt.database()).ok());  // seq 2
  EXPECT_TRUE(std::filesystem::exists(
      dir_ + "/checkpoint-0000000000000001.rvc"));
  ApplyAndAppend(&vt, store->get(), ViewUpdate::Insert(Row({102, 10})));
  ASSERT_TRUE((*store)->WriteCheckpoint(vt.database()).ok());  // seq 3
  EXPECT_FALSE(std::filesystem::exists(
      dir_ + "/checkpoint-0000000000000001.rvc"));
  EXPECT_TRUE(std::filesystem::exists(
      dir_ + "/checkpoint-0000000000000002.rvc"));
  EXPECT_TRUE(std::filesystem::exists(
      dir_ + "/checkpoint-0000000000000003.rvc"));
}

TEST_F(CheckpointTest, StoreDetectsMidLogSegmentGap) {
  StoreOptions opts;
  opts.dir = dir_;
  opts.rotate_records = 2;
  {
    ViewTranslator vt = MakeTranslator();
    auto store = DurableStore::Open(opts, &vt);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < 6; ++i) {
      ApplyAndAppend(&vt, store->get(),
                     ViewUpdate::Insert(Row({100 + i, 10})));
    }
  }
  // Delete the middle segment [2,4): an un-checkpointed hole.
  ASSERT_EQ(::unlink((dir_ + "/journal-0000000000000002.log").c_str()), 0);
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, StoreDetectsMidLogTornSegment) {
  StoreOptions opts;
  opts.dir = dir_;
  opts.rotate_records = 2;
  {
    ViewTranslator vt = MakeTranslator();
    auto store = DurableStore::Open(opts, &vt);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < 5; ++i) {
      ApplyAndAppend(&vt, store->get(),
                     ViewUpdate::Insert(Row({100 + i, 10})));
    }
  }
  // Tear the tail of a *middle* segment: unrepairable without dropping
  // records that later segments build on.
  const std::string middle = dir_ + "/journal-0000000000000002.log";
  const auto size = std::filesystem::file_size(middle);
  ASSERT_EQ(::truncate(middle.c_str(), static_cast<off_t>(size - 4)), 0);
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
  EXPECT_NE(store.status().ToString().find("torn mid-log"),
            std::string::npos);
}

TEST_F(CheckpointTest, StoreRepairsTornTailOfFinalSegment) {
  StoreOptions opts;
  opts.dir = dir_;
  opts.rotate_records = 100;
  ViewTranslator direct = MakeTranslator();
  {
    ViewTranslator vt = MakeTranslator();
    auto store = DurableStore::Open(opts, &vt);
    ASSERT_TRUE(store.ok());
    for (uint32_t i = 0; i < 3; ++i) {
      const ViewUpdate u = ViewUpdate::Insert(Row({100 + i, 10}));
      ApplyAndAppend(&vt, store->get(), u);
      if (i < 2) {
        ASSERT_TRUE(direct.Insert(u.t1).ok());
      }
    }
  }
  const std::string seg = dir_ + "/journal-0000000000000000.log";
  const auto size = std::filesystem::file_size(seg);
  ASSERT_EQ(::truncate(seg.c_str(), static_cast<off_t>(size - 4)), 0);
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->recovery().replayed, 2u);  // record 2 torn away
  EXPECT_EQ((*store)->seq(), 2u);
  ASSERT_FALSE((*store)->recovery().warnings.empty());
  EXPECT_TRUE(vt.database().SameAs(direct.database()));
  // The store is appendable again, from the repaired boundary.
  ApplyAndAppend(&vt, store->get(), ViewUpdate::Insert(Row({300, 20})));
  EXPECT_EQ((*store)->seq(), 3u);
}

TEST_F(CheckpointTest, StoreSweepsStrayTmpFiles) {
  {
    std::ofstream tmp(dir_ + "/checkpoint-0000000000000005.rvc.tmp");
    tmp << "half-written garbage";
  }
  ViewTranslator vt = MakeTranslator();
  StoreOptions opts;
  opts.dir = dir_;
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(std::filesystem::exists(
      dir_ + "/checkpoint-0000000000000005.rvc.tmp"));
  ASSERT_FALSE((*store)->recovery().warnings.empty());
}

TEST_F(CheckpointTest, StoreThinsOldCheckpoints) {
  StoreOptions opts;
  opts.dir = dir_;
  opts.keep_checkpoints = 1;
  ViewTranslator vt = MakeTranslator();
  auto store = DurableStore::Open(opts, &vt);
  ASSERT_TRUE(store.ok());
  ApplyAndAppend(&vt, store->get(), ViewUpdate::Insert(Row({100, 10})));
  ASSERT_TRUE((*store)->WriteCheckpoint(vt.database()).ok());  // seq 1
  ApplyAndAppend(&vt, store->get(), ViewUpdate::Insert(Row({101, 10})));
  ASSERT_TRUE((*store)->WriteCheckpoint(vt.database()).ok());  // seq 2
  EXPECT_FALSE(std::filesystem::exists(
      dir_ + "/checkpoint-0000000000000001.rvc"));
  EXPECT_TRUE(std::filesystem::exists(
      dir_ + "/checkpoint-0000000000000002.rvc"));
}

}  // namespace
}  // namespace relview
