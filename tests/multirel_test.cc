// Tests for the multirelation extension (paper Section 6, direction (3)):
// views as projections of lossless joins, translated through the
// universal-relation bridge.

#include "multirel/multirel.h"

#include <gtest/gtest.h>

namespace relview {
namespace {

Tuple Row(std::initializer_list<uint32_t> consts) {
  std::vector<Value> vals;
  for (uint32_t c : consts) vals.push_back(Value::Const(c));
  return Tuple(std::move(vals));
}

class MultiRelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Universe: Emp Dept Mgr; base relations ED(Emp, Dept), DM(Dept, Mgr).
    // Lossless because Dept -> Mgr makes the shared Dept a key of DM.
    Universe u = Universe::Parse("Emp Dept Mgr").value();
    DependencySet sigma;
    sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
    auto schema = MultiSchema::Create(
        u, sigma, {"ED", "DM"},
        {u.SetOf("Emp Dept"), u.SetOf("Dept Mgr")});
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::make_unique<MultiSchema>(std::move(*schema));

    MultiDatabase db(schema_.get());
    Relation ed(schema_->component(0));
    ed.AddRow(Row({1, 10}));
    ed.AddRow(Row({2, 10}));
    ed.AddRow(Row({3, 20}));
    Relation dm(schema_->component(1));
    dm.AddRow(Row({10, 100}));
    dm.AddRow(Row({20, 200}));
    ASSERT_TRUE(db.SetInstance(0, std::move(ed)).ok());
    ASSERT_TRUE(db.SetInstance(1, std::move(dm)).ok());

    auto vt = MultiRelViewTranslator::Create(
        schema_.get(), schema_->universe().SetOf("Emp Dept"),
        schema_->universe().SetOf("Dept Mgr"));
    ASSERT_TRUE(vt.ok()) << vt.status().ToString();
    vt_ = std::make_unique<MultiRelViewTranslator>(std::move(*vt));
    ASSERT_TRUE(vt_->Bind(std::move(db)).ok());
  }
  std::unique_ptr<MultiSchema> schema_;
  std::unique_ptr<MultiRelViewTranslator> vt_;
};

TEST_F(MultiRelTest, CreateRejectsLossyDecomposition) {
  // Without any FDs, {ED, DM} is a lossy decomposition of EDM.
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet none;
  auto schema = MultiSchema::Create(
      u, none, {"ED", "DM"}, {u.SetOf("Emp Dept"), u.SetOf("Dept Mgr")});
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(MultiRelTest, CreateRejectsNonCoveringComponents) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Dept -> Mgr");
  auto schema =
      MultiSchema::Create(u, sigma, {"ED"}, {u.SetOf("Emp Dept")});
  EXPECT_FALSE(schema.ok());
}

TEST_F(MultiRelTest, BindRejectsDanglingTuples) {
  MultiDatabase db(schema_.get());
  Relation ed(schema_->component(0));
  ed.AddRow(Row({1, 10}));
  ed.AddRow(Row({9, 90}));  // dept 90 has no DM row: dangling
  Relation dm(schema_->component(1));
  dm.AddRow(Row({10, 100}));
  ASSERT_TRUE(db.SetInstance(0, std::move(ed)).ok());
  ASSERT_TRUE(db.SetInstance(1, std::move(dm)).ok());
  auto vt = MultiRelViewTranslator::Create(
      schema_.get(), schema_->universe().SetOf("Emp Dept"),
      schema_->universe().SetOf("Dept Mgr"));
  ASSERT_TRUE(vt.ok());
  EXPECT_FALSE(vt->Bind(std::move(db)).ok());
}

TEST_F(MultiRelTest, ViewIsProjectionOfJoin) {
  auto view = vt_->ViewInstance();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 3);
  EXPECT_TRUE(view->ContainsRow(Row({1, 10})));
}

TEST_F(MultiRelTest, InsertPropagatesToBaseRelations) {
  ASSERT_TRUE(vt_->Insert(Row({4, 10})).ok());
  // The ED base relation gains the new pair; DM is untouched.
  EXPECT_TRUE(vt_->database().instance(0).ContainsRow(Row({4, 10})));
  EXPECT_EQ(vt_->database().instance(1).size(), 2);
  EXPECT_TRUE(vt_->database().CheckGloballyConsistent().ok());
}

TEST_F(MultiRelTest, UntranslatableInsertLeavesBaseRelationsAlone) {
  const Relation ed_before = vt_->database().instance(0);
  Status st = vt_->Insert(Row({4, 90}));  // unknown dept
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  EXPECT_TRUE(vt_->database().instance(0).SameAs(ed_before));
}

TEST_F(MultiRelTest, DeletePropagates) {
  ASSERT_TRUE(vt_->Delete(Row({1, 10})).ok());
  EXPECT_FALSE(vt_->database().instance(0).ContainsRow(Row({1, 10})));
  // Dept 10's manager row survives (emp 2 still there).
  EXPECT_TRUE(vt_->database().instance(1).ContainsRow(Row({10, 100})));
}

TEST_F(MultiRelTest, DeleteLastEmployeeOfDeptRejected) {
  Status st = vt_->Delete(Row({3, 20}));
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  EXPECT_TRUE(vt_->database().instance(0).ContainsRow(Row({3, 20})));
}

TEST_F(MultiRelTest, ThreeWayDecomposition) {
  // U = A B C D with A -> B, B -> C, C -> D; components AB, BC, CD.
  Universe u = Universe::Parse("A B C D").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "A -> B; B -> C; C -> D");
  auto schema = MultiSchema::Create(
      u, sigma, {"AB", "BC", "CD"},
      {u.SetOf("A B"), u.SetOf("B C"), u.SetOf("C D")});
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  MultiDatabase db(&*schema);
  Relation ab(schema->component(0));
  ab.AddRow(Row({1, 5}));
  ab.AddRow(Row({2, 5}));
  Relation bc(schema->component(1));
  bc.AddRow(Row({5, 7}));
  Relation cd(schema->component(2));
  cd.AddRow(Row({7, 9}));
  ASSERT_TRUE(db.SetInstance(0, std::move(ab)).ok());
  ASSERT_TRUE(db.SetInstance(1, std::move(bc)).ok());
  ASSERT_TRUE(db.SetInstance(2, std::move(cd)).ok());

  auto vt = MultiRelViewTranslator::Create(&*schema, u.SetOf("A B C"),
                                           u.SetOf("C D"));
  ASSERT_TRUE(vt.ok()) << vt.status().ToString();
  ASSERT_TRUE(vt->Bind(std::move(db)).ok());
  // Insert (3, 5, 7): B=5 and C=7 exist; only AB gains a row.
  ASSERT_TRUE(vt->Insert(Row({3, 5, 7})).ok());
  EXPECT_TRUE(vt->database().instance(0).ContainsRow(Row({3, 5})));
  EXPECT_EQ(vt->database().instance(1).size(), 1);
  EXPECT_EQ(vt->database().instance(2).size(), 1);
}

}  // namespace
}  // namespace relview
