// Randomized property suite for the multirelation extension: random
// BCNF-decomposed schemas with random globally consistent databases;
// under any accepted insert/delete sequence the base tables remain
// globally consistent, the complement projection of the join is constant,
// and rejected updates leave every base table untouched.

#include <gtest/gtest.h>

#include "deps/keys.h"
#include "deps/satisfies.h"
#include "multirel/multirel.h"
#include "util/rng.h"

namespace relview {
namespace {

class MultiRelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiRelPropertyTest, GlobalConsistencyAndConstantComplement) {
  Rng rng(7100 + GetParam());
  const int width = 4;
  Universe u = Universe::Anonymous(width);
  // Chain FDs guarantee a key at A0 and a nontrivial decomposition.
  FDSet fds;
  for (int i = 0; i + 1 < width; ++i) {
    fds.Add(AttrSet::Single(static_cast<AttrId>(i)),
            static_cast<AttrId>(i + 1));
  }
  DependencySet sigma;
  sigma.fds = fds;
  std::vector<AttrSet> parts = DecomposeBCNF(u.All(), fds);
  std::vector<std::string> names;
  for (size_t i = 0; i < parts.size(); ++i) {
    names.push_back("R" + std::to_string(i));
  }
  auto schema = MultiSchema::Create(u, sigma, names, parts);
  ASSERT_TRUE(schema.ok());

  // Universal relation with a chain-function structure.
  Relation universal(u.All());
  const int rows = 4 + static_cast<int>(rng.Below(8));
  for (int i = 0; i < rows; ++i) {
    Tuple t(width);
    uint32_t v = static_cast<uint32_t>(i);
    for (int c = 0; c < width; ++c) {
      t[c] = Value::Const(static_cast<uint32_t>(c) * 1000 + v);
      v = v % std::max<uint32_t>(2, 8 >> c);
    }
    universal.AddRow(std::move(t));
  }
  ASSERT_TRUE(SatisfiesAll(universal, fds));
  MultiDatabase db(&*schema);
  db.DecomposeFrom(universal);

  const AttrSet x = u.All() - AttrSet::Single(static_cast<AttrId>(width - 1));
  const AttrSet y = AttrSet{static_cast<AttrId>(width - 2),
                            static_cast<AttrId>(width - 1)};
  auto vt = MultiRelViewTranslator::Create(&*schema, x, y);
  ASSERT_TRUE(vt.ok());
  ASSERT_TRUE(vt->Bind(std::move(db)).ok());

  const Relation complement0 = vt->database().Join().Project(y);
  int applied = 0;
  for (int op = 0; op < 20; ++op) {
    // Random view tuple sharing an existing row's tail.
    auto view = vt->ViewInstance();
    ASSERT_TRUE(view.ok());
    if (view->empty()) break;
    const Tuple& base =
        view->row(static_cast<int>(rng.Below(view->size())));
    Tuple t = base;
    if (rng.Chance(0.7)) {
      t[0] = Value::Const(0x00FFFF00u + static_cast<uint32_t>(rng.Below(6)));
    }
    // Snapshot for atomicity check.
    std::vector<Relation> before;
    for (int i = 0; i < schema->size(); ++i) {
      before.push_back(vt->database().instance(i));
    }
    Status st = rng.Chance(0.6) ? vt->Insert(t) : vt->Delete(t);
    if (st.ok()) {
      ++applied;
    } else {
      for (int i = 0; i < schema->size(); ++i) {
        EXPECT_TRUE(vt->database().instance(i).SameAs(before[i]))
            << "rejected op mutated base table " << i;
      }
    }
    EXPECT_TRUE(vt->database().CheckGloballyConsistent().ok());
    EXPECT_TRUE(vt->database().Join().Project(y).SameAs(complement0));
  }
  EXPECT_GT(applied, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiRelPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace relview
