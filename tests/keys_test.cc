// Tests for candidate keys, normal forms and the BCNF decomposition —
// including the synergy checks: decompositions are lossless (tableau
// chase) and usable as MultiSchemas.

#include "deps/keys.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "chase/implication.h"
#include "multirel/multirel.h"
#include "util/rng.h"

namespace relview {
namespace {

TEST(CandidateKeysTest, ChainHasSingleKey) {
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> B; B -> C");
  auto keys = CandidateKeys(u.All(), fds);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 1u);
  EXPECT_EQ((*keys)[0], u.SetOf("A"));
}

TEST(CandidateKeysTest, CycleHasMultipleKeys) {
  // A -> B, B -> A: both {A,...} and {B,...} patterns.
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> B; B -> A");
  auto keys = CandidateKeys(u.All(), fds);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);
  for (const AttrSet& k : *keys) {
    EXPECT_TRUE(k.Contains(u["C"]));
    EXPECT_EQ(k.Count(), 2);
  }
}

TEST(CandidateKeysTest, NoFdsMeansAllAttributes) {
  Universe u = Universe::Parse("A B").value();
  auto keys = CandidateKeys(u.All(), FDSet());
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 1u);
  EXPECT_EQ((*keys)[0], u.All());
}

TEST(CandidateKeysTest, KeysAreMinimalAndAreKeys) {
  Universe u = Universe::Parse("A B C D E").value();
  auto fds = *FDSet::Parse(u, "A B -> C; C -> D; D E -> A");
  auto keys = CandidateKeys(u.All(), fds);
  ASSERT_TRUE(keys.ok());
  EXPECT_FALSE(keys->empty());
  for (const AttrSet& k : *keys) {
    EXPECT_TRUE(fds.IsSuperkey(k, u.All()));
    for (int a = k.First(); a >= 0; a = k.Next(a)) {
      AttrSet smaller = k;
      smaller.Remove(static_cast<AttrId>(a));
      EXPECT_FALSE(fds.IsSuperkey(smaller, u.All()));
    }
  }
}

TEST(NormalFormTest, BCNFDetectsViolation) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  auto fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  // Dept -> Mgr with Dept not a superkey of EDM: not BCNF.
  EXPECT_FALSE(IsBCNF(u.All(), fds));
  // The ED projection is fine (Emp is its key; no other FD applies).
  EXPECT_TRUE(IsBCNF(u.SetOf("Emp Dept"), fds));
  EXPECT_TRUE(IsBCNF(u.SetOf("Dept Mgr"), fds));
}

TEST(NormalFormTest, ThreeNFAllowsPrimeDependents) {
  // Classic: ST -> L, L -> S (street/city style): 3NF but not BCNF.
  Universe u = Universe::Parse("S T L").value();
  auto fds = *FDSet::Parse(u, "S T -> L; L -> S");
  EXPECT_FALSE(IsBCNF(u.All(), fds));
  auto three = Is3NF(u.All(), fds);
  ASSERT_TRUE(three.ok());
  EXPECT_TRUE(*three);
}

TEST(NormalFormTest, NonPrimeTransitiveBreaks3NF) {
  Universe u = Universe::Parse("A B C").value();
  auto fds = *FDSet::Parse(u, "A -> B; B -> C");
  auto three = Is3NF(u.All(), fds);
  ASSERT_TRUE(three.ok());
  EXPECT_FALSE(*three);
}

TEST(DecomposeBCNFTest, EmpDeptMgrSplits) {
  Universe u = Universe::Parse("Emp Dept Mgr").value();
  auto fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr");
  std::vector<AttrSet> parts = DecomposeBCNF(u.All(), fds);
  ASSERT_EQ(parts.size(), 2u);
  for (const AttrSet& p : parts) EXPECT_TRUE(IsBCNF(p, fds));
  // Lossless (tableau chase).
  EXPECT_TRUE(ImpliesJD(u.All(), fds, {}, JD{parts}));
}

TEST(DecomposeBCNFTest, BCNFInputIsUntouched) {
  Universe u = Universe::Parse("A B").value();
  auto fds = *FDSet::Parse(u, "A -> B");
  std::vector<AttrSet> parts = DecomposeBCNF(u.All(), fds);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], u.All());
}

TEST(DecomposeBCNFTest, RandomizedLosslessAndBCNF) {
  Rng rng(99119);
  for (int trial = 0; trial < 25; ++trial) {
    const int width = 4 + static_cast<int>(rng.Below(3));
    Universe u = Universe::Anonymous(width);
    FDSet fds;
    const int nfd = 1 + static_cast<int>(rng.Below(4));
    for (int i = 0; i < nfd; ++i) {
      AttrSet lhs;
      for (int c = 0; c < width; ++c) {
        if (rng.Chance(0.3)) lhs.Add(static_cast<AttrId>(c));
      }
      fds.Add(lhs, static_cast<AttrId>(rng.Below(width)));
    }
    std::vector<AttrSet> parts = DecomposeBCNF(u.All(), fds);
    ASSERT_FALSE(parts.empty());
    AttrSet covered;
    for (const AttrSet& p : parts) {
      covered |= p;
      EXPECT_TRUE(IsBCNF(p, fds)) << fds.ToString();
    }
    EXPECT_EQ(covered, u.All());
    EXPECT_TRUE(ImpliesJD(u.All(), fds, {}, JD{parts}))
        << "lossy decomposition for " << fds.ToString();
  }
}

TEST(DecomposeBCNFTest, FeedsMultiSchemaDirectly) {
  // The decomposition is exactly what MultiSchema::Create needs.
  Universe u = Universe::Parse("Emp Dept Mgr Loc").value();
  DependencySet sigma;
  sigma.fds = *FDSet::Parse(u, "Emp -> Dept; Dept -> Mgr; Mgr -> Loc");
  std::vector<AttrSet> parts = DecomposeBCNF(u.All(), sigma.fds);
  std::vector<std::string> names;
  for (size_t i = 0; i < parts.size(); ++i) {
    names.push_back("R" + std::to_string(i));
  }
  auto schema = MultiSchema::Create(u, sigma, names, parts);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
}

}  // namespace
}  // namespace relview
