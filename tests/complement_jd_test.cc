// Theorem 1 with join dependencies: the chase-based complementarity test
// against the brute-force definition when Sigma contains JDs/MVDs — the
// case the FD fast path cannot cover.

#include <gtest/gtest.h>

#include <map>

#include "deps/instance_generator.h"
#include "deps/satisfies.h"
#include "util/rng.h"
#include "view/complement.h"

namespace relview {
namespace {

bool BruteComplementary(const AttrSet& universe, const DependencySet& sigma,
                        const AttrSet& x, const AttrSet& y) {
  bool complementary = true;
  std::map<std::pair<std::vector<Tuple>, std::vector<Tuple>>, Relation> seen;
  EnumerateRelations(universe, 2, [&](const Relation& r) {
    if (!complementary) return;
    if (!SatisfiesAll(r, sigma.fds)) return;
    for (const JD& jd : sigma.jds) {
      if (!SatisfiesJD(r, jd)) return;
    }
    auto key = std::make_pair(r.Project(x).rows(), r.Project(y).rows());
    auto [it, inserted] = seen.emplace(key, r);
    if (!inserted && !it->second.SameAs(r)) complementary = false;
  });
  return complementary;
}

TEST(ComplementJDTest, MVDAloneMakesDisjointPartsComplementary) {
  // Sigma = { *[AB, AC] }: A ->-> B | C. X = AB, Y = AC share only A,
  // which is a key of neither side — yet the MVD makes them complementary
  // (reconstruction by join).
  Universe u = Universe::Parse("A B C").value();
  DependencySet sigma;
  sigma.jds.push_back(JD::MVD(u.SetOf("A B"), u.SetOf("A C")));
  EXPECT_TRUE(
      AreComplementary(u.All(), sigma, u.SetOf("A B"), u.SetOf("A C")));
  EXPECT_TRUE(BruteComplementary(u.All(), sigma, u.SetOf("A B"),
                                 u.SetOf("A C")));
  // Without the MVD both tests refuse.
  DependencySet none;
  EXPECT_FALSE(
      AreComplementary(u.All(), none, u.SetOf("A B"), u.SetOf("A C")));
  EXPECT_FALSE(BruteComplementary(u.All(), none, u.SetOf("A B"),
                                  u.SetOf("A C")));
}

TEST(ComplementJDTest, TernaryJDDoesNotMakeBinaryPairComplementary) {
  // A genuinely 3-ary JD *[AB, BC, CA] does not imply the binary MVD
  // *[AB, BC] in general.
  Universe u = Universe::Parse("A B C").value();
  DependencySet sigma;
  sigma.jds.push_back(JD({u.SetOf("A B"), u.SetOf("B C"), u.SetOf("C A")}));
  const bool theorem =
      AreComplementary(u.All(), sigma, u.SetOf("A B"), u.SetOf("B C"));
  const bool brute =
      BruteComplementary(u.All(), sigma, u.SetOf("A B"), u.SetOf("B C"));
  EXPECT_EQ(theorem, brute);
  EXPECT_FALSE(theorem);
}

class ComplementJDPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ComplementJDPropertyTest, ChaseMatchesDefinitionWithRandomJDs) {
  Rng rng(6200 + GetParam());
  Universe u = Universe::Anonymous(3);
  const AttrSet universe = u.All();
  for (int trial = 0; trial < 12; ++trial) {
    DependencySet sigma;
    // Zero or one random FD.
    if (rng.Chance(0.5)) {
      AttrSet lhs;
      universe.ForEach([&](AttrId a) {
        if (rng.Chance(0.4)) lhs.Add(a);
      });
      sigma.fds.Add(lhs, static_cast<AttrId>(rng.Below(3)));
    }
    // One random MVD covering the universe.
    AttrSet left, right;
    universe.ForEach([&](AttrId a) {
      const uint64_t where = rng.Below(3);
      if (where == 0) {
        left.Add(a);
      } else if (where == 1) {
        right.Add(a);
      } else {
        left.Add(a);
        right.Add(a);
      }
    });
    if (left.Empty() || right.Empty() || (left | right) != universe) {
      continue;
    }
    sigma.jds.push_back(JD::MVD(left, right));

    AttrSet x, y;
    universe.ForEach([&](AttrId a) {
      if (rng.Chance(0.6)) x.Add(a);
      if (rng.Chance(0.6)) y.Add(a);
    });
    if (x.Empty() || y.Empty()) continue;

    const bool theorem = AreComplementary(universe, sigma, x, y);
    const bool brute = BruteComplementary(universe, sigma, x, y);
    EXPECT_EQ(theorem, brute)
        << "sigma=" << sigma.ToString() << " X=" << x.ToString()
        << " Y=" << y.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplementJDPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace relview
