// Randomized property suite for the FD machinery:
//   * MinimalCover is equivalent to the original set and nonredundant;
//   * Closure is monotone, extensive and idempotent (a closure operator);
//   * ShrinkToKey returns a minimal superkey;
//   * ProjectExact agrees with direct closure checks on the projection
//     attributes.

#include <gtest/gtest.h>

#include "deps/fd_set.h"
#include "util/rng.h"

namespace relview {
namespace {

FDSet RandomFds(int width, int count, uint64_t seed) {
  Rng rng(seed);
  FDSet fds;
  for (int i = 0; i < count; ++i) {
    AttrSet lhs;
    for (int c = 0; c < width; ++c) {
      if (rng.Chance(0.35)) lhs.Add(static_cast<AttrId>(c));
    }
    fds.Add(lhs, static_cast<AttrId>(rng.Below(width)));
  }
  return fds;
}

AttrSet RandomSubset(int width, Rng* rng, double p = 0.5) {
  AttrSet s;
  for (int c = 0; c < width; ++c) {
    if (rng->Chance(p)) s.Add(static_cast<AttrId>(c));
  }
  return s;
}

class FDPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FDPropertyTest, ClosureIsAClosureOperator) {
  const int width = 6;
  Rng rng(100 + GetParam());
  FDSet fds = RandomFds(width, 5, 500 + GetParam());
  const AttrSet a = RandomSubset(width, &rng);
  const AttrSet b = RandomSubset(width, &rng);
  // Extensive.
  EXPECT_TRUE(a.SubsetOf(fds.Closure(a)));
  // Idempotent.
  EXPECT_EQ(fds.Closure(fds.Closure(a)), fds.Closure(a));
  // Monotone.
  if (a.SubsetOf(b)) {
    EXPECT_TRUE(fds.Closure(a).SubsetOf(fds.Closure(b)));
  }
  EXPECT_TRUE(fds.Closure(a).SubsetOf(fds.Closure(a | b)));
}

TEST_P(FDPropertyTest, MinimalCoverIsEquivalentAndNonredundant) {
  const int width = 6;
  FDSet fds = RandomFds(width, 7, 700 + GetParam());
  FDSet cover = fds.MinimalCover();
  // Equivalent: identical closures on all singletons and a few random
  // sets.
  Rng rng(900 + GetParam());
  for (int i = 0; i < 10; ++i) {
    const AttrSet s = RandomSubset(width, &rng);
    EXPECT_EQ(fds.Closure(s), cover.Closure(s))
        << "fds=" << fds.ToString() << " cover=" << cover.ToString();
  }
  // Nonredundant: removing any FD changes some closure.
  for (size_t i = 0; i < cover.fds().size(); ++i) {
    FDSet rest;
    for (size_t j = 0; j < cover.fds().size(); ++j) {
      if (j != i) rest.Add(cover.fds()[j]);
    }
    EXPECT_FALSE(rest.Implies(cover.fds()[i]))
        << "cover=" << cover.ToString();
  }
  // Left-reduced: no lhs attribute removable.
  for (const FD& fd : cover.fds()) {
    for (int a = fd.lhs.First(); a >= 0; a = fd.lhs.Next(a)) {
      AttrSet smaller = fd.lhs;
      smaller.Remove(static_cast<AttrId>(a));
      EXPECT_FALSE(cover.Implies(FD(smaller, fd.rhs)))
          << "cover=" << cover.ToString();
    }
  }
}

TEST_P(FDPropertyTest, ShrinkToKeyIsMinimalSuperkey) {
  const int width = 6;
  FDSet fds = RandomFds(width, 5, 1100 + GetParam());
  const AttrSet universe = AttrSet::FirstN(width);
  const AttrSet key = fds.ShrinkToKey(universe, universe);
  EXPECT_TRUE(fds.IsSuperkey(key, universe));
  for (int a = key.First(); a >= 0; a = key.Next(a)) {
    AttrSet smaller = key;
    smaller.Remove(static_cast<AttrId>(a));
    EXPECT_FALSE(fds.IsSuperkey(smaller, universe));
  }
}

TEST_P(FDPropertyTest, ProjectExactMatchesClosureOnProjection) {
  const int width = 5;
  Rng rng(1300 + GetParam());
  FDSet fds = RandomFds(width, 5, 1300 + GetParam());
  const AttrSet x = RandomSubset(width, &rng, 0.6);
  if (x.Empty()) return;
  FDSet proj = fds.ProjectExact(x);
  // For every subset S of x and attribute A in x: proj |= S -> A iff
  // fds |= S -> A.
  const std::vector<AttrId> members = x.ToVector();
  for (uint32_t mask = 0; mask < (1u << members.size()); ++mask) {
    AttrSet s;
    for (size_t i = 0; i < members.size(); ++i) {
      if (mask & (1u << i)) s.Add(members[i]);
    }
    const AttrSet lhs_closure_full = fds.Closure(s) & x;
    const AttrSet lhs_closure_proj = proj.Closure(s) & x;
    EXPECT_EQ(lhs_closure_full, lhs_closure_proj)
        << "fds=" << fds.ToString() << " X=" << x.ToString()
        << " S=" << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FDPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace relview
