file(REMOVE_RECURSE
  "CMakeFiles/framework_property_test.dir/framework_property_test.cc.o"
  "CMakeFiles/framework_property_test.dir/framework_property_test.cc.o.d"
  "framework_property_test"
  "framework_property_test.pdb"
  "framework_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
