file(REMOVE_RECURSE
  "CMakeFiles/complement_jd_test.dir/complement_jd_test.cc.o"
  "CMakeFiles/complement_jd_test.dir/complement_jd_test.cc.o.d"
  "complement_jd_test"
  "complement_jd_test.pdb"
  "complement_jd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complement_jd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
