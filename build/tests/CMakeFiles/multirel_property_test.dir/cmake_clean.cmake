file(REMOVE_RECURSE
  "CMakeFiles/multirel_property_test.dir/multirel_property_test.cc.o"
  "CMakeFiles/multirel_property_test.dir/multirel_property_test.cc.o.d"
  "multirel_property_test"
  "multirel_property_test.pdb"
  "multirel_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
