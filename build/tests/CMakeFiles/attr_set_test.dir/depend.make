# Empty dependencies file for attr_set_test.
# This may be replaced when dependencies are built.
