# Empty dependencies file for test1_test.
# This may be replaced when dependencies are built.
