file(REMOVE_RECURSE
  "CMakeFiles/test1_test.dir/test1_test.cc.o"
  "CMakeFiles/test1_test.dir/test1_test.cc.o.d"
  "test1_test"
  "test1_test.pdb"
  "test1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
