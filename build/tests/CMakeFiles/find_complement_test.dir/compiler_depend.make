# Empty compiler generated dependencies file for find_complement_test.
# This may be replaced when dependencies are built.
