file(REMOVE_RECURSE
  "CMakeFiles/find_complement_test.dir/find_complement_test.cc.o"
  "CMakeFiles/find_complement_test.dir/find_complement_test.cc.o.d"
  "find_complement_test"
  "find_complement_test.pdb"
  "find_complement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_complement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
