file(REMOVE_RECURSE
  "CMakeFiles/selection_view_test.dir/selection_view_test.cc.o"
  "CMakeFiles/selection_view_test.dir/selection_view_test.cc.o.d"
  "selection_view_test"
  "selection_view_test.pdb"
  "selection_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
