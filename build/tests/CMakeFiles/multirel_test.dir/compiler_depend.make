# Empty compiler generated dependencies file for multirel_test.
# This may be replaced when dependencies are built.
