file(REMOVE_RECURSE
  "CMakeFiles/multirel_test.dir/multirel_test.cc.o"
  "CMakeFiles/multirel_test.dir/multirel_test.cc.o.d"
  "multirel_test"
  "multirel_test.pdb"
  "multirel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
