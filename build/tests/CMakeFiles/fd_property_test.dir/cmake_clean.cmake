file(REMOVE_RECURSE
  "CMakeFiles/fd_property_test.dir/fd_property_test.cc.o"
  "CMakeFiles/fd_property_test.dir/fd_property_test.cc.o.d"
  "fd_property_test"
  "fd_property_test.pdb"
  "fd_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
