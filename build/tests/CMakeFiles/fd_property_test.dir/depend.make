# Empty dependencies file for fd_property_test.
# This may be replaced when dependencies are built.
