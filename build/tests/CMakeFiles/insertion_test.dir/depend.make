# Empty dependencies file for insertion_test.
# This may be replaced when dependencies are built.
