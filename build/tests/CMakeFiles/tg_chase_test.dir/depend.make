# Empty dependencies file for tg_chase_test.
# This may be replaced when dependencies are built.
