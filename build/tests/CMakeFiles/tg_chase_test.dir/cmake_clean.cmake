file(REMOVE_RECURSE
  "CMakeFiles/tg_chase_test.dir/tg_chase_test.cc.o"
  "CMakeFiles/tg_chase_test.dir/tg_chase_test.cc.o.d"
  "tg_chase_test"
  "tg_chase_test.pdb"
  "tg_chase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
