# Empty dependencies file for good_complement_brute_test.
# This may be replaced when dependencies are built.
