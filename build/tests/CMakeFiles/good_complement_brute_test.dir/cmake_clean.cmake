file(REMOVE_RECURSE
  "CMakeFiles/good_complement_brute_test.dir/good_complement_brute_test.cc.o"
  "CMakeFiles/good_complement_brute_test.dir/good_complement_brute_test.cc.o.d"
  "good_complement_brute_test"
  "good_complement_brute_test.pdb"
  "good_complement_brute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/good_complement_brute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
