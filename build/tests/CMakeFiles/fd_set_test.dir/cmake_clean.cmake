file(REMOVE_RECURSE
  "CMakeFiles/fd_set_test.dir/fd_set_test.cc.o"
  "CMakeFiles/fd_set_test.dir/fd_set_test.cc.o.d"
  "fd_set_test"
  "fd_set_test.pdb"
  "fd_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
