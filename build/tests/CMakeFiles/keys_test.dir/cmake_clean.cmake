file(REMOVE_RECURSE
  "CMakeFiles/keys_test.dir/keys_test.cc.o"
  "CMakeFiles/keys_test.dir/keys_test.cc.o.d"
  "keys_test"
  "keys_test.pdb"
  "keys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
