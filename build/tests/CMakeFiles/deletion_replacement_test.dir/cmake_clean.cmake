file(REMOVE_RECURSE
  "CMakeFiles/deletion_replacement_test.dir/deletion_replacement_test.cc.o"
  "CMakeFiles/deletion_replacement_test.dir/deletion_replacement_test.cc.o.d"
  "deletion_replacement_test"
  "deletion_replacement_test.pdb"
  "deletion_replacement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deletion_replacement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
