# Empty compiler generated dependencies file for test2_test.
# This may be replaced when dependencies are built.
