file(REMOVE_RECURSE
  "CMakeFiles/test2_test.dir/test2_test.cc.o"
  "CMakeFiles/test2_test.dir/test2_test.cc.o.d"
  "test2_test"
  "test2_test.pdb"
  "test2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
