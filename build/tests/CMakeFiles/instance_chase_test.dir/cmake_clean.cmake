file(REMOVE_RECURSE
  "CMakeFiles/instance_chase_test.dir/instance_chase_test.cc.o"
  "CMakeFiles/instance_chase_test.dir/instance_chase_test.cc.o.d"
  "instance_chase_test"
  "instance_chase_test.pdb"
  "instance_chase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
