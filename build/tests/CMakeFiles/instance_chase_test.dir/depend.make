# Empty dependencies file for instance_chase_test.
# This may be replaced when dependencies are built.
