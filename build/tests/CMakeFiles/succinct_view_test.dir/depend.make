# Empty dependencies file for succinct_view_test.
# This may be replaced when dependencies are built.
