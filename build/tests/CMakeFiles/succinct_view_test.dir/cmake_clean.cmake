file(REMOVE_RECURSE
  "CMakeFiles/succinct_view_test.dir/succinct_view_test.cc.o"
  "CMakeFiles/succinct_view_test.dir/succinct_view_test.cc.o.d"
  "succinct_view_test"
  "succinct_view_test.pdb"
  "succinct_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
