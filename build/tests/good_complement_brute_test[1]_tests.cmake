add_test([=[GoodComplementBruteTest.CheckerFlagsEveryTwoTupleCounterexample]=]  /root/repo/build/tests/good_complement_brute_test [==[--gtest_filter=GoodComplementBruteTest.CheckerFlagsEveryTwoTupleCounterexample]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GoodComplementBruteTest.CheckerFlagsEveryTwoTupleCounterexample]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  good_complement_brute_test_TESTS GoodComplementBruteTest.CheckerFlagsEveryTwoTupleCounterexample)
