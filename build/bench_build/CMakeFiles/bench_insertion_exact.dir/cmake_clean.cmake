file(REMOVE_RECURSE
  "../bench/bench_insertion_exact"
  "../bench/bench_insertion_exact.pdb"
  "CMakeFiles/bench_insertion_exact.dir/bench_insertion_exact.cc.o"
  "CMakeFiles/bench_insertion_exact.dir/bench_insertion_exact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insertion_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
