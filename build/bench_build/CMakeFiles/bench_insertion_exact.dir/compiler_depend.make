# Empty compiler generated dependencies file for bench_insertion_exact.
# This may be replaced when dependencies are built.
