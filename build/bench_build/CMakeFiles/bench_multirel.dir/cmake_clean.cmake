file(REMOVE_RECURSE
  "../bench/bench_multirel"
  "../bench/bench_multirel.pdb"
  "CMakeFiles/bench_multirel.dir/bench_multirel.cc.o"
  "CMakeFiles/bench_multirel.dir/bench_multirel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multirel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
