# Empty compiler generated dependencies file for bench_multirel.
# This may be replaced when dependencies are built.
