file(REMOVE_RECURSE
  "../bench/bench_complement"
  "../bench/bench_complement.pdb"
  "CMakeFiles/bench_complement.dir/bench_complement.cc.o"
  "CMakeFiles/bench_complement.dir/bench_complement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
