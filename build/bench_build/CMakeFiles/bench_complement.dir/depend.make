# Empty dependencies file for bench_complement.
# This may be replaced when dependencies are built.
