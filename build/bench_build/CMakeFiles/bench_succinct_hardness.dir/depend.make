# Empty dependencies file for bench_succinct_hardness.
# This may be replaced when dependencies are built.
