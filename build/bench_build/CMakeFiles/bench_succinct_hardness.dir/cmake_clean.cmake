file(REMOVE_RECURSE
  "../bench/bench_succinct_hardness"
  "../bench/bench_succinct_hardness.pdb"
  "CMakeFiles/bench_succinct_hardness.dir/bench_succinct_hardness.cc.o"
  "CMakeFiles/bench_succinct_hardness.dir/bench_succinct_hardness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_succinct_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
