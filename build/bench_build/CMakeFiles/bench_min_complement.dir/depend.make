# Empty dependencies file for bench_min_complement.
# This may be replaced when dependencies are built.
