file(REMOVE_RECURSE
  "../bench/bench_min_complement"
  "../bench/bench_min_complement.pdb"
  "CMakeFiles/bench_min_complement.dir/bench_min_complement.cc.o"
  "CMakeFiles/bench_min_complement.dir/bench_min_complement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_min_complement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
