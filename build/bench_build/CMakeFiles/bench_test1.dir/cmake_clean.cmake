file(REMOVE_RECURSE
  "../bench/bench_test1"
  "../bench/bench_test1.pdb"
  "CMakeFiles/bench_test1.dir/bench_test1.cc.o"
  "CMakeFiles/bench_test1.dir/bench_test1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
