# Empty compiler generated dependencies file for bench_test1.
# This may be replaced when dependencies are built.
