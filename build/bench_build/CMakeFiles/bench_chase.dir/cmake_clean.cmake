file(REMOVE_RECURSE
  "../bench/bench_chase"
  "../bench/bench_chase.pdb"
  "CMakeFiles/bench_chase.dir/bench_chase.cc.o"
  "CMakeFiles/bench_chase.dir/bench_chase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
