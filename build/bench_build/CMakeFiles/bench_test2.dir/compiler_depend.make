# Empty compiler generated dependencies file for bench_test2.
# This may be replaced when dependencies are built.
