file(REMOVE_RECURSE
  "../bench/bench_test2"
  "../bench/bench_test2.pdb"
  "CMakeFiles/bench_test2.dir/bench_test2.cc.o"
  "CMakeFiles/bench_test2.dir/bench_test2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
