file(REMOVE_RECURSE
  "../bench/bench_find_complement"
  "../bench/bench_find_complement.pdb"
  "CMakeFiles/bench_find_complement.dir/bench_find_complement.cc.o"
  "CMakeFiles/bench_find_complement.dir/bench_find_complement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_find_complement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
