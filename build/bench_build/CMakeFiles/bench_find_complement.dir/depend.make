# Empty dependencies file for bench_find_complement.
# This may be replaced when dependencies are built.
