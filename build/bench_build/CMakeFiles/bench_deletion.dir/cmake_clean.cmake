file(REMOVE_RECURSE
  "../bench/bench_deletion"
  "../bench/bench_deletion.pdb"
  "CMakeFiles/bench_deletion.dir/bench_deletion.cc.o"
  "CMakeFiles/bench_deletion.dir/bench_deletion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
