file(REMOVE_RECURSE
  "../bench/bench_framework_efd"
  "../bench/bench_framework_efd.pdb"
  "CMakeFiles/bench_framework_efd.dir/bench_framework_efd.cc.o"
  "CMakeFiles/bench_framework_efd.dir/bench_framework_efd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_framework_efd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
