# Empty dependencies file for bench_framework_efd.
# This may be replaced when dependencies are built.
