file(REMOVE_RECURSE
  "CMakeFiles/relview_framework.dir/bs_framework.cc.o"
  "CMakeFiles/relview_framework.dir/bs_framework.cc.o.d"
  "librelview_framework.a"
  "librelview_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
