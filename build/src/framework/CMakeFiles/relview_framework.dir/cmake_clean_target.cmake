file(REMOVE_RECURSE
  "librelview_framework.a"
)
