# Empty compiler generated dependencies file for relview_framework.
# This may be replaced when dependencies are built.
