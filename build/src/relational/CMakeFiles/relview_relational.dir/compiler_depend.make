# Empty compiler generated dependencies file for relview_relational.
# This may be replaced when dependencies are built.
