
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/attr_set.cc" "src/relational/CMakeFiles/relview_relational.dir/attr_set.cc.o" "gcc" "src/relational/CMakeFiles/relview_relational.dir/attr_set.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/relational/CMakeFiles/relview_relational.dir/csv.cc.o" "gcc" "src/relational/CMakeFiles/relview_relational.dir/csv.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/relational/CMakeFiles/relview_relational.dir/relation.cc.o" "gcc" "src/relational/CMakeFiles/relview_relational.dir/relation.cc.o.d"
  "/root/repo/src/relational/universe.cc" "src/relational/CMakeFiles/relview_relational.dir/universe.cc.o" "gcc" "src/relational/CMakeFiles/relview_relational.dir/universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/relview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
