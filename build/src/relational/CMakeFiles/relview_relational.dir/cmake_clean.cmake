file(REMOVE_RECURSE
  "CMakeFiles/relview_relational.dir/attr_set.cc.o"
  "CMakeFiles/relview_relational.dir/attr_set.cc.o.d"
  "CMakeFiles/relview_relational.dir/csv.cc.o"
  "CMakeFiles/relview_relational.dir/csv.cc.o.d"
  "CMakeFiles/relview_relational.dir/relation.cc.o"
  "CMakeFiles/relview_relational.dir/relation.cc.o.d"
  "CMakeFiles/relview_relational.dir/universe.cc.o"
  "CMakeFiles/relview_relational.dir/universe.cc.o.d"
  "librelview_relational.a"
  "librelview_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
