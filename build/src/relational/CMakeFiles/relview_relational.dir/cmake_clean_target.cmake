file(REMOVE_RECURSE
  "librelview_relational.a"
)
