file(REMOVE_RECURSE
  "CMakeFiles/relview_util.dir/status.cc.o"
  "CMakeFiles/relview_util.dir/status.cc.o.d"
  "librelview_util.a"
  "librelview_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
