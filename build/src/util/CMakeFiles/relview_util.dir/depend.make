# Empty dependencies file for relview_util.
# This may be replaced when dependencies are built.
