file(REMOVE_RECURSE
  "librelview_util.a"
)
