file(REMOVE_RECURSE
  "librelview_succinct.a"
)
