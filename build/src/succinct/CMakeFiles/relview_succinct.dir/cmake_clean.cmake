file(REMOVE_RECURSE
  "CMakeFiles/relview_succinct.dir/succinct_view.cc.o"
  "CMakeFiles/relview_succinct.dir/succinct_view.cc.o.d"
  "librelview_succinct.a"
  "librelview_succinct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_succinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
