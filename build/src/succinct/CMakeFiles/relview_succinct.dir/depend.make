# Empty dependencies file for relview_succinct.
# This may be replaced when dependencies are built.
