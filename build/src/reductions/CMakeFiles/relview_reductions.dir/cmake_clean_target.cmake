file(REMOVE_RECURSE
  "librelview_reductions.a"
)
