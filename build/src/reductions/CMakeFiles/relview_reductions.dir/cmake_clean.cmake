file(REMOVE_RECURSE
  "CMakeFiles/relview_reductions.dir/reductions.cc.o"
  "CMakeFiles/relview_reductions.dir/reductions.cc.o.d"
  "librelview_reductions.a"
  "librelview_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
