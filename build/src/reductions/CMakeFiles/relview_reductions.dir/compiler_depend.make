# Empty compiler generated dependencies file for relview_reductions.
# This may be replaced when dependencies are built.
