# Empty dependencies file for relview_chase.
# This may be replaced when dependencies are built.
