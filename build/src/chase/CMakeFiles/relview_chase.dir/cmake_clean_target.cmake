file(REMOVE_RECURSE
  "librelview_chase.a"
)
