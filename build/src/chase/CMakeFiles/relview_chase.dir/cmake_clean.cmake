file(REMOVE_RECURSE
  "CMakeFiles/relview_chase.dir/implication.cc.o"
  "CMakeFiles/relview_chase.dir/implication.cc.o.d"
  "CMakeFiles/relview_chase.dir/instance_chase.cc.o"
  "CMakeFiles/relview_chase.dir/instance_chase.cc.o.d"
  "CMakeFiles/relview_chase.dir/tableau.cc.o"
  "CMakeFiles/relview_chase.dir/tableau.cc.o.d"
  "CMakeFiles/relview_chase.dir/tg_chase.cc.o"
  "CMakeFiles/relview_chase.dir/tg_chase.cc.o.d"
  "librelview_chase.a"
  "librelview_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
