
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/implication.cc" "src/chase/CMakeFiles/relview_chase.dir/implication.cc.o" "gcc" "src/chase/CMakeFiles/relview_chase.dir/implication.cc.o.d"
  "/root/repo/src/chase/instance_chase.cc" "src/chase/CMakeFiles/relview_chase.dir/instance_chase.cc.o" "gcc" "src/chase/CMakeFiles/relview_chase.dir/instance_chase.cc.o.d"
  "/root/repo/src/chase/tableau.cc" "src/chase/CMakeFiles/relview_chase.dir/tableau.cc.o" "gcc" "src/chase/CMakeFiles/relview_chase.dir/tableau.cc.o.d"
  "/root/repo/src/chase/tg_chase.cc" "src/chase/CMakeFiles/relview_chase.dir/tg_chase.cc.o" "gcc" "src/chase/CMakeFiles/relview_chase.dir/tg_chase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deps/CMakeFiles/relview_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/relview_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
