
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/view/chase_test.cc" "src/view/CMakeFiles/relview_view.dir/chase_test.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/chase_test.cc.o.d"
  "/root/repo/src/view/complement.cc" "src/view/CMakeFiles/relview_view.dir/complement.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/complement.cc.o.d"
  "/root/repo/src/view/deletion.cc" "src/view/CMakeFiles/relview_view.dir/deletion.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/deletion.cc.o.d"
  "/root/repo/src/view/find_complement.cc" "src/view/CMakeFiles/relview_view.dir/find_complement.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/find_complement.cc.o.d"
  "/root/repo/src/view/generic_instance.cc" "src/view/CMakeFiles/relview_view.dir/generic_instance.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/generic_instance.cc.o.d"
  "/root/repo/src/view/insertion.cc" "src/view/CMakeFiles/relview_view.dir/insertion.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/insertion.cc.o.d"
  "/root/repo/src/view/replacement.cc" "src/view/CMakeFiles/relview_view.dir/replacement.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/replacement.cc.o.d"
  "/root/repo/src/view/selection_view.cc" "src/view/CMakeFiles/relview_view.dir/selection_view.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/selection_view.cc.o.d"
  "/root/repo/src/view/test1.cc" "src/view/CMakeFiles/relview_view.dir/test1.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/test1.cc.o.d"
  "/root/repo/src/view/test2.cc" "src/view/CMakeFiles/relview_view.dir/test2.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/test2.cc.o.d"
  "/root/repo/src/view/translator.cc" "src/view/CMakeFiles/relview_view.dir/translator.cc.o" "gcc" "src/view/CMakeFiles/relview_view.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chase/CMakeFiles/relview_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/relview_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/relview_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
