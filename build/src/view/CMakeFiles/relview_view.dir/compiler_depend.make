# Empty compiler generated dependencies file for relview_view.
# This may be replaced when dependencies are built.
