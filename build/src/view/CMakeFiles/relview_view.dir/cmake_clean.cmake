file(REMOVE_RECURSE
  "CMakeFiles/relview_view.dir/chase_test.cc.o"
  "CMakeFiles/relview_view.dir/chase_test.cc.o.d"
  "CMakeFiles/relview_view.dir/complement.cc.o"
  "CMakeFiles/relview_view.dir/complement.cc.o.d"
  "CMakeFiles/relview_view.dir/deletion.cc.o"
  "CMakeFiles/relview_view.dir/deletion.cc.o.d"
  "CMakeFiles/relview_view.dir/find_complement.cc.o"
  "CMakeFiles/relview_view.dir/find_complement.cc.o.d"
  "CMakeFiles/relview_view.dir/generic_instance.cc.o"
  "CMakeFiles/relview_view.dir/generic_instance.cc.o.d"
  "CMakeFiles/relview_view.dir/insertion.cc.o"
  "CMakeFiles/relview_view.dir/insertion.cc.o.d"
  "CMakeFiles/relview_view.dir/replacement.cc.o"
  "CMakeFiles/relview_view.dir/replacement.cc.o.d"
  "CMakeFiles/relview_view.dir/selection_view.cc.o"
  "CMakeFiles/relview_view.dir/selection_view.cc.o.d"
  "CMakeFiles/relview_view.dir/test1.cc.o"
  "CMakeFiles/relview_view.dir/test1.cc.o.d"
  "CMakeFiles/relview_view.dir/test2.cc.o"
  "CMakeFiles/relview_view.dir/test2.cc.o.d"
  "CMakeFiles/relview_view.dir/translator.cc.o"
  "CMakeFiles/relview_view.dir/translator.cc.o.d"
  "librelview_view.a"
  "librelview_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
