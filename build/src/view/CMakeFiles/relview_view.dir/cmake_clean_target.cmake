file(REMOVE_RECURSE
  "librelview_view.a"
)
