# Empty compiler generated dependencies file for relview_multirel.
# This may be replaced when dependencies are built.
