file(REMOVE_RECURSE
  "librelview_multirel.a"
)
