file(REMOVE_RECURSE
  "CMakeFiles/relview_multirel.dir/multirel.cc.o"
  "CMakeFiles/relview_multirel.dir/multirel.cc.o.d"
  "librelview_multirel.a"
  "librelview_multirel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_multirel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
