# Empty dependencies file for relview_solvers.
# This may be replaced when dependencies are built.
