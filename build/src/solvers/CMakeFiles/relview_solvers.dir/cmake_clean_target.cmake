file(REMOVE_RECURSE
  "librelview_solvers.a"
)
