file(REMOVE_RECURSE
  "CMakeFiles/relview_solvers.dir/cnf.cc.o"
  "CMakeFiles/relview_solvers.dir/cnf.cc.o.d"
  "CMakeFiles/relview_solvers.dir/dpll.cc.o"
  "CMakeFiles/relview_solvers.dir/dpll.cc.o.d"
  "librelview_solvers.a"
  "librelview_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
