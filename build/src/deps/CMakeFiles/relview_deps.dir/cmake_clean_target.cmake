file(REMOVE_RECURSE
  "librelview_deps.a"
)
