file(REMOVE_RECURSE
  "CMakeFiles/relview_deps.dir/armstrong.cc.o"
  "CMakeFiles/relview_deps.dir/armstrong.cc.o.d"
  "CMakeFiles/relview_deps.dir/efd.cc.o"
  "CMakeFiles/relview_deps.dir/efd.cc.o.d"
  "CMakeFiles/relview_deps.dir/fd.cc.o"
  "CMakeFiles/relview_deps.dir/fd.cc.o.d"
  "CMakeFiles/relview_deps.dir/fd_set.cc.o"
  "CMakeFiles/relview_deps.dir/fd_set.cc.o.d"
  "CMakeFiles/relview_deps.dir/instance_generator.cc.o"
  "CMakeFiles/relview_deps.dir/instance_generator.cc.o.d"
  "CMakeFiles/relview_deps.dir/jd.cc.o"
  "CMakeFiles/relview_deps.dir/jd.cc.o.d"
  "CMakeFiles/relview_deps.dir/keys.cc.o"
  "CMakeFiles/relview_deps.dir/keys.cc.o.d"
  "CMakeFiles/relview_deps.dir/satisfies.cc.o"
  "CMakeFiles/relview_deps.dir/satisfies.cc.o.d"
  "librelview_deps.a"
  "librelview_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relview_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
