
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deps/armstrong.cc" "src/deps/CMakeFiles/relview_deps.dir/armstrong.cc.o" "gcc" "src/deps/CMakeFiles/relview_deps.dir/armstrong.cc.o.d"
  "/root/repo/src/deps/efd.cc" "src/deps/CMakeFiles/relview_deps.dir/efd.cc.o" "gcc" "src/deps/CMakeFiles/relview_deps.dir/efd.cc.o.d"
  "/root/repo/src/deps/fd.cc" "src/deps/CMakeFiles/relview_deps.dir/fd.cc.o" "gcc" "src/deps/CMakeFiles/relview_deps.dir/fd.cc.o.d"
  "/root/repo/src/deps/fd_set.cc" "src/deps/CMakeFiles/relview_deps.dir/fd_set.cc.o" "gcc" "src/deps/CMakeFiles/relview_deps.dir/fd_set.cc.o.d"
  "/root/repo/src/deps/instance_generator.cc" "src/deps/CMakeFiles/relview_deps.dir/instance_generator.cc.o" "gcc" "src/deps/CMakeFiles/relview_deps.dir/instance_generator.cc.o.d"
  "/root/repo/src/deps/jd.cc" "src/deps/CMakeFiles/relview_deps.dir/jd.cc.o" "gcc" "src/deps/CMakeFiles/relview_deps.dir/jd.cc.o.d"
  "/root/repo/src/deps/keys.cc" "src/deps/CMakeFiles/relview_deps.dir/keys.cc.o" "gcc" "src/deps/CMakeFiles/relview_deps.dir/keys.cc.o.d"
  "/root/repo/src/deps/satisfies.cc" "src/deps/CMakeFiles/relview_deps.dir/satisfies.cc.o" "gcc" "src/deps/CMakeFiles/relview_deps.dir/satisfies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/relview_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
