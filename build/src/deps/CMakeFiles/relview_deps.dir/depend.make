# Empty dependencies file for relview_deps.
# This may be replaced when dependencies are built.
