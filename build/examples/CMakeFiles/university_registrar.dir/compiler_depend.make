# Empty compiler generated dependencies file for university_registrar.
# This may be replaced when dependencies are built.
