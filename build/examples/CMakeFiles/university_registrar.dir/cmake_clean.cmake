file(REMOVE_RECURSE
  "CMakeFiles/university_registrar.dir/university_registrar.cpp.o"
  "CMakeFiles/university_registrar.dir/university_registrar.cpp.o.d"
  "university_registrar"
  "university_registrar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_registrar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
