file(REMOVE_RECURSE
  "CMakeFiles/view_shell.dir/view_shell.cpp.o"
  "CMakeFiles/view_shell.dir/view_shell.cpp.o.d"
  "view_shell"
  "view_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
