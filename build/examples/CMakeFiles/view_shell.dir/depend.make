# Empty dependencies file for view_shell.
# This may be replaced when dependencies are built.
