
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/view_shell.cpp" "examples/CMakeFiles/view_shell.dir/view_shell.cpp.o" "gcc" "examples/CMakeFiles/view_shell.dir/view_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/multirel/CMakeFiles/relview_multirel.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/relview_view.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/relview_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/deps/CMakeFiles/relview_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/relview_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/succinct/CMakeFiles/relview_succinct.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/relview_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/reductions/CMakeFiles/relview_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/relview_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
