file(REMOVE_RECURSE
  "CMakeFiles/complement_advisor.dir/complement_advisor.cpp.o"
  "CMakeFiles/complement_advisor.dir/complement_advisor.cpp.o.d"
  "complement_advisor"
  "complement_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complement_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
