# Empty dependencies file for complement_advisor.
# This may be replaced when dependencies are built.
