# Empty compiler generated dependencies file for succinct_hardness.
# This may be replaced when dependencies are built.
