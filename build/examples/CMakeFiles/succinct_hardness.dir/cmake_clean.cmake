file(REMOVE_RECURSE
  "CMakeFiles/succinct_hardness.dir/succinct_hardness.cpp.o"
  "CMakeFiles/succinct_hardness.dir/succinct_hardness.cpp.o.d"
  "succinct_hardness"
  "succinct_hardness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/succinct_hardness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
