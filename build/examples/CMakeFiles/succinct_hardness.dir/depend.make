# Empty dependencies file for succinct_hardness.
# This may be replaced when dependencies are built.
