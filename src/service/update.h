/// \file
/// ViewUpdate: a first-class value describing one view update request
/// (insert / delete / replace) against the view X. The service layer
/// batches, journals and replays these; the underlying checks and
/// translations are the paper's Theorems 3, 8 and 9 via ViewTranslator.

#ifndef RELVIEW_SERVICE_UPDATE_H_
#define RELVIEW_SERVICE_UPDATE_H_

#include <string>
#include <utility>

#include "relational/tuple.h"

namespace relview {

/// The three update shapes of the paper's Section 4.
enum class UpdateKind {
  kInsert = 0,   ///< Insert a view tuple (Theorem 3).
  kDelete = 1,   ///< Delete a view tuple (Theorem 8).
  kReplace = 2,  ///< Replace one view tuple by another (Theorem 9).
  /// Sentinel — number of real kinds above. Keep last; ServiceMetrics
  /// sizes its per-kind counters from it.
  kNumUpdateKinds,
};

/// "insert", "delete", "replace".
const char* UpdateKindName(UpdateKind kind);

/// One view update request; a plain value the service layer can batch,
/// journal and replay.
struct ViewUpdate {
  /// Which of the paper's update shapes this is.
  UpdateKind kind = UpdateKind::kInsert;
  /// The inserted / deleted tuple, or the replacement source t1.
  Tuple t1;
  /// The replacement target t2 (kReplace only; empty otherwise).
  Tuple t2;

  /// An insertion of `t` (over the view attributes X).
  static ViewUpdate Insert(Tuple t) {
    return ViewUpdate{UpdateKind::kInsert, std::move(t), Tuple()};
  }
  /// A deletion of `t`.
  static ViewUpdate Delete(Tuple t) {
    return ViewUpdate{UpdateKind::kDelete, std::move(t), Tuple()};
  }
  /// A replacement of `from` by `to`.
  static ViewUpdate Replace(Tuple from, Tuple to) {
    return ViewUpdate{UpdateKind::kReplace, std::move(from), std::move(to)};
  }

  /// Structural equality (kind and both tuples).
  bool operator==(const ViewUpdate& o) const {
    return kind == o.kind && t1 == o.t1 && t2 == o.t2;
  }

  /// "insert (c1,c2)" / "replace (c1,c2) -> (c1,c3)".
  std::string ToString() const;
};

}  // namespace relview

#endif  // RELVIEW_SERVICE_UPDATE_H_
