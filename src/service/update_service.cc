#include "service/update_service.h"

#include "util/small_util.h"
#include "view/deletion.h"
#include "view/insertion.h"
#include "view/replacement.h"

namespace relview {

Result<std::unique_ptr<UpdateService>> UpdateService::Create(
    ViewTranslator translator, ServiceOptions options) {
  if (!translator.bound()) {
    return Status::FailedPrecondition(
        "UpdateService needs a translator bound to a database");
  }
  uint64_t replayed = 0;
  std::optional<Journal> journal;
  if (!options.journal_path.empty()) {
    RELVIEW_ASSIGN_OR_RETURN(
        JournalReadResult recovered,
        Journal::Replay(options.journal_path, &translator));
    replayed = recovered.updates.size();
    RELVIEW_ASSIGN_OR_RETURN(Journal j, Journal::Open(options.journal_path));
    journal = std::move(j);
  }
  std::unique_ptr<UpdateService> service(
      new UpdateService(std::move(translator), std::move(journal)));
  for (uint64_t i = 0; i < replayed; ++i) {
    service->metrics_.RecordReplayedUpdate();
  }
  return service;
}

namespace {
uint64_t NextServiceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

UpdateService::UpdateService(ViewTranslator translator,
                             std::optional<Journal> journal)
    : translator_(std::move(translator)),
      journal_(std::move(journal)),
      service_id_(NextServiceId()) {
  Publish(0);
}

ViewSnapshot UpdateService::Snapshot() const {
  // Per-thread cache gated on the published version: while no write has
  // committed, a reader's Snapshot() is one atomic load plus a local copy
  // — no rwlock word, no contended pointer. The cache pins at most one
  // stale version per (thread, service) until that thread reads again.
  struct Cache {
    uint64_t service_id = 0;
    ViewSnapshot snap;
  };
  static thread_local Cache cache;
  const uint64_t v = published_version_.load(std::memory_order_acquire);
  if (cache.service_id != service_id_ || cache.snap.version != v) {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    cache.snap = *snapshot_;
    cache.service_id = service_id_;
  }
  metrics_.RecordSnapshot();
  return cache.snap;
}

uint64_t UpdateService::version() const {
  return published_version_.load(std::memory_order_acquire);
}

Status UpdateService::StageOne(const ViewUpdate& u, const Relation& v,
                               Relation* db, std::string* detail) {
  const AttrSet all = translator_.universe().All();
  const FDSet& fds = translator_.sigma().fds;
  const AttrSet& x = translator_.view();
  const AttrSet& y = translator_.complement();

  Timer check_timer;
  TranslationVerdict verdict = TranslationVerdict::kTranslatable;
  switch (u.kind) {
    case UpdateKind::kInsert: {
      Result<InsertionReport> r = CheckInsertion(all, fds, x, y, v, u.t1);
      metrics_.RecordCheckLatency(check_timer.ElapsedNanos());
      if (!r.ok()) {
        metrics_.RecordRejected(u.kind, r.status().code());
        *detail = r.status().ToString();
        return r.status();
      }
      if (!r->translatable()) {
        metrics_.RecordRejected(u.kind, StatusCode::kUntranslatable);
        *detail = r->ToString();
        return Status::Untranslatable(*detail);
      }
      verdict = r->verdict;
      break;
    }
    case UpdateKind::kDelete: {
      Result<DeletionReport> r = CheckDeletion(all, fds, x, y, v, u.t1);
      metrics_.RecordCheckLatency(check_timer.ElapsedNanos());
      if (!r.ok()) {
        metrics_.RecordRejected(u.kind, r.status().code());
        *detail = r.status().ToString();
        return r.status();
      }
      if (!r->translatable()) {
        metrics_.RecordRejected(u.kind, StatusCode::kUntranslatable);
        *detail = TranslationVerdictName(r->verdict);
        return Status::Untranslatable(*detail);
      }
      verdict = r->verdict;
      break;
    }
    case UpdateKind::kReplace: {
      Result<ReplacementReport> r =
          CheckReplacement(all, fds, x, y, v, u.t1, u.t2);
      metrics_.RecordCheckLatency(check_timer.ElapsedNanos());
      if (!r.ok()) {
        metrics_.RecordRejected(u.kind, r.status().code());
        *detail = r.status().ToString();
        return r.status();
      }
      if (!r->translatable()) {
        metrics_.RecordRejected(u.kind, StatusCode::kUntranslatable);
        *detail = TranslationVerdictName(r->verdict);
        return Status::Untranslatable(*detail);
      }
      verdict = r->verdict;
      break;
    }
  }

  metrics_.RecordAccepted(u.kind);
  if (verdict == TranslationVerdict::kIdentity) return Status::OK();

  Timer apply_timer;
  Result<Relation> updated = Status::Internal("unreachable");
  switch (u.kind) {
    case UpdateKind::kInsert:
      updated = ApplyInsertion(all, x, y, *db, u.t1);
      break;
    case UpdateKind::kDelete:
      updated = ApplyDeletion(all, x, y, *db, u.t1);
      break;
    case UpdateKind::kReplace:
      updated = ApplyReplacement(all, x, y, *db, u.t1, u.t2);
      break;
  }
  metrics_.RecordApplyLatency(apply_timer.ElapsedNanos());
  if (!updated.ok()) {
    *detail = updated.status().ToString();
    return updated.status();
  }
  *db = std::move(*updated);
  return Status::OK();
}

BatchResult UpdateService::ApplyBatch(const std::vector<ViewUpdate>& updates) {
  BatchResult result;
  if (updates.empty()) return result;

  std::lock_guard<std::mutex> writer(writer_mu_);

  // Stage the whole batch on a copy. The committed state (and every
  // outstanding snapshot) is untouched until the swap below.
  Relation db = translator_.database();
  const AttrSet& x = translator_.view();
  for (size_t i = 0; i < updates.size(); ++i) {
    const Relation v = db.Project(x);
    Status st = StageOne(updates[i], v, &db, &result.detail);
    if (!st.ok()) {
      metrics_.RecordBatchRolledBack();
      result.status = std::move(st);
      result.failed_index = static_cast<int>(i);
      return result;
    }
  }

  // Write-ahead: the batch is durable before it becomes visible.
  if (journal_.has_value()) {
    Status st = journal_->AppendAll(updates);
    if (!st.ok()) {
      metrics_.RecordBatchRolledBack();
      result.status = std::move(st);
      result.detail = "journal append failed; batch rolled back";
      return result;
    }
  }

  translator_.InstallDatabase(std::move(db));
  metrics_.RecordBatchCommitted();
  Publish(++version_);
  return result;
}

Status UpdateService::Apply(const ViewUpdate& update) {
  BatchResult r = ApplyBatch({update});
  return r.status;
}

void UpdateService::Publish(uint64_t version) {
  auto snap = std::make_shared<ViewSnapshot>();
  snap->version = version;
  snap->database = std::make_shared<const Relation>(translator_.database());
  snap->view = std::make_shared<const Relation>(
      translator_.database().Project(translator_.view()));
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  // Open the readers' fast-path gate only after the pointer is in place.
  published_version_.store(version, std::memory_order_release);
}

}  // namespace relview
