#include "service/update_service.h"

#include "util/small_util.h"
#include "view/deletion.h"
#include "view/insertion.h"
#include "view/replacement.h"

namespace relview {

Result<std::unique_ptr<UpdateService>> UpdateService::Create(
    ViewTranslator translator, ServiceOptions options) {
  if (!translator.bound()) {
    return Status::FailedPrecondition(
        "UpdateService needs a translator bound to a database");
  }
  uint64_t replayed = 0;
  std::optional<Journal> journal;
  if (!options.journal_path.empty()) {
    RELVIEW_ASSIGN_OR_RETURN(
        JournalReadResult recovered,
        Journal::Replay(options.journal_path, &translator));
    replayed = recovered.updates.size();
    RELVIEW_ASSIGN_OR_RETURN(Journal j, Journal::Open(options.journal_path));
    journal = std::move(j);
  }
  std::unique_ptr<UpdateService> service(
      new UpdateService(std::move(translator), std::move(journal)));
  for (uint64_t i = 0; i < replayed; ++i) {
    service->metrics_.RecordReplayedUpdate();
  }
  return service;
}

namespace {
uint64_t NextServiceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

UpdateService::UpdateService(ViewTranslator translator,
                             std::optional<Journal> journal)
    : translator_(std::move(translator)),
      journal_(std::move(journal)),
      service_id_(NextServiceId()) {
  Publish(0);
}

ViewSnapshot UpdateService::Snapshot() const {
  // Per-thread cache gated on the published version: while no write has
  // committed, a reader's Snapshot() is one atomic load plus a local copy
  // — no rwlock word, no contended pointer. The cache pins at most one
  // stale version per (thread, service) until that thread reads again.
  struct Cache {
    uint64_t service_id = 0;
    ViewSnapshot snap;
  };
  static thread_local Cache cache;
  const uint64_t v = published_version_.load(std::memory_order_acquire);
  if (cache.service_id != service_id_ || cache.snap.version != v) {
    std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
    cache.snap = *snapshot_;
    cache.service_id = service_id_;
  }
  metrics_.RecordSnapshot();
  return cache.snap;
}

uint64_t UpdateService::version() const {
  return published_version_.load(std::memory_order_acquire);
}

Status UpdateService::StageOne(const ViewUpdate& u, std::string* detail,
                               bool* mutated) {
  Timer timer;
  TranslationVerdict verdict = TranslationVerdict::kTranslatable;
  int64_t apply_nanos = 0;
  Status st = Status::OK();
  switch (u.kind) {
    case UpdateKind::kInsert: {
      Result<InsertionReport> r = translator_.InsertWithReport(u.t1);
      if (!r.ok()) {
        st = r.status();
        *detail = st.ToString();
      } else if (!r->translatable()) {
        *detail = r->ToString();
        st = Status::Untranslatable(*detail);
      } else {
        verdict = r->verdict;
        apply_nanos = r->apply_nanos;
      }
      break;
    }
    case UpdateKind::kDelete: {
      Result<DeletionReport> r = translator_.DeleteWithReport(u.t1);
      if (!r.ok()) {
        st = r.status();
        *detail = st.ToString();
      } else if (!r->translatable()) {
        *detail = TranslationVerdictName(r->verdict);
        st = Status::Untranslatable(*detail);
      } else {
        verdict = r->verdict;
        apply_nanos = r->apply_nanos;
      }
      break;
    }
    case UpdateKind::kReplace: {
      Result<ReplacementReport> r = translator_.ReplaceWithReport(u.t1, u.t2);
      if (!r.ok()) {
        st = r.status();
        *detail = st.ToString();
      } else if (!r->translatable()) {
        *detail = TranslationVerdictName(r->verdict);
        st = Status::Untranslatable(*detail);
      } else {
        verdict = r->verdict;
        apply_nanos = r->apply_nanos;
      }
      break;
    }
  }
  // The report times the apply phase itself; everything else was the check.
  metrics_.RecordCheckLatency(timer.ElapsedNanos() - apply_nanos);
  if (!st.ok()) {
    metrics_.RecordRejected(u.kind, st.code());
    return st;
  }
  metrics_.RecordAccepted(u.kind);
  if (verdict == TranslationVerdict::kIdentity) return Status::OK();
  metrics_.RecordApplyLatency(apply_nanos);
  *mutated = true;
  return Status::OK();
}

BatchResult UpdateService::ApplyBatch(const std::vector<ViewUpdate>& updates) {
  BatchResult result;
  if (updates.empty()) return result;

  std::lock_guard<std::mutex> writer(writer_mu_);

  // The translator applies updates in place (keeping the engine's caches
  // warm), so save the committed relation first: one rejection reinstalls
  // it and the batch leaves no trace. Published snapshots hold their own
  // shared_ptrs and are untouched either way.
  Relation saved = translator_.database();
  bool mutated = false;
  for (size_t i = 0; i < updates.size(); ++i) {
    Status st = StageOne(updates[i], &result.detail, &mutated);
    if (!st.ok()) {
      if (mutated) translator_.InstallDatabase(std::move(saved));
      metrics_.RecordBatchRolledBack();
      result.status = std::move(st);
      result.failed_index = static_cast<int>(i);
      return result;
    }
  }

  // Write-ahead: the batch is durable before it becomes visible.
  if (journal_.has_value()) {
    Status st = journal_->AppendAll(updates);
    if (!st.ok()) {
      if (mutated) translator_.InstallDatabase(std::move(saved));
      metrics_.RecordBatchRolledBack();
      result.status = std::move(st);
      result.detail = "journal append failed; batch rolled back";
      return result;
    }
  }

  metrics_.RecordBatchCommitted();
  Publish(++version_);
  metrics_.SetEngineGauges(translator_.engine_stats());
  return result;
}

Status UpdateService::Apply(const ViewUpdate& update) {
  BatchResult r = ApplyBatch({update});
  return r.status;
}

void UpdateService::Publish(uint64_t version) {
  auto snap = std::make_shared<ViewSnapshot>();
  snap->version = version;
  snap->database = std::make_shared<const Relation>(translator_.database());
  // Served from the engine's incrementally maintained view when live
  // (identical row order to Project — both are canonical).
  Result<Relation> view = translator_.ViewInstance();
  RELVIEW_DCHECK(view.ok(), "publish on an unbound translator");
  snap->view = std::make_shared<const Relation>(std::move(*view));
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  // Open the readers' fast-path gate only after the pointer is in place.
  published_version_.store(version, std::memory_order_release);
}

}  // namespace relview
