#include "service/update_service.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/trace.h"
#include "obs/trace_context.h"
#include "obs/wide_event.h"
#include "util/failpoint.h"
#include "util/small_util.h"
#include "view/deletion.h"
#include "view/insertion.h"
#include "view/replacement.h"

namespace relview {

Result<std::unique_ptr<UpdateService>> UpdateService::Create(
    ViewTranslator translator, ServiceOptions options) {
  if (!translator.bound()) {
    return Status::FailedPrecondition(
        "UpdateService needs a translator bound to a database");
  }
  if (!options.journal_path.empty() && !options.store.dir.empty()) {
    return Status::InvalidArgument(
        "ServiceOptions: journal_path and store.dir are mutually "
        "exclusive");
  }
  if (options.group_commit && options.store.dir.empty()) {
    return Status::InvalidArgument(
        "ServiceOptions: group_commit requires the durable store "
        "(store.dir) — the legacy single-file journal has no deferred-"
        "fsync path");
  }
  uint64_t replayed = 0;
  std::optional<Journal> journal;
  std::unique_ptr<DurableStore> store;
  if (!options.store.dir.empty()) {
    RELVIEW_ASSIGN_OR_RETURN(store,
                             DurableStore::Open(options.store, &translator));
    replayed = store->recovery().replayed;
  } else if (!options.journal_path.empty()) {
    RELVIEW_ASSIGN_OR_RETURN(
        JournalReadResult recovered,
        Journal::Replay(options.journal_path, &translator));
    replayed = recovered.updates.size();
    RELVIEW_ASSIGN_OR_RETURN(Journal j, Journal::Open(options.journal_path));
    journal = std::move(j);
  }
  std::unique_ptr<UpdateService> service(new UpdateService(
      std::move(translator), std::move(journal), std::move(store),
      options.group_commit, options.group_window_us, options.commit_stall_ms));
  for (uint64_t i = 0; i < replayed; ++i) {
    service->metrics_.RecordReplayedUpdate();
  }
  return service;
}

namespace {
uint64_t NextServiceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

UpdateService::UpdateService(ViewTranslator translator,
                             std::optional<Journal> journal,
                             std::unique_ptr<DurableStore> store,
                             bool group_commit, uint32_t group_window_us,
                             uint32_t commit_stall_ms)
    : translator_(std::move(translator)),
      journal_(std::move(journal)),
      store_(std::move(store)),
      group_commit_(group_commit),
      group_window_us_(group_window_us),
      group_store_(group_commit ? store_.get() : nullptr),
      commit_stall_ms_(commit_stall_ms),
      universe_(translator_.universe()),
      view_attrs_(translator_.view()),
      complement_attrs_(translator_.complement()),
      service_id_(NextServiceId()) {
  // No concurrent access is possible yet, but Publish requires the writer
  // capability, so take it (uncontended) rather than suppress the analysis.
  MutexLock writer(writer_mu_);
  Publish(0);
}

ViewSnapshot UpdateService::Snapshot() const {
  // Per-thread cache gated on the published version: while no write has
  // committed, a reader's Snapshot() is one atomic load plus a local copy
  // — no rwlock word, no contended pointer. The cache pins at most one
  // stale version per (thread, service) until that thread reads again.
  struct Cache {
    uint64_t service_id = 0;
    ViewSnapshot snap;
  };
  static thread_local Cache cache;
  const uint64_t v = published_version_.load(std::memory_order_acquire);
  if (cache.service_id != service_id_ || cache.snap.version != v) {
    ReaderMutexLock lock(snapshot_mu_);
    cache.snap = *snapshot_;
    cache.service_id = service_id_;
  }
  metrics_.RecordSnapshot();
  return cache.snap;
}

uint64_t UpdateService::version() const {
  return published_version_.load(std::memory_order_acquire);
}

Status UpdateService::StageOne(const ViewUpdate& u, int batch_index,
                               std::string* detail, bool* mutated) {
  RELVIEW_TRACE_SPAN("svc.stage_one");
  Timer timer;
  DecisionTrace trace;
  trace.update = u.ToString();
  trace.batch_index = batch_index;
  const EngineStats before = translator_.engine_stats();
  TranslationVerdict verdict = TranslationVerdict::kTranslatable;
  int64_t apply_nanos = 0;
  Status st = Status::OK();
  switch (u.kind) {
    case UpdateKind::kInsert: {
      trace.kind = 'I';
      Result<InsertionReport> r = translator_.InsertWithReport(u.t1);
      if (!r.ok()) {
        st = r.status();
        *detail = st.ToString();
      } else {
        verdict = r->verdict;
        trace.verdict = TranslationVerdictName(r->verdict);
        trace.failed_condition = FailingCondition(r->verdict);
        trace.chases_run = r->chases_run;
        trace.chase_merges = r->stats.merges;
        trace.chase_rounds = r->stats.rounds;
        trace.chase_work = r->stats.work;
        if (!r->translatable()) {
          *detail = r->ToString();
          st = Status::Untranslatable(*detail);
          if (r->verdict == TranslationVerdict::kFailsChase) {
            trace.has_violated_fd = true;
            trace.violated_fd = r->violated_fd;
            trace.has_violator = r->witness_row >= 0;
            trace.violator_row = r->witness_row;
            trace.violator_tuple = r->witness_tuple;
            trace.has_mu = r->witness_mu_tuple.arity() > 0;
            trace.mu_tuple = r->witness_mu_tuple;
          }
        } else {
          apply_nanos = r->apply_nanos;
        }
      }
      break;
    }
    case UpdateKind::kDelete: {
      trace.kind = 'D';
      Result<DeletionReport> r = translator_.DeleteWithReport(u.t1);
      if (!r.ok()) {
        st = r.status();
        *detail = st.ToString();
      } else {
        verdict = r->verdict;
        trace.verdict = TranslationVerdictName(r->verdict);
        trace.failed_condition = FailingCondition(r->verdict);
        if (!r->translatable()) {
          *detail = TranslationVerdictName(r->verdict);
          st = Status::Untranslatable(*detail);
        } else {
          apply_nanos = r->apply_nanos;
        }
      }
      break;
    }
    case UpdateKind::kReplace: {
      trace.kind = 'R';
      Result<ReplacementReport> r = translator_.ReplaceWithReport(u.t1, u.t2);
      if (!r.ok()) {
        st = r.status();
        *detail = st.ToString();
      } else {
        verdict = r->verdict;
        trace.verdict = TranslationVerdictName(r->verdict);
        trace.failed_condition = FailingCondition(r->verdict);
        trace.chases_run = r->chases_run;
        if (!r->translatable()) {
          *detail = TranslationVerdictName(r->verdict);
          st = Status::Untranslatable(*detail);
          if (r->verdict == TranslationVerdict::kFailsChase) {
            trace.has_violated_fd = true;
            trace.violated_fd = r->violated_fd;
            trace.has_violator = r->witness_row >= 0;
            trace.violator_row = r->witness_row;
            trace.violator_tuple = r->witness_tuple;
            trace.has_mu = r->witness_mu_tuple.arity() > 0;
            trace.mu_tuple = r->witness_mu_tuple;
          }
        } else {
          apply_nanos = r->apply_nanos;
        }
      }
      break;
    }
    case UpdateKind::kNumUpdateKinds:
      // Sentinel; unreachable through the public constructors. Bail before
      // the per-kind metric arrays would be indexed out of range.
      *detail = "sentinel update kind";
      return Status::Internal(*detail).WithBatchIndex(batch_index);
  }
  // The report times the apply phase itself; everything else was the check.
  const int64_t check_nanos = timer.ElapsedNanos() - apply_nanos;
  metrics_.RecordCheckLatency(check_nanos, CurrentSampledTraceId());

  // Attribute the engine's counter movement to this one decision.
  const EngineStats after = translator_.engine_stats();
  auto delta = [](uint64_t b, uint64_t a) {
    return static_cast<int64_t>(a - b);
  };
  trace.probes_run = delta(before.probes_run, after.probes_run);
  trace.probes_screened = delta(before.probes_screened, after.probes_screened);
  trace.probes_parallel = delta(before.probes_parallel, after.probes_parallel);
  trace.closure_hits = delta(before.closure_hits, after.closure_hits);
  trace.closure_misses = delta(before.closure_misses, after.closure_misses);
  trace.index_reuses = delta(before.index_reuses, after.index_reuses);
  trace.index_rebuilds = delta(before.index_rebuilds, after.index_rebuilds);
  trace.base_reuses = delta(before.base_reuses, after.base_reuses);
  trace.base_rebuilds = delta(before.base_rebuilds, after.base_rebuilds);
  trace.base_extends = delta(before.base_extends, after.base_extends);
  trace.base_shrinks = delta(before.base_shrinks, after.base_shrinks);
  trace.component_rows_rechased =
      delta(before.component_rows_rechased, after.component_rows_rechased);
  trace.check_nanos = check_nanos;
  trace.apply_nanos = apply_nanos;
  trace.accepted = st.ok();
  if (trace.verdict.empty()) trace.verdict = StatusCodeName(st.code());
  decisions_.Push(std::move(trace));

  if (!st.ok()) {
    metrics_.RecordRejected(u.kind, st.code());
    return std::move(st).WithBatchIndex(batch_index);
  }
  metrics_.RecordAccepted(u.kind);
  if (verdict == TranslationVerdict::kIdentity) return Status::OK();
  metrics_.RecordApplyLatency(apply_nanos, CurrentSampledTraceId());
  *mutated = true;
  return Status::OK();
}

namespace {
// Queue-depth gauge scope: counted before the mutex so parked writers
// show up in relview_pending_writers.
struct PendingGuard {
  std::atomic<int>& n;
  explicit PendingGuard(std::atomic<int>& counter) : n(counter) {
    n.fetch_add(1, std::memory_order_relaxed);
  }
  ~PendingGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
};
}  // namespace

BatchResult UpdateService::ApplyBatch(const std::vector<ViewUpdate>& updates) {
  BatchResult result;
  if (updates.empty()) return result;
  RELVIEW_TRACE_SPAN_N(span, "svc.apply_batch");
  span.AddArg("updates", updates.size());

  PendingGuard pending(pending_writers_);

  if (group_commit_) return ApplyBatchGrouped(updates);

  MutexLock writer(writer_mu_);

  // The translator applies updates in place (keeping the engine's caches
  // warm), so save the committed relation first: one rejection reinstalls
  // it and the batch leaves no trace. Published snapshots hold their own
  // shared_ptrs and are untouched either way.
  Relation saved = translator_.database();
  bool mutated = false;
  Timer stage_timer;
  for (size_t i = 0; i < updates.size(); ++i) {
    Status st = StageOne(updates[i], static_cast<int>(i), &result.detail,
                         &mutated);
    if (!st.ok()) {
      if (mutated) translator_.InstallDatabase(std::move(saved));
      metrics_.RecordBatchRolledBack();
      result.status = std::move(st);
      result.failed_index = static_cast<int>(i);
      result.timings.stage_nanos = stage_timer.ElapsedNanos();
      return result;
    }
  }
  result.timings.stage_nanos = stage_timer.ElapsedNanos();

  // Write-ahead: the batch is durable before it becomes visible.
  RELVIEW_FAILPOINT("service.crash_before_journal");  // crash-armed only
  if (store_ != nullptr || journal_.has_value()) {
    Timer append_timer;
    Status st = store_ != nullptr ? store_->Append(updates)
                                  : journal_->AppendAll(updates);
    result.timings.append_nanos = append_timer.ElapsedNanos();
    if (!st.ok()) {
      if (mutated) translator_.InstallDatabase(std::move(saved));
      metrics_.RecordBatchRolledBack();
      result.status = std::move(st);
      result.detail = "journal append failed; batch rolled back";
      return result;
    }
  }
  RELVIEW_FAILPOINT("service.crash_before_publish");  // crash-armed only

  metrics_.RecordBatchCommitted();
  Publish(++version_);
  metrics_.SetEngineGauges(translator_.engine_stats());

  // Checkpoint cadence: once the replay debt crosses the configured
  // threshold, snapshot the committed state and compact. A checkpoint
  // failure never fails the batch — it is already durable in the journal;
  // the debt simply keeps accruing until a checkpoint succeeds.
  if (store_ != nullptr && store_->options().checkpoint_every > 0 &&
      store_->compaction_lag() >= store_->options().checkpoint_every) {
    Result<uint64_t> ckpt = CheckpointLocked();
    if (!ckpt.ok()) {
      std::fprintf(stderr, "relview: auto-checkpoint failed: %s\n",
                   ckpt.status().ToString().c_str());
    }
  }
  return result;
}

BatchResult UpdateService::ApplyBatchGrouped(
    const std::vector<ViewUpdate>& updates) {
  BatchResult result;
  uint64_t my_target = 0;
  std::shared_ptr<const ViewSnapshot> snap;
  {
    MutexLock writer(writer_mu_);
    // Fail fast once the commit path is poisoned: staging more work would
    // only apply in-memory state that can never be made durable.
    {
      MutexLock commit(commit_mu_);
      if (!commit_poison_.ok()) {
        result.status = commit_poison_;
        result.detail = "group commit poisoned by an earlier fsync failure";
        return result;
      }
    }
    Relation saved = translator_.database();
    bool mutated = false;
    Timer stage_timer;
    for (size_t i = 0; i < updates.size(); ++i) {
      Status st = StageOne(updates[i], static_cast<int>(i), &result.detail,
                           &mutated);
      if (!st.ok()) {
        if (mutated) translator_.InstallDatabase(std::move(saved));
        metrics_.RecordBatchRolledBack();
        result.status = std::move(st);
        result.failed_index = static_cast<int>(i);
        result.timings.stage_nanos = stage_timer.ElapsedNanos();
        return result;
      }
    }
    result.timings.stage_nanos = stage_timer.ElapsedNanos();
    // Stage the records in the journal WITHOUT fsyncing: durability is
    // the commit leader's job (AwaitDurable below). A failed append rolls
    // this batch — and only this batch — off the file (Journal's
    // RollBackTo truncates back to the batch's own start offset, so
    // earlier unsynced batches are untouched).
    RELVIEW_FAILPOINT("commit.crash_before_append");  // crash-armed only
    Timer append_timer;
    Status st = group_store_->AppendUnsynced(updates);
    result.timings.append_nanos = append_timer.ElapsedNanos();
    if (!st.ok()) {
      if (mutated) translator_.InstallDatabase(std::move(saved));
      metrics_.RecordBatchRolledBack();
      result.status = std::move(st);
      result.detail = "journal append failed; batch rolled back";
      return result;
    }
    my_target = group_store_->seq();
    snap = BuildSnapshotLocked(++version_);
    metrics_.SetEngineGauges(translator_.engine_stats());

    // Checkpoint cadence, evaluated at stage time exactly like the
    // fsync-per-batch path. The checkpoint may cover records whose fsync
    // has not happened yet; that is safe — the checkpoint file is itself
    // durable before it counts, closed segments are fsync'd before
    // rotation, and recovering "too much" never violates the
    // acked ⊆ recovered contract (see DESIGN.md §13).
    if (group_store_->options().checkpoint_every > 0 &&
        group_store_->compaction_lag() >=
            group_store_->options().checkpoint_every) {
      Result<uint64_t> ckpt = CheckpointLocked();
      if (!ckpt.ok()) {
        std::fprintf(stderr, "relview: auto-checkpoint failed: %s\n",
                     ckpt.status().ToString().c_str());
      }
    }
  }  // writer_mu_ released: the next batch stages while we await the fsync

  Status durable = AwaitDurable(my_target, &result.timings);
  if (!durable.ok()) {
    // The batch is applied in memory and its bytes may or may not reach
    // disk, but the caller is NOT acked — under acked ⊆ recovered that is
    // a correct (if unhappy) outcome. The poisoned store refuses all
    // further writes until reopened.
    result.status = std::move(durable);
    result.detail = "group commit fsync failed; batch not acknowledged";
    return result;
  }
  metrics_.RecordBatchCommitted();
  PublishIfNewer(std::move(snap));
  return result;
}

namespace {
/// Emits the watchdog's forced "commit_stall" wide event. Out of line so
/// both reporting sites (stuck waiter, slow leader) stay readable.
void EmitCommitStallEvent(uint64_t leader_trace, uint64_t pending_batches,
                          int64_t stalled_nanos, const char* who) {
  WideEvent ev;
  ev.kind = "commit_stall";
  ev.trace_id = leader_trace;
  ev.admission = who;  // "waiter" or "leader": which side saw the stall
  ev.cohort_batches = pending_batches;
  ev.commit_wait_nanos = stalled_nanos;
  ev.total_nanos = stalled_nanos;
  ev.detail = "group-commit leader exceeded the stall deadline";
  GlobalWideEvents().Emit(ev, /*forced=*/true);
}
}  // namespace

Status UpdateService::AwaitDurable(uint64_t target, BatchTimings* timings) {
  // The whole call is commit-wait from the batch's point of view: time it
  // once, spans notwithstanding (leading the fsync *is* waiting for it).
  Timer wait_timer;
  const int64_t stall_nanos =
      static_cast<int64_t>(commit_stall_ms_) * 1'000'000;
  commit_mu_.lock();
  if (target > commit_appended_) commit_appended_ = target;
  ++commit_pending_batches_;
  commit_pending_gauge_.store(commit_pending_batches_,
                              std::memory_order_relaxed);
  while (true) {
    if (!commit_poison_.ok()) {
      Status st = commit_poison_;
      commit_mu_.unlock();
      timings->commit_wait_nanos = wait_timer.ElapsedNanos();
      return st;
    }
    if (commit_synced_ >= target) {
      commit_mu_.unlock();
      timings->commit_wait_nanos = wait_timer.ElapsedNanos();
      return Status::OK();
    }
    if (commit_leader_active_) {
      // A leader's fsync is in flight; it (or a successor) will cover us.
      // The rider span stamps the leader's trace id so this request's
      // trace points at the fsync it shared.
      const uint64_t leader_trace = commit_leader_trace_;
      if (stall_nanos <= 0) {
        RELVIEW_TRACE_SPAN_N(ride, "commit.await_durable");
        if (leader_trace != 0) {
          ride.AddArg("leader_trace", leader_trace);
        }
        commit_cv_.Wait(commit_mu_);
        continue;
      }
      // Watchdog armed: bounded wait, then report a stalled leader once
      // per leader episode (commit_stall_reported_ dedups N waiters).
      RELVIEW_TRACE_SPAN_N(ride, "commit.await_durable");
      if (leader_trace != 0) {
        ride.AddArg("leader_trace", leader_trace);
      }
      const bool woke = commit_cv_.WaitFor(
          commit_mu_, std::chrono::nanoseconds(stall_nanos));
      if (!woke && commit_leader_active_ && !commit_stall_reported_) {
        commit_stall_reported_ = true;
        const uint64_t pending = commit_pending_batches_;
        const uint64_t lt = commit_leader_trace_;
        commit_mu_.unlock();
        metrics_.RecordCommitStall();
        EmitCommitStallEvent(lt, pending, wait_timer.ElapsedNanos(),
                             "waiter");
        commit_mu_.lock();
      }
      continue;
    }
    // Lead one cohort: fsync everything appended so far, on behalf of
    // every waiter whose target it covers.
    commit_leader_active_ = true;
    commit_stall_reported_ = false;
    commit_leader_trace_ = CurrentTraceContext().trace_id;
    commit_mu_.unlock();
    Timer lead_timer;
    // The leader span owns the shared fsync: every rider's wait resolves
    // to this one span in the leader's trace.
    RELVIEW_TRACE_SPAN_N(fsync_span, "commit.cohort_fsync");
    if (group_window_us_ > 0) {
      // Optional gathering window — trade a bounded latency bump for
      // larger cohorts at low concurrency.
      std::this_thread::sleep_for(std::chrono::microseconds(group_window_us_));
    }
    commit_mu_.lock();
    const uint64_t cohort_target = commit_appended_;
    const uint64_t cohort_batches = commit_pending_batches_;
    commit_pending_batches_ = 0;
    commit_pending_gauge_.store(0, std::memory_order_relaxed);
    commit_mu_.unlock();
    fsync_span.AddArg("cohort_batches", cohort_batches);
    Status st = group_store_->Sync();  // the one fsync for the whole cohort
    fsync_span.Finish();
    const int64_t led_nanos = lead_timer.ElapsedNanos();
    commit_mu_.lock();
    commit_leader_active_ = false;
    commit_leader_trace_ = 0;
    if (st.ok()) {
      if (cohort_target > commit_synced_) commit_synced_ = cohort_target;
      if (cohort_batches > 0) metrics_.RecordCommitCohort(cohort_batches);
      timings->cohort_batches = cohort_batches;
      timings->led_cohort = true;
    } else {
      commit_poison_ = st;
    }
    // Leader self-report: with no concurrent waiter parked (single-writer
    // traffic) the watchdog above never runs, so a leader that blew the
    // deadline reports its own episode.
    bool report_self = false;
    if (stall_nanos > 0 && led_nanos > stall_nanos &&
        !commit_stall_reported_) {
      commit_stall_reported_ = true;
      report_self = true;
    }
    commit_cv_.NotifyAll();
    if (report_self) {
      const uint64_t lt = CurrentTraceContext().trace_id;
      commit_mu_.unlock();
      metrics_.RecordCommitStall();
      EmitCommitStallEvent(lt, cohort_batches, led_nanos, "leader");
      commit_mu_.lock();
    }
    // Loop: on success our own target is now covered (it was <=
    // commit_appended_ when we sampled); on failure the poison check
    // fails us out.
  }
}

std::shared_ptr<const ViewSnapshot> UpdateService::BuildSnapshotLocked(
    uint64_t version) {
  auto snap = std::make_shared<ViewSnapshot>();
  snap->version = version;
  snap->database = std::make_shared<const Relation>(translator_.database());
  // Served from the engine's incrementally maintained view when live
  // (identical row order to Project — both are canonical).
  Result<Relation> view = translator_.ViewInstance();
  RELVIEW_DCHECK(view.ok(), "snapshot on an unbound translator");
  snap->view = std::make_shared<const Relation>(std::move(*view));
  return snap;
}

void UpdateService::PublishIfNewer(std::shared_ptr<const ViewSnapshot> snap) {
  RELVIEW_TRACE_SPAN("svc.publish");
  const uint64_t version = snap->version;
  WriterMutexLock lock(snapshot_mu_);
  if (version <= published_version_.load(std::memory_order_relaxed)) {
    return;  // an acked waiter with a newer (cumulative) snapshot won
  }
  snapshot_ = std::move(snap);
  published_version_.store(version, std::memory_order_release);
}

Result<uint64_t> UpdateService::Checkpoint() {
  MutexLock writer(writer_mu_);
  return CheckpointLocked();
}

Result<uint64_t> UpdateService::CheckpointLocked() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "checkpointing needs the durable store (ServiceOptions::store)");
  }
  return store_->WriteCheckpoint(translator_.database());
}

Status UpdateService::Apply(const ViewUpdate& update) {
  BatchResult r = ApplyBatch({update});
  return r.status;
}

namespace {

/// Merges a preformatted label block (`{service="...",shard="N"}`) into
/// every sample so several tenants' — and several shards' — otherwise-
/// identical family names stay distinguishable in one Prometheus
/// exposition. Summary _count/_sum suffix markers keep their suffix and
/// gain the block after it (`_count{service="...",shard="N"}`), which the
/// renderer emits verbatim after the family name.
std::vector<MetricFamily> TagFamilies(std::vector<MetricFamily> families,
                                      const std::string& tag) {
  for (MetricFamily& f : families) {
    for (MetricSample& s : f.samples) {
      if (!s.labels.empty() && s.labels[0] == '_') {
        s.labels += tag;
        continue;
      }
      if (s.labels.empty()) {
        s.labels = tag;
      } else {
        // {kind="insert"} -> {service="...",kind="insert"}
        s.labels = tag.substr(0, tag.size() - 1) + "," + s.labels.substr(1);
      }
    }
  }
  return families;
}

}  // namespace

void UpdateService::RegisterTelemetry(TelemetryRegistry* registry,
                                      const std::string& section,
                                      int shard) const {
  // Snapshot the construction-time plumbing once, under the writer mutex,
  // so the scrape lambdas below never touch writer-guarded members: the
  // store pointer and the fsync histograms are fixed at Create time, and
  // every value the lambdas read through them is a relaxed atomic.
  const DurableStore* store = nullptr;
  std::shared_ptr<const LatencyHistogram> journal_fsync;
  std::shared_ptr<const LatencyHistogram> store_fsync;
  {
    MutexLock writer(writer_mu_);
    store = store_.get();
    if (journal_.has_value()) journal_fsync = journal_->fsync_latency();
    if (store != nullptr) store_fsync = store->fsync_latency();
  }
  // Registration key and sample labels: `section` alone for a standalone
  // service, plus a `_shard_<n>` key suffix and a `shard="<n>"` sample
  // label for one shard of a sharded service.
  const std::string key =
      shard < 0 ? section : section + "_shard_" + std::to_string(shard);
  std::string tag;  // preformatted {label,...} block, empty = untagged
  if (section != "service") tag = Label("service", section);
  if (shard >= 0) {
    const std::string shard_tag = Label("shard", std::to_string(shard));
    tag = tag.empty() ? shard_tag
                      : tag.substr(0, tag.size() - 1) + "," +
                            shard_tag.substr(1);
  }
  registry->Register(key, [this, tag, store, journal_fsync, store_fsync] {
    // The whole counter walk runs under the metrics seqlock so the
    // families in one scrape are mutually consistent (kind/code rejection
    // totals agree; engine gauges are one snapshot). The fsync histograms
    // and store counters are independent relaxed atomics — approximate by
    // design — but reading them inside costs nothing.
    auto families = metrics_.ReadConsistent([&] {
      return CollectFamilies(store, journal_fsync.get(), store_fsync.get());
    });
    // The default section keeps its historic un-labelled exposition.
    return tag.empty() ? families : TagFamilies(std::move(families), tag);
  });
  registry->RegisterJson(key, [this] { return metrics_.ToJson(); });
  registry->RegisterJson(
      key == "service" ? "decisions" : key + "_decisions", [this] {
        std::string out = "{\"total\":" + std::to_string(decisions_.total());
        if (std::optional<DecisionTrace> last = decisions_.Last()) {
          out += ",\"last\":" + last->ToJson(&universe_);
        }
        out += "}";
        return out;
      });
}

std::vector<MetricFamily> UpdateService::CollectFamilies(
  const DurableStore* store, const LatencyHistogram* journal_fsync,
  const LatencyHistogram* store_fsync) const {
  std::vector<MetricFamily> out;
  MetricFamily accepted = CounterFamily(
      "relview_updates_accepted_total", "Accepted view updates by kind", 0);
  accepted.samples.clear();
  MetricFamily rejected = CounterFamily(
      "relview_updates_rejected_total", "Rejected view updates by kind", 0);
  rejected.samples.clear();
  for (int k = 0; k < ServiceMetrics::kKinds; ++k) {
    const UpdateKind kind = static_cast<UpdateKind>(k);
    const std::string label = Label("kind", UpdateKindName(kind));
    accepted.samples.push_back(
        {label, static_cast<double>(metrics_.accepted(kind))});
    rejected.samples.push_back(
        {label, static_cast<double>(metrics_.rejected(kind))});
  }
  out.push_back(std::move(accepted));
  out.push_back(std::move(rejected));
  MetricFamily by_code = CounterFamily("relview_rejections_total",
                                       "Rejections by status code", 0);
  by_code.samples.clear();
  for (int c = 1; c < ServiceMetrics::kStatusCodes; ++c) {
    const StatusCode code = static_cast<StatusCode>(c);
    by_code.samples.push_back(
        {Label("code", StatusCodeName(code)),
         static_cast<double>(metrics_.rejected_by_code(code))});
  }
  out.push_back(std::move(by_code));
  out.push_back(CounterFamily(
      "relview_batches_committed_total", "Committed batches",
      static_cast<double>(metrics_.batches_committed())));
  out.push_back(CounterFamily(
      "relview_batches_rolled_back_total", "Rolled-back batches",
      static_cast<double>(metrics_.batches_rolled_back())));
  out.push_back(CounterFamily("relview_snapshots_total", "Snapshot reads",
                              static_cast<double>(metrics_.snapshots())));
  out.push_back(CounterFamily(
      "relview_replayed_updates_total", "Journal records replayed",
      static_cast<double>(metrics_.replayed())));
  out.push_back(CounterFamily(
      "relview_decisions_total", "Decision traces recorded",
      static_cast<double>(decisions_.total())));
  out.push_back(GaugeFamily("relview_published_version",
                            "Version of the published snapshot",
                            static_cast<double>(version())));
  out.push_back(SummaryFamily("relview_check_latency_seconds",
                              "Translatability-check latency",
                              metrics_.check_latency()));
  out.push_back(SummaryFamily("relview_apply_latency_seconds",
                              "Translation-apply latency",
                              metrics_.apply_latency()));
  const EngineStats eng = metrics_.engine_gauges();
#define RELVIEW_ENGINE_GAUGE_FAMILY(name)                            \
  out.push_back(GaugeFamily("relview_engine_" #name,                 \
                          "Incremental-engine counter " #name,     \
                          static_cast<double>(eng.name)));
  RELVIEW_ENGINE_STAT_FIELDS(RELVIEW_ENGINE_GAUGE_FAMILY)
#undef RELVIEW_ENGINE_GAUGE_FAMILY
  // Group-commit observability: cohort sizes are raw batch counts, so the
  // family is built by hand rather than via SummaryFamily (which scales
  // its samples from nanoseconds to seconds).
  const LatencyHistogram& cohorts = metrics_.commit_cohorts();
  MetricFamily cohort_fam{
      "relview_commit_cohort_size",
      "Batches made durable per group-commit leader fsync", "summary", {}};
  cohort_fam.samples.push_back(
      {"{quantile=\"0.5\"}", static_cast<double>(cohorts.QuantileNanos(0.5))});
  cohort_fam.samples.push_back(
      {"{quantile=\"0.99\"}",
       static_cast<double>(cohorts.QuantileNanos(0.99))});
  cohort_fam.samples.push_back(
      {"{quantile=\"1\"}", static_cast<double>(cohorts.max_nanos())});
  cohort_fam.samples.push_back(
      {"_count", static_cast<double>(cohorts.count())});
  cohort_fam.samples.push_back(
      {"_sum", static_cast<double>(cohorts.total_nanos())});
  out.push_back(std::move(cohort_fam));
  out.push_back(CounterFamily(
      "relview_commit_stalls_total",
      "Group-commit stall-watchdog firings (leader held its cohort past "
      "the commit_stall_ms deadline)",
      static_cast<double>(metrics_.commit_stalls())));
  out.push_back(GaugeFamily(
      "relview_commit_pending_batches",
      "Batches appended since the last group-commit leader sampled its "
      "cohort (pending-cohort depth)",
      static_cast<double>(
          commit_pending_gauge_.load(std::memory_order_relaxed))));
  if (journal_fsync != nullptr) {
    out.push_back(SummaryFamily("relview_journal_fsync_seconds",
                                "Journal fsync latency", *journal_fsync));
    out.push_back(CounterFamily(
        "relview_journal_fsyncs_total", "Successful journal fsyncs",
        static_cast<double>(journal_fsync->count())));
  }
  if (store != nullptr) {
    out.push_back(SummaryFamily("relview_journal_fsync_seconds",
                                "Journal fsync latency (all segments)",
                                *store_fsync));
    out.push_back(CounterFamily(
        "relview_journal_fsyncs_total", "Successful journal fsyncs",
        static_cast<double>(store->fsyncs())));
    out.push_back(GaugeFamily("relview_journal_segments",
                              "Live journal segment files",
                              static_cast<double>(store->segment_count())));
    out.push_back(GaugeFamily(
        "relview_durable_seq",
        "Accepted records made durable since the seed instance",
        static_cast<double>(store->seq())));
    out.push_back(GaugeFamily(
        "relview_checkpoint_last_seq",
        "Sequence number of the newest durable checkpoint",
        static_cast<double>(store->last_checkpoint_seq())));
    out.push_back(GaugeFamily(
        "relview_compaction_lag_records",
        "Records accepted since the last durable checkpoint (replay "
        "debt on crash)",
        static_cast<double>(store->compaction_lag())));
    out.push_back(CounterFamily(
        "relview_checkpoints_written_total",
        "Checkpoints written by this incarnation",
        static_cast<double>(store->checkpoints_written())));
    out.push_back(CounterFamily(
        "relview_segments_compacted_total",
        "Journal segments deleted by compaction",
        static_cast<double>(store->segments_compacted())));
    out.push_back(GaugeFamily(
        "relview_journal_unsynced_bytes",
        "Journal bytes staged by group commit that no leader fsync has "
        "covered yet (crash-loss exposure of the commit window)",
        static_cast<double>(store->unsynced_bytes())));
  }
  out.push_back(GaugeFamily(
      "relview_pending_writers",
      "Writers inside ApplyBatch (running or queued on the writer mutex)",
      static_cast<double>(pending_writers())));
  return out;
}

void UpdateService::Publish(uint64_t version) {
  RELVIEW_TRACE_SPAN("svc.publish");
  std::shared_ptr<const ViewSnapshot> snap = BuildSnapshotLocked(version);
  {
    WriterMutexLock lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  // Open the readers' fast-path gate only after the pointer is in place.
  published_version_.store(version, std::memory_order_release);
}

}  // namespace relview
