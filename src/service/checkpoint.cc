#include "service/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/trace.h"
#include "relational/column_store.h"
#include "service/journal.h"
#include "util/failpoint.h"

namespace relview {
namespace {

constexpr char kMagic[] = "rvckpt1";
constexpr char kMagicColumnar[] = "rvckpt2";

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

/// fsync the directory containing `path` so the rename itself is durable.
Status SyncDir(const std::string& path) {
  const std::string dir = DirOf(path);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("checkpoint: cannot open dir " + dir + ": " +
                            std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("checkpoint: dir fsync failed: " +
                            std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// write(2) the whole buffer, honoring the "checkpoint.write" failpoint
/// (error: fail before writing; short: write a prefix, then fail).
Status WriteAll(int fd, const std::string& data) {
  size_t limit = data.size();
  bool injected_fault = false;
  if (FailpointHit fp = RELVIEW_FAILPOINT("checkpoint.write")) {
    if (fp.action == FailpointAction::kError) {
      return Status::Internal("checkpoint write failed: injected EIO");
    }
    if (fp.action == FailpointAction::kShortWrite) {
      limit = fp.arg != 0 && fp.arg < limit ? fp.arg : limit / 2;
      injected_fault = true;
    }
  }
  const char* p = data.data();
  size_t left = limit;
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("checkpoint write failed: " +
                              std::string(std::strerror(errno)));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (injected_fault) {
    return Status::Internal("checkpoint write failed: injected short write");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeCheckpoint(const Relation& database, uint64_t seq,
                             CheckpointFormat format) {
  std::string body;
  if (format == CheckpointFormat::kColumnar) {
    // The checkpointed instance is a legal relation, so FromRelation can
    // only fail on dictionary exhaustion — impossible below 2^32 distinct
    // values per column, which raw 32-bit ids cannot exceed.
    Result<ColumnStore> cols = ColumnStore::FromRelation(database);
    RELVIEW_DCHECK(cols.ok(), "columnar checkpoint encode failed");
    cols->EncodeTo(&body);
  } else {
    body.reserve(static_cast<size_t>(database.size()) * 16);
    for (const Tuple& row : database.rows()) {
      for (int i = 0; i < row.arity(); ++i) {
        if (i) body += ' ';
        body += std::to_string(row[i].raw());
      }
      body += '\n';
    }
  }
  char header[96];
  std::snprintf(header, sizeof(header), "%s %llu %d %d %016llx\n",
                format == CheckpointFormat::kColumnar ? kMagicColumnar
                                                      : kMagic,
                static_cast<unsigned long long>(seq), database.arity(),
                database.size(),
                static_cast<unsigned long long>(JournalChecksum(body)));
  return header + body;
}

Status WriteCheckpoint(const std::string& path, const Relation& database,
                       uint64_t seq, CheckpointFormat format) {
  RELVIEW_TRACE_SPAN_N(span, "ckpt.write");
  span.AddArg("rows", static_cast<uint64_t>(database.size()));
  span.AddArg("seq", seq);
  std::string data = EncodeCheckpoint(database, seq, format);
  if (FailpointHit fp = RELVIEW_FAILPOINT("checkpoint.flip")) {
    if (fp.action == FailpointAction::kFlipBit && fp.arg <= data.size() &&
        fp.arg > 0) {
      data[data.size() - fp.arg] ^= 1;  // silent corruption on the way out
    }
  }

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("checkpoint: cannot open " + tmp + ": " +
                            std::strerror(errno));
  }
  Status st = WriteAll(fd, data);
  if (!st.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (RELVIEW_FAILPOINT("checkpoint.fsync")) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("checkpoint fsync failed: injected EIO");
  }
  if (::fsync(fd) != 0) {
    const Status err = Status::Internal("checkpoint fsync failed: " +
                                        std::string(std::strerror(errno)));
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  ::close(fd);

  RELVIEW_FAILPOINT("checkpoint.crash_before_rename");  // crash-armed only
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status err = Status::Internal("checkpoint rename failed: " +
                                        std::string(std::strerror(errno)));
    ::unlink(tmp.c_str());
    return err;
  }
  RELVIEW_FAILPOINT("checkpoint.crash_after_rename");  // crash-armed only
  return SyncDir(path);
}

Result<CheckpointData> ReadCheckpoint(const std::string& path,
                                      const AttrSet& attrs) {
  RELVIEW_TRACE_SPAN("ckpt.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no checkpoint at " + path);
  std::string header;
  if (!std::getline(in, header)) {
    return Status::Corruption("checkpoint " + path + ": empty file");
  }
  std::istringstream hdr(header);
  std::string magic, checksum_hex;
  unsigned long long seq = 0;
  int arity = -1, nrows = -1;
  if (!(hdr >> magic >> seq >> arity >> nrows >> checksum_hex) ||
      (magic != kMagic && magic != kMagicColumnar) || arity < 0 ||
      nrows < 0 || checksum_hex.size() != 16) {
    return Status::Corruption("checkpoint " + path + ": malformed header");
  }
  const bool columnar = magic == kMagicColumnar;
  if (arity != attrs.Count()) {
    return Status::Corruption("checkpoint " + path + ": arity " +
                              std::to_string(arity) +
                              " does not match the schema (" +
                              std::to_string(attrs.Count()) + ")");
  }
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  char want[17];
  std::snprintf(want, sizeof(want), "%016llx",
                static_cast<unsigned long long>(JournalChecksum(body)));
  if (checksum_hex != want) {
    return Status::Corruption("checkpoint " + path + ": checksum mismatch");
  }

  CheckpointData out;
  out.seq = seq;
  out.database = Relation(attrs);
  if (columnar) {
    Result<ColumnStore> cols = ColumnStore::Decode(out.database.schema(),
                                                   body);
    if (!cols.ok()) {
      return Status::Corruption("checkpoint " + path + ": " +
                                cols.status().message());
    }
    if (cols->size() != nrows) {
      return Status::Corruption("checkpoint " + path + ": expected " +
                                std::to_string(nrows) + " rows, found " +
                                std::to_string(cols->size()));
    }
    out.database = cols->ToRelation();
    return out;
  }
  std::istringstream rows(body);
  std::string line;
  int row_no = 0;
  while (std::getline(rows, line)) {
    ++row_no;
    std::istringstream cells(line);
    std::vector<Value> vals;
    vals.reserve(static_cast<size_t>(arity));
    uint32_t raw;
    while (cells >> raw) {
      vals.push_back(raw & Value::kNullTag
                         ? Value::Null(raw & ~Value::kNullTag)
                         : Value::Const(raw));
    }
    if (static_cast<int>(vals.size()) != arity) {
      return Status::Corruption("checkpoint " + path + ": row " +
                                std::to_string(row_no) + " has " +
                                std::to_string(vals.size()) + " values");
    }
    out.database.AddRow(Tuple(std::move(vals)));
  }
  if (row_no != nrows) {
    return Status::Corruption("checkpoint " + path + ": expected " +
                              std::to_string(nrows) + " rows, found " +
                              std::to_string(row_no));
  }
  return out;
}

}  // namespace relview
