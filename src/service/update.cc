#include "service/update.h"

namespace relview {

const char* UpdateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::kInsert:
      return "insert";
    case UpdateKind::kDelete:
      return "delete";
    case UpdateKind::kReplace:
      return "replace";
    case UpdateKind::kNumUpdateKinds:
      break;  // sentinel, not a real kind
  }
  return "unknown";
}

std::string ViewUpdate::ToString() const {
  std::string out = UpdateKindName(kind);
  out += " " + t1.ToString();
  if (kind == UpdateKind::kReplace) out += " -> " + t2.ToString();
  return out;
}

}  // namespace relview
