/// \file
/// ServiceMetrics: thread-safe observability for the update service —
/// monotonic accept/reject counters per update kind and per rejection
/// StatusCode, plus latency histograms for the check (translatability
/// test) and apply (translation + publish) phases. Everything is
/// lock-free atomics so the writer's hot path never blocks on a scrape.
///
/// Concurrency contract: there is deliberately no mutex here and hence no
/// RELVIEW_GUARDED_BY annotations (util/annotations.h) — the atomics ARE
/// the synchronization. Multi-counter recordings (a rejection bumps both
/// the per-kind and the per-code family; engine gauges publish a dozen
/// fields) are additionally bracketed by a seqlock (WriteScope), so a
/// scrape that reads through ReadConsistent() sees every family from the
/// same side of each recording: sum-over-kinds always equals
/// sum-over-codes in an exported snapshot. The seqlock assumes a single
/// writer at a time — recording methods that take a WriteScope are only
/// called with the service's writer_mu_ held (or before the service is
/// shared). Readers never block the writer; a reader that keeps losing
/// races falls back to one relaxed-consistent pass after a bounded number
/// of retries, so a scrape can degrade but never livelock.

#ifndef RELVIEW_SERVICE_METRICS_H_
#define RELVIEW_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.h"
#include "service/update.h"
#include "util/status.h"
#include "view/view_index.h"

namespace relview {

/// The update service's counter/latency module. All recording methods
/// are safe from any thread; reads are relaxed-consistent snapshots.
class ServiceMetrics {
 public:
  /// Per-kind counter array size, derived from the enum's sentinel value
  /// so a new kind grows the arrays instead of silently dropping counts.
  static constexpr int kKinds = static_cast<int>(UpdateKind::kNumUpdateKinds);
  /// Per-status-code counter array size; same sentinel-derived scheme.
  static constexpr int kStatusCodes =
      static_cast<int>(StatusCode::kNumStatusCodes);
  static_assert(static_cast<int>(UpdateKind::kReplace) + 1 == kKinds,
                "UpdateKind sentinel must stay last");
  static_assert(static_cast<int>(StatusCode::kCorruption) + 1 == kStatusCodes,
                "StatusCode sentinel must stay last");

  /// Counts one accepted update of `kind`.
  void RecordAccepted(UpdateKind kind);
  /// Counts one rejected update of `kind`, attributed to `code`.
  void RecordRejected(UpdateKind kind, StatusCode code);
  /// Records one translatability-check latency sample. `trace_id` (when
  /// nonzero) becomes the containing bucket's exemplar, linking the
  /// latency distribution to a concrete recorded trace.
  void RecordCheckLatency(int64_t nanos, uint64_t trace_id = 0) {
    check_latency_.RecordTraced(nanos, trace_id);
  }
  /// Records one translation+publish latency sample (exemplar as above).
  void RecordApplyLatency(int64_t nanos, uint64_t trace_id = 0) {
    apply_latency_.RecordTraced(nanos, trace_id);
  }
  /// Counts one committed batch.
  void RecordBatchCommitted() {
    batches_committed_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Counts one rolled-back batch.
  void RecordBatchRolledBack() {
    batches_rolled_back_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Records the size (in batches) of one group-commit cohort: how many
  /// ApplyBatch callers a single leader fsync made durable at once. Called
  /// by the commit leader WITHOUT the writer mutex — the histogram is
  /// lock-free atomics, and no WriteScope is taken (same single-counter
  /// discipline as RecordBatchCommitted).
  void RecordCommitCohort(uint64_t batches) {
    commit_cohorts_.Record(static_cast<int64_t>(batches));
  }
  /// Counts one group-commit stall-watchdog firing (a leader held its
  /// cohort past ServiceOptions::commit_stall_ms). Called by a stuck
  /// waiter without the writer mutex; single relaxed counter.
  void RecordCommitStall() {
    commit_stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Sharded: snapshot reads are the service's hottest path, and a single
  /// counter cache line pinged by every reader caps their scaling.
  void RecordSnapshot();
  /// Counts one update replayed from the journal during Create.
  void RecordReplayedUpdate() {
    replayed_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Publishes a snapshot of the translator's incremental-engine counters
  /// (closure cache, view index, base chase, probe parallelism). Called by
  /// the writer after each committed batch; gauges, not monotonic sums.
  void SetEngineGauges(const EngineStats& stats);

  /// Accepted updates of `kind` so far.
  uint64_t accepted(UpdateKind kind) const {
    return accepted_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  /// Rejected updates of `kind` so far.
  uint64_t rejected(UpdateKind kind) const {
    return rejected_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  /// Rejections attributed to `code` (summed over kinds).
  uint64_t rejected_by_code(StatusCode code) const {
    return rejected_by_code_[static_cast<int>(code)].load(
        std::memory_order_relaxed);
  }
  /// Accepted updates summed over kinds.
  uint64_t total_accepted() const;
  /// Rejected updates summed over kinds.
  uint64_t total_rejected() const;
  /// Batches committed so far.
  uint64_t batches_committed() const {
    return batches_committed_.load(std::memory_order_relaxed);
  }
  /// Batches rolled back so far.
  uint64_t batches_rolled_back() const {
    return batches_rolled_back_.load(std::memory_order_relaxed);
  }
  /// Snapshot() calls served (summed over shards).
  uint64_t snapshots() const;
  /// Journal records replayed during Create.
  uint64_t replayed() const {
    return replayed_.load(std::memory_order_relaxed);
  }
  /// Commit-cohort size distribution (batches per leader fsync). Raw
  /// counts, not nanoseconds — export by hand, not via SummaryFamily.
  const LatencyHistogram& commit_cohorts() const { return commit_cohorts_; }
  /// Stall-watchdog firings so far.
  uint64_t commit_stalls() const {
    return commit_stalls_.load(std::memory_order_relaxed);
  }
  /// Translatability-check latency distribution.
  const LatencyHistogram& check_latency() const { return check_latency_; }
  /// Translation+publish latency distribution.
  const LatencyHistogram& apply_latency() const { return apply_latency_; }
  /// Last-published engine counter snapshot (zeros before the first
  /// SetEngineGauges call).
  EngineStats engine_gauges() const;

  /// The whole module as a single-line JSON object (zero-valued rejection
  /// codes omitted for brevity). Seqlock-consistent: the exported counter
  /// families all come from the same side of any concurrent recording.
  std::string ToJson() const;

  /// Runs `fn` (a pure read of this object's counters returning a value)
  /// under the seqlock read protocol: retried until no WriteScope ran
  /// concurrently, so the values `fn` read are mutually consistent. After
  /// `kSeqlockMaxRetries` lost races it degrades to one relaxed-consistent
  /// run rather than livelock behind a hot writer. `fn` may run while a
  /// write is mid-flight (the torn result is discarded), so it must be
  /// side-effect free.
  template <typename Fn>
  auto ReadConsistent(Fn&& fn) const -> decltype(fn()) {
    for (int i = 0; i < kSeqlockMaxRetries; ++i) {
      // Boehm's seqlock-reader recipe: acquire-load the sequence, do the
      // (relaxed) payload reads, then an acquire fence orders those reads
      // before the re-check of the sequence word.
      const uint64_t s1 = seq_.load(std::memory_order_acquire);
      if (s1 & 1) continue;  // writer mid-scope
      auto result = fn();
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) return result;
    }
    return fn();
  }

  /// RAII seqlock write scope bracketing one multi-counter recording.
  /// Single-writer only (see the class comment): scopes must never nest or
  /// run concurrently.
  class WriteScope {
   public:
    explicit WriteScope(const ServiceMetrics& m) : m_(m) {
      // Odd sequence = write in progress. The release fence orders the
      // sequence bump before the payload stores that follow.
      m_.seq_.store(m_.seq_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
    }
    ~WriteScope() {
      // Back to even; release-published so a reader that sees the new
      // sequence also sees every payload store of the scope.
      m_.seq_.store(m_.seq_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
    }
    WriteScope(const WriteScope&) = delete;
    WriteScope& operator=(const WriteScope&) = delete;

   private:
    const ServiceMetrics& m_;
  };

 private:
  /// Seqlock read retries before degrading to a relaxed read.
  static constexpr int kSeqlockMaxRetries = 64;

  std::array<std::atomic<uint64_t>, kKinds> accepted_{};
  std::array<std::atomic<uint64_t>, kKinds> rejected_{};
  std::array<std::atomic<uint64_t>, kStatusCodes> rejected_by_code_{};
  struct alignas(64) ShardedCounter {
    std::atomic<uint64_t> value{0};
  };
  static constexpr int kSnapshotShards = 16;

  std::atomic<uint64_t> batches_committed_{0};
  std::atomic<uint64_t> batches_rolled_back_{0};
  std::array<ShardedCounter, kSnapshotShards> snapshot_shards_{};
  std::atomic<uint64_t> replayed_{0};
  LatencyHistogram check_latency_;
  LatencyHistogram apply_latency_;
  /// Batches per group-commit leader fsync (counts, not latencies).
  LatencyHistogram commit_cohorts_;
  std::atomic<uint64_t> commit_stalls_{0};
  /// Engine gauges, mapped 1:1 onto EngineStats' uint64_t fields via the
  /// RELVIEW_ENGINE_STAT_FIELDS X-macro (the hit rate is recomputed from
  /// hits/misses on read so the whole snapshot stays lock-free). The count
  /// is derived from the same list, so a new EngineStats field can't be
  /// dropped here.
#define RELVIEW_ENGINE_COUNT_FIELD(name) +1
  static constexpr int kEngineGauges =
      0 RELVIEW_ENGINE_STAT_FIELDS(RELVIEW_ENGINE_COUNT_FIELD);
#undef RELVIEW_ENGINE_COUNT_FIELD
  std::array<std::atomic<uint64_t>, kEngineGauges> engine_gauges_{};
  /// Seqlock word: odd while a WriteScope is open. Mutable so the const
  /// recording path (scrapes run on const refs) can take read retries.
  mutable std::atomic<uint64_t> seq_{0};

  /// ToJson body; relaxed reads, wrapped by ReadConsistent in ToJson().
  std::string ToJsonRelaxed() const;
};

}  // namespace relview

#endif  // RELVIEW_SERVICE_METRICS_H_
