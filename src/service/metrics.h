// ServiceMetrics: thread-safe observability for the update service —
// monotonic accept/reject counters per update kind and per rejection
// StatusCode, plus latency histograms for the check (translatability test)
// and apply (translation + publish) phases. Everything is lock-free
// atomics so the writer's hot path never blocks on a scrape.

#ifndef RELVIEW_SERVICE_METRICS_H_
#define RELVIEW_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "service/update.h"
#include "util/status.h"
#include "view/view_index.h"

namespace relview {

/// A log2-bucketed latency histogram (nanoseconds). Bucket i counts
/// samples with latency in [2^i, 2^(i+1)) ns; quantile estimates report
/// the upper edge of the containing bucket.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;  // up to ~2^40 ns ≈ 18 minutes

  void Record(int64_t nanos);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_nanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  uint64_t max_nanos() const {
    return max_nanos_.load(std::memory_order_relaxed);
  }
  double mean_nanos() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(total_nanos()) / n;
  }
  /// Upper-edge estimate of the q-quantile, q in [0,1].
  uint64_t QuantileNanos(double q) const;

  /// {"count":3,"mean_ns":120.0,"p50_ns":128,"p99_ns":256,"max_ns":201}
  std::string ToJson() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
  std::atomic<uint64_t> max_nanos_{0};
};

class ServiceMetrics {
 public:
  static constexpr int kKinds = 3;        // insert / delete / replace
  static constexpr int kStatusCodes = 7;  // StatusCode enumerators

  void RecordAccepted(UpdateKind kind);
  void RecordRejected(UpdateKind kind, StatusCode code);
  void RecordCheckLatency(int64_t nanos) { check_latency_.Record(nanos); }
  void RecordApplyLatency(int64_t nanos) { apply_latency_.Record(nanos); }
  void RecordBatchCommitted() {
    batches_committed_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordBatchRolledBack() {
    batches_rolled_back_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Sharded: snapshot reads are the service's hottest path, and a single
  /// counter cache line pinged by every reader caps their scaling.
  void RecordSnapshot();
  void RecordReplayedUpdate() {
    replayed_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Publishes a snapshot of the translator's incremental-engine counters
  /// (closure cache, view index, base chase, probe parallelism). Called by
  /// the writer after each committed batch; gauges, not monotonic sums.
  void SetEngineGauges(const EngineStats& stats);

  uint64_t accepted(UpdateKind kind) const {
    return accepted_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t rejected(UpdateKind kind) const {
    return rejected_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t rejected_by_code(StatusCode code) const {
    return rejected_by_code_[static_cast<int>(code)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_accepted() const;
  uint64_t total_rejected() const;
  uint64_t batches_committed() const {
    return batches_committed_.load(std::memory_order_relaxed);
  }
  uint64_t batches_rolled_back() const {
    return batches_rolled_back_.load(std::memory_order_relaxed);
  }
  uint64_t snapshots() const;
  uint64_t replayed() const {
    return replayed_.load(std::memory_order_relaxed);
  }
  const LatencyHistogram& check_latency() const { return check_latency_; }
  const LatencyHistogram& apply_latency() const { return apply_latency_; }
  /// Last-published engine counter snapshot (zeros before the first
  /// SetEngineGauges call).
  EngineStats engine_gauges() const;

  /// The whole module as a single-line JSON object (zero-valued rejection
  /// codes omitted for brevity).
  std::string ToJson() const;

 private:
  std::array<std::atomic<uint64_t>, kKinds> accepted_{};
  std::array<std::atomic<uint64_t>, kKinds> rejected_{};
  std::array<std::atomic<uint64_t>, kStatusCodes> rejected_by_code_{};
  struct alignas(64) ShardedCounter {
    std::atomic<uint64_t> value{0};
  };
  static constexpr int kSnapshotShards = 16;

  std::atomic<uint64_t> batches_committed_{0};
  std::atomic<uint64_t> batches_rolled_back_{0};
  std::array<ShardedCounter, kSnapshotShards> snapshot_shards_{};
  std::atomic<uint64_t> replayed_{0};
  LatencyHistogram check_latency_;
  LatencyHistogram apply_latency_;
  /// Engine gauges, index-mapped onto EngineStats' uint64_t fields (the
  /// hit rate is recomputed from hits/misses on read so the whole snapshot
  /// stays lock-free).
  static constexpr int kEngineGauges = 11;
  std::array<std::atomic<uint64_t>, kEngineGauges> engine_gauges_{};
};

}  // namespace relview

#endif  // RELVIEW_SERVICE_METRICS_H_
