#include "service/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/small_util.h"
#include "view/translator.h"

namespace relview {
namespace {

constexpr char kMagic[] = "rv1";

// Validates one complete record line (terminator already stripped).
// Returns an empty string and sets *payload on success; otherwise a
// description of the damage.
std::string ValidateRecordLine(const std::string& line,
                               std::string* payload) {
  std::istringstream hdr(line);
  std::string magic, checksum_hex;
  size_t len = 0;
  if (!(hdr >> magic >> len >> checksum_hex) || magic != kMagic ||
      checksum_hex.size() != 16) {
    return "malformed header";
  }
  // Records are written with single-space separators, so the payload
  // offset is exactly the reconstructed header's length.
  const size_t payload_at =
      magic.size() + 1 + std::to_string(len).size() + 1 + 16 + 1;
  if (payload_at > line.size() || line.size() - payload_at != len) {
    return "length mismatch (torn write?)";
  }
  *payload = line.substr(payload_at);
  char want[17];
  std::snprintf(want, sizeof(want), "%016llx",
                static_cast<unsigned long long>(JournalChecksum(*payload)));
  if (checksum_hex != want) return "checksum mismatch";
  return "";
}

// Re-verifies the file's final record before a writer may extend it. A
// clean journal always ends in a newline-terminated record whose
// checksum validates; anything else means the previous incarnation died
// mid-append (or the disk flipped bits) and the caller must repair via
// Journal::Read first. Reads only a bounded tail window.
Status VerifyTailRecord(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::OK();  // no file yet: nothing to verify
  const std::streamoff size = in.tellg();
  if (size == 0) return Status::OK();  // empty journal is clean

  // A 1 MiB window covers any ordinary tail, but a single record can
  // legitimately outgrow it (huge-arity tuples), so keep doubling until
  // the window holds a whole record or spans the file.
  for (std::streamoff window = 1 << 20;; window *= 2) {
    const std::streamoff start = size > window ? size - window : 0;
    in.clear();
    in.seekg(start);
    std::string tail(static_cast<size_t>(size - start), '\0');
    if (!in.read(tail.data(), static_cast<std::streamsize>(tail.size()))) {
      return Status::Internal("journal " + path + ": cannot read tail");
    }
    if (tail.back() != '\n') {
      return Status::Corruption("journal " + path +
                                ": final record is torn (no terminator); "
                                "repair with Journal::Read before appending");
    }
    tail.pop_back();
    const size_t nl = tail.find_last_of('\n');
    if (nl == std::string::npos && start > 0) continue;  // grow the window
    const std::string line =
        nl == std::string::npos ? tail : tail.substr(nl + 1);
    std::string payload;
    const std::string bad = ValidateRecordLine(line, &payload);
    if (!bad.empty()) {
      return Status::Corruption("journal " + path + ": final record is "
                                "invalid (" + bad +
                                "); repair with Journal::Read before "
                                "appending");
    }
    return Status::OK();
  }
}

std::string HeaderFor(const std::string& payload) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %zu %016llx ", kMagic, payload.size(),
                static_cast<unsigned long long>(JournalChecksum(payload)));
  return buf;
}

std::string EncodeTuple(const Tuple& t) {
  std::string out = std::to_string(t.arity());
  for (const Value& v : t.values()) out += " " + std::to_string(v.raw());
  return out;
}

Result<Tuple> DecodeTuple(std::istringstream* in) {
  int arity = -1;
  if (!(*in >> arity) || arity < 0) {
    return Status::InvalidArgument("journal payload: bad tuple arity");
  }
  std::vector<Value> vals;
  vals.reserve(arity);
  for (int i = 0; i < arity; ++i) {
    uint32_t raw;
    if (!(*in >> raw)) {
      return Status::InvalidArgument("journal payload: short tuple");
    }
    vals.push_back(raw & Value::kNullTag ? Value::Null(raw & ~Value::kNullTag)
                                         : Value::Const(raw));
  }
  return Tuple(std::move(vals));
}

}  // namespace

uint64_t JournalChecksum(const std::string& data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string EncodeJournalPayload(const ViewUpdate& u) {
  switch (u.kind) {
    case UpdateKind::kInsert:
      return "I " + EncodeTuple(u.t1);
    case UpdateKind::kDelete:
      return "D " + EncodeTuple(u.t1);
    case UpdateKind::kReplace:
      return "R " + EncodeTuple(u.t1) + " " + EncodeTuple(u.t2);
    case UpdateKind::kNumUpdateKinds:
      break;  // sentinel, not a real kind
  }
  return "";
}

Result<ViewUpdate> DecodeJournalPayload(const std::string& payload) {
  std::istringstream in(payload);
  std::string kind;
  if (!(in >> kind)) {
    return Status::InvalidArgument("journal payload: empty record");
  }
  if (kind == "I" || kind == "D") {
    RELVIEW_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&in));
    return kind == "I" ? ViewUpdate::Insert(std::move(t))
                       : ViewUpdate::Delete(std::move(t));
  }
  if (kind == "R") {
    RELVIEW_ASSIGN_OR_RETURN(Tuple t1, DecodeTuple(&in));
    RELVIEW_ASSIGN_OR_RETURN(Tuple t2, DecodeTuple(&in));
    return ViewUpdate::Replace(std::move(t1), std::move(t2));
  }
  return Status::InvalidArgument("journal payload: unknown kind '" + kind +
                                 "'");
}

Result<Journal> Journal::Open(
    const std::string& path,
    std::shared_ptr<LatencyHistogram> fsync_latency) {
  // O_APPEND resumes after the last byte, so never extend a file whose
  // final record does not verify: appends after a torn tail would be
  // unreachable to replay (everything past the first bad record drops).
  RELVIEW_RETURN_IF_ERROR(VerifyTailRecord(path));
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open journal " + path + ": " +
                                   std::strerror(errno));
  }
  Journal j(path, fd);
  if (fsync_latency != nullptr) j.fsync_latency_ = std::move(fsync_latency);
  return j;
}

Journal::Journal(Journal&& o) noexcept
    : path_(std::move(o.path_)),
      fd_(o.fd_),
      poisoned_(o.poisoned_.load(std::memory_order_relaxed)),
      unsynced_bytes_(o.unsynced_bytes_.load(std::memory_order_relaxed)),
      fsync_latency_(std::move(o.fsync_latency_)) {
  o.fd_ = -1;
}

Journal& Journal::operator=(Journal&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(o.path_);
    fd_ = o.fd_;
    poisoned_.store(o.poisoned_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    unsynced_bytes_.store(o.unsynced_bytes_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    fsync_latency_ = std::move(o.fsync_latency_);
    o.fd_ = -1;
  }
  return *this;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Journal::Append(const ViewUpdate& u) {
  return AppendAll({u});
}

Status Journal::RollBackTo(off_t batch_start, Status cause) {
  // Undo the partially persisted batch: O_APPEND keeps writing at EOF,
  // so a torn record left behind would silently orphan every later
  // committed batch at replay (Read stops at the first bad record), and
  // a fully written but un-fsync'd batch would replay as accepted after
  // the service rolled it back in memory.
  if (::ftruncate(fd_, batch_start) == 0 && ::fsync(fd_) == 0) {
    return cause;
  }
  // The file still holds bytes the caller thinks were undone. Refuse all
  // further appends from this handle; reopening re-runs tail
  // verification and repair.
  poisoned_.store(true, std::memory_order_release);
  return Status::Internal(cause.message() + "; rollback to offset " +
                          std::to_string(batch_start) + " failed (" +
                          std::strerror(errno) +
                          "), journal poisoned until reopen");
}

Status Journal::AppendAll(const std::vector<ViewUpdate>& updates) {
  return AppendRecords(updates, /*sync=*/true);
}

Status Journal::AppendAllUnsynced(const std::vector<ViewUpdate>& updates) {
  return AppendRecords(updates, /*sync=*/false);
}

Status Journal::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("journal not open");
  if (poisoned_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "journal " + path_ + ": poisoned by an earlier failure; reopen "
        "(with repair) before syncing");
  }
  Timer fsync_timer;
  // Claim the unsynced-byte gauge BEFORE the fsync: bytes appended while
  // the fsync is in flight then stay counted as unsynced even though the
  // syscall may in fact cover them — over-reporting exposure is the safe
  // direction for a durability gauge (mirrors the seq_-before-fsync rule
  // in DurableStore::Sync).
  const uint64_t claimed = unsynced_bytes_.exchange(0,
                                                    std::memory_order_relaxed);
  if (RELVIEW_FAILPOINT("commit.fsync")) {
    // No truncation here: appenders may be writing concurrently, and we
    // cannot know which bytes the failed fsync lost. Poison and force a
    // reopen instead (fsyncgate semantics).
    poisoned_.store(true, std::memory_order_release);
    unsynced_bytes_.fetch_add(claimed, std::memory_order_relaxed);
    return Status::Internal("journal group-commit fsync failed: injected "
                            "EIO; journal poisoned until reopen");
  }
  if (::fsync(fd_) != 0) {
    poisoned_.store(true, std::memory_order_release);
    unsynced_bytes_.fetch_add(claimed, std::memory_order_relaxed);
    return Status::Internal("journal group-commit fsync failed: " +
                            std::string(std::strerror(errno)) +
                            "; journal poisoned until reopen");
  }
  fsync_latency_->Record(fsync_timer.ElapsedNanos());
  return Status::OK();
}

Status Journal::AppendRecords(const std::vector<ViewUpdate>& updates,
                              bool sync) {
  if (fd_ < 0) return Status::FailedPrecondition("journal not open");
  if (poisoned_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "journal " + path_ + ": an earlier failed append could not be "
        "rolled back; reopen (with repair) before appending");
  }
  if (updates.empty()) return Status::OK();
  RELVIEW_TRACE_SPAN_N(span, "journal.append");
  span.AddArg("records", updates.size());
  std::string block;
  for (const ViewUpdate& u : updates) {
    const std::string payload = EncodeJournalPayload(u);
    block += HeaderFor(payload);
    block += payload;
    block += '\n';
  }
  // Where this batch starts, so a failed append can be rolled off the
  // file and the journal still ends at a committed record boundary.
  const off_t batch_start = ::lseek(fd_, 0, SEEK_END);
  if (batch_start < 0) {
    return Status::Internal("journal seek failed: " +
                            std::string(std::strerror(errno)));
  }
  // Fault injection on the durability path (docs/OPERATIONS.md):
  // "journal.write" error fails the batch cleanly; a short write models a
  // crash mid-append — the torn record stays on disk for the repair path
  // and the handle is poisoned, exactly as if the process had died.
  size_t limit = block.size();
  bool injected_torn_tail = false;
  if (FailpointHit fp = RELVIEW_FAILPOINT("journal.write")) {
    if (fp.action == FailpointAction::kError) {
      return Status::Internal("journal write failed: injected EIO");
    }
    if (fp.action == FailpointAction::kShortWrite) {
      limit = fp.arg != 0 && fp.arg < limit ? fp.arg : limit / 2;
      injected_torn_tail = true;
    }
  }
  const char* p = block.data();
  size_t left = limit;
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return RollBackTo(batch_start,
                        Status::Internal("journal write failed: " +
                                         std::string(std::strerror(errno))));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (injected_torn_tail) {
    poisoned_.store(true, std::memory_order_release);
    return Status::Internal("journal write failed: injected short write "
                            "(torn tail kept, handle poisoned)");
  }
  RELVIEW_FAILPOINT("journal.crash_after_write");  // crash-armed only
  if (!sync) {
    unsynced_bytes_.fetch_add(block.size(), std::memory_order_relaxed);
    return Status::OK();
  }
  Timer fsync_timer;
  if (RELVIEW_FAILPOINT("journal.fsync")) {
    return RollBackTo(batch_start,
                      Status::Internal("journal fsync failed: injected EIO"));
  }
  if (::fsync(fd_) != 0) {
    return RollBackTo(batch_start,
                      Status::Internal("journal fsync failed: " +
                                       std::string(std::strerror(errno))));
  }
  fsync_latency_->Record(fsync_timer.ElapsedNanos());
  return Status::OK();
}

Result<JournalReadResult> Journal::Read(const std::string& path,
                                        bool repair) {
  JournalReadResult out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no journal yet: empty history

  uint64_t good_bytes = 0;  // offset of the end of the last valid record
  std::string line;
  int record_no = 0;
  while (std::getline(in, line)) {
    ++record_no;
    const bool has_newline = !in.eof();
    // Header: "rv1 <len> <checksum16> " followed by exactly <len> payload
    // bytes. Anything else is a torn or corrupt record.
    std::string payload;
    std::string bad = ValidateRecordLine(line, &payload);
    if (bad.empty() && !has_newline) bad = "missing record terminator";
    if (bad.empty()) {
      Result<ViewUpdate> u = DecodeJournalPayload(payload);
      if (!u.ok()) {
        bad = u.status().message();
      } else {
        out.updates.push_back(std::move(*u));
        good_bytes += line.size() + 1;
        continue;
      }
    }
    out.truncated = true;
    out.warning = "journal " + path + ": record " +
                  std::to_string(record_no) + " is invalid (" + bad +
                  "); truncating to " + std::to_string(out.updates.size()) +
                  " complete record(s)";
    break;
  }
  in.close();
  if (out.truncated) {
    std::fprintf(stderr, "relview: %s\n", out.warning.c_str());
    if (repair && ::truncate(path.c_str(), static_cast<off_t>(good_bytes)) !=
                      0) {
      return Status::Internal("journal truncate failed: " +
                              std::string(std::strerror(errno)));
    }
  }
  return out;
}

Result<JournalReadResult> Journal::Replay(const std::string& path,
                                          ViewTranslator* translator) {
  if (translator == nullptr || !translator->bound()) {
    return Status::FailedPrecondition(
        "journal replay needs a translator bound to the seed instance");
  }
  RELVIEW_ASSIGN_OR_RETURN(JournalReadResult records, Read(path));
  int index = 0;
  for (const ViewUpdate& u : records.updates) {
    Status st;
    switch (u.kind) {
      case UpdateKind::kInsert:
        st = translator->Insert(u.t1);
        break;
      case UpdateKind::kDelete:
        st = translator->Delete(u.t1);
        break;
      case UpdateKind::kReplace:
        st = translator->Replace(u.t1, u.t2);
        break;
      case UpdateKind::kNumUpdateKinds:
        st = Status::Internal("journal replay: sentinel update kind");
        break;
    }
    if (!st.ok()) {
      // A journaled update was accepted once; per fact (ii) its replay from
      // the same seed must succeed. Rejection means journal/seed mismatch.
      return Status::Internal(
          "journal replay diverged at record " + std::to_string(index) +
          " (" + u.ToString() + "): " + st.ToString());
    }
    ++index;
  }
  return records;
}

}  // namespace relview
