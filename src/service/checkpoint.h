/// \file
/// Checkpoint: a checksummed, atomically-installed snapshot of the served
/// database instance, tagged with the journal sequence number it covers.
///
/// A checkpoint bounds recovery work and journal growth: startup loads the
/// newest valid checkpoint and replays only the journal suffix past its
/// sequence number, and segments fully covered by a durable checkpoint can
/// be compacted away (see recovery.h).
///
/// File formats (text, one file per checkpoint). Row format:
///
///   rvckpt1 <seq> <arity> <nrows> <fnv64-hex>\n
///   <v> <v> ... <v>\n        (one line of raw Value ids per row, nrows
///   ...                       lines; this block is the checksummed body)
///
/// Columnar format — the same header fields under a new magic, with the
/// body swapped for a ColumnStore dictionary-page block (column_store.h):
///
///   rvckpt2 <seq> <arity> <nrows> <fnv64-hex>\n
///   rvcols1 <arity> <nrows>\n
///   <dict-size> <raw> <raw> ...\n      (one line per column)
///   <code> <code> ...\n                (one line per column)
///
/// Each repeated value costs one small code integer instead of a full raw
/// id, so columnar checkpoints shrink with duplication the way the
/// in-memory columnar store does. Readers auto-detect the magic, so a
/// store can switch formats (StoreOptions::columnar_checkpoints) without
/// migration: old checkpoints keep recovering, new ones are written in
/// the new format.
///
/// <seq> is the number of journal records the snapshot covers (i.e. the
/// state equals seed + the first <seq> journaled updates), and <fnv64-hex>
/// is the 16-hex-digit FNV-1a hash of the body bytes. Writes are
/// crash-atomic: the file is written to "<path>.tmp", fsync'd, renamed
/// over <path>, and the directory fsync'd — a crash at any point leaves
/// either the old state or the new, never a half-written checkpoint that
/// parses. Readers verify magic, counts and checksum and return a typed
/// kCorruption status on any mismatch, so recovery can fall back to an
/// older checkpoint or a full replay.
#ifndef RELVIEW_SERVICE_CHECKPOINT_H_
#define RELVIEW_SERVICE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "relational/relation.h"
#include "util/status.h"

namespace relview {

/// On-disk body layout of a checkpoint file.
enum class CheckpointFormat {
  kRows,      ///< rvckpt1: one line of raw Value ids per row.
  kColumnar,  ///< rvckpt2: dictionary pages + per-column code vectors.
};

/// A decoded checkpoint: the snapshot relation plus the journal sequence
/// number it covers.
struct CheckpointData {
  /// Journal records covered: the snapshot equals seed + first `seq`
  /// accepted updates.
  uint64_t seq = 0;
  /// The database instance at `seq` (schema = the attrs passed on read).
  Relation database{AttrSet()};
};

/// Serializes `database` (covering `seq` journal records) into the
/// checkpoint wire format, header + checksummed body.
std::string EncodeCheckpoint(const Relation& database, uint64_t seq,
                             CheckpointFormat format = CheckpointFormat::kRows);

/// Writes a checkpoint crash-atomically: tmp file + fsync + rename +
/// directory fsync. Failpoints: "checkpoint.write" (error|short),
/// "checkpoint.fsync" (error), "checkpoint.flip" (flip a body bit before
/// writing), "checkpoint.crash_before_rename" / "
/// checkpoint.crash_after_rename" (crash).
Status WriteCheckpoint(const std::string& path, const Relation& database,
                       uint64_t seq,
                       CheckpointFormat format = CheckpointFormat::kRows);

/// Reads and fully verifies the checkpoint at `path`, rebuilding the
/// relation over `attrs` (which must match the stored arity). The format
/// is auto-detected from the magic, so callers need not know how a file
/// was written. Returns kNotFound when the file does not exist and
/// kCorruption when any integrity check fails (bad magic, count mismatch,
/// checksum mismatch, truncated body).
Result<CheckpointData> ReadCheckpoint(const std::string& path,
                                      const AttrSet& attrs);

}  // namespace relview

#endif  // RELVIEW_SERVICE_CHECKPOINT_H_
