#include "service/metrics.h"

#include <cstdio>

namespace relview {
namespace {

int BucketOf(int64_t nanos) {
  if (nanos <= 1) return 0;
  int b = 63 - __builtin_clzll(static_cast<uint64_t>(nanos));
  return b >= LatencyHistogram::kBuckets ? LatencyHistogram::kBuckets - 1 : b;
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencyHistogram::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(nanos),
                         std::memory_order_relaxed);
  AtomicMax(&max_nanos_, static_cast<uint64_t>(nanos));
}

uint64_t LatencyHistogram::QuantileNanos(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return b >= 63 ? ~0ULL : (2ULL << b);  // upper edge
  }
  return max_nanos();
}

std::string LatencyHistogram::ToJson() const {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%llu,\"mean_ns\":%.1f,\"p50_ns\":%llu,\"p99_ns\":%llu,"
      "\"max_ns\":%llu}",
      static_cast<unsigned long long>(count()), mean_nanos(),
      static_cast<unsigned long long>(QuantileNanos(0.50)),
      static_cast<unsigned long long>(QuantileNanos(0.99)),
      static_cast<unsigned long long>(max_nanos()));
  return buf;
}

void ServiceMetrics::RecordSnapshot() {
  // Each thread sticks to one shard, so concurrent readers mostly bump
  // distinct (padded) cache lines.
  static std::atomic<uint32_t> next_shard{0};
  static thread_local uint32_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) %
      kSnapshotShards;
  snapshot_shards_[shard].value.fetch_add(1, std::memory_order_relaxed);
}

uint64_t ServiceMetrics::snapshots() const {
  uint64_t n = 0;
  for (const ShardedCounter& s : snapshot_shards_) {
    n += s.value.load(std::memory_order_relaxed);
  }
  return n;
}

void ServiceMetrics::RecordAccepted(UpdateKind kind) {
  accepted_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::RecordRejected(UpdateKind kind, StatusCode code) {
  rejected_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
  rejected_by_code_[static_cast<int>(code)].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t ServiceMetrics::total_accepted() const {
  uint64_t n = 0;
  for (const auto& c : accepted_) n += c.load(std::memory_order_relaxed);
  return n;
}

uint64_t ServiceMetrics::total_rejected() const {
  uint64_t n = 0;
  for (const auto& c : rejected_) n += c.load(std::memory_order_relaxed);
  return n;
}

std::string ServiceMetrics::ToJson() const {
  std::string out = "{";
  auto add = [&out](const std::string& key, uint64_t v) {
    if (out.size() > 1) out += ",";
    out += "\"" + key + "\":" + std::to_string(v);
  };
  for (int k = 0; k < kKinds; ++k) {
    const UpdateKind kind = static_cast<UpdateKind>(k);
    add(std::string("accepted_") + UpdateKindName(kind), accepted(kind));
    add(std::string("rejected_") + UpdateKindName(kind), rejected(kind));
  }
  for (int c = 0; c < kStatusCodes; ++c) {
    const uint64_t n =
        rejected_by_code_[c].load(std::memory_order_relaxed);
    if (n == 0) continue;
    add(std::string("rejected_code_") +
            StatusCodeName(static_cast<StatusCode>(c)),
        n);
  }
  add("batches_committed", batches_committed());
  add("batches_rolled_back", batches_rolled_back());
  add("snapshots", snapshots());
  add("replayed_updates", replayed());
  out += ",\"check_latency\":" + check_latency_.ToJson();
  out += ",\"apply_latency\":" + apply_latency_.ToJson();
  out += "}";
  return out;
}

}  // namespace relview
