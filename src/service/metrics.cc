#include "service/metrics.h"

#include <cstdio>

namespace relview {
namespace {

int BucketOf(int64_t nanos) {
  if (nanos <= 1) return 0;
  int b = 63 - __builtin_clzll(static_cast<uint64_t>(nanos));
  return b >= LatencyHistogram::kBuckets ? LatencyHistogram::kBuckets - 1 : b;
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencyHistogram::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(nanos),
                         std::memory_order_relaxed);
  AtomicMax(&max_nanos_, static_cast<uint64_t>(nanos));
}

uint64_t LatencyHistogram::QuantileNanos(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return b >= 63 ? ~0ULL : (2ULL << b);  // upper edge
  }
  return max_nanos();
}

std::string LatencyHistogram::ToJson() const {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%llu,\"mean_ns\":%.1f,\"p50_ns\":%llu,\"p99_ns\":%llu,"
      "\"max_ns\":%llu}",
      static_cast<unsigned long long>(count()), mean_nanos(),
      static_cast<unsigned long long>(QuantileNanos(0.50)),
      static_cast<unsigned long long>(QuantileNanos(0.99)),
      static_cast<unsigned long long>(max_nanos()));
  return buf;
}

void ServiceMetrics::RecordSnapshot() {
  // Each thread sticks to one shard, so concurrent readers mostly bump
  // distinct (padded) cache lines.
  static std::atomic<uint32_t> next_shard{0};
  static thread_local uint32_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) %
      kSnapshotShards;
  snapshot_shards_[shard].value.fetch_add(1, std::memory_order_relaxed);
}

uint64_t ServiceMetrics::snapshots() const {
  uint64_t n = 0;
  for (const ShardedCounter& s : snapshot_shards_) {
    n += s.value.load(std::memory_order_relaxed);
  }
  return n;
}

void ServiceMetrics::RecordAccepted(UpdateKind kind) {
  accepted_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::RecordRejected(UpdateKind kind, StatusCode code) {
  rejected_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
  rejected_by_code_[static_cast<int>(code)].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t ServiceMetrics::total_accepted() const {
  uint64_t n = 0;
  for (const auto& c : accepted_) n += c.load(std::memory_order_relaxed);
  return n;
}

void ServiceMetrics::SetEngineGauges(const EngineStats& stats) {
  const uint64_t values[kEngineGauges] = {
      stats.closure_hits,   stats.closure_misses, stats.index_reuses,
      stats.index_rebuilds, stats.base_reuses,    stats.base_rebuilds,
      stats.base_extends,   stats.base_shrinks,   stats.probes_run,
      stats.probes_screened, stats.probes_parallel};
  for (int i = 0; i < kEngineGauges; ++i) {
    engine_gauges_[i].store(values[i], std::memory_order_relaxed);
  }
}

EngineStats ServiceMetrics::engine_gauges() const {
  EngineStats s;
  uint64_t values[kEngineGauges];
  for (int i = 0; i < kEngineGauges; ++i) {
    values[i] = engine_gauges_[i].load(std::memory_order_relaxed);
  }
  s.closure_hits = values[0];
  s.closure_misses = values[1];
  s.index_reuses = values[2];
  s.index_rebuilds = values[3];
  s.base_reuses = values[4];
  s.base_rebuilds = values[5];
  s.base_extends = values[6];
  s.base_shrinks = values[7];
  s.probes_run = values[8];
  s.probes_screened = values[9];
  s.probes_parallel = values[10];
  const uint64_t lookups = s.closure_hits + s.closure_misses;
  s.closure_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(s.closure_hits) /
                         static_cast<double>(lookups);
  return s;
}

uint64_t ServiceMetrics::total_rejected() const {
  uint64_t n = 0;
  for (const auto& c : rejected_) n += c.load(std::memory_order_relaxed);
  return n;
}

std::string ServiceMetrics::ToJson() const {
  std::string out = "{";
  auto add = [&out](const std::string& key, uint64_t v) {
    if (out.size() > 1) out += ",";
    out += "\"" + key + "\":" + std::to_string(v);
  };
  for (int k = 0; k < kKinds; ++k) {
    const UpdateKind kind = static_cast<UpdateKind>(k);
    add(std::string("accepted_") + UpdateKindName(kind), accepted(kind));
    add(std::string("rejected_") + UpdateKindName(kind), rejected(kind));
  }
  for (int c = 0; c < kStatusCodes; ++c) {
    const uint64_t n =
        rejected_by_code_[c].load(std::memory_order_relaxed);
    if (n == 0) continue;
    add(std::string("rejected_code_") +
            StatusCodeName(static_cast<StatusCode>(c)),
        n);
  }
  add("batches_committed", batches_committed());
  add("batches_rolled_back", batches_rolled_back());
  add("snapshots", snapshots());
  add("replayed_updates", replayed());
  const EngineStats eng = engine_gauges();
  add("closure_cache_hits", eng.closure_hits);
  add("closure_cache_misses", eng.closure_misses);
  {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.4f", eng.closure_hit_rate);
    out += ",\"closure_cache_hit_rate\":";
    out += rate;
  }
  add("view_index_reuses", eng.index_reuses);
  add("view_index_rebuilds", eng.index_rebuilds);
  add("base_chase_reuses", eng.base_reuses);
  add("base_chase_rebuilds", eng.base_rebuilds);
  add("base_chase_extends", eng.base_extends);
  add("base_chase_shrinks", eng.base_shrinks);
  add("probes_run", eng.probes_run);
  add("probes_screened", eng.probes_screened);
  add("probes_parallel", eng.probes_parallel);
  out += ",\"check_latency\":" + check_latency_.ToJson();
  out += ",\"apply_latency\":" + apply_latency_.ToJson();
  out += "}";
  return out;
}

}  // namespace relview
