#include "service/metrics.h"

#include <cstdio>

namespace relview {

void ServiceMetrics::RecordSnapshot() {
  // Each thread sticks to one shard, so concurrent readers mostly bump
  // distinct (padded) cache lines.
  static std::atomic<uint32_t> next_shard{0};
  static thread_local uint32_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) %
      kSnapshotShards;
  snapshot_shards_[shard].value.fetch_add(1, std::memory_order_relaxed);
}

uint64_t ServiceMetrics::snapshots() const {
  uint64_t n = 0;
  for (const ShardedCounter& s : snapshot_shards_) {
    n += s.value.load(std::memory_order_relaxed);
  }
  return n;
}

void ServiceMetrics::RecordAccepted(UpdateKind kind) {
  accepted_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::RecordRejected(UpdateKind kind, StatusCode code) {
  // Two families move together; the scope keeps an exported snapshot from
  // seeing the kind bump without the code bump (or vice versa).
  WriteScope scope(*this);
  rejected_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
  rejected_by_code_[static_cast<int>(code)].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t ServiceMetrics::total_accepted() const {
  uint64_t n = 0;
  for (const auto& c : accepted_) n += c.load(std::memory_order_relaxed);
  return n;
}

void ServiceMetrics::SetEngineGauges(const EngineStats& stats) {
  // The gauges are one logical snapshot; publish them atomically as seen
  // through ReadConsistent.
  WriteScope scope(*this);
  int i = 0;
#define RELVIEW_ENGINE_STORE_FIELD(name) \
  engine_gauges_[i++].store(stats.name, std::memory_order_relaxed);
  RELVIEW_ENGINE_STAT_FIELDS(RELVIEW_ENGINE_STORE_FIELD)
#undef RELVIEW_ENGINE_STORE_FIELD
}

EngineStats ServiceMetrics::engine_gauges() const {
  EngineStats s;
  int i = 0;
#define RELVIEW_ENGINE_LOAD_FIELD(name) \
  s.name = engine_gauges_[i++].load(std::memory_order_relaxed);
  RELVIEW_ENGINE_STAT_FIELDS(RELVIEW_ENGINE_LOAD_FIELD)
#undef RELVIEW_ENGINE_LOAD_FIELD
  const uint64_t lookups = s.closure_hits + s.closure_misses;
  s.closure_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(s.closure_hits) /
                         static_cast<double>(lookups);
  return s;
}

uint64_t ServiceMetrics::total_rejected() const {
  uint64_t n = 0;
  for (const auto& c : rejected_) n += c.load(std::memory_order_relaxed);
  return n;
}

std::string ServiceMetrics::ToJson() const {
  return ReadConsistent([this] { return ToJsonRelaxed(); });
}

std::string ServiceMetrics::ToJsonRelaxed() const {
  std::string out = "{";
  auto add = [&out](const std::string& key, uint64_t v) {
    if (out.size() > 1) out += ",";
    out += "\"" + key + "\":" + std::to_string(v);
  };
  for (int k = 0; k < kKinds; ++k) {
    const UpdateKind kind = static_cast<UpdateKind>(k);
    add(std::string("accepted_") + UpdateKindName(kind), accepted(kind));
    add(std::string("rejected_") + UpdateKindName(kind), rejected(kind));
  }
  for (int c = 0; c < kStatusCodes; ++c) {
    const uint64_t n =
        rejected_by_code_[c].load(std::memory_order_relaxed);
    if (n == 0) continue;
    add(std::string("rejected_code_") +
            StatusCodeName(static_cast<StatusCode>(c)),
        n);
  }
  add("batches_committed", batches_committed());
  add("batches_rolled_back", batches_rolled_back());
  add("snapshots", snapshots());
  add("replayed_updates", replayed());
  const EngineStats eng = engine_gauges();
  add("closure_cache_hits", eng.closure_hits);
  add("closure_cache_misses", eng.closure_misses);
  {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.4f", eng.closure_hit_rate);
    out += ",\"closure_cache_hit_rate\":";
    out += rate;
  }
  add("view_index_reuses", eng.index_reuses);
  add("view_index_rebuilds", eng.index_rebuilds);
  add("base_chase_reuses", eng.base_reuses);
  add("base_chase_rebuilds", eng.base_rebuilds);
  add("base_chase_extends", eng.base_extends);
  add("base_chase_shrinks", eng.base_shrinks);
  add("probes_run", eng.probes_run);
  add("probes_screened", eng.probes_screened);
  add("probes_parallel", eng.probes_parallel);
  add("component_rows_rechased", eng.component_rows_rechased);
  add("max_component_size", eng.max_component_size);
  out += ",\"check_latency\":" + check_latency_.ToJson();
  out += ",\"apply_latency\":" + apply_latency_.ToJson();
  out += "}";
  return out;
}

}  // namespace relview
