/// \file
/// UpdateService: the concurrent, journaled serving layer over
/// ViewTranslator.
///
/// Concurrency model — single writer, many readers:
///   * Writers (Apply / ApplyBatch) are serialized by a writer mutex and
///     drive the translator's check-and-apply mutators directly, so the
///     incremental engine's view index and base-chase fixpoint stay warm
///     across the whole stream. A batch saves the database relation first
///     and reinstalls it on any rejection, so the committed state (and
///     every outstanding snapshot) is untouched unless the batch commits.
///   * Readers call Snapshot() and get an immutable, versioned view of the
///     database and its X-projection behind shared_ptrs. Publishing a new
///     version is a pointer swap under a short exclusive lock, so readers
///     never wait on translatability checks or translations — they at most
///     contend for the microseconds of the swap itself.
///
/// Batches are all-or-nothing: if any update in the batch is rejected, the
/// staged copy is discarded, the committed state is untouched, and the
/// BatchResult reports which update failed and why (the Theorem 3/8/9
/// verdict). On success the batch is journaled (fsync'd) *before* the new
/// state is published — see journal.h for why replay is sound.

#ifndef RELVIEW_SERVICE_UPDATE_SERVICE_H_
#define RELVIEW_SERVICE_UPDATE_SERVICE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/provenance.h"
#include "obs/telemetry.h"
#include "service/journal.h"
#include "service/metrics.h"
#include "service/recovery.h"
#include "service/update.h"
#include "util/annotations.h"
#include "util/status.h"
#include "view/translator.h"

namespace relview {

/// An immutable, versioned observation of the served state. Cheap to copy
/// (two shared_ptrs); stays valid however many writes land afterwards.
struct ViewSnapshot {
  /// Commit count when this snapshot was published (0 = seed).
  uint64_t version = 0;
  std::shared_ptr<const Relation> view;      ///< pi_X(database)
  std::shared_ptr<const Relation> database;  ///< full instance over U
};

/// Per-stage wall-clock attribution for one ApplyBatch call, filled in as
/// the batch moves through the pipeline. The sharded layer sums the
/// per-shard values and adds the fan-out fields, so the net layer's wide
/// event (obs/wide_event.h) reads one struct regardless of topology.
struct BatchTimings {
  int64_t stage_nanos = 0;     ///< Translatability checks + staging.
  int64_t append_nanos = 0;    ///< Journal append (fsync excluded when
                               ///< group commit defers it).
  int64_t commit_wait_nanos = 0;  ///< Waiting for / running the cohort
                                  ///< fsync (or the inline fsync's share
                                  ///< of append on the non-grouped path).
  uint64_t cohort_batches = 0;  ///< Cohort size this batch rode in
                                ///< (0 = no group commit involved).
  bool led_cohort = false;      ///< This thread ran the cohort fsync.
  // Fan-out attribution, filled by ShardedService::ApplyBatch:
  uint64_t shard_mask = 0;   ///< Bit i set = shard i received updates.
  int shards_touched = 0;
  int straggler_shard = -1;  ///< Slowest shard in the fan-out.
  int64_t straggler_nanos = 0;
};

/// Outcome of ApplyBatch.
struct BatchResult {
  /// OK on commit; the first failing update's status otherwise.
  Status status;
  /// Index of the rejected update within the batch, -1 on success.
  int failed_index = -1;
  /// The rejected update's translatability verdict / diagnostic.
  std::string detail;
  /// Where the batch's wall-clock went (valid on success and failure).
  BatchTimings timings;

  /// True when the whole batch committed.
  bool ok() const { return status.ok(); }
};

/// Persistence configuration for UpdateService::Create.
struct ServiceOptions {
  /// When non-empty, accepted updates are write-ahead journaled here and
  /// any existing records are replayed against the seed state on Create.
  /// Legacy single-file mode: no rotation, no checkpoints; prefer
  /// `store.dir` for anything long-running.
  std::string journal_path;
  /// When store.dir is non-empty, the service persists through a
  /// DurableStore instead: rotated journal segments plus periodic
  /// checkpoints, recovered on Create as newest-valid-checkpoint +
  /// journal-suffix replay. Mutually exclusive with journal_path.
  StoreOptions store;
  /// Cross-batch group commit (requires store.dir): concurrent ApplyBatch
  /// callers stage and append under the writer mutex but defer the fsync
  /// to a commit *leader* — the first waiter to find no leader active
  /// fsyncs once for every batch appended so far and wakes the whole
  /// cohort. Each caller is still acknowledged only after its own records
  /// are durable; what changes is that one fsync can cover many batches
  /// (fsyncs/batch < 1 under concurrency). With a single writer thread the
  /// path degenerates to fsync-per-batch, same as the default.
  bool group_commit = false;
  /// Optional leader gathering window in microseconds: before sampling
  /// its cohort the leader sleeps this long so more concurrent batches
  /// can append behind it. 0 (default) syncs immediately — concurrency
  /// alone already forms cohorts because appends accumulate while the
  /// previous leader's fsync is in flight.
  uint32_t group_window_us = 0;
  /// Group-commit stall watchdog: when > 0, a waiter stuck behind an
  /// active leader for longer than this deadline (a hung fsync, a leader
  /// descheduled mid-cohort) bumps relview_commit_stalls_total and forces
  /// a "commit_stall" wide event through the sampler — once per leader
  /// episode, not once per waiter. 0 disables the watchdog.
  uint32_t commit_stall_ms = 0;
};

/// The serving layer: a single-writer/multi-reader facade over a bound
/// ViewTranslator with versioned snapshots, write-ahead journaling and
/// (with `ServiceOptions::store`) checkpointed crash recovery.
class UpdateService {
 public:
  /// Wraps a bound translator. When options name a journal, existing
  /// records are replayed first (recovering a previous incarnation's
  /// state) and the journal is opened for appending.
  static Result<std::unique_ptr<UpdateService>> Create(
      ViewTranslator translator, ServiceOptions options = {});

  /// Current immutable snapshot. Never blocks on a writer's translation
  /// work; safe from any thread.
  ViewSnapshot Snapshot() const RELVIEW_EXCLUDES(snapshot_mu_);

  /// Version of the latest committed state (0 = seed, +1 per commit).
  uint64_t version() const;

  /// Applies a single update: check, journal, publish. Serialized with
  /// other writers. Returns kUntranslatable (verdict in the message) when
  /// the paper's test rejects it; the served state is then unchanged.
  Status Apply(const ViewUpdate& update) RELVIEW_EXCLUDES(writer_mu_);

  /// Applies a batch atomically. All updates validate and translate on a
  /// staged copy; one rejection rolls the whole batch back. A committed
  /// batch advances the version by exactly 1. On rejection the returned
  /// status carries the batch position (Status::batch_index()), matching
  /// BatchResult::failed_index.
  BatchResult ApplyBatch(const std::vector<ViewUpdate>& updates)
      RELVIEW_EXCLUDES(writer_mu_);

  /// Forces a checkpoint of the committed state at the current sequence
  /// number (then compacts fully-covered journal segments). Serialized
  /// with writers. Requires the checkpointed store (options.store.dir);
  /// returns FailedPrecondition otherwise. Returns the covered sequence
  /// number.
  Result<uint64_t> Checkpoint() RELVIEW_EXCLUDES(writer_mu_);

  /// The durable store backing this service, or null when running
  /// un-journaled / with the legacy single-file journal. Exposes recovery
  /// info, sequence numbers and compaction counters.
  const DurableStore* store() const { return store_.get(); }

  /// Accept/reject counters and latency histograms for this service.
  const ServiceMetrics& metrics() const { return metrics_; }

  /// Writers currently inside ApplyBatch — running or queued on the
  /// writer mutex (journal fsync time included). The network front-end's
  /// admission gate bounds this from the socket side; the gauge exposes
  /// the same queue depth as the service itself sees it.
  int pending_writers() const {
    return pending_writers_.load(std::memory_order_relaxed);
  }

  /// Per-update decision provenance: one DecisionTrace per staged update
  /// (accepted or rejected), most recent kept up to the log's capacity.
  const DecisionLog& decisions() const { return decisions_; }

  /// Registers this service's collectors with `registry` under the
  /// sections `section` (counters, latency summaries, engine gauges,
  /// journal fsync latency) and `section + "_decisions"` — with the
  /// default "service", the decisions section keeps its legacy name
  /// "decisions". Distinct section names let several services (the
  /// front-end's tenants) share one registry. The service must outlive
  /// the registry or be unregistered first. Counter families are exported
  /// seqlock-consistently (see ServiceMetrics::ReadConsistent): a scrape
  /// racing a writer never sees a rejection's kind counter without its
  /// code counter, or a half-published engine-gauge snapshot.
  /// When `shard` is >= 0 the registration key becomes
  /// `section + "_shard_<shard>"` and every sample additionally carries a
  /// `shard="<shard>"` label, so N shards of one logical service export N
  /// distinguishable per-shard families (mirroring the per-tenant
  /// `service="..."` labels).
  void RegisterTelemetry(TelemetryRegistry* registry,
                         const std::string& section = "service",
                         int shard = -1) const RELVIEW_EXCLUDES(writer_mu_);

  /// Number of journal records replayed during Create (0 without journal).
  uint64_t replayed_updates() const { return metrics_.replayed(); }

  /// The attribute universe U (immutable after Create).
  const Universe& universe() const { return universe_; }
  /// The view attributes X (immutable after Create).
  const AttrSet& view_attrs() const { return view_attrs_; }
  /// The complement attributes Y (immutable after Create).
  const AttrSet& complement_attrs() const { return complement_attrs_; }

 private:
  UpdateService(ViewTranslator translator, std::optional<Journal> journal,
                std::unique_ptr<DurableStore> store, bool group_commit,
                uint32_t group_window_us, uint32_t commit_stall_ms);

  /// Checkpoint body; caller holds writer_mu_.
  Result<uint64_t> CheckpointLocked() RELVIEW_REQUIRES(writer_mu_);

  /// The group-commit write path (see ServiceOptions::group_commit):
  /// stage + append-without-fsync under writer_mu_, then wait in
  /// AwaitDurable until a leader fsync covers this batch's records, and
  /// only then count the commit and publish the pre-built snapshot.
  BatchResult ApplyBatchGrouped(const std::vector<ViewUpdate>& updates)
      RELVIEW_EXCLUDES(writer_mu_, commit_mu_);

  /// Blocks until every store record up to `target` is fsync'd (returns
  /// OK), electing this thread as commit leader whenever none is active:
  /// the leader samples the cohort appended so far, fsyncs once for all
  /// of it outside any lock, and wakes the waiters. A failed fsync
  /// poisons the commit path (commit_poison_) and fails every current and
  /// future waiter — the store must be reopened (fsyncgate: the dirty
  /// pages may be gone, so "retry" could ack data that was never written).
  /// Fills `timings` (cohort size / led_cohort / wait duration) for the
  /// caller's BatchResult; when this thread leads, the fsync runs under a
  /// "commit.cohort_fsync" span in the *leader's* trace, and riders'
  /// "commit.await_durable" spans carry the leader's trace id — the two
  /// halves of the shared-fsync attribution.
  Status AwaitDurable(uint64_t target, BatchTimings* timings)
      RELVIEW_EXCLUDES(commit_mu_, writer_mu_);

  /// Builds (but does not install) a snapshot of the current translator
  /// state at `version`.
  std::shared_ptr<const ViewSnapshot> BuildSnapshotLocked(uint64_t version)
      RELVIEW_REQUIRES(writer_mu_);

  /// Installs `snap` unless a newer version is already published. Used by
  /// the group-commit path, where acked waiters can reach the publish
  /// step out of version order; snapshots are cumulative (each holds the
  /// full database), so installing only the newest is correct.
  void PublishIfNewer(std::shared_ptr<const ViewSnapshot> snap)
      RELVIEW_EXCLUDES(snapshot_mu_);

  /// Builds the Prometheus families for RegisterTelemetry's collector.
  /// Runs inside the metrics seqlock read protocol; pure reads only.
  std::vector<MetricFamily> CollectFamilies(
      const DurableStore* store, const LatencyHistogram* journal_fsync,
      const LatencyHistogram* store_fsync) const;

  /// Checks `u` and, when translatable, applies it to the translator in
  /// place (maintaining the engine's caches). Records metrics and pushes a
  /// DecisionTrace (batch_index = position within the originating batch);
  /// sets *mutated when the database actually changed. On rejection
  /// returns the failing status, annotated with the batch position.
  Status StageOne(const ViewUpdate& u, int batch_index, std::string* detail,
                  bool* mutated) RELVIEW_REQUIRES(writer_mu_);

  void Publish(uint64_t version) RELVIEW_REQUIRES(writer_mu_)
      RELVIEW_EXCLUDES(snapshot_mu_);

  // Writer-side authoritative state; mutated only under writer_mu_.
  mutable Mutex writer_mu_;
  ViewTranslator translator_ RELVIEW_GUARDED_BY(writer_mu_);
  std::optional<Journal> journal_ RELVIEW_GUARDED_BY(writer_mu_);
  // The pointer itself is fixed at construction (store() hands it out
  // lock-free); the *pointee's* mutating operations are writer-serialized.
  // Its counter accessors are relaxed atomics, safe from any thread — the
  // telemetry lambdas read them through a pointer copied out under the
  // lock in RegisterTelemetry.
  std::unique_ptr<DurableStore> store_ RELVIEW_PT_GUARDED_BY(writer_mu_);
  uint64_t version_ RELVIEW_GUARDED_BY(writer_mu_) = 0;

  // Group-commit coordination (ApplyBatchGrouped / AwaitDurable). The
  // commit mutex is taken only with writer_mu_ *released* — writers stage
  // under writer_mu_, drop it, then coordinate durability here, which is
  // what lets batch K+1 stage while batch K's fsync is in flight.
  const bool group_commit_;
  const uint32_t group_window_us_;
  /// Raw pointer to *store_, fixed at construction: the commit leader
  /// fsyncs through it without writer_mu_ (DurableStore::Sync is
  /// internally synchronized). Null unless group_commit_ is set.
  DurableStore* const group_store_;
  mutable Mutex commit_mu_ RELVIEW_ACQUIRED_AFTER(writer_mu_);
  mutable CondVar commit_cv_;
  /// Highest store sequence number any waiter has appended (the next
  /// leader's fsync target).
  uint64_t commit_appended_ RELVIEW_GUARDED_BY(commit_mu_) = 0;
  /// Highest sequence number a successful leader fsync has covered.
  uint64_t commit_synced_ RELVIEW_GUARDED_BY(commit_mu_) = 0;
  /// True while some thread is the commit leader (fsync in flight).
  bool commit_leader_active_ RELVIEW_GUARDED_BY(commit_mu_) = false;
  /// Batches appended since the last leader sampled its cohort; the
  /// commit-cohort histogram's raw material.
  uint64_t commit_pending_batches_ RELVIEW_GUARDED_BY(commit_mu_) = 0;
  /// Relaxed mirror of commit_pending_batches_ for the telemetry scrape
  /// (the collector must not take commit_mu_ — a hung leader would then
  /// hang /metrics too, exactly when an operator needs it).
  std::atomic<uint64_t> commit_pending_gauge_{0};
  /// Trace id of the thread currently leading the cohort fsync (0 when no
  /// leader or the leader's request is untraced): riders stamp it on
  /// their await spans so a rider's trace points at the fsync it rode.
  uint64_t commit_leader_trace_ RELVIEW_GUARDED_BY(commit_mu_) = 0;
  /// Stall watchdog (ServiceOptions::commit_stall_ms): set once a stall
  /// has been reported for the current leader episode, cleared when the
  /// leader finishes, so N stuck waiters produce one report.
  bool commit_stall_reported_ RELVIEW_GUARDED_BY(commit_mu_) = false;
  const uint32_t commit_stall_ms_;
  /// First fsync failure, sticky: every subsequent waiter fails with it.
  Status commit_poison_ RELVIEW_GUARDED_BY(commit_mu_);

  // Immutable after construction: copies of the translator's schema
  // handles, so accessors and telemetry never touch the guarded
  // translator_ off the writer thread.
  const Universe universe_;
  const AttrSet view_attrs_;
  const AttrSet complement_attrs_;

  // Reader-visible published state. snapshot_mu_ guards only the pointer;
  // published_version_ is the lock-free fast-path gate: readers re-take
  // the shared lock only when the version actually changed (see
  // Snapshot()), so a reader herd neither serializes on the rwlock word
  // nor starves the writer's exclusive acquisition. Publish runs with
  // writer_mu_ held and briefly takes snapshot_mu_, never the reverse.
  mutable SharedMutex snapshot_mu_ RELVIEW_ACQUIRED_AFTER(writer_mu_);
  std::shared_ptr<const ViewSnapshot> snapshot_ RELVIEW_GUARDED_BY(snapshot_mu_);
  std::atomic<uint64_t> published_version_{0};
  const uint64_t service_id_;

  mutable ServiceMetrics metrics_;
  DecisionLog decisions_;
  /// Writers inside ApplyBatch (running or parked on writer_mu_); see
  /// pending_writers().
  std::atomic<int> pending_writers_{0};
};

}  // namespace relview

#endif  // RELVIEW_SERVICE_UPDATE_SERVICE_H_
