/// \file
/// Journal: the service layer's write-ahead log. One text record per
/// accepted view update, appended and fsync'd *before* the update is
/// published, so that replaying the journal against the seed database
/// deterministically reproduces the served state (sound because constant-
/// complement translators are morphisms — fact (ii) of the Bancilhon–
/// Spyratos framework: translations of a serialized update sequence
/// compose).
///
/// Record format (one line per record):
///
///   rv1 <len> <fnv64-hex> <payload>\n
///
/// where <len> is the byte length of <payload> and <fnv64-hex> is the
/// 16-hex-digit FNV-1a hash of <payload>. The payload spells the update
/// with raw Value ids:
///
///   I <arity> <v...>                 insert
///   D <arity> <v...>                 delete
///   R <arity> <v...> <arity> <w...>  replace t1 -> t2
///
/// A torn or corrupt tail (partial line, length mismatch, checksum
/// mismatch) is detected on read, reported, and truncated away — never a
/// crash. Anything *after* the first bad record is dropped with it, since
/// ordering is what makes replay sound.
///
/// Journals are either standalone files (Open/Read/Replay below) or
/// segments of a rotated log managed by DurableStore (recovery.h), which
/// adds checkpoint-bounded replay and compaction on top of this format.
#ifndef RELVIEW_SERVICE_JOURNAL_H_
#define RELVIEW_SERVICE_JOURNAL_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "service/update.h"
#include "util/status.h"

namespace relview {

class ViewTranslator;

/// FNV-1a 64-bit over `data`; the journal's record checksum.
uint64_t JournalChecksum(const std::string& data);

/// Serializes `u` as a journal payload (no header, no newline).
std::string EncodeJournalPayload(const ViewUpdate& u);

/// Parses a payload produced by EncodeJournalPayload.
Result<ViewUpdate> DecodeJournalPayload(const std::string& payload);

/// Everything Journal::Read learned about one journal file.
struct JournalReadResult {
  /// The decoded records, in append order.
  std::vector<ViewUpdate> updates;
  /// True when a torn/corrupt tail was found (and truncated, if the
  /// reader was allowed to repair).
  bool truncated = false;
  /// Human-readable description of the truncation, empty otherwise.
  std::string warning;
};

/// An open, append-only journal file.
class Journal {
 public:
  /// Opens (creating if absent) `path` for appending, after verifying the
  /// integrity of the file's final record: a torn tail or a checksum
  /// mismatch yields a typed kCorruption status instead of a handle, so a
  /// writer can never extend past silent damage. Run Read() (with repair)
  /// first to recover a journal that crashed mid-append. When
  /// `fsync_latency` is non-null the journal records into it instead of a
  /// fresh histogram (so rotated segments share one distribution).
  static Result<Journal> Open(
      const std::string& path,
      std::shared_ptr<LatencyHistogram> fsync_latency = nullptr);

  /// Move-only: the moved-from journal gives up its file descriptor.
  Journal(Journal&& o) noexcept;
  /// Move assignment; closes the currently held descriptor first.
  Journal& operator=(Journal&& o) noexcept;
  Journal(const Journal&) = delete;             ///< Not copyable.
  Journal& operator=(const Journal&) = delete;  ///< Not copyable.
  /// Closes the file descriptor (appended records are already fsync'd).
  ~Journal();

  /// Path this journal appends to.
  const std::string& path() const { return path_; }

  /// Per-fsync latency distribution (one sample per Append/AppendAll).
  /// Held behind a shared_ptr so telemetry collectors survive Journal
  /// moves (the histogram itself is atomic and non-movable).
  std::shared_ptr<const LatencyHistogram> fsync_latency() const {
    return fsync_latency_;
  }

  /// Bytes appended through AppendAllUnsynced that no successful Sync()
  /// (or synced append) has covered yet — the data a crash right now
  /// would lose without violating acked ⊆ recovered (the riders were
  /// never acked). Relaxed atomic: scrape-safe from any thread.
  uint64_t unsynced_bytes() const {
    return unsynced_bytes_.load(std::memory_order_relaxed);
  }

  /// Appends one record and fsyncs.
  Status Append(const ViewUpdate& u);

  /// Appends all records with a single trailing fsync (group commit).
  /// All-or-nothing on the file: a write or fsync failure truncates the
  /// file back to the pre-batch offset (and fsyncs the truncation), so a
  /// torn or phantom record never outlives the error it reported. If
  /// even the rollback fails, the handle *poisons* itself — every
  /// subsequent append returns kFailedPrecondition until the journal is
  /// reopened (which re-verifies and repairs the tail).
  /// Failpoints: "journal.write" (error, or a short write that models a
  /// crash mid-append: the torn tail stays on disk and the handle is
  /// poisoned), "journal.crash_after_write" (crash between write and
  /// fsync), "journal.fsync" (error, rolled back like a real one).
  Status AppendAll(const std::vector<ViewUpdate>& updates);

  /// Appends all records WITHOUT the trailing fsync: the bytes are written
  /// (and a failed write is still rolled off the file, exactly as in
  /// AppendAll) but durability is deferred to a later Sync(). This is the
  /// group-commit half-step: several batches append, then one leader
  /// fsyncs for the whole cohort. Records appended through this path must
  /// not be acknowledged until a Sync() covering them returns OK.
  Status AppendAllUnsynced(const std::vector<ViewUpdate>& updates);

  /// Fsyncs everything appended so far (the group-commit leader's half).
  /// Safe to call concurrently with AppendAllUnsynced from another thread:
  /// it touches only the descriptor and atomic state, never the append
  /// offset. On fsync failure the handle poisons itself and every later
  /// append or sync fails with kFailedPrecondition — after a failed fsync
  /// the kernel may have dropped the dirty pages, so retrying could
  /// silently "succeed" without the data (the PostgreSQL fsyncgate
  /// lesson); the only safe continuation is reopen + re-verify. Records
  /// appended but never successfully synced may or may not survive a
  /// crash: they are phantoms, legal under the acked ⊆ recovered
  /// durability contract because no caller was ever acked.
  /// Failpoint: "commit.fsync" (error poisons, crash kills the process).
  Status Sync();

  /// Parses every complete record of the journal at `path`. A torn or
  /// corrupt tail is truncated from the file (when `repair` is true) and
  /// reported via the result's `truncated`/`warning` fields. A missing
  /// file reads as an empty journal.
  static Result<JournalReadResult> Read(const std::string& path,
                                        bool repair = true);

  /// Recovers state on startup: reads the journal and applies each record
  /// to `translator` (which must be bound to the seed instance). Returns
  /// kInternal if a journaled update no longer validates — an accepted
  /// record must replay deterministically (fact (ii)), so a rejection
  /// means the journal and seed have diverged; we refuse to guess.
  static Result<JournalReadResult> Replay(const std::string& path,
                                          ViewTranslator* translator);

 private:
  explicit Journal(std::string path, int fd) : path_(std::move(path)),
                                               fd_(fd) {}

  /// Truncates the file back to `batch_start` (undoing a failed batch)
  /// and returns `cause`; if the truncation itself fails, poisons the
  /// handle and reports that on top of `cause`.
  Status RollBackTo(off_t batch_start, Status cause);

  /// Shared body of AppendAll / AppendAllUnsynced: encode, write, and
  /// (when `sync` is set) fsync with rollback-on-failure.
  Status AppendRecords(const std::vector<ViewUpdate>& updates, bool sync);

  std::string path_;
  int fd_ = -1;
  /// Set when a failed append could not be rolled off the file (the tail
  /// no longer ends at a committed record boundary) or when a Sync()
  /// fsync failed (dirty pages may be gone; see Sync). Atomic because the
  /// group-commit leader syncs from a different thread than the appender.
  std::atomic<bool> poisoned_{false};
  /// See unsynced_bytes(). Mutated by the appender (adds) and the commit
  /// leader (zeroes on successful Sync), hence atomic like poisoned_.
  std::atomic<uint64_t> unsynced_bytes_{0};
  std::shared_ptr<LatencyHistogram> fsync_latency_ =
      std::make_shared<LatencyHistogram>();
};

}  // namespace relview

#endif  // RELVIEW_SERVICE_JOURNAL_H_
