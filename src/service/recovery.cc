#include "service/recovery.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"
#include "service/checkpoint.h"
#include "util/failpoint.h"
#include "view/translator.h"

namespace relview {
namespace {

constexpr char kSegmentPrefix[] = "journal-";
constexpr char kSegmentSuffix[] = ".log";
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".rvc";

/// mkdir -p: creates every missing component of `path`.
Status MakeDirs(const std::string& path) {
  std::string prefix;
  size_t begin = 0;
  while (begin <= path.size()) {
    size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    prefix = path.substr(0, end);
    begin = end + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("cannot create directory " + prefix + ": " +
                              std::strerror(errno));
    }
  }
  return Status::OK();
}

/// Parses "<prefix><16 hex digits><suffix>"; returns the hex value or
/// nullopt when `name` has a different shape.
std::optional<uint64_t> ParseSeqName(const std::string& name,
                                     const char* prefix,
                                     const char* suffix) {
  const size_t plen = std::strlen(prefix);
  const size_t slen = std::strlen(suffix);
  if (name.size() != plen + 16 + slen) return std::nullopt;
  if (name.compare(0, plen, prefix) != 0) return std::nullopt;
  if (name.compare(plen + 16, slen, suffix) != 0) return std::nullopt;
  const std::string hex = name.substr(plen, 16);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(hex.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(v);
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Applies one recovered record; a rejection means the journal and the
/// recovered base state have diverged (fact (ii) forbids this), so it is
/// surfaced as kInternal, never guessed around.
Status ApplyRecovered(ViewTranslator* translator, const ViewUpdate& u,
                      uint64_t seq) {
  Status st;
  switch (u.kind) {
    case UpdateKind::kInsert:
      st = translator->Insert(u.t1);
      break;
    case UpdateKind::kDelete:
      st = translator->Delete(u.t1);
      break;
    case UpdateKind::kReplace:
      st = translator->Replace(u.t1, u.t2);
      break;
    case UpdateKind::kNumUpdateKinds:
      st = Status::Internal("recovery: sentinel update kind");
      break;
  }
  if (!st.ok()) {
    return Status::Internal("recovery replay diverged at seq " +
                            std::to_string(seq) + " (" + u.ToString() +
                            "): " + st.ToString());
  }
  return Status::OK();
}

}  // namespace

std::string DurableStore::SegmentPath(uint64_t first_seq) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%016llx%s", kSegmentPrefix,
                static_cast<unsigned long long>(first_seq), kSegmentSuffix);
  return options_.dir + "/" + name;
}

std::string DurableStore::CheckpointPath(uint64_t seq) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%016llx%s", kCheckpointPrefix,
                static_cast<unsigned long long>(seq), kCheckpointSuffix);
  return options_.dir + "/" + name;
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    StoreOptions options, ViewTranslator* translator) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurableStore needs a data directory");
  }
  if (options.rotate_records == 0 || options.keep_checkpoints < 1) {
    return Status::InvalidArgument(
        "DurableStore: rotate_records >= 1 and keep_checkpoints >= 1");
  }
  if (translator == nullptr || !translator->bound()) {
    return Status::FailedPrecondition(
        "DurableStore recovery needs a translator bound to the seed "
        "instance");
  }
  RELVIEW_RETURN_IF_ERROR(MakeDirs(options.dir));
  std::unique_ptr<DurableStore> store(new DurableStore());
  store->options_ = std::move(options);
  RELVIEW_RETURN_IF_ERROR(store->Recover(translator));
  RELVIEW_RETURN_IF_ERROR(store->OpenActiveSegment());
  store->recovery_.segments = store->segment_count();
  return store;
}

Status DurableStore::Recover(ViewTranslator* translator) {
  RELVIEW_TRACE_SPAN_N(span, "recovery.open");

  // 1. Scan the directory: segments, checkpoints, stray tmp files.
  std::vector<uint64_t> checkpoint_seqs;
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    return Status::Internal("cannot open store directory " + options_.dir +
                            ": " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (auto seq = ParseSeqName(name, kSegmentPrefix, kSegmentSuffix)) {
      segments_.push_back(Segment{options_.dir + "/" + name, *seq, 0});
    } else if (auto cs =
                   ParseSeqName(name, kCheckpointPrefix, kCheckpointSuffix)) {
      checkpoint_seqs.push_back(*cs);
    } else if (EndsWith(name, ".tmp")) {
      // An in-flight checkpoint that never reached its rename: worthless.
      ::unlink((options_.dir + "/" + name).c_str());
      recovery_.warnings.push_back("removed in-flight tmp file " + name);
    }
  }
  ::closedir(dir);
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.first_seq < b.first_seq;
            });
  std::sort(checkpoint_seqs.begin(), checkpoint_seqs.end());

  // 2. Newest checkpoint that verifies wins; corrupt ones are skipped
  //    (and reported) so a flipped bit degrades to a longer replay, not
  //    an outage. A known-corrupt file is also unlinked and dropped from
  //    checkpoint_seqs_ — were it retained, thinning would count the dead
  //    file toward keep_checkpoints and could evict a *valid* older
  //    checkpoint instead.
  const AttrSet all = translator->universe().All();
  size_t corrupt = 0;
  for (auto it = checkpoint_seqs.rbegin(); it != checkpoint_seqs.rend();
       ++it) {
    Result<CheckpointData> ckpt = ReadCheckpoint(CheckpointPath(*it), all);
    if (ckpt.ok()) {
      translator->InstallDatabase(std::move(ckpt->database));
      recovery_.used_checkpoint = true;
      recovery_.checkpoint_seq = ckpt->seq;
      last_checkpoint_seq_.store(ckpt->seq, std::memory_order_relaxed);
      break;
    }
    recovery_.warnings.push_back("skipping checkpoint " +
                                 std::to_string(*it) + ": " +
                                 ckpt.status().ToString() + " (removed)");
    ::unlink(CheckpointPath(*it).c_str());
    ++corrupt;
  }
  // The failures form a suffix of the ascending list (newest first, stop
  // at the first success).
  checkpoint_seqs.resize(checkpoint_seqs.size() - corrupt);
  checkpoint_seqs_ = std::move(checkpoint_seqs);
  const uint64_t ckpt_seq = recovery_.checkpoint_seq;

  // 3. Replay the journal suffix past the checkpoint. Segments fully
  //    covered by it (their successor starts at or before ckpt_seq) are
  //    not even read; the first replayed segment may straddle the
  //    checkpoint, in which case the covered prefix is skipped.
  RELVIEW_TRACE_SPAN_N(replay_span, "recovery.replay");
  size_t start = 0;
  while (start + 1 < segments_.size() &&
         segments_[start + 1].first_seq <= ckpt_seq) {
    ++start;
  }
  uint64_t recovered_seq = ckpt_seq;
  for (size_t i = start; i < segments_.size(); ++i) {
    Segment& seg = segments_[i];
    const bool is_last = i + 1 == segments_.size();
    if (i == start) {
      if (seg.first_seq > ckpt_seq) {
        return Status::Corruption(
            "journal gap: records [" + std::to_string(ckpt_seq) + ", " +
            std::to_string(seg.first_seq) + ") are on no segment and no "
            "checkpoint covers them");
      }
    } else if (seg.first_seq != recovered_seq) {
      return Status::Corruption("journal gap: segment " + seg.path +
                                " starts at " +
                                std::to_string(seg.first_seq) +
                                " but the previous segment ends at " +
                                std::to_string(recovered_seq));
    }
    // Only the final segment may legitimately carry a torn tail (the
    // crash signature); truncation earlier in the chain would silently
    // drop records that later segments build on.
    RELVIEW_ASSIGN_OR_RETURN(JournalReadResult read,
                             Journal::Read(seg.path, /*repair=*/is_last));
    if (read.truncated && !is_last) {
      return Status::Corruption("journal segment " + seg.path +
                                " is torn mid-log: " + read.warning);
    }
    if (read.truncated) {
      recovery_.warnings.push_back(read.warning);
    }
    seg.records = read.updates.size();
    const uint64_t skip = seg.first_seq < ckpt_seq
                              ? std::min<uint64_t>(ckpt_seq - seg.first_seq,
                                                   read.updates.size())
                              : 0;
    for (uint64_t r = skip; r < read.updates.size(); ++r) {
      RELVIEW_RETURN_IF_ERROR(
          ApplyRecovered(translator, read.updates[r], seg.first_seq + r));
      ++recovery_.replayed;
    }
    recovered_seq = std::max(recovered_seq, seg.first_seq + seg.records);
  }
  seq_.store(recovered_seq, std::memory_order_relaxed);
  SyncSegmentCount();
  recovery_.recovered_seq = recovered_seq;
  replay_span.AddArg("replayed", recovery_.replayed);
  span.AddArg("seq", recovered_seq);
  return Status::OK();
}

Status DurableStore::OpenActiveSegment() {
  if (!segments_.empty() &&
      segments_.back().records < options_.rotate_records) {
    // Resume the last segment (tail already repaired/verified).
    RELVIEW_ASSIGN_OR_RETURN(
        Journal j, Journal::Open(segments_.back().path, fsync_latency_));
    active_ = std::move(j);
    return Status::OK();
  }
  const uint64_t cur = seq();
  segments_.push_back(Segment{SegmentPath(cur), cur, 0});
  SyncSegmentCount();
  RELVIEW_ASSIGN_OR_RETURN(
      Journal j, Journal::Open(segments_.back().path, fsync_latency_));
  active_ = std::move(j);
  return Status::OK();
}

Status DurableStore::Append(const std::vector<ViewUpdate>& updates) {
  if (!active_.has_value()) {
    return Status::FailedPrecondition("durable store not open");
  }
  if (updates.empty()) return Status::OK();
  if (segments_.back().records >= options_.rotate_records) {
    RELVIEW_TRACE_SPAN("journal.rotate");
    active_.reset();  // close the full segment; its records are fsync'd
    const uint64_t cur = seq();
    segments_.push_back(Segment{SegmentPath(cur), cur, 0});
    SyncSegmentCount();
    RELVIEW_ASSIGN_OR_RETURN(
        Journal j, Journal::Open(segments_.back().path, fsync_latency_));
    active_ = std::move(j);
  }
  RELVIEW_RETURN_IF_ERROR(active_->AppendAll(updates));
  segments_.back().records += updates.size();
  seq_.fetch_add(updates.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status DurableStore::AppendUnsynced(const std::vector<ViewUpdate>& updates) {
  if (!active_.has_value()) {
    return Status::FailedPrecondition("durable store not open");
  }
  if (updates.empty()) return Status::OK();
  if (segments_.back().records >= options_.rotate_records) {
    RELVIEW_TRACE_SPAN("journal.rotate");
    // Rotation swaps the handle the commit leader fsyncs through, so it
    // excludes Sync(). The retiring segment may hold records no leader
    // has synced yet — fsync it before closing, or they could be lost
    // with no Sync() left that reaches them.
    MutexLock lock(commit_sync_mu_);
    RELVIEW_RETURN_IF_ERROR(active_->Sync());
    active_.reset();
    const uint64_t cur = seq();
    segments_.push_back(Segment{SegmentPath(cur), cur, 0});
    SyncSegmentCount();
    RELVIEW_ASSIGN_OR_RETURN(
        Journal j, Journal::Open(segments_.back().path, fsync_latency_));
    active_ = std::move(j);
    synced_through_ = cur;
  }
  RELVIEW_RETURN_IF_ERROR(active_->AppendAllUnsynced(updates));
  segments_.back().records += updates.size();
  seq_.fetch_add(updates.size(), std::memory_order_relaxed);
  // Mirror the active journal's unsynced-byte count for scrapes (which
  // must not read through active_ — rotation swaps it).
  unsynced_bytes_.store(active_->unsynced_bytes(), std::memory_order_relaxed);
  return Status::OK();
}

Status DurableStore::Sync() {
  MutexLock lock(commit_sync_mu_);
  if (!active_.has_value()) {
    return Status::FailedPrecondition("durable store not open");
  }
  // Read seq_ BEFORE the fsync: records appended while the fsync is in
  // flight may or may not be covered by it, so claiming them would let a
  // later Sync skip an fsync they still need. Under-claiming merely costs
  // an extra (correct) fsync.
  const uint64_t upto = seq();
  if (synced_through_ >= upto) return Status::OK();
  RELVIEW_FAILPOINT("commit.crash_before_sync");  // crash-armed only
  RELVIEW_RETURN_IF_ERROR(active_->Sync());
  RELVIEW_FAILPOINT("commit.crash_after_sync");  // crash-armed only
  synced_through_ = upto;
  // Journal::Sync claimed its own unsynced-byte counter; re-read it (an
  // appender may have raced more bytes in) rather than storing zero.
  unsynced_bytes_.store(active_->unsynced_bytes(), std::memory_order_relaxed);
  return Status::OK();
}

Result<uint64_t> DurableStore::WriteCheckpoint(const Relation& database) {
  const uint64_t seq = this->seq();
  // Idempotent at a fixed seq: a durable checkpoint covering exactly this
  // state already exists, and pushing seq again would make thinning erase
  // two list entries for the one on-disk file, silently shrinking the
  // real fallback depth below keep_checkpoints.
  if (!checkpoint_seqs_.empty() && checkpoint_seqs_.back() == seq) {
    return seq;
  }
  RELVIEW_RETURN_IF_ERROR(::relview::WriteCheckpoint(
      CheckpointPath(seq), database, seq,
      options_.columnar_checkpoints ? CheckpointFormat::kColumnar
                                    : CheckpointFormat::kRows));
  last_checkpoint_seq_.store(seq, std::memory_order_relaxed);
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_seqs_.push_back(seq);
  RELVIEW_RETURN_IF_ERROR(Compact());
  return seq;
}

Status DurableStore::Compact() {
  RELVIEW_TRACE_SPAN_N(span, "ckpt.compact");
  // Thin old checkpoints first: keep the newest keep_checkpoints files.
  while (static_cast<int>(checkpoint_seqs_.size()) >
         options_.keep_checkpoints) {
    const uint64_t victim = checkpoint_seqs_.front();
    if (::unlink(CheckpointPath(victim).c_str()) != 0 && errno != ENOENT) {
      return Status::Internal("compaction: cannot delete checkpoint " +
                              std::to_string(victim) + ": " +
                              std::strerror(errno));
    }
    checkpoint_seqs_.erase(checkpoint_seqs_.begin());
  }
  // A segment may go only when the *oldest retained* checkpoint covers
  // every record in it — i.e. its successor begins at or before that
  // checkpoint — and the active (last) segment always stays. Bounding by
  // the oldest (not the newest) checkpoint keeps the fallback promise:
  // should the newest checkpoint later fail verification, recovery can
  // load any retained older one and still find the journal suffix past
  // it on disk. Deletion order is oldest first, so a crash
  // mid-compaction leaves a prefix-trimmed, still contiguous chain.
  const uint64_t covered =
      checkpoint_seqs_.empty() ? 0 : checkpoint_seqs_.front();
  uint64_t deleted = 0;
  while (segments_.size() >= 2 && segments_[1].first_seq <= covered) {
    if (::unlink(segments_.front().path.c_str()) != 0 && errno != ENOENT) {
      return Status::Internal("compaction: cannot delete " +
                              segments_.front().path + ": " +
                              std::strerror(errno));
    }
    segments_.erase(segments_.begin());
    SyncSegmentCount();
    segments_compacted_.fetch_add(1, std::memory_order_relaxed);
    ++deleted;
    RELVIEW_FAILPOINT("compact.crash_mid_delete");  // crash-armed only
  }
  span.AddArg("segments_deleted", deleted);
  return Status::OK();
}

}  // namespace relview
