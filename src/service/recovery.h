/// \file
/// DurableStore: crash-safe persistence for UpdateService — a rotated,
/// segmented write-ahead journal plus periodic checkpoints, with a unified
/// recovery path (newest valid checkpoint + replay of the journal suffix)
/// that replaces full-journal replay on startup.
///
/// On-disk layout (one directory per served view):
///
///   <dir>/journal-<first_seq %016x>.log    journal segments (journal.h
///                                          record format); first_seq =
///                                          global sequence number of the
///                                          segment's first record
///   <dir>/checkpoint-<seq %016x>.rvc       checkpoints (checkpoint.h
///                                          format); seq = records covered
///   <dir>/*.tmp                            in-flight checkpoint writes;
///                                          deleted on recovery
///
/// The global *sequence number* counts accepted view updates since the
/// seed instance. Invariants maintained across any crash point:
///
///   1. Segments cover a contiguous, gap-free range of sequence numbers;
///      recovery fails with kCorruption if a middle segment is torn or a
///      gap is detected (a torn *tail* of the *last* segment is the normal
///      crash signature and is repaired by truncation).
///   2. Compaction deletes a segment only when the *oldest retained*
///      durable checkpoint covers every record in it, and never deletes
///      the active segment — so the journal suffix past ANY retained
///      checkpoint is always replayable, not just the newest one.
///   3. Checkpoints are written atomically (tmp + rename + dir fsync) and
///      verified by checksum on read; a corrupt checkpoint is skipped
///      (and unlinked) and recovery falls back to the next older one
///      (ultimately the seed) — sound because of invariant 2.
#ifndef RELVIEW_SERVICE_RECOVERY_H_
#define RELVIEW_SERVICE_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "service/journal.h"
#include "util/annotations.h"
#include "util/status.h"

namespace relview {

class ViewTranslator;

/// Tuning and placement knobs for a DurableStore.
struct StoreOptions {
  /// Directory holding segments and checkpoints; created if absent.
  /// Empty disables the store (UpdateService then runs un-journaled or
  /// with the legacy single-file journal).
  std::string dir;
  /// Rotate to a fresh segment once the active one holds at least this
  /// many records. A batch is never split across segments.
  uint64_t rotate_records = 4096;
  /// Auto-checkpoint (from UpdateService) once this many records
  /// accumulate past the last checkpoint; 0 = manual checkpoints only.
  uint64_t checkpoint_every = 0;
  /// Newest valid checkpoints kept after compaction (>= 1).
  int keep_checkpoints = 2;
  /// Write new checkpoints in the columnar dictionary-page format
  /// (rvckpt2, see checkpoint.h) instead of one row of raw ids per line.
  /// Recovery auto-detects the format per file, so this can be toggled on
  /// a live store without migrating old checkpoints.
  bool columnar_checkpoints = false;
};

/// What recovery found and did; exposed for operators (shell `recover`,
/// telemetry) and asserted on by the torture tests.
struct RecoveryInfo {
  /// True when a checkpoint was loaded (false: full replay from seed).
  bool used_checkpoint = false;
  /// Sequence number of the loaded checkpoint (0 when none).
  uint64_t checkpoint_seq = 0;
  /// Journal records replayed on top of the checkpoint (or seed).
  uint64_t replayed = 0;
  /// Sequence number after recovery (checkpoint_seq + replayed, unless a
  /// newer checkpoint out-ran the journal).
  uint64_t recovered_seq = 0;
  /// Live journal segments after recovery.
  int segments = 0;
  /// Anything non-fatal worth surfacing: repaired torn tails, corrupt
  /// checkpoints skipped, stray tmp files removed.
  std::vector<std::string> warnings;
};

/// The persistence engine behind UpdateService: owns the segment files
/// and checkpoints under StoreOptions::dir. Not internally synchronized —
/// the service serializes all calls behind its writer mutex.
class DurableStore {
 public:
  /// Opens the store and runs recovery into `translator` (which must be
  /// bound to the *seed* instance): loads the newest checkpoint that
  /// verifies, replays the journal suffix past it, repairs a torn tail on
  /// the final segment, and opens the active segment for appending.
  /// Returns kCorruption for damage that breaks replay soundness (middle-
  /// segment truncation, sequence gaps) and kInternal when a journaled
  /// update no longer validates against the recovered state.
  static Result<std::unique_ptr<DurableStore>> Open(
      StoreOptions options, ViewTranslator* translator);

  /// What recovery found when this store was opened.
  const RecoveryInfo& recovery() const { return recovery_; }
  /// The options the store was opened with.
  const StoreOptions& options() const { return options_; }

  /// Appends one committed batch to the active segment (rotating first if
  /// it is full) and fsyncs. On success the store's sequence number
  /// advances by updates.size().
  Status Append(const std::vector<ViewUpdate>& updates);

  /// Appends one batch WITHOUT fsyncing it — the group-commit staging
  /// half. The batch is not durable until a later Sync() returns OK, so
  /// callers must not acknowledge it yet. Like every other mutator this
  /// is writer-serialized (one appender at a time), but it is safe to run
  /// concurrently with Sync() from a commit-leader thread: rotation (the
  /// only operation that swaps the active segment handle) excludes Sync
  /// via an internal mutex, and a full segment is fsync'd before being
  /// closed so rotation never abandons unsynced records.
  Status AppendUnsynced(const std::vector<ViewUpdate>& updates)
      RELVIEW_EXCLUDES(commit_sync_mu_);

  /// Fsyncs the active segment, making every previously appended record
  /// durable — the group-commit leader's half. May be called from any
  /// thread; serialized internally against rotation and other Sync calls.
  /// Skips the fsync entirely when nothing was appended since the last
  /// Sync. A failed fsync poisons the underlying journal (see
  /// Journal::Sync); the store must be reopened to continue.
  /// Failpoints: "commit.crash_before_sync" / "commit.crash_after_sync"
  /// (crash-armed, for the sharded torture test) plus Journal::Sync's
  /// "commit.fsync".
  Status Sync() RELVIEW_EXCLUDES(commit_sync_mu_);

  /// Writes a checkpoint of `database` covering the current sequence
  /// number, then compacts: thins checkpoints down to the newest
  /// options().keep_checkpoints files and deletes segments fully covered
  /// by the *oldest* checkpoint that remains (so recovery can still fall
  /// back from a corrupt newer checkpoint without hitting a journal
  /// gap). Idempotent when a checkpoint at the current sequence number
  /// already exists. Returns the covered sequence number. `database`
  /// must be the state at exactly seq() — the service calls this under
  /// its writer mutex.
  Result<uint64_t> WriteCheckpoint(const Relation& database);

  // The counter accessors below are safe from any thread: the fields are
  // relaxed atomics, mutated only by the single writer (the service
  // serializes Append / WriteCheckpoint behind its writer mutex) but read
  // lock-free by telemetry scrapes. A scrape may observe a mid-batch
  // combination (e.g. seq_ advanced, segment count not yet), which is fine
  // for monitoring; everything else on this class needs the external
  // writer serialization documented above.

  /// Accepted records since the seed (checkpointed + journaled).
  uint64_t seq() const { return seq_.load(std::memory_order_relaxed); }
  /// Sequence number of the newest durable checkpoint (0 = none).
  uint64_t last_checkpoint_seq() const {
    return last_checkpoint_seq_.load(std::memory_order_relaxed);
  }
  /// Records accepted since the last durable checkpoint — the replay debt
  /// a crash would incur right now.
  uint64_t compaction_lag() const { return seq() - last_checkpoint_seq(); }
  /// Checkpoints written by this incarnation (not counting recovered
  /// ones).
  uint64_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_relaxed);
  }
  /// Segments deleted by compaction in this incarnation.
  uint64_t segments_compacted() const {
    return segments_compacted_.load(std::memory_order_relaxed);
  }
  /// Live segment files (including the active one).
  int segment_count() const {
    return segment_count_.load(std::memory_order_relaxed);
  }
  /// Journal bytes staged by AppendUnsynced that no leader fsync has
  /// covered yet — the crash-loss exposure of the group-commit window,
  /// exported per shard as relview_journal_unsynced_bytes. A relaxed
  /// mirror of the active segment's own counter, maintained here because
  /// the active Journal handle is swapped during rotation and scrapes
  /// must never chase it.
  uint64_t unsynced_bytes() const {
    return unsynced_bytes_.load(std::memory_order_relaxed);
  }

  /// Shared fsync-latency histogram spanning all segment rotations.
  std::shared_ptr<const LatencyHistogram> fsync_latency() const {
    return fsync_latency_;
  }

  /// Successful journal fsyncs since open (one histogram sample each):
  /// the denominator-free half of the fsyncs-per-batch amortization
  /// ratio exported as relview_journal_fsyncs_total.
  uint64_t fsyncs() const { return fsync_latency_->count(); }

 private:
  /// One live segment file and the sequence range it is known to hold.
  struct Segment {
    std::string path;
    uint64_t first_seq = 0;
    uint64_t records = 0;
  };

  DurableStore() = default;

  Status Recover(ViewTranslator* translator);
  Status OpenActiveSegment();
  Status Compact();
  std::string SegmentPath(uint64_t first_seq) const;
  std::string CheckpointPath(uint64_t seq) const;
  /// Refreshes segment_count_ after segments_ changed.
  void SyncSegmentCount() {
    segment_count_.store(static_cast<int>(segments_.size()),
                         std::memory_order_relaxed);
  }

  StoreOptions options_;
  RecoveryInfo recovery_;
  std::vector<Segment> segments_;  // ascending first_seq; back() is active
  std::vector<uint64_t> checkpoint_seqs_;  // ascending, on-disk files
  std::optional<Journal> active_;
  /// Serializes Sync() against segment rotation (the only mutation of
  /// `active_` once the store is open) and against other Sync callers.
  /// Plain appends do NOT take it — write(2) and fsync(2) on the same
  /// descriptor are safe concurrently, which is what lets appends
  /// accumulate while the commit leader's fsync is in flight (the whole
  /// point of group commit).
  mutable Mutex commit_sync_mu_;
  /// Sequence number known fsync'd: Sync() skips the syscall when no
  /// record was appended since the last one.
  uint64_t synced_through_ RELVIEW_GUARDED_BY(commit_sync_mu_) = 0;
  // Writer-mutated, scrape-read counters; see the accessor comment above.
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> unsynced_bytes_{0};  // see unsynced_bytes()
  std::atomic<uint64_t> last_checkpoint_seq_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<uint64_t> segments_compacted_{0};
  std::atomic<int> segment_count_{0};
  std::shared_ptr<LatencyHistogram> fsync_latency_ =
      std::make_shared<LatencyHistogram>();
};

}  // namespace relview

#endif  // RELVIEW_SERVICE_RECOVERY_H_
