#include "deps/fd_set.h"

#include <sstream>

namespace relview {

Result<FDSet> FDSet::Parse(const Universe& u, const std::string& text) {
  FDSet out;
  std::string current;
  std::istringstream in(text);
  std::string line;
  // Accept ';' and '\n' as separators.
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == '\n') c = ';';
  }
  std::istringstream parts(normalized);
  while (std::getline(parts, current, ';')) {
    // Skip blank segments.
    bool blank = true;
    for (char c : current) {
      if (!isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;
    RELVIEW_ASSIGN_OR_RETURN(std::vector<FD> fds, ParseFDs(u, current));
    for (const FD& fd : fds) out.Add(fd);
  }
  return out;
}

AttrSet FDSet::Closure(const AttrSet& x) const {
  // Beeri–Bernstein: maintain, per FD, the count of lhs attributes not yet
  // in the closure; when a count hits zero the rhs joins the closure.
  const int n = size();
  std::vector<int> missing(n);
  // attr -> list of FDs whose lhs contains it.
  std::vector<std::vector<int>> uses(AttrSet::kMaxAttrs);
  std::vector<AttrId> queue;

  AttrSet closure = x;
  for (int i = 0; i < n; ++i) {
    const AttrSet outside = fds_[i].lhs - x;
    missing[i] = outside.Count();
    outside.ForEach([&](AttrId a) { uses[a].push_back(i); });
    if (missing[i] == 0 && !closure.Contains(fds_[i].rhs)) {
      closure.Add(fds_[i].rhs);
      queue.push_back(fds_[i].rhs);
    }
  }
  while (!queue.empty()) {
    AttrId a = queue.back();
    queue.pop_back();
    for (int i : uses[a]) {
      if (--missing[i] == 0 && !closure.Contains(fds_[i].rhs)) {
        closure.Add(fds_[i].rhs);
        queue.push_back(fds_[i].rhs);
      }
    }
  }
  return closure;
}

FDSet FDSet::MinimalCover() const {
  // 1. Left-reduce each FD; 2. drop redundant FDs.
  FDSet reduced;
  for (const FD& fd : fds_) {
    if (fd.Trivial()) continue;
    AttrSet lhs = fd.lhs;
    for (int a = lhs.First(); a >= 0; a = lhs.Next(a)) {
      AttrSet smaller = lhs;
      smaller.Remove(static_cast<AttrId>(a));
      if (Closure(smaller).Contains(fd.rhs)) lhs = smaller;
    }
    reduced.Add(lhs, fd.rhs);
  }
  // Deduplicate (left reduction can create exact copies, which would make
  // each copy look redundant relative to the other).
  FDSet dedup;
  for (const FD& fd : reduced.fds()) {
    bool duplicate = false;
    for (const FD& kept : dedup.fds()) {
      if (kept == fd) duplicate = true;
    }
    if (!duplicate) dedup.Add(fd);
  }
  // Drop FDs implied by the remaining ones, one at a time (removing
  // eagerly keeps mutually redundant FDs from vanishing together).
  std::vector<FD> current = dedup.fds();
  for (size_t i = 0; i < current.size();) {
    FDSet rest;
    for (size_t j = 0; j < current.size(); ++j) {
      if (j != i) rest.Add(current[j]);
    }
    if (rest.Implies(current[i])) {
      current.erase(current.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return FDSet(std::move(current));
}

FDSet FDSet::ProjectExact(const AttrSet& x) const {
  FDSet out;
  // Enumerate subsets of x as candidate left sides. Exponential in |x| by
  // design; used only on small views/tests.
  std::vector<AttrId> members = x.ToVector();
  const int k = static_cast<int>(members.size());
  RELVIEW_DCHECK(k <= 20, "ProjectExact limited to 20 attributes");
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    AttrSet lhs;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) lhs.Add(members[i]);
    }
    const AttrSet implied = (Closure(lhs) & x) - lhs;
    implied.ForEach([&](AttrId a) { out.Add(lhs, a); });
  }
  return out.MinimalCover();
}

AttrSet FDSet::ShrinkToKey(AttrSet start, const AttrSet& of) const {
  RELVIEW_DCHECK(IsSuperkey(start, of), "ShrinkToKey: start not a superkey");
  for (int a = start.First(); a >= 0; a = start.Next(a)) {
    AttrSet smaller = start;
    smaller.Remove(static_cast<AttrId>(a));
    if (IsSuperkey(smaller, of)) start = smaller;
  }
  return start;
}

std::string FDSet::ToString(const Universe* u) const {
  std::string out;
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i) out += "; ";
    out += fds_[i].ToString(u);
  }
  return out;
}

}  // namespace relview
