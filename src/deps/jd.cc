#include "deps/jd.h"

namespace relview {

std::vector<JD> JD::BipartitionMVDs() const {
  std::vector<JD> out;
  const int q = static_cast<int>(components.size());
  if (q == 0) return out;
  RELVIEW_DCHECK(q <= 20, "BipartitionMVDs limited to 20 components");
  // Nontrivial bipartitions; fix component 0 in S1 to avoid mirror
  // duplicates.
  for (uint32_t mask = 0; mask < (1u << (q - 1)); ++mask) {
    AttrSet s1 = components[0];
    AttrSet s2;
    for (int i = 1; i < q; ++i) {
      if (mask & (1u << (i - 1))) {
        s1 |= components[i];
      } else {
        s2 |= components[i];
      }
    }
    if (s2.Empty()) continue;
    out.push_back(JD::MVD(s1, s2));
  }
  return out;
}

std::string JD::ToString(const Universe* u) const {
  std::string out = "*[";
  for (size_t i = 0; i < components.size(); ++i) {
    if (i) out += ", ";
    if (u != nullptr) {
      out += u->Format(components[i]);
    } else {
      out += components[i].ToString();
    }
  }
  return out + "]";
}

std::string EmbeddedMVD::ToString(const Universe* u) const {
  auto fmt = [&](const AttrSet& s) {
    return (u != nullptr) ? u->Format(s) : s.ToString();
  };
  return fmt(context_lhs) + " ->-> " + fmt(left) + " | " + fmt(right);
}

}  // namespace relview
