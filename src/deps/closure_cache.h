// ClosureCache: a bounded, thread-safe LRU memo for FDSet::Closure.
//
// Closure computation is linear in the total FD size, but the paper's
// translatability machinery recomputes the same few closures over and
// over: conditions (b) of Theorems 3/8/9 always ask for (X∩Y)+, Test 1
// asks for one closure per agreement pattern (of which there are few in
// practice), and the probe screen in chase_test.cc asks for one per
// (x_agree, fd) pair. A shared cache turns all of these into O(1) lookups
// on a sustained update stream against one schema.
//
// The cache is keyed by the seed attribute set and guarded by a
// fingerprint of the FD set it was filled under: a lookup with a
// different FD set clears the cache first, so a single instance can be
// threaded through call sites without tracking schema changes. All
// operations take an internal mutex; the cache is safe to share across
// the parallel probe workers.

#ifndef RELVIEW_DEPS_CLOSURE_CACHE_H_
#define RELVIEW_DEPS_CLOSURE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "deps/fd_set.h"
#include "relational/attr_set.h"
#include "util/annotations.h"

namespace relview {

class ClosureCache {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit ClosureCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// seed+ under `fds`, memoized. Equivalent to fds.Closure(seed).
  AttrSet Closure(const FDSet& fds, const AttrSet& seed)
      RELVIEW_EXCLUDES(mu_);

  void Clear() RELVIEW_EXCLUDES(mu_);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses), 0 when unused.
  double hit_rate() const;
  size_t size() const RELVIEW_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

 private:
  static uint64_t Fingerprint(const FDSet& fds);

  struct Entry {
    AttrSet closure;
    std::list<AttrSet>::iterator lru_it;
  };

  const size_t capacity_;
  mutable Mutex mu_;
  /// FD set the entries were filled under.
  uint64_t fingerprint_ RELVIEW_GUARDED_BY(mu_) = 0;
  /// front = most recently used.
  std::list<AttrSet> lru_ RELVIEW_GUARDED_BY(mu_);
  std::unordered_map<AttrSet, Entry, AttrSetHash> entries_
      RELVIEW_GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace relview

#endif  // RELVIEW_DEPS_CLOSURE_CACHE_H_
