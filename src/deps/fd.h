// Functional dependencies. Following Section 3 of the paper, every FD is
// kept in the canonical form X -> A with a single attribute on the right
// (an arbitrary FD X -> Y is split into {X -> A : A in Y}).

#ifndef RELVIEW_DEPS_FD_H_
#define RELVIEW_DEPS_FD_H_

#include <string>
#include <vector>

#include "relational/attr_set.h"
#include "relational/universe.h"
#include "util/status.h"

namespace relview {

/// A canonical functional dependency lhs -> rhs (single attribute rhs).
struct FD {
  AttrSet lhs;
  AttrId rhs = 0;

  FD() = default;
  FD(AttrSet l, AttrId r) : lhs(l), rhs(r) {}

  bool operator==(const FD& o) const { return lhs == o.lhs && rhs == o.rhs; }

  /// True when the dependency is trivial (rhs in lhs).
  bool Trivial() const { return lhs.Contains(rhs); }

  std::string ToString(const Universe* u = nullptr) const;
};

/// Parses "A B -> C D" into canonical FDs {AB->C, AB->D}.
Result<std::vector<FD>> ParseFDs(const Universe& u, const std::string& text);

}  // namespace relview

#endif  // RELVIEW_DEPS_FD_H_
