// FDSet: a set of canonical FDs with the classical polynomial machinery —
// attribute-set closure in linear time (Beeri & Bernstein [4] in the
// paper's bibliography), implication, superkey tests, and minimal covers.
// These are the primitives behind conditions (a)/(b) of Theorems 3, 8, 9
// and the complement characterization.

#ifndef RELVIEW_DEPS_FD_SET_H_
#define RELVIEW_DEPS_FD_SET_H_

#include <string>
#include <vector>

#include "deps/fd.h"
#include "relational/attr_set.h"
#include "relational/universe.h"
#include "util/status.h"

namespace relview {

class FDSet {
 public:
  FDSet() = default;
  explicit FDSet(std::vector<FD> fds) : fds_(std::move(fds)) {}

  /// Builds from "A->B; B C->D" style text (semicolon- or newline-
  /// separated FDs over `u`). Multi-attribute right sides are split.
  static Result<FDSet> Parse(const Universe& u, const std::string& text);

  void Add(const FD& fd) { fds_.push_back(fd); }
  void Add(AttrSet lhs, AttrId rhs) { fds_.emplace_back(lhs, rhs); }
  /// Splits X -> Y into canonical FDs.
  void AddSplit(AttrSet lhs, AttrSet rhs) {
    rhs.ForEach([&](AttrId a) { fds_.emplace_back(lhs, a); });
  }

  const std::vector<FD>& fds() const { return fds_; }
  int size() const { return static_cast<int>(fds_.size()); }
  bool empty() const { return fds_.empty(); }

  /// X+ under this FD set. Linear time in the total size of the FDs
  /// (Beeri–Bernstein counting algorithm).
  AttrSet Closure(const AttrSet& x) const;

  /// Σ ⊨ lhs -> rhs.
  bool Implies(const AttrSet& lhs, const AttrSet& rhs) const {
    return rhs.SubsetOf(Closure(lhs));
  }
  bool Implies(const FD& fd) const {
    return Closure(fd.lhs).Contains(fd.rhs);
  }

  /// X is a superkey of the attribute set `of` (usually a view): X -> of.
  bool IsSuperkey(const AttrSet& x, const AttrSet& of) const {
    return of.SubsetOf(Closure(x));
  }

  /// A minimal cover: no redundant FDs, no redundant lhs attributes.
  FDSet MinimalCover() const;

  /// The FDs restricted to attributes of `x`: all implied FDs Z -> A with
  /// Z, A within x (computed via closures of subsets present as lhs plus
  /// singleton augmentation; exact projection is exponential in general —
  /// this returns the standard exact projection by exploring closures of
  /// all subsets of x; callers must keep |x| small).
  FDSet ProjectExact(const AttrSet& x) const;

  /// One minimal key of `of` contained in `start` (greedy attribute
  /// removal). Precondition: start is a superkey of `of`.
  AttrSet ShrinkToKey(AttrSet start, const AttrSet& of) const;

  std::string ToString(const Universe* u = nullptr) const;

 private:
  std::vector<FD> fds_;
};

}  // namespace relview

#endif  // RELVIEW_DEPS_FD_SET_H_
