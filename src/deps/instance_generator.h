// Synthetic legal-instance generation. The paper reports no datasets; our
// benchmarks and property tests need arbitrarily large instances that
// satisfy a given FD set. We generate random rows with per-column value
// spaces and then repair to legality with an equating chase (each repair
// step merges two constants of one column, strictly reducing the number of
// distinct values, so the loop terminates).

#ifndef RELVIEW_DEPS_INSTANCE_GENERATOR_H_
#define RELVIEW_DEPS_INSTANCE_GENERATOR_H_

#include <functional>

#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/rng.h"

namespace relview {

struct GeneratorOptions {
  int rows = 100;
  /// Values per column before repair; smaller -> more FD interaction.
  int domain = 16;
  uint64_t seed = 1;
};

/// A random instance over `attrs` satisfying `fds`. The result has at most
/// `rows` rows (duplicates created by the repair are removed).
Relation GenerateLegalInstance(const AttrSet& attrs, const FDSet& fds,
                               const GeneratorOptions& opts);

/// Repairs `r` in place to satisfy `fds` by merging constants (smaller id
/// wins). Values are renamed relation-wide; callers that want per-column
/// isolation should use distinct value spaces per column (the generator
/// does). Returns the number of merges performed.
int RepairToLegal(Relation* r, const FDSet& fds);

/// Enumerates every relation over `attrs` whose column values come from
/// {0..domain-1} (per-column shared space), i.e. all subsets of the full
/// Cartesian product, invoking `fn` on each. Aborts if domain^|attrs| > 16
/// (2^16 subsets). Brute-force oracle for small-universe tests.
void EnumerateRelations(const AttrSet& attrs, int domain,
                        const std::function<void(const Relation&)>& fn);

}  // namespace relview

#endif  // RELVIEW_DEPS_INSTANCE_GENERATOR_H_
