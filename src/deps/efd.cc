#include "deps/efd.h"

namespace relview {

std::string EFD::ToString(const Universe* u) const {
  auto fmt = [&](const AttrSet& s) {
    return (u != nullptr) ? u->Format(s) : s.ToString();
  };
  return fmt(lhs) + " ->e " + fmt(rhs);
}

FDSet EFDSet::AsFDs() const {
  FDSet out;
  for (const EFD& efd : efds_) efd.AppendAsFDs(&out);
  return out;
}

Result<EFDWitness> EFDSet::ComposeWitness(const AttrSet& lhs,
                                          const AttrSet& rhs) const {
  if (!Implies(lhs, rhs)) {
    return Status::FailedPrecondition("EFD implication does not hold");
  }
  // Replay the closure computation, recording which EFDs fire and in what
  // order; the composed witness applies their witnesses in that order,
  // each time joining the newly computed columns onto the accumulated
  // relation, and finally projects onto lhs ∪ rhs.
  struct Step {
    const EFD* efd;
  };
  std::vector<Step> steps;
  AttrSet have = lhs;
  bool progress = true;
  const AttrSet target = lhs | rhs;
  while (progress && !target.SubsetOf(have)) {
    progress = false;
    for (const EFD& efd : efds_) {
      if (efd.lhs.SubsetOf(have) && !efd.rhs.SubsetOf(have)) {
        if (!efd.witness) {
          return Status::FailedPrecondition(
              "EFD needed for composition lacks a witness: " +
              efd.ToString());
        }
        steps.push_back({&efd});
        have |= efd.rhs;
        progress = true;
      }
    }
  }
  if (!target.SubsetOf(have)) {
    // Implies() said yes but witness-bearing replay failed; can only happen
    // if Implies used an EFD ordering the greedy replay also uses, so this
    // is unreachable; guard anyway.
    return Status::Internal("EFD witness composition diverged from closure");
  }
  std::vector<const EFD*> chain;
  chain.reserve(steps.size());
  for (const Step& s : steps) chain.push_back(s.efd);
  AttrSet out_attrs = target;
  EFDWitness composed = [chain, out_attrs](const Relation& vx) -> Relation {
    Relation acc = vx;
    for (const EFD* efd : chain) {
      const Relation in = acc.Project(efd->lhs);
      const Relation extended = efd->witness(in);
      acc = Relation::NaturalJoin(acc, extended);
    }
    return acc.Project(out_attrs & acc.attrs());
  };
  return composed;
}

bool SatisfiesEFD(const Relation& r, const EFD& efd) {
  RELVIEW_DCHECK(static_cast<bool>(efd.witness),
                 "SatisfiesEFD requires a witness");
  const Relation lhs_proj = r.Project(efd.lhs & r.attrs());
  const Relation expect = r.Project((efd.lhs | efd.rhs) & r.attrs());
  const Relation got = efd.witness(lhs_proj);
  return expect.SameAs(got);
}

}  // namespace relview
