// Explicit functional dependencies (Section 5 of the paper). An EFD
// X ->e Y states that the XY-projection of every legal instance can be
// computed from the X-projection by an instance-independent *witness*
// function f: pi_XY(R) = f(pi_X(R)).
//
// Proposition 1: for a set Sigma of EFDs, Sigma |= X ->e Y iff
// Sigma_F |= X -> Y, where Sigma_F replaces each EFD by the ordinary FD on
// the same attribute sets. We implement implication that way and also
// provide a constructive composed witness for the positive case.

#ifndef RELVIEW_DEPS_EFD_H_
#define RELVIEW_DEPS_EFD_H_

#include <functional>
#include <string>
#include <vector>

#include "deps/fd_set.h"
#include "relational/relation.h"
#include "util/status.h"

namespace relview {

/// Witness function: maps pi_X(R) to pi_XY(R).
using EFDWitness = std::function<Relation(const Relation&)>;

struct EFD {
  AttrSet lhs;  // X
  AttrSet rhs;  // Y
  /// Optional witness; algorithms that only need implication ignore it.
  EFDWitness witness;

  EFD() = default;
  EFD(AttrSet l, AttrSet r) : lhs(l), rhs(r) {}
  EFD(AttrSet l, AttrSet r, EFDWitness w)
      : lhs(l), rhs(r), witness(std::move(w)) {}

  /// The ordinary FD reading (an element of Sigma_F).
  void AppendAsFDs(FDSet* out) const { out->AddSplit(lhs, rhs); }

  std::string ToString(const Universe* u = nullptr) const;
};

class EFDSet {
 public:
  EFDSet() = default;
  explicit EFDSet(std::vector<EFD> efds) : efds_(std::move(efds)) {}

  void Add(EFD efd) { efds_.push_back(std::move(efd)); }
  const std::vector<EFD>& efds() const { return efds_; }
  int size() const { return static_cast<int>(efds_.size()); }

  /// Sigma_F: the FD shadows of the EFDs.
  FDSet AsFDs() const;

  /// Proposition 1: Sigma |= X ->e Y iff Sigma_F |= X -> Y.
  bool Implies(const AttrSet& lhs, const AttrSet& rhs) const {
    return AsFDs().Implies(lhs, rhs);
  }

  /// Constructive side of Proposition 1: when Implies(lhs, rhs) holds and
  /// every EFD used carries a witness, returns a composed witness for
  /// lhs ->e rhs. Returns an error if a needed witness is missing or the
  /// implication does not hold.
  Result<EFDWitness> ComposeWitness(const AttrSet& lhs,
                                    const AttrSet& rhs) const;

 private:
  std::vector<EFD> efds_;
};

/// Checks pi_{XY}(r) == witness(pi_X(r)) for a concrete instance.
bool SatisfiesEFD(const Relation& r, const EFD& efd);

}  // namespace relview

#endif  // RELVIEW_DEPS_EFD_H_
