// Instance-level satisfaction checks: R |= fd, R |= jd, R |= mvd,
// R |= embedded mvd. Used by tests, the brute-force oracles, and the
// legality checks in the translators.

#ifndef RELVIEW_DEPS_SATISFIES_H_
#define RELVIEW_DEPS_SATISFIES_H_

#include "deps/dep_set.h"
#include "deps/fd_set.h"
#include "deps/jd.h"
#include "relational/relation.h"

namespace relview {

/// R |= lhs -> rhs. O(|R|) expected (hash grouping).
bool SatisfiesFD(const Relation& r, const FD& fd);

/// R |= every FD in `fds`.
bool SatisfiesAll(const Relation& r, const FDSet& fds);

/// R |= *[R1,...,Rq]: the join of the projections equals R. Components must
/// cover R's attributes.
bool SatisfiesJD(const Relation& r, const JD& jd);

/// R |= X ->-> Y | Z embedded in X∪Y∪Z.
bool SatisfiesEmbeddedMVD(const Relation& r, const EmbeddedMVD& emvd);

/// R |= all FDs, JDs and (witness-bearing) EFDs of Sigma.
bool SatisfiesAll(const Relation& r, const DependencySet& sigma);

}  // namespace relview

#endif  // RELVIEW_DEPS_SATISFIES_H_
