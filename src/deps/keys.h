// Candidate keys and normal-form machinery. The paper's complement theory
// is key-driven ("the common part of the projections must be a superkey of
// one of the projections"), and its Section 6(3) multirelation direction
// needs lossless decompositions; this module supplies both: candidate-key
// enumeration, BCNF/3NF tests, and a lossless BCNF decomposition usable
// directly as a MultiSchema.

#ifndef RELVIEW_DEPS_KEYS_H_
#define RELVIEW_DEPS_KEYS_H_

#include <vector>

#include "deps/fd_set.h"
#include "relational/attr_set.h"
#include "util/status.h"

namespace relview {

/// All candidate keys of `of` under `fds` (minimal sets X ⊆ of with
/// X -> of). Worst-case exponential; `limit` bounds the result (and the
/// search frontier) to keep callers safe — an error is returned when the
/// limit is hit.
Result<std::vector<AttrSet>> CandidateKeys(const AttrSet& of,
                                           const FDSet& fds,
                                           int limit = 4096);

/// True iff every nontrivial FD implied by `fds` with lhs ⊆ `of` and rhs
/// in `of` has a superkey left side (BCNF, checked on the *given* FDs plus
/// their left-reduced forms — sufficient for canonical single-rhs sets).
bool IsBCNF(const AttrSet& of, const FDSet& fds);

/// True iff for every given FD, the left side is a superkey or the right
/// side is a prime attribute (member of some candidate key): 3NF.
Result<bool> Is3NF(const AttrSet& of, const FDSet& fds);

/// A lossless-join BCNF decomposition of `of` via the classical splitting
/// algorithm: while some component violates BCNF through FD X -> A, split
/// it into (X ∪ A) and (component − A). The result always has a lossless
/// join under `fds` (each split is binary lossless); dependency
/// preservation is not guaranteed (as usual for BCNF).
std::vector<AttrSet> DecomposeBCNF(const AttrSet& of, const FDSet& fds);

}  // namespace relview

#endif  // RELVIEW_DEPS_KEYS_H_
