// DependencySet: the schema's integrity constraints Sigma — functional,
// join, and explicit functional dependencies together. This is the "(U,
// Sigma)" of the paper's Section 2.

#ifndef RELVIEW_DEPS_DEP_SET_H_
#define RELVIEW_DEPS_DEP_SET_H_

#include <string>
#include <vector>

#include "deps/efd.h"
#include "deps/fd_set.h"
#include "deps/jd.h"
#include "relational/universe.h"

namespace relview {

struct DependencySet {
  FDSet fds;
  std::vector<JD> jds;
  EFDSet efds;

  bool HasJDs() const { return !jds.empty(); }
  bool HasEFDs() const { return efds.size() > 0; }

  /// Sigma_F ∪ FDs: the FDs plus the FD shadows of the EFDs (used by
  /// Theorem 10(b) and Proposition 2).
  FDSet FdsWithEfdShadows() const {
    FDSet out = fds;
    for (const EFD& efd : efds.efds()) efd.AppendAsFDs(&out);
    return out;
  }

  std::string ToString(const Universe* u = nullptr) const {
    std::string out = fds.ToString(u);
    for (const JD& jd : jds) {
      if (!out.empty()) out += "; ";
      out += jd.ToString(u);
    }
    for (const EFD& efd : efds.efds()) {
      if (!out.empty()) out += "; ";
      out += efd.ToString(u);
    }
    return out;
  }
};

}  // namespace relview

#endif  // RELVIEW_DEPS_DEP_SET_H_
