// Join dependencies *[R1,...,Rq], multivalued dependencies *[X, Y] (binary
// JDs), and embedded MVDs (MVDs required to hold of a projection), as used
// by Theorem 1 and Theorem 10.

#ifndef RELVIEW_DEPS_JD_H_
#define RELVIEW_DEPS_JD_H_

#include <string>
#include <vector>

#include "relational/attr_set.h"
#include "relational/universe.h"
#include "util/status.h"

namespace relview {

/// A join dependency *[components_0, ..., components_{q-1}]. The components
/// must cover the universe the JD is asserted over.
struct JD {
  std::vector<AttrSet> components;

  JD() = default;
  explicit JD(std::vector<AttrSet> cs) : components(std::move(cs)) {}

  /// The MVD *[X, Y] as a binary JD.
  static JD MVD(const AttrSet& x, const AttrSet& y) { return JD({x, y}); }

  /// Union of all components.
  AttrSet Scope() const {
    AttrSet s;
    for (const AttrSet& c : components) s |= c;
    return s;
  }

  bool IsMVD() const { return components.size() == 2; }

  /// The set M(jd) of MVDs implied by splitting the components into two
  /// blocks (used in the proof of Theorem 1): for each bipartition
  /// (S1, S2) of the components, the MVD *[∪S1, ∪S2].
  std::vector<JD> BipartitionMVDs() const;

  std::string ToString(const Universe* u = nullptr) const;
};

/// An embedded MVD: X ->-> Y | Z must hold of the projection onto
/// X ∪ Y ∪ Z. Equivalently the JD *[X∪Y, X∪Z] holds in π_{X∪Y∪Z}(R).
struct EmbeddedMVD {
  AttrSet context_lhs;  // X (the "common part")
  AttrSet left;         // Y
  AttrSet right;        // Z

  AttrSet Scope() const { return context_lhs | left | right; }

  std::string ToString(const Universe* u = nullptr) const;
};

}  // namespace relview

#endif  // RELVIEW_DEPS_JD_H_
