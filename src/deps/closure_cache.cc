#include "deps/closure_cache.h"

namespace relview {

uint64_t ClosureCache::Fingerprint(const FDSet& fds) {
  // Order-sensitive FNV-style mix over (lhs, rhs) pairs. Two textually
  // identical FD sets fingerprint equal, which is all the guard needs;
  // a spurious mismatch merely costs a cache refill.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(fds.size()));
  for (const FD& fd : fds.fds()) {
    mix(static_cast<uint64_t>(fd.lhs.Hash()));
    mix(static_cast<uint64_t>(fd.rhs) + 0x9e3779b97f4a7c15ull);
  }
  return h;
}

AttrSet ClosureCache::Closure(const FDSet& fds, const AttrSet& seed) {
  const uint64_t fp = Fingerprint(fds);
  {
    MutexLock lock(mu_);
    if (fp != fingerprint_) {
      entries_.clear();
      lru_.clear();
      fingerprint_ = fp;
    } else {
      auto it = entries_.find(seed);
      if (it != entries_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.closure;
      }
    }
  }
  // Compute outside the lock: closures are pure and the worst case is two
  // threads racing to insert the same entry.
  const AttrSet closure = fds.Closure(seed);
  MutexLock lock(mu_);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (fp != fingerprint_) {  // schema changed while we computed
    entries_.clear();
    lru_.clear();
    fingerprint_ = fp;
  }
  if (entries_.find(seed) == entries_.end()) {
    while (entries_.size() >= capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    lru_.push_front(seed);
    entries_.emplace(seed, Entry{closure, lru_.begin()});
  }
  return closure;
}

void ClosureCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
  fingerprint_ = 0;
}

double ClosureCache::hit_rate() const {
  const uint64_t h = hits();
  const uint64_t m = misses();
  return (h + m) == 0 ? 0.0 : static_cast<double>(h) / (h + m);
}

size_t ClosureCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace relview
