#include "deps/keys.h"

#include <deque>
#include <set>

namespace relview {

Result<std::vector<AttrSet>> CandidateKeys(const AttrSet& of,
                                           const FDSet& fds, int limit) {
  // Lucchesi–Osborn style saturation: from one minimal key, generate
  // candidates by swapping each FD's right side for its left side.
  std::vector<AttrSet> keys;
  std::set<AttrSet> seen;
  std::deque<AttrSet> queue;

  const AttrSet first = fds.ShrinkToKey(of, of);
  keys.push_back(first);
  seen.insert(first);
  queue.push_back(first);

  while (!queue.empty()) {
    const AttrSet key = queue.front();
    queue.pop_front();
    for (const FD& fd : fds.fds()) {
      if (!key.Contains(fd.rhs)) continue;
      AttrSet candidate = (fd.lhs & of) | (key - AttrSet::Single(fd.rhs));
      if (!fds.IsSuperkey(candidate, of)) continue;
      candidate = fds.ShrinkToKey(candidate, of);
      if (seen.insert(candidate).second) {
        keys.push_back(candidate);
        queue.push_back(candidate);
        if (static_cast<int>(keys.size()) > limit) {
          return Status::CapacityExceeded(
              "more than " + std::to_string(limit) + " candidate keys");
        }
      }
    }
  }
  return keys;
}

namespace {

/// Finds a BCNF violation inside component `c`: a set X ⊂ c whose closure
/// within c properly extends X without covering c. Exact subset search;
/// capped at 20 attributes.
bool FindBCNFViolation(const AttrSet& c, const FDSet& fds, AttrSet* lhs,
                       AttrSet* gained) {
  const std::vector<AttrId> members = c.ToVector();
  const int k = static_cast<int>(members.size());
  RELVIEW_DCHECK(k <= 20, "BCNF violation search limited to 20 attributes");
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    AttrSet x;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) x.Add(members[i]);
    }
    const AttrSet closed = fds.Closure(x) & c;
    if (closed == x) continue;          // nothing gained
    if (c.SubsetOf(closed)) continue;   // X is a superkey of c: fine
    *lhs = x;
    *gained = closed;
    return true;
  }
  return false;
}

}  // namespace

bool IsBCNF(const AttrSet& of, const FDSet& fds) {
  AttrSet lhs, gained;
  return !FindBCNFViolation(of, fds, &lhs, &gained);
}

Result<bool> Is3NF(const AttrSet& of, const FDSet& fds) {
  RELVIEW_ASSIGN_OR_RETURN(std::vector<AttrSet> keys,
                           CandidateKeys(of, fds));
  AttrSet prime;
  for (const AttrSet& k : keys) prime |= k;
  // Check every implied nontrivial FD X -> A with XA within `of` via the
  // same exact subset sweep used for BCNF.
  const std::vector<AttrId> members = of.ToVector();
  const int k = static_cast<int>(members.size());
  if (k > 20) {
    return Status::CapacityExceeded("3NF check limited to 20 attributes");
  }
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    AttrSet x;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) x.Add(members[i]);
    }
    if (fds.IsSuperkey(x, of)) continue;
    const AttrSet gained = (fds.Closure(x) & of) - x;
    // Every gained attribute must be prime.
    bool ok = true;
    gained.ForEach([&](AttrId a) {
      if (!prime.Contains(a)) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

std::vector<AttrSet> DecomposeBCNF(const AttrSet& of, const FDSet& fds) {
  std::vector<AttrSet> done;
  std::deque<AttrSet> work;
  work.push_back(of);
  while (!work.empty()) {
    AttrSet c = work.front();
    work.pop_front();
    AttrSet lhs, gained;
    if (!FindBCNFViolation(c, fds, &lhs, &gained)) {
      done.push_back(c);
      continue;
    }
    // Split on X -> (X+ ∩ c): components (X+ ∩ c) and (c − X+) ∪ X share
    // exactly X, which is a superkey of the first — binary lossless.
    const AttrSet c1 = gained;
    const AttrSet c2 = (c - gained) | lhs;
    RELVIEW_DCHECK(c1 != c && c2 != c, "BCNF split made no progress");
    work.push_back(c1);
    work.push_back(c2);
  }
  return done;
}

}  // namespace relview
