#include "deps/satisfies.h"

#include <unordered_map>

namespace relview {

bool SatisfiesFD(const Relation& r, const FD& fd) {
  RELVIEW_DCHECK(fd.lhs.SubsetOf(r.attrs()) && r.attrs().Contains(fd.rhs),
                 "FD outside relation schema");
  const Schema& s = r.schema();
  // Map lhs-hash -> (row index of first representative). On collision,
  // verify real agreement on lhs, then compare rhs.
  std::unordered_map<uint64_t, std::vector<int>> groups;
  groups.reserve(r.size() * 2 + 1);
  for (int i = 0; i < r.size(); ++i) {
    const Tuple& t = r.row(i);
    auto& bucket = groups[t.HashOn(s, fd.lhs)];
    for (int j : bucket) {
      const Tuple& o = r.row(j);
      if (t.AgreesWith(o, s, fd.lhs) &&
          t.At(s, fd.rhs) != o.At(s, fd.rhs)) {
        return false;
      }
    }
    bucket.push_back(i);
  }
  return true;
}

bool SatisfiesAll(const Relation& r, const FDSet& fds) {
  for (const FD& fd : fds.fds()) {
    if (!SatisfiesFD(r, fd)) return false;
  }
  return true;
}

bool SatisfiesJD(const Relation& r, const JD& jd) {
  RELVIEW_DCHECK(jd.Scope() == r.attrs(), "JD must cover relation schema");
  if (jd.components.empty()) return true;
  Relation joined = r.Project(jd.components[0]);
  for (size_t i = 1; i < jd.components.size(); ++i) {
    joined = Relation::NaturalJoin(joined, r.Project(jd.components[i]));
  }
  return joined.SameAs(r);
}

bool SatisfiesEmbeddedMVD(const Relation& r, const EmbeddedMVD& emvd) {
  const Relation scoped = r.Project(emvd.Scope() & r.attrs());
  JD jd = JD::MVD(emvd.context_lhs | emvd.left, emvd.context_lhs | emvd.right);
  return SatisfiesJD(scoped, jd);
}

bool SatisfiesAll(const Relation& r, const DependencySet& sigma) {
  if (!SatisfiesAll(r, sigma.fds)) return false;
  for (const JD& jd : sigma.jds) {
    if (!SatisfiesJD(r, jd)) return false;
  }
  for (const EFD& efd : sigma.efds.efds()) {
    if (efd.witness && !SatisfiesEFD(r, efd)) return false;
  }
  return true;
}

}  // namespace relview
