// Armstrong-style inference for FDs and EFDs with explicit derivations.
//
// The paper (Section 5, after Proposition 2) observes that the known axiom
// systems for FDs ([1] Armstrong) extend to explicit FDs. This module
// implements a rule-based prover producing *checkable derivation trees*:
//
//   FD rules:     reflexivity   Y ⊆ X            =>  X -> Y
//                 augmentation  X -> Y            =>  XZ -> YZ
//                 transitivity  X -> Y, Y -> Z    =>  X -> Z
//   EFD rules:    e-reflexivity Y ⊆ X             =>  X ->e Y
//                 e-augmentation X ->e Y          =>  XZ ->e YZ
//                 e-transitivity X ->e Y, Y ->e Z =>  X ->e Z
//   (EFDs do NOT follow from plain FDs — an FD is stored information, an
//   EFD asserts computability — matching Propositions 1 and 2.)
//
// The prover is complete for these systems (it searches closure-style),
// and each derivation replays: every step is re-validated against its
// rule, giving an independently checkable certificate that the closure
// algorithms are correct.

#ifndef RELVIEW_DEPS_ARMSTRONG_H_
#define RELVIEW_DEPS_ARMSTRONG_H_

#include <memory>
#include <string>
#include <vector>

#include "deps/efd.h"
#include "deps/fd_set.h"
#include "relational/universe.h"
#include "util/status.h"

namespace relview {

enum class InferenceRule {
  kGiven,
  kReflexivity,
  kAugmentation,
  kTransitivity,
};

const char* InferenceRuleName(InferenceRule rule);

/// A derived (E)FD with its derivation tree.
struct Derivation {
  AttrSet lhs;
  AttrSet rhs;
  /// Whether this judgement is an EFD (X ->e Y) or a plain FD (X -> Y).
  bool explicit_fd = false;
  InferenceRule rule = InferenceRule::kGiven;
  /// For kAugmentation: the attributes added on both sides.
  AttrSet augmented_by;
  std::vector<std::shared_ptr<const Derivation>> premises;

  std::string Statement(const Universe* u = nullptr) const;
  /// Multi-line proof rendering (indented tree).
  std::string ToString(const Universe* u = nullptr) const;
};

using DerivationPtr = std::shared_ptr<const Derivation>;

/// Derives lhs -> rhs from the given FDs using Armstrong's axioms.
/// Returns NotFound when the FD is not implied (the prover is complete).
Result<DerivationPtr> DeriveFD(const FDSet& given, const AttrSet& lhs,
                               const AttrSet& rhs);

/// Derives lhs ->e rhs from the given EFDs (e-rules only; Proposition 1
/// makes this equivalent to FD derivation over the shadows, but the proof
/// tree carries EFD judgements).
Result<DerivationPtr> DeriveEFD(const EFDSet& given, const AttrSet& lhs,
                                const AttrSet& rhs);

/// Independently re-validates every step of a derivation against its rule
/// and checks that the leaves are members of `given_fds` /
/// `given_efds` (pass the set matching the judgement kind). Returns an
/// error describing the first invalid step, if any.
Status ReplayDerivation(const Derivation& d, const FDSet& given_fds,
                        const EFDSet& given_efds);

}  // namespace relview

#endif  // RELVIEW_DEPS_ARMSTRONG_H_
