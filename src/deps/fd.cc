#include "deps/fd.h"

#include <sstream>

namespace relview {

std::string FD::ToString(const Universe* u) const {
  std::string out;
  bool first = true;
  lhs.ForEach([&](AttrId a) {
    if (!first) out += " ";
    first = false;
    out += (u != nullptr) ? u->Name(a) : ("A" + std::to_string(a));
  });
  out += " -> ";
  out += (u != nullptr) ? u->Name(rhs) : ("A" + std::to_string(rhs));
  return out;
}

Result<std::vector<FD>> ParseFDs(const Universe& u, const std::string& text) {
  auto arrow = text.find("->");
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("FD must contain '->': " + text);
  }
  RELVIEW_ASSIGN_OR_RETURN(AttrSet lhs, u.Set(text.substr(0, arrow)));
  RELVIEW_ASSIGN_OR_RETURN(AttrSet rhs, u.Set(text.substr(arrow + 2)));
  if (rhs.Empty()) {
    return Status::InvalidArgument("FD has empty right side: " + text);
  }
  std::vector<FD> out;
  rhs.ForEach([&](AttrId a) { out.emplace_back(lhs, a); });
  return out;
}

}  // namespace relview
