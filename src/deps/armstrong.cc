#include "deps/armstrong.h"

namespace relview {

const char* InferenceRuleName(InferenceRule rule) {
  switch (rule) {
    case InferenceRule::kGiven:
      return "given";
    case InferenceRule::kReflexivity:
      return "reflexivity";
    case InferenceRule::kAugmentation:
      return "augmentation";
    case InferenceRule::kTransitivity:
      return "transitivity";
  }
  return "?";
}

std::string Derivation::Statement(const Universe* u) const {
  auto fmt = [&](const AttrSet& s) {
    return (u != nullptr) ? u->Format(s) : s.ToString();
  };
  return fmt(lhs) + (explicit_fd ? " ->e " : " -> ") + fmt(rhs);
}

namespace {

void Render(const Derivation& d, const Universe* u, int depth,
            std::string* out) {
  out->append(2 * depth, ' ');
  *out += d.Statement(u);
  *out += "   [";
  *out += InferenceRuleName(d.rule);
  if (d.rule == InferenceRule::kAugmentation) {
    *out += " by " + ((u != nullptr) ? u->Format(d.augmented_by)
                                     : d.augmented_by.ToString());
  }
  *out += "]\n";
  for (const auto& p : d.premises) Render(*p, u, depth + 1, out);
}

/// Shared closure-replaying prover; `use` supplies the given dependencies
/// as (lhs, rhs) pairs.
Result<DerivationPtr> Derive(
    const std::vector<std::pair<AttrSet, AttrSet>>& given, bool explicit_fd,
    const AttrSet& lhs, const AttrSet& rhs) {
  auto make = [&](AttrSet l, AttrSet r, InferenceRule rule,
                  AttrSet aug,
                  std::vector<DerivationPtr> prem) -> DerivationPtr {
    auto d = std::make_shared<Derivation>();
    d->lhs = l;
    d->rhs = r;
    d->explicit_fd = explicit_fd;
    d->rule = rule;
    d->augmented_by = aug;
    d->premises = std::move(prem);
    return d;
  };

  // Current judgement: lhs -> closure_so_far.
  AttrSet closure = lhs;
  DerivationPtr current =
      make(lhs, lhs, InferenceRule::kReflexivity, AttrSet(), {});

  bool progress = true;
  while (progress && !rhs.SubsetOf(closure)) {
    progress = false;
    for (const auto& [glhs, grhs] : given) {
      if (!glhs.SubsetOf(closure) || grhs.SubsetOf(closure)) continue;
      // given: glhs -> grhs; augment by closure: closure -> closure∪grhs
      // (glhs ∪ closure == closure); then transitivity with the current
      // judgement.
      DerivationPtr leaf =
          make(glhs, grhs, InferenceRule::kGiven, AttrSet(), {});
      const AttrSet bigger = closure | grhs;
      DerivationPtr augmented = make(
          closure, bigger, InferenceRule::kAugmentation, closure, {leaf});
      current = make(lhs, bigger, InferenceRule::kTransitivity, AttrSet(),
                     {current, augmented});
      closure = bigger;
      progress = true;
    }
  }
  if (!rhs.SubsetOf(closure)) {
    return Status::NotFound("dependency is not implied: no derivation");
  }
  if (closure == rhs) return current;
  // Project down: closure -> rhs by reflexivity, then transitivity.
  DerivationPtr narrow =
      make(closure, rhs, InferenceRule::kReflexivity, AttrSet(), {});
  return make(lhs, rhs, InferenceRule::kTransitivity, AttrSet(),
              {current, narrow});
}

}  // namespace

std::string Derivation::ToString(const Universe* u) const {
  std::string out;
  Render(*this, u, 0, &out);
  return out;
}

Result<DerivationPtr> DeriveFD(const FDSet& given, const AttrSet& lhs,
                               const AttrSet& rhs) {
  std::vector<std::pair<AttrSet, AttrSet>> deps;
  deps.reserve(given.fds().size());
  for (const FD& fd : given.fds()) {
    deps.emplace_back(fd.lhs, AttrSet::Single(fd.rhs));
  }
  return Derive(deps, /*explicit_fd=*/false, lhs, rhs);
}

Result<DerivationPtr> DeriveEFD(const EFDSet& given, const AttrSet& lhs,
                                const AttrSet& rhs) {
  std::vector<std::pair<AttrSet, AttrSet>> deps;
  deps.reserve(given.efds().size());
  for (const EFD& efd : given.efds()) {
    deps.emplace_back(efd.lhs, efd.rhs);
  }
  return Derive(deps, /*explicit_fd=*/true, lhs, rhs);
}

Status ReplayDerivation(const Derivation& d, const FDSet& given_fds,
                        const EFDSet& given_efds) {
  // Premises first (any failure below propagates).
  for (const auto& p : d.premises) {
    if (p->explicit_fd != d.explicit_fd) {
      return Status::FailedPrecondition(
          "derivation mixes FD and EFD judgements: " + d.Statement());
    }
    RELVIEW_RETURN_IF_ERROR(ReplayDerivation(*p, given_fds, given_efds));
  }
  switch (d.rule) {
    case InferenceRule::kGiven: {
      if (!d.premises.empty()) {
        return Status::FailedPrecondition("'given' step with premises");
      }
      if (d.explicit_fd) {
        for (const EFD& efd : given_efds.efds()) {
          if (efd.lhs == d.lhs && efd.rhs == d.rhs) return Status::OK();
        }
      } else {
        // Allow a multi-attribute rhs matching a set of canonical FDs.
        bool all_found = true;
        d.rhs.ForEach([&](AttrId a) {
          bool found = false;
          for (const FD& fd : given_fds.fds()) {
            if (fd.lhs == d.lhs && fd.rhs == a) found = true;
          }
          if (!found) all_found = false;
        });
        if (all_found) return Status::OK();
      }
      return Status::FailedPrecondition("leaf not among the given: " +
                                        d.Statement());
    }
    case InferenceRule::kReflexivity:
      if (!d.premises.empty()) {
        return Status::FailedPrecondition("reflexivity with premises");
      }
      if (!d.rhs.SubsetOf(d.lhs)) {
        return Status::FailedPrecondition("invalid reflexivity: " +
                                          d.Statement());
      }
      return Status::OK();
    case InferenceRule::kAugmentation: {
      if (d.premises.size() != 1) {
        return Status::FailedPrecondition("augmentation needs 1 premise");
      }
      const Derivation& p = *d.premises[0];
      if (d.lhs != (p.lhs | d.augmented_by) ||
          d.rhs != (p.rhs | d.augmented_by)) {
        return Status::FailedPrecondition("invalid augmentation: " +
                                          d.Statement());
      }
      return Status::OK();
    }
    case InferenceRule::kTransitivity: {
      if (d.premises.size() != 2) {
        return Status::FailedPrecondition("transitivity needs 2 premises");
      }
      const Derivation& p1 = *d.premises[0];
      const Derivation& p2 = *d.premises[1];
      if (p1.lhs != d.lhs || p1.rhs != p2.lhs || p2.rhs != d.rhs) {
        return Status::FailedPrecondition("invalid transitivity: " +
                                          d.Statement());
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown rule");
}

}  // namespace relview
