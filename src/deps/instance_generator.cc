#include "deps/instance_generator.h"

#include <unordered_map>
#include <vector>

#include "deps/satisfies.h"

namespace relview {

Relation GenerateLegalInstance(const AttrSet& attrs, const FDSet& fds,
                               const GeneratorOptions& opts) {
  Rng rng(opts.seed);
  Relation r(attrs);
  const Schema& s = r.schema();
  // Per-column disjoint value spaces: column at position p uses constants
  // [p * stride, p * stride + domain).
  const uint32_t stride = static_cast<uint32_t>(opts.domain) + 7;
  for (int i = 0; i < opts.rows; ++i) {
    Tuple t(s.arity());
    for (int p = 0; p < s.arity(); ++p) {
      t[p] = Value::Const(static_cast<uint32_t>(p) * stride +
                          static_cast<uint32_t>(rng.Below(opts.domain)));
    }
    r.AddRow(std::move(t));
  }
  RepairToLegal(&r, fds);
  RELVIEW_DCHECK(SatisfiesAll(r, fds), "generator produced illegal instance");
  return r;
}

int RepairToLegal(Relation* r, const FDSet& fds) {
  // Lazy-merge repair (same technique as the hash chase backend): record
  // constant merges in a union-find map, resolve on access, materialize
  // once per round. Constants always merge (smaller id wins), so unlike
  // the chase there is no conflict case.
  const Schema& s = r->schema();
  int merges = 0;
  std::unordered_map<uint32_t, Value> parent;
  auto resolve = [&parent](Value v) {
    Value root = v;
    auto it = parent.find(root.raw());
    while (it != parent.end()) {
      root = it->second;
      it = parent.find(root.raw());
    }
    while (v != root) {
      auto step = parent.find(v.raw());
      Value next = step->second;
      step->second = root;
      v = next;
    }
    return root;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const FD& fd : fds.fds()) {
      if (!fd.lhs.SubsetOf(r->attrs()) || !r->attrs().Contains(fd.rhs)) {
        continue;
      }
      const std::vector<AttrId> lhs_cols = fd.lhs.ToVector();
      std::unordered_map<uint64_t, std::vector<int>> groups;
      groups.reserve(r->size() * 2 + 1);
      std::vector<Value> lhs_vals(lhs_cols.size());
      for (int i = 0; i < r->size(); ++i) {
        const Tuple& t = r->row(i);
        uint64_t h = 0x5DEECE66DULL;
        for (size_t c = 0; c < lhs_cols.size(); ++c) {
          lhs_vals[c] = resolve(t.At(s, lhs_cols[c]));
          h = HashCombine(h, lhs_vals[c].raw());
        }
        auto& bucket = groups[h];
        for (int j : bucket) {
          const Tuple& o = r->row(j);
          bool agree = true;
          for (size_t c = 0; c < lhs_cols.size(); ++c) {
            if (resolve(o.At(s, lhs_cols[c])) != lhs_vals[c]) {
              agree = false;
              break;
            }
          }
          if (!agree) continue;
          Value a = resolve(t.At(s, fd.rhs));
          Value b = resolve(o.At(s, fd.rhs));
          if (a == b) continue;
          if (b < a) std::swap(a, b);
          parent[b.raw()] = a;
          ++merges;
          changed = true;
        }
        bucket.push_back(i);
      }
    }
  }
  for (Tuple& row : r->mutable_rows()) {
    for (int c = 0; c < row.arity(); ++c) row[c] = resolve(row[c]);
  }
  r->Normalize();
  return merges;
}

void EnumerateRelations(const AttrSet& attrs, int domain,
                        const std::function<void(const Relation&)>& fn) {
  const std::vector<AttrId> cols = attrs.ToVector();
  const int k = static_cast<int>(cols.size());
  // All tuples of the full product.
  int64_t total = 1;
  for (int i = 0; i < k; ++i) {
    total *= domain;
    RELVIEW_DCHECK(total <= 16, "EnumerateRelations: product too large");
  }
  Relation full(attrs);
  const Schema& s = full.schema();
  for (int64_t code = 0; code < total; ++code) {
    Tuple t(k);
    int64_t c = code;
    for (int p = 0; p < k; ++p) {
      t[p] = Value::Const(static_cast<uint32_t>(c % domain));
      c /= domain;
    }
    (void)s;
    full.AddRow(std::move(t));
  }
  const uint32_t subsets = 1u << total;
  for (uint32_t mask = 0; mask < subsets; ++mask) {
    Relation r(attrs);
    for (int64_t i = 0; i < total; ++i) {
      if (mask & (1u << i)) r.AddRow(full.row(static_cast<int>(i)));
    }
    r.Normalize();
    fn(r);
  }
}

}  // namespace relview
