#include "shard/sharded_service.h"

#include <utility>

#include "obs/trace.h"
#include "util/small_util.h"
#include "view/translator.h"

namespace relview {

uint64_t ShardedSnapshot::view_size() const {
  uint64_t n = 0;
  for (const ViewSnapshot& s : shards) {
    if (s.view != nullptr) n += static_cast<uint64_t>(s.view->size());
  }
  return n;
}

bool ShardedSnapshot::ViewContains(const Tuple& t) const {
  for (const ViewSnapshot& s : shards) {
    if (s.view != nullptr && s.view->ContainsRow(t)) return true;
  }
  return false;
}

uint64_t ShardedSnapshot::database_size() const {
  uint64_t n = 0;
  for (const ViewSnapshot& s : shards) {
    if (s.database != nullptr) n += static_cast<uint64_t>(s.database->size());
  }
  return n;
}

bool ShardedSnapshot::DatabaseContains(const Tuple& t) const {
  for (const ViewSnapshot& s : shards) {
    if (s.database != nullptr && s.database->ContainsRow(t)) return true;
  }
  return false;
}

Result<std::unique_ptr<ShardedService>> ShardedService::Create(
    const Universe& u, const DependencySet& sigma, const AttrSet& x,
    const AttrSet& y, const Relation& seed, ShardedServiceOptions options) {
  if (options.shards < 1) {
    return Status::InvalidArgument("ShardedServiceOptions.shards must be "
                                   ">= 1");
  }
  if (options.group_commit && options.store_root.empty()) {
    options.group_commit = false;  // in-memory: no fsync to amortize
  }
  ShardRouter router(u, x, y, options.shards);
  std::vector<std::unique_ptr<UpdateService>> shards;
  shards.reserve(static_cast<size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    RELVIEW_ASSIGN_OR_RETURN(ViewTranslator vt,
                             ViewTranslator::Create(u, sigma, x, y));
    Relation db(u.All());
    for (const Tuple& row : seed.rows()) {
      if (router.ShardOfBase(row) == i) db.AddRow(row);
    }
    RELVIEW_RETURN_IF_ERROR(vt.Bind(std::move(db)));
    ServiceOptions svc;
    if (!options.store_root.empty()) {
      svc.store.dir = options.store_root + "/shard-" + std::to_string(i);
      if (options.checkpoint_every != 0) {
        svc.store.checkpoint_every = options.checkpoint_every;
      }
      if (options.rotate_records != 0) {
        svc.store.rotate_records = options.rotate_records;
      }
      svc.group_commit = options.group_commit;
      svc.group_window_us = options.group_window_us;
      svc.commit_stall_ms = options.commit_stall_ms;
    }
    RELVIEW_ASSIGN_OR_RETURN(std::unique_ptr<UpdateService> shard,
                             UpdateService::Create(std::move(vt),
                                                   std::move(svc)));
    shards.push_back(std::move(shard));
  }
  return std::unique_ptr<ShardedService>(new ShardedService(
      std::move(router), u, x, y, std::move(shards)));
}

ShardedService::ShardedService(
    ShardRouter router, Universe universe, AttrSet x, AttrSet y,
    std::vector<std::unique_ptr<UpdateService>> shards)
    : router_(std::move(router)),
      universe_(std::move(universe)),
      view_attrs_(std::move(x)),
      complement_attrs_(std::move(y)),
      shards_(std::move(shards)) {}

BatchResult ShardedService::ApplyBatch(const std::vector<ViewUpdate>& updates) {
  BatchResult result;
  if (updates.empty()) return result;
  RELVIEW_TRACE_SPAN_N(fanout, "router.fanout");
  fanout.AddArg("updates", updates.size());

  // Route every update, remembering its position in the original batch so
  // a rejection can be reported against the caller's indices. A replace
  // whose tuples route apart decomposes into delete + insert (both carry
  // the same original index).
  struct SubBatch {
    std::vector<ViewUpdate> updates;
    std::vector<int> original;
  };
  std::vector<SubBatch> subs(shards_.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    const ViewUpdate& u = updates[i];
    const int idx = static_cast<int>(i);
    switch (u.kind) {
      case UpdateKind::kInsert:
      case UpdateKind::kDelete: {
        const int s = router_.ShardOfView(u.t1);
        subs[s].updates.push_back(u);
        subs[s].original.push_back(idx);
        break;
      }
      case UpdateKind::kReplace: {
        const int s1 = router_.ShardOfView(u.t1);
        const int s2 = router_.ShardOfView(u.t2);
        if (s1 == s2) {
          subs[s1].updates.push_back(u);
          subs[s1].original.push_back(idx);
        } else {
          subs[s1].updates.push_back(ViewUpdate::Delete(u.t1));
          subs[s1].original.push_back(idx);
          subs[s2].updates.push_back(ViewUpdate::Insert(u.t2));
          subs[s2].original.push_back(idx);
        }
        break;
      }
      case UpdateKind::kNumUpdateKinds:
        result.status = Status::Internal("sentinel update kind")
                            .WithBatchIndex(idx);
        result.failed_index = idx;
        result.detail = "sentinel update kind";
        return result;
    }
  }

  // Commit shard by shard, ascending. Atomicity is per sub-batch: a
  // failure on shard s leaves shards < s committed (reported below), so
  // callers that need all-or-nothing must keep a batch on one shard —
  // which the router guarantees for batches sharing one join key.
  int committed_shards = 0;
  int fanned_out = 0;
  for (size_t s = 0; s < subs.size(); ++s) {
    if (subs[s].updates.empty()) continue;
    ++fanned_out;
    // One child span per touched shard: the slowest one is the batch's
    // straggler, also recorded in the timings for the wide event.
    RELVIEW_TRACE_SPAN_N(shard_span, "shard.apply");
    shard_span.AddArg("shard", s);
    shard_span.AddArg("updates", subs[s].updates.size());
    Timer shard_timer;
    BatchResult r = shards_[s]->ApplyBatch(subs[s].updates);
    const int64_t shard_nanos = shard_timer.ElapsedNanos();
    shard_span.Finish();
    // Aggregate the per-shard attribution whether or not the sub-batch
    // committed — a failing shard's time is still the batch's time.
    result.timings.stage_nanos += r.timings.stage_nanos;
    result.timings.append_nanos += r.timings.append_nanos;
    result.timings.commit_wait_nanos += r.timings.commit_wait_nanos;
    if (r.timings.cohort_batches > result.timings.cohort_batches) {
      result.timings.cohort_batches = r.timings.cohort_batches;
    }
    result.timings.led_cohort |= r.timings.led_cohort;
    if (s < 64) result.timings.shard_mask |= uint64_t{1} << s;
    ++result.timings.shards_touched;
    if (shard_nanos > result.timings.straggler_nanos) {
      result.timings.straggler_nanos = shard_nanos;
      result.timings.straggler_shard = static_cast<int>(s);
    }
    if (!r.ok()) {
      const int original =
          r.failed_index >= 0 &&
                  r.failed_index < static_cast<int>(subs[s].original.size())
              ? subs[s].original[r.failed_index]
              : -1;
      result.status = std::move(r.status).WithBatchIndex(original);
      result.failed_index = original;
      result.detail = std::move(r.detail);
      if (committed_shards > 0) {
        result.detail += "; note: " + std::to_string(committed_shards) +
                         " earlier shard sub-batch(es) of this batch had "
                         "already committed";
      }
      return result;
    }
    ++committed_shards;
  }
  fanout.AddArg("shards", fanned_out);
  return result;
}

ShardedSnapshot ShardedService::Snapshot() const {
  ShardedSnapshot out;
  out.shards.reserve(shards_.size());
  for (const std::unique_ptr<UpdateService>& s : shards_) {
    out.shards.push_back(s->Snapshot());
    out.version += out.shards.back().version;
  }
  return out;
}

uint64_t ShardedService::version() const {
  uint64_t v = 0;
  for (const std::unique_ptr<UpdateService>& s : shards_) v += s->version();
  return v;
}

uint64_t ShardedService::replayed_updates() const {
  uint64_t n = 0;
  for (const std::unique_ptr<UpdateService>& s : shards_) {
    n += s->replayed_updates();
  }
  return n;
}

Result<uint64_t> ShardedService::Checkpoint() {
  uint64_t covered = 0;
  for (const std::unique_ptr<UpdateService>& s : shards_) {
    RELVIEW_ASSIGN_OR_RETURN(uint64_t seq, s->Checkpoint());
    covered += seq;
  }
  return covered;
}

void ShardedService::RegisterTelemetry(TelemetryRegistry* registry,
                                       const std::string& section) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->RegisterTelemetry(registry, section, static_cast<int>(i));
  }
}

}  // namespace relview
