/// \file
/// ShardedService: N shard-local UpdateService instances (each with its
/// own TranslatabilityEngine and DurableStore) behind a deterministic
/// t[X∩Y]-hash router, with cross-shard snapshot composition for readers.
///
/// Write path: a batch is split by ShardRouter into per-shard sub-batches
/// (original positions remembered for error reporting) and applied shard
/// by shard. Each shard keeps the single-writer UpdateService contract
/// internally, so writers targeting different shards run fully in
/// parallel — including their journal fsyncs, which the per-shard
/// group-commit path (ServiceOptions::group_commit) additionally
/// amortizes across concurrent batches on the same shard.
///
/// Semantics relative to the unsharded service (all deliberate, all
/// pinned by tests):
///   * Atomicity is per (shard, batch): a sub-batch either commits or
///     rolls back atomically, but a batch spanning shards can commit on
///     the first shards and fail on a later one. The BatchResult then
///     reports the failing update's original index and names the partial
///     commit in its detail.
///   * FDs whose left side lies outside the join key X∩Y are enforced
///     shard-locally only (see router.h).
///   * A replace whose two tuples route to different shards is decomposed
///     into delete@shard(t1) + insert@shard(t2) — each side gets the
///     Theorem 8/3 treatment on its shard instead of one Theorem 9 check.
///
/// Read path: Snapshot() pins one immutable per-shard snapshot each and
/// sums their versions into a composite version. Per reader thread the
/// composite is monotone (each component is monotone and read in order),
/// stays lock-free (each pin is the UpdateService fast path), and
/// read-your-writes holds: a batch is acked only after every involved
/// shard published, so a snapshot taken after the ack sees all of it.
#ifndef RELVIEW_SHARD_SHARDED_SERVICE_H_
#define RELVIEW_SHARD_SHARDED_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deps/dep_set.h"
#include "relational/relation.h"
#include "service/update_service.h"
#include "shard/router.h"
#include "util/status.h"

namespace relview {

/// Placement and tuning for ShardedService::Create.
struct ShardedServiceOptions {
  /// Number of shards (>= 1). 1 is the degenerate case: one UpdateService
  /// behind a router that maps everything to shard 0.
  int shards = 1;
  /// When non-empty, shard i persists through a DurableStore under
  /// `<store_root>/shard-<i>`; empty runs in-memory.
  std::string store_root;
  /// Per-shard checkpoint cadence (0 = store default / manual).
  uint64_t checkpoint_every = 0;
  /// Per-shard segment rotation threshold (0 = store default).
  uint64_t rotate_records = 0;
  /// Enable the per-shard cross-batch group-commit path (requires
  /// store_root; silently ignored in-memory since there is no fsync to
  /// amortize).
  bool group_commit = false;
  /// Leader gathering window forwarded to ServiceOptions::group_window_us.
  uint32_t group_window_us = 0;
  /// Per-shard group-commit stall watchdog, forwarded to
  /// ServiceOptions::commit_stall_ms (0 disables).
  uint32_t commit_stall_ms = 0;
};

/// One composed observation of all shards: per-shard immutable snapshots
/// plus a composite version (the sum of the component versions — monotone
/// per reader because every component is monotone). Like the component
/// versions, the composite restarts from the per-shard commit counts of
/// the current incarnation after recovery.
struct ShardedSnapshot {
  /// Sum of the per-shard snapshot versions.
  uint64_t version = 0;
  /// One pinned snapshot per shard, indexed by shard id.
  std::vector<ViewSnapshot> shards;

  /// Total view rows across shards (shards partition the view, so the
  /// sum is the composed view's cardinality).
  uint64_t view_size() const;
  /// True when any shard's view contains `t`.
  bool ViewContains(const Tuple& t) const;
  /// Total database rows across shards.
  uint64_t database_size() const;
  /// True when any shard's database contains `t`.
  bool DatabaseContains(const Tuple& t) const;
};

/// The sharded write path: see the file comment for the contract.
class ShardedService {
 public:
  /// Builds `options.shards` shard services over the schema (U, Σ, X, Y),
  /// partitioning the `seed` instance by ShardRouter::ShardOfBase. With a
  /// store_root, each shard recovers whatever a previous incarnation
  /// journaled under the same directory — the router is deterministic, so
  /// recovered shards re-compose into exactly the pre-crash state.
  static Result<std::unique_ptr<ShardedService>> Create(
      const Universe& u, const DependencySet& sigma, const AttrSet& x,
      const AttrSet& y, const Relation& seed, ShardedServiceOptions options);

  /// Routes and applies `updates`. Commits shard by shard in ascending
  /// shard order; on a rejection the result carries the failing update's
  /// index within the ORIGINAL batch, and the detail notes how many
  /// earlier shards had already committed their sub-batches.
  /// The returned timings aggregate across shards (stage/append/commit
  /// sums, shard_mask, straggler attribution); the fan-out renders as a
  /// "router.fanout" span over one "shard.apply" span per touched shard.
  BatchResult ApplyBatch(const std::vector<ViewUpdate>& updates);

  /// Pins one snapshot per shard; lock-free per the UpdateService
  /// Snapshot() fast path.
  ShardedSnapshot Snapshot() const;

  /// Composite version: sum of the per-shard versions.
  uint64_t version() const;

  /// Journal records replayed across all shards during Create.
  uint64_t replayed_updates() const;

  /// Forces a checkpoint on every shard (durable stores only); returns
  /// the summed covered sequence numbers.
  Result<uint64_t> Checkpoint();

  /// Number of shards.
  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// Shard `i`'s service (0 <= i < shard_count()); never null.
  UpdateService* shard(int i) const { return shards_[i].get(); }
  /// The deterministic router (shared by tests and recovery oracles).
  const ShardRouter& router() const { return router_; }

  /// The attribute universe U.
  const Universe& universe() const { return universe_; }
  /// The view attributes X.
  const AttrSet& view_attrs() const { return view_attrs_; }
  /// The complement attributes Y.
  const AttrSet& complement_attrs() const { return complement_attrs_; }

  /// Registers every shard's collectors under `section` with a
  /// per-shard `shard="<i>"` label (see UpdateService::RegisterTelemetry).
  void RegisterTelemetry(TelemetryRegistry* registry,
                         const std::string& section = "service") const;

 private:
  ShardedService(ShardRouter router, Universe universe, AttrSet x, AttrSet y,
                 std::vector<std::unique_ptr<UpdateService>> shards);

  ShardRouter router_;
  const Universe universe_;
  const AttrSet view_attrs_;
  const AttrSet complement_attrs_;
  std::vector<std::unique_ptr<UpdateService>> shards_;
};

}  // namespace relview

#endif  // RELVIEW_SHARD_SHARDED_SERVICE_H_
