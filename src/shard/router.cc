#include "shard/router.h"

#include "util/status.h"

namespace relview {
namespace {

/// Positions of the attributes of `key` within a tuple laid out over
/// `frame` in ascending attribute order.
std::vector<int> PositionsIn(const AttrSet& key, const AttrSet& frame) {
  std::vector<int> out;
  int pos = 0;
  for (AttrId a : frame.ToVector()) {
    if (key.Contains(a)) out.push_back(pos);
    ++pos;
  }
  return out;
}

}  // namespace

ShardRouter::ShardRouter(const Universe& u, const AttrSet& x,
                         const AttrSet& y, int shards)
    : join_key_(x & y),
      view_positions_(PositionsIn(join_key_, x)),
      base_positions_(PositionsIn(join_key_, u.All())),
      shards_(shards < 1 ? 1 : shards) {}

int ShardRouter::Route(const Tuple& t, const std::vector<int>& positions)
    const {
  // FNV-1a over the raw value ids of the join-key columns, in ascending
  // attribute order. Raw ids (not names) keep the hash stable across
  // incarnations; labeled nulls hash by their tagged id, so a null-
  // bearing tuple routes consistently too.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int pos : positions) {
    RELVIEW_DCHECK(pos < t.arity(), "router: tuple shorter than its frame");
    uint32_t raw = t.values()[pos].raw();
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (raw >> (8 * byte)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  }
  return static_cast<int>(h % static_cast<uint64_t>(shards_));
}

}  // namespace relview
