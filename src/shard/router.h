/// \file
/// ShardRouter: the deterministic t[X∩Y]-hash partitioner behind the
/// sharded write path.
///
/// Theorem 3's insertion criterion — conditions (a)–(c) and the chase
/// probes — only ever compares the candidate against view tuples sharing
/// its join-key projection t[X∩Y] (or colliding with it through FDs whose
/// left side lies inside X∩Y). Partitioning tuples by a hash of exactly
/// those attributes therefore keeps each shard's translatability check
/// self-contained: every tuple a shard-local chase could touch lives on
/// the same shard. The same locality argument motivates
/// Franconi–Guagliardo's restriction of view-update reasoning to the
/// determinacy-relevant fragment (arXiv 1211.3016).
///
/// What sharding deliberately relaxes (documented, not hidden): FDs whose
/// left side contains attributes OUTSIDE X∩Y (e.g. Emp → Dept routed by
/// the join key Dept) are enforced only within each shard. Two inserts
/// with the same Emp but different Dept land on different shards and are
/// both accepted, where the unsharded service would reject the second.
/// See ARCHITECTURE.md "Sharded write path" for the full contract;
/// tests/sharded_service_test.cc pins this behavior so it can never
/// change silently.
#ifndef RELVIEW_SHARD_ROUTER_H_
#define RELVIEW_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "relational/attr_set.h"
#include "relational/tuple.h"
#include "relational/universe.h"

namespace relview {

/// Routes tuples to shards by hashing their X∩Y (join key) projection.
/// Deterministic and process-stable: the same tuple maps to the same
/// shard in every incarnation, so recovery re-partitions identically and
/// a router can be rebuilt from (U, X, Y, shards) alone.
class ShardRouter {
 public:
  /// `x` and `y` are the view and complement attribute sets over `u`;
  /// `shards` must be >= 1. The join key is X∩Y.
  ShardRouter(const Universe& u, const AttrSet& x, const AttrSet& y,
              int shards);

  /// Number of shards routed across.
  int shards() const { return shards_; }
  /// The routing key X∩Y.
  const AttrSet& join_key() const { return join_key_; }

  /// Shard of a view tuple (arity |X|, values in ascending attribute
  /// order, the service wire layout).
  int ShardOfView(const Tuple& t) const { return Route(t, view_positions_); }

  /// Shard of a full base tuple over U (used to partition the seed
  /// instance and by the recovery oracle).
  int ShardOfBase(const Tuple& t) const { return Route(t, base_positions_); }

 private:
  int Route(const Tuple& t, const std::vector<int>& positions) const;

  AttrSet join_key_;
  /// Value positions of the join-key attributes within a view tuple
  /// (indices into x.ToVector(), which is ascending) and within a base
  /// tuple over U.
  std::vector<int> view_positions_;
  std::vector<int> base_positions_;
  int shards_ = 1;
};

}  // namespace relview

#endif  // RELVIEW_SHARD_ROUTER_H_
