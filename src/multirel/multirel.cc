#include "multirel/multirel.h"

#include "chase/implication.h"
#include "deps/satisfies.h"
#include "view/complement.h"

namespace relview {

MultiSchema::MultiSchema(Universe u, DependencySet s,
                         std::vector<std::string> n, std::vector<AttrSet> c)
    : universe_(std::move(u)),
      sigma_(std::move(s)),
      names_(std::move(n)),
      components_(std::move(c)) {}

Result<MultiSchema> MultiSchema::Create(Universe universe,
                                        DependencySet sigma,
                                        std::vector<std::string> names,
                                        std::vector<AttrSet> components) {
  if (names.size() != components.size() || components.empty()) {
    return Status::InvalidArgument("names/components size mismatch");
  }
  AttrSet covered;
  for (const AttrSet& c : components) covered |= c;
  if (covered != universe.All()) {
    return Status::InvalidArgument(
        "component schemas must cover the universe");
  }
  // Lossless join: Sigma |= *[S_1, ..., S_k].
  JD jd{components};
  if (!ImpliesJD(universe.All(), sigma.fds, sigma.jds, jd)) {
    return Status::FailedPrecondition(
        "decomposition is not lossless under Sigma (Sigma does not imply " +
        jd.ToString() + ")");
  }
  return MultiSchema(std::move(universe), std::move(sigma),
                     std::move(names), std::move(components));
}

MultiDatabase::MultiDatabase(const MultiSchema* schema) : schema_(schema) {
  for (int i = 0; i < schema->size(); ++i) {
    instances_.emplace_back(schema->component(i));
  }
}

Status MultiDatabase::SetInstance(int i, Relation r) {
  if (i < 0 || i >= schema_->size()) {
    return Status::InvalidArgument("component index out of range");
  }
  if (r.attrs() != schema_->component(i)) {
    return Status::InvalidArgument("instance schema mismatch for " +
                                   schema_->name(i));
  }
  r.Normalize();
  instances_[i] = std::move(r);
  return Status::OK();
}

Relation MultiDatabase::Join() const {
  Relation acc = instances_[0];
  for (size_t i = 1; i < instances_.size(); ++i) {
    acc = Relation::NaturalJoin(acc, instances_[i]);
  }
  return acc;
}

Status MultiDatabase::CheckGloballyConsistent() const {
  const Relation joined = Join();
  if (!SatisfiesAll(joined, schema_->sigma())) {
    return Status::FailedPrecondition("join violates Sigma");
  }
  for (int i = 0; i < schema_->size(); ++i) {
    if (!joined.Project(schema_->component(i)).SameAs(instances_[i])) {
      return Status::FailedPrecondition(
          "dangling tuples in component " + schema_->name(i) +
          " (database is not globally consistent)");
    }
  }
  return Status::OK();
}

void MultiDatabase::DecomposeFrom(const Relation& joined) {
  for (int i = 0; i < schema_->size(); ++i) {
    instances_[i] = joined.Project(schema_->component(i));
  }
}

MultiRelViewTranslator::MultiRelViewTranslator(const MultiSchema* schema,
                                               AttrSet x, AttrSet y)
    : schema_(schema), x_(x), y_(y) {}

Result<MultiRelViewTranslator> MultiRelViewTranslator::Create(
    const MultiSchema* schema, AttrSet x, AttrSet y) {
  const AttrSet u = schema->universe().All();
  if (!x.SubsetOf(u) || !y.SubsetOf(u)) {
    return Status::InvalidArgument("view/complement outside the universe");
  }
  if (!AreComplementary(u, schema->sigma(), x, y)) {
    return Status::FailedPrecondition(
        "X and Y are not complementary under Sigma");
  }
  return MultiRelViewTranslator(schema, x, y);
}

Status MultiRelViewTranslator::Bind(MultiDatabase db) {
  RELVIEW_RETURN_IF_ERROR(db.CheckGloballyConsistent());
  db_ = std::move(db);
  return Status::OK();
}

Result<Relation> MultiRelViewTranslator::ViewInstance() const {
  if (!db_) return Status::FailedPrecondition("no database bound");
  return db_->Join().Project(x_);
}

Status MultiRelViewTranslator::Insert(const Tuple& t) {
  if (!db_) return Status::FailedPrecondition("no database bound");
  const Relation joined = db_->Join();
  const Relation v = joined.Project(x_);
  const AttrSet u = schema_->universe().All();
  RELVIEW_ASSIGN_OR_RETURN(
      InsertionReport rep,
      CheckInsertion(u, schema_->sigma().fds, x_, y_, v, t));
  if (!rep.translatable()) return Status::Untranslatable(rep.ToString());
  if (rep.verdict == TranslationVerdict::kIdentity) return Status::OK();
  RELVIEW_ASSIGN_OR_RETURN(Relation updated,
                           ApplyInsertion(u, x_, y_, joined, t));
  db_->DecomposeFrom(updated);
  RELVIEW_RETURN_IF_ERROR(db_->CheckGloballyConsistent());
  return Status::OK();
}

Status MultiRelViewTranslator::Delete(const Tuple& t) {
  if (!db_) return Status::FailedPrecondition("no database bound");
  const Relation joined = db_->Join();
  const Relation v = joined.Project(x_);
  const AttrSet u = schema_->universe().All();
  RELVIEW_ASSIGN_OR_RETURN(
      DeletionReport rep,
      CheckDeletion(u, schema_->sigma().fds, x_, y_, v, t));
  if (!rep.translatable()) {
    return Status::Untranslatable(TranslationVerdictName(rep.verdict));
  }
  if (rep.verdict == TranslationVerdict::kIdentity) return Status::OK();
  RELVIEW_ASSIGN_OR_RETURN(Relation updated,
                           ApplyDeletion(u, x_, y_, joined, t));
  db_->DecomposeFrom(updated);
  RELVIEW_RETURN_IF_ERROR(db_->CheckGloballyConsistent());
  return Status::OK();
}

}  // namespace relview
