// Multirelation databases with views that are projections of joins — the
// paper's Section 6, direction (3) ("this is most important, given that
// the universal relation assumption is being criticized as unrealistic").
//
// A MultiSchema names base relations R_1..R_k with schemas S_1..S_k over a
// shared attribute universe, constrained by FDs Sigma and the *lossless
// join* requirement Sigma |= *[S_1, ..., S_k] (validated with the tableau
// chase). A database state is globally consistent when the join J =
// R_1 ⋈ ... ⋈ R_k satisfies Sigma and projects back onto each R_i.
//
// A view is pi_X(J). Under losslessness, J is a faithful universal
// relation, so the paper's single-relation machinery applies verbatim: a
// view update is translated on J under a constant complement pi_Y(J), and
// the result is decomposed back into the base relations. This is the
// natural first cut of the paper's open direction; the translation is
// exact relative to the universal-relation semantics.

#ifndef RELVIEW_MULTIREL_MULTIREL_H_
#define RELVIEW_MULTIREL_MULTIREL_H_

#include <string>
#include <vector>

#include "deps/dep_set.h"
#include "relational/relation.h"
#include "relational/universe.h"
#include "util/status.h"
#include "view/deletion.h"
#include "view/insertion.h"

namespace relview {

class MultiSchema {
 public:
  /// Validates that the component schemas cover the universe and that the
  /// decomposition is lossless under sigma (Sigma |= *[S_1..S_k]).
  static Result<MultiSchema> Create(Universe universe, DependencySet sigma,
                                    std::vector<std::string> names,
                                    std::vector<AttrSet> components);

  const Universe& universe() const { return universe_; }
  const DependencySet& sigma() const { return sigma_; }
  int size() const { return static_cast<int>(components_.size()); }
  const AttrSet& component(int i) const { return components_[i]; }
  const std::string& name(int i) const { return names_[i]; }

 private:
  MultiSchema(Universe u, DependencySet s, std::vector<std::string> n,
              std::vector<AttrSet> c);

  Universe universe_;
  DependencySet sigma_;
  std::vector<std::string> names_;
  std::vector<AttrSet> components_;
};

/// A database state: one instance per component.
class MultiDatabase {
 public:
  explicit MultiDatabase(const MultiSchema* schema);

  Status SetInstance(int i, Relation r);
  const Relation& instance(int i) const { return instances_[i]; }

  /// R_1 ⋈ ... ⋈ R_k.
  Relation Join() const;

  /// Global consistency: the join satisfies Sigma and projects back onto
  /// every component (no dangling tuples).
  Status CheckGloballyConsistent() const;

  /// Replaces every component with the projection of `joined` (used after
  /// a translated update).
  void DecomposeFrom(const Relation& joined);

 private:
  const MultiSchema* schema_;
  std::vector<Relation> instances_;
};

/// Constant-complement translation of updates on pi_X(join).
class MultiRelViewTranslator {
 public:
  /// Validates complementarity of (x, y) under sigma (Theorem 1).
  static Result<MultiRelViewTranslator> Create(const MultiSchema* schema,
                                               AttrSet x, AttrSet y);

  /// Binds a globally consistent database.
  Status Bind(MultiDatabase db);
  const MultiDatabase& database() const { return *db_; }

  Result<Relation> ViewInstance() const;

  /// Check-and-apply; on success the base relations are re-decomposed
  /// from the updated join.
  Status Insert(const Tuple& t);
  Status Delete(const Tuple& t);

 private:
  MultiRelViewTranslator(const MultiSchema* schema, AttrSet x, AttrSet y);

  const MultiSchema* schema_;
  AttrSet x_, y_;
  std::optional<MultiDatabase> db_;
};

}  // namespace relview

#endif  // RELVIEW_MULTIREL_MULTIREL_H_
