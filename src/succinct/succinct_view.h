// Succinct view encodings (Section 3.2): a view instance given implicitly
// as a union of Cartesian products of small relations over disjoint
// attribute groups. The paper uses this encoding to show that
// translatability testing is Pi2^p-hard (Theorem 4), Test 1 acceptance
// co-NP-complete (Theorem 5) and complement-finding NP-hard (Theorem 7):
// the description has size O(|U|) while the expansion is exponential.
//
// Membership testing stays polynomial in the description (project the
// tuple onto each factor); only algorithms that must *scan* V pay the
// exponential expansion cost — which is exactly the paper's point.

#ifndef RELVIEW_SUCCINCT_SUCCINCT_VIEW_H_
#define RELVIEW_SUCCINCT_SUCCINCT_VIEW_H_

#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace relview {

/// One Cartesian product: factors over pairwise disjoint attribute sets.
struct CartesianProduct {
  std::vector<Relation> factors;

  AttrSet Attrs() const {
    AttrSet s;
    for (const Relation& f : factors) s |= f.attrs();
    return s;
  }

  /// Number of tuples in the product.
  int64_t Size() const {
    int64_t n = 1;
    for (const Relation& f : factors) n *= f.size();
    return n;
  }
};

class SuccinctView {
 public:
  explicit SuccinctView(const AttrSet& attrs) : attrs_(attrs) {}

  const AttrSet& attrs() const { return attrs_; }
  const std::vector<CartesianProduct>& products() const { return products_; }

  /// Adds a product term; its attributes must cover attrs() exactly and
  /// its factors must be pairwise disjoint.
  Status AddProduct(CartesianProduct product);

  /// Total number of cells in the description (the paper's O(|U|) size
  /// measure).
  int64_t DescriptionSize() const;

  /// Number of tuples in the expansion (with duplicates across products
  /// counted once only if `exact`; the cheap bound sums product sizes).
  int64_t ExpandedSizeBound() const;

  /// Membership without expansion: polynomial in the description.
  bool Contains(const Tuple& t) const;

  /// Materializes the view (exponential).
  Relation Expand() const;

 private:
  AttrSet attrs_;
  std::vector<CartesianProduct> products_;
};

}  // namespace relview

#endif  // RELVIEW_SUCCINCT_SUCCINCT_VIEW_H_
