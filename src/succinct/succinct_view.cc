#include "succinct/succinct_view.h"

namespace relview {

Status SuccinctView::AddProduct(CartesianProduct product) {
  AttrSet seen;
  for (const Relation& f : product.factors) {
    if (f.attrs().Intersects(seen)) {
      return Status::InvalidArgument("product factors must be disjoint");
    }
    seen |= f.attrs();
  }
  if (seen != attrs_) {
    return Status::InvalidArgument("product must cover the view attributes");
  }
  products_.push_back(std::move(product));
  return Status::OK();
}

int64_t SuccinctView::DescriptionSize() const {
  int64_t cells = 0;
  for (const CartesianProduct& p : products_) {
    for (const Relation& f : p.factors) {
      cells += static_cast<int64_t>(f.size()) * f.arity();
    }
  }
  return cells;
}

int64_t SuccinctView::ExpandedSizeBound() const {
  int64_t n = 0;
  for (const CartesianProduct& p : products_) n += p.Size();
  return n;
}

bool SuccinctView::Contains(const Tuple& t) const {
  const Schema full(attrs_);
  for (const CartesianProduct& p : products_) {
    bool all = true;
    for (const Relation& f : p.factors) {
      const Tuple proj = t.Project(full, f.schema());
      if (!f.ContainsRow(proj)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

Relation SuccinctView::Expand() const {
  Relation out(attrs_);
  for (const CartesianProduct& p : products_) {
    RELVIEW_DCHECK(!p.factors.empty(), "empty product");
    Relation acc = p.factors[0];
    for (size_t i = 1; i < p.factors.size(); ++i) {
      acc = Relation::NaturalJoin(acc, p.factors[i]);  // disjoint: product
    }
    auto merged = Relation::Union(out, acc);
    RELVIEW_DCHECK(merged.ok(), "expansion schema mismatch");
    out = std::move(merged).value();
  }
  out.Normalize();
  return out;
}

}  // namespace relview
