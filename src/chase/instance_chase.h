// Chase of a concrete instance containing constants and labeled nulls with
// respect to a set of FDs. This implements the engine inside Theorem 3's
// translatability test: the generic instance R(V, t, r, f) is V's rows
// extended with fresh nulls on the complement-only columns, and the chase
// propagates the FDs, either
//   * reaching a fixpoint (a legal completion exists), or
//   * attempting to equate two distinct *constants* — a hard conflict,
//     meaning the hypothesised instance cannot exist.
//
// Rule semantics for a violating pair (agree on Z, differ on A):
//   const  vs const  -> conflict;
//   null   vs const  -> the null is renamed to the constant;
//   null   vs null   -> the higher-id null is renamed to the lower.
//
// Three interchangeable backends are provided:
//   * kHash — hash-partition per FD with a work-list; near-linear rounds.
//   * kSort — the paper's literal algorithm (Corollary to Theorem 3):
//     repeatedly sort by the Z columns and merge the first adjacent
//     violating pair; O(|V|^2 log |V| |Sigma| |Y-X|) per chase.
//   * kColumnar — the code chase of code_chase.h: rows flattened into a
//     column-major matrix of raw ids, per-round vectorized resolve+hash
//     passes, arena-backed scratch. Same rule semantics, same fixpoint.
// All produce the same fixpoint (each merge class resolves to its unique
// minimum raw element, so the fixpoint is merge-order-independent); tests
// assert this.

#ifndef RELVIEW_CHASE_INSTANCE_CHASE_H_
#define RELVIEW_CHASE_INSTANCE_CHASE_H_

#include <cstdint>
#include <unordered_map>

#include "deps/fd_set.h"
#include "relational/relation.h"

namespace relview {

enum class ChaseBackend { kHash, kSort, kColumnar };

struct ChaseStats {
  int merges = 0;
  int rounds = 0;
  /// Total row comparisons / sort elements touched; backend-specific work
  /// measure used by the complexity benchmarks.
  int64_t work = 0;
};

struct ChaseOutcome {
  /// True iff the chase tried to equate two distinct constants.
  bool conflict = false;
  /// The chased relation (meaningful only when !conflict; otherwise the
  /// partially chased state at the moment of conflict).
  Relation result;
  ChaseStats stats;
  /// Rename chain: raw(from) -> to, for every merge performed. Use
  /// Resolve() to map a value of the *input* relation to its final value.
  std::unordered_map<uint32_t, Value> renames;

  /// Final value of an input value after all merges.
  Value Resolve(Value v) const {
    auto it = renames.find(v.raw());
    while (it != renames.end()) {
      v = it->second;
      it = renames.find(v.raw());
    }
    return v;
  }
};

/// Chases `r` with `fds` to fixpoint (or conflict).
ChaseOutcome ChaseInstance(const Relation& r, const FDSet& fds,
                           ChaseBackend backend = ChaseBackend::kHash);

}  // namespace relview

#endif  // RELVIEW_CHASE_INSTANCE_CHASE_H_
