#include "chase/implication.h"

#include "chase/tableau.h"

namespace relview {

bool ImpliesFD(const AttrSet& universe, const FDSet& fds,
               const std::vector<JD>& jds, const AttrSet& lhs,
               const AttrSet& rhs) {
  if (jds.empty()) return fds.Implies(lhs, rhs);
  // Two-row tableau: row 0 all-distinguished, row 1 distinguished on lhs.
  Tableau t(universe);
  t.AddRowDistinguishedOn(universe);
  t.AddRowDistinguishedOn(lhs);
  t.Chase(fds, jds);
  // Sigma |= lhs -> rhs iff the lhs-row became distinguished on all of rhs.
  // After Normalize() rows may have been reordered or merged; instead check
  // that every row agreeing with the distinguished row on lhs also agrees
  // on rhs. The canonical lhs-row always survives (possibly merged into the
  // all-distinguished row, in which case the FD holds trivially for it).
  const Schema& s = t.schema();
  for (const Tuple& row : t.relation().rows()) {
    bool on_lhs = true;
    lhs.ForEach([&](AttrId a) {
      if (row.At(s, a) != Tableau::Distinguished(a)) on_lhs = false;
    });
    if (!on_lhs) continue;
    bool on_rhs = true;
    rhs.ForEach([&](AttrId a) {
      if (row.At(s, a) != Tableau::Distinguished(a)) on_rhs = false;
    });
    if (!on_rhs) return false;
  }
  return true;
}

bool ImpliesJD(const AttrSet& universe, const FDSet& fds,
               const std::vector<JD>& jds, const JD& target) {
  RELVIEW_DCHECK(target.Scope() == universe, "target JD must cover universe");
  Tableau t(universe);
  for (const AttrSet& component : target.components) {
    t.AddRowDistinguishedOn(component);
  }
  t.Chase(fds, jds);
  return t.HasRowDistinguishedOn(universe);
}

bool ImpliesMVD(const AttrSet& universe, const FDSet& fds,
                const std::vector<JD>& jds, const AttrSet& x,
                const AttrSet& y) {
  RELVIEW_DCHECK((x | y) == universe, "MVD components must cover universe");
  return ImpliesJD(universe, fds, jds, JD::MVD(x, y));
}

bool ImpliesEmbeddedMVD(const AttrSet& universe, const FDSet& fds,
                        const std::vector<JD>& jds, const EmbeddedMVD& emvd) {
  const AttrSet scope = emvd.Scope();
  RELVIEW_DCHECK(scope.SubsetOf(universe), "embedded MVD outside universe");
  Tableau t(universe);
  t.AddRowDistinguishedOn(emvd.context_lhs | emvd.left);
  t.AddRowDistinguishedOn(emvd.context_lhs | emvd.right);
  t.Chase(fds, jds);
  // The witness tuple only needs to be distinguished on the emvd's scope.
  return t.HasRowDistinguishedOn(scope);
}

}  // namespace relview
