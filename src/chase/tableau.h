// Symbolic tableau chase (Maier–Mendelzon–Sagiv [25] / Maier–Sagiv–
// Yannakakis [26] in the paper's bibliography) for inferring dependencies
// from FDs and JDs. This is the engine behind Theorem 1's complementarity
// test (Corollary 1) and Theorem 10's embedded-MVD condition.
//
// Symbols are encoded as Values: the *distinguished* symbol of column W is
// Const(W); nondistinguished symbols are Const(id) with id >= kMaxAttrs.
// An FD rule application equates two symbols (global rename, distinguished
// and lower ids win); a JD rule application adds the join of compatible
// rows. Both rules never invent symbols, so the chase terminates.

#ifndef RELVIEW_CHASE_TABLEAU_H_
#define RELVIEW_CHASE_TABLEAU_H_

#include <vector>

#include "deps/fd_set.h"
#include "deps/jd.h"
#include "relational/relation.h"

namespace relview {

class Tableau {
 public:
  explicit Tableau(const AttrSet& attrs)
      : rel_(attrs), next_symbol_(AttrSet::kMaxAttrs) {}

  const Relation& relation() const { return rel_; }
  const Schema& schema() const { return rel_.schema(); }
  int rows() const { return rel_.size(); }

  /// The distinguished symbol of column `a`.
  static Value Distinguished(AttrId a) { return Value::Const(a); }
  static bool IsDistinguished(Value v) {
    return v.is_const() && v.index() < AttrSet::kMaxAttrs;
  }

  /// A fresh nondistinguished symbol.
  Value Fresh() { return Value::Const(next_symbol_++); }

  /// Adds a row that is distinguished exactly on `distinguished_on` and
  /// fresh elsewhere.
  void AddRowDistinguishedOn(const AttrSet& distinguished_on);

  /// Chases to fixpoint with FD and JD rules. Returns the number of rule
  /// applications.
  int Chase(const FDSet& fds, const std::vector<JD>& jds);

  /// True iff some row is distinguished on every attribute of `on`.
  bool HasRowDistinguishedOn(const AttrSet& on) const;

  /// True iff rows i and j hold the same symbol in column `a`.
  bool Equal(int i, int j, AttrId a) const {
    const Schema& s = rel_.schema();
    return rel_.row(i).At(s, a) == rel_.row(j).At(s, a);
  }

 private:
  /// One pass of FD rules; returns number of merges.
  int FDPass(const FDSet& fds);
  /// One pass of JD rules; returns number of added rows.
  int JDPass(const std::vector<JD>& jds);

  Relation rel_;
  uint32_t next_symbol_;
};

}  // namespace relview

#endif  // RELVIEW_CHASE_TABLEAU_H_
