#include "chase/instance_chase.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "chase/code_chase.h"

namespace relview {

namespace {

/// Resolves a violating pair of values. Returns false on constant-constant
/// conflict; otherwise sets *from/*to to the rename to perform.
bool ResolvePair(Value a, Value b, Value* from, Value* to) {
  if (a == b) return true;  // caller filters, defensive
  if (a.is_const() && b.is_const()) return false;
  if (a.is_null() && b.is_const()) {
    *from = a;
    *to = b;
  } else if (a.is_const() && b.is_null()) {
    *from = b;
    *to = a;
  } else {
    // Both nulls: higher id renamed to lower for determinism.
    if (a.raw() < b.raw()) {
      *from = b;
      *to = a;
    } else {
      *from = a;
      *to = b;
    }
  }
  return true;
}

ChaseOutcome ChaseHash(const Relation& input, const FDSet& fds) {
  // Lazy-rename backend: cells keep their original values; merges are
  // recorded in a union-find style map (out.renames) and resolved on
  // access with path compression. Each round is O(|Sigma| * |R| * |lhs|)
  // expected; the relation is materialized once at the end.
  ChaseOutcome out;
  out.result = input;
  Relation& r = out.result;
  const Schema& s = r.schema();

  auto resolve = [&out](Value v) {
    Value root = v;
    auto it = out.renames.find(root.raw());
    while (it != out.renames.end()) {
      root = it->second;
      it = out.renames.find(root.raw());
    }
    // Path compression.
    while (v != root) {
      auto step = out.renames.find(v.raw());
      Value next = step->second;
      step->second = root;
      v = next;
    }
    return root;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    ++out.stats.rounds;
    for (const FD& fd : fds.fds()) {
      if (!fd.lhs.SubsetOf(r.attrs()) || !r.attrs().Contains(fd.rhs)) {
        continue;
      }
      const std::vector<AttrId> lhs_cols = fd.lhs.ToVector();
      // Bucket by resolved lhs values; keep one representative row per
      // equal-lhs group, merging rhs values into it.
      std::unordered_map<uint64_t, std::vector<int>> groups;
      groups.reserve(r.size() * 2 + 1);
      std::vector<Value> lhs_vals(lhs_cols.size());
      for (int i = 0; i < r.size(); ++i) {
        const Tuple& t = r.row(i);
        ++out.stats.work;
        uint64_t h = 0x5DEECE66DULL;
        for (size_t c = 0; c < lhs_cols.size(); ++c) {
          lhs_vals[c] = resolve(t.At(s, lhs_cols[c]));
          h = HashCombine(h, lhs_vals[c].raw());
        }
        auto& bucket = groups[h];
        for (int j : bucket) {
          const Tuple& o = r.row(j);
          ++out.stats.work;
          bool agree = true;
          for (size_t c = 0; c < lhs_cols.size(); ++c) {
            if (resolve(o.At(s, lhs_cols[c])) != lhs_vals[c]) {
              agree = false;
              break;
            }
          }
          if (!agree) continue;
          const Value a = resolve(t.At(s, fd.rhs));
          const Value b = resolve(o.At(s, fd.rhs));
          if (a == b) continue;
          Value from, to;
          if (!ResolvePair(a, b, &from, &to)) {
            out.conflict = true;
            return out;
          }
          out.renames[from.raw()] = to;
          ++out.stats.merges;
          changed = true;
        }
        bucket.push_back(i);
      }
    }
  }
  // Materialize the resolved relation.
  for (Tuple& row : r.mutable_rows()) {
    for (int c = 0; c < row.arity(); ++c) row[c] = resolve(row[c]);
  }
  r.Normalize();
  return out;
}

ChaseOutcome ChaseSort(const Relation& input, const FDSet& fds) {
  // The paper's algorithm, verbatim:
  //   Repeat until no new change is made on R*:
  //     For each FD Z -> A in Sigma do:
  //       Sort R* lexicographically according to the Z columns.
  //       Find the first pair of consecutive tuples mu, nu with
  //       mu[Z] = nu[Z], mu[A] != nu[A].
  //       Replace mu[A] by nu[A] throughout the A column.
  ChaseOutcome out;
  out.result = input;
  Relation& r = out.result;
  const Schema& s = r.schema();

  bool changed = true;
  while (changed) {
    changed = false;
    ++out.stats.rounds;
    for (const FD& fd : fds.fds()) {
      if (!fd.lhs.SubsetOf(r.attrs()) || !r.attrs().Contains(fd.rhs)) {
        continue;
      }
      const std::vector<AttrId> zcols = fd.lhs.ToVector();
      std::vector<int> order(r.size());
      for (int i = 0; i < r.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](int ia, int ib) {
        const Tuple& a = r.row(ia);
        const Tuple& b = r.row(ib);
        for (AttrId z : zcols) {
          const Value va = a.At(s, z);
          const Value vb = b.At(s, z);
          if (va != vb) return va < vb;
        }
        return false;
      });
      out.stats.work +=
          static_cast<int64_t>(r.size()) *
          (64 - __builtin_clzll(static_cast<uint64_t>(r.size()) + 1));
      for (int k = 0; k + 1 < r.size(); ++k) {
        const Tuple& a = r.row(order[k]);
        const Tuple& b = r.row(order[k + 1]);
        if (!a.AgreesWith(b, s, fd.lhs)) continue;
        const Value va = a.At(s, fd.rhs);
        const Value vb = b.At(s, fd.rhs);
        if (va == vb) continue;
        Value from, to;
        if (!ResolvePair(va, vb, &from, &to)) {
          out.conflict = true;
          return out;
        }
        r.RenameValue(from, to);
        out.renames[from.raw()] = to;
        ++out.stats.merges;
        changed = true;
        break;  // first violating pair only, per the paper
      }
    }
  }
  r.Normalize();
  return out;
}

}  // namespace

ChaseOutcome ChaseInstance(const Relation& r, const FDSet& fds,
                           ChaseBackend backend) {
  switch (backend) {
    case ChaseBackend::kHash:
      return ChaseHash(r, fds);
    case ChaseBackend::kSort:
      return ChaseSort(r, fds);
    case ChaseBackend::kColumnar:
      return ChaseCodes(r, fds);
  }
  return ChaseHash(r, fds);  // unreachable; silences -Wreturn-type
}

}  // namespace relview
